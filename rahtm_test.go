package rahtm

import (
	"math"
	"strings"
	"testing"
)

func TestMapperImplementsProcMapper(t *testing.T) {
	var _ ProcMapper = Mapper{}
	if (Mapper{}).Name() != "RAHTM" {
		t.Fatal("bad name")
	}
}

func TestMapperEndToEnd(t *testing.T) {
	tp := NewTorus(4, 4)
	w := Halo2D(8, 8, 10)
	m, err := Mapper{}.MapProcs(w, tp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(tp.N(), false); err != nil {
		t.Fatal(err)
	}
	// RAHTM achieves the ideal blocked embedding for a matched halo: every
	// node-level flow at distance 1.
	rep := Measure(tp, w.Graph, m)
	if rep.Dilation != 1 {
		t.Fatalf("dilation = %d, want 1 (report %s)", rep.Dilation, rep)
	}
}

func TestPipelineStatsExposed(t *testing.T) {
	tp := NewTorus(4, 4)
	w := Halo2D(4, 4, 1)
	res, err := (Mapper{}).Pipeline(w, tp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Subproblems == 0 || res.MCL <= 0 {
		t.Fatalf("stats = %+v MCL = %v", res.Stats, res.MCL)
	}
}

func TestStandardPermutationSpecs(t *testing.T) {
	tp := NewTorus(4, 4, 4, 4, 2)
	ps := StandardPermutations(tp)
	want := []string{"ABCDET", "TABCDE", "ACEBDT"}
	if len(ps) != len(want) {
		t.Fatalf("got %d permutations", len(ps))
	}
	for i, p := range ps {
		if p.Name() != want[i] {
			t.Fatalf("permutation %d = %q, want %q (the paper's §IV set)", i, p.Name(), want[i])
		}
	}
}

func TestStandardMappersOrder(t *testing.T) {
	// On a 2-D torus the interleaved permutation (ABT) duplicates the
	// default, so StandardPermutations dedupes it: 2 permutations +
	// Hilbert + RHT + RAHTM.
	tp := NewTorus(4, 4)
	ms := StandardMappers(tp)
	if len(ms) != 5 {
		t.Fatalf("got %d mappers, want 5", len(ms))
	}
	seen := map[string]bool{}
	for _, m := range ms {
		if seen[m.Name()] {
			t.Fatalf("duplicate mapper %q", m.Name())
		}
		seen[m.Name()] = true
	}
	if ms[0].Name() != "ABT" {
		t.Fatalf("baseline = %q, want the default mapping first", ms[0].Name())
	}
	if ms[len(ms)-1].Name() != "RAHTM" {
		t.Fatal("RAHTM must be last")
	}
}

func TestFacadeMetricsAgree(t *testing.T) {
	tp := NewTorus(4, 4)
	w := Halo2D(4, 4, 2)
	m := Identity(16)
	rep := Measure(tp, w.Graph, m)
	if math.Abs(rep.MCL-MCL(tp, w.Graph, m)) > 1e-12 {
		t.Fatal("Measure and MCL disagree")
	}
	if math.Abs(rep.HopBytes-HopBytes(tp, w.Graph, m)) > 1e-12 {
		t.Fatal("Measure and HopBytes disagree")
	}
}

func TestReadGraphFacade(t *testing.T) {
	g, err := ReadGraph(strings.NewReader("comm 3\n0 1 2.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Traffic(0, 1) != 2.5 {
		t.Fatal("parse mismatch")
	}
}

func TestMapperNonPowerOfTwoTorus(t *testing.T) {
	// §III-B partitioning: a 6x4 torus handled transparently.
	tp := NewTorus(6, 4)
	w := Halo2D(6, 4, 5)
	m, err := Mapper{}.MapProcs(w, tp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(tp.N(), true); err != nil {
		t.Fatal(err)
	}
	rnd, err := NewRandom(4).MapProcs(w, tp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if MCL(tp, w.Graph, m) > MCL(tp, w.Graph, rnd) {
		t.Fatalf("partitioned RAHTM %v worse than random %v",
			MCL(tp, w.Graph, m), MCL(tp, w.Graph, rnd))
	}
}

func TestMapperCustomConfig(t *testing.T) {
	tp := NewTorus(4, 4)
	w := Halo2D(4, 4, 1)
	m := Mapper{}
	m.Merge.BeamWidth = 2
	m.Leaf.Method = LeafExhaustive
	m.DisableSiblingReuse = true
	mp, err := m.MapProcs(w, tp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := mp.Validate(tp.N(), true); err != nil {
		t.Fatal(err)
	}
}
