package graph

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// randomComm builds a reproducible sparse builder graph: n vertices, about
// deg out-edges each, volumes spread over many binades so order-sensitive
// float accumulation differences cannot hide.
func randomComm(n, deg int, seed int64) *Comm {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for s := 0; s < n; s++ {
		for k := 0; k < deg; k++ {
			d := rng.Intn(n)
			g.AddTraffic(s, d, math.Ldexp(1+rng.Float64(), rng.Intn(24)-12))
		}
	}
	return g
}

// requireSameComm fails unless a and b expose bit-identical structure and
// volumes through the public accessors.
func requireSameComm(t *testing.T, ctxt string, a, b *Comm) {
	t.Helper()
	if a.N() != b.N() {
		t.Fatalf("%s: N %d != %d", ctxt, a.N(), b.N())
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("%s: NumEdges %d != %d", ctxt, a.NumEdges(), b.NumEdges())
	}
	fa, fb := a.Flows(), b.Flows()
	for i := range fa {
		if fa[i].Src != fb[i].Src || fa[i].Dst != fb[i].Dst {
			t.Fatalf("%s: flow %d structure %v != %v", ctxt, i, fa[i], fb[i])
		}
		if math.Float64bits(fa[i].Vol) != math.Float64bits(fb[i].Vol) {
			t.Fatalf("%s: flow %d volume bits %x != %x (%v vs %v)",
				ctxt, i, math.Float64bits(fa[i].Vol), math.Float64bits(fb[i].Vol), fa[i].Vol, fb[i].Vol)
		}
	}
	if math.Float64bits(a.TotalVolume()) != math.Float64bits(b.TotalVolume()) {
		t.Fatalf("%s: TotalVolume %v != %v", ctxt, a.TotalVolume(), b.TotalVolume())
	}
	for s := 0; s < a.N(); s++ {
		if math.Float64bits(a.OutVolume(s)) != math.Float64bits(b.OutVolume(s)) {
			t.Fatalf("%s: OutVolume(%d) %v != %v", ctxt, s, a.OutVolume(s), b.OutVolume(s))
		}
	}
	if a.StructuralHash() != b.StructuralHash() {
		t.Fatalf("%s: StructuralHash mismatch", ctxt)
	}
}

// TestFrozenBitIdenticalToBuilder pins the core CSR contract: every accessor
// and derived operation returns bit-identical results on the frozen form and
// on the builder it was compiled from.
func TestFrozenBitIdenticalToBuilder(t *testing.T) {
	for _, n := range []int{1, 7, 64, 200} {
		b := randomComm(n, 6, int64(n))
		f := b.Clone().Freeze()
		requireSameComm(t, "base", b, f)

		for s := 0; s < n; s++ {
			for _, d := range b.Neighbors(s) {
				if math.Float64bits(b.Traffic(s, d)) != math.Float64bits(f.Traffic(s, d)) {
					t.Fatalf("Traffic(%d,%d) differs", s, d)
				}
			}
			if math.Float64bits(b.Traffic(s, (s+1)%n)) != math.Float64bits(f.Traffic(s, (s+1)%n)) {
				t.Fatalf("Traffic miss lookup differs at %d", s)
			}
			if b.Degree(s) != f.Degree(s) {
				t.Fatalf("Degree(%d) differs", s)
			}
		}

		assign := make([]int, n)
		parts := n/3 + 1
		for i := range assign {
			assign[i] = (i * 7) % parts
		}
		cb, ib := b.Coarsen(assign, parts)
		cf, if_ := f.Coarsen(assign, parts)
		if math.Float64bits(ib) != math.Float64bits(if_) {
			t.Fatalf("Coarsen intra %v != %v", ib, if_)
		}
		requireSameComm(t, "coarsen", cb, cf)

		verts := make([]int, 0, n/2)
		for v := n - 1; v >= 0; v -= 2 { // descending order on purpose
			verts = append(verts, v)
		}
		sb, lb := b.InducedSubgraph(verts)
		sf, lf := f.InducedSubgraph(verts)
		requireSameComm(t, "induced", sb, sf)
		if len(lb) != len(lf) {
			t.Fatalf("induced local maps differ in size")
		}
		for k, v := range lb {
			if lf[k] != v {
				t.Fatalf("induced local map differs at %d", k)
			}
		}

		perm := make([]int, n)
		for i := range perm {
			perm[i] = (i*11 + 3) % n
		}
		if !isPermutation(perm) {
			t.Fatalf("test bug: perm is not a bijection for n=%d", n)
		}
		requireSameComm(t, "permuted", b.Permuted(perm), f.Permuted(perm))
		requireSameComm(t, "symmetrized", b.Symmetrized(), f.Symmetrized())
		requireSameComm(t, "scaled", b.Scale(0.625), f.Scale(0.625))
		requireSameComm(t, "clone", b.Clone(), f.Clone())

		if !b.Equal(f, 0) || !f.Equal(b, 0) {
			t.Fatalf("Equal(tol=0) rejects builder/frozen pair")
		}
	}
}

func isPermutation(p []int) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// TestFrozenDerivedStayFrozen checks frozen-ness propagates through derived
// operations, so one Freeze at the pipeline entry covers the whole solve.
func TestFrozenDerivedStayFrozen(t *testing.T) {
	f := randomComm(32, 4, 1).Freeze()
	assign := make([]int, 32)
	for i := range assign {
		assign[i] = i % 8
	}
	cg, _ := f.Coarsen(assign, 8)
	sg, _ := f.InducedSubgraph([]int{3, 1, 4, 15, 9, 2, 6})
	perm := make([]int, 32)
	for i := range perm {
		perm[i] = (i + 5) % 32
	}
	for name, g := range map[string]*Comm{
		"coarsen": cg, "induced": sg, "permuted": f.Permuted(perm),
		"symmetrized": f.Symmetrized(), "scaled": f.Scale(2), "clone": f.Clone(),
	} {
		if !g.Frozen() {
			t.Errorf("%s of frozen graph is not frozen", name)
		}
	}
	b := randomComm(32, 4, 1)
	if bc, _ := b.Coarsen(assign, 8); bc.Frozen() {
		t.Errorf("coarsen of builder graph is frozen")
	}
}

func TestFreezeIdempotent(t *testing.T) {
	g := randomComm(16, 3, 2)
	f := g.Freeze()
	if f != g {
		t.Fatalf("Freeze must return the receiver")
	}
	if g.Freeze() != g {
		t.Fatalf("second Freeze must be a no-op returning the receiver")
	}
}

func TestMutateAfterFreezePanics(t *testing.T) {
	g := randomComm(8, 2, 3).Freeze()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("AddTraffic on frozen graph did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "frozen") || !strings.Contains(msg, "AddTraffic") {
			t.Fatalf("panic message %q does not explain the frozen mutation", r)
		}
	}()
	g.AddTraffic(0, 1, 5)
}

// TestTraversalZeroAllocs is the always-on version of the benchmark gate:
// hot traversals of a frozen graph must not allocate.
func TestTraversalZeroAllocs(t *testing.T) {
	g := randomComm(256, 8, 4).Freeze()
	sink := 0.0
	cases := map[string]func(){
		"EachFlow": func() {
			g.EachFlow(func(s, d int, vol float64) { sink += vol })
		},
		"Edges": func() {
			for s := 0; s < g.N(); s++ {
				_, vols := g.Edges(s)
				if len(vols) > 0 {
					sink += vols[0]
				}
			}
		},
		"Traffic": func() {
			for s := 0; s < g.N(); s++ {
				sink += g.Traffic(s, (s*17+1)%g.N())
			}
		},
		"OutVolume": func() {
			for s := 0; s < g.N(); s++ {
				sink += g.OutVolume(s)
			}
		},
		"TotalVolume": func() { sink += g.TotalVolume() },
		"Degree": func() {
			for s := 0; s < g.N(); s++ {
				sink += float64(g.Degree(s))
			}
		},
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op on frozen graph, want 0", name, allocs)
		}
	}
	_ = sink
}

func TestReadRejectsDuplicateHeader(t *testing.T) {
	in := "comm 4\n0 1 2.5\ncomm 4\n1 2 3\n"
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Fatalf("duplicate header accepted")
	} else if !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), "duplicate header") {
		t.Fatalf("error %q does not name line 3 / duplicate header", err)
	}
}

func TestReadRejectsNonFiniteVolumes(t *testing.T) {
	for _, bad := range []string{"NaN", "Inf", "-Inf", "+Inf"} {
		in := "comm 4\n0 1 1\n2 3 " + bad + "\n"
		_, err := Read(strings.NewReader(in))
		if err == nil {
			t.Fatalf("volume %s accepted", bad)
		}
		if !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), "non-finite") {
			t.Fatalf("error %q does not name line 3 / non-finite for %s", err, bad)
		}
	}
}

// TestWriteReadRoundTripExact: WriteTo uses %g, Go's shortest round-tripping
// float format, so Read must reproduce every volume bit-exactly — for both
// representations of the source graph.
func TestWriteReadRoundTripExact(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := randomComm(50, 5, seed)
		if seed%2 == 1 {
			g.Freeze()
		}
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		requireSameComm(t, "round trip", g, got)
		gf, hf := g.Flows(), got.Flows()
		for i := range gf {
			if math.Float64bits(gf[i].Vol) != math.Float64bits(hf[i].Vol) {
				t.Fatalf("seed %d: volume %d not bit-exact after round trip", seed, i)
			}
		}
	}
}

func TestEqualMergeScan(t *testing.T) {
	a := randomComm(40, 4, 9)
	b := a.Clone()
	if !a.Equal(b, 0) {
		t.Fatalf("clone not Equal at tol 0")
	}
	b.AddTraffic(0, 39, 1e-6)
	if a.Equal(b, 1e-9) {
		t.Fatalf("Equal missed an extra edge beyond tol")
	}
	if !a.Equal(b, 1e-3) {
		t.Fatalf("Equal rejected difference within tol")
	}
	// Same checks across representations.
	if a.Freeze(); a.Equal(b, 1e-9) || !a.Equal(b, 1e-3) {
		t.Fatalf("frozen Equal disagrees with builder Equal")
	}
	c := New(40)
	c.AddTraffic(1, 2, 3)
	if a.Equal(c, 1e-3) || c.Equal(a, 1e-3) {
		t.Fatalf("Equal ignored structural mismatch")
	}
}

// ---- allocation micro-benchmarks (CI gates the traversal ones to 0 allocs/op) ----

func benchGraph(b *testing.B, frozen bool) *Comm {
	b.Helper()
	g := randomComm(1024, 8, 42)
	if frozen {
		g.Freeze()
	}
	return g
}

// BenchmarkFlows measures a full-graph traversal. The frozen EachFlow path
// is the hot one and must report 0 allocs/op; the builder path and the
// materializing Flows() compat wrapper are kept for comparison.
func BenchmarkFlows(b *testing.B) {
	for _, bc := range []struct {
		name   string
		frozen bool
	}{{"frozen", true}, {"builder", false}} {
		g := benchGraph(b, bc.frozen)
		b.Run(bc.name, func(b *testing.B) {
			sink := 0.0
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.EachFlow(func(s, d int, vol float64) { sink += vol })
			}
			_ = sink
		})
	}
	g := benchGraph(b, true)
	b.Run("slice-compat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = g.Flows()
		}
	})
}

// BenchmarkTraversal covers the remaining per-vertex hot accessors; every
// sub-benchmark runs on a frozen graph and must report 0 allocs/op.
func BenchmarkTraversal(b *testing.B) {
	g := benchGraph(b, true)
	b.Run("edges", func(b *testing.B) {
		sink := 0.0
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for s := 0; s < g.N(); s++ {
				_, vols := g.Edges(s)
				for _, v := range vols {
					sink += v
				}
			}
		}
		_ = sink
	})
	b.Run("traffic", func(b *testing.B) {
		sink := 0.0
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for s := 0; s < g.N(); s++ {
				sink += g.Traffic(s, (s*31+7)%g.N())
			}
		}
		_ = sink
	})
	b.Run("outvolume", func(b *testing.B) {
		sink := 0.0
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for s := 0; s < g.N(); s++ {
				sink += g.OutVolume(s)
			}
		}
		_ = sink
	})
}

// BenchmarkCoarsen compares the CSR-direct coarsening against the
// map-builder path (the result graph itself must be allocated, so this one
// is about constant-factor allocation volume, not zero allocs).
func BenchmarkCoarsen(b *testing.B) {
	assign := make([]int, 1024)
	for i := range assign {
		assign[i] = i / 16
	}
	for _, bc := range []struct {
		name   string
		frozen bool
	}{{"frozen", true}, {"builder", false}} {
		g := benchGraph(b, bc.frozen)
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _ = g.Coarsen(assign, 64)
			}
		})
	}
}

// BenchmarkInduced compares CSR-direct induced subgraphs against the
// map-builder path.
func BenchmarkInduced(b *testing.B) {
	verts := make([]int, 256)
	for i := range verts {
		verts[i] = i * 4
	}
	for _, bc := range []struct {
		name   string
		frozen bool
	}{{"frozen", true}, {"builder", false}} {
		g := benchGraph(b, bc.frozen)
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _ = g.InducedSubgraph(verts)
			}
		})
	}
}
