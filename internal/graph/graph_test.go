package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddAndQueryTraffic(t *testing.T) {
	g := New(4)
	g.AddTraffic(0, 1, 5)
	g.AddTraffic(0, 1, 3)
	g.AddTraffic(1, 0, 2)
	if got := g.Traffic(0, 1); got != 8 {
		t.Fatalf("Traffic(0,1) = %v, want 8", got)
	}
	if got := g.Traffic(1, 0); got != 2 {
		t.Fatalf("Traffic(1,0) = %v, want 2", got)
	}
	if got := g.Traffic(2, 3); got != 0 {
		t.Fatalf("Traffic(2,3) = %v, want 0", got)
	}
}

func TestSelfTrafficIgnored(t *testing.T) {
	g := New(2)
	g.AddTraffic(1, 1, 100)
	g.AddTraffic(0, 1, -5)
	g.AddTraffic(0, 1, 0)
	if g.NumEdges() != 0 || g.TotalVolume() != 0 {
		t.Fatalf("self/non-positive traffic recorded: edges=%d vol=%v", g.NumEdges(), g.TotalVolume())
	}
}

func TestFlowsDeterministicOrder(t *testing.T) {
	g := New(5)
	g.AddTraffic(3, 1, 1)
	g.AddTraffic(0, 4, 2)
	g.AddTraffic(0, 2, 3)
	g.AddTraffic(3, 0, 4)
	fl := g.Flows()
	want := []Flow{{0, 2, 3}, {0, 4, 2}, {3, 0, 4}, {3, 1, 1}}
	if len(fl) != len(want) {
		t.Fatalf("Flows len = %d, want %d", len(fl), len(want))
	}
	for i := range want {
		if fl[i] != want[i] {
			t.Fatalf("Flows[%d] = %+v, want %+v", i, fl[i], want[i])
		}
	}
}

func TestSymmetrized(t *testing.T) {
	g := New(3)
	g.AddTraffic(0, 1, 10)
	g.AddTraffic(1, 0, 4)
	s := g.Symmetrized()
	if s.Traffic(0, 1) != 7 || s.Traffic(1, 0) != 7 {
		t.Fatalf("symmetrized = %v/%v, want 7/7", s.Traffic(0, 1), s.Traffic(1, 0))
	}
	if s.TotalVolume() != g.TotalVolume() {
		t.Fatalf("symmetrization changed total volume: %v vs %v", s.TotalVolume(), g.TotalVolume())
	}
}

func TestCoarsen(t *testing.T) {
	// 4 vertices in 2 clusters {0,1}, {2,3}.
	g := New(4)
	g.AddTraffic(0, 1, 5)  // intra
	g.AddTraffic(0, 2, 3)  // inter
	g.AddTraffic(3, 1, 2)  // inter
	g.AddTraffic(2, 3, 10) // intra
	cg, intra := g.Coarsen([]int{0, 0, 1, 1}, 2)
	if intra != 15 {
		t.Fatalf("intra = %v, want 15", intra)
	}
	if cg.Traffic(0, 1) != 3 || cg.Traffic(1, 0) != 2 {
		t.Fatalf("coarse traffic = %v/%v, want 3/2", cg.Traffic(0, 1), cg.Traffic(1, 0))
	}
	if cg.N() != 2 {
		t.Fatalf("coarse N = %d, want 2", cg.N())
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New(5)
	g.AddTraffic(1, 3, 7)
	g.AddTraffic(3, 4, 2)
	g.AddTraffic(0, 1, 9)
	sub, local := g.InducedSubgraph([]int{1, 3})
	if sub.N() != 2 {
		t.Fatalf("sub N = %d", sub.N())
	}
	if sub.Traffic(local[1], local[3]) != 7 {
		t.Fatalf("edge 1->3 lost")
	}
	if sub.TotalVolume() != 7 {
		t.Fatalf("external edges leaked: vol = %v", sub.TotalVolume())
	}
}

func TestPermuted(t *testing.T) {
	g := New(3)
	g.AddTraffic(0, 1, 4)
	p := g.Permuted([]int{2, 0, 1})
	if p.Traffic(2, 0) != 4 || p.Traffic(0, 1) != 0 {
		t.Fatal("permutation not applied")
	}
}

func TestEqualAndClone(t *testing.T) {
	g := New(3)
	g.AddTraffic(0, 1, 4)
	g.AddTraffic(2, 1, 1)
	c := g.Clone()
	if !g.Equal(c, 0) {
		t.Fatal("clone not equal")
	}
	c.AddTraffic(0, 2, 1)
	if g.Equal(c, 0) {
		t.Fatal("mutated clone still equal")
	}
	if g.Equal(New(4), 0) {
		t.Fatal("different sizes equal")
	}
}

func TestStructuralHash(t *testing.T) {
	g := New(4)
	g.AddTraffic(0, 1, 3)
	g.AddTraffic(2, 3, 5)
	h := New(4)
	h.AddTraffic(2, 3, 5)
	h.AddTraffic(0, 1, 3)
	if g.StructuralHash() != h.StructuralHash() {
		t.Fatal("hash depends on insertion order")
	}
	h.AddTraffic(0, 1, 0.5)
	if g.StructuralHash() == h.StructuralHash() {
		t.Fatal("hash ignores volume change")
	}
	if New(4).StructuralHash() == New(5).StructuralHash() {
		t.Fatal("hash ignores vertex count")
	}
}

func TestRoundTripSerialization(t *testing.T) {
	g := New(6)
	g.AddTraffic(0, 5, 1.5)
	g.AddTraffic(3, 2, 42)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(got, 1e-12) {
		t.Fatalf("round trip mismatch:\n%v", buf.String())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"bad header",
		"comm x",
		"comm 2\n0 1\n",
		"comm 2\n0 9 1\n",
		"comm 2\na b c\n",
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Fatalf("Read(%q) succeeded, want error", c)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "comm 3\n# comment\n\n0 1 2.5\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Traffic(0, 1) != 2.5 {
		t.Fatal("comment handling broke parsing")
	}
}

func TestOutVolumeAndNeighbors(t *testing.T) {
	g := New(4)
	g.AddTraffic(1, 0, 2)
	g.AddTraffic(1, 3, 5)
	if g.OutVolume(1) != 7 {
		t.Fatalf("OutVolume = %v", g.OutVolume(1))
	}
	nb := g.Neighbors(1)
	if len(nb) != 2 || nb[0] != 0 || nb[1] != 3 {
		t.Fatalf("Neighbors = %v", nb)
	}
}

// Property: coarsening preserves total volume (inter + intra).
func TestQuickCoarsenVolumeConservation(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		parts := 1 + rng.Intn(n)
		g := New(n)
		for e := 0; e < 3*n; e++ {
			g.AddTraffic(rng.Intn(n), rng.Intn(n), float64(1+rng.Intn(9)))
		}
		assign := make([]int, n)
		for i := range assign {
			assign[i] = rng.Intn(parts)
		}
		cg, intra := g.Coarsen(assign, parts)
		tot := cg.TotalVolume() + intra
		diff := tot - g.TotalVolume()
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Permuted by a random permutation preserves volume and is
// inverted by the inverse permutation.
func TestQuickPermutationInverse(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		g := New(n)
		for e := 0; e < 2*n; e++ {
			g.AddTraffic(rng.Intn(n), rng.Intn(n), float64(1+rng.Intn(5)))
		}
		perm := rng.Perm(n)
		inv := make([]int, n)
		for i, p := range perm {
			inv[p] = i
		}
		back := g.Permuted(perm).Permuted(inv)
		return g.Equal(back, 1e-12)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: serialization round-trips arbitrary graphs.
func TestQuickSerializationRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		g := New(n)
		for e := 0; e < n*2; e++ {
			g.AddTraffic(rng.Intn(n), rng.Intn(n), rng.Float64()*100)
		}
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return g.Equal(got, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
