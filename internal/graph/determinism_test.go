package graph

import (
	"math"
	"math/rand"
	"testing"
)

// denseGraph builds a graph with many non-commensurable float volumes whose
// edges are inserted in the given order. Volumes like 1/(i+3) make float
// summation order observable: if any aggregation walked the adjacency maps
// in raw map order, two runs (or two insertion orders) would disagree in
// the low bits.
func denseGraph(n int, order []int) *Comm {
	g := New(n)
	for _, k := range order {
		s, d := k/n, k%n
		if s == d {
			continue
		}
		g.AddTraffic(s, d, 1.0/float64(k+3))
	}
	return g
}

// TestAggregationsBitIdentical is the regression test for the map-order
// leak fixed in this package: every float-aggregating method must return
// bit-identical results regardless of map insertion order and across
// repeated runs (Go randomizes map iteration per range statement, so two
// calls on the same graph already exercise two orders).
func TestAggregationsBitIdentical(t *testing.T) {
	const n = 24
	fwd := make([]int, n*n)
	for i := range fwd {
		fwd[i] = i
	}
	rev := make([]int, n*n)
	for i := range rev {
		rev[i] = n*n - 1 - i
	}
	shuf := append([]int(nil), fwd...)
	rand.New(rand.NewSource(7)).Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })

	a := denseGraph(n, fwd)
	b := denseGraph(n, rev)
	c := denseGraph(n, shuf)

	assign := make([]int, n)
	for i := range assign {
		assign[i] = i % 5
	}

	bits := func(g *Comm) []uint64 {
		var out []uint64
		out = append(out, math.Float64bits(g.TotalVolume()))
		for s := 0; s < n; s++ {
			out = append(out, math.Float64bits(g.OutVolume(s)))
		}
		coarse, intra := g.Coarsen(assign, 5)
		out = append(out, math.Float64bits(intra))
		for _, f := range coarse.Flows() {
			out = append(out, uint64(f.Src), uint64(f.Dst), math.Float64bits(f.Vol))
		}
		for _, f := range g.Symmetrized().Scale(1.0 / 3.0).Flows() {
			out = append(out, uint64(f.Src), uint64(f.Dst), math.Float64bits(f.Vol))
		}
		return out
	}

	ref := bits(a)
	for run := 0; run < 5; run++ {
		for name, g := range map[string]*Comm{"forward": a, "reverse": b, "shuffled": c} {
			got := bits(g)
			if len(got) != len(ref) {
				t.Fatalf("%s run %d: %d words, want %d", name, run, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("%s run %d: word %d = %#x, want %#x (aggregation order leaked)",
						name, run, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestFlowsOrderStableAcrossRuns pins the edge enumeration order itself:
// two calls on the same graph must yield identical sequences even though
// each range over the underlying maps sees a fresh random order.
func TestFlowsOrderStableAcrossRuns(t *testing.T) {
	g := denseGraph(16, func() []int {
		o := make([]int, 256)
		for i := range o {
			o[i] = i
		}
		rand.New(rand.NewSource(11)).Shuffle(len(o), func(i, j int) { o[i], o[j] = o[j], o[i] })
		return o
	}())
	first := g.Flows()
	for run := 0; run < 10; run++ {
		again := g.Flows()
		if len(again) != len(first) {
			t.Fatalf("run %d: %d flows, want %d", run, len(again), len(first))
		}
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("run %d: Flows[%d] = %+v, want %+v", run, i, again[i], first[i])
			}
		}
		for s := 0; s < g.N(); s++ {
			nb := g.Neighbors(s)
			for i := 1; i < len(nb); i++ {
				if nb[i-1] >= nb[i] {
					t.Fatalf("run %d: Neighbors(%d) not sorted: %v", run, s, nb)
				}
			}
		}
	}
}
