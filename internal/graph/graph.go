// Package graph provides weighted directed communication graphs: the
// application-side input of the RAHTM mapping problem. Vertices are MPI
// process ranks (or, after clustering, cluster ids); edge weights are
// communication volumes in arbitrary byte-like units.
package graph

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Flow is one directed communication demand.
type Flow struct {
	Src, Dst int
	Vol      float64
}

// Comm is a weighted directed communication graph over N vertices.
// The zero value is unusable; create instances with New.
type Comm struct {
	n   int
	adj []map[int]float64 // adj[s][d] = volume, self-edges excluded
}

// New returns an empty communication graph over n vertices.
func New(n int) *Comm {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Comm{n: n, adj: make([]map[int]float64, n)}
}

// N returns the vertex count.
func (g *Comm) N() int { return g.n }

// AddTraffic adds vol to the directed edge s->d. Self-traffic and
// non-positive volumes are ignored (self-traffic never crosses the network).
func (g *Comm) AddTraffic(s, d int, vol float64) {
	g.check(s)
	g.check(d)
	if s == d || vol <= 0 {
		return
	}
	if g.adj[s] == nil {
		g.adj[s] = make(map[int]float64)
	}
	g.adj[s][d] += vol
}

// Traffic returns the volume on the directed edge s->d (0 when absent).
func (g *Comm) Traffic(s, d int) float64 {
	g.check(s)
	g.check(d)
	return g.adj[s][d]
}

func (g *Comm) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}

// NumEdges returns the number of directed edges with positive volume.
func (g *Comm) NumEdges() int {
	m := 0
	for _, a := range g.adj {
		m += len(a)
	}
	return m
}

// sortedDsts returns the keys of one adjacency row in ascending order.
// Every observable iteration over a row goes through this helper: float
// accumulation is not associative, so summing (or re-adding) volumes in
// Go's randomized map order would leak that order into results that must
// be bit-identical across runs and schedules.
func sortedDsts(a map[int]float64) []int {
	dsts := make([]int, 0, len(a))
	for d := range a {
		dsts = append(dsts, d)
	}
	sort.Ints(dsts)
	return dsts
}

// TotalVolume returns the sum of all edge volumes.
func (g *Comm) TotalVolume() float64 {
	tot := 0.0
	for _, a := range g.adj {
		for _, d := range sortedDsts(a) {
			tot += a[d]
		}
	}
	return tot
}

// Flows returns every directed edge in deterministic (src, dst) order.
func (g *Comm) Flows() []Flow {
	out := make([]Flow, 0, g.NumEdges())
	for s, a := range g.adj {
		for _, d := range sortedDsts(a) {
			out = append(out, Flow{Src: s, Dst: d, Vol: a[d]})
		}
	}
	return out
}

// Neighbors returns the out-neighbors of s in ascending order.
func (g *Comm) Neighbors(s int) []int {
	g.check(s)
	return sortedDsts(g.adj[s])
}

// OutVolume returns the total volume originating at s.
func (g *Comm) OutVolume(s int) float64 {
	g.check(s)
	tot := 0.0
	a := g.adj[s]
	for _, d := range sortedDsts(a) {
		tot += a[d]
	}
	return tot
}

// Symmetrized returns a new graph with w'(s,d) = w'(d,s) = (w(s,d)+w(d,s))/2.
// Several mapping heuristics assume symmetric demand.
func (g *Comm) Symmetrized() *Comm {
	out := New(g.n)
	for s, a := range g.adj {
		for _, d := range sortedDsts(a) {
			half := a[d] / 2
			out.AddTraffic(s, d, half)
			out.AddTraffic(d, s, half)
		}
	}
	return out
}

// Clone returns a deep copy.
func (g *Comm) Clone() *Comm {
	out := New(g.n)
	for s, a := range g.adj {
		for _, d := range sortedDsts(a) {
			out.AddTraffic(s, d, a[d])
		}
	}
	return out
}

// Scale returns a copy with every volume multiplied by f (> 0).
func (g *Comm) Scale(f float64) *Comm {
	if f <= 0 {
		panic("graph: non-positive scale factor")
	}
	out := New(g.n)
	for s, a := range g.adj {
		for _, d := range sortedDsts(a) {
			out.AddTraffic(s, d, a[d]*f)
		}
	}
	return out
}

// Coarsen merges vertices according to assign (len N, values in [0, parts))
// and returns the cluster-level graph: volume between clusters a != b is the
// sum of volumes between their members; intra-cluster volume is dropped
// (it becomes on-node shared-memory traffic). Also returns the total volume
// that became intra-cluster, the quantity Phase 1 tiling minimizes the
// complement of.
func (g *Comm) Coarsen(assign []int, parts int) (*Comm, float64) {
	if len(assign) != g.n {
		panic("graph: assignment length mismatch")
	}
	out := New(parts)
	intra := 0.0
	for s, a := range g.adj {
		cs := assign[s]
		if cs < 0 || cs >= parts {
			panic(fmt.Sprintf("graph: assignment %d for vertex %d out of range", cs, s))
		}
		for _, d := range sortedDsts(a) {
			cd := assign[d]
			if cs == cd {
				intra += a[d]
			} else {
				out.AddTraffic(cs, cd, a[d])
			}
		}
	}
	return out, intra
}

// InducedSubgraph returns the subgraph over the given vertices (in the given
// order; result vertex i corresponds to verts[i]), keeping only edges with
// both endpoints inside. The second return value maps original -> local ids.
func (g *Comm) InducedSubgraph(verts []int) (*Comm, map[int]int) {
	local := make(map[int]int, len(verts))
	for i, v := range verts {
		g.check(v)
		if _, dup := local[v]; dup {
			panic("graph: duplicate vertex in InducedSubgraph")
		}
		local[v] = i
	}
	out := New(len(verts))
	for _, v := range verts {
		a := g.adj[v]
		for _, d := range sortedDsts(a) {
			if ld, ok := local[d]; ok {
				out.AddTraffic(local[v], ld, a[d])
			}
		}
	}
	return out, local
}

// Permuted returns the graph relabelled by perm: vertex v becomes perm[v].
func (g *Comm) Permuted(perm []int) *Comm {
	if len(perm) != g.n {
		panic("graph: permutation length mismatch")
	}
	out := New(g.n)
	for s, a := range g.adj {
		for _, d := range sortedDsts(a) {
			out.AddTraffic(perm[s], perm[d], a[d])
		}
	}
	return out
}

// Equal reports whether the two graphs have identical vertex counts and edge
// volumes within tol.
func (g *Comm) Equal(h *Comm, tol float64) bool {
	if g.n != h.n {
		return false
	}
	for s := 0; s < g.n; s++ {
		for _, d := range sortedDsts(g.adj[s]) {
			if math.Abs(g.adj[s][d]-h.Traffic(s, d)) > tol {
				return false
			}
		}
		for _, d := range sortedDsts(h.adj[s]) {
			if math.Abs(h.adj[s][d]-g.Traffic(s, d)) > tol {
				return false
			}
		}
	}
	return true
}

// StructuralHash returns a hash of the graph's exact edge structure (vertex
// ids, edge volumes quantized to 1e-9). RAHTM's merge phase uses it to reuse
// solutions across sibling subproblems with identical local communication.
func (g *Comm) StructuralHash() uint64 {
	h := fnv.New64a()
	var buf [24]byte
	put := func(a, b int, v float64) {
		q := int64(math.Round(v * 1e9))
		for i := 0; i < 8; i++ {
			buf[i] = byte(a >> (8 * i))
			buf[8+i] = byte(b >> (8 * i))
			buf[16+i] = byte(q >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(g.n, 0, 0)
	for _, f := range g.Flows() {
		put(f.Src, f.Dst, f.Vol)
	}
	return h.Sum64()
}

// WriteTo serializes the graph in a plain text format:
//
//	comm <n>
//	<src> <dst> <vol>
//	...
//
// Returns the byte count written.
func (g *Comm) WriteTo(w io.Writer) (int64, error) {
	var total int64
	n, err := fmt.Fprintf(w, "comm %d\n", g.n)
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, f := range g.Flows() {
		n, err = fmt.Fprintf(w, "%d %d %g\n", f.Src, f.Dst, f.Vol)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Read parses the format produced by WriteTo.
func Read(r io.Reader) (*Comm, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty input")
	}
	head := strings.Fields(sc.Text())
	if len(head) != 2 || head[0] != "comm" {
		return nil, fmt.Errorf("graph: bad header %q", sc.Text())
	}
	n, err := strconv.Atoi(head[1])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("graph: bad vertex count %q", head[1])
	}
	g := New(n)
	line := 1
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || strings.HasPrefix(txt, "#") {
			continue
		}
		fields := strings.Fields(txt)
		if len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: want 'src dst vol', got %q", line, txt)
		}
		s, err1 := strconv.Atoi(fields[0])
		d, err2 := strconv.Atoi(fields[1])
		v, err3 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("graph: line %d: parse error in %q", line, txt)
		}
		if s < 0 || s >= n || d < 0 || d >= n {
			return nil, fmt.Errorf("graph: line %d: vertex out of range in %q", line, txt)
		}
		g.AddTraffic(s, d, v)
	}
	return g, sc.Err()
}
