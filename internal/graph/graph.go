// Package graph provides weighted directed communication graphs: the
// application-side input of the RAHTM mapping problem. Vertices are MPI
// process ranks (or, after clustering, cluster ids); edge weights are
// communication volumes in arbitrary byte-like units.
//
// A Comm has two representations. It starts as a mutable builder backed by
// adjacency maps; Freeze compiles it into an immutable CSR (compressed
// sparse row) form whose traversals are allocation-free linear scans in
// deterministic (src, dst) order. Every accessor works on both forms and
// iterates in the same order, so float accumulations are bit-identical
// whichever representation backs the graph.
package graph

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Flow is one directed communication demand.
type Flow struct {
	Src, Dst int
	Vol      float64
}

// Comm is a weighted directed communication graph over N vertices.
// The zero value is unusable; create instances with New.
type Comm struct {
	n   int
	adj []map[int]float64 // builder: adj[s][d] = volume, self-edges excluded; nil once frozen

	// Frozen CSR form (set by Freeze / derived frozen operations): row s is
	// colIdx[rowPtr[s]:rowPtr[s+1]] with parallel volumes in vol, columns
	// ascending within each row.
	frozen bool
	rowPtr []int32
	colIdx []int32
	vol    []float64
	outVol []float64 // cached per-vertex out-volume sums
	totVol float64   // cached total volume
}

// New returns an empty communication graph over n vertices in builder form.
func New(n int) *Comm {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	ctrGraphBuild.Inc()
	return &Comm{n: n, adj: make([]map[int]float64, n)}
}

// N returns the vertex count.
func (g *Comm) N() int { return g.n }

// AddTraffic adds vol to the directed edge s->d. Self-traffic and
// non-positive volumes are ignored (self-traffic never crosses the network).
// Panics on a frozen graph: Freeze ends the build phase.
func (g *Comm) AddTraffic(s, d int, vol float64) {
	if g.frozen {
		panic(fmt.Sprintf("graph: AddTraffic(%d, %d) on frozen graph: Freeze made it immutable; add all traffic before freezing (or Clone the builder first)", s, d))
	}
	g.check(s)
	g.check(d)
	if s == d || vol <= 0 {
		return
	}
	if g.adj[s] == nil {
		g.adj[s] = make(map[int]float64)
	}
	g.adj[s][d] += vol
}

// Traffic returns the volume on the directed edge s->d (0 when absent).
// On a frozen graph this is a binary search within row s.
func (g *Comm) Traffic(s, d int) float64 {
	g.check(s)
	g.check(d)
	if !g.frozen {
		return g.adj[s][d]
	}
	lo, hi := int(g.rowPtr[s]), int(g.rowPtr[s+1])
	end := hi
	dd := int32(d)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if g.colIdx[mid] < dd {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < end && g.colIdx[lo] == dd {
		return g.vol[lo]
	}
	return 0
}

func (g *Comm) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}

// NumEdges returns the number of directed edges with positive volume.
func (g *Comm) NumEdges() int {
	if g.frozen {
		return len(g.colIdx)
	}
	m := 0
	for _, a := range g.adj {
		m += len(a)
	}
	return m
}

// Degree returns the out-degree of s.
func (g *Comm) Degree(s int) int {
	g.check(s)
	if g.frozen {
		return int(g.rowPtr[s+1] - g.rowPtr[s])
	}
	return len(g.adj[s])
}

// sortedDsts returns the keys of one builder adjacency row in ascending
// order. Every observable iteration over a builder row goes through this
// helper: float accumulation is not associative, so summing (or re-adding)
// volumes in Go's randomized map order would leak that order into results
// that must be bit-identical across runs and schedules. The frozen form gets
// the same order for free from its sorted CSR rows.
func sortedDsts(a map[int]float64) []int {
	dsts := make([]int, 0, len(a))
	for d := range a {
		dsts = append(dsts, d)
	}
	sort.Ints(dsts)
	return dsts
}

// Edges returns the out-neighbors of s in ascending order and the matching
// volumes. On a frozen graph the slices alias the CSR arrays — zero
// allocation — and must not be modified by the caller. On a builder graph
// they are compiled per call.
func (g *Comm) Edges(s int) ([]int32, []float64) {
	g.check(s)
	if g.frozen {
		return g.row(s)
	}
	a := g.adj[s]
	ds := sortedDsts(a)
	dsts := make([]int32, len(ds))
	vols := make([]float64, len(ds))
	for i, d := range ds {
		dsts[i] = int32(d)
		vols[i] = a[d]
	}
	return dsts, vols
}

// EachFlow calls fn for every directed edge in (src, dst) order. On a frozen
// graph the traversal is allocation-free.
func (g *Comm) EachFlow(fn func(s, d int, vol float64)) {
	if g.frozen {
		for s := 0; s < g.n; s++ {
			for k := g.rowPtr[s]; k < g.rowPtr[s+1]; k++ {
				fn(s, int(g.colIdx[k]), g.vol[k])
			}
		}
		return
	}
	for s, a := range g.adj {
		for _, d := range sortedDsts(a) {
			fn(s, d, a[d])
		}
	}
}

// TotalVolume returns the sum of all edge volumes (cached when frozen).
func (g *Comm) TotalVolume() float64 {
	if g.frozen {
		return g.totVol
	}
	tot := 0.0
	for _, a := range g.adj {
		for _, d := range sortedDsts(a) {
			tot += a[d]
		}
	}
	return tot
}

// Flows returns every directed edge in deterministic (src, dst) order.
func (g *Comm) Flows() []Flow {
	out := make([]Flow, 0, g.NumEdges())
	g.EachFlow(func(s, d int, vol float64) {
		out = append(out, Flow{Src: s, Dst: d, Vol: vol})
	})
	return out
}

// Neighbors returns the out-neighbors of s in ascending order.
func (g *Comm) Neighbors(s int) []int {
	g.check(s)
	if !g.frozen {
		return sortedDsts(g.adj[s])
	}
	dsts, _ := g.row(s)
	out := make([]int, len(dsts))
	for i, d := range dsts {
		out[i] = int(d)
	}
	return out
}

// OutVolume returns the total volume originating at s (cached when frozen).
func (g *Comm) OutVolume(s int) float64 {
	g.check(s)
	if g.frozen {
		return g.outVol[s]
	}
	tot := 0.0
	a := g.adj[s]
	for _, d := range sortedDsts(a) {
		tot += a[d]
	}
	return tot
}

// Symmetrized returns a new graph with w'(s,d) = w'(d,s) = (w(s,d)+w(d,s))/2.
// Several mapping heuristics assume symmetric demand.
func (g *Comm) Symmetrized() *Comm {
	if g.frozen {
		return g.symmetrizedFrozen()
	}
	out := New(g.n)
	for s, a := range g.adj {
		for _, d := range sortedDsts(a) {
			half := a[d] / 2
			out.AddTraffic(s, d, half)
			out.AddTraffic(d, s, half)
		}
	}
	return out
}

// Clone returns a deep copy in the same representation as the receiver.
func (g *Comm) Clone() *Comm {
	if g.frozen {
		return g.cloneFrozen()
	}
	out := New(g.n)
	for s, a := range g.adj {
		for _, d := range sortedDsts(a) {
			out.AddTraffic(s, d, a[d])
		}
	}
	return out
}

// Scale returns a copy with every volume multiplied by f (> 0).
func (g *Comm) Scale(f float64) *Comm {
	if f <= 0 {
		panic("graph: non-positive scale factor")
	}
	if g.frozen {
		return g.scaleFrozen(f)
	}
	out := New(g.n)
	for s, a := range g.adj {
		for _, d := range sortedDsts(a) {
			out.AddTraffic(s, d, a[d]*f)
		}
	}
	return out
}

// Coarsen merges vertices according to assign (len N, values in [0, parts))
// and returns the cluster-level graph: volume between clusters a != b is the
// sum of volumes between their members; intra-cluster volume is dropped
// (it becomes on-node shared-memory traffic). Also returns the total volume
// that became intra-cluster, the quantity Phase 1 tiling minimizes the
// complement of.
func (g *Comm) Coarsen(assign []int, parts int) (*Comm, float64) {
	if len(assign) != g.n {
		panic("graph: assignment length mismatch")
	}
	if g.frozen {
		return g.coarsenFrozen(assign, parts)
	}
	out := New(parts)
	intra := 0.0
	for s, a := range g.adj {
		cs := assign[s]
		if cs < 0 || cs >= parts {
			panic(fmt.Sprintf("graph: assignment %d for vertex %d out of range", cs, s))
		}
		for _, d := range sortedDsts(a) {
			cd := assign[d]
			if cs == cd {
				intra += a[d]
			} else {
				out.AddTraffic(cs, cd, a[d])
			}
		}
	}
	return out, intra
}

// InducedSubgraph returns the subgraph over the given vertices (in the given
// order; result vertex i corresponds to verts[i]), keeping only edges with
// both endpoints inside. The second return value maps original -> local ids.
func (g *Comm) InducedSubgraph(verts []int) (*Comm, map[int]int) {
	if g.frozen {
		return g.inducedFrozen(verts)
	}
	local := make(map[int]int, len(verts))
	for i, v := range verts {
		g.check(v)
		if _, dup := local[v]; dup {
			panic("graph: duplicate vertex in InducedSubgraph")
		}
		local[v] = i
	}
	out := New(len(verts))
	for _, v := range verts {
		a := g.adj[v]
		for _, d := range sortedDsts(a) {
			if ld, ok := local[d]; ok {
				out.AddTraffic(local[v], ld, a[d])
			}
		}
	}
	return out, local
}

// Permuted returns the graph relabelled by perm: vertex v becomes perm[v].
func (g *Comm) Permuted(perm []int) *Comm {
	if len(perm) != g.n {
		panic("graph: permutation length mismatch")
	}
	if g.frozen {
		return g.permutedFrozen(perm)
	}
	out := New(g.n)
	for s, a := range g.adj {
		for _, d := range sortedDsts(a) {
			out.AddTraffic(perm[s], perm[d], a[d])
		}
	}
	return out
}

// Equal reports whether the two graphs have identical vertex counts and edge
// volumes within tol. Rows are compared with one merge-style linear scan
// over each graph's sorted edges (no re-sorting, no per-edge map lookups).
func (g *Comm) Equal(h *Comm, tol float64) bool {
	if g.n != h.n {
		return false
	}
	for s := 0; s < g.n; s++ {
		gd, gv := g.Edges(s)
		hd, hv := h.Edges(s)
		i, j := 0, 0
		for i < len(gd) || j < len(hd) {
			switch {
			case j >= len(hd) || (i < len(gd) && gd[i] < hd[j]):
				if math.Abs(gv[i]) > tol {
					return false
				}
				i++
			case i >= len(gd) || hd[j] < gd[i]:
				if math.Abs(hv[j]) > tol {
					return false
				}
				j++
			default:
				if math.Abs(gv[i]-hv[j]) > tol {
					return false
				}
				i++
				j++
			}
		}
	}
	return true
}

// StructuralHash returns a hash of the graph's exact edge structure (vertex
// ids, edge volumes quantized to 1e-9). RAHTM's merge phase uses it to reuse
// solutions across sibling subproblems with identical local communication.
func (g *Comm) StructuralHash() uint64 {
	h := fnv.New64a()
	var buf [24]byte
	put := func(a, b int, v float64) {
		q := int64(math.Round(v * 1e9))
		for i := 0; i < 8; i++ {
			buf[i] = byte(a >> (8 * i))
			buf[8+i] = byte(b >> (8 * i))
			buf[16+i] = byte(q >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(g.n, 0, 0)
	g.EachFlow(put)
	return h.Sum64()
}

// WriteTo serializes the graph in a plain text format:
//
//	comm <n>
//	<src> <dst> <vol>
//	...
//
// Returns the byte count written.
func (g *Comm) WriteTo(w io.Writer) (int64, error) {
	var total int64
	n, err := fmt.Fprintf(w, "comm %d\n", g.n)
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, f := range g.Flows() {
		n, err = fmt.Fprintf(w, "%d %d %g\n", f.Src, f.Dst, f.Vol)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Read parses the format produced by WriteTo. Duplicate header lines and
// non-finite volumes are rejected with line-numbered errors.
func Read(r io.Reader) (*Comm, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty input")
	}
	head := strings.Fields(sc.Text())
	if len(head) != 2 || head[0] != "comm" {
		return nil, fmt.Errorf("graph: bad header %q", sc.Text())
	}
	n, err := strconv.Atoi(head[1])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("graph: bad vertex count %q", head[1])
	}
	g := New(n)
	line := 1
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || strings.HasPrefix(txt, "#") {
			continue
		}
		fields := strings.Fields(txt)
		if fields[0] == "comm" {
			return nil, fmt.Errorf("graph: line %d: duplicate header %q", line, txt)
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: want 'src dst vol', got %q", line, txt)
		}
		s, err1 := strconv.Atoi(fields[0])
		d, err2 := strconv.Atoi(fields[1])
		v, err3 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("graph: line %d: parse error in %q", line, txt)
		}
		if s < 0 || s >= n || d < 0 || d >= n {
			return nil, fmt.Errorf("graph: line %d: vertex out of range in %q", line, txt)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("graph: line %d: non-finite volume in %q", line, txt)
		}
		g.AddTraffic(s, d, v)
	}
	return g, sc.Err()
}
