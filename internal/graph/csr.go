package graph

import (
	"fmt"
	"math"
	"sort"

	"rahtm/internal/telemetry"
)

// Construction telemetry: builds count every Comm brought into existence
// (builder or frozen derived result); freezes count CSR compilations.
var (
	ctrGraphBuild  = telemetry.Default.Counter(telemetry.CtrGraphBuild)
	ctrGraphFreeze = telemetry.Default.Counter(telemetry.CtrGraphFreeze)
)

// Freeze compiles the adjacency maps into the CSR form — sorted
// rowPtr/colIdx/vol arrays plus cached per-vertex out-volumes and the total
// volume — and releases the maps. After Freeze the graph is immutable:
// AddTraffic panics, every traversal is an allocation-free linear scan, and
// derived operations (Coarsen, InducedSubgraph, Permuted, Symmetrized, Clone,
// Scale) emit frozen CSR results directly. Freeze is idempotent and returns
// the receiver for chaining.
//
// Determinism: the CSR rows are compiled in ascending (src, dst) order — the
// same order sortedDsts imposes on every observable map-path iteration — so
// all float accumulations (out-volumes, totals, coarsening sums) are
// bit-identical between the builder and frozen forms.
func (g *Comm) Freeze() *Comm {
	if g.frozen {
		return g
	}
	m := g.NumEdges()
	if m > math.MaxInt32 {
		panic("graph: edge count overflows CSR index")
	}
	rowPtr := make([]int32, g.n+1)
	colIdx := make([]int32, 0, m)
	vol := make([]float64, 0, m)
	for s, a := range g.adj {
		for _, d := range sortedDsts(a) {
			colIdx = append(colIdx, int32(d))
			vol = append(vol, a[d])
		}
		rowPtr[s+1] = int32(len(colIdx))
	}
	g.install(rowPtr, colIdx, vol)
	return g
}

// Frozen reports whether the graph has been compiled to CSR form.
func (g *Comm) Frozen() bool { return g.frozen }

// install adopts compiled CSR arrays (rows must be ascending) and caches the
// volume aggregates. Out-volumes are accumulated per row and the total in one
// global row-major pass — exactly the orders the map path uses in OutVolume
// and TotalVolume — so the cached bits match what the builder would return.
func (g *Comm) install(rowPtr, colIdx []int32, vol []float64) {
	outVol := make([]float64, g.n)
	for s := 0; s < g.n; s++ {
		sum := 0.0
		for k := rowPtr[s]; k < rowPtr[s+1]; k++ {
			sum += vol[k]
		}
		outVol[s] = sum
	}
	tot := 0.0
	for k := range vol {
		tot += vol[k]
	}
	g.rowPtr, g.colIdx, g.vol = rowPtr, colIdx, vol
	g.outVol, g.totVol = outVol, tot
	g.adj = nil
	g.frozen = true
	ctrGraphFreeze.Inc()
}

// newFrozen wraps pre-compiled CSR arrays in a frozen graph.
func newFrozen(n int, rowPtr, colIdx []int32, vol []float64) *Comm {
	ctrGraphBuild.Inc()
	out := &Comm{n: n}
	out.install(rowPtr, colIdx, vol)
	return out
}

// row returns the CSR slices for vertex s. Frozen graphs only.
func (g *Comm) row(s int) ([]int32, []float64) {
	b, e := g.rowPtr[s], g.rowPtr[s+1]
	return g.colIdx[b:e], g.vol[b:e]
}

// rowSorter sorts a CSR row's destination/volume pairs by destination.
// Destinations within a row are unique, so the order of equal keys never
// arises and the result is independent of the sort algorithm.
type rowSorter struct {
	d []int32
	v []float64
}

func (r rowSorter) Len() int           { return len(r.d) }
func (r rowSorter) Less(i, j int) bool { return r.d[i] < r.d[j] }
func (r rowSorter) Swap(i, j int) {
	r.d[i], r.d[j] = r.d[j], r.d[i]
	r.v[i], r.v[j] = r.v[j], r.v[i]
}

// coarsenFrozen is Coarsen over the CSR form. Two passes keep the float sums
// bit-identical to the map path:
//
// Pass A accumulates the intra-cluster volume in global (src, dst) order —
// the map path interleaves intra contributions across clusters in exactly
// that order, and float addition is order-sensitive.
//
// Pass B builds each coarse row by scanning the cluster's members in
// ascending fine id (rows ascending by construction), accumulating into a
// dense per-cluster scratch. For a fixed coarse pair (cs, cd) the fine
// contributions arrive in lexicographic (src, dst) order — the same order the
// map path's AddTraffic calls accumulate that pair.
func (g *Comm) coarsenFrozen(assign []int, parts int) (*Comm, float64) {
	intra := 0.0
	for s := 0; s < g.n; s++ {
		cs := assign[s]
		if cs < 0 || cs >= parts {
			panic(fmt.Sprintf("graph: assignment %d for vertex %d out of range", cs, s))
		}
		for k := g.rowPtr[s]; k < g.rowPtr[s+1]; k++ {
			if assign[g.colIdx[k]] == cs {
				intra += g.vol[k]
			}
		}
	}
	members := make([][]int32, parts)
	for s := 0; s < g.n; s++ {
		members[assign[s]] = append(members[assign[s]], int32(s))
	}
	var (
		rowPtr  = make([]int32, parts+1)
		colIdx  []int32
		vol     []float64
		acc     = make([]float64, parts)
		mark    = make([]int, parts) // mark[cd] == cs+1 when cd is live for row cs
		touched = make([]int32, 0, parts)
	)
	for cs := 0; cs < parts; cs++ {
		touched = touched[:0]
		for _, s := range members[cs] {
			for k := g.rowPtr[s]; k < g.rowPtr[s+1]; k++ {
				cd := assign[g.colIdx[k]]
				if cd == cs {
					continue
				}
				if mark[cd] != cs+1 {
					mark[cd] = cs + 1
					acc[cd] = 0
					touched = append(touched, int32(cd))
				}
				acc[cd] += g.vol[k]
			}
		}
		sort.Sort(int32Slice(touched))
		for _, cd := range touched {
			colIdx = append(colIdx, cd)
			vol = append(vol, acc[cd])
		}
		rowPtr[cs+1] = int32(len(colIdx))
	}
	return newFrozen(parts, rowPtr, colIdx, vol), intra
}

type int32Slice []int32

func (p int32Slice) Len() int           { return len(p) }
func (p int32Slice) Less(i, j int) bool { return p[i] < p[j] }
func (p int32Slice) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }

// inducedFrozen is InducedSubgraph over the CSR form. Each edge carries a
// single stored volume (no accumulation), so only the per-row sort order
// matters and the result is bit-identical to the map path by construction.
func (g *Comm) inducedFrozen(verts []int) (*Comm, map[int]int) {
	local := make(map[int]int, len(verts))
	localOf := make([]int32, g.n)
	for i := range localOf {
		localOf[i] = -1
	}
	for i, v := range verts {
		g.check(v)
		if localOf[v] >= 0 {
			panic("graph: duplicate vertex in InducedSubgraph")
		}
		localOf[v] = int32(i)
		local[v] = i
	}
	rowPtr := make([]int32, len(verts)+1)
	var (
		colIdx []int32
		vol    []float64
	)
	for i, v := range verts {
		start := len(colIdx)
		for k := g.rowPtr[v]; k < g.rowPtr[v+1]; k++ {
			if ld := localOf[g.colIdx[k]]; ld >= 0 {
				colIdx = append(colIdx, ld)
				vol = append(vol, g.vol[k])
			}
		}
		// verts may appear in any order, so local ids within the row are
		// not yet ascending.
		sort.Sort(rowSorter{colIdx[start:], vol[start:]})
		rowPtr[i+1] = int32(len(colIdx))
	}
	return newFrozen(len(verts), rowPtr, colIdx, vol), local
}

// permutedFrozen is Permuted over the CSR form. perm must be a bijection on
// [0, n); each edge carries a single stored volume, so only row order matters.
func (g *Comm) permutedFrozen(perm []int) *Comm {
	seen := make([]bool, g.n)
	for v, p := range perm {
		if p < 0 || p >= g.n {
			panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", p, g.n))
		}
		if seen[p] {
			panic(fmt.Sprintf("graph: permutation maps two vertices to %d", p))
		}
		seen[p] = true
		_ = v
	}
	m := len(g.colIdx)
	rowPtr := make([]int32, g.n+1)
	for s := 0; s < g.n; s++ {
		rowPtr[perm[s]+1] = g.rowPtr[s+1] - g.rowPtr[s]
	}
	for s := 1; s <= g.n; s++ {
		rowPtr[s] += rowPtr[s-1]
	}
	colIdx := make([]int32, m)
	vol := make([]float64, m)
	for s := 0; s < g.n; s++ {
		base := rowPtr[perm[s]]
		for k := g.rowPtr[s]; k < g.rowPtr[s+1]; k++ {
			j := base + k - g.rowPtr[s]
			colIdx[j] = int32(perm[g.colIdx[k]])
			vol[j] = g.vol[k]
		}
		end := rowPtr[perm[s]] + g.rowPtr[s+1] - g.rowPtr[s]
		sort.Sort(rowSorter{colIdx[base:end], vol[base:end]})
	}
	return newFrozen(g.n, rowPtr, colIdx, vol)
}

// symmetrizedFrozen is Symmetrized over the CSR form. The map path adds the
// two half-volumes of an undirected pair {a, b} into out[a][b] in global
// (src, dst) iteration order, i.e. the half from the lexicographically
// smaller directed edge lands first. The merge below reproduces that order:
// when both a->b and b->a exist, out[a][b] = half(a,b) + half(b,a) for a < b
// and half(b,a) + half(a,b) for a > b.
func (g *Comm) symmetrizedFrozen() *Comm {
	// Transpose index: in-edges of each vertex, sources ascending (scanning
	// rows in ascending src order fills each transpose row in order).
	tPtr := make([]int32, g.n+1)
	for _, d := range g.colIdx {
		tPtr[d+1]++
	}
	for i := 1; i <= g.n; i++ {
		tPtr[i] += tPtr[i-1]
	}
	fill := make([]int32, g.n)
	copy(fill, tPtr[:g.n])
	tSrc := make([]int32, len(g.colIdx))
	tVol := make([]float64, len(g.vol))
	for s := 0; s < g.n; s++ {
		for k := g.rowPtr[s]; k < g.rowPtr[s+1]; k++ {
			d := g.colIdx[k]
			tSrc[fill[d]] = int32(s)
			tVol[fill[d]] = g.vol[k]
			fill[d]++
		}
	}
	rowPtr := make([]int32, g.n+1)
	var (
		colIdx []int32
		vol    []float64
	)
	for a := 0; a < g.n; a++ {
		i, iEnd := g.rowPtr[a], g.rowPtr[a+1]
		j, jEnd := tPtr[a], tPtr[a+1]
		for i < iEnd || j < jEnd {
			var b int32
			var val float64
			switch {
			case j >= jEnd || (i < iEnd && g.colIdx[i] < tSrc[j]):
				b, val = g.colIdx[i], g.vol[i]/2
				i++
			case i >= iEnd || tSrc[j] < g.colIdx[i]:
				b, val = tSrc[j], tVol[j]/2
				j++
			default: // both directions exist
				b = g.colIdx[i]
				if int32(a) < b {
					val = g.vol[i]/2 + tVol[j]/2
				} else {
					val = tVol[j]/2 + g.vol[i]/2
				}
				i++
				j++
			}
			// Mirror AddTraffic's drop condition for underflowed halves.
			if !(val <= 0) {
				colIdx = append(colIdx, b)
				vol = append(vol, val)
			}
		}
		rowPtr[a+1] = int32(len(colIdx))
	}
	return newFrozen(g.n, rowPtr, colIdx, vol)
}

// cloneFrozen deep-copies a frozen graph, including the cached aggregates.
func (g *Comm) cloneFrozen() *Comm {
	ctrGraphBuild.Inc()
	ctrGraphFreeze.Inc()
	out := &Comm{
		n:      g.n,
		frozen: true,
		rowPtr: append([]int32(nil), g.rowPtr...),
		colIdx: append([]int32(nil), g.colIdx...),
		vol:    append([]float64(nil), g.vol...),
		outVol: append([]float64(nil), g.outVol...),
		totVol: g.totVol,
	}
	return out
}

// scaleFrozen is Scale over the CSR form, mirroring AddTraffic's drop of
// products that underflow to non-positive values.
func (g *Comm) scaleFrozen(f float64) *Comm {
	rowPtr := make([]int32, g.n+1)
	colIdx := make([]int32, 0, len(g.colIdx))
	vol := make([]float64, 0, len(g.vol))
	for s := 0; s < g.n; s++ {
		for k := g.rowPtr[s]; k < g.rowPtr[s+1]; k++ {
			nv := g.vol[k] * f
			if !(nv <= 0) {
				colIdx = append(colIdx, g.colIdx[k])
				vol = append(vol, nv)
			}
		}
		rowPtr[s+1] = int32(len(colIdx))
	}
	return newFrozen(g.n, rowPtr, colIdx, vol)
}
