// Package cluster implements Phase 1 of RAHTM: clustering the application
// communication graph, first by the concentration factor (processes per
// node) and then level by level into groups of 2^n matching the 2-ary
// n-cube hierarchy of the topology.
//
// The paper found that simple tile-shape search over a logical process grid
// (Figure 2) preserves communication structure better than sophisticated
// min-cut clustering, so tiling is the primary strategy; a heavy-edge
// greedy agglomeration is provided for communication graphs without grid
// structure.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"rahtm/internal/graph"
)

// Result describes one clustering level.
type Result struct {
	Assign      []int       // fine vertex -> cluster id
	NumClusters int         // number of clusters produced
	Coarse      *graph.Comm // cluster-level communication graph
	IntraVolume float64     // volume absorbed inside clusters
	TileShape   []int       // chosen tile shape (nil for greedy clustering)
	GridDims    []int       // cluster-level grid (nil for greedy clustering)
}

// TileGrid clusters the vertices of g — assumed to be laid out row-major on
// a logical grid of shape gridDims — into tiles of exactly tileVol vertices.
// It searches every tile shape whose sides divide the grid and whose volume
// is tileVol, picking the one that maximizes intra-tile volume (equivalently
// minimizes inter-tile communication). Cluster ids are row-major tile
// indices, so the coarse graph remains a grid of shape gridDims/tile.
func TileGrid(g *graph.Comm, gridDims []int, tileVol int) (*Result, error) {
	n := 1
	for _, d := range gridDims {
		if d < 1 {
			return nil, fmt.Errorf("cluster: bad grid dimension %d", d)
		}
		n *= d
	}
	if n != g.N() {
		return nil, fmt.Errorf("cluster: grid %v has %d cells, graph has %d vertices", gridDims, n, g.N())
	}
	if tileVol < 1 || n%tileVol != 0 {
		return nil, fmt.Errorf("cluster: tile volume %d does not divide %d vertices", tileVol, n)
	}
	if tileVol == 1 {
		res := &Result{
			Assign:      identity(n),
			NumClusters: n,
			Coarse:      g.Clone(),
			TileShape:   ones(len(gridDims)),
			GridDims:    append([]int(nil), gridDims...),
		}
		return res, nil
	}

	shapes := tileShapes(gridDims, tileVol)
	if len(shapes) == 0 {
		return nil, fmt.Errorf("cluster: no tile of volume %d fits grid %v", tileVol, gridDims)
	}
	var best *Result
	for _, shape := range shapes {
		assign, parts := tileAssignment(gridDims, shape)
		coarse, intra := g.Coarsen(assign, parts)
		if best == nil || intra > best.IntraVolume {
			gd := make([]int, len(gridDims))
			for d := range gd {
				gd[d] = gridDims[d] / shape[d]
			}
			best = &Result{
				Assign:      assign,
				NumClusters: parts,
				Coarse:      coarse,
				IntraVolume: intra,
				TileShape:   shape,
				GridDims:    gd,
			}
		}
	}
	return best, nil
}

// tileShapes enumerates every shape with product tileVol whose sides divide
// the grid, in deterministic order.
func tileShapes(gridDims []int, tileVol int) [][]int {
	var out [][]int
	shape := make([]int, len(gridDims))
	var rec func(d, rem int)
	rec = func(d, rem int) {
		if d == len(gridDims) {
			if rem == 1 {
				out = append(out, append([]int(nil), shape...))
			}
			return
		}
		for s := 1; s <= gridDims[d] && s <= rem; s++ {
			if gridDims[d]%s != 0 || rem%s != 0 {
				continue
			}
			shape[d] = s
			rec(d+1, rem/s)
		}
	}
	rec(0, tileVol)
	return out
}

// tileAssignment maps each grid cell to its row-major tile index.
func tileAssignment(gridDims, tile []int) ([]int, int) {
	nd := len(gridDims)
	tilesPerDim := make([]int, nd)
	parts := 1
	for d := 0; d < nd; d++ {
		tilesPerDim[d] = gridDims[d] / tile[d]
		parts *= tilesPerDim[d]
	}
	n := 1
	for _, d := range gridDims {
		n *= d
	}
	assign := make([]int, n)
	coord := make([]int, nd)
	for v := 0; v < n; v++ {
		// Decode v row-major into coord.
		r := v
		for d := 0; d < nd; d++ {
			stride := 1
			for e := d + 1; e < nd; e++ {
				stride *= gridDims[e]
			}
			coord[d] = r / stride
			r %= stride
		}
		// Tile index, row-major over tilesPerDim.
		idx := 0
		for d := 0; d < nd; d++ {
			idx = idx*tilesPerDim[d] + coord[d]/tile[d]
		}
		assign[v] = idx
	}
	return assign, parts
}

// Greedy clusters g into groups of exactly groupSize (a power of two) by
// repeated heavy-edge pairing: log2(groupSize) rounds, each pairing the
// current clusters along their heaviest mutual volume. It is the fallback
// when the communication graph has no grid structure.
func Greedy(g *graph.Comm, groupSize int) (*Result, error) {
	if groupSize < 1 || groupSize&(groupSize-1) != 0 {
		return nil, fmt.Errorf("cluster: greedy group size %d is not a power of two", groupSize)
	}
	if g.N()%groupSize != 0 {
		return nil, fmt.Errorf("cluster: group size %d does not divide %d vertices", groupSize, g.N())
	}
	assign := identity(g.N())
	cur := g.Clone()
	intraTotal := 0.0
	for sz := 1; sz < groupSize; sz *= 2 {
		pair := heavyEdgePairs(cur)
		var intra float64
		cur, intra = cur.Coarsen(pair, cur.N()/2)
		intraTotal += intra
		for v := range assign {
			assign[v] = pair[assign[v]]
		}
	}
	return &Result{
		Assign:      assign,
		NumClusters: g.N() / groupSize,
		Coarse:      cur,
		IntraVolume: intraTotal,
	}, nil
}

// heavyEdgePairs pairs the vertices of g (even count) greedily by
// decreasing symmetric edge volume; leftover vertices are paired
// arbitrarily but deterministically. Returns vertex -> pair id.
func heavyEdgePairs(g *graph.Comm) []int {
	n := g.N()
	type edge struct {
		u, v int
		w    float64
	}
	var edges []edge
	g.EachFlow(func(s, d int, vol float64) {
		if s < d {
			edges = append(edges, edge{s, d, vol + g.Traffic(d, s)})
		}
	})
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w > edges[j].w {
			return true
		}
		if edges[i].w < edges[j].w {
			return false
		}
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	pair := make([]int, n)
	for i := range pair {
		pair[i] = -1
	}
	next := 0
	for _, e := range edges {
		if pair[e.u] == -1 && pair[e.v] == -1 {
			pair[e.u], pair[e.v] = next, next
			next++
		}
	}
	// Pair the unmatched in index order.
	last := -1
	for v := 0; v < n; v++ {
		if pair[v] != -1 {
			continue
		}
		if last == -1 {
			last = v
		} else {
			pair[last], pair[v] = next, next
			next++
			last = -1
		}
	}
	return pair
}

// Auto tiles when gridDims is non-nil and a fitting tile exists, otherwise
// falls back to Greedy (which requires a power-of-two group size).
func Auto(g *graph.Comm, gridDims []int, groupSize int) (*Result, error) {
	if gridDims != nil {
		res, err := TileGrid(g, gridDims, groupSize)
		if err == nil {
			return res, nil
		}
	}
	return Greedy(g, groupSize)
}

// Quality reports the fraction of total volume a clustering keeps inside
// clusters (1 = everything local, 0 = everything crosses).
func Quality(g *graph.Comm, r *Result) float64 {
	tot := g.TotalVolume()
	if tot == 0 {
		return 1
	}
	q := r.IntraVolume / tot
	if math.IsNaN(q) {
		return 0
	}
	return q
}

func identity(n int) []int {
	a := make([]int, n)
	for i := range a {
		a[i] = i
	}
	return a
}

func ones(n int) []int {
	a := make([]int, n)
	for i := range a {
		a[i] = 1
	}
	return a
}
