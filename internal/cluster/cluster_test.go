package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rahtm/internal/graph"
)

// grid2D builds a 2-D nearest-neighbor (halo) communication graph on an
// r x c row-major grid with per-edge volume w, periodic when wrap is set.
func grid2D(r, c int, w float64, wrap bool) *graph.Comm {
	g := graph.New(r * c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c || wrap {
				g.AddTraffic(id(i, j), id(i, (j+1)%c), w)
				g.AddTraffic(id(i, (j+1)%c), id(i, j), w)
			}
			if i+1 < r || wrap {
				g.AddTraffic(id(i, j), id((i+1)%r, j), w)
				g.AddTraffic(id((i+1)%r, j), id(i, j), w)
			}
		}
	}
	return g
}

func TestTileGridSquareTileForIsotropicStencil(t *testing.T) {
	g := grid2D(4, 4, 1, false)
	res, err := TileGrid(g, []int{4, 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// For an isotropic stencil the 2x2 tile absorbs the most volume.
	if res.TileShape[0] != 2 || res.TileShape[1] != 2 {
		t.Fatalf("tile = %v, want [2 2]", res.TileShape)
	}
	if res.NumClusters != 4 {
		t.Fatalf("clusters = %d, want 4", res.NumClusters)
	}
	if res.GridDims[0] != 2 || res.GridDims[1] != 2 {
		t.Fatalf("coarse grid = %v, want [2 2]", res.GridDims)
	}
}

func TestTileGridAnisotropicPrefersElongatedTile(t *testing.T) {
	// Heavy row-direction traffic: a 1x4 tile absorbs the heavy edges.
	g := graph.New(16)
	id := func(i, j int) int { return i*4 + j }
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if j+1 < 4 {
				g.AddTraffic(id(i, j), id(i, j+1), 100)
			}
			if i+1 < 4 {
				g.AddTraffic(id(i, j), id(i+1, j), 1)
			}
		}
	}
	res, err := TileGrid(g, []int{4, 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.TileShape[0] != 1 || res.TileShape[1] != 4 {
		t.Fatalf("tile = %v, want [1 4]", res.TileShape)
	}
}

func TestTileGridClusterIdsAreRowMajor(t *testing.T) {
	g := grid2D(4, 4, 1, false)
	res, err := TileGrid(g, []int{4, 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// With 2x2 tiles, vertex (0,0) is in tile 0, (0,2) in tile 1,
	// (2,0) in tile 2, (2,2) in tile 3.
	if res.Assign[0] != 0 || res.Assign[2] != 1 || res.Assign[8] != 2 || res.Assign[10] != 3 {
		t.Fatalf("assignment not row-major: %v", res.Assign)
	}
}

func TestTileGridTileVolumeOne(t *testing.T) {
	g := grid2D(2, 2, 1, false)
	res, err := TileGrid(g, []int{2, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 4 || res.IntraVolume != 0 {
		t.Fatalf("unexpected: %+v", res)
	}
	if !res.Coarse.Equal(g, 0) {
		t.Fatal("volume-1 tiling must preserve the graph")
	}
}

func TestTileGridErrors(t *testing.T) {
	g := grid2D(4, 4, 1, false)
	if _, err := TileGrid(g, []int{4, 4}, 3); err == nil {
		t.Fatal("expected error: 3 does not divide 16 into fitting tiles")
	}
	if _, err := TileGrid(g, []int{4, 3}, 4); err == nil {
		t.Fatal("expected error: grid size mismatch")
	}
	if _, err := TileGrid(g, []int{0, 4}, 4); err == nil {
		t.Fatal("expected error: zero grid dim")
	}
	if _, err := TileGrid(g, []int{4, 4}, 5); err == nil {
		t.Fatal("expected error: volume 5 does not divide")
	}
}

func TestGreedyPairsHeaviestEdges(t *testing.T) {
	g := graph.New(4)
	g.AddTraffic(0, 3, 100)
	g.AddTraffic(1, 2, 90)
	g.AddTraffic(0, 1, 1)
	res, err := Greedy(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[0] != res.Assign[3] || res.Assign[1] != res.Assign[2] {
		t.Fatalf("heavy pairs split: %v", res.Assign)
	}
	if res.IntraVolume != 190 {
		t.Fatalf("intra = %v, want 190", res.IntraVolume)
	}
}

func TestGreedyGroupSizeFour(t *testing.T) {
	g := grid2D(4, 4, 1, false)
	res, err := Greedy(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 4 {
		t.Fatalf("clusters = %d, want 4", res.NumClusters)
	}
	counts := make(map[int]int)
	for _, c := range res.Assign {
		counts[c]++
	}
	for c, n := range counts {
		if n != 4 {
			t.Fatalf("cluster %d has %d members, want 4", c, n)
		}
	}
}

func TestGreedyErrors(t *testing.T) {
	g := graph.New(6)
	if _, err := Greedy(g, 3); err == nil {
		t.Fatal("expected error: non-power-of-two group")
	}
	if _, err := Greedy(g, 4); err == nil {
		t.Fatal("expected error: 4 does not divide 6")
	}
}

func TestGreedyDisconnectedVerticesStillGrouped(t *testing.T) {
	g := graph.New(8) // no edges at all
	res, err := Greedy(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	for _, c := range res.Assign {
		counts[c]++
	}
	if len(counts) != 2 {
		t.Fatalf("clusters = %d, want 2", len(counts))
	}
	for _, n := range counts {
		if n != 4 {
			t.Fatalf("uneven clusters: %v", counts)
		}
	}
}

func TestAutoPrefersTilingThenFallsBack(t *testing.T) {
	g := grid2D(4, 4, 1, false)
	res, err := Auto(g, []int{4, 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.TileShape == nil {
		t.Fatal("auto should have tiled")
	}
	//

	// Grid dims that do not fit force the greedy path.
	res, err = Auto(g, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.TileShape != nil {
		t.Fatal("auto without grid dims must use greedy")
	}
}

func TestQuality(t *testing.T) {
	g := grid2D(4, 4, 1, false)
	res, err := TileGrid(g, []int{4, 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := Quality(g, res)
	if q <= 0 || q >= 1 {
		t.Fatalf("quality = %v, want in (0,1)", q)
	}
	empty := graph.New(4)
	r2, err := TileGrid(empty, []int{2, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if Quality(empty, r2) != 1 {
		t.Fatal("empty graph quality should be 1")
	}
}

// Property: every tiling produces clusters of exactly tileVol members and
// conserves volume.
func TestQuickTilingInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := []int{2, 4, 8}[rng.Intn(3)]
		c := []int{2, 4, 8}[rng.Intn(3)]
		g := graph.New(r * c)
		for e := 0; e < r*c; e++ {
			g.AddTraffic(rng.Intn(r*c), rng.Intn(r*c), float64(1+rng.Intn(9)))
		}
		vols := []int{2, 4}
		vol := vols[rng.Intn(len(vols))]
		res, err := TileGrid(g, []int{r, c}, vol)
		if err != nil {
			return false
		}
		counts := make(map[int]int)
		for _, cl := range res.Assign {
			counts[cl]++
		}
		for _, n := range counts {
			if n != vol {
				return false
			}
		}
		diff := res.Coarse.TotalVolume() + res.IntraVolume - g.TotalVolume()
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: greedy clustering conserves volume too.
func TestQuickGreedyVolumeConservation(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 * (1 + rng.Intn(3))
		g := graph.New(n)
		for e := 0; e < 3*n; e++ {
			g.AddTraffic(rng.Intn(n), rng.Intn(n), float64(1+rng.Intn(9)))
		}
		res, err := Greedy(g, 8)
		if err != nil {
			return n%8 != 0
		}
		diff := res.Coarse.TotalVolume() + res.IntraVolume - g.TotalVolume()
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
