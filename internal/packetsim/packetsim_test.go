package packetsim

import (
	"math"
	"testing"

	"rahtm/internal/graph"
	"rahtm/internal/routing"
	"rahtm/internal/topology"
)

func TestSingleFlowSerialization(t *testing.T) {
	tp := topology.NewMesh(2)
	g := graph.New(2)
	g.AddTraffic(0, 1, 10)
	res, err := Simulate(tp, g, topology.Identity(2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 10 {
		t.Fatalf("packets = %d, want 10", res.Packets)
	}
	// One link at 1 packet/cycle: at least 10 cycles, and little more.
	if res.Cycles < 10 || res.Cycles > 15 {
		t.Fatalf("cycles = %d, want ~10-15", res.Cycles)
	}
	if res.AvgHops != 1 {
		t.Fatalf("avg hops = %v, want 1", res.AvgHops)
	}
}

func TestPacketization(t *testing.T) {
	tp := topology.NewMesh(2)
	g := graph.New(2)
	g.AddTraffic(0, 1, 1024)
	res, err := Simulate(tp, g, topology.Identity(2), Config{PacketBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 11 { // ceil(1024/100)
		t.Fatalf("packets = %d, want 11", res.Packets)
	}
}

func TestColocatedTrafficFree(t *testing.T) {
	tp := topology.NewMesh(2)
	g := graph.New(4)
	g.AddTraffic(0, 1, 1e6)
	res, err := Simulate(tp, g, topology.Mapping{0, 0, 1, 1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 0 || res.Cycles != 0 {
		t.Fatalf("co-located traffic simulated: %+v", res)
	}
}

func TestHopsAreMinimal(t *testing.T) {
	tp := topology.NewTorus(4, 4)
	g := graph.New(16)
	g.AddTraffic(0, 15, 7)
	g.AddTraffic(3, 9, 5)
	g.AddTraffic(5, 6, 2)
	m := topology.Identity(16)
	res, err := Simulate(tp, g, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	wantHops := 7*tp.MinDistance(0, 15) + 5*tp.MinDistance(3, 9) + 2*tp.MinDistance(5, 6)
	if res.TotalHops != wantHops {
		t.Fatalf("total hops = %d, want %d (adaptive routing must stay minimal)", res.TotalHops, wantHops)
	}
}

func TestAdaptiveBeatsConcentration(t *testing.T) {
	// The Figure 1 validation at packet level: a heavy diagonal pair
	// (paths split adaptively) completes faster than the same pair on
	// adjacent nodes (single bottleneck link).
	tp := topology.NewMesh(2, 2)
	heavy := 400.0
	g := graph.New(4)
	g.AddTraffic(0, 1, heavy)
	adjacent := topology.Mapping{0, 1, 2, 3} // distance 1
	diagonal := topology.Mapping{0, 3, 1, 2} // distance 2, two paths
	ra, err := Simulate(tp, g, adjacent, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Simulate(tp, g, diagonal, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rd.Cycles >= ra.Cycles {
		t.Fatalf("diagonal %d cycles, adjacent %d: adaptivity should win", rd.Cycles, ra.Cycles)
	}
	// Roughly 2x: two links instead of one.
	if float64(ra.Cycles)/float64(rd.Cycles) < 1.5 {
		t.Fatalf("speedup only %v, want ~2x", float64(ra.Cycles)/float64(rd.Cycles))
	}
}

func TestSimulationValidatesMCLPrediction(t *testing.T) {
	// Core validation: lower MCL must mean fewer simulated cycles for the
	// same traffic. Compare the default mapping with a deliberately awful
	// one on a CG-like pattern.
	// A periodic 4x4 halo: the identity mapping is contention-free
	// (every flow distance 1), while an interleaved mapping stretches
	// every flow across the machine.
	tp := topology.NewTorus(4, 4)
	g := graph.New(16)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			id := i*4 + j
			g.AddTraffic(id, i*4+(j+1)%4, 40)
			g.AddTraffic(id, ((i+1)%4)*4+j, 40)
		}
	}
	good := topology.Identity(16)
	bad := make(topology.Mapping, 16)
	for i := range bad {
		bad[i] = (i*7 + 3) % 16
	}
	mclGood := routing.MaxChannelLoad(tp, g, good, routing.MinimalAdaptive{})
	mclBad := routing.MaxChannelLoad(tp, g, bad, routing.MinimalAdaptive{})
	if mclBad < 2*mclGood {
		t.Fatalf("test setup: want a decisive MCL gap, got %v vs %v", mclGood, mclBad)
	}
	// High injection rate so links — not NICs — are the bottleneck, as in
	// the paper's bandwidth-bound benchmarks.
	cfg := Config{Seed: 2, InjectionRate: 64}
	rGood, err := Simulate(tp, g, good, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rBad, err := Simulate(tp, g, bad, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rGood.Cycles >= rBad.Cycles {
		t.Fatalf("MCL (%v vs %v) and simulation (%d vs %d cycles) disagree",
			mclGood, mclBad, rGood.Cycles, rBad.Cycles)
	}
}

func TestDeterminismBySeed(t *testing.T) {
	tp := topology.NewTorus(4, 4)
	g := graph.New(16)
	for i := 0; i < 16; i++ {
		g.AddTraffic(i, (i+5)%16, 20)
	}
	m := topology.Identity(16)
	a, err := Simulate(tp, g, m, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(tp, g, m, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.AvgLatency != b.AvgLatency {
		t.Fatal("same seed, different outcome")
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	tp := topology.NewMesh(2)
	g := graph.New(2)
	g.AddTraffic(0, 1, 1000)
	if _, err := Simulate(tp, g, topology.Identity(2), Config{MaxCycles: 3}); err == nil {
		t.Fatal("expected abort")
	}
}

func TestMappingMismatch(t *testing.T) {
	tp := topology.NewMesh(2)
	g := graph.New(3)
	if _, err := Simulate(tp, g, topology.Mapping{0, 1}, Config{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestCompareMappings(t *testing.T) {
	tp := topology.NewMesh(2, 2)
	g := graph.New(4)
	g.AddTraffic(0, 1, 50)
	g.AddTraffic(2, 3, 50)
	out, err := CompareMappings(tp, g, map[string]topology.Mapping{
		"identity": topology.Identity(4),
		"swapped":  {3, 2, 1, 0},
	}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Name != "identity" || out[1].Name != "swapped" {
		t.Fatalf("results = %+v", out)
	}
}

func TestLatencyAccounting(t *testing.T) {
	tp := topology.NewMesh(3)
	g := graph.New(3)
	g.AddTraffic(0, 2, 1)
	res, err := Simulate(tp, g, topology.Identity(3), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// One packet over two hops: latency exactly 2 cycles.
	if math.Abs(res.AvgLatency-2) > 1e-12 || res.MaxLatency != 2 {
		t.Fatalf("latency = %v/%d, want 2/2", res.AvgLatency, res.MaxLatency)
	}
}
