// Package packetsim is a cycle-based packet-level network simulator for
// torus/mesh topologies with minimal adaptive routing. It complements the
// analytic flow-level model in internal/netsim: where netsim *assumes*
// communication time is governed by the maximum channel load, packetsim
// actually queues and forwards packets hop by hop, with per-hop adaptive
// output selection (shortest queue among minimal directions) — a faithful,
// if simplified, stand-in for BG/Q's minimal adaptive routing.
//
// RAHTM's claim rests on MCL predicting throughput; the simulator lets the
// repository validate that claim instead of assuming it (see the
// correlation tests and BenchmarkPacketSimValidation).
package packetsim

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"rahtm/internal/graph"
	"rahtm/internal/topology"
)

// Config tunes the simulation. The zero value is usable.
type Config struct {
	// PacketBytes is the payload per packet; flow volumes are divided into
	// ceil(vol/PacketBytes) packets (0 = 1.0, i.e. volumes are packet
	// counts).
	PacketBytes float64
	// InjectionRate is packets a node may inject per cycle (0 = 2).
	InjectionRate int
	// Seed drives stochastic tie-breaks in adaptive output selection.
	Seed int64
	// MaxCycles aborts pathological runs (0 = 10,000,000).
	MaxCycles int
}

// Result reports the outcome of a simulation.
type Result struct {
	Cycles       int     // cycles until the last packet was delivered
	Packets      int     // packets injected and delivered
	AvgLatency   float64 // mean inject-to-deliver latency in cycles
	MaxLatency   int     // worst packet latency
	MaxQueueLen  int     // deepest channel queue observed
	TotalHops    int     // hops travelled by all packets
	AvgHops      float64 // TotalHops / Packets
	MinimalRatio float64 // fraction of packets that travelled a minimal route (always 1)
}

// packet is one in-flight unit.
type packet struct {
	dst      int
	injected int
	hops     int
}

// Simulate runs graph g mapped by m on topology t until every packet is
// delivered, returning timing and queueing statistics.
func Simulate(t *topology.Torus, g *graph.Comm, m topology.Mapping, cfg Config) (*Result, error) {
	//rahtm:allow(ctxpoll): compatibility wrapper; the root context is the documented default for the non-Ctx API
	return SimulateCtx(context.Background(), t, g, m, cfg)
}

// SimulateCtx is Simulate under a context, polled every 512 cycles. A
// half-finished simulation has no meaningful statistics, so both hard
// cancellation and deadline expiry abort with ctx.Err().
func SimulateCtx(ctx context.Context, t *topology.Torus, g *graph.Comm, m topology.Mapping, cfg Config) (*Result, error) {
	if len(m) != g.N() {
		return nil, fmt.Errorf("packetsim: mapping covers %d tasks, graph has %d", len(m), g.N())
	}
	packetBytes := cfg.PacketBytes
	if packetBytes <= 0 {
		packetBytes = 1
	}
	injRate := cfg.InjectionRate
	if injRate <= 0 {
		injRate = 2
	}
	maxCycles := cfg.MaxCycles
	if maxCycles <= 0 {
		maxCycles = 10_000_000
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 0x5eed))

	// Build per-node pending packet lists from the node-aggregated flows.
	pending := make([][]packet, t.N())
	totalPackets := 0
	for _, f := range g.Flows() {
		src, dst := m[f.Src], m[f.Dst]
		if src == dst {
			continue
		}
		n := int((f.Vol + packetBytes - 1) / packetBytes)
		for k := 0; k < n; k++ {
			pending[src] = append(pending[src], packet{dst: dst})
			totalPackets++
		}
	}
	// Shuffle each node's pending list so flows interleave rather than
	// draining one destination at a time.
	for n := range pending {
		rng.Shuffle(len(pending[n]), func(i, j int) {
			pending[n][i], pending[n][j] = pending[n][j], pending[n][i]
		})
	}
	res := &Result{Packets: totalPackets, MinimalRatio: 1}
	if totalPackets == 0 {
		return res, nil
	}

	queues := make([][]packet, t.NumChannels())
	qHead := make([]int, t.NumChannels())
	delivered := 0
	sumLatency := 0

	// candidate buffers reused per routing decision.
	var cand []int

	// route picks the output channel for a packet at node cur: the minimal
	// direction(s) toward dst, shortest queue first, random tie-break.
	route := func(cur int, dst int) int {
		cand = cand[:0]
		cc := t.CoordOf(cur, nil)
		cd := t.CoordOf(dst, nil)
		for d := 0; d < t.NumDims(); d++ {
			if cc[d] == cd[d] {
				continue
			}
			k := t.Dim(d)
			if !t.Wrap(d) {
				if cd[d] > cc[d] {
					cand = append(cand, t.ChannelID(cur, d, topology.Plus))
				} else {
					cand = append(cand, t.ChannelID(cur, d, topology.Minus))
				}
				continue
			}
			plus := ((cd[d]-cc[d])%k + k) % k
			minus := k - plus
			if plus <= minus {
				cand = append(cand, t.ChannelID(cur, d, topology.Plus))
			}
			if minus <= plus {
				cand = append(cand, t.ChannelID(cur, d, topology.Minus))
			}
		}
		best := -1
		bestLen := 0
		ties := 0
		for _, ch := range cand {
			l := len(queues[ch]) - qHead[ch]
			switch {
			case best == -1 || l < bestLen:
				best, bestLen, ties = ch, l, 1
			case l == bestLen:
				ties++
				if rng.Intn(ties) == 0 {
					best = ch
				}
			}
		}
		return best
	}

	pendHead := make([]int, t.N())
	for cycle := 1; cycle <= maxCycles; cycle++ {
		if cycle&511 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Phase 1: each channel delivers its head packet to the neighbor.
		type arrival struct {
			node int
			pkt  packet
		}
		var arrivals []arrival
		for ch := range queues {
			if qHead[ch] >= len(queues[ch]) {
				continue
			}
			pkt := queues[ch][qHead[ch]]
			qHead[ch]++
			node, dim, dir := t.DecodeChannel(ch)
			next, ok := t.NeighborRank(node, dim, dir)
			if !ok {
				return nil, fmt.Errorf("packetsim: packet on non-existent channel %d", ch)
			}
			pkt.hops++
			arrivals = append(arrivals, arrival{node: next, pkt: pkt})
			// Compact fully drained queues.
			if qHead[ch] == len(queues[ch]) {
				queues[ch] = queues[ch][:0]
				qHead[ch] = 0
			}
		}
		// Phase 2: route arrivals onward or deliver.
		for _, a := range arrivals {
			if a.node == a.pkt.dst {
				delivered++
				lat := cycle - a.pkt.injected
				sumLatency += lat
				if lat > res.MaxLatency {
					res.MaxLatency = lat
				}
				res.TotalHops += a.pkt.hops
				continue
			}
			ch := route(a.node, a.pkt.dst)
			queues[ch] = append(queues[ch], a.pkt)
		}
		// Phase 3: inject new packets.
		for n := 0; n < t.N(); n++ {
			for k := 0; k < injRate && pendHead[n] < len(pending[n]); k++ {
				pkt := pending[n][pendHead[n]]
				pendHead[n]++
				pkt.injected = cycle
				ch := route(n, pkt.dst)
				queues[ch] = append(queues[ch], pkt)
			}
		}
		// Track queue depth.
		for ch := range queues {
			if l := len(queues[ch]) - qHead[ch]; l > res.MaxQueueLen {
				res.MaxQueueLen = l
			}
		}
		if delivered == totalPackets {
			res.Cycles = cycle
			res.AvgLatency = float64(sumLatency) / float64(totalPackets)
			res.AvgHops = float64(res.TotalHops) / float64(totalPackets)
			return res, nil
		}
	}
	return nil, fmt.Errorf("packetsim: %d of %d packets undelivered after %d cycles",
		totalPackets-delivered, totalPackets, maxCycles)
}

// CompareMappings simulates several mappings of the same traffic and
// returns completion cycles per mapping name, sorted by name for
// deterministic reporting.
func CompareMappings(t *topology.Torus, g *graph.Comm, ms map[string]topology.Mapping, cfg Config) ([]NamedResult, error) {
	names := make([]string, 0, len(ms))
	for name := range ms {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]NamedResult, 0, len(names))
	for _, name := range names {
		r, err := Simulate(t, g, ms[name], cfg)
		if err != nil {
			return nil, fmt.Errorf("packetsim: %s: %w", name, err)
		}
		out = append(out, NamedResult{Name: name, Result: r})
	}
	return out, nil
}

// NamedResult pairs a mapping name with its simulation result.
type NamedResult struct {
	Name   string
	Result *Result
}
