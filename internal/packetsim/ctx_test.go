package packetsim

import (
	"context"
	"errors"
	"testing"
	"time"

	"rahtm/internal/graph"
	"rahtm/internal/topology"
)

// heavyTraffic builds all-to-all traffic big enough that the simulation
// spans many hundreds of cycles, so the every-512-cycles poll fires.
func heavyTraffic() (*topology.Torus, *graph.Comm, topology.Mapping) {
	t := topology.NewTorus(4, 4)
	g := graph.New(t.N())
	for i := 0; i < t.N(); i++ {
		for j := 0; j < t.N(); j++ {
			if i != j {
				g.AddTraffic(i, j, 200)
			}
		}
	}
	return t, g, topology.Identity(t.N())
}

func TestSimulateCtxBackground(t *testing.T) {
	tp, g, m := heavyTraffic()
	res, err := SimulateCtx(context.Background(), tp, g, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 512 {
		t.Fatalf("simulation finished in %d cycles; traffic too light to exercise the ctx poll", res.Cycles)
	}
}

func TestSimulateCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tp, g, m := heavyTraffic()
	_, err := SimulateCtx(ctx, tp, g, m, Config{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSimulateCtxDeadlineAborts(t *testing.T) {
	// Unlike the mapping pipeline, a half-run simulation has no valid
	// statistics, so deadline expiry is an error too.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	tp, g, m := heavyTraffic()
	_, err := SimulateCtx(ctx, tp, g, m, Config{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
