// Package metrics computes mapping-quality metrics used throughout the
// mapping literature: hop-bytes (the routing-oblivious metric the paper
// argues against in Figure 1), dilation, and channel-load statistics.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"rahtm/internal/graph"
	"rahtm/internal/routing"
	"rahtm/internal/topology"
)

// HopBytes is the classic routing-unaware metric: the sum over flows of
// volume times minimal hop distance. Lower means less total traffic moved,
// but — as the paper's Figure 1 shows — not necessarily lower contention
// under adaptive routing.
func HopBytes(t *topology.Torus, g *graph.Comm, m topology.Mapping) float64 {
	total := 0.0
	g.EachFlow(func(fs, fd int, vol float64) {
		s, d := m[fs], m[fd]
		if s == d {
			return
		}
		total += vol * float64(t.MinDistance(s, d))
	})
	return total
}

// Dilation is the maximum minimal-hop distance over flows with positive
// volume (0 for empty graphs or fully co-located mappings).
func Dilation(t *topology.Torus, g *graph.Comm, m topology.Mapping) int {
	max := 0
	g.EachFlow(func(fs, fd int, vol float64) {
		s, d := m[fs], m[fd]
		if s == d {
			return
		}
		if dd := t.MinDistance(s, d); dd > max {
			max = dd
		}
	})
	return max
}

// AvgDilation is the volume-weighted average hop distance (hop-bytes per
// byte).
func AvgDilation(t *topology.Torus, g *graph.Comm, m topology.Mapping) float64 {
	vol := 0.0
	g.EachFlow(func(fs, fd int, v float64) {
		if m[fs] != m[fd] {
			vol += v
		}
	})
	if vol == 0 {
		return 0
	}
	return HopBytes(t, g, m) / vol
}

// Report bundles the quality metrics of one mapping under one routing model.
type Report struct {
	MCL         float64 // maximum channel load
	MeanLoad    float64 // mean load over physical links
	HopBytes    float64
	Dilation    int
	AvgDilation float64
	P99Load     float64 // 99th-percentile channel load
	Imbalance   float64 // MCL / mean load (1 = perfectly balanced)
}

// Measure computes a full quality report.
func Measure(t *topology.Torus, g *graph.Comm, m topology.Mapping, alg routing.Algorithm) Report {
	loads := routing.ChannelLoads(t, g, m, alg)
	st := routing.Stats(t, loads)
	var phys []float64
	for ch, v := range loads {
		node, dim, dir := t.DecodeChannel(ch)
		if t.ChannelExists(node, dim, dir) {
			phys = append(phys, v)
		}
	}
	sort.Float64s(phys)
	p99 := 0.0
	if len(phys) > 0 {
		p99 = phys[int(math.Ceil(float64(len(phys))*0.99))-1]
	}
	imb := 0.0
	if st.Mean > 0 {
		imb = st.MCL / st.Mean
	}
	return Report{
		MCL:         st.MCL,
		MeanLoad:    st.Mean,
		HopBytes:    HopBytes(t, g, m),
		Dilation:    Dilation(t, g, m),
		AvgDilation: AvgDilation(t, g, m),
		P99Load:     p99,
		Imbalance:   imb,
	}
}

// String renders the report compactly.
func (r Report) String() string {
	return fmt.Sprintf("MCL=%.4g mean=%.4g hop-bytes=%.4g dilation=%d avg-dil=%.3g p99=%.4g imbalance=%.3g",
		r.MCL, r.MeanLoad, r.HopBytes, r.Dilation, r.AvgDilation, r.P99Load, r.Imbalance)
}
