package metrics

import (
	"math"
	"strings"
	"testing"

	"rahtm/internal/graph"
	"rahtm/internal/routing"
	"rahtm/internal/topology"
)

func TestHopBytes(t *testing.T) {
	tp := topology.NewMesh(4)
	g := graph.New(4)
	g.AddTraffic(0, 3, 2) // distance 3
	g.AddTraffic(1, 2, 5) // distance 1
	hb := HopBytes(tp, g, topology.Identity(4))
	if hb != 2*3+5*1 {
		t.Fatalf("hop-bytes = %v, want 11", hb)
	}
}

func TestHopBytesColocated(t *testing.T) {
	tp := topology.NewMesh(2)
	g := graph.New(2)
	g.AddTraffic(0, 1, 100)
	if hb := HopBytes(tp, g, topology.Mapping{0, 0}); hb != 0 {
		t.Fatalf("co-located hop-bytes = %v", hb)
	}
}

func TestDilation(t *testing.T) {
	tp := topology.NewTorus(8)
	g := graph.New(8)
	g.AddTraffic(0, 4, 1) // distance 4 on the ring
	g.AddTraffic(0, 1, 9)
	if d := Dilation(tp, g, topology.Identity(8)); d != 4 {
		t.Fatalf("dilation = %d, want 4", d)
	}
	if d := Dilation(tp, graph.New(8), topology.Identity(8)); d != 0 {
		t.Fatalf("empty dilation = %d", d)
	}
}

func TestAvgDilation(t *testing.T) {
	tp := topology.NewMesh(4)
	g := graph.New(4)
	g.AddTraffic(0, 1, 1) // dist 1
	g.AddTraffic(0, 3, 1) // dist 3
	if ad := AvgDilation(tp, g, topology.Identity(4)); math.Abs(ad-2) > 1e-12 {
		t.Fatalf("avg dilation = %v, want 2", ad)
	}
	if ad := AvgDilation(tp, graph.New(4), topology.Identity(4)); ad != 0 {
		t.Fatalf("empty avg dilation = %v", ad)
	}
}

func TestMeasureConsistency(t *testing.T) {
	tp := topology.NewTorus(4, 4)
	g := graph.New(16)
	for i := 0; i < 16; i++ {
		g.AddTraffic(i, (i+3)%16, float64(1+i%4))
	}
	m := topology.Identity(16)
	rep := Measure(tp, g, m, routing.MinimalAdaptive{})
	direct := routing.MaxChannelLoad(tp, g, m, routing.MinimalAdaptive{})
	if math.Abs(rep.MCL-direct) > 1e-12 {
		t.Fatalf("report MCL %v != direct %v", rep.MCL, direct)
	}
	if rep.P99Load > rep.MCL+1e-12 {
		t.Fatal("p99 above max")
	}
	if rep.Imbalance < 1 {
		t.Fatalf("imbalance = %v, want >= 1", rep.Imbalance)
	}
	if rep.HopBytes <= 0 || rep.Dilation <= 0 {
		t.Fatalf("report = %+v", rep)
	}
	s := rep.String()
	for _, want := range []string{"MCL=", "hop-bytes=", "dilation="} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestMeasureEmptyGraph(t *testing.T) {
	tp := topology.NewMesh(2, 2)
	rep := Measure(tp, graph.New(4), topology.Identity(4), routing.MinimalAdaptive{})
	if rep.MCL != 0 || rep.HopBytes != 0 || rep.Imbalance != 0 {
		t.Fatalf("empty report = %+v", rep)
	}
}

// Figure 1 numerically: the hop-bytes metric prefers the adjacent placement
// while MCL prefers the diagonal one — the paper's core motivating claim.
func TestHopBytesAndMCLDisagreeOnFigure1(t *testing.T) {
	tp := topology.NewMesh(2, 2)
	g := graph.New(4)
	g.AddTraffic(0, 1, 10)
	g.AddTraffic(1, 2, 1)
	g.AddTraffic(2, 3, 1)
	g.AddTraffic(3, 0, 1)
	adjacent := topology.Mapping{0, 1, 3, 2} // heavy pair adjacent
	diagonal := topology.Mapping{0, 3, 1, 2} // heavy pair diagonal

	hbAdj := HopBytes(tp, g, adjacent)
	hbDiag := HopBytes(tp, g, diagonal)
	if hbAdj >= hbDiag {
		t.Fatalf("hop-bytes should prefer adjacent: %v vs %v", hbAdj, hbDiag)
	}
	mclAdj := routing.MaxChannelLoad(tp, g, adjacent, routing.MinimalAdaptive{})
	mclDiag := routing.MaxChannelLoad(tp, g, diagonal, routing.MinimalAdaptive{})
	if mclDiag >= mclAdj {
		t.Fatalf("MCL should prefer diagonal: %v vs %v", mclDiag, mclAdj)
	}
}
