package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForceLP solves min c·x s.t. Ax <= b, x >= 0 by enumerating all basic
// solutions (intersections of n hyperplanes drawn from the m rows plus the n
// non-negativity bounds). It assumes b >= 0 (so x = 0 is feasible) and
// c >= 0 (so the problem is bounded). Exponential, for tiny oracles only.
func bruteForceLP(c []float64, a [][]float64, b []float64) float64 {
	n := len(c)
	m := len(a)
	// Build the combined system: rows 0..m-1 are a_i·x = b_i, rows m..m+n-1
	// are x_j = 0.
	total := m + n
	best := 0.0 // x = 0 is feasible with objective 0
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			x := solveSquare(idx, c, a, b, n, m)
			if x == nil {
				return
			}
			// Feasibility.
			for j := 0; j < n; j++ {
				if x[j] < -1e-7 {
					return
				}
			}
			for i := 0; i < m; i++ {
				lhs := 0.0
				for j := 0; j < n; j++ {
					lhs += a[i][j] * x[j]
				}
				if lhs > b[i]+1e-7 {
					return
				}
			}
			obj := 0.0
			for j := 0; j < n; j++ {
				obj += c[j] * x[j]
			}
			if obj < best {
				best = obj
			}
			return
		}
		for i := start; i < total; i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best
}

// solveSquare solves the n×n system selected by idx via Gaussian elimination
// with partial pivoting; returns nil when singular.
func solveSquare(idx []int, c []float64, a [][]float64, b []float64, n, m int) []float64 {
	mat := make([][]float64, n)
	for r, sel := range idx {
		row := make([]float64, n+1)
		if sel < m {
			copy(row, a[sel])
			row[n] = b[sel]
		} else {
			row[sel-m] = 1
			row[n] = 0
		}
		mat[r] = row
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(mat[r][col]) > math.Abs(mat[piv][col]) {
				piv = r
			}
		}
		if math.Abs(mat[piv][col]) < 1e-10 {
			return nil
		}
		mat[col], mat[piv] = mat[piv], mat[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := mat[r][col] / mat[col][col]
			if f == 0 {
				continue
			}
			for j := col; j <= n; j++ {
				mat[r][j] -= f * mat[col][j]
			}
		}
	}
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		x[j] = mat[j][n] / mat[j][j]
	}
	return x
}

// TestSimplexAgainstVertexOracle cross-checks the simplex solver against
// exhaustive vertex enumeration on random small bounded-feasible LPs.
func TestSimplexAgainstVertexOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		c := make([]float64, n)
		for j := range c {
			// Mostly non-negative; occasional zero for degeneracy.
			c[j] = float64(rng.Intn(10))
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = float64(rng.Intn(11) - 5)
			}
			b[i] = float64(rng.Intn(10))
		}
		// Flip some c entries negative but add a box x <= 10 per variable so
		// the LP stays bounded and the oracle applies after augmenting rows.
		neg := rng.Intn(2) == 1
		if neg {
			for j := range c {
				if rng.Intn(2) == 0 {
					c[j] = -c[j]
				}
			}
			for j := 0; j < n; j++ {
				row := make([]float64, n)
				row[j] = 1
				a = append(a, row)
				b = append(b, 10)
			}
			m = len(a)
		}

		want := bruteForceLP(c, a, b)

		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.SetObjectiveCoef(j, c[j])
		}
		for i := 0; i < m; i++ {
			var terms []Term
			for j := 0; j < n; j++ {
				if a[i][j] != 0 {
					terms = append(terms, Term{j, a[i][j]})
				}
			}
			p.AddConstraint(terms, LE, b[i])
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v, want optimal\n%s", trial, sol.Status, p)
		}
		if !p.Feasible(sol.X, 1e-6) {
			t.Fatalf("trial %d: infeasible solution %v\n%s", trial, sol.X, p)
		}
		if math.Abs(sol.Objective-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("trial %d: obj %v, oracle %v\n%s", trial, sol.Objective, want, p)
		}
	}
}

// Property: for any feasible LP built this way, the simplex solution is never
// worse than any random feasible point we can sample.
func TestQuickSimplexDominatesRandomFeasiblePoints(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(7))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(3)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.SetObjectiveCoef(j, float64(rng.Intn(9)))
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := 0; i < m; i++ {
			a[i] = make([]float64, n)
			var terms []Term
			for j := 0; j < n; j++ {
				a[i][j] = float64(rng.Intn(7) - 3)
				if a[i][j] != 0 {
					terms = append(terms, Term{j, a[i][j]})
				}
			}
			b[i] = float64(1 + rng.Intn(9))
			p.AddConstraint(terms, LE, b[i])
		}
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			return false
		}
		// Sample random feasible points by scaling random rays until feasible.
		for s := 0; s < 30; s++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = rng.Float64() * 3
			}
			for scale := 1.0; scale > 1e-4; scale /= 2 {
				y := make([]float64, n)
				for j := range y {
					y[j] = x[j] * scale
				}
				if p.Feasible(y, 1e-9) {
					if p.Value(y) < sol.Objective-1e-6 {
						return false
					}
					break
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
