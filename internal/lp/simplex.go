package lp

import (
	"math"

	"rahtm/internal/telemetry"
)

// Solver-effort counters on the process-wide registry, flushed once per
// solve (never per pivot).
var (
	ctrLPSolves = telemetry.Default.Counter(telemetry.CtrLPSolves)
	ctrLPPivots = telemetry.Default.Counter(telemetry.CtrLPPivots)
)

// solveSimplex runs the dense two-phase primal simplex method on p.
//
// The tableau layout is the classic one: m constraint rows over columns
// [structural | slack/surplus | artificial | rhs], plus an objective row kept
// in reduced-cost form. Rows are normalized so every right-hand side is
// non-negative before slack and artificial columns are attached.
func solveSimplex(p *Problem, opt Options, cancel <-chan struct{}) (*Solution, error) {
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-9
	}
	m := len(p.rows)
	n := p.n

	// Column layout.
	numSlack := 0
	for _, r := range p.rows {
		if r.sense != EQ {
			numSlack++
		}
	}
	// Every row gets an artificial column; redundant ones are priced out in
	// phase 1 and never re-enter (simpler and robust, at a small size cost).
	numArt := m
	cols := n + numSlack + numArt

	// Dense tableau: t[i] is row i with cols+1 entries (last = rhs).
	t := make([][]float64, m)
	basis := make([]int, m)
	slackAt := n
	artAt := n + numSlack

	maxAbs := 1.0
	for i, r := range p.rows {
		ti := make([]float64, cols+1)
		sgn := 1.0
		rhs := r.rhs
		sense := r.sense
		if rhs < 0 {
			sgn = -1
			rhs = -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		for _, term := range r.terms {
			ti[term.Var] += sgn * term.Coef
			if a := math.Abs(term.Coef); a > maxAbs {
				maxAbs = a
			}
		}
		ti[cols] = rhs
		if a := math.Abs(rhs); a > maxAbs {
			maxAbs = a
		}
		switch sense {
		case LE:
			ti[slackAt] = 1
			slackAt++
		case GE:
			ti[slackAt] = -1
			slackAt++
		}
		ti[artAt+i] = 1
		basis[i] = artAt + i
		t[i] = ti
	}

	ftol := tol * maxAbs // feasibility tolerance scaled to data magnitude

	maxIters := opt.MaxIters
	if maxIters <= 0 {
		maxIters = 2000 + 40*(m+cols)
	}

	sol := &Solution{X: make([]float64, n)}
	defer func() {
		// Effort accounting, batched to one flush per solve; a request
		// scope (set by SolveCtx) claims the counts for its own registry.
		opt.scope.CounterOr(telemetry.CtrLPSolves, ctrLPSolves).Inc()
		opt.scope.CounterOr(telemetry.CtrLPPivots, ctrLPPivots).Add(int64(sol.Iters))
	}()

	// Phase 1: minimize the sum of artificial variables.
	obj1 := make([]float64, cols+1)
	for j := artAt; j < artAt+numArt; j++ {
		obj1[j] = 1
	}
	// Price out the basic artificial columns.
	for i := 0; i < m; i++ {
		for j := 0; j <= cols; j++ {
			obj1[j] -= t[i][j]
		}
	}
	it, st := pivotLoop(t, basis, obj1, cols, artAt, maxIters, tol, cancel)
	sol.Iters += it
	if st == IterLimit || st == Canceled {
		sol.Status = st
		return sol, nil
	}
	// -obj1[cols] is the phase-1 objective value (sum of artificials).
	if -obj1[cols] > ftol*float64(m+1) {
		sol.Status = Infeasible
		return sol, nil
	}
	// Drive any artificial variables remaining in the basis out of it, or
	// zero their rows if the row is redundant.
	for i := 0; i < m; i++ {
		if basis[i] < artAt {
			continue
		}
		pivoted := false
		for j := 0; j < artAt; j++ {
			if math.Abs(t[i][j]) > 1e-7 {
				pivot(t, basis, nil, i, j, cols)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: keep the artificial basic at value zero. It can
			// never grow because phase 2 bars artificial columns from
			// entering and the rhs stays ~0.
			t[i][cols] = 0
		}
	}

	// Phase 2: minimize the true objective, artificial columns barred.
	obj2 := make([]float64, cols+1)
	for j := 0; j < n; j++ {
		obj2[j] = p.obj[j]
	}
	obj2[cols] = 0
	// Price out the basic columns.
	for i := 0; i < m; i++ {
		cb := obj2[basis[i]]
		if cb == 0 {
			continue
		}
		for j := 0; j <= cols; j++ {
			obj2[j] -= cb * t[i][j]
		}
	}
	it, st = pivotLoop(t, basis, obj2, cols, artAt, maxIters-sol.Iters, tol, cancel)
	sol.Iters += it
	switch st {
	case IterLimit, Unbounded, Canceled:
		sol.Status = st
		return sol, nil
	}

	for i := 0; i < m; i++ {
		if basis[i] < n {
			sol.X[basis[i]] = t[i][cols]
		}
	}
	// Clamp solver noise.
	for j := range sol.X {
		if sol.X[j] < 0 && sol.X[j] > -ftol*10 {
			sol.X[j] = 0
		}
	}
	sol.Objective = p.Value(sol.X)
	sol.Status = Optimal
	return sol, nil
}

// pivotLoop runs simplex pivots on the tableau until the reduced costs in
// obj are all >= -tol (optimal), the problem proves unbounded, the
// iteration budget runs out, or the cancel channel fires (polled every 128
// pivots). Columns >= artBar may not enter the basis when artBar >= 0 (used
// to bar artificial columns in phase 2; pass cols to allow everything).
// Returns the iteration count and a status in
// {Optimal, Unbounded, IterLimit, Canceled}.
func pivotLoop(t [][]float64, basis []int, obj []float64, cols, artBar, maxIters int, tol float64, cancel <-chan struct{}) (int, Status) {
	m := len(t)
	iters := 0
	// Switch to Bland's rule after a stall to guarantee termination.
	blandAfter := 4 * (m + cols)
	noImprove := 0
	lastObj := -obj[cols]
	for {
		if iters >= maxIters {
			return iters, IterLimit
		}
		if cancel != nil && iters&127 == 0 {
			select {
			case <-cancel:
				return iters, Canceled
			default:
			}
		}
		// Entering column.
		enter := -1
		if noImprove < blandAfter {
			best := -tol
			for j := 0; j < artBar; j++ {
				if obj[j] < best {
					best = obj[j]
					enter = j
				}
			}
		} else {
			for j := 0; j < artBar; j++ {
				if obj[j] < -tol {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return iters, Optimal
		}
		// Ratio test (leaving row); Bland tie-break on basis index.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := t[i][enter]
			if a <= tol {
				continue
			}
			r := t[i][cols] / a
			if r < bestRatio-tol || (r < bestRatio+tol && (leave < 0 || basis[i] < basis[leave])) {
				bestRatio = r
				leave = i
			}
		}
		if leave < 0 {
			return iters, Unbounded
		}
		pivot(t, basis, obj, leave, enter, cols)
		iters++
		cur := -obj[cols]
		if cur < lastObj-tol {
			noImprove = 0
			lastObj = cur
		} else {
			noImprove++
		}
	}
}

// pivot performs a full tableau pivot on (row, col), updating the basis and,
// when obj is non-nil, the objective row.
func pivot(t [][]float64, basis []int, obj []float64, row, col, cols int) {
	pr := t[row]
	pv := pr[col]
	inv := 1.0 / pv
	for j := 0; j <= cols; j++ {
		pr[j] *= inv
	}
	pr[col] = 1 // kill round-off on the pivot element
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		ri := t[i]
		for j := 0; j <= cols; j++ {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0
	}
	if obj != nil {
		f := obj[col]
		if f != 0 {
			for j := 0; j <= cols; j++ {
				obj[j] -= f * pr[j]
			}
			obj[col] = 0
		}
	}
	basis[row] = col
}
