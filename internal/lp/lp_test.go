package lp

import (
	"math"
	"testing"
)

const testTol = 1e-6

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v\n%s", err, p)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal\n%s", sol.Status, p)
	}
	if !p.Feasible(sol.X, testTol) {
		t.Fatalf("solution %v infeasible\n%s", sol.X, p)
	}
	return sol
}

func wantObj(t *testing.T, sol *Solution, want float64) {
	t.Helper()
	if math.Abs(sol.Objective-want) > testTol*(1+math.Abs(want)) {
		t.Fatalf("objective = %v, want %v (x=%v)", sol.Objective, want, sol.X)
	}
}

// Classic production-planning LP: maximize 3x+5y s.t. x<=4, 2y<=12, 3x+2y<=18
// (Dantzig's example). Optimum at (2,6) with value 36; we minimize -3x-5y.
func TestSimplexTextbookMax(t *testing.T) {
	p := NewProblem(2)
	p.SetObjectiveCoef(0, -3)
	p.SetObjectiveCoef(1, -5)
	p.AddConstraint([]Term{{0, 1}}, LE, 4)
	p.AddConstraint([]Term{{1, 2}}, LE, 12)
	p.AddConstraint([]Term{{0, 3}, {1, 2}}, LE, 18)
	sol := solveOK(t, p)
	wantObj(t, sol, -36)
	if math.Abs(sol.X[0]-2) > testTol || math.Abs(sol.X[1]-6) > testTol {
		t.Fatalf("x = %v, want (2,6)", sol.X)
	}
}

func TestSimplexEquality(t *testing.T) {
	// min x+2y s.t. x+y = 10, x <= 4  ->  x=4, y=6, obj=16.
	p := NewProblem(2)
	p.SetObjectiveCoef(0, 1)
	p.SetObjectiveCoef(1, 2)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 10)
	p.AddConstraint([]Term{{0, 1}}, LE, 4)
	sol := solveOK(t, p)
	wantObj(t, sol, 16)
}

func TestSimplexGE(t *testing.T) {
	// min 2x+3y s.t. x+y >= 5, x >= 1 -> (5,0) obj 10.
	p := NewProblem(2)
	p.SetObjectiveCoef(0, 2)
	p.SetObjectiveCoef(1, 3)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, GE, 5)
	p.AddConstraint([]Term{{0, 1}}, GE, 1)
	sol := solveOK(t, p)
	wantObj(t, sol, 10)
}

func TestSimplexNegativeRHS(t *testing.T) {
	// min x s.t. -x - y <= -5 (i.e. x+y >= 5), y <= 3 -> x = 2.
	p := NewProblem(2)
	p.SetObjectiveCoef(0, 1)
	p.AddConstraint([]Term{{0, -1}, {1, -1}}, LE, -5)
	p.AddConstraint([]Term{{1, 1}}, LE, 3)
	sol := solveOK(t, p)
	wantObj(t, sol, 2)
}

func TestSimplexInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.SetObjectiveCoef(0, 1)
	p.AddConstraint([]Term{{0, 1}}, LE, 1)
	p.AddConstraint([]Term{{0, 1}}, GE, 2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	// min -x with only x >= 0: unbounded below.
	p := NewProblem(1)
	p.SetObjectiveCoef(0, -1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSimplexUnboundedWithConstraint(t *testing.T) {
	// min -x + y s.t. y >= 1: x free to grow.
	p := NewProblem(2)
	p.SetObjectiveCoef(0, -1)
	p.SetObjectiveCoef(1, 1)
	p.AddConstraint([]Term{{1, 1}}, GE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// Beale's cycling example (classic anti-cycling stress test).
	// min -0.75x1 + 150x2 - 0.02x3 + 6x4
	// s.t. 0.25x1 - 60x2 - 0.04x3 + 9x4 <= 0
	//      0.5x1  - 90x2 - 0.02x3 + 3x4 <= 0
	//      x3 <= 1
	// Optimum: -0.05 at x = (0.04/0.8.. known value) -> objective -1/20.
	p := NewProblem(4)
	p.SetObjectiveCoef(0, -0.75)
	p.SetObjectiveCoef(1, 150)
	p.SetObjectiveCoef(2, -0.02)
	p.SetObjectiveCoef(3, 6)
	p.AddConstraint([]Term{{0, 0.25}, {1, -60}, {2, -0.04}, {3, 9}}, LE, 0)
	p.AddConstraint([]Term{{0, 0.5}, {1, -90}, {2, -0.02}, {3, 3}}, LE, 0)
	p.AddConstraint([]Term{{2, 1}}, LE, 1)
	sol := solveOK(t, p)
	wantObj(t, sol, -0.05)
}

func TestSimplexZeroVariables(t *testing.T) {
	p := NewProblem(0)
	p.AddObjectiveConstant(7)
	sol := solveOK(t, p)
	wantObj(t, sol, 7)
}

func TestSimplexRedundantEqualities(t *testing.T) {
	// Duplicate equality rows must not break phase 1 artificial cleanup.
	p := NewProblem(2)
	p.SetObjectiveCoef(0, 1)
	p.SetObjectiveCoef(1, 1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 4)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 4)
	p.AddConstraint([]Term{{0, 2}, {1, 2}}, EQ, 8)
	sol := solveOK(t, p)
	wantObj(t, sol, 4)
}

func TestFixVariable(t *testing.T) {
	// min x + y s.t. x + y >= 3 with y fixed to 2 -> x = 1.
	p := NewProblem(2)
	p.SetObjectiveCoef(0, 1)
	p.SetObjectiveCoef(1, 1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, GE, 3)
	p.FixVariable(1, 2)
	sol := solveOK(t, p)
	wantObj(t, sol, 3)
	if math.Abs(sol.X[1]-2) > testTol {
		t.Fatalf("fixed variable drifted: x = %v", sol.X)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := NewProblem(1)
	p.SetObjectiveCoef(0, 1)
	p.AddConstraint([]Term{{0, 1}}, GE, 1)
	q := p.Clone()
	q.SetObjectiveCoef(0, -5)
	q.AddConstraint([]Term{{0, 1}}, LE, 9)
	if p.ObjectiveCoef(0) != 1 || p.NumConstraints() != 1 {
		t.Fatal("Clone shares state with original")
	}
	sol := solveOK(t, p)
	wantObj(t, sol, 1)
}

func TestObjectiveConstantOnly(t *testing.T) {
	p := NewProblem(1)
	p.AddObjectiveConstant(3.5)
	p.AddConstraint([]Term{{0, 1}}, LE, 10)
	sol := solveOK(t, p)
	wantObj(t, sol, 3.5)
}

func TestVariableNames(t *testing.T) {
	p := NewProblem(1)
	v := p.AddVariable(1, "flow")
	if got := p.VariableName(v); got != "flow" {
		t.Fatalf("VariableName = %q, want flow", got)
	}
	if got := p.VariableName(0); got != "x0" {
		t.Fatalf("VariableName = %q, want x0", got)
	}
}

func TestSenseString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Fatal("Sense.String mismatch")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", IterLimit: "iteration-limit",
	} {
		if s.String() != want {
			t.Fatalf("Status(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

// A transportation-style LP with a known integral optimum, to exercise a
// larger equality system.
func TestSimplexTransportation(t *testing.T) {
	// 2 supplies (10, 20), 3 demands (5, 10, 15); cost matrix:
	//   [2 4 5]
	//   [3 1 7]
	// Optimum 110: x13=10 (50), x21=5 (15), x22=10 (10), x23=5 (35).
	cost := [][]float64{{2, 4, 5}, {3, 1, 7}}
	supply := []float64{10, 20}
	demand := []float64{5, 10, 15}
	p := NewProblem(6) // x[i][j] -> 3*i+j
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			p.SetObjectiveCoef(3*i+j, cost[i][j])
		}
	}
	for i := 0; i < 2; i++ {
		terms := []Term{{3 * i, 1}, {3*i + 1, 1}, {3*i + 2, 1}}
		p.AddConstraint(terms, EQ, supply[i])
	}
	for j := 0; j < 3; j++ {
		terms := []Term{{j, 1}, {3 + j, 1}}
		p.AddConstraint(terms, EQ, demand[j])
	}
	sol := solveOK(t, p)
	wantObj(t, sol, 110)
}
