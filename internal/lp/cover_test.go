package lp

import (
	"math"
	"strings"
	"testing"
)

func TestProblemString(t *testing.T) {
	p := NewProblem(2)
	p.SetObjectiveCoef(0, 2)
	p.AddObjectiveConstant(1)
	p.AddConstraint([]Term{{Var: 0, Coef: 1}, {Var: 1, Coef: -3}}, LE, 5)
	p.AddConstraint([]Term{{Var: 1, Coef: 2}}, GE, 1)
	p.AddConstraint([]Term{{Var: 0, Coef: 1}}, EQ, 2)
	s := p.String()
	for _, want := range []string{"min ", "2*x0", "<= 5", ">= 1", "== 2", "-3*x1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
	// Constant-only objective renders too.
	empty := NewProblem(0)
	empty.AddObjectiveConstant(4)
	if !strings.Contains(empty.String(), "4") {
		t.Fatalf("constant objective missing: %s", empty.String())
	}
}

func TestAccessors(t *testing.T) {
	p := NewProblem(1)
	if p.NumVariables() != 1 || p.NumConstraints() != 0 {
		t.Fatal("counts wrong")
	}
	p.AddObjectiveConstant(2.5)
	if p.ObjectiveConstant() != 2.5 {
		t.Fatal("constant accessor")
	}
	if p.ObjectiveCoef(0) != 0 {
		t.Fatal("fresh coef should be zero")
	}
	v := p.AddVariable(3, "y")
	if p.ObjectiveCoef(v) != 3 || p.NumVariables() != 2 {
		t.Fatal("AddVariable")
	}
}

func TestPanicsOnBadVariableIndex(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	p := NewProblem(1)
	mustPanic("negative problem", func() { NewProblem(-1) })
	mustPanic("set coef", func() { p.SetObjectiveCoef(3, 1) })
	mustPanic("get coef", func() { p.ObjectiveCoef(-1) })
	mustPanic("constraint var", func() { p.AddConstraint([]Term{{Var: 9, Coef: 1}}, LE, 0) })
	mustPanic("fix negative", func() { p.FixVariable(0, -1) })
	mustPanic("name", func() { p.VariableName(7) })
}

func TestFeasibleEdgeCases(t *testing.T) {
	p := NewProblem(2)
	p.AddConstraint([]Term{{Var: 0, Coef: 1}}, GE, 1)
	p.AddConstraint([]Term{{Var: 1, Coef: 1}}, EQ, 2)
	if p.Feasible([]float64{1}, 1e-9) {
		t.Fatal("short vector should be infeasible")
	}
	if p.Feasible([]float64{-1, 2}, 1e-9) {
		t.Fatal("negative variable should be infeasible")
	}
	if p.Feasible([]float64{0.5, 2}, 1e-9) {
		t.Fatal("GE violation should be infeasible")
	}
	if p.Feasible([]float64{1, 2.5}, 1e-9) {
		t.Fatal("EQ violation should be infeasible")
	}
	if !p.Feasible([]float64{1, 2}, 1e-9) {
		t.Fatal("feasible point rejected")
	}
}

func TestBadSenseStrings(t *testing.T) {
	if !strings.Contains(Sense(9).String(), "Sense") {
		t.Fatal("unknown sense rendering")
	}
	if !strings.Contains(Status(9).String(), "Status") {
		t.Fatal("unknown status rendering")
	}
}

func TestIterationLimit(t *testing.T) {
	// A non-trivial LP with an absurd iteration cap must report IterLimit.
	p := NewProblem(4)
	for i := 0; i < 4; i++ {
		p.SetObjectiveCoef(i, -1)
		p.AddConstraint([]Term{{Var: i, Coef: 1}, {Var: (i + 1) % 4, Coef: 1}}, LE, float64(3+i))
	}
	sol, err := p.SolveOpts(Options{MaxIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterLimit {
		t.Fatalf("status = %v, want iteration-limit", sol.Status)
	}
}

func TestLargeCoefficientScaling(t *testing.T) {
	// Badly scaled rows must still solve within tolerance.
	p := NewProblem(2)
	p.SetObjectiveCoef(0, 1e-6)
	p.SetObjectiveCoef(1, 1e6)
	p.AddConstraint([]Term{{Var: 0, Coef: 1e6}, {Var: 1, Coef: 1e-6}}, GE, 2e6)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	// x0 = 2 is optimal: objective 2e-6.
	if math.Abs(sol.Objective-2e-6) > 1e-9 {
		t.Fatalf("objective = %v", sol.Objective)
	}
}

func TestValueIgnoresExtraEntries(t *testing.T) {
	p := NewProblem(1)
	p.SetObjectiveCoef(0, 2)
	if p.Value([]float64{3, 99}) != 6 {
		t.Fatal("Value read past problem variables")
	}
}
