package lp

import (
	"context"
	"errors"
	"testing"
	"time"
)

func textbookProblem() *Problem {
	p := NewProblem(2)
	p.SetObjectiveCoef(0, -3)
	p.SetObjectiveCoef(1, -5)
	p.AddConstraint([]Term{{0, 1}}, LE, 4)
	p.AddConstraint([]Term{{1, 2}}, LE, 12)
	p.AddConstraint([]Term{{0, 3}, {1, 2}}, LE, 18)
	return p
}

func TestSolveCtxBackground(t *testing.T) {
	sol, err := textbookProblem().SolveCtx(context.Background(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
}

func TestSolveCtxAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := textbookProblem().SolveCtx(ctx, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sol == nil || sol.Status != Canceled {
		t.Fatalf("sol = %+v, want Canceled status", sol)
	}
}

func TestSolveCtxExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := textbookProblem().SolveCtx(ctx, Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestCanceledStatusString(t *testing.T) {
	if Canceled.String() != "canceled" {
		t.Fatalf("Canceled.String() = %q", Canceled.String())
	}
}
