// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize    c·x + k
//	subject to  a_i·x {<=,=,>=} b_i   for every constraint row i
//	            x >= 0
//
// The solver is deliberately self-contained (standard library only): the
// RAHTM paper relies on CPLEX for its Table II MILP formulation, and this
// package is the substitute substrate. Problems are built incrementally with
// sparse terms and densified only inside the solver, so model construction
// stays cheap even when many short rows are added.
//
// Upper bounds on variables (needed for the 0/1 variables of the MILP layer)
// are expressed as ordinary <= rows by the caller; fixing a variable is done
// by substitution before solving (see package milp).
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"

	"rahtm/internal/telemetry"
)

// Sense is the relational operator of a constraint row.
type Sense int8

// Constraint senses.
const (
	LE Sense = iota // a·x <= b
	GE              // a·x >= b
	EQ              // a·x == b
)

// String returns the conventional operator spelling.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return fmt.Sprintf("Sense(%d)", int8(s))
}

// Status reports the outcome of a solve.
type Status int8

// Solve outcomes.
const (
	Optimal    Status = iota // an optimal basic feasible solution was found
	Infeasible               // no point satisfies all constraints
	Unbounded                // the objective decreases without bound
	IterLimit                // the iteration budget was exhausted
	Canceled                 // the context was canceled mid-solve (SolveCtx)
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	case Canceled:
		return "canceled"
	}
	return fmt.Sprintf("Status(%d)", int8(s))
}

// Term is one sparse entry of a constraint or objective row.
type Term struct {
	Var  int     // variable index, 0-based
	Coef float64 // coefficient
}

// row is one stored constraint.
type row struct {
	terms []Term
	sense Sense
	rhs   float64
}

// Problem is a mutable linear program. The zero value is an empty problem;
// add variables before referencing them in rows.
type Problem struct {
	n        int       // number of variables
	obj      []float64 // dense objective, len n
	constant float64   // objective constant k
	rows     []row
	names    []string // optional variable names, len n ("" when unset)
}

// NewProblem returns an empty problem with n variables (all with zero
// objective coefficient).
func NewProblem(n int) *Problem {
	if n < 0 {
		panic("lp: negative variable count")
	}
	return &Problem{
		n:     n,
		obj:   make([]float64, n),
		names: make([]string, n),
	}
}

// AddVariable appends one variable with the given objective coefficient and
// returns its index. The name is used only in diagnostics and may be empty.
func (p *Problem) AddVariable(objCoef float64, name string) int {
	p.obj = append(p.obj, objCoef)
	p.names = append(p.names, name)
	p.n++
	return p.n - 1
}

// NumVariables returns the current variable count.
func (p *Problem) NumVariables() int { return p.n }

// NumConstraints returns the current constraint count.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// SetObjectiveCoef sets the objective coefficient of variable v.
func (p *Problem) SetObjectiveCoef(v int, c float64) {
	p.checkVar(v)
	p.obj[v] = c
}

// ObjectiveCoef returns the objective coefficient of variable v.
func (p *Problem) ObjectiveCoef(v int) float64 {
	p.checkVar(v)
	return p.obj[v]
}

// AddObjectiveConstant adds k to the objective's constant term.
func (p *Problem) AddObjectiveConstant(k float64) { p.constant += k }

// ObjectiveConstant returns the objective's constant term.
func (p *Problem) ObjectiveConstant() float64 { return p.constant }

// AddConstraint appends the row (terms) sense rhs and returns its index.
// Terms referencing the same variable are summed. The terms slice is copied.
func (p *Problem) AddConstraint(terms []Term, sense Sense, rhs float64) int {
	for _, t := range terms {
		p.checkVar(t.Var)
	}
	cp := make([]Term, len(terms))
	copy(cp, terms)
	p.rows = append(p.rows, row{terms: cp, sense: sense, rhs: rhs})
	return len(p.rows) - 1
}

// VariableName returns the name given to v, or "x<v>" when unnamed.
func (p *Problem) VariableName(v int) string {
	p.checkVar(v)
	if p.names[v] != "" {
		return p.names[v]
	}
	return fmt.Sprintf("x%d", v)
}

func (p *Problem) checkVar(v int) {
	if v < 0 || v >= p.n {
		panic(fmt.Sprintf("lp: variable index %d out of range [0,%d)", v, p.n))
	}
}

// Clone returns a deep copy of the problem.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		n:        p.n,
		obj:      append([]float64(nil), p.obj...),
		constant: p.constant,
		names:    append([]string(nil), p.names...),
		rows:     make([]row, len(p.rows)),
	}
	for i, r := range p.rows {
		q.rows[i] = row{
			terms: append([]Term(nil), r.terms...),
			sense: r.sense,
			rhs:   r.rhs,
		}
	}
	return q
}

// FixVariable substitutes x[v] = value into every row and the objective, and
// removes the variable's column by zeroing it out. The variable itself keeps
// its index (so solution vectors stay aligned); a pinned EQ row forces it to
// the value so that reported solutions carry it. value must be >= 0 because
// the solver assumes non-negative variables.
func (p *Problem) FixVariable(v int, value float64) {
	p.checkVar(v)
	if value < 0 {
		panic("lp: FixVariable with negative value")
	}
	p.AddConstraint([]Term{{Var: v, Coef: 1}}, EQ, value)
}

// Solution is the result of solving a problem.
type Solution struct {
	Status    Status
	X         []float64 // primal values, len = NumVariables at solve time
	Objective float64   // c·x + k (meaningful when Status == Optimal)
	Iters     int       // simplex iterations across both phases
}

// Options tunes the solver. The zero value picks sensible defaults.
type Options struct {
	// MaxIters bounds total simplex pivots; <= 0 selects a default scaled
	// to the problem size.
	MaxIters int
	// Tol is the feasibility/optimality tolerance; <= 0 selects 1e-9.
	Tol float64

	// scope, when non-nil, receives the solve/pivot counters instead of
	// the process-wide registry. SolveCtx fills it from the context; the
	// field is unexported so callers cannot desynchronize it from ctx.
	scope *telemetry.Scope
}

// ErrBadProblem is returned for structurally invalid problems.
var ErrBadProblem = errors.New("lp: invalid problem")

// Solve minimizes the problem with the default options.
func (p *Problem) Solve() (*Solution, error) { return p.SolveOpts(Options{}) }

// SolveOpts minimizes the problem with explicit options.
func (p *Problem) SolveOpts(opt Options) (*Solution, error) {
	return solveSimplex(p, opt, nil)
}

// SolveCtx minimizes the problem under a context: the pivot loop polls
// ctx periodically and aborts with ctx.Err() when it is done. On
// cancellation the returned Solution has Status Canceled and the error is
// non-nil.
func (p *Problem) SolveCtx(ctx context.Context, opt Options) (*Solution, error) {
	opt.scope = telemetry.ScopeFrom(ctx)
	sol, err := solveSimplex(p, opt, ctx.Done())
	if err != nil {
		return sol, err
	}
	if sol.Status == Canceled {
		return sol, ctx.Err()
	}
	return sol, nil
}

// String renders the model in a small human-readable form (for debugging and
// test failure messages; not a stable serialization).
func (p *Problem) String() string {
	var b strings.Builder
	b.WriteString("min ")
	first := true
	for j, c := range p.obj {
		if c == 0 {
			continue
		}
		if !first {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%g*%s", c, p.VariableName(j))
		first = false
	}
	if p.constant != 0 || first {
		if !first {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%g", p.constant)
	}
	b.WriteString("\n")
	for _, r := range p.rows {
		for i, t := range r.terms {
			if i > 0 {
				b.WriteString(" + ")
			}
			fmt.Fprintf(&b, "%g*%s", t.Coef, p.VariableName(t.Var))
		}
		fmt.Fprintf(&b, " %s %g\n", r.sense, r.rhs)
	}
	return b.String()
}

// Value evaluates the objective at x (including the constant term).
func (p *Problem) Value(x []float64) float64 {
	v := p.constant
	for j := 0; j < p.n && j < len(x); j++ {
		v += p.obj[j] * x[j]
	}
	return v
}

// Feasible reports whether x satisfies every constraint and x >= -tol,
// within tolerance tol.
func (p *Problem) Feasible(x []float64, tol float64) bool {
	if len(x) < p.n {
		return false
	}
	for j := 0; j < p.n; j++ {
		if x[j] < -tol {
			return false
		}
	}
	for _, r := range p.rows {
		lhs := 0.0
		for _, t := range r.terms {
			lhs += t.Coef * x[t.Var]
		}
		// Scale the tolerance with the row magnitude so large-coefficient
		// rows are not spuriously rejected.
		scale := math.Abs(r.rhs)
		for _, t := range r.terms {
			if a := math.Abs(t.Coef * x[t.Var]); a > scale {
				scale = a
			}
		}
		rtol := tol * (1 + scale)
		switch r.sense {
		case LE:
			if lhs > r.rhs+rtol {
				return false
			}
		case GE:
			if lhs < r.rhs-rtol {
				return false
			}
		case EQ:
			if math.Abs(lhs-r.rhs) > rtol {
				return false
			}
		}
	}
	return true
}
