// Package mcflow evaluates a *fixed* task mapping with the linear-programming
// routing model: it finds the minimal-path multicommodity flow split that
// minimizes the maximum channel load (MCL). This is the "linear programming
// based routing-aware approach to evaluate possible mappings" of the RAHTM
// paper, and it lower-bounds what any minimal adaptive routing could achieve
// for the mapped pattern.
//
// Compared to routing.MinimalAdaptive (which fixes the split to
// uniform-over-minimal-paths), the LP may split flows unevenly to shave the
// hottest channel. It is correspondingly more expensive, so RAHTM uses it
// for final evaluation and ablations rather than inside merge loops.
package mcflow

import (
	"context"
	"fmt"
	"sort"

	"rahtm/internal/graph"
	"rahtm/internal/lp"
	"rahtm/internal/routing"
	"rahtm/internal/topology"
)

// Result carries the LP evaluation outcome.
type Result struct {
	MCL   float64   // optimal maximum channel load
	Loads []float64 // per-channel loads of the optimal split
}

// Evaluate computes the optimal minimal-routing MCL for graph g mapped onto
// t by m. Flows are restricted to channels that lie on minimal paths
// (distance-decreasing hops through nodes on some minimal source-destination
// path). Tasks sharing a node contribute nothing.
func Evaluate(t *topology.Torus, g *graph.Comm, m topology.Mapping, opt lp.Options) (*Result, error) {
	//rahtm:allow(ctxpoll): compatibility wrapper; the root context is the documented default for the non-Ctx API
	res, _, err := evaluate(context.Background(), t, g, m, opt, false)
	return res, err
}

// EvaluateCtx is Evaluate under a context: the LP aborts at its next pivot
// poll when ctx is canceled or its deadline expires, returning ctx.Err().
// The evaluator has no meaningful partial result, so deadline expiry is an
// error here, unlike in the mapping pipeline.
func EvaluateCtx(ctx context.Context, t *topology.Torus, g *graph.Comm, m topology.Mapping, opt lp.Options) (*Result, error) {
	res, _, err := evaluate(ctx, t, g, m, opt, false)
	return res, err
}

type nodeFlow struct {
	src, dst int
	vol      float64
}

// evaluate builds and solves the fixed-mapping min-MCL LP; with wantRoutes
// it additionally extracts the per-flow channel splits.
func evaluate(ctx context.Context, t *topology.Torus, g *graph.Comm, m topology.Mapping, opt lp.Options, wantRoutes bool) (*Result, []RouteSplit, error) {
	if len(m) != g.N() {
		return nil, nil, fmt.Errorf("mcflow: mapping covers %d tasks, graph has %d", len(m), g.N())
	}
	// Aggregate task flows into node flows (tasks can share nodes).
	agg := make(map[[2]int]float64)
	g.EachFlow(func(fs, fd int, vol float64) {
		s, d := m[fs], m[fd]
		if s == d {
			return
		}
		agg[[2]int{s, d}] += vol
	})
	nf := make([]nodeFlow, 0, len(agg))
	for k, v := range agg {
		nf = append(nf, nodeFlow{src: k[0], dst: k[1], vol: v})
	}
	// Deterministic order for reproducible LPs.
	sort.Slice(nf, func(i, j int) bool {
		if nf[i].src != nf[j].src {
			return nf[i].src < nf[j].src
		}
		return nf[i].dst < nf[j].dst
	})

	prob := lp.NewProblem(0)
	z := prob.AddVariable(1, "mcl")

	// Per-channel accumulation terms for the objective rows.
	chTerms := make(map[int][]lp.Term)
	flowVars := make([]map[int]int, len(nf)) // per flow: channel -> LP var

	dist := func(a, b int) int { return t.MinDistance(a, b) }

	for fi, f := range nf {
		base := dist(f.src, f.dst)
		// Nodes on some minimal path.
		var nodes []int
		onPath := make(map[int]bool)
		for v := 0; v < t.N(); v++ {
			if dist(f.src, v)+dist(v, f.dst) == base {
				nodes = append(nodes, v)
				onPath[v] = true
			}
		}
		// Allowed channels: minimal-path node to minimal-path node, strictly
		// decreasing distance to the destination.
		type arc struct {
			ch       int
			from, to int
		}
		var arcs []arc
		fvar := make(map[int]int) // channel id -> LP variable
		flowVars[fi] = fvar
		for _, v := range nodes {
			for dim := 0; dim < t.NumDims(); dim++ {
				for dir := 0; dir < 2; dir++ {
					next, ok := t.NeighborRank(v, dim, dir)
					if !ok || !onPath[next] {
						continue
					}
					if dist(next, f.dst) != dist(v, f.dst)-1 {
						continue
					}
					ch := t.ChannelID(v, dim, dir)
					fv := prob.AddVariable(0, fmt.Sprintf("f%d_c%d", fi, ch))
					fvar[ch] = fv
					arcs = append(arcs, arc{ch: ch, from: v, to: next})
					chTerms[ch] = append(chTerms[ch], lp.Term{Var: fv, Coef: 1})
				}
			}
		}
		// Conservation at every minimal-path node.
		for _, v := range nodes {
			var terms []lp.Term
			for _, a := range arcs {
				switch v {
				case a.from:
					terms = append(terms, lp.Term{Var: fvar[a.ch], Coef: 1})
				case a.to:
					terms = append(terms, lp.Term{Var: fvar[a.ch], Coef: -1})
				}
			}
			rhs := 0.0
			switch v {
			case f.src:
				rhs = f.vol
			case f.dst:
				rhs = -f.vol
			}
			if len(terms) == 0 && rhs == 0 {
				continue
			}
			prob.AddConstraint(terms, lp.EQ, rhs)
		}
	}

	// MCL rows: sum of flow on a channel <= z.
	chIDs := make([]int, 0, len(chTerms))
	for ch := range chTerms {
		chIDs = append(chIDs, ch)
	}
	sort.Ints(chIDs)
	for _, ch := range chIDs {
		terms := append([]lp.Term(nil), chTerms[ch]...)
		terms = append(terms, lp.Term{Var: z, Coef: -1})
		prob.AddConstraint(terms, lp.LE, 0)
	}

	sol, err := prob.SolveCtx(ctx, opt)
	if err != nil {
		return nil, nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, nil, fmt.Errorf("mcflow: LP %v", sol.Status)
	}

	loads := make([]float64, t.NumChannels())
	for _, ch := range chIDs {
		for _, term := range chTerms[ch] {
			loads[ch] += sol.X[term.Var]
		}
	}
	res := &Result{MCL: routing.MCL(loads), Loads: loads}
	if !wantRoutes {
		return res, nil, nil
	}
	splits := make([]RouteSplit, 0, len(nf))
	for fi, f := range nf {
		s := RouteSplit{Src: f.src, Dst: f.dst, Vol: f.vol, Fraction: make(map[int]float64)}
		for ch, v := range flowVars[fi] {
			x := sol.X[v]
			if x > 1e-9*f.vol {
				s.Fraction[ch] = x / f.vol
			}
		}
		splits = append(splits, s)
	}
	return res, splits, nil
}
