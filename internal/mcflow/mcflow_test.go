package mcflow

import (
	"math"
	"math/rand"
	"testing"

	"rahtm/internal/graph"
	"rahtm/internal/lp"
	"rahtm/internal/routing"
	"rahtm/internal/topology"
)

func TestSingleFlowLine(t *testing.T) {
	tp := topology.NewMesh(3)
	g := graph.New(3)
	g.AddTraffic(0, 2, 4)
	res, err := Evaluate(tp, g, topology.Identity(3), lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MCL-4) > 1e-6 {
		t.Fatalf("MCL = %v, want 4 (single path)", res.MCL)
	}
}

func TestLPBeatsOrMatchesUniformSplit(t *testing.T) {
	// Two diagonal flows sharing a corner on a 2x2 mesh: the uniform split
	// stacks 0.5+0.5 on shared links; the LP can route them disjointly.
	tp := topology.NewMesh(2, 2)
	g := graph.New(4)
	g.AddTraffic(0, 3, 1) // (0,0)->(1,1)
	g.AddTraffic(1, 2, 1) // (0,1)->(1,0)
	m := topology.Identity(4)
	uniform := routing.MaxChannelLoad(tp, g, m, routing.MinimalAdaptive{})
	res, err := Evaluate(tp, g, m, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MCL > uniform+1e-9 {
		t.Fatalf("LP MCL %v worse than uniform %v", res.MCL, uniform)
	}
	// Optimal here: each flow picks one of its two paths so that no link is
	// shared; every used link carries exactly 1... but both flows must cross
	// the 2x2 somehow: flow A can use (0,0)->(0,1)->(1,1)? That collides
	// with B's nodes, not links. A disjoint assignment exists with MCL 1.
	if math.Abs(res.MCL-1) > 1e-6 {
		t.Fatalf("LP MCL = %v, want 1", res.MCL)
	}
}

func TestColocatedTasksFree(t *testing.T) {
	tp := topology.NewMesh(2)
	g := graph.New(4)
	g.AddTraffic(0, 1, 100)
	g.AddTraffic(2, 3, 1)
	m := topology.Mapping{0, 0, 0, 1} // heavy pair shares node 0
	res, err := Evaluate(tp, g, m, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MCL-1) > 1e-6 {
		t.Fatalf("MCL = %v, want 1", res.MCL)
	}
}

func TestAggregationAcrossTasks(t *testing.T) {
	// Two tasks on node 0 each send 1 to node 1: aggregate flow 2.
	tp := topology.NewMesh(2)
	g := graph.New(3)
	g.AddTraffic(0, 2, 1)
	g.AddTraffic(1, 2, 1)
	m := topology.Mapping{0, 0, 1}
	res, err := Evaluate(tp, g, m, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MCL-2) > 1e-6 {
		t.Fatalf("MCL = %v, want 2", res.MCL)
	}
}

func TestMappingLengthMismatch(t *testing.T) {
	tp := topology.NewMesh(2)
	g := graph.New(3)
	if _, err := Evaluate(tp, g, topology.Mapping{0, 1}, lp.Options{}); err == nil {
		t.Fatal("expected error for short mapping")
	}
}

func TestTorusTieUsesBothDirections(t *testing.T) {
	// 4-ring with two antipodal flows 0->2 and 1->3: LP can send each along
	// opposite arcs for MCL 1; uniform split also achieves max 1 here
	// (each direction carries 0.5+0.5). Check LP result is exactly 1.
	tp := topology.NewTorus(4)
	g := graph.New(4)
	g.AddTraffic(0, 2, 1)
	g.AddTraffic(1, 3, 1)
	res, err := Evaluate(tp, g, topology.Identity(4), lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MCL-1) > 1e-6 {
		t.Fatalf("MCL = %v, want 1", res.MCL)
	}
}

// Property: the LP optimum never exceeds the uniform-split MCL and never
// goes below the trivial lower bound max_flow(vol * dist / #links).
func TestQuickLPBoundsAgainstUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		var tp *topology.Torus
		if rng.Intn(2) == 0 {
			tp = topology.NewMesh(2, 2)
		} else {
			tp = topology.NewTorus(2, 2)
		}
		n := tp.N()
		g := graph.New(n)
		for e := 0; e < 4; e++ {
			g.AddTraffic(rng.Intn(n), rng.Intn(n), float64(1+rng.Intn(9)))
		}
		m := topology.Mapping(rng.Perm(n))
		uniform := routing.MaxChannelLoad(tp, g, m, routing.MinimalAdaptive{})
		res, err := Evaluate(tp, g, m, lp.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.MCL > uniform+1e-6 {
			t.Fatalf("trial %d: LP %v > uniform %v", trial, res.MCL, uniform)
		}
		// Weak lower bound: total network demand / total links.
		demand := 0.0
		for _, f := range g.Flows() {
			if m[f.Src] != m[f.Dst] {
				demand += f.Vol * float64(tp.MinDistance(m[f.Src], m[f.Dst]))
			}
		}
		lb := demand / float64(tp.NumLinks())
		if res.MCL < lb-1e-6 {
			t.Fatalf("trial %d: LP %v below bound %v", trial, res.MCL, lb)
		}
	}
}
