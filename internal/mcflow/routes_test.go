package mcflow

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"rahtm/internal/graph"
	"rahtm/internal/lp"
	"rahtm/internal/topology"
)

func TestRoutesMatchLoads(t *testing.T) {
	tp := topology.NewMesh(2, 2)
	g := graph.New(4)
	g.AddTraffic(0, 3, 4)
	g.AddTraffic(1, 2, 2)
	res, rt, err := EvaluateWithRoutes(tp, g, topology.Identity(4), lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	loads := rt.Loads()
	for ch := range loads {
		if math.Abs(loads[ch]-res.Loads[ch]) > 1e-6 {
			t.Fatalf("channel %d: table %v, result %v", ch, loads[ch], res.Loads[ch])
		}
	}
	if math.Abs(rt.MCL()-res.MCL) > 1e-6 {
		t.Fatalf("table MCL %v, result %v", rt.MCL(), res.MCL)
	}
}

func TestRoutesConserved(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		tp := topology.NewTorus(4)
		g := graph.New(4)
		for e := 0; e < 4; e++ {
			g.AddTraffic(rng.Intn(4), rng.Intn(4), float64(1+rng.Intn(9)))
		}
		_, rt, err := EvaluateWithRoutes(tp, g, topology.Mapping(rng.Perm(4)), lp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Conserved(1e-6); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRoutesFractionsSumToOneAtSource(t *testing.T) {
	tp := topology.NewMesh(3)
	g := graph.New(3)
	g.AddTraffic(0, 2, 5)
	_, rt, err := EvaluateWithRoutes(tp, g, topology.Identity(3), lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Splits) != 1 {
		t.Fatalf("splits = %d", len(rt.Splits))
	}
	out := 0.0
	for ch, f := range rt.Splits[0].Fraction {
		node, _, _ := tp.DecodeChannel(ch)
		if node == 0 {
			out += f
		}
	}
	if math.Abs(out-1) > 1e-6 {
		t.Fatalf("source outflow fraction = %v", out)
	}
}

func TestRoutingTableString(t *testing.T) {
	tp := topology.NewMesh(2, 2)
	g := graph.New(4)
	g.AddTraffic(0, 3, 4)
	_, rt, err := EvaluateWithRoutes(tp, g, topology.Identity(4), lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := rt.String()
	if !strings.Contains(s, "flow 0->3") || !strings.Contains(s, "node 0") {
		t.Fatalf("table rendering:\n%s", s)
	}
}
