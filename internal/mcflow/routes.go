package mcflow

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"rahtm/internal/graph"
	"rahtm/internal/lp"
	"rahtm/internal/routing"
	"rahtm/internal/topology"
)

// RouteSplit describes how one node-level flow divides over channels: the
// fraction of the flow's volume crossing each directed channel.
type RouteSplit struct {
	Src, Dst int             // node ranks
	Vol      float64         // total flow volume
	Fraction map[int]float64 // channel id -> fraction of Vol on it
}

// RoutingTable is the per-flow optimal splitting the LP computed — the
// "application-specific per-flow routing" co-optimization the paper's §VI
// anticipates for hardware that supports it.
type RoutingTable struct {
	Topo   *topology.Torus
	Splits []RouteSplit
}

// EvaluateWithRoutes is Evaluate plus the per-flow routing table extracted
// from the LP solution.
func EvaluateWithRoutes(t *topology.Torus, g *graph.Comm, m topology.Mapping, opt lp.Options) (*Result, *RoutingTable, error) {
	//rahtm:allow(ctxpoll): compatibility wrapper; the root context is the documented default for the non-Ctx API
	return EvaluateWithRoutesCtx(context.Background(), t, g, m, opt)
}

// EvaluateWithRoutesCtx is EvaluateWithRoutes under a context, with
// EvaluateCtx's cancellation semantics.
func EvaluateWithRoutesCtx(ctx context.Context, t *topology.Torus, g *graph.Comm, m topology.Mapping, opt lp.Options) (*Result, *RoutingTable, error) {
	res, splits, err := evaluate(ctx, t, g, m, opt, true)
	if err != nil {
		return nil, nil, err
	}
	return res, &RoutingTable{Topo: t, Splits: splits}, nil
}

// String renders the table compactly for inspection.
func (rt *RoutingTable) String() string {
	var b strings.Builder
	for _, s := range rt.Splits {
		fmt.Fprintf(&b, "flow %d->%d vol %g:\n", s.Src, s.Dst, s.Vol)
		chs := make([]int, 0, len(s.Fraction))
		for ch := range s.Fraction {
			chs = append(chs, ch)
		}
		sort.Ints(chs)
		for _, ch := range chs {
			node, dim, dir := rt.Topo.DecodeChannel(ch)
			sign := "+"
			if dir == topology.Minus {
				sign = "-"
			}
			fmt.Fprintf(&b, "  node %d dim %d%s: %.3f\n", node, dim, sign, s.Fraction[ch])
		}
	}
	return b.String()
}

// Loads reconstructs the per-channel load vector implied by the table.
func (rt *RoutingTable) Loads() []float64 {
	loads := make([]float64, rt.Topo.NumChannels())
	for _, s := range rt.Splits {
		for ch, f := range s.Fraction {
			loads[ch] += f * s.Vol
		}
	}
	return loads
}

// MCL returns the maximum channel load implied by the table.
func (rt *RoutingTable) MCL() float64 {
	return routing.MCL(rt.Loads())
}

// Conserved checks per-flow conservation: the net outflow at the source
// equals the volume, the net inflow at the destination equals the volume,
// and intermediate nodes are balanced (within tol, as a fraction of Vol).
func (rt *RoutingTable) Conserved(tol float64) error {
	for _, s := range rt.Splits {
		net := make(map[int]float64)
		for ch, f := range s.Fraction {
			node, dim, dir := rt.Topo.DecodeChannel(ch)
			next, ok := rt.Topo.NeighborRank(node, dim, dir)
			if !ok {
				return fmt.Errorf("mcflow: route uses non-existent channel %d", ch)
			}
			net[node] += f
			net[next] -= f
		}
		for node, v := range net {
			want := 0.0
			switch node {
			case s.Src:
				want = 1
			case s.Dst:
				want = -1
			}
			if diff := v - want; diff > tol || diff < -tol {
				return fmt.Errorf("mcflow: flow %d->%d unbalanced at node %d by %g", s.Src, s.Dst, node, diff)
			}
		}
	}
	return nil
}
