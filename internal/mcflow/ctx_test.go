package mcflow

import (
	"context"
	"errors"
	"math"
	"testing"

	"rahtm/internal/graph"
	"rahtm/internal/lp"
	"rahtm/internal/topology"
)

func TestEvaluateCtxBackground(t *testing.T) {
	tp := topology.NewTorus(4, 4)
	g := graph.New(tp.N())
	g.AddTraffic(0, 5, 10)
	res, err := EvaluateCtx(context.Background(), tp, g, topology.Identity(tp.N()), lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MCL <= 0 || math.IsNaN(res.MCL) {
		t.Fatalf("MCL = %v", res.MCL)
	}
}

func TestEvaluateCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tp := topology.NewTorus(4, 4)
	g := graph.New(tp.N())
	g.AddTraffic(0, 5, 10)
	_, err := EvaluateCtx(ctx, tp, g, topology.Identity(tp.N()), lp.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
