// Package core orchestrates the full RAHTM pipeline: Phase 1 clustering
// (concentration + per-level 2^n coarsening), Phase 2 top-down hierarchical
// mapping of cluster graphs onto 2-ary n-cubes, and Phase 3 bottom-up
// rotation/reorientation merging with top-N pruning.
//
// The entry point is MapProcesses, which takes a process-level communication
// graph, a power-of-two torus/mesh topology, and a configuration, and
// produces a process-to-node mapping that minimizes the maximum channel
// load under the minimal-adaptive routing approximation.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"rahtm/internal/cluster"
	"rahtm/internal/graph"
	"rahtm/internal/hiermap"
	"rahtm/internal/merge"
	"rahtm/internal/obs"
	"rahtm/internal/routing"
	"rahtm/internal/telemetry"
	"rahtm/internal/topology"
)

// Scheduler reuse counters on the process-wide registry, flushed once per
// level (never from per-sibling hot paths).
var (
	ctrSubproblems    = telemetry.Default.Counter(telemetry.CtrSubproblems)
	ctrSubproblemHits = telemetry.Default.Counter(telemetry.CtrSubproblemHits)
	ctrMerges         = telemetry.Default.Counter(telemetry.CtrMerges)
	ctrMergeHits      = telemetry.Default.Counter(telemetry.CtrMergeHits)
)

// Config controls the pipeline. The zero value is usable for power-of-two
// topologies with concentration factor 1.
type Config struct {
	// Concentration is the number of processes per node (0 = 1). The
	// process count must equal topology nodes x concentration.
	Concentration int
	// GridDims is the logical process-grid layout used by the tiling
	// clusterer (row-major). Nil falls back to greedy clustering.
	GridDims []int
	// Leaf configures the Phase 2 subproblem solver.
	Leaf hiermap.Config
	// Merge configures the Phase 3 beam search.
	Merge merge.Config
	// DisableSiblingReuse turns off the symmetry optimization that copies
	// solutions across subproblems with identical communication structure.
	DisableSiblingReuse bool
	// Parallelism bounds the worker goroutines of the level-wise Phase 2/3
	// scheduler (0 = runtime.NumCPU(), 1 = fully sequential). Unless
	// Merge.Parallelism is set explicitly, the leftover worker budget is
	// also forwarded to the Phase 3 beam scorers. Results are identical
	// for every setting; see DESIGN.md "Concurrency architecture".
	Parallelism int
	// Observer receives pipeline trace events (phase boundaries, subproblem
	// solves, annealing samples, beam rounds, LP iteration counts). Nil is a
	// no-op. The same observer is forwarded to the Phase 2 and Phase 3
	// sub-configurations unless those already carry one.
	Observer obs.Observer
}

// PhaseStats reports where pipeline time went.
type PhaseStats struct {
	ClusterTime time.Duration
	MapTime     time.Duration
	MergeTime   time.Duration

	// Parallelism is the effective worker count of the level-wise
	// scheduler (Config.Parallelism after resolving 0 to NumCPU).
	Parallelism int
	// MapWorkTime and MergeWorkTime accumulate solver wall time across
	// Phase 2 / Phase 3 workers; with W workers they can exceed MapTime /
	// MergeTime by up to a factor of W.
	MapWorkTime   time.Duration
	MergeWorkTime time.Duration

	Subproblems    int // Phase 2 cube mappings required
	SubproblemsHit int // solved via the sibling-reuse cache
	Merges         int // Phase 3 merges required
	MergesHit      int // reused via the cache
	TileShapes     [][]int
	ClusterQuality float64 // fraction of volume made node-local by Phase 1
	LeafMethod     hiermap.Method
	CandidatesKept int // beam size surviving at the root
	// DefaultFallback is set when the identity (default-order) mapping
	// beat every searched candidate and was returned instead — the guard
	// that makes RAHTM never lose to the machine default, matching the
	// paper's empirical behavior.
	DefaultFallback bool
	// Degraded is set when the context deadline expired mid-pipeline and at
	// least one subproblem or merge returned a best-so-far result instead of
	// completing its full search. The mapping is still valid.
	Degraded bool
}

// MapParallelism returns Phase 2's effective parallelism — the average
// number of busy workers, MapWorkTime/MapTime. It is bounded by
// Parallelism (up to timing jitter) and equals ~1 for sequential runs.
// Zero when the phase recorded no wall time.
func (s PhaseStats) MapParallelism() float64 {
	if s.MapTime <= 0 {
		return 0
	}
	return float64(s.MapWorkTime) / float64(s.MapTime)
}

// MergeParallelism returns Phase 3's effective parallelism,
// MergeWorkTime/MergeTime; see MapParallelism.
func (s PhaseStats) MergeParallelism() float64 {
	if s.MergeTime <= 0 {
		return 0
	}
	return float64(s.MergeWorkTime) / float64(s.MergeTime)
}

// Result is the pipeline output.
type Result struct {
	// ProcToNode maps each process rank to a topology node.
	ProcToNode topology.Mapping
	// NodeMapping maps node-level tasks (post-concentration clusters) to
	// topology nodes; it is a permutation of the nodes.
	NodeMapping topology.Mapping
	// NodeGraph is the node-level communication graph.
	NodeGraph *graph.Comm
	// MCL is the maximum channel load of NodeMapping on the real topology
	// under the uniform minimal-path model.
	MCL float64
	// Stats describes the work done.
	Stats PhaseStats

	procToTask []int // process rank -> node-level task id
}

// ProcTask returns the node-level task (post-concentration cluster) of a
// process rank.
func (r *Result) ProcTask(p int) int { return r.procToTask[p] }

// MapProcesses runs RAHTM end to end.
func MapProcesses(proc *graph.Comm, t *topology.Torus, cfg Config) (*Result, error) {
	//rahtm:allow(ctxpoll): compatibility wrapper; the root context is the documented default for the non-Ctx API
	return MapProcessesCtx(context.Background(), proc, t, cfg)
}

// MapProcessesCtx runs RAHTM end to end under a context. Hard cancellation
// (ctx canceled outright) aborts promptly with ctx.Err(); an expired
// deadline degrades gracefully — each remaining solver returns its
// best-so-far valid result and Result.Stats.Degraded is set.
func MapProcessesCtx(ctx context.Context, proc *graph.Comm, t *topology.Torus, cfg Config) (*Result, error) {
	if err := hardCancel(ctx); err != nil {
		return nil, err
	}
	o := obs.OrNop(cfg.Observer)
	scope := telemetry.ScopeFrom(ctx)
	conc := cfg.Concentration
	if conc <= 0 {
		conc = 1
	}
	if proc.N() != t.N()*conc {
		return nil, fmt.Errorf("core: %d processes != %d nodes x %d concentration",
			proc.N(), t.N(), conc)
	}
	h, err := topology.NewHierarchy(t)
	if err != nil {
		return nil, err
	}
	L := h.NumLevels()
	res := &Result{}

	// ---- Phase 1: clustering -------------------------------------------
	o.PhaseStart(obs.PhaseCluster)
	start := time.Now()
	var nodeGraph *graph.Comm
	gridDims := cfg.GridDims
	if conc > 1 {
		c1, err := cluster.Auto(proc, gridDims, conc)
		if err != nil {
			return nil, fmt.Errorf("core: concentration clustering: %w", err)
		}
		nodeGraph = c1.Coarse
		gridDims = c1.GridDims
		res.Stats.TileShapes = append(res.Stats.TileShapes, c1.TileShape)
		res.Stats.ClusterQuality = cluster.Quality(proc, c1)
		res.procToTask = c1.Assign
	} else {
		nodeGraph = proc.Clone()
		res.procToTask = identity(proc.N())
		res.Stats.ClusterQuality = 0
	}

	// Per-level coarsening, bottom-up: graphs[d] is the communication graph
	// over depth-d blocks (graphs[L] = node tasks, graphs[0] = one vertex).
	graphs := make([]*graph.Comm, L+1)
	members := make([][][]int, L) // members[d][parent] = depth-(d+1) ids
	graphs[L] = nodeGraph
	for d := L - 1; d >= 0; d-- {
		group := h.CubeSize(d)
		c, err := cluster.Auto(graphs[d+1], gridDims, group)
		if err != nil {
			return nil, fmt.Errorf("core: level %d clustering: %w", d, err)
		}
		gridDims = c.GridDims
		res.Stats.TileShapes = append(res.Stats.TileShapes, c.TileShape)
		graphs[d] = c.Coarse
		members[d] = make([][]int, c.NumClusters)
		for v, cl := range c.Assign {
			members[d][cl] = append(members[d][cl], v)
		}
		for _, m := range members[d] {
			sort.Ints(m)
		}
	}
	res.Stats.ClusterTime = time.Since(start)
	o.PhaseEnd(obs.PhaseCluster, res.Stats.ClusterTime)

	// ---- Phase 2: top-down cube mapping --------------------------------
	// Within a level every sibling subproblem is independent (§III-C), so
	// the level-wise scheduler groups siblings by the same structural
	// fingerprint the sequential sibling-reuse cache keyed on, solves one
	// representative per group on a bounded worker pool, and fans results
	// out in sibling index order — byte-identical to the sequential run.
	workers := workerCount(cfg.Parallelism)
	res.Stats.Parallelism = workers
	o.PhaseStart(obs.PhaseMap)
	start = time.Now()
	// pins[d][entity] = position of the depth-(d+1) entity within its
	// parent's CubeShape(d) cube.
	pins := make([][]int, L)
	var mapWork atomic.Int64 // cumulative solver nanoseconds across workers
	mapJobs := 0
	for d := 0; d < L; d++ {
		prepStart := time.Now()
		count := entityCount(h, d+1)
		pins[d] = make([]int, count)
		shape := h.CubeShape(d)
		parents := members[d]
		locals := make([]*graph.Comm, len(parents))
		keys := make([]uint64, len(parents))
		for parent, kids := range parents {
			locals[parent], _ = graphs[d+1].InducedSubgraph(kids)
			keys[parent] = locals[parent].StructuralHash() ^ uint64(d)<<56
		}
		rep, groupOf := siblingGroups(len(parents), cfg.DisableSiblingReuse, func(i int) uint64 {
			return keys[i]
		})
		obs.EmitSpan(o, "prepare", obs.PhaseMap, -1, d, 0, prepStart, time.Since(prepStart))
		obs.EmitJobsPlanned(o, obs.PhaseMap, len(rep))
		type solveResult struct {
			res *hiermap.Result
			err error
		}
		solved := make([]solveResult, len(rep))
		mapJobs += len(rep)
		if err := forEach(ctx, workers, len(rep), func(worker, gi int) {
			lc := cfg.Leaf
			lc.Torus = d == 0 && anyWrap(t)
			if lc.Observer == nil {
				lc.Observer = cfg.Observer
			}
			if lc.Parallelism == 0 {
				// Leftover workers prefetch branch-and-bound relaxations
				// inside each solve; milp results are parallelism-invariant,
				// so this never perturbs the mapping.
				lc.Parallelism = innerParallelism(workers, len(rep))
			}
			t0 := time.Now()
			r, err := hiermap.MapCtx(ctx, locals[rep[gi]], shape, lc)
			elapsed := time.Since(t0)
			mapWork.Add(int64(elapsed))
			obs.EmitSpan(o, "solve", obs.PhaseMap, worker, d, keys[rep[gi]], t0, elapsed)
			solved[gi] = solveResult{res: r, err: err}
		}); err != nil {
			return nil, err
		}
		for _, s := range solved {
			if s.err != nil {
				return nil, fmt.Errorf("core: phase 2 level %d: %w", d, s.err)
			}
		}
		// Commit in sibling index order: representatives count as solves,
		// the rest as cache hits, exactly like the sequential pipeline.
		fanStart := time.Now()
		levelHits := 0
		for parent, kids := range parents {
			gi := groupOf[parent]
			r := solved[gi].res
			res.Stats.Subproblems++
			cached := parent != rep[gi]
			if cached {
				res.Stats.SubproblemsHit++
				levelHits++
			} else {
				res.Stats.LeafMethod = r.Method
				if r.Degraded {
					res.Stats.Degraded = true
				}
			}
			o.SubproblemSolved(d, r.Method.String(), r.MCL, cached)
			for j, kid := range kids {
				pins[d][kid] = r.Mapping[j]
			}
		}
		obs.EmitSpan(o, "fanout", obs.PhaseMap, -1, d, 0, fanStart, time.Since(fanStart))
		scope.CounterOr(telemetry.CtrSubproblems, ctrSubproblems).Add(int64(len(parents)))    //rahtm:allow(telemetrybatch): flushes once per level, already batched from the fan-out loop
		scope.CounterOr(telemetry.CtrSubproblemHits, ctrSubproblemHits).Add(int64(levelHits)) //rahtm:allow(telemetrybatch): flushes once per level, already batched from the fan-out loop
	}
	res.Stats.MapTime = time.Since(start)
	res.Stats.MapWorkTime = time.Duration(mapWork.Load())
	obs.EmitWorkerPool(o, obs.PhaseMap, workers, mapJobs, res.Stats.MapWorkTime)
	o.PhaseEnd(obs.PhaseMap, res.Stats.MapTime)

	// ---- Phase 3: bottom-up merging ------------------------------------
	o.PhaseStart(obs.PhaseMerge)
	start = time.Now()
	// Leaf blocks (depth L-1) come straight from Phase 2.
	leavesStart := time.Now()
	blocks := make([]*merge.Block, len(members[L-1]))
	leafShape := h.CubeShape(L - 1)
	leafAlg := routing.MinimalAdaptive{}.WithScope(scope)
	for i, kids := range members[L-1] {
		local := make(topology.Mapping, len(kids))
		for j, kid := range kids {
			local[j] = pins[L-1][kid]
		}
		sub, _ := nodeGraph.InducedSubgraph(kids)
		mcl := hiermap.EvaluateWith(sub, leafShape, false, local, leafAlg)
		blocks[i] = merge.NewLeafBlock(kids, leafShape, local, mcl)
	}
	obs.EmitSpan(o, "leaves", obs.PhaseMerge, -1, L-1, 0, leavesStart, time.Since(leavesStart))
	// Sibling merges within a level are independent (§III-D): dedupe them
	// by mergeKey, merge one representative per group concurrently, and
	// translate the rest. The worker budget not consumed by concurrent
	// sibling merges flows into each merge's internal beam scorers, so the
	// root merge (a single group) still uses every worker.
	var mergeWork atomic.Int64
	mergeJobs := 0
	for d := L - 2; d >= 0; d-- {
		prepStart := time.Now()
		parents := members[d]
		next := make([]*merge.Block, len(parents))
		childSets := make([][]*merge.Block, len(parents))
		posSets := make([][]int, len(parents))
		keys := make([]uint64, len(parents))
		for i, kids := range parents {
			children := make([]*merge.Block, len(kids))
			childPos := make([]int, len(kids))
			for j, kid := range kids {
				children[j] = blocks[kid]
				childPos[j] = pins[d][kid]
			}
			childSets[i] = children
			posSets[i] = childPos
			keys[i] = mergeKey(nodeGraph, childSets[i], posSets[i], d)
		}
		rep, groupOf := siblingGroups(len(parents), cfg.DisableSiblingReuse, func(i int) uint64 {
			return keys[i]
		})
		obs.EmitSpan(o, "prepare", obs.PhaseMerge, -1, d, 0, prepStart, time.Since(prepStart))
		obs.EmitJobsPlanned(o, obs.PhaseMerge, len(rep))
		mc := cfg.Merge
		mc.Level = d
		if mc.Observer == nil {
			mc.Observer = cfg.Observer
		}
		if d == 0 {
			mc.Torus = anyWrap(t)
			if sameDims(t, h.BlockShape(0)) {
				mc.Topology = t
			}
		}
		if mc.Parallelism == 0 {
			mc.Parallelism = innerParallelism(workers, len(rep))
		}
		type mergeResult struct {
			block *merge.Block
			err   error
		}
		merged := make([]mergeResult, len(rep))
		mergeJobs += len(rep)
		if err := forEach(ctx, workers, len(rep), func(worker, gi int) {
			i := rep[gi]
			t0 := time.Now()
			m, err := merge.MergeCtx(ctx, nodeGraph, childSets[i], h.CubeShape(d), posSets[i], mc)
			elapsed := time.Since(t0)
			mergeWork.Add(int64(elapsed))
			obs.EmitSpan(o, "merge", obs.PhaseMerge, worker, d, keys[i], t0, elapsed)
			merged[gi] = mergeResult{block: m, err: err}
		}); err != nil {
			return nil, err
		}
		for _, m := range merged {
			if m.err != nil {
				return nil, fmt.Errorf("core: phase 3 level %d: %w", d, m.err)
			}
		}
		fanStart := time.Now()
		levelHits := 0
		for i := range parents {
			gi := groupOf[i]
			res.Stats.Merges++
			if i == rep[gi] {
				if merged[gi].block.Degraded {
					res.Stats.Degraded = true
				}
				next[i] = merged[gi].block
			} else {
				next[i] = translateBlock(merged[gi].block, childSets[i])
				res.Stats.MergesHit++
				levelHits++
			}
		}
		obs.EmitSpan(o, "fanout", obs.PhaseMerge, -1, d, 0, fanStart, time.Since(fanStart))
		scope.CounterOr(telemetry.CtrMerges, ctrMerges).Add(int64(len(parents)))    //rahtm:allow(telemetrybatch): flushes once per level, already batched from the fan-out loop
		scope.CounterOr(telemetry.CtrMergeHits, ctrMergeHits).Add(int64(levelHits)) //rahtm:allow(telemetrybatch): flushes once per level, already batched from the fan-out loop
		blocks = next
	}
	res.Stats.MergeTime = time.Since(start)
	res.Stats.MergeWorkTime = time.Duration(mergeWork.Load())
	obs.EmitWorkerPool(o, obs.PhaseMerge, workers, mergeJobs, res.Stats.MergeWorkTime)
	o.PhaseEnd(obs.PhaseMerge, res.Stats.MergeTime)

	// ---- Final assembly -------------------------------------------------
	// After the loop blocks[0] is the root block (for L == 1 the Phase 2
	// root solution wrapped as a leaf block).
	final := blocks[0]
	best := final.Candidates[0]
	res.Stats.CandidatesKept = len(final.Candidates)

	// Block-local positions are row-major over BlockShape(0); when the
	// block covers the whole machine this coincides with topology ranks.
	if !sameDims(t, final.Shape) {
		return nil, fmt.Errorf("core: final block shape %v does not cover topology %v", final.Shape, t)
	}
	res.NodeMapping = make(topology.Mapping, t.N())
	for i, task := range final.Tasks {
		res.NodeMapping[task] = best.Local[i]
	}
	if err := res.NodeMapping.Validate(t.N(), true); err != nil {
		return nil, fmt.Errorf("core: produced invalid node mapping: %w", err)
	}
	res.NodeGraph = nodeGraph
	res.MCL = routing.MaxChannelLoad(t, nodeGraph, res.NodeMapping, routing.MinimalAdaptive{}.WithScope(scope))

	// Safety net: the beam search is heuristic, and on workloads the
	// default order already embeds perfectly it can land above it. Compare
	// against the identity (default) node order and keep the better — the
	// paper's evaluation never loses to ABCDET, and neither do we.
	idMCL := routing.MaxChannelLoad(t, nodeGraph, topology.Identity(t.N()), routing.MinimalAdaptive{}.WithScope(scope))
	if idMCL < res.MCL {
		res.NodeMapping = topology.Identity(t.N())
		res.MCL = idMCL
		res.Stats.DefaultFallback = true
	}

	res.ProcToNode = make(topology.Mapping, proc.N())
	for p := 0; p < proc.N(); p++ {
		res.ProcToNode[p] = res.NodeMapping[res.procToTask[p]]
	}
	return res, nil
}

// hardCancel returns ctx's error when it was canceled outright. Deadline
// expiry returns nil: the pipeline degrades to best-so-far instead of
// failing.
func hardCancel(ctx context.Context) error {
	if err := ctx.Err(); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

func identity(n int) []int {
	a := make([]int, n)
	for i := range a {
		a[i] = i
	}
	return a
}

func anyWrap(t *topology.Torus) bool {
	for d := 0; d < t.NumDims(); d++ {
		if t.Wrap(d) {
			return true
		}
	}
	return false
}

func sameDims(t *topology.Torus, shape []int) bool {
	if t.NumDims() != len(shape) {
		return false
	}
	for d := range shape {
		if t.Dim(d) != shape[d] {
			return false
		}
	}
	return true
}

// entityCount returns the number of blocks at the given depth.
func entityCount(h *topology.Hierarchy, depth int) int {
	n := 1
	for l := 0; l < depth && l < h.NumLevels(); l++ {
		n *= h.CubeSize(l)
	}
	return n
}

// mergeKey fingerprints a merge subproblem: the relabeled induced graph over
// the union of child tasks, the child partition and pins, and the children's
// own candidate structure.
func mergeKey(g *graph.Comm, children []*merge.Block, childPos []int, depth int) uint64 {
	var tasks []int
	for _, c := range children {
		tasks = append(tasks, c.Tasks...)
	}
	sort.Ints(tasks)
	sub, local := g.InducedSubgraph(tasks)
	key := sub.StructuralHash() ^ uint64(depth)<<48
	for i, c := range children {
		key = key*1099511628211 + uint64(childPos[i])
		for _, t := range c.Tasks {
			key = key*1099511628211 + uint64(local[t])
		}
		for _, cand := range c.Candidates {
			for _, p := range cand.Local {
				key = key*1099511628211 + uint64(p) + 7
			}
		}
	}
	return key
}

// translateBlock reuses a cached merged block for a structurally identical
// sibling: positions carry over; task ids come from the sibling's children.
func translateBlock(cached *merge.Block, children []*merge.Block) *merge.Block {
	var tasks []int
	for _, c := range children {
		tasks = append(tasks, c.Tasks...)
	}
	sort.Ints(tasks)
	out := &merge.Block{
		Tasks:    tasks,
		Shape:    append([]int(nil), cached.Shape...),
		Degraded: cached.Degraded,
	}
	for _, cand := range cached.Candidates {
		out.Candidates = append(out.Candidates, merge.Candidate{
			Local: cand.Local.Clone(),
			MCL:   cand.MCL,
		})
	}
	return out
}
