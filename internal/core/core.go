// Package core orchestrates the full RAHTM pipeline: Phase 1 clustering
// (concentration + per-level 2^n coarsening), Phase 2 top-down hierarchical
// mapping of cluster graphs onto 2-ary n-cubes, and Phase 3 bottom-up
// rotation/reorientation merging with top-N pruning.
//
// The entry point is MapProcesses, which takes a process-level communication
// graph, a power-of-two torus/mesh topology, and a configuration, and
// produces a process-to-node mapping that minimizes the maximum channel
// load under the minimal-adaptive routing approximation.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"rahtm/internal/cluster"
	"rahtm/internal/graph"
	"rahtm/internal/hiermap"
	"rahtm/internal/merge"
	"rahtm/internal/obs"
	"rahtm/internal/routing"
	"rahtm/internal/topology"
)

// Config controls the pipeline. The zero value is usable for power-of-two
// topologies with concentration factor 1.
type Config struct {
	// Concentration is the number of processes per node (0 = 1). The
	// process count must equal topology nodes x concentration.
	Concentration int
	// GridDims is the logical process-grid layout used by the tiling
	// clusterer (row-major). Nil falls back to greedy clustering.
	GridDims []int
	// Leaf configures the Phase 2 subproblem solver.
	Leaf hiermap.Config
	// Merge configures the Phase 3 beam search.
	Merge merge.Config
	// DisableSiblingReuse turns off the symmetry optimization that copies
	// solutions across subproblems with identical communication structure.
	DisableSiblingReuse bool
	// Observer receives pipeline trace events (phase boundaries, subproblem
	// solves, annealing samples, beam rounds, LP iteration counts). Nil is a
	// no-op. The same observer is forwarded to the Phase 2 and Phase 3
	// sub-configurations unless those already carry one.
	Observer obs.Observer
}

// PhaseStats reports where pipeline time went.
type PhaseStats struct {
	ClusterTime time.Duration
	MapTime     time.Duration
	MergeTime   time.Duration

	Subproblems    int // Phase 2 cube mappings required
	SubproblemsHit int // solved via the sibling-reuse cache
	Merges         int // Phase 3 merges required
	MergesHit      int // reused via the cache
	TileShapes     [][]int
	ClusterQuality float64 // fraction of volume made node-local by Phase 1
	LeafMethod     hiermap.Method
	CandidatesKept int // beam size surviving at the root
	// DefaultFallback is set when the identity (default-order) mapping
	// beat every searched candidate and was returned instead — the guard
	// that makes RAHTM never lose to the machine default, matching the
	// paper's empirical behavior.
	DefaultFallback bool
	// Degraded is set when the context deadline expired mid-pipeline and at
	// least one subproblem or merge returned a best-so-far result instead of
	// completing its full search. The mapping is still valid.
	Degraded bool
}

// Result is the pipeline output.
type Result struct {
	// ProcToNode maps each process rank to a topology node.
	ProcToNode topology.Mapping
	// NodeMapping maps node-level tasks (post-concentration clusters) to
	// topology nodes; it is a permutation of the nodes.
	NodeMapping topology.Mapping
	// NodeGraph is the node-level communication graph.
	NodeGraph *graph.Comm
	// MCL is the maximum channel load of NodeMapping on the real topology
	// under the uniform minimal-path model.
	MCL float64
	// Stats describes the work done.
	Stats PhaseStats

	procToTask []int // process rank -> node-level task id
}

// ProcTask returns the node-level task (post-concentration cluster) of a
// process rank.
func (r *Result) ProcTask(p int) int { return r.procToTask[p] }

// MapProcesses runs RAHTM end to end.
func MapProcesses(proc *graph.Comm, t *topology.Torus, cfg Config) (*Result, error) {
	return MapProcessesCtx(context.Background(), proc, t, cfg)
}

// MapProcessesCtx runs RAHTM end to end under a context. Hard cancellation
// (ctx canceled outright) aborts promptly with ctx.Err(); an expired
// deadline degrades gracefully — each remaining solver returns its
// best-so-far valid result and Result.Stats.Degraded is set.
func MapProcessesCtx(ctx context.Context, proc *graph.Comm, t *topology.Torus, cfg Config) (*Result, error) {
	if err := hardCancel(ctx); err != nil {
		return nil, err
	}
	o := obs.OrNop(cfg.Observer)
	conc := cfg.Concentration
	if conc <= 0 {
		conc = 1
	}
	if proc.N() != t.N()*conc {
		return nil, fmt.Errorf("core: %d processes != %d nodes x %d concentration",
			proc.N(), t.N(), conc)
	}
	h, err := topology.NewHierarchy(t)
	if err != nil {
		return nil, err
	}
	L := h.NumLevels()
	res := &Result{}

	// ---- Phase 1: clustering -------------------------------------------
	o.PhaseStart(obs.PhaseCluster)
	start := time.Now()
	var nodeGraph *graph.Comm
	gridDims := cfg.GridDims
	if conc > 1 {
		c1, err := cluster.Auto(proc, gridDims, conc)
		if err != nil {
			return nil, fmt.Errorf("core: concentration clustering: %w", err)
		}
		nodeGraph = c1.Coarse
		gridDims = c1.GridDims
		res.Stats.TileShapes = append(res.Stats.TileShapes, c1.TileShape)
		res.Stats.ClusterQuality = cluster.Quality(proc, c1)
		res.procToTask = c1.Assign
	} else {
		nodeGraph = proc.Clone()
		res.procToTask = identity(proc.N())
		res.Stats.ClusterQuality = 0
	}

	// Per-level coarsening, bottom-up: graphs[d] is the communication graph
	// over depth-d blocks (graphs[L] = node tasks, graphs[0] = one vertex).
	graphs := make([]*graph.Comm, L+1)
	members := make([][][]int, L) // members[d][parent] = depth-(d+1) ids
	graphs[L] = nodeGraph
	for d := L - 1; d >= 0; d-- {
		group := h.CubeSize(d)
		c, err := cluster.Auto(graphs[d+1], gridDims, group)
		if err != nil {
			return nil, fmt.Errorf("core: level %d clustering: %w", d, err)
		}
		gridDims = c.GridDims
		res.Stats.TileShapes = append(res.Stats.TileShapes, c.TileShape)
		graphs[d] = c.Coarse
		members[d] = make([][]int, c.NumClusters)
		for v, cl := range c.Assign {
			members[d][cl] = append(members[d][cl], v)
		}
		for _, m := range members[d] {
			sort.Ints(m)
		}
	}
	res.Stats.ClusterTime = time.Since(start)
	o.PhaseEnd(obs.PhaseCluster, res.Stats.ClusterTime)

	// ---- Phase 2: top-down cube mapping --------------------------------
	o.PhaseStart(obs.PhaseMap)
	start = time.Now()
	// pins[d][entity] = position of the depth-(d+1) entity within its
	// parent's CubeShape(d) cube.
	pins := make([][]int, L)
	type mapCacheEntry struct {
		mapping topology.Mapping
		mcl     float64
		method  hiermap.Method
	}
	mapCache := make(map[uint64]mapCacheEntry)
	for d := 0; d < L; d++ {
		count := entityCount(h, d+1)
		pins[d] = make([]int, count)
		shape := h.CubeShape(d)
		for parent := range members[d] {
			if err := hardCancel(ctx); err != nil {
				return nil, err
			}
			kids := members[d][parent]
			local, _ := graphs[d+1].InducedSubgraph(kids)
			res.Stats.Subproblems++
			var mapping topology.Mapping
			key := local.StructuralHash() ^ uint64(d)<<56
			if e, ok := mapCache[key]; ok && !cfg.DisableSiblingReuse {
				mapping = e.mapping
				res.Stats.SubproblemsHit++
				o.SubproblemSolved(d, e.method.String(), e.mcl, true)
			} else {
				lc := cfg.Leaf
				lc.Torus = d == 0 && anyWrap(t)
				if lc.Observer == nil {
					lc.Observer = cfg.Observer
				}
				r, err := hiermap.MapCtx(ctx, local, shape, lc)
				if err != nil {
					return nil, fmt.Errorf("core: phase 2 level %d: %w", d, err)
				}
				mapping = r.Mapping
				res.Stats.LeafMethod = r.Method
				if r.Degraded {
					res.Stats.Degraded = true
				}
				o.SubproblemSolved(d, r.Method.String(), r.MCL, false)
				mapCache[key] = mapCacheEntry{mapping: mapping, mcl: r.MCL, method: r.Method}
			}
			for j, kid := range kids {
				pins[d][kid] = mapping[j]
			}
		}
	}
	res.Stats.MapTime = time.Since(start)
	o.PhaseEnd(obs.PhaseMap, res.Stats.MapTime)

	// ---- Phase 3: bottom-up merging ------------------------------------
	o.PhaseStart(obs.PhaseMerge)
	start = time.Now()
	// Leaf blocks (depth L-1) come straight from Phase 2.
	blocks := make([]*merge.Block, len(members[L-1]))
	leafShape := h.CubeShape(L - 1)
	for i, kids := range members[L-1] {
		local := make(topology.Mapping, len(kids))
		for j, kid := range kids {
			local[j] = pins[L-1][kid]
		}
		sub, _ := nodeGraph.InducedSubgraph(kids)
		mcl := hiermap.Evaluate(sub, leafShape, false, local)
		blocks[i] = merge.NewLeafBlock(kids, leafShape, local, mcl)
	}
	mergeCache := make(map[uint64]*merge.Block)
	for d := L - 2; d >= 0; d-- {
		parents := members[d]
		next := make([]*merge.Block, len(parents))
		for i, kids := range parents {
			if err := hardCancel(ctx); err != nil {
				return nil, err
			}
			children := make([]*merge.Block, len(kids))
			childPos := make([]int, len(kids))
			for j, kid := range kids {
				children[j] = blocks[kid]
				childPos[j] = pins[d][kid]
			}
			mc := cfg.Merge
			mc.Level = d
			if mc.Observer == nil {
				mc.Observer = cfg.Observer
			}
			if d == 0 {
				mc.Torus = anyWrap(t)
				if sameDims(t, h.BlockShape(0)) {
					mc.Topology = t
				}
			}
			res.Stats.Merges++
			key := mergeKey(nodeGraph, children, childPos, d)
			if cached, ok := mergeCache[key]; ok && !cfg.DisableSiblingReuse {
				next[i] = translateBlock(cached, children)
				res.Stats.MergesHit++
				continue
			}
			m, err := merge.MergeCtx(ctx, nodeGraph, children, h.CubeShape(d), childPos, mc)
			if err != nil {
				return nil, fmt.Errorf("core: phase 3 level %d: %w", d, err)
			}
			if m.Degraded {
				res.Stats.Degraded = true
			}
			next[i] = m
			mergeCache[key] = m
		}
		blocks = next
	}
	res.Stats.MergeTime = time.Since(start)
	o.PhaseEnd(obs.PhaseMerge, res.Stats.MergeTime)

	// ---- Final assembly -------------------------------------------------
	// After the loop blocks[0] is the root block (for L == 1 the Phase 2
	// root solution wrapped as a leaf block).
	final := blocks[0]
	best := final.Candidates[0]
	res.Stats.CandidatesKept = len(final.Candidates)

	// Block-local positions are row-major over BlockShape(0); when the
	// block covers the whole machine this coincides with topology ranks.
	if !sameDims(t, final.Shape) {
		return nil, fmt.Errorf("core: final block shape %v does not cover topology %v", final.Shape, t)
	}
	res.NodeMapping = make(topology.Mapping, t.N())
	for i, task := range final.Tasks {
		res.NodeMapping[task] = best.Local[i]
	}
	if err := res.NodeMapping.Validate(t.N(), true); err != nil {
		return nil, fmt.Errorf("core: produced invalid node mapping: %w", err)
	}
	res.NodeGraph = nodeGraph
	res.MCL = routing.MaxChannelLoad(t, nodeGraph, res.NodeMapping, routing.MinimalAdaptive{})

	// Safety net: the beam search is heuristic, and on workloads the
	// default order already embeds perfectly it can land above it. Compare
	// against the identity (default) node order and keep the better — the
	// paper's evaluation never loses to ABCDET, and neither do we.
	idMCL := routing.MaxChannelLoad(t, nodeGraph, topology.Identity(t.N()), routing.MinimalAdaptive{})
	if idMCL < res.MCL {
		res.NodeMapping = topology.Identity(t.N())
		res.MCL = idMCL
		res.Stats.DefaultFallback = true
	}

	res.ProcToNode = make(topology.Mapping, proc.N())
	for p := 0; p < proc.N(); p++ {
		res.ProcToNode[p] = res.NodeMapping[res.procToTask[p]]
	}
	return res, nil
}

// hardCancel returns ctx's error when it was canceled outright. Deadline
// expiry returns nil: the pipeline degrades to best-so-far instead of
// failing.
func hardCancel(ctx context.Context) error {
	if err := ctx.Err(); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

func identity(n int) []int {
	a := make([]int, n)
	for i := range a {
		a[i] = i
	}
	return a
}

func anyWrap(t *topology.Torus) bool {
	for d := 0; d < t.NumDims(); d++ {
		if t.Wrap(d) {
			return true
		}
	}
	return false
}

func sameDims(t *topology.Torus, shape []int) bool {
	if t.NumDims() != len(shape) {
		return false
	}
	for d := range shape {
		if t.Dim(d) != shape[d] {
			return false
		}
	}
	return true
}

// entityCount returns the number of blocks at the given depth.
func entityCount(h *topology.Hierarchy, depth int) int {
	n := 1
	for l := 0; l < depth && l < h.NumLevels(); l++ {
		n *= h.CubeSize(l)
	}
	return n
}

// mergeKey fingerprints a merge subproblem: the relabeled induced graph over
// the union of child tasks, the child partition and pins, and the children's
// own candidate structure.
func mergeKey(g *graph.Comm, children []*merge.Block, childPos []int, depth int) uint64 {
	var tasks []int
	for _, c := range children {
		tasks = append(tasks, c.Tasks...)
	}
	sort.Ints(tasks)
	sub, local := g.InducedSubgraph(tasks)
	key := sub.StructuralHash() ^ uint64(depth)<<48
	for i, c := range children {
		key = key*1099511628211 + uint64(childPos[i])
		for _, t := range c.Tasks {
			key = key*1099511628211 + uint64(local[t])
		}
		for _, cand := range c.Candidates {
			for _, p := range cand.Local {
				key = key*1099511628211 + uint64(p) + 7
			}
		}
	}
	return key
}

// translateBlock reuses a cached merged block for a structurally identical
// sibling: positions carry over; task ids come from the sibling's children.
func translateBlock(cached *merge.Block, children []*merge.Block) *merge.Block {
	var tasks []int
	for _, c := range children {
		tasks = append(tasks, c.Tasks...)
	}
	sort.Ints(tasks)
	out := &merge.Block{
		Tasks:    tasks,
		Shape:    append([]int(nil), cached.Shape...),
		Degraded: cached.Degraded,
	}
	for _, cand := range cached.Candidates {
		out.Candidates = append(out.Candidates, merge.Candidate{
			Local: cand.Local.Clone(),
			MCL:   cand.MCL,
		})
	}
	return out
}
