package core

import (
	"math"
	"testing"

	"rahtm/internal/graph"
	"rahtm/internal/routing"
	"rahtm/internal/topology"
)

// halo2D builds a periodic 2-D nearest-neighbor exchange on rows x cols.
func halo2D(rows, cols int, w float64) *graph.Comm {
	g := graph.New(rows * cols)
	id := func(i, j int) int { return i*cols + j }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			g.AddTraffic(id(i, j), id(i, (j+1)%cols), w)
			g.AddTraffic(id(i, (j+1)%cols), id(i, j), w)
			g.AddTraffic(id(i, j), id((i+1)%rows, j), w)
			g.AddTraffic(id((i+1)%rows, j), id(i, j), w)
		}
	}
	return g
}

// butterflyRows builds a CG-like pattern: power-of-two distance exchanges
// within each row of a rows x cols process grid.
func butterflyRows(rows, cols int, w float64) *graph.Comm {
	g := graph.New(rows * cols)
	id := func(i, j int) int { return i*cols + j }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			for s := 1; s < cols; s *= 2 {
				g.AddTraffic(id(i, j), id(i, j^s), w)
			}
		}
	}
	return g
}

func TestPipelineSixteenProcessExample(t *testing.T) {
	// The paper's running example scale: 16 processes onto a 4x4 torus.
	tp := topology.NewTorus(4, 4)
	g := halo2D(4, 4, 10)
	res, err := MapProcesses(g, tp, Config{GridDims: []int{4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.NodeMapping.Validate(16, true); err != nil {
		t.Fatal(err)
	}
	if err := res.ProcToNode.Validate(16, true); err != nil {
		t.Fatal(err)
	}
	// RAHTM must not lose to the default (identity / ABCDET-style) mapping.
	def := routing.MaxChannelLoad(tp, g, topology.Identity(16), routing.MinimalAdaptive{})
	if res.MCL > def+1e-9 {
		t.Fatalf("RAHTM MCL %v worse than default %v", res.MCL, def)
	}
	if res.Stats.Subproblems == 0 || res.Stats.Merges == 0 {
		t.Fatalf("phases did not run: %+v", res.Stats)
	}
}

func TestPipelineBeatsDefaultOnButterfly(t *testing.T) {
	// Long-distance butterfly rows are hostile to the default mapping;
	// RAHTM should find a strictly better placement.
	tp := topology.NewTorus(4, 4)
	g := butterflyRows(2, 8, 5)
	res, err := MapProcesses(g, tp, Config{GridDims: []int{2, 8}})
	if err != nil {
		t.Fatal(err)
	}
	def := routing.MaxChannelLoad(tp, g, topology.Identity(16), routing.MinimalAdaptive{})
	if res.MCL >= def {
		t.Fatalf("RAHTM MCL %v, default %v: expected strict improvement", res.MCL, def)
	}
}

func TestPipelineConcentration(t *testing.T) {
	// 64 processes on a 4x4 torus with 4 processes per node.
	tp := topology.NewTorus(4, 4)
	g := halo2D(8, 8, 3)
	res, err := MapProcesses(g, tp, Config{Concentration: 4, GridDims: []int{8, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.ProcToNode.Validate(16, false); err != nil {
		t.Fatal(err)
	}
	// Every node holds exactly 4 processes.
	counts := make(map[int]int)
	for _, n := range res.ProcToNode {
		counts[n]++
	}
	for n, c := range counts {
		if c != 4 {
			t.Fatalf("node %d holds %d processes, want 4", n, c)
		}
	}
	// Clustering must have absorbed some volume on-node.
	if res.Stats.ClusterQuality <= 0 {
		t.Fatalf("cluster quality = %v, want > 0", res.Stats.ClusterQuality)
	}
	// ProcTask is consistent with ProcToNode.
	for p := 0; p < g.N(); p++ {
		if res.NodeMapping[res.ProcTask(p)] != res.ProcToNode[p] {
			t.Fatal("ProcTask inconsistent with ProcToNode")
		}
	}
}

func TestPipelineThreeDimensional(t *testing.T) {
	tp := topology.NewTorus(4, 4, 2)
	g := halo2D(8, 4, 2) // 32 processes on a 2-D logical grid
	res, err := MapProcesses(g, tp, Config{GridDims: []int{8, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.NodeMapping.Validate(32, true); err != nil {
		t.Fatal(err)
	}
	def := routing.MaxChannelLoad(tp, g, topology.Identity(32), routing.MinimalAdaptive{})
	if res.MCL > def+1e-9 {
		t.Fatalf("RAHTM MCL %v worse than default %v", res.MCL, def)
	}
}

func TestPipelineDeterminism(t *testing.T) {
	tp := topology.NewTorus(4, 4)
	g := butterflyRows(4, 4, 2)
	cfg := Config{GridDims: []int{4, 4}}
	a, err := MapProcesses(g, tp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MapProcesses(g, tp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.NodeMapping {
		if a.NodeMapping[i] != b.NodeMapping[i] {
			t.Fatalf("nondeterministic mapping at task %d", i)
		}
	}
	if math.Abs(a.MCL-b.MCL) > 1e-12 {
		t.Fatal("nondeterministic MCL")
	}
}

func TestPipelineSiblingReuse(t *testing.T) {
	tp := topology.NewTorus(4, 4)
	g := halo2D(4, 4, 1)
	withReuse, err := MapProcesses(g, tp, Config{GridDims: []int{4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if withReuse.Stats.SubproblemsHit == 0 {
		t.Fatalf("uniform stencil should hit the phase-2 cache: %+v", withReuse.Stats)
	}
	noReuse, err := MapProcesses(g, tp, Config{GridDims: []int{4, 4}, DisableSiblingReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if noReuse.Stats.SubproblemsHit != 0 || noReuse.Stats.MergesHit != 0 {
		t.Fatal("reuse not disabled")
	}
	// Both runs must deliver equal-quality mappings (solvers are
	// deterministic, so identical subproblems solve identically).
	if math.Abs(withReuse.MCL-noReuse.MCL) > 1e-9 {
		t.Fatalf("reuse changed quality: %v vs %v", withReuse.MCL, noReuse.MCL)
	}
}

func TestPipelineErrors(t *testing.T) {
	tp := topology.NewTorus(4, 4)
	if _, err := MapProcesses(graph.New(15), tp, Config{}); err == nil {
		t.Fatal("expected error: 15 processes on 16 nodes")
	}
	if _, err := MapProcesses(graph.New(12), topology.NewTorus(3, 4), Config{}); err == nil {
		t.Fatal("expected error: non-power-of-two topology")
	}
	if _, err := MapProcesses(graph.New(32), tp, Config{Concentration: 3}); err == nil {
		t.Fatal("expected error: concentration mismatch")
	}
}

func TestPipelineMeshTopology(t *testing.T) {
	tp := topology.NewMesh(4, 4)
	g := halo2D(4, 4, 1)
	res, err := MapProcesses(g, tp, Config{GridDims: []int{4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.NodeMapping.Validate(16, true); err != nil {
		t.Fatal(err)
	}
	def := routing.MaxChannelLoad(tp, g, topology.Identity(16), routing.MinimalAdaptive{})
	if res.MCL > def+1e-9 {
		t.Fatalf("mesh RAHTM MCL %v worse than default %v", res.MCL, def)
	}
}

func TestPipelineGreedyFallbackWithoutGrid(t *testing.T) {
	tp := topology.NewTorus(4, 4)
	g := butterflyRows(4, 4, 1)
	res, err := MapProcesses(g, tp, Config{}) // no GridDims
	if err != nil {
		t.Fatal(err)
	}
	if err := res.NodeMapping.Validate(16, true); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineThreeLevelHierarchy(t *testing.T) {
	// torus(8,8) has a 3-level hierarchy (8 = 2^3): exercises multi-level
	// top-down mapping and two rounds of bottom-up merging.
	tp := topology.NewTorus(8, 8)
	g := halo2D(8, 8, 4)
	res, err := MapProcesses(g, tp, Config{GridDims: []int{8, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.NodeMapping.Validate(64, true); err != nil {
		t.Fatal(err)
	}
	def := routing.MaxChannelLoad(tp, g, topology.Identity(64), routing.MinimalAdaptive{})
	if res.MCL > def+1e-9 {
		t.Fatalf("RAHTM MCL %v worse than default %v", res.MCL, def)
	}
	// A matched halo admits a dilation-1 embedding; the pipeline should
	// find something close: MCL within 2x of the theoretical best
	// (2 flows x 4 volume per link = 8 with perfect blocking... the exact
	// optimum depends on wrap usage, so just bound it).
	if res.MCL > def {
		t.Fatalf("MCL = %v", res.MCL)
	}
	if res.Stats.Merges < 5 {
		t.Fatalf("expected multi-level merging, got %d merges", res.Stats.Merges)
	}
}

func TestPipelineTwoNodeTorus(t *testing.T) {
	// Smallest possible hierarchy: L = 1, phase 3 degenerates.
	tp := topology.NewTorus(2)
	g := graph.New(2)
	g.AddTraffic(0, 1, 5)
	res, err := MapProcesses(g, tp, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.NodeMapping.Validate(2, true); err != nil {
		t.Fatal(err)
	}
	// Flow of 5 splits over the double links: MCL 2.5.
	if math.Abs(res.MCL-2.5) > 1e-9 {
		t.Fatalf("MCL = %v, want 2.5", res.MCL)
	}
}
