package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"rahtm/internal/graph"
	"rahtm/internal/topology"
)

// halo3D builds a periodic 3-D nearest-neighbor exchange on x*y*z tasks.
func halo3D(x, y, z int, w float64) *graph.Comm {
	g := graph.New(x * y * z)
	id := func(i, j, k int) int { return (i*y+j)*z + k }
	for i := 0; i < x; i++ {
		for j := 0; j < y; j++ {
			for k := 0; k < z; k++ {
				g.AddTraffic(id(i, j, k), id((i+1)%x, j, k), w)
				g.AddTraffic(id((i+1)%x, j, k), id(i, j, k), w)
				g.AddTraffic(id(i, j, k), id(i, (j+1)%y, k), w)
				g.AddTraffic(id(i, (j+1)%y, k), id(i, j, k), w)
				g.AddTraffic(id(i, j, k), id(i, j, (k+1)%z), w)
				g.AddTraffic(id(i, j, (k+1)%z), id(i, j, k), w)
			}
		}
	}
	return g
}

// randomComm builds a seeded sparse random traffic pattern. Unlike the halo
// workloads it has no structural symmetry, so sibling subproblems hash to
// distinct groups and the scheduler actually runs several solves per level.
func randomComm(n, edges int, seed int64) *graph.Comm {
	g := graph.New(n)
	rng := rand.New(rand.NewSource(seed))
	for e := 0; e < edges; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		g.AddTraffic(a, b, 1+9*rng.Float64())
	}
	return g
}

// runPair runs the same workload sequentially and with 8 workers and fails
// the test unless the results are byte-identical.
func runPair(t *testing.T, g *graph.Comm, tp *topology.Torus, cfg Config) (*Result, *Result) {
	t.Helper()
	seqCfg := cfg
	seqCfg.Parallelism = 1
	parCfg := cfg
	parCfg.Parallelism = 8

	seq, err := MapProcesses(g, tp, seqCfg)
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	par, err := MapProcesses(g, tp, parCfg)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}

	if !reflect.DeepEqual(seq.NodeMapping, par.NodeMapping) {
		t.Errorf("node mappings differ:\n seq: %v\n par: %v", seq.NodeMapping, par.NodeMapping)
	}
	if !reflect.DeepEqual(seq.ProcToNode, par.ProcToNode) {
		t.Errorf("process mappings differ:\n seq: %v\n par: %v", seq.ProcToNode, par.ProcToNode)
	}
	if seq.MCL != par.MCL {
		t.Errorf("MCL differs: seq %v par %v", seq.MCL, par.MCL)
	}
	if math.IsNaN(seq.MCL) || seq.MCL <= 0 {
		t.Errorf("suspicious MCL %v", seq.MCL)
	}

	// Work accounting must match too: the parallel scheduler solves the same
	// representatives and reuses the same siblings as the sequential cache.
	type counts struct {
		sub, subHit, merges, mergesHit int
		fallback, degraded             bool
	}
	sc := counts{seq.Stats.Subproblems, seq.Stats.SubproblemsHit, seq.Stats.Merges, seq.Stats.MergesHit, seq.Stats.DefaultFallback, seq.Stats.Degraded}
	pc := counts{par.Stats.Subproblems, par.Stats.SubproblemsHit, par.Stats.Merges, par.Stats.MergesHit, par.Stats.DefaultFallback, par.Stats.Degraded}
	if sc != pc {
		t.Errorf("stats differ: seq %+v par %+v", sc, pc)
	}

	if seq.Stats.Parallelism != 1 {
		t.Errorf("sequential Stats.Parallelism = %d, want 1", seq.Stats.Parallelism)
	}
	if par.Stats.Parallelism != 8 {
		t.Errorf("parallel Stats.Parallelism = %d, want 8", par.Stats.Parallelism)
	}
	return seq, par
}

func TestParallelMatchesSequentialHalo(t *testing.T) {
	tp := topology.NewTorus(4, 4, 4)
	g := halo3D(4, 4, 4, 10)
	cfg := Config{GridDims: []int{4, 4, 4}}
	cfg.Leaf.Seed = 42
	seq, _ := runPair(t, g, tp, cfg)
	if seq.Stats.Subproblems == 0 || seq.Stats.Merges == 0 {
		t.Fatalf("phases did not run: %+v", seq.Stats)
	}
	// The symmetric halo must exercise the sibling-reuse fan-out path.
	if seq.Stats.SubproblemsHit == 0 {
		t.Errorf("expected sibling-reuse hits on a symmetric halo, got %+v", seq.Stats)
	}
}

func TestParallelMatchesSequentialRandom(t *testing.T) {
	// An asymmetric workload: sibling groups are mostly singletons, so the
	// worker pool genuinely runs several distinct solves per level.
	tp := topology.NewTorus(4, 4, 2)
	g := randomComm(32, 160, 7)
	cfg := Config{}
	cfg.Leaf.Seed = 99
	runPair(t, g, tp, cfg)
}

func TestParallelMatchesSequentialNoReuse(t *testing.T) {
	// With sibling reuse disabled every sibling is its own group; the
	// parallel scheduler must still commit results in sibling index order.
	tp := topology.NewTorus(4, 4)
	g := halo2D(4, 4, 10)
	cfg := Config{GridDims: []int{4, 4}, DisableSiblingReuse: true}
	cfg.Leaf.Seed = 42
	seq, _ := runPair(t, g, tp, cfg)
	if seq.Stats.SubproblemsHit != 0 || seq.Stats.MergesHit != 0 {
		t.Errorf("reuse hits recorded despite DisableSiblingReuse: %+v", seq.Stats)
	}
}

func TestParallelWorkerCountResolution(t *testing.T) {
	if got := workerCount(1); got != 1 {
		t.Errorf("workerCount(1) = %d", got)
	}
	if got := workerCount(-3); got != 1 {
		t.Errorf("workerCount(-3) = %d", got)
	}
	if got := workerCount(6); got != 6 {
		t.Errorf("workerCount(6) = %d", got)
	}
	if got := workerCount(0); got < 1 {
		t.Errorf("workerCount(0) = %d", got)
	}
	if got := innerParallelism(8, 2); got != 4 {
		t.Errorf("innerParallelism(8,2) = %d", got)
	}
	if got := innerParallelism(4, 9); got != 1 {
		t.Errorf("innerParallelism(4,9) = %d", got)
	}
	if got := innerParallelism(8, 1); got != 8 {
		t.Errorf("innerParallelism(8,1) = %d", got)
	}
}
