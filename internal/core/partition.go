package core

import (
	"context"
	"fmt"
	"math/bits"
	"sort"

	"rahtm/internal/cluster"
	"rahtm/internal/graph"
	"rahtm/internal/routing"
	"rahtm/internal/telemetry"
	"rahtm/internal/topology"
)

// MapPartitioned extends MapProcesses to tori whose dimensions are not
// powers of two, implementing §III-B's prescription: "topologies that do
// not satisfy this constraint may be partitioned into smaller partitions
// where the property holds. We then apply RAHTM to each one of the
// partitions and then merge back the mappings."
//
// The topology is recursively split along its first non-power-of-two
// dimension into boxes whose extents are the binary decomposition of that
// dimension (6 -> 4 + 2). The node-task graph is partitioned into
// same-sized parts by a size-targeted Kernighan-Lin split minimizing the
// cut, each part is mapped within its box by the regular pipeline, and the
// placements compose. (Cross-partition rotation merging is not applicable
// because the partitions have different shapes; the partition cut is
// minimized instead.)
func MapPartitioned(proc *graph.Comm, t *topology.Torus, cfg Config) (*Result, error) {
	//rahtm:allow(ctxpoll): compatibility wrapper; the root context is the documented default for the non-Ctx API
	return MapPartitionedCtx(context.Background(), proc, t, cfg)
}

// MapPartitionedCtx is MapPartitioned under a context, with the same
// cancellation semantics as MapProcessesCtx: hard cancellation aborts with
// ctx.Err() at the next per-partition boundary, deadline expiry degrades
// each remaining partition to its best-so-far mapping.
func MapPartitionedCtx(ctx context.Context, proc *graph.Comm, t *topology.Torus, cfg Config) (*Result, error) {
	if isPowerOfTwoTorus(t) {
		return MapProcessesCtx(ctx, proc, t, cfg)
	}
	if err := hardCancel(ctx); err != nil {
		return nil, err
	}
	conc := cfg.Concentration
	if conc <= 0 {
		conc = 1
	}
	if proc.N() != t.N()*conc {
		return nil, fmt.Errorf("core: %d processes != %d nodes x %d concentration", proc.N(), t.N(), conc)
	}

	// Phase 1a as usual: concentrate processes into node-level tasks.
	nodeGraph, procToTask, quality, err := concentrate(proc, cfg.GridDims, conc)
	if err != nil {
		return nil, err
	}

	boxes := powerOfTwoBoxes(t)
	parts, err := partitionBySizes(nodeGraph, boxSizes(boxes))
	if err != nil {
		return nil, err
	}

	nodeMapping := make(topology.Mapping, t.N())
	for i := range nodeMapping {
		nodeMapping[i] = -1
	}
	degraded := false
	for bi, box := range boxes {
		if err := hardCancel(ctx); err != nil {
			return nil, err
		}
		tasks := parts[bi]
		sub, _ := nodeGraph.InducedSubgraph(tasks)
		// The box is a mesh cut out of the torus: full-width dims keep
		// their wrap.
		wrap := make([]bool, t.NumDims())
		for d := 0; d < t.NumDims(); d++ {
			wrap[d] = t.Wrap(d) && box.Shape[d] == t.Dim(d)
		}
		boxTopo := topology.NewMixed(box.Shape, wrap)
		boxNodes := t.Nodes(box)
		if boxTopo.N() == 1 {
			nodeMapping[tasks[0]] = boxNodes[0]
			continue
		}
		subCfg := cfg
		subCfg.Concentration = 1
		subCfg.GridDims = nil // the induced subgraph has no grid structure
		res, err := MapProcessesCtx(ctx, sub, boxTopo, subCfg)
		if err != nil {
			return nil, fmt.Errorf("core: partition %v: %w", box, err)
		}
		if res.Stats.Degraded {
			degraded = true
		}
		for li, task := range tasks {
			nodeMapping[task] = boxNodes[res.NodeMapping[li]]
		}
	}
	for task, n := range nodeMapping {
		if n < 0 {
			return nil, fmt.Errorf("core: task %d left unmapped", task)
		}
	}
	if err := nodeMapping.Validate(t.N(), true); err != nil {
		return nil, err
	}

	out := &Result{
		NodeMapping: nodeMapping,
		NodeGraph:   nodeGraph,
		procToTask:  procToTask,
	}
	out.Stats.ClusterQuality = quality
	out.Stats.Degraded = degraded
	out.ProcToNode = make(topology.Mapping, proc.N())
	for p := 0; p < proc.N(); p++ {
		out.ProcToNode[p] = nodeMapping[procToTask[p]]
	}
	out.MCL = routing.MaxChannelLoad(t, nodeGraph, nodeMapping, routing.MinimalAdaptive{}.WithScope(telemetry.ScopeFrom(ctx)))
	return out, nil
}

// concentrate is Phase 1a shared between entry points.
func concentrate(proc *graph.Comm, gridDims []int, conc int) (*graph.Comm, []int, float64, error) {
	if conc == 1 {
		return proc.Clone(), identity(proc.N()), 0, nil
	}
	c1, err := cluster.Auto(proc, gridDims, conc)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("core: concentration clustering: %w", err)
	}
	return c1.Coarse, c1.Assign, cluster.Quality(proc, c1), nil
}

// isPowerOfTwoTorus reports whether every dimension is a power of two.
func isPowerOfTwoTorus(t *topology.Torus) bool {
	for d := 0; d < t.NumDims(); d++ {
		k := t.Dim(d)
		if k&(k-1) != 0 {
			return false
		}
	}
	return true
}

// powerOfTwoBoxes recursively splits t into boxes with power-of-two
// extents, following each dimension's binary decomposition.
func powerOfTwoBoxes(t *topology.Torus) []topology.Box {
	nd := t.NumDims()
	boxes := []topology.Box{{Origin: make([]int, nd), Shape: t.Dims()}}
	for d := 0; d < nd; d++ {
		var next []topology.Box
		for _, b := range boxes {
			k := b.Shape[d]
			if k&(k-1) == 0 {
				next = append(next, b)
				continue
			}
			off := b.Origin[d]
			rem := k
			for rem > 0 {
				chunk := 1 << (bits.Len(uint(rem)) - 1)
				nb := topology.Box{
					Origin: append([]int(nil), b.Origin...),
					Shape:  append([]int(nil), b.Shape...),
				}
				nb.Origin[d] = off
				nb.Shape[d] = chunk
				next = append(next, nb)
				off += chunk
				rem -= chunk
			}
		}
		boxes = next
	}
	// Deterministic order: larger boxes first, then by origin.
	sort.Slice(boxes, func(i, j int) bool {
		si, sj := boxes[i].Size(), boxes[j].Size()
		if si != sj {
			return si > sj
		}
		for d := range boxes[i].Origin {
			if boxes[i].Origin[d] != boxes[j].Origin[d] {
				return boxes[i].Origin[d] < boxes[j].Origin[d]
			}
		}
		return false
	})
	return boxes
}

func boxSizes(boxes []topology.Box) []int {
	out := make([]int, len(boxes))
	for i, b := range boxes {
		out[i] = b.Size()
	}
	return out
}

// partitionBySizes splits the vertices of g into parts with the prescribed
// sizes, minimizing the cut volume with a size-preserving KL-style swap
// refinement. Parts are produced in order; within a part vertices are
// ascending.
func partitionBySizes(g *graph.Comm, sizes []int) ([][]int, error) {
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != g.N() {
		return nil, fmt.Errorf("core: partition sizes sum to %d, graph has %d", total, g.N())
	}
	// Initial assignment: contiguous index ranges.
	part := make([]int, g.N())
	v := 0
	for pi, s := range sizes {
		for k := 0; k < s; k++ {
			part[v] = pi
			v++
		}
	}
	// Symmetric adjacency. The iterable form is a sorted neighbor list,
	// not a map: the gain function accumulates float weights, and float
	// addition in randomized map order would make refinement (and thus
	// the final partition) differ bit-for-bit between runs. A map shadow
	// serves point lookups only.
	type nbw struct {
		nb int
		w  float64
	}
	adjList := make([][]nbw, g.N())
	adjW := make([]map[int]float64, g.N())
	for i := range adjW {
		adjW[i] = make(map[int]float64)
	}
	g.EachFlow(func(s, d int, vol float64) {
		adjW[s][d] += vol
		adjW[d][s] += vol
	})
	for v := range adjW {
		nbs := make([]int, 0, len(adjW[v]))
		for nb := range adjW[v] {
			nbs = append(nbs, nb)
		}
		sort.Ints(nbs)
		adjList[v] = make([]nbw, len(nbs))
		for i, nb := range nbs {
			adjList[v][i] = nbw{nb, adjW[v][nb]}
		}
	}
	gain := func(a, b int) float64 {
		// Gain of swapping vertices a and b between their parts.
		pa, pb := part[a], part[b]
		da, db := 0.0, 0.0
		for _, e := range adjList[a] {
			switch part[e.nb] {
			case pb:
				da += e.w
			case pa:
				da -= e.w
			}
		}
		for _, e := range adjList[b] {
			switch part[e.nb] {
			case pa:
				db += e.w
			case pb:
				db -= e.w
			}
		}
		return da + db - 2*adjW[a][b]
	}
	for pass := 0; pass < 4; pass++ {
		improved := false
		for a := 0; a < g.N(); a++ {
			bestB, bestGain := -1, 1e-12
			for b := a + 1; b < g.N(); b++ {
				if part[a] == part[b] {
					continue
				}
				if gn := gain(a, b); gn > bestGain {
					bestB, bestGain = b, gn
				}
			}
			if bestB >= 0 {
				part[a], part[bestB] = part[bestB], part[a]
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	out := make([][]int, len(sizes))
	for v, pi := range part {
		out[pi] = append(out[pi], v)
	}
	for pi, s := range sizes {
		if len(out[pi]) != s {
			return nil, fmt.Errorf("core: partition %d has %d vertices, want %d", pi, len(out[pi]), s)
		}
	}
	return out, nil
}
