package core

// Level-wise parallel scheduler shared by Phase 2 (sibling subproblem
// solves) and Phase 3 (sibling merges). RAHTM's hierarchy is embarrassingly
// parallel within a level — §III-C solves each 2^n-cluster subproblem
// independently and §III-D merges sibling blocks independently — so the
// scheduler groups a level's siblings by structural fingerprint, solves one
// representative per group on a bounded worker pool, and fans the result
// out through the sibling-reuse translation in sibling index order.
//
// Determinism rule: parallel runs produce byte-identical results to
// sequential ones. This holds because (a) each group's representative is
// its lowest-indexed sibling — exactly the sibling the sequential cache
// would have populated the entry from; (b) every solver invoked by a worker
// is internally deterministic for a fixed seed regardless of its own worker
// count; and (c) results are committed in sibling index order after the
// level completes, so stats and observer fan-out order do not depend on
// worker scheduling.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// workerCount resolves a Parallelism setting: 0 means all CPUs, anything
// below 1 is clamped to sequential.
func workerCount(parallelism int) int {
	if parallelism == 0 {
		return runtime.NumCPU()
	}
	if parallelism < 1 {
		return 1
	}
	return parallelism
}

// siblingGroups partitions the siblings 0..n-1 of one level by fingerprint.
// rep[g] is the lowest-indexed sibling of group g; groupOf[i] is the group
// of sibling i. Groups are numbered in first-occurrence order. When
// disableReuse is set every sibling forms its own group, matching the
// sequential pipeline's behavior of solving each sibling independently.
func siblingGroups(n int, disableReuse bool, keyOf func(i int) uint64) (rep []int, groupOf []int) {
	groupOf = make([]int, n)
	if disableReuse {
		rep = make([]int, n)
		for i := range rep {
			rep[i] = i
			groupOf[i] = i
		}
		return rep, groupOf
	}
	byKey := make(map[uint64]int, n)
	for i := 0; i < n; i++ {
		key := keyOf(i)
		g, ok := byKey[key]
		if !ok {
			g = len(rep)
			byKey[key] = g
			rep = append(rep, i)
		}
		groupOf[i] = g
	}
	return rep, groupOf
}

// forEach runs fn(worker, i) for every i in [0, n) on at most `workers`
// goroutines, pulling indices from a shared counter. worker is the index of
// the goroutine running the call — stable per goroutine, so span recorders
// can lay jobs out on per-worker timelines. Hard cancellation stops
// dispatch of further indices and returns ctx's error; indices already
// running complete (their solvers poll the same context and bail quickly).
// With workers <= 1 it degenerates to a plain loop (worker 0) with a
// cancellation check per index — the fully sequential mode.
func forEach(ctx context.Context, workers, n int, fn func(worker, i int)) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := hardCancel(ctx); err != nil {
				return err
			}
			fn(0, i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || hardCancel(ctx) != nil {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
	return hardCancel(ctx)
}

// innerParallelism splits a worker budget between concurrently running
// groups: with fewer groups than workers each group's solver gets the
// leftover workers for its own internal pool (the root merge is the
// important case — one group, all workers).
func innerParallelism(workers, groups int) int {
	if groups < 1 {
		groups = 1
	}
	if groups > workers {
		return 1
	}
	inner := workers / groups
	if inner < 1 {
		inner = 1
	}
	return inner
}
