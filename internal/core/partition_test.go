package core

import (
	"testing"

	"rahtm/internal/graph"
	"rahtm/internal/routing"
	"rahtm/internal/topology"
)

func TestPowerOfTwoBoxes(t *testing.T) {
	boxes := powerOfTwoBoxes(topology.NewTorus(6, 4))
	// 6 -> 4 + 2, so two boxes: 4x4 and 2x4.
	if len(boxes) != 2 {
		t.Fatalf("boxes = %+v", boxes)
	}
	if boxes[0].Size() != 16 || boxes[1].Size() != 8 {
		t.Fatalf("box sizes = %d, %d", boxes[0].Size(), boxes[1].Size())
	}
	// Coverage: every node in exactly one box.
	tp := topology.NewTorus(6, 4)
	seen := make([]bool, tp.N())
	for _, b := range boxes {
		for _, n := range tp.Nodes(b) {
			if seen[n] {
				t.Fatalf("node %d in two boxes", n)
			}
			seen[n] = true
		}
	}
	for n, ok := range seen {
		if !ok {
			t.Fatalf("node %d uncovered", n)
		}
	}
}

func TestPowerOfTwoBoxesMultipleOddDims(t *testing.T) {
	tp := topology.NewTorus(3, 6)
	boxes := powerOfTwoBoxes(tp)
	// 3 -> 2+1; 6 -> 4+2: four boxes.
	if len(boxes) != 4 {
		t.Fatalf("boxes = %d", len(boxes))
	}
	total := 0
	for _, b := range boxes {
		total += b.Size()
	}
	if total != 18 {
		t.Fatalf("total = %d", total)
	}
}

func TestPartitionBySizes(t *testing.T) {
	// Two communities of different sizes: the cut refinement must place
	// each community whole.
	g := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {0, 3}} {
		g.AddTraffic(e[0], e[1], 10)
		g.AddTraffic(e[1], e[0], 10)
	}
	g.AddTraffic(4, 5, 10)
	g.AddTraffic(5, 4, 10)
	parts, err := partitionBySizes(g, []int{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(parts[0]) != 4 || len(parts[1]) != 2 {
		t.Fatalf("part sizes = %d/%d", len(parts[0]), len(parts[1]))
	}
	// The {4,5} pair should end together (in the size-2 part given the
	// other four are tied by heavy edges).
	inSame := func(a, b int, p []int) bool {
		fa, fb := false, false
		for _, v := range p {
			if v == a {
				fa = true
			}
			if v == b {
				fb = true
			}
		}
		return fa && fb
	}
	if !inSame(4, 5, parts[0]) && !inSame(4, 5, parts[1]) {
		t.Fatalf("pair 4-5 split: %v", parts)
	}
	if _, err := partitionBySizes(g, []int{3, 2}); err == nil {
		t.Fatal("bad sizes should fail")
	}
}

func TestMapPartitionedNonPowerOfTwoTorus(t *testing.T) {
	// A 6x4 torus (24 nodes) with a 2-D halo job.
	tp := topology.NewTorus(6, 4)
	g := graph.New(24)
	id := func(i, j int) int { return i*4 + j }
	for i := 0; i < 6; i++ {
		for j := 0; j < 4; j++ {
			g.AddTraffic(id(i, j), id(i, (j+1)%4), 5)
			g.AddTraffic(id(i, j), id((i+1)%6, j), 5)
		}
	}
	res, err := MapPartitioned(g, tp, Config{GridDims: []int{6, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.NodeMapping.Validate(24, true); err != nil {
		t.Fatal(err)
	}
	if res.MCL <= 0 {
		t.Fatalf("MCL = %v", res.MCL)
	}
	// Must beat a bad scrambled mapping.
	bad := make(topology.Mapping, 24)
	for i := range bad {
		bad[i] = (i*7 + 5) % 24
	}
	badMCL := routing.MaxChannelLoad(tp, g, bad, routing.MinimalAdaptive{})
	if res.MCL >= badMCL {
		t.Fatalf("partitioned mapping %v not better than scrambled %v", res.MCL, badMCL)
	}
}

func TestMapPartitionedDelegatesForPowerOfTwo(t *testing.T) {
	tp := topology.NewTorus(4, 4)
	g := graph.New(16)
	g.AddTraffic(0, 1, 5)
	a, err := MapPartitioned(g, tp, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MapProcesses(g, tp, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.NodeMapping {
		if a.NodeMapping[i] != b.NodeMapping[i] {
			t.Fatal("delegation changed the result")
		}
	}
}

func TestMapPartitionedWithConcentration(t *testing.T) {
	tp := topology.NewTorus(6, 4) // 24 nodes
	g := graph.New(48)            // concentration 2
	for i := 0; i < 48; i++ {
		g.AddTraffic(i, (i+1)%48, 3)
	}
	res, err := MapPartitioned(g, tp, Config{Concentration: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	for _, n := range res.ProcToNode {
		counts[n]++
	}
	for n, c := range counts {
		if c != 2 {
			t.Fatalf("node %d holds %d processes", n, c)
		}
	}
}

func TestMapPartitionedSingleNodeBoxes(t *testing.T) {
	// A 3-wide ring decomposes into a 2-box and a 1-box.
	tp := topology.NewTorus(3, 2)
	g := graph.New(6)
	for i := 0; i < 6; i++ {
		g.AddTraffic(i, (i+1)%6, 1)
	}
	res, err := MapPartitioned(g, tp, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.NodeMapping.Validate(6, true); err != nil {
		t.Fatal(err)
	}
}

func TestMapPartitionedSizeMismatch(t *testing.T) {
	tp := topology.NewTorus(6, 4)
	if _, err := MapPartitioned(graph.New(23), tp, Config{}); err == nil {
		t.Fatal("expected size mismatch error")
	}
}
