package serve

// GET /debug/requests: live visibility into the daemon's traffic — the
// in-flight request set and a bounded board of the slowest completed
// traces, each carrying its per-phase span timeline and per-request
// counter deltas. ?trace=<id> looks up one trace across both sets.

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"

	"rahtm/internal/telemetry"
)

// maxSpansPerTrace bounds how many spans a retained trace keeps. Large
// solves record one span per scheduler job — thousands for deep
// hierarchies — and the debug endpoint only needs the shape of the
// timeline, not every leaf; past the cap only the per-phase envelope
// spans survive.
const maxSpansPerTrace = 256

// traceEntry is the debug view of one request, in flight or completed.
type traceEntry struct {
	TraceID  string           `json:"trace_id"`
	Workload string           `json:"workload,omitempty"`
	Mapper   string           `json:"mapper,omitempty"`
	Start    time.Time        `json:"start"`
	QueueMS  float64          `json:"queue_ms"`
	WallMS   float64          `json:"wall_ms"`
	Status   string           `json:"status"` // queued | solving | ok | degraded | error
	Cached   bool             `json:"cached,omitempty"`
	Error    string           `json:"error,omitempty"`
	Metrics  map[string]int64 `json:"metrics,omitempty"`
	Spans    []telemetry.Span `json:"spans,omitempty"`
}

// tracker maintains the in-flight request map and the slowest-completed
// board. All methods are safe for concurrent use; entries handed out are
// copies, so readers never race the worker mutating the originals.
type tracker struct {
	mu       sync.Mutex
	max      int
	inflight map[string]*traceEntry
	slowest  []*traceEntry // sorted by WallMS descending, len <= max
}

func newTracker(max int) *tracker {
	if max < 0 {
		max = 0
	}
	return &tracker{max: max, inflight: make(map[string]*traceEntry)}
}

// start registers a newly admitted request.
func (t *tracker) start(e *traceEntry) {
	t.mu.Lock()
	t.inflight[e.TraceID] = e
	t.mu.Unlock()
}

// drop forgets an in-flight entry whose admission was rolled back.
func (t *tracker) drop(id string) {
	t.mu.Lock()
	delete(t.inflight, id)
	t.mu.Unlock()
}

// solving marks an in-flight entry as picked up by a worker.
func (t *tracker) solving(id string, queueMS float64) {
	t.mu.Lock()
	if e := t.inflight[id]; e != nil {
		e.Status = "solving"
		e.QueueMS = queueMS
	}
	t.mu.Unlock()
}

// finish retires an in-flight entry: mutate fills in the outcome, then the
// entry competes for a slot on the slowest board.
func (t *tracker) finish(id string, mutate func(*traceEntry)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.inflight[id]
	if e == nil {
		return
	}
	delete(t.inflight, id)
	mutate(e)
	t.retain(e)
}

// record adds an already-completed entry (cache hits bypass the queue).
func (t *tracker) record(e *traceEntry) {
	t.mu.Lock()
	t.retain(e)
	t.mu.Unlock()
}

// retain inserts e into the slowest board, keeping it sorted by WallMS
// descending and bounded at max. Caller holds the lock.
func (t *tracker) retain(e *traceEntry) {
	if t.max == 0 {
		return
	}
	i := sort.Search(len(t.slowest), func(i int) bool { return t.slowest[i].WallMS < e.WallMS })
	if i >= t.max {
		return
	}
	t.slowest = append(t.slowest, nil)
	copy(t.slowest[i+1:], t.slowest[i:])
	t.slowest[i] = e
	if len(t.slowest) > t.max {
		t.slowest = t.slowest[:t.max]
	}
}

// snapshot copies both sets: in-flight entries ordered oldest first, the
// slowest board in its retained (descending WallMS) order. In-flight
// copies report their age so far as WallMS.
func (t *tracker) snapshot() (inflight, slowest []traceEntry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	inflight = make([]traceEntry, 0, len(t.inflight))
	for _, e := range t.inflight {
		c := *e
		c.WallMS = float64(now.Sub(c.Start)) / float64(time.Millisecond)
		inflight = append(inflight, c)
	}
	sort.Slice(inflight, func(i, j int) bool { return inflight[i].Start.Before(inflight[j].Start) })
	slowest = make([]traceEntry, len(t.slowest))
	for i, e := range t.slowest {
		slowest[i] = *e
	}
	return inflight, slowest
}

// get looks one trace up by ID, in-flight entries first.
func (t *tracker) get(id string) (traceEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e := t.inflight[id]; e != nil {
		c := *e
		c.WallMS = float64(time.Since(c.Start)) / float64(time.Millisecond)
		return c, true
	}
	for _, e := range t.slowest {
		if e.TraceID == id {
			return *e, true
		}
	}
	return traceEntry{}, false
}

// trimSpans bounds a completed trace's span list: under the cap the full
// timeline is kept; over it, only the per-phase envelope spans.
func trimSpans(spans []telemetry.Span) []telemetry.Span {
	if len(spans) <= maxSpansPerTrace {
		return spans
	}
	var phases []telemetry.Span
	for _, sp := range spans {
		if sp.Name == "phase" {
			phases = append(phases, sp)
		}
	}
	return phases
}

// handleDebugRequests serves the tracker: the full view by default, one
// trace under ?trace=<id> (404 when the ID is unknown or already evicted).
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if id := r.URL.Query().Get("trace"); id != "" {
		e, ok := s.tracker.get(id)
		if !ok {
			httpError(w, http.StatusNotFound, "no retained trace %q", id)
			return
		}
		_ = enc.Encode(e)
		return
	}
	inflight, slowest := s.tracker.snapshot()
	_ = enc.Encode(map[string]any{
		"inflight": inflight,
		"slowest":  slowest,
	})
}
