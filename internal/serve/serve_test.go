package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rahtm"
	"rahtm/internal/telemetry"
)

// newTestServer builds a Server plus an httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(context.Background(), cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func postSolve(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	defer resp.Body.Close()
	return resp, []byte(readAll(t, resp))
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func decodeResult(t *testing.T, body []byte) *rahtm.Result {
	t.Helper()
	var res rahtm.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("decoding result: %v\nbody: %s", err, body)
	}
	return &res
}

const cgRequest = `{"workload":"CG","topo":[4,4],"conc":1,"mapper":"rahtm"}`

func TestSolveHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postSolve(t, ts.URL, cgRequest)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	res := decodeResult(t, body)
	if len(res.Mapping) != 16 {
		t.Fatalf("mapping covers %d processes, want 16", len(res.Mapping))
	}
	if res.MCL <= 0 {
		t.Errorf("MCL = %v, want > 0", res.MCL)
	}
	if res.Mapper != "RAHTM" {
		t.Errorf("mapper = %q, want RAHTM", res.Mapper)
	}
	if res.Degraded {
		t.Error("unbudgeted solve reported degraded")
	}
	if res.CacheKey == "" {
		t.Error("result carries no cache key")
	}
	seen := make(map[int]bool)
	for _, n := range res.Mapping {
		if n < 0 || n >= 16 || seen[n] {
			t.Fatalf("mapping is not a permutation of nodes: %v", res.Mapping)
		}
		seen[n] = true
	}
}

func TestSolveBaselineMapper(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postSolve(t, ts.URL, `{"workload":"BT","topo":[4,4],"mapper":"hilbert"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	res := decodeResult(t, body)
	if res.Mapper != "Hilbert" {
		t.Errorf("mapper = %q, want Hilbert", res.Mapper)
	}
	if res.Stats != nil {
		t.Error("baseline mapper reported pipeline stats")
	}
}

func TestSolveInlineGraph(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"graph":"comm 4\n0 1 10\n1 2 10\n2 3 10\n3 0 10\n","topo":[2,2],"mapper":"greedy"}`
	resp, body := postSolve(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	if res := decodeResult(t, body); len(res.Mapping) != 4 {
		t.Fatalf("mapping covers %d processes, want 4", len(res.Mapping))
	}
}

func TestMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
	}{
		{"bad json", `{"workload":`},
		{"no topology", `{"workload":"CG"}`},
		{"no workload", `{"topo":[4,4]}`},
		{"unknown workload", `{"workload":"nope","topo":[4,4]}`},
		{"unknown mapper", `{"workload":"CG","topo":[4,4],"mapper":"not-a-mapper"}`},
		{"size mismatch", `{"workload":"CG","procs":64,"topo":[4,4]}`},
		{"zero dimension", `{"workload":"CG","topo":[4,0]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postSolve(t, ts.URL, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", resp.StatusCode, body)
			}
			var e map[string]string
			if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
				t.Fatalf("error body %s", body)
			}
		})
	}
	resp, err := http.Get(ts.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /solve: status %d, want 405", resp.StatusCode)
	}
}

func TestDeadlineDegrade(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postSolve(t, ts.URL, `{"workload":"CG","topo":[4,4,4],"conc":4,"deadline_ms":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	res := decodeResult(t, body)
	if !res.Degraded {
		t.Fatal("1ms budget did not degrade the solve")
	}
	if len(res.Mapping) != 256 {
		t.Fatalf("degraded mapping covers %d processes, want 256", len(res.Mapping))
	}
	counts := make(map[int]int)
	for _, n := range res.Mapping {
		if n < 0 || n >= 64 {
			t.Fatalf("node %d out of range", n)
		}
		counts[n]++
	}
	for n, c := range counts {
		if c != 4 {
			t.Fatalf("node %d holds %d processes, want 4", n, c)
		}
	}
}

// blockingMapper parks until released (or canceled), so tests can hold
// workers busy deterministically. Registered through the public registry —
// which also exercises RegisterMapper.
type blockingMapper struct {
	release chan struct{}
}

func (b blockingMapper) Name() string { return "block" }

func (b blockingMapper) MapProcs(w *rahtm.Workload, t *rahtm.Torus, conc int) (rahtm.Mapping, error) {
	return b.MapProcsCtx(context.Background(), w, t, conc)
}

func (b blockingMapper) MapProcsCtx(ctx context.Context, w *rahtm.Workload, t *rahtm.Torus, conc int) (rahtm.Mapping, error) {
	select {
	case <-b.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	m := make(rahtm.Mapping, w.Procs())
	for i := range m {
		m[i] = i / conc
	}
	return m, nil
}

func TestAdmissionControl429(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }
	rahtm.RegisterMapper("block", func(*rahtm.Torus) rahtm.ProcMapper {
		return blockingMapper{release: release}
	})
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	t.Cleanup(unblock) // runs before the server cleanup, so drain never hangs

	blockReq := `{"workload":"CG","topo":[4,4],"mapper":"block"}`
	type reply struct {
		status int
		body   string
	}
	replies := make(chan reply, 2)
	// First request occupies the worker, second fills the queue.
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(blockReq))
			if err != nil {
				replies <- reply{status: -1, body: err.Error()}
				return
			}
			defer resp.Body.Close()
			replies <- reply{status: resp.StatusCode, body: readAll(t, resp)}
		}()
		// Wait until the request is visibly held (in flight or queued).
		deadline := time.Now().Add(5 * time.Second)
		for {
			if time.Now().After(deadline) {
				t.Fatal("request never reached the worker/queue")
			}
			resp, err := http.Get(ts.URL + "/healthz")
			if err != nil {
				t.Fatal(err)
			}
			var h struct {
				Queue    int `json:"queue"`
				Inflight int `json:"inflight"`
			}
			err = json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if h.Inflight+h.Queue > i {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	prev := telemetry.Default.Snapshot()
	resp, body := postSolve(t, ts.URL, blockReq)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 carries no Retry-After")
	}
	if d := telemetry.Default.Snapshot().Sub(prev); d.Counter(telemetry.CtrServeRejected) != 1 {
		t.Errorf("rejected counter delta = %d, want 1", d.Counter(telemetry.CtrServeRejected))
	}

	// Releasing the mapper lets the held requests complete normally.
	unblock()
	for i := 0; i < 2; i++ {
		r := <-replies
		if r.status != http.StatusOK {
			t.Fatalf("held request finished with %d: %s", r.status, r.body)
		}
	}
}

func TestCacheHitVsMiss(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	prev := telemetry.Default.Snapshot()
	resp1, body1 := postSolve(t, ts.URL, cgRequest)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d, body %s", resp1.StatusCode, body1)
	}
	first := decodeResult(t, body1)
	if first.Cached {
		t.Fatal("first request reported cached")
	}

	resp2, body2 := postSolve(t, ts.URL, cgRequest)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request: status %d, body %s", resp2.StatusCode, body2)
	}
	second := decodeResult(t, body2)
	if !second.Cached {
		t.Fatal("identical second request missed the cache")
	}
	if fmt.Sprint(first.Mapping) != fmt.Sprint(second.Mapping) {
		t.Fatalf("cached mapping differs:\n%v\n%v", first.Mapping, second.Mapping)
	}
	if first.MCL != second.MCL {
		t.Fatalf("cached MCL %v != fresh MCL %v", second.MCL, first.MCL)
	}

	d := telemetry.Default.Snapshot().Sub(prev)
	if hits := d.Counter(telemetry.CtrServeCacheHits); hits != 1 {
		t.Errorf("cache hit delta = %d, want 1", hits)
	}
	if misses := d.Counter(telemetry.CtrServeCacheMisses); misses != 1 {
		t.Errorf("cache miss delta = %d, want 1", misses)
	}
	if s.CacheLen() != 1 {
		t.Errorf("cache holds %d entries, want 1", s.CacheLen())
	}

	// A different mapper is a different key: it must miss.
	resp3, body3 := postSolve(t, ts.URL, `{"workload":"CG","topo":[4,4],"conc":1,"mapper":"hilbert"}`)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("third request: status %d, body %s", resp3.StatusCode, body3)
	}
	if third := decodeResult(t, body3); third.Cached {
		t.Error("different mapper hit the cache")
	}
}

func TestDegradedResultsAreNotCached(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"workload":"CG","topo":[4,4,4],"conc":4,"deadline_ms":1}`
	prev := telemetry.Default.Snapshot()
	resp, body := postSolve(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	if !decodeResult(t, body).Degraded {
		t.Skip("budget did not degrade on this machine")
	}
	resp2, body2 := postSolve(t, ts.URL, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp2.StatusCode, body2)
	}
	if decodeResult(t, body2).Cached {
		t.Fatal("degraded result was served from the cache")
	}
	d := telemetry.Default.Snapshot().Sub(prev)
	if d.Counter(telemetry.CtrServeDegraded) < 1 {
		t.Errorf("degraded counter delta = %d, want >= 1", d.Counter(telemetry.CtrServeDegraded))
	}
}

func TestGracefulShutdown(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	// Park one request so the drain has something to wait for.
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }
	t.Cleanup(unblock)
	rahtm.RegisterMapper("block-drain", func(*rahtm.Torus) rahtm.ProcMapper {
		return blockingMapper{release: release}
	})
	done := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/solve", "application/json",
			strings.NewReader(`{"workload":"CG","topo":[4,4],"mapper":"block-drain"}`))
		if err == nil {
			resp.Body.Close()
		}
		done <- resp
	}()
	waitInflight(t, ts.URL, 1)

	shut := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shut <- s.Shutdown(ctx)
	}()
	// Health flips to draining; polling /healthz never consumes queue space,
	// so the parked worker can't wedge this loop.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Admission is closed: new solves are refused outright.
	if resp, body := postSolve(t, ts.URL, cgRequest); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("admission still open during drain: %d %s", resp.StatusCode, body)
	}
	unblock()
	if err := <-shut; err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	if resp := <-done; resp != nil && resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request finished with %d during drain", resp.StatusCode)
	}
}

func waitInflight(t *testing.T, url string, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h struct {
			Inflight int `json:"inflight"`
		}
		err = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if h.Inflight >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("inflight never reached %d", want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHealthzAndMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" {
		t.Fatalf("healthz status %v", h["status"])
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", mresp.StatusCode)
	}
	var live struct {
		Metrics telemetry.Snapshot `json:"metrics"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&live); err != nil {
		t.Fatal(err)
	}
	if _, ok := live.Metrics.Counters[telemetry.CtrServeRequests]; !ok {
		t.Error("/metrics does not expose the serve request counter")
	}
}

// TestConcurrentRequests hammers the daemon from many goroutines; run
// under -race it shakes out data races across the queue, cache, and
// telemetry paths.
func TestConcurrentRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 256, MaxParallelism: 1})
	reqs := []string{
		cgRequest,
		`{"workload":"BT","topo":[4,4],"mapper":"hilbert"}`,
		`{"workload":"SP","topo":[4,4],"mapper":"greedy"}`,
		`{"workload":"CG","topo":[4,4],"mapper":"ABT"}`,
		`{"workload":"CG","topo":[4,4],"deadline_ms":1}`,
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				body := reqs[(g+i)%len(reqs)]
				resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err.Error()
					continue
				}
				out := readAll(t, resp)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("status %d: %s", resp.StatusCode, out)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("concurrent request failed: %s", e)
	}
}

// TestRetryAfterHintClamped pins the Retry-After clamp: a hint below one
// second (no history, or a fast service) must round up to 1 — zero invites
// an immediate retry storm — and a pathological backlog caps at 60.
func TestRetryAfterHintClamped(t *testing.T) {
	if got := retryAfterHint(0, 0, 8, 2); got != 1 {
		t.Fatalf("no history: hint %d, want 1", got)
	}
	// 5ms mean over a queue of 8 with 2 workers: well under a second.
	if got := retryAfterHint(10, 50, 8, 2); got != 1 {
		t.Fatalf("fast solves: hint %d, want 1", got)
	}
	// 2s mean, queue 4, 2 workers: 4 seconds, inside the clamp.
	if got := retryAfterHint(5, 10000, 4, 2); got != 4 {
		t.Fatalf("mid-range: hint %d, want 4", got)
	}
	// 100s mean over a deep queue: capped at 60.
	if got := retryAfterHint(2, 200000, 32, 1); got != 60 {
		t.Fatalf("backlog: hint %d, want 60", got)
	}
}
