package serve

// Tests for the request-tracing surface: trace IDs end to end, per-request
// counter attribution, the /debug/requests tracker, Prometheus content
// negotiation on /metrics, and the enriched /healthz.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"rahtm"
	"rahtm/internal/telemetry"
)

func TestTraceIDOnEveryResponse(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, body := postSolve(t, ts.URL, cgRequest)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	header := resp.Header.Get(TraceHeader)
	if header == "" {
		t.Fatal("solved response carries no trace header")
	}
	res := decodeResult(t, body)
	if res.TraceID != header {
		t.Fatalf("body trace_id %q != header %q", res.TraceID, header)
	}

	// Error responses carry a trace ID too.
	resp, _ = postSolve(t, ts.URL, `{"workload":"CG"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if resp.Header.Get(TraceHeader) == "" {
		t.Fatal("error response carries no trace header")
	}
}

func TestTraceIDHonorsClientHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/solve", strings.NewReader(cgRequest))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TraceHeader, "deadbeefcafef00d")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(TraceHeader); got != "deadbeefcafef00d" {
		t.Fatalf("trace header = %q, want the client-sent ID", got)
	}
	res := decodeResult(t, []byte(readAll(t, resp)))
	if res.TraceID != "deadbeefcafef00d" {
		t.Fatalf("body trace_id = %q, want the client-sent ID", res.TraceID)
	}
}

// TestConcurrentTraceIDsUnique fires concurrent solves (cache disabled so
// every one runs the pipeline) and checks each response carries a distinct
// trace ID and its own counter attribution.
func TestConcurrentTraceIDsUnique(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, CacheEntries: -1})
	const n = 8
	results := make([]*rahtm.Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(cgRequest))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
				return
			}
			var res rahtm.Result
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				t.Errorf("request %d: decode: %v", i, err)
				return
			}
			results[i] = &res
		}(i)
	}
	wg.Wait()
	seen := map[string]bool{}
	for i, res := range results {
		if res == nil {
			t.Fatalf("request %d failed", i)
		}
		if res.TraceID == "" || seen[res.TraceID] {
			t.Fatalf("request %d trace ID %q empty or duplicated", i, res.TraceID)
		}
		seen[res.TraceID] = true
		if res.Metrics[telemetry.CtrSubproblems] <= 0 {
			t.Errorf("request %d attributes no subproblems: %v", i, res.Metrics)
		}
	}
}

// TestPerRequestMetricsPartition solves two different problems and checks
// the per-request deltas are attributed to the right request and sum into
// the process-wide registry.
func TestPerRequestMetricsPartition(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheEntries: -1})
	before := telemetry.Default.Snapshot()

	_, bodyA := postSolve(t, ts.URL, `{"workload":"CG","topo":[4,4],"conc":1}`)
	_, bodyB := postSolve(t, ts.URL, `{"workload":"BT","topo":[4,4],"conc":4}`)
	resA, resB := decodeResult(t, bodyA), decodeResult(t, bodyB)

	for name, res := range map[string]*rahtm.Result{"A": resA, "B": resB} {
		if res.Metrics[telemetry.CtrStencilHits]+res.Metrics[telemetry.CtrStencilMisses] <= 0 {
			t.Errorf("request %s attributes no stencil traffic: %v", name, res.Metrics)
		}
	}
	delta := telemetry.Default.Snapshot().Sub(before)
	for _, ctr := range []string{telemetry.CtrSubproblems, telemetry.CtrMerges, telemetry.CtrStencilHits} {
		want := resA.Metrics[ctr] + resB.Metrics[ctr]
		if got := delta.Counters[ctr]; got != want {
			t.Errorf("global %s delta = %d, want %d (A %d + B %d)",
				ctr, got, want, resA.Metrics[ctr], resB.Metrics[ctr])
		}
	}
}

func TestCachedResultGetsFreshIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, body1 := postSolve(t, ts.URL, cgRequest)
	res1 := decodeResult(t, body1)
	_, body2 := postSolve(t, ts.URL, cgRequest)
	res2 := decodeResult(t, body2)
	if !res2.Cached {
		t.Fatal("second identical request missed the cache")
	}
	if res2.TraceID == "" || res2.TraceID == res1.TraceID {
		t.Fatalf("cached hit trace ID %q should be fresh (first was %q)", res2.TraceID, res1.TraceID)
	}
	if len(res2.Metrics) != 0 {
		t.Fatalf("cached hit carries the producing solve's metrics: %v", res2.Metrics)
	}
}

func TestDebugRequestsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheEntries: -1})
	_, body := postSolve(t, ts.URL, cgRequest)
	res := decodeResult(t, body)

	resp, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view struct {
		Inflight []traceEntry `json:"inflight"`
		Slowest  []traceEntry `json:"slowest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("decoding /debug/requests: %v", err)
	}
	if len(view.Slowest) == 0 {
		t.Fatal("no completed traces retained")
	}
	e := view.Slowest[0]
	if e.TraceID != res.TraceID {
		t.Fatalf("retained trace %q, want %q", e.TraceID, res.TraceID)
	}
	if e.Status != "ok" || e.WallMS <= 0 {
		t.Fatalf("entry = %+v, want ok with positive wall time", e)
	}
	if len(e.Metrics) == 0 {
		t.Fatal("retained trace has no per-request metrics")
	}
	phases := 0
	for _, sp := range e.Spans {
		if sp.TraceID != res.TraceID {
			t.Fatalf("span %q carries trace %q, want %q", sp.Name, sp.TraceID, res.TraceID)
		}
		if sp.Name == "phase" {
			phases++
		}
	}
	if phases < 3 {
		t.Fatalf("retained trace has %d phase spans, want the 3 pipeline phases", phases)
	}

	// Single-trace lookup and the 404 for unknown IDs.
	one, err := http.Get(ts.URL + "/debug/requests?trace=" + res.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer one.Body.Close()
	if one.StatusCode != http.StatusOK {
		t.Fatalf("?trace lookup status %d", one.StatusCode)
	}
	var single traceEntry
	if err := json.NewDecoder(one.Body).Decode(&single); err != nil || single.TraceID != res.TraceID {
		t.Fatalf("single lookup = %+v, err %v", single, err)
	}
	missing, err := http.Get(ts.URL + "/debug/requests?trace=nope")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace lookup status %d, want 404", missing.StatusCode)
	}
}

func TestMetricsContentNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, _ = postSolve(t, ts.URL, cgRequest)

	// Default: JSON.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("default /metrics content type = %q, want JSON", ct)
	}
	var js struct {
		Metrics telemetry.Snapshot `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatalf("JSON /metrics: %v", err)
	}

	// Accept: text/plain gets a valid Prometheus exposition.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	prom, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer prom.Body.Close()
	if ct := prom.Header.Get("Content-Type"); ct != telemetry.PromContentType {
		t.Fatalf("prometheus content type = %q, want %q", ct, telemetry.PromContentType)
	}
	fams, err := telemetry.ParsePrometheus(prom.Body)
	if err != nil {
		t.Fatalf("invalid Prometheus exposition: %v", err)
	}
	if fams["rahtm_serve_requests_total"] == nil {
		names := make([]string, 0, len(fams))
		for n := range fams {
			names = append(names, n)
		}
		t.Fatalf("rahtm_serve_requests_total missing from exposition; have %v", names)
	}
}

func TestHealthzBuildInfoAndOccupancy(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3, QueueDepth: 5})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		Status   string            `json:"status"`
		Build    map[string]string `json:"build"`
		UptimeS  float64           `json:"uptime_s"`
		Queue    int               `json:"queue"`
		QueueCap int               `json:"queue_cap"`
		Workers  int               `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatalf("decoding healthz: %v", err)
	}
	if hz.Status != "ok" {
		t.Fatalf("status = %q", hz.Status)
	}
	if hz.Build["go"] == "" {
		t.Fatalf("healthz build info missing the Go version: %v", hz.Build)
	}
	if hz.UptimeS < 0 {
		t.Fatalf("uptime_s = %v", hz.UptimeS)
	}
	if hz.QueueCap != 5 || hz.Workers != 3 {
		t.Fatalf("queue_cap=%d workers=%d, want 5 and 3", hz.QueueCap, hz.Workers)
	}
}

func TestTrackerRetainsSlowestBounded(t *testing.T) {
	tr := newTracker(3)
	for i := 0; i < 10; i++ {
		tr.record(&traceEntry{TraceID: fmt.Sprint(i), WallMS: float64(i), Status: "ok"})
	}
	_, slowest := tr.snapshot()
	if len(slowest) != 3 {
		t.Fatalf("retained %d entries, want 3", len(slowest))
	}
	for i, want := range []float64{9, 8, 7} {
		if slowest[i].WallMS != want {
			t.Fatalf("slowest[%d].WallMS = %v, want %v", i, slowest[i].WallMS, want)
		}
	}
	// Disabled retention keeps nothing.
	off := newTracker(-1)
	off.record(&traceEntry{TraceID: "x", WallMS: 1})
	if _, s := off.snapshot(); len(s) != 0 {
		t.Fatal("negative SlowTraces still retains entries")
	}
}
