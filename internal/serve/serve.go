// Package serve implements rahtm-serve: a long-running mapping-as-a-service
// daemon over the unified rahtm.Request/rahtm.Result API.
//
// Requests enter through POST /solve as JSON, pass admission control (a
// bounded queue; overflow is answered 429 with Retry-After), wait for one
// of a fixed pool of solver workers, and run under a per-request context
// deadline with the pipeline's cancel/degrade semantics: expired budgets
// return the best valid mapping found so far, flagged "degraded". Finished
// complete (non-degraded) results land in a content-addressed LRU keyed by
// the request's structural hash, so identical subproblems across requests
// hit the cache the way identical siblings do within a run.
//
// The daemon also serves GET /healthz (liveness + queue state) and mounts
// the existing telemetry endpoint (GET /metrics, GET /debug/vars) on the
// same mux; per-request counters (queue wait, cache hit/miss, degraded
// completions, rejections) land in the process-wide telemetry registry.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rahtm"
	"rahtm/internal/telemetry"
)

// Per-request counters on the process-wide registry. Serving is not a hot
// loop — one update per request — so plain Adds are within the telemetry
// budget.
var (
	ctrRequests    = telemetry.Default.Counter(telemetry.CtrServeRequests)
	ctrCacheHits   = telemetry.Default.Counter(telemetry.CtrServeCacheHits)
	ctrCacheMisses = telemetry.Default.Counter(telemetry.CtrServeCacheMisses)
	ctrRejected    = telemetry.Default.Counter(telemetry.CtrServeRejected)
	ctrDegraded    = telemetry.Default.Counter(telemetry.CtrServeDegraded)
	ctrErrors      = telemetry.Default.Counter(telemetry.CtrServeErrors)
	histQueueWait  = telemetry.Default.Histogram(telemetry.HistServeQueueWait, telemetry.ServeLatencyBounds)
	histLatency    = telemetry.Default.Histogram(telemetry.HistServeLatency, telemetry.ServeLatencyBounds)
)

// Config tunes the daemon. The zero value serves with 2 solver workers, a
// 64-deep queue, and a 1024-entry result cache.
type Config struct {
	// Workers is the number of concurrent solves (0 = 2). Each solve may
	// itself fan out on the pipeline's worker pool; see MaxParallelism.
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a worker
	// (0 = 64). Beyond Workers + QueueDepth, requests are rejected with
	// 429 and a Retry-After hint.
	QueueDepth int
	// CacheEntries bounds the content-addressed result cache (0 = 1024,
	// negative disables caching).
	CacheEntries int
	// MaxDeadline caps (and, when a request carries none, supplies) the
	// per-request solve budget. 0 leaves request deadlines as sent and
	// unbudgeted requests unbounded.
	MaxDeadline time.Duration
	// MaxParallelism caps the pipeline worker goroutines of each solve
	// (0 = leave requests as sent, where 0 means all CPUs). Daemons
	// running several workers set this to keep one request from
	// monopolizing the machine.
	MaxParallelism int
	// MaxBodyBytes bounds the request body (0 = 16 MiB).
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	return c
}

// job is one admitted request waiting for (or being solved by) a worker.
type job struct {
	req      rahtm.Request
	key      string
	ctx      context.Context // request-scoped (canceled when the client goes away)
	enqueued time.Time
	done     chan struct{} // closed by the worker when res/err are set
	res      *rahtm.Result
	err      error
}

// Server is the daemon: handler stack, solve queue, worker pool and result
// cache. Construct with New, expose Handler on an http.Server, and stop
// with Shutdown.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	cache *cache

	queue    chan *job
	workers  sync.WaitGroup
	inflight atomic.Int64

	mu     sync.Mutex // guards closed and the queue close
	closed bool

	baseCtx    context.Context // hard-stop signal for in-flight solves
	baseCancel context.CancelFunc
}

// New builds a Server and starts its worker pool. ctx is the hard-stop
// parent of every solve: canceling it aborts in-flight work outright
// (Shutdown does this itself after its drain grace expires, so daemons
// normally pass a background context and rely on Shutdown).
func New(ctx context.Context, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		cache: newCache(cfg.CacheEntries),
		queue: make(chan *job, cfg.QueueDepth),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(ctx)
	s.mux.HandleFunc("/solve", s.handleSolve)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	telemetry.Mount(s.mux, nil, nil)
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Handler returns the daemon's HTTP handler (POST /solve, GET /healthz,
// GET /metrics, GET /debug/vars).
func (s *Server) Handler() http.Handler { return s.mux }

// CacheLen returns the number of cached results.
func (s *Server) CacheLen() int { return s.cache.len() }

// Shutdown drains the daemon gracefully: admission stops immediately (new
// requests get 503), queued and in-flight solves run to completion, and
// their handlers deliver responses. When ctx expires before the drain
// finishes, the remaining solves are hard-canceled and awaited; the
// corresponding requests fail with 503. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-drained
		return ctx.Err()
	}
}

// admit enqueues a job unless the daemon is draining (ok=false,
// accepting=false) or the queue is full (ok=false, accepting=true).
func (s *Server) admit(j *job) (ok, accepting bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, false
	}
	select {
	case s.queue <- j:
		return true, true
	default:
		return false, true
	}
}

// worker pulls admitted jobs until the queue closes on drain.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.inflight.Add(1)
		histQueueWait.Observe(float64(time.Since(j.enqueued)) / float64(time.Millisecond))
		if j.ctx.Err() != nil {
			// The client went away while the job was queued; don't
			// burn a solve on an answer nobody reads.
			j.err = j.ctx.Err()
		} else {
			j.res, j.err = s.solve(j)
		}
		close(j.done)
		s.inflight.Add(-1)
	}
}

// solve runs one job under the merged request/daemon lifetime.
func (s *Server) solve(j *job) (*rahtm.Result, error) {
	jctx, cancel := context.WithCancel(j.ctx)
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()
	res, err := rahtm.Solve(jctx, j.req)
	if err != nil {
		ctrErrors.Inc()
		return nil, err
	}
	res.CacheKey = j.key
	if res.Degraded {
		// A degraded mapping is valid but deadline-shaped; caching it
		// would serve truncated searches to requests with roomier
		// budgets. Count it and let it through uncached.
		ctrDegraded.Inc()
	} else {
		s.cache.put(j.key, res)
	}
	return res, nil
}

// clampRequest applies the daemon's resource ceilings to a wire request.
func (s *Server) clampRequest(req *rahtm.Request) {
	if max := s.cfg.MaxDeadline; max > 0 {
		maxMS := int64(max / time.Millisecond)
		if req.DeadlineMS <= 0 || req.DeadlineMS > maxMS {
			req.DeadlineMS = maxMS
		}
	}
	if max := s.cfg.MaxParallelism; max > 0 {
		if req.Parallelism <= 0 || req.Parallelism > max {
			req.Parallelism = max
		}
	}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a rahtm.Request JSON to /solve")
		return
	}
	start := time.Now()
	ctrRequests.Inc()
	var req rahtm.Request
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if _, _, err := req.Materialize(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if name := req.Mapper; name != "" {
		// Resolve the mapper eagerly so an unknown name is a cheap 400
		// (typed rahtm.ErrUnknownMapper) instead of a consumed queue slot.
		if _, err := rahtm.MapperByName(name); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	s.clampRequest(&req)
	key, err := req.Key()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	if res, ok := s.cache.get(key); ok {
		ctrCacheHits.Inc()
		res.Cached = true
		writeResult(w, res, start)
		return
	}
	ctrCacheMisses.Inc()

	j := &job{req: req, key: key, ctx: r.Context(), enqueued: time.Now(), done: make(chan struct{})}
	ok, accepting := s.admit(j)
	if !accepting {
		httpError(w, http.StatusServiceUnavailable, "draining: the daemon is shutting down")
		return
	}
	if !ok {
		ctrRejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		httpError(w, http.StatusTooManyRequests,
			"queue full (%d waiting, %d solving): retry later", s.cfg.QueueDepth, s.cfg.Workers)
		return
	}

	select {
	case <-j.done:
	case <-r.Context().Done():
		// The client is gone; the worker notices through j.ctx and the
		// response writer is dead anyway.
		return
	}
	if j.err != nil {
		if errors.Is(j.err, context.Canceled) {
			httpError(w, http.StatusServiceUnavailable, "solve canceled: %v", j.err)
		} else {
			httpError(w, http.StatusBadRequest, "solve failed: %v", j.err)
		}
		return
	}
	writeResult(w, j.res, start)
}

// retryAfterSeconds estimates when a rejected client should try again: the
// mean observed solve latency times the queue it would sit behind, clamped
// to [1, 60] seconds.
func (s *Server) retryAfterSeconds() int {
	return retryAfterHint(histLatency.Count(), histLatency.Sum(), s.cfg.QueueDepth, s.cfg.Workers)
}

// retryAfterHint computes the Retry-After estimate from n observed solves
// summing sumMS milliseconds of latency. The hint is always at least one
// second — a Retry-After of 0 invites an immediate retry storm against a
// full queue — and at most 60 so one pathological solve cannot park
// clients for minutes.
func retryAfterHint(n int64, sumMS float64, queueDepth, workers int) int {
	if n == 0 {
		return 1
	}
	meanMS := sumMS / float64(n)
	secs := int(meanMS*float64(queueDepth)/float64(workers)) / 1000
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return secs
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.closed
	s.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	if draining {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":   status,
		"queue":    len(s.queue),
		"inflight": s.inflight.Load(),
		"workers":  s.cfg.Workers,
		"cached":   s.cache.len(),
	})
}

// writeResult delivers a Result and records the request latency.
func writeResult(w http.ResponseWriter, res *rahtm.Result, start time.Time) {
	histLatency.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(res)
}

// httpError answers with a JSON error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
