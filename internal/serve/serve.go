// Package serve implements rahtm-serve: a long-running mapping-as-a-service
// daemon over the unified rahtm.Request/rahtm.Result API.
//
// Requests enter through POST /solve as JSON, pass admission control (a
// bounded queue; overflow is answered 429 with Retry-After), wait for one
// of a fixed pool of solver workers, and run under a per-request context
// deadline with the pipeline's cancel/degrade semantics: expired budgets
// return the best valid mapping found so far, flagged "degraded". Finished
// complete (non-degraded) results land in a content-addressed LRU keyed by
// the request's structural hash, so identical subproblems across requests
// hit the cache the way identical siblings do within a run.
//
// Every request is traced end to end: the handler draws a trace ID (or
// honors an incoming X-Rahtm-Trace-Id), attaches a request-local telemetry
// scope and span recorder to the solve context, and answers with the trace
// ID in the response header and body. The per-request counter deltas come
// back in Result.Metrics; GET /debug/requests exposes the in-flight set and
// a board of the slowest completed traces with their span timelines.
//
// The daemon also serves GET /healthz (liveness, build info, queue state)
// and mounts the existing telemetry endpoint (GET /metrics — JSON or
// Prometheus text by content negotiation — and GET /debug/vars) on the same
// mux; per-request counters (queue wait, cache hit/miss, degraded
// completions, rejections) land in the process-wide telemetry registry.
// Lifecycle events go to Config.Logger as structured logs.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rahtm"
	"rahtm/internal/telemetry"
)

// Per-request counters on the process-wide registry. Serving is not a hot
// loop — one update per request — so plain Adds are within the telemetry
// budget.
var (
	ctrRequests    = telemetry.Default.Counter(telemetry.CtrServeRequests)
	ctrCacheHits   = telemetry.Default.Counter(telemetry.CtrServeCacheHits)
	ctrCacheMisses = telemetry.Default.Counter(telemetry.CtrServeCacheMisses)
	ctrRejected    = telemetry.Default.Counter(telemetry.CtrServeRejected)
	ctrDegraded    = telemetry.Default.Counter(telemetry.CtrServeDegraded)
	ctrErrors      = telemetry.Default.Counter(telemetry.CtrServeErrors)
	histQueueWait  = telemetry.Default.Histogram(telemetry.HistServeQueueWait, telemetry.ServeLatencyBounds)
	histLatency    = telemetry.Default.Histogram(telemetry.HistServeLatency, telemetry.ServeLatencyBounds)

	gaugeQueueDepth = telemetry.Default.Gauge(telemetry.GaugeServeQueueDepth)
	gaugeInflight   = telemetry.Default.Gauge(telemetry.GaugeServeInflight)
)

// TraceHeader carries the request trace ID: honored when the client sends
// it on POST /solve, and always present on the response.
const TraceHeader = "X-Rahtm-Trace-Id"

// QueueHeader reports, on solved (non-cached) responses, how long the
// request waited for a worker, in milliseconds.
const QueueHeader = "X-Rahtm-Queue-Ms"

// Config tunes the daemon. The zero value serves with 2 solver workers, a
// 64-deep queue, and a 1024-entry result cache.
type Config struct {
	// Workers is the number of concurrent solves (0 = 2). Each solve may
	// itself fan out on the pipeline's worker pool; see MaxParallelism.
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a worker
	// (0 = 64). Beyond Workers + QueueDepth, requests are rejected with
	// 429 and a Retry-After hint.
	QueueDepth int
	// CacheEntries bounds the content-addressed result cache (0 = 1024,
	// negative disables caching).
	CacheEntries int
	// MaxDeadline caps (and, when a request carries none, supplies) the
	// per-request solve budget. 0 leaves request deadlines as sent and
	// unbudgeted requests unbounded.
	MaxDeadline time.Duration
	// MaxParallelism caps the pipeline worker goroutines of each solve
	// (0 = leave requests as sent, where 0 means all CPUs). Daemons
	// running several workers set this to keep one request from
	// monopolizing the machine.
	MaxParallelism int
	// MaxBodyBytes bounds the request body (0 = 16 MiB).
	MaxBodyBytes int64
	// SlowTraces bounds the /debug/requests board of slowest completed
	// requests (0 = 32, negative disables retention).
	SlowTraces int
	// Logger receives the daemon's structured access and lifecycle logs.
	// Nil discards them; cmd/rahtm-serve passes a JSON handler.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.SlowTraces == 0 {
		c.SlowTraces = 32
	}
	if c.Logger == nil {
		// slog has no stdlib discard handler until go1.24; an impossible
		// level on a TextHandler is the portable equivalent.
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
	}
	return c
}

// job is one admitted request waiting for (or being solved by) a worker.
type job struct {
	req      rahtm.Request
	key      string
	ctx      context.Context // request-scoped (canceled when the client goes away)
	traceID  string
	scope    *telemetry.Scope    // request-local counter registry
	rec      *telemetry.Recorder // request-local span timeline
	enqueued time.Time
	queueMS  float64       // set by the worker when the job is picked up
	done     chan struct{} // closed by the worker when res/err are set
	res      *rahtm.Result
	err      error
}

// Server is the daemon: handler stack, solve queue, worker pool and result
// cache. Construct with New, expose Handler on an http.Server, and stop
// with Shutdown.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	cache   *cache
	log     *slog.Logger
	tracker *tracker
	started time.Time

	queue    chan *job
	workers  sync.WaitGroup
	inflight atomic.Int64

	mu     sync.Mutex // guards closed and the queue close
	closed bool

	baseCtx    context.Context // hard-stop signal for in-flight solves
	baseCancel context.CancelFunc
}

// New builds a Server and starts its worker pool. ctx is the hard-stop
// parent of every solve: canceling it aborts in-flight work outright
// (Shutdown does this itself after its drain grace expires, so daemons
// normally pass a background context and rely on Shutdown).
func New(ctx context.Context, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		cache:   newCache(cfg.CacheEntries),
		log:     cfg.Logger,
		tracker: newTracker(cfg.SlowTraces),
		started: time.Now(),
		queue:   make(chan *job, cfg.QueueDepth),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(ctx)
	s.mux.HandleFunc("/solve", s.handleSolve)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/debug/requests", s.handleDebugRequests)
	telemetry.Mount(s.mux, nil, nil)
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Handler returns the daemon's HTTP handler (POST /solve, GET /healthz,
// GET /metrics, GET /debug/vars, GET /debug/requests).
func (s *Server) Handler() http.Handler { return s.mux }

// CacheLen returns the number of cached results.
func (s *Server) CacheLen() int { return s.cache.len() }

// Shutdown drains the daemon gracefully: admission stops immediately (new
// requests get 503), queued and in-flight solves run to completion, and
// their handlers deliver responses. When ctx expires before the drain
// finishes, the remaining solves are hard-canceled and awaited; the
// corresponding requests fail with 503. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-drained
		return ctx.Err()
	}
}

// admit enqueues a job unless the daemon is draining (ok=false,
// accepting=false) or the queue is full (ok=false, accepting=true).
func (s *Server) admit(j *job) (ok, accepting bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, false
	}
	select {
	case s.queue <- j:
		return true, true
	default:
		return false, true
	}
}

// worker pulls admitted jobs until the queue closes on drain.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		gaugeInflight.Set(float64(s.inflight.Add(1)))
		gaugeQueueDepth.Set(float64(len(s.queue)))
		j.queueMS = float64(time.Since(j.enqueued)) / float64(time.Millisecond)
		histQueueWait.Observe(j.queueMS)
		s.tracker.solving(j.traceID, j.queueMS)
		if j.ctx.Err() != nil {
			// The client went away while the job was queued; don't
			// burn a solve on an answer nobody reads.
			j.err = j.ctx.Err()
		} else {
			j.res, j.err = s.solve(j)
		}
		s.finishTrace(j)
		close(j.done)
		gaugeInflight.Set(float64(s.inflight.Add(-1)))
	}
}

// finishTrace retires a job's tracker entry and emits its solve log line.
// It runs on the worker so the trace completes even when the requesting
// client disconnected while the job was queued or solving.
func (s *Server) finishTrace(j *job) {
	status := "ok"
	var errMsg string
	switch {
	case j.err != nil:
		status, errMsg = "error", j.err.Error()
	case j.res.Degraded:
		status = "degraded"
	}
	var wallMS float64
	s.tracker.finish(j.traceID, func(e *traceEntry) {
		e.Status = status
		e.Error = errMsg
		e.WallMS = float64(time.Since(e.Start)) / float64(time.Millisecond)
		if j.res != nil {
			e.Metrics = j.res.Metrics
		}
		e.Spans = trimSpans(j.rec.Spans())
		wallMS = e.WallMS
	})
	s.log.Info("solve",
		"trace", j.traceID,
		"workload", workloadName(&j.req),
		"mapper", mapperName(&j.req),
		"status", status,
		"cached", false,
		"err", errMsg,
		"queue_ms", j.queueMS,
		"wall_ms", wallMS,
		"queue_depth", len(s.queue))
}

// solve runs one job under the merged request/daemon lifetime, with the
// job's telemetry scope on the context so the solver layers attribute
// their counters to this request.
func (s *Server) solve(j *job) (*rahtm.Result, error) {
	jctx, cancel := context.WithCancel(j.ctx)
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()
	jctx = telemetry.WithScope(jctx, j.scope)
	res, err := rahtm.Solve(jctx, j.req)
	if err != nil {
		ctrErrors.Inc()
		return nil, err
	}
	res.CacheKey = j.key
	if res.Degraded {
		// A degraded mapping is valid but deadline-shaped; caching it
		// would serve truncated searches to requests with roomier
		// budgets. Count it and let it through uncached.
		ctrDegraded.Inc()
	} else {
		s.cache.put(j.key, res)
	}
	return res, nil
}

// workloadName and mapperName normalize request fields for logs and traces.
func workloadName(r *rahtm.Request) string {
	if r.Workload == "" && r.Graph != "" {
		return "inline"
	}
	return r.Workload
}

func mapperName(r *rahtm.Request) string {
	if r.Mapper == "" {
		return "rahtm"
	}
	return r.Mapper
}

// clampRequest applies the daemon's resource ceilings to a wire request.
func (s *Server) clampRequest(req *rahtm.Request) {
	if max := s.cfg.MaxDeadline; max > 0 {
		maxMS := int64(max / time.Millisecond)
		if req.DeadlineMS <= 0 || req.DeadlineMS > maxMS {
			req.DeadlineMS = maxMS
		}
	}
	if max := s.cfg.MaxParallelism; max > 0 {
		if req.Parallelism <= 0 || req.Parallelism > max {
			req.Parallelism = max
		}
	}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	traceID := r.Header.Get(TraceHeader)
	if traceID == "" {
		traceID = telemetry.NewTraceID()
	}
	// Every answer — success, rejection, or error — carries the trace ID,
	// so clients can always quote it when reporting a problem.
	w.Header().Set(TraceHeader, traceID)
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a rahtm.Request JSON to /solve")
		return
	}
	ctrRequests.Inc()
	deny := func(code int, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		s.log.Info("solve", "trace", traceID, "status", "denied", "code", code, "err", msg)
		httpError(w, code, "%s", msg)
	}
	var req rahtm.Request
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		deny(http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if _, _, err := req.Materialize(); err != nil {
		deny(http.StatusBadRequest, "%v", err)
		return
	}
	if name := req.Mapper; name != "" {
		// Resolve the mapper eagerly so an unknown name is a cheap 400
		// (typed rahtm.ErrUnknownMapper) instead of a consumed queue slot.
		if _, err := rahtm.MapperByName(name); err != nil {
			deny(http.StatusBadRequest, "%v", err)
			return
		}
	}
	s.clampRequest(&req)
	key, err := req.Key()
	if err != nil {
		deny(http.StatusBadRequest, "%v", err)
		return
	}

	if res, ok := s.cache.get(key); ok {
		ctrCacheHits.Inc()
		res.Cached = true
		res.TraceID = traceID
		wallMS := float64(time.Since(start)) / float64(time.Millisecond)
		s.tracker.record(&traceEntry{
			TraceID: traceID, Workload: workloadName(&req), Mapper: mapperName(&req),
			Start: start, WallMS: wallMS, Status: "ok", Cached: true,
		})
		s.log.Info("solve", "trace", traceID, "workload", workloadName(&req),
			"mapper", mapperName(&req), "status", "ok", "cached", true,
			"wall_ms", wallMS, "queue_depth", len(s.queue))
		writeResult(w, res, start)
		return
	}
	ctrCacheMisses.Inc()

	scope := telemetry.NewScope(traceID)
	rec := telemetry.NewRecorder()
	rec.SetTraceID(traceID)
	req.Observer = rec
	j := &job{
		req: req, key: key, ctx: r.Context(),
		traceID: traceID, scope: scope, rec: rec,
		enqueued: time.Now(), done: make(chan struct{}),
	}
	s.tracker.start(&traceEntry{
		TraceID: traceID, Workload: workloadName(&req), Mapper: mapperName(&req),
		Start: start, Status: "queued",
	})
	ok, accepting := s.admit(j)
	if !accepting {
		s.tracker.drop(traceID)
		deny(http.StatusServiceUnavailable, "draining: the daemon is shutting down")
		return
	}
	if !ok {
		s.tracker.drop(traceID)
		ctrRejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		deny(http.StatusTooManyRequests,
			"queue full (%d waiting, %d solving): retry later", s.cfg.QueueDepth, s.cfg.Workers)
		return
	}
	gaugeQueueDepth.Set(float64(len(s.queue)))

	select {
	case <-j.done:
	case <-r.Context().Done():
		// The client is gone; the worker notices through j.ctx and the
		// response writer is dead anyway (it still retires the trace).
		return
	}
	if j.err != nil {
		if errors.Is(j.err, context.Canceled) {
			httpError(w, http.StatusServiceUnavailable, "solve canceled: %v", j.err)
		} else {
			httpError(w, http.StatusBadRequest, "solve failed: %v", j.err)
		}
		return
	}
	w.Header().Set(QueueHeader, strconv.FormatFloat(j.queueMS, 'f', 3, 64))
	writeResult(w, j.res, start)
}

// retryAfterSeconds estimates when a rejected client should try again: the
// mean observed solve latency times the queue it would sit behind, clamped
// to [1, 60] seconds.
func (s *Server) retryAfterSeconds() int {
	return retryAfterHint(histLatency.Count(), histLatency.Sum(), s.cfg.QueueDepth, s.cfg.Workers)
}

// retryAfterHint computes the Retry-After estimate from n observed solves
// summing sumMS milliseconds of latency. The hint is always at least one
// second — a Retry-After of 0 invites an immediate retry storm against a
// full queue — and at most 60 so one pathological solve cannot park
// clients for minutes.
func retryAfterHint(n int64, sumMS float64, queueDepth, workers int) int {
	if n == 0 {
		return 1
	}
	meanMS := sumMS / float64(n)
	secs := int(meanMS*float64(queueDepth)/float64(workers)) / 1000
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return secs
}

// buildInfo extracts version identity from the binary once: the Go
// toolchain, the main module version, and the VCS revision when the binary
// was built from a checkout.
var buildInfo = sync.OnceValue(func() map[string]string {
	out := map[string]string{}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	out["go"] = bi.GoVersion
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		out["version"] = v
	}
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			out["revision"] = kv.Value
		case "vcs.modified":
			out["dirty"] = kv.Value
		}
	}
	return out
})

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.closed
	s.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	if draining {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":    status,
		"build":     buildInfo(),
		"uptime_s":  time.Since(s.started).Seconds(),
		"queue":     len(s.queue),
		"queue_cap": s.cfg.QueueDepth,
		"inflight":  s.inflight.Load(),
		"workers":   s.cfg.Workers,
		"cached":    s.cache.len(),
	})
}

// writeResult delivers a Result and records the request latency.
func writeResult(w http.ResponseWriter, res *rahtm.Result, start time.Time) {
	histLatency.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(res)
}

// httpError answers with a JSON error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
