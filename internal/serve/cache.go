package serve

import (
	"container/list"
	"sync"

	"rahtm"
)

// cache is the content-addressed result store: a bounded LRU keyed by
// Request.Key, the same structural fingerprint the pipeline's sibling-reuse
// cache keys on — identical subproblems across requests hit here the way
// identical siblings do within a run. Only complete (non-degraded) results
// are stored, so equal keys always mean equal mappings regardless of the
// deadlines the producing requests ran under.
type cache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *rahtm.Result
}

// newCache returns an LRU holding at most max results; max <= 0 disables
// caching (every lookup misses, every store is dropped).
func newCache(max int) *cache {
	return &cache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns an independent copy of the cached result for key, so callers
// (and the JSON encoder) can annotate it without racing other hits.
func (c *cache) get(key string) (*rahtm.Result, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return cloneResult(el.Value.(*cacheEntry).res), true
}

// put stores an independent copy of res under key, evicting the least
// recently used entry beyond capacity.
func (c *cache) put(key string, res *rahtm.Result) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = cloneResult(res)
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: cloneResult(res)})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*cacheEntry).key)
	}
}

// len returns the number of cached results.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// cloneResult copies the serializable parts of a Result. Detail (the full
// pipeline output) is dropped: it is not part of the wire format and
// holding node graphs alive in the cache would defeat the entry bound.
func cloneResult(r *rahtm.Result) *rahtm.Result {
	out := *r
	out.Mapping = append(rahtm.Mapping(nil), r.Mapping...)
	if r.Stats != nil {
		stats := *r.Stats
		out.Stats = &stats
	}
	out.Detail = nil
	// A cached result is served under many requests: strip the producing
	// solve's identity and counter attribution so every hit carries its
	// own trace ID (stamped by the handler) and no stale metrics.
	out.TraceID = ""
	out.Metrics = nil
	return &out
}
