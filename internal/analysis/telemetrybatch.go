package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// TelemetryBatch keeps instrumentation inside the 2% overhead budget
// (DESIGN.md §8) in the hot packages (routing, core, lp, milp, hiermap,
// merge). Two shapes are flagged inside any loop:
//
//   - telemetry.Counter.Add/Inc — the shared striped counter costs a
//     cross-core atomic per call; hot loops must accumulate into a plain
//     local and flush once at loop/solve exit (or claim a Counter.Local
//     handle outside the loop — LocalCounter updates are uncontended and
//     approved for per-item firing);
//   - Registry.Counter/Gauge/Histogram — a registry lookup takes the
//     registry lock; handles must be hoisted to package or solve scope.
var TelemetryBatch = &Analyzer{
	Name:   "telemetrybatch",
	Doc:    "per-iteration telemetry counter updates in hot loops; batch locally and flush at loop exit",
	Filter: IsHotPkg,
	Run:    runTelemetryBatch,
}

func runTelemetryBatch(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.ForStmt:
				body = n.Body
			case *ast.RangeStmt:
				body = n.Body
			default:
				return true
			}
			checkLoopTelemetry(pass, body)
			return false // checkLoopTelemetry also covers nested loops
		})
	}
	return nil
}

func checkLoopTelemetry(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		recv := receiverNamed(fn)
		if recv == nil || recv.Obj().Pkg() == nil ||
			!strings.HasSuffix(recv.Obj().Pkg().Path(), "internal/telemetry") {
			return true
		}
		switch recv.Obj().Name() {
		case "Counter":
			if fn.Name() == "Add" || fn.Name() == "Inc" {
				pass.Reportf(call.Pos(), "telemetry.Counter.%s inside a hot loop costs an atomic per iteration; accumulate into a local and flush after the loop (or claim a Counter.Local handle outside it)", fn.Name())
			}
		case "Registry":
			if fn.Name() == "Counter" || fn.Name() == "Gauge" || fn.Name() == "Histogram" {
				pass.Reportf(call.Pos(), "telemetry.Registry.%s lookup inside a loop takes the registry lock per iteration; hoist the handle out of the loop", fn.Name())
			}
		}
		return true
	})
}

// receiverNamed returns the named type of fn's receiver, unwrapping a
// pointer, or nil when fn is not a method.
func receiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
