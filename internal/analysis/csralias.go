package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CSRAlias enforces the frozen-CSR aliasing contract of internal/graph
// (DESIGN.md §12). Slices obtained from accessors documented as aliasing —
// graph.Comm.Edges, and the merge-side nbr/nvol row caches built from it —
// are windows into the graph's immutable rowPtr/colIdx/vol arrays, shared
// by every holder of the graph. Mutating through such a slice (an element
// store, append, copy-into, or an in-place sort) silently corrupts the
// frozen graph for everyone else and breaks the byte-identical guarantees
// pinned by TestFrozenPathByteIdentical; storing one into a field, map, or
// slice element extends the alias's lifetime beyond the local scope and is
// reported too, so each long-lived alias is a documented decision
// (rahtm:allow with justification).
//
// The approximation is a conservative intra-procedural taint walk: calls
// to aliasing sources taint their results, plain assignments and
// reslicings propagate taint between locals (iterated to a fixpoint, so
// declaration order does not matter), and the four mutating shapes above
// are reported on tainted values. The walk does not follow taint through
// function calls, returns, or composite literals — a slice laundered
// through a helper escapes the analysis (see DESIGN.md §14 for the blind
// spots). The clean idiom is to copy before mutating:
//
//	ds, vs := g.Edges(s)
//	own := append([]float64(nil), vs...) // fresh backing array
//	sort.Float64s(own)                   // fine
var CSRAlias = &Analyzer{
	Name:   "csralias",
	Doc:    "writes, appends, sorts, or escaping stores through slices aliasing frozen CSR graph rows",
	Filter: IsInternalPkg,
	Run:    runCSRAlias,
}

func runCSRAlias(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkCSRAlias(pass, fd.Body)
			return true
		})
	}
	return nil
}

// isAliasSource reports whether e is a direct aliasing source: a call to
// graph.Comm.Edges, or an index into an nbr/nvol row-cache field (the
// [][]int32 / [][]float64 merge caches whose rows alias CSR rows).
func isAliasSource(pass *Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Name() != "Edges" {
			return false
		}
		recv := receiverNamed(fn)
		return recv != nil && recv.Obj().Name() == "Comm" &&
			recv.Obj().Pkg() != nil && strings.HasSuffix(recv.Obj().Pkg().Path(), "internal/graph")
	case *ast.IndexExpr:
		sel, ok := e.X.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "nbr" && sel.Sel.Name != "nvol") {
			return false
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil {
			return false
		}
		if _, isField := obj.(*types.Var); !isField {
			return false
		}
		s := obj.Type().String()
		return s == "[][]int32" || s == "[][]float64"
	}
	return false
}

// checkCSRAlias taints locals that hold aliasing slices and reports the
// mutating and escaping uses within one function body.
func checkCSRAlias(pass *Pass, body *ast.BlockStmt) {
	tainted := map[types.Object]bool{}

	// exprTainted reports whether e evaluates to an aliasing slice given
	// the current taint set: a direct source, a tainted local, or a
	// reslicing of either.
	var exprTainted func(e ast.Expr) bool
	exprTainted = func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.ParenExpr:
			return exprTainted(e.X)
		case *ast.SliceExpr:
			return exprTainted(e.X)
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[e]; obj != nil && tainted[obj] {
				return true
			}
			if obj := pass.TypesInfo.Defs[e]; obj != nil && tainted[obj] {
				return true
			}
			return false
		default:
			return isAliasSource(pass, e)
		}
	}
	lhsObj := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Uses[id]
	}

	// Fixpoint taint propagation over assignments: `a, b := g.Edges(s)`,
	// `c := a`, `d := a[1:]` all taint their left-hand locals.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			mark := func(e ast.Expr) {
				if obj := lhsObj(e); obj != nil && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
			if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
				// Multi-assign from one call: Edges taints every result.
				if isAliasSource(pass, as.Rhs[0]) {
					for _, l := range as.Lhs {
						mark(l)
					}
				}
				return true
			}
			for i, r := range as.Rhs {
				if i < len(as.Lhs) && exprTainted(r) {
					mark(as.Lhs[i])
				}
			}
			return true
		})
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				// ds[i] = v, ds[i] += v: element write through the alias.
				if ix, ok := l.(*ast.IndexExpr); ok && exprTainted(ix.X) {
					pass.Reportf(ix.Pos(), "write through a slice aliasing frozen CSR rows mutates the shared graph; copy the row first (append([]T(nil), s...))")
				}
			}
			// field/element = tainted: the alias escapes the local scope.
			rhsSource := len(n.Lhs) > 1 && len(n.Rhs) == 1 && isAliasSource(pass, n.Rhs[0])
			for i, l := range n.Lhs {
				escapes := false
				switch l.(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					escapes = true
				}
				if !escapes {
					continue
				}
				if rhsSource || (i < len(n.Rhs) && exprTainted(n.Rhs[i])) {
					pass.Reportf(l.Pos(), "storing a CSR-aliasing slice into a field or element extends the alias beyond this scope; copy it, or justify the shared lifetime with a rahtm:allow")
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := n.X.(*ast.IndexExpr); ok && exprTainted(ix.X) {
				pass.Reportf(ix.Pos(), "write through a slice aliasing frozen CSR rows mutates the shared graph; copy the row first (append([]T(nil), s...))")
			}
		case *ast.CallExpr:
			if isBuiltinCall(pass, n, "append") && len(n.Args) > 0 && exprTainted(n.Args[0]) {
				pass.Reportf(n.Pos(), "append to a slice aliasing frozen CSR rows may write into the shared graph when capacity allows; copy the row first")
				return true
			}
			if isBuiltinCall(pass, n, "copy") && len(n.Args) > 0 && exprTainted(n.Args[0]) {
				pass.Reportf(n.Pos(), "copy into a slice aliasing frozen CSR rows mutates the shared graph; copy the row into an owned slice instead")
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if pkgID, ok := sel.X.(*ast.Ident); ok {
					if pn, isPkg := pass.TypesInfo.Uses[pkgID].(*types.PkgName); isPkg {
						p := pn.Imported().Path()
						if p == "sort" || p == "slices" {
							for _, arg := range n.Args {
								if exprTainted(arg) {
									pass.Reportf(n.Pos(), "%s.%s sorts in place through a slice aliasing frozen CSR rows; sort an owned copy", p, sel.Sel.Name)
								}
							}
						}
					}
				}
			}
		}
		return true
	})
}
