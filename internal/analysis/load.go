package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// A Package is one type-checked target package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
}

// goList runs `go list` in dir and decodes its JSON object stream.
func goList(dir string, args ...string) ([]listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v: %s", args, err, errb.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(&out)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", args, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds an import-path -> gc-export-data-file map for the
// transitive dependencies of patterns, by asking the go command to compile
// export data into the build cache.
func exportLookup(dir string, patterns ...string) (map[string]string, error) {
	args := append([]string{"-deps", "-export", "-json=ImportPath,Export"}, patterns...)
	pkgs, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// newImporter returns a go/types importer that resolves imports from the
// given export-data file map.
func newImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Load enumerates the packages matching patterns (relative to dir, as the
// go command would interpret them), parses their non-test sources, and
// type-checks them from source against gc export data for dependencies.
// Test files are excluded deliberately: the invariants rahtm-vet enforces
// concern library and command code; tests may use context.Background,
// exact float comparisons against goldens, and so on.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(dir, append([]string{"-json=ImportPath,Dir,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports, err := exportLookup(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, gf := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, gf), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := newTypesInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		out = append(out, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      pkg,
			TypesInfo:  info,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// CheckFiles type-checks an already-parsed file set under the given import
// path, resolving its imports via `go list -export`. It is the loading path
// used by the analysistest fixture harness, whose sources live under
// testdata/ and are therefore invisible to `go list ./...`.
func CheckFiles(dir string, fset *token.FileSet, files []*ast.File, asImportPath string) (*types.Package, *types.Info, error) {
	seen := map[string]bool{}
	var imports []string
	for _, f := range files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil || path == "unsafe" || seen[path] {
				continue
			}
			seen[path] = true
			imports = append(imports, path)
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		sort.Strings(imports)
		var err error
		exports, err = exportLookup(dir, imports...)
		if err != nil {
			return nil, nil, err
		}
	}
	info := newTypesInfo()
	conf := types.Config{Importer: newImporter(fset, exports)}
	pkg, err := conf.Check(asImportPath, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking fixture %s: %v", asImportPath, err)
	}
	return pkg, info, nil
}
