package analysis

import (
	"go/ast"
	"go/token"
)

// RunFixture type-checks already-parsed fixture files under asImportPath
// and runs az on the result, bypassing az.Filter (the synthetic import
// path stands in for package class) but applying rahtm:allow resolution
// exactly as the driver does, so fixtures exercise suppression and
// unused-allow reporting too. It is the entry point the analysistest
// harness builds on.
func RunFixture(dir string, fset *token.FileSet, files []*ast.File, asImportPath string, az *Analyzer) ([]Diagnostic, error) {
	pkg, info, err := CheckFiles(dir, fset, files, asImportPath)
	if err != nil {
		return nil, err
	}
	pass := &Pass{
		Analyzer:  az,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
	}
	if err := az.Run(pass); err != nil {
		return nil, err
	}
	allows, malformed := CollectAllows(fset, files)
	diags := ApplyAllows(pass.diags, allows, KnownNames())
	diags = append(diags, malformed...)
	sortDiagnostics(diags)
	return diags, nil
}
