package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ScopeProp guards the per-request metrics partition of DESIGN.md §13.
// A request's telemetry scope rides the context from rahtm-serve's worker
// through every solver layer; TestPerRequestMetricsPartition proves the
// request-local delta plus the background registry equals the process
// totals exactly. That exactness breaks silently whenever a ctx-carrying
// function forks off work that no longer sees the scope. Three shapes are
// reported inside any function that receives a context.Context:
//
//   - context.Background()/TODO() passed as a call argument: the callee
//     runs under a fresh root, so its counters (and its cancellation)
//     detach from the request;
//   - a routing.MinimalAdaptive composite literal that is not immediately
//     given the scope via .WithScope(...): the evaluator's stencil-cache
//     hits/misses land on the process-wide counters instead of the
//     request's registry, undercounting the request's delta;
//   - calls to unscoped compatibility wrappers that have a scope-threading
//     sibling (hiermap.Evaluate → hiermap.EvaluateWith): the wrapper
//     hard-codes an unscoped evaluator.
//
// Functions without a ctx parameter are exempt — they are the documented
// unscoped entry points (CLIs, tests, the non-Ctx compatibility shims).
// WithScope and ScopeFrom are nil-safe, so threading the scope in a path
// that never carries one costs nothing.
var ScopeProp = &Analyzer{
	Name:   "scopeprop",
	Doc:    "ctx-carrying functions must keep the telemetry scope attached: no root contexts, no unscoped evaluators",
	Filter: IsScopedPkg,
	Run:    runScopeProp,
}

// unscopedSiblings maps known scope-dropping wrappers to the sibling that
// threads a scope, keyed by (package-path suffix, function name).
var unscopedSiblings = map[[2]string]string{
	{"internal/hiermap", "Evaluate"}: "EvaluateWith",
}

func runScopeProp(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasCtxParam(pass, fd) {
				continue
			}
			checkScopeProp(pass, fd.Body)
		}
	}
	return nil
}

// hasCtxParam reports whether fd receives a context.Context (the vehicle
// the telemetry scope rides on — done channels carry no scope).
func hasCtxParam(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if t := pass.TypeOf(field.Type); t != nil && t.String() == "context.Context" {
			return true
		}
	}
	return false
}

func checkScopeProp(pass *Pass, body *ast.BlockStmt) {
	// First pass: collect the MinimalAdaptive literals that are scoped —
	// immediately the receiver of a .WithScope(...) call.
	scoped := map[*ast.CompositeLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "WithScope" {
			return true
		}
		if lit, ok := unwrapCompositeLit(sel.X); ok {
			scoped[lit] = true
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if isMinimalAdaptiveType(pass.TypeOf(n)) && !scoped[n] {
				pass.Reportf(n.Pos(), "unscoped routing.MinimalAdaptive in a ctx-carrying function loses the request's stencil-cache counters; chain .WithScope(telemetry.ScopeFrom(ctx))")
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if isRootCtxCall(pass, arg) {
					pass.Reportf(arg.Pos(), "root context passed while the caller's ctx (and its telemetry scope) is in hand; pass ctx through so the per-request metrics partition stays exact")
				}
			}
			if pkgPath, name, ok := calledPkgFunc(pass, n); ok {
				for key, sibling := range unscopedSiblings {
					if name == key[1] && strings.HasSuffix(pkgPath, key[0]) {
						pass.Reportf(n.Pos(), "%s hard-codes an unscoped evaluator; call %s with a scope-threaded routing.MinimalAdaptive instead", name, sibling)
					}
				}
			}
		}
		return true
	})
}

// unwrapCompositeLit strips parens and returns the composite literal under
// e, if any.
func unwrapCompositeLit(e ast.Expr) (*ast.CompositeLit, bool) {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.CompositeLit:
			return v, true
		default:
			return nil, false
		}
	}
}

func isMinimalAdaptiveType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "MinimalAdaptive" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/routing")
}

// isRootCtxCall reports whether e is a direct context.Background() or
// context.TODO() call.
func isRootCtxCall(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO")
}

// calledPkgFunc resolves a call to a package-level function, returning its
// package path and name.
func calledPkgFunc(pass *Pass, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, selOk := call.Fun.(*ast.SelectorExpr)
	if !selOk {
		return "", "", false
	}
	fn, fnOk := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !fnOk || fn.Pkg() == nil {
		return "", "", false
	}
	if sig, sigOk := fn.Type().(*types.Signature); !sigOk || sig.Recv() != nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}
