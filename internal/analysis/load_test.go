package analysis_test

import (
	"testing"

	"rahtm/internal/analysis"
)

// TestLoadSelf loads this very package through the go-list/export-data
// pipeline and sanity-checks the result is fully type-checked.
func TestLoadSelf(t *testing.T) {
	requireGo(t)
	pkgs, err := analysis.Load(".", ".")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.ImportPath != "rahtm/internal/analysis" {
		t.Errorf("import path %q", p.ImportPath)
	}
	if len(p.Files) == 0 || p.Types == nil || p.TypesInfo == nil {
		t.Fatal("package not fully loaded")
	}
	if len(p.TypesInfo.Uses) == 0 {
		t.Error("no use information recorded; type-checking silently incomplete")
	}
	if p.Types.Scope().Lookup("Analyzer") == nil {
		t.Error("Analyzer type not found in checked scope")
	}
}

// TestLoadBadPattern surfaces go-list failures as errors, not panics.
func TestLoadBadPattern(t *testing.T) {
	requireGo(t)
	if _, err := analysis.Load(".", "./no/such/dir/..."); err == nil {
		t.Fatal("expected error for bad pattern")
	}
}
