package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetRange flags map iteration whose effect can depend on iteration order
// inside the deterministic packages (graph, core, cluster, merge, hiermap,
// routing). Those packages promise bit-identical results across runs and
// across sequential/parallel schedules; Go randomizes map iteration order
// per run, and even a float64 `+=` over map values is order-dependent
// because float addition is not associative.
//
// A map range is accepted only in two shapes:
//
//   - collect-then-sort: the body only appends the key (or value) to a
//     slice, and a later statement in the same block sorts that slice
//     before it is used;
//   - order-insensitive accumulation: every statement is an integer
//     `+=`/`++`/`--`, a delete(...), or a continue, possibly under ifs —
//     effects that commute exactly.
//
// Anything else (float accumulation, writes through calls, sends,
// appends that are not subsequently sorted) is reported.
var DetRange = &Analyzer{
	Name:   "detrange",
	Doc:    "map iteration with order-dependent effects in a deterministic package",
	Filter: IsDeterministicPkg,
	Run:    runDetRange,
}

func runDetRange(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, st := range list {
				rs, ok := st.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := pass.TypeOf(rs.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				if collectThenSort(pass, rs, list[i+1:]) || orderInsensitive(pass, rs.Body.List) {
					continue
				}
				pass.Reportf(rs.Pos(), "map iteration with order-dependent effects; collect keys and sort them first (map order is randomized per run)")
			}
			return true
		})
	}
	return nil
}

// collectThenSort reports whether the range body only appends into local
// slices that a later statement in the enclosing block sorts.
func collectThenSort(pass *Pass, rs *ast.RangeStmt, rest []ast.Stmt) bool {
	targets := map[string]bool{}
	for _, st := range rs.Body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltinCall(pass, call, "append") {
			return false
		}
		targets[lhs.Name] = true
	}
	if len(targets) == 0 {
		return false
	}
	// Look for a subsequent sort.* / slices.* call mentioning a target.
	sorted := false
	for _, st := range rest {
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if obj, isPkg := pass.TypesInfo.Uses[pkgID].(*types.PkgName); !isPkg ||
				(obj.Imported().Path() != "sort" && obj.Imported().Path() != "slices") {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(a ast.Node) bool {
					if id, ok := a.(*ast.Ident); ok && targets[id.Name] {
						sorted = true
					}
					return true
				})
			}
			return true
		})
		if sorted {
			return true
		}
	}
	return false
}

// orderInsensitive reports whether every statement's effect commutes
// exactly: integer accumulation, deletes, continues, possibly under ifs.
func orderInsensitive(pass *Pass, stmts []ast.Stmt) bool {
	for _, st := range stmts {
		switch st := st.(type) {
		case *ast.IncDecStmt:
			if !isIntegerExpr(pass, st.X) {
				return false
			}
		case *ast.AssignStmt:
			if len(st.Lhs) != 1 {
				return false
			}
			if st.Tok != token.ADD_ASSIGN && st.Tok != token.OR_ASSIGN && st.Tok != token.AND_ASSIGN && st.Tok != token.XOR_ASSIGN {
				return false
			}
			if !isIntegerExpr(pass, st.Lhs[0]) {
				return false
			}
		case *ast.ExprStmt:
			call, ok := st.X.(*ast.CallExpr)
			if !ok || !isBuiltinCall(pass, call, "delete") {
				return false
			}
		case *ast.BranchStmt:
			if st.Tok != token.CONTINUE {
				return false
			}
		case *ast.EmptyStmt:
		case *ast.IfStmt:
			if !orderInsensitive(pass, st.Body.List) {
				return false
			}
			switch e := st.Else.(type) {
			case nil:
			case *ast.BlockStmt:
				if !orderInsensitive(pass, e.List) {
					return false
				}
			default:
				return false
			}
		default:
			return false
		}
	}
	return true
}

func isIntegerExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isBuiltinCall(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}
