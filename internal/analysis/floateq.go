package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// FloatEq flags == and != between floating-point values. Mapping quality
// (MCL, channel loads, LP objectives) is float64 everywhere; exact
// equality on those values is either a latent bug (values that differ in
// the last ulp compare unequal across solver schedules) or an undocumented
// exactness assumption. Comparisons are accepted when they are exact by
// construction:
//
//   - against a literal zero (sentinel for "unset/absent");
//   - against +-Inf via math.Inf or math.IsInf-style helpers;
//   - x != x / x == x (NaN probes);
//   - inside tolerance helpers (function names matching
//     almost/approx/near/toler/within), whose whole job is comparing.
//
// Everything else needs a tolerance helper or a rahtm:allow with the
// exactness argument spelled out.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "exact ==/!= on floating-point values outside tolerance helpers",
	Run:  runFloatEq,
}

var tolHelperRe = regexp.MustCompile(`(?i)almost|approx|near|toler|within`)

func runFloatEq(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if tolHelperRe.MatchString(fd.Name.Name) {
				continue
			}
			checkFloatEq(pass, fd.Body)
		}
	}
	return nil
}

func checkFloatEq(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if !isFloatExpr(pass, be.X) || !isFloatExpr(pass, be.Y) {
			return true
		}
		if isConstExpr(pass, be.X) && isConstExpr(pass, be.Y) {
			return true // folded at compile time
		}
		if isZeroLit(pass, be.X) || isZeroLit(pass, be.Y) {
			return true
		}
		if isInfCall(pass, be.X) || isInfCall(pass, be.Y) {
			return true
		}
		if types.ExprString(be.X) == types.ExprString(be.Y) {
			return true // NaN probe
		}
		pass.Reportf(be.OpPos, "exact %s on float values; compare with a tolerance helper (math.Abs(a-b) <= tol) or justify with rahtm:allow", be.Op)
		return true
	})
}

func isFloatExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// isZeroLit reports whether e is a literal zero (0, 0.0, -0.0, ...).
func isZeroLit(pass *Pass, e ast.Expr) bool {
	if u, ok := e.(*ast.UnaryExpr); ok && (u.Op == token.SUB || u.Op == token.ADD) {
		e = u.X
	}
	if _, ok := e.(*ast.BasicLit); !ok {
		return false
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}

// isInfCall reports whether e is math.Inf(...), an exact value.
func isInfCall(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "math" && fn.Name() == "Inf"
}
