package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineJoin enforces the structured-concurrency discipline of the
// concurrent packages (serve, milp, core, merge): every goroutine must be
// stoppable and awaited. A daemon worker or speculative solver that is
// neither cancellable (no context/done channel in sight) nor joined (no
// WaitGroup tracking) can outlive its request — or the whole Server —
// still holding solver state, which is exactly the leak class the
// Shutdown-drain and TestParallelMatchesSequential contracts rule out.
//
// A `go` statement passes when any of the following holds:
//
//   - the spawned function (literal body or call arguments) mentions a
//     cancellation signal — a context.Context value, an empty-struct
//     channel, or an identifier matching the ctx/done/cancel/stop naming
//     convention;
//   - the spawned literal's body calls sync.WaitGroup Done or Wait (it
//     participates in a join);
//   - the enclosing function calls sync.WaitGroup.Add before the `go`
//     statement (the spawner registered the goroutine for a join; this is
//     how `go s.worker()`-style method spawns are recognized without
//     inter-procedural analysis).
//
// Anything else is reported. The check is intra-procedural: a helper that
// spawns on behalf of a caller holding the WaitGroup must carry its own
// allow directive with the justification.
var GoroutineJoin = &Analyzer{
	Name:   "goroutinejoin",
	Doc:    "go statements whose goroutine is neither cancellable (ctx/done) nor joined (WaitGroup)",
	Filter: IsConcurrentPkg,
	Run:    runGoroutineJoin,
}

func runGoroutineJoin(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoStmts(pass, fd.Body)
		}
	}
	return nil
}

func checkGoStmts(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if mentionsCancel(pass, gs.Call) {
			return true
		}
		if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok && callsWaitGroup(pass, lit.Body) {
			return true
		}
		if waitGroupAddBefore(pass, body, gs.Pos()) {
			return true
		}
		pass.Reportf(gs.Pos(), "goroutine is neither cancellable nor joined: pass a ctx/done channel, or track it with a sync.WaitGroup (Add before go, Done inside)")
		return true
	})
}

// callsWaitGroup reports whether body calls a sync.WaitGroup method
// (Done/Wait/Add) — evidence the goroutine participates in a join.
func callsWaitGroup(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if isWaitGroupMethod(pass, sel) {
			found = true
			return false
		}
		return true
	})
	return found
}

// waitGroupAddBefore reports whether a sync.WaitGroup.Add call appears in
// body lexically before pos — the spawner-side half of a join.
func waitGroupAddBefore(pass *Pass, body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if isWaitGroupMethod(pass, sel) && sel.Sel.Name == "Add" {
			found = true
			return false
		}
		return true
	})
	return found
}

func isWaitGroupMethod(pass *Pass, sel *ast.SelectorExpr) bool {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	recv := receiverNamed(fn)
	return recv != nil && recv.Obj().Pkg() != nil &&
		recv.Obj().Pkg().Path() == "sync" && recv.Obj().Name() == "WaitGroup"
}
