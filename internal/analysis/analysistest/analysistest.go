// Package analysistest runs a rahtm-vet analyzer over a fixture directory
// and checks its diagnostics against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// only. Fixtures live under testdata/ (invisible to `go list ./...`, so
// their deliberate violations never leak into builds or the real vet run)
// and are type-checked under a caller-chosen import path, which is how a
// fixture opts into a package class (e.g. "rahtm/internal/graph" to be a
// deterministic package for detrange).
//
// Expectation syntax, one or more per line, matched against the rendered
// "analyzer: message" string:
//
//	m := rand.Intn(4) // want `globalrand: .*process-wide source`
//
// Every diagnostic must be matched by a want on its line and every want
// must match at least one diagnostic; rahtm:allow directives are applied
// exactly as the driver applies them, so fixtures can also assert
// suppression and unused-allow reporting.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"rahtm/internal/analysis"
)

// wantRe captures the expectation list trailing a `// want` marker.
var wantRe = regexp.MustCompile(`//\s*want\s+(.+)$`)

// Run analyzes the fixture directory dir under import path asImportPath
// with az, applies rahtm:allow suppression, and compares diagnostics
// against the fixture's `// want` comments.
func Run(t *testing.T, dir, asImportPath string, az *analysis.Analyzer) {
	t.Helper()
	diags, fset, files := analyze(t, dir, asImportPath, az)
	wants := collectWants(t, fset, files)

	matched := make([]bool, len(wants))
	for _, d := range diags {
		rendered := d.Analyzer + ": " + d.Message
		ok := false
		for i, w := range wants {
			if w.file == filepath.Base(d.Pos.Filename) && w.line == d.Pos.Line && w.re.MatchString(rendered) {
				matched[i] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, rendered)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// analyze loads and checks the fixture, runs az (bypassing its Filter —
// the fixture's import path stands in for scope), and resolves allows.
func analyze(t *testing.T, dir, asImportPath string, az *analysis.Analyzer) ([]analysis.Diagnostic, *token.FileSet, []*ast.File) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	diags, err := analysis.RunFixture(dir, fset, files, asImportPath, az)
	if err != nil {
		t.Fatal(err)
	}
	return diags, fset, files
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants parses every `// want` expectation in the fixture files.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitPatterns(t, pos, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, want{file: filepath.Base(pos.Filename), line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitPatterns parses a want payload: a space-separated sequence of
// quoted (double or backquoted) regexps.
func splitPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var pats []string
	s = strings.TrimSpace(s)
	for len(s) > 0 {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern: %s", pos, s)
			}
			pats = append(pats, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			var q string
			var err error
			// Find the closing quote by expanding prefixes until Unquote accepts.
			for i := 1; i < len(s); i++ {
				if s[i] == '"' && s[i-1] != '\\' {
					q, err = strconv.Unquote(s[:i+1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, s[:i+1], err)
					}
					s = strings.TrimSpace(s[i+1:])
					break
				}
				if i == len(s)-1 {
					t.Fatalf("%s: unterminated want pattern: %s", pos, s)
				}
			}
			pats = append(pats, q)
		default:
			t.Fatalf("%s: want patterns must be quoted or backquoted, got: %s", pos, s)
		}
	}
	if len(pats) == 0 {
		t.Fatalf("%s: empty want", pos)
	}
	return pats
}
