package analysis_test

import (
	"os/exec"
	"testing"

	"rahtm/internal/analysis"
	"rahtm/internal/analysis/analysistest"
)

// requireGo skips when the go command is unavailable (the loader shells
// out to `go list` for package enumeration and export data).
func requireGo(t *testing.T) {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go command not available:", err)
	}
}

func TestDetRange(t *testing.T) {
	requireGo(t)
	analysistest.Run(t, "testdata/detrange", "rahtm/internal/graph", analysis.DetRange)
}

func TestGlobalRand(t *testing.T) {
	requireGo(t)
	analysistest.Run(t, "testdata/globalrand", "rahtm/internal/hiermap", analysis.GlobalRand)
}

func TestCtxPoll(t *testing.T) {
	requireGo(t)
	analysistest.Run(t, "testdata/ctxpoll", "rahtm/internal/lp", analysis.CtxPoll)
}

func TestFloatEq(t *testing.T) {
	requireGo(t)
	analysistest.Run(t, "testdata/floateq", "rahtm/internal/routing", analysis.FloatEq)
}

func TestTelemetryBatch(t *testing.T) {
	requireGo(t)
	analysistest.Run(t, "testdata/telemetrybatch", "rahtm/internal/routing", analysis.TelemetryBatch)
}

// TestAllowDirective proves the suppression contract: a directive silences
// exactly the named analyzer on its line, and unused, misnamed, and
// malformed directives are themselves reported.
func TestAllowDirective(t *testing.T) {
	requireGo(t)
	analysistest.Run(t, "testdata/allow", "rahtm/internal/hiermap", analysis.GlobalRand)
}

// TestAnalyzerScopes pins each analyzer's package filter: the invariants
// are scoped to the package classes that promised them.
func TestAnalyzerScopes(t *testing.T) {
	cases := []struct {
		az   *analysis.Analyzer
		path string
		want bool
	}{
		{analysis.DetRange, "rahtm/internal/graph", true},
		{analysis.DetRange, "rahtm/internal/hiermap", true},
		{analysis.DetRange, "rahtm/internal/telemetry", false},
		{analysis.CtxPoll, "rahtm/internal/lp", true},
		{analysis.CtxPoll, "rahtm/internal/packetsim", true},
		{analysis.CtxPoll, "rahtm", false},
		{analysis.TelemetryBatch, "rahtm/internal/routing", true},
		{analysis.TelemetryBatch, "rahtm/internal/mapfile", false},
	}
	for _, c := range cases {
		if got := c.az.Filter(c.path); got != c.want {
			t.Errorf("%s.Filter(%q) = %v, want %v", c.az.Name, c.path, got, c.want)
		}
	}
	if analysis.GlobalRand.Filter != nil {
		t.Error("globalrand should apply to every package")
	}
	if analysis.FloatEq.Filter != nil {
		t.Error("floateq should apply to every package")
	}
}

func TestKnownNames(t *testing.T) {
	known := analysis.KnownNames()
	for _, name := range []string{"detrange", "globalrand", "ctxpoll", "floateq", "telemetrybatch"} {
		if !known[name] {
			t.Errorf("analyzer %q missing from suite", name)
		}
	}
	if len(known) != 5 {
		t.Errorf("suite has %d analyzers, want 5", len(known))
	}
}
