package analysis_test

import (
	"os/exec"
	"testing"

	"rahtm/internal/analysis"
	"rahtm/internal/analysis/analysistest"
)

// requireGo skips when the go command is unavailable (the loader shells
// out to `go list` for package enumeration and export data).
func requireGo(t *testing.T) {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go command not available:", err)
	}
}

func TestDetRange(t *testing.T) {
	requireGo(t)
	analysistest.Run(t, "testdata/detrange", "rahtm/internal/graph", analysis.DetRange)
}

func TestGlobalRand(t *testing.T) {
	requireGo(t)
	analysistest.Run(t, "testdata/globalrand", "rahtm/internal/hiermap", analysis.GlobalRand)
}

func TestCtxPoll(t *testing.T) {
	requireGo(t)
	analysistest.Run(t, "testdata/ctxpoll", "rahtm/internal/lp", analysis.CtxPoll)
}

func TestFloatEq(t *testing.T) {
	requireGo(t)
	analysistest.Run(t, "testdata/floateq", "rahtm/internal/routing", analysis.FloatEq)
}

func TestTelemetryBatch(t *testing.T) {
	requireGo(t)
	analysistest.Run(t, "testdata/telemetrybatch", "rahtm/internal/routing", analysis.TelemetryBatch)
}

func TestCSRAlias(t *testing.T) {
	requireGo(t)
	analysistest.Run(t, "testdata/csralias", "rahtm/internal/merge", analysis.CSRAlias)
}

func TestGoroutineJoin(t *testing.T) {
	requireGo(t)
	analysistest.Run(t, "testdata/goroutinejoin", "rahtm/internal/serve", analysis.GoroutineJoin)
}

func TestLockDiscipline(t *testing.T) {
	requireGo(t)
	analysistest.Run(t, "testdata/lockdiscipline", "rahtm/internal/serve", analysis.LockDiscipline)
}

func TestScopeProp(t *testing.T) {
	requireGo(t)
	analysistest.Run(t, "testdata/scopeprop", "rahtm/internal/core", analysis.ScopeProp)
}

// TestAllowDirective proves the suppression contract: a directive silences
// exactly the named analyzer on its line, and unused, misnamed, and
// malformed directives are themselves reported.
func TestAllowDirective(t *testing.T) {
	requireGo(t)
	analysistest.Run(t, "testdata/allow", "rahtm/internal/hiermap", analysis.GlobalRand)
}

// TestNoStaleAllows audits every rahtm:allow directive in the module: each
// must be well-formed, name a real analyzer, and suppress at least one live
// diagnostic — and each suppression must carry its justification through to
// the suppressed record. A stale allow (the code it excused was fixed or
// moved) fails here even before the repo-clean gate does.
func TestNoStaleAllows(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	requireGo(t)
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	active, suppressed, err := analysis.RunPackagesAll(pkgs, analysis.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range active {
		if d.Analyzer == analysis.AllowName {
			t.Errorf("stale or malformed rahtm:allow directive: %s", d.String())
		}
	}
	if len(suppressed) == 0 {
		t.Error("no suppressed diagnostics found; the known-intentional allows (e.g. the merge row-cache aliasing) should appear here")
	}
	for _, d := range suppressed {
		if d.AllowReason == "" {
			t.Errorf("suppressed diagnostic lost its justification: %s", d.String())
		}
	}
}

// TestAnalyzerScopes pins each analyzer's package filter: the invariants
// are scoped to the package classes that promised them.
func TestAnalyzerScopes(t *testing.T) {
	cases := []struct {
		az   *analysis.Analyzer
		path string
		want bool
	}{
		{analysis.DetRange, "rahtm/internal/graph", true},
		{analysis.DetRange, "rahtm/internal/hiermap", true},
		{analysis.DetRange, "rahtm/internal/telemetry", false},
		{analysis.CtxPoll, "rahtm/internal/lp", true},
		{analysis.CtxPoll, "rahtm/internal/packetsim", true},
		{analysis.CtxPoll, "rahtm", false},
		{analysis.TelemetryBatch, "rahtm/internal/routing", true},
		{analysis.TelemetryBatch, "rahtm/internal/mapfile", false},
		{analysis.CSRAlias, "rahtm/internal/merge", true},
		{analysis.CSRAlias, "rahtm/internal/graph", true},
		{analysis.CSRAlias, "rahtm", false},
		{analysis.GoroutineJoin, "rahtm/internal/serve", true},
		{analysis.GoroutineJoin, "rahtm/internal/milp", true},
		{analysis.GoroutineJoin, "rahtm/internal/routing", false},
		{analysis.LockDiscipline, "rahtm/internal/telemetry", true},
		{analysis.LockDiscipline, "rahtm", false},
		{analysis.ScopeProp, "rahtm/internal/core", true},
		{analysis.ScopeProp, "rahtm", true},
		{analysis.ScopeProp, "rahtm/cmd/rahtm-serve", false},
	}
	for _, c := range cases {
		if got := c.az.Filter(c.path); got != c.want {
			t.Errorf("%s.Filter(%q) = %v, want %v", c.az.Name, c.path, got, c.want)
		}
	}
	if analysis.GlobalRand.Filter != nil {
		t.Error("globalrand should apply to every package")
	}
	if analysis.FloatEq.Filter != nil {
		t.Error("floateq should apply to every package")
	}
}

func TestKnownNames(t *testing.T) {
	known := analysis.KnownNames()
	for _, name := range []string{
		"detrange", "globalrand", "ctxpoll", "floateq", "telemetrybatch",
		"csralias", "goroutinejoin", "lockdiscipline", "scopeprop",
	} {
		if !known[name] {
			t.Errorf("analyzer %q missing from suite", name)
		}
	}
	if len(known) != 9 {
		t.Errorf("suite has %d analyzers, want 9", len(known))
	}
}
