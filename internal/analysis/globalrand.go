package analysis

import (
	"go/ast"
	"go/types"
)

// GlobalRand flags calls to the package-level functions of math/rand (and
// math/rand/v2): Intn, Float64, Perm, Shuffle, Seed, and friends. The
// process-wide source is seeded randomly at startup since Go 1.20, so any
// library code drawing from it produces run-to-run different mappings —
// breaking the reproducible, seeded execution RAHTM's comparisons rely
// on. Constructors (New, NewSource, ...) are fine: the required pattern
// is a seeded *rand.Rand threaded through the relevant Config.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "package-level math/rand call; thread a seeded *rand.Rand instead",
	Run:  runGlobalRand,
}

// randConstructors are the non-drawing entry points that build seeded
// generators; calling them is the approved pattern, not a violation.
var randConstructors = set("New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8")

func runGlobalRand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods on *rand.Rand are the fix, not the bug
			}
			if randConstructors[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(), "global math/rand.%s draws from the process-wide source; use a seeded *rand.Rand from the config", fn.Name())
			return true
		})
	}
	return nil
}
