package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// CtxPoll enforces the PR 1 cancellation contract in two parts.
//
// Everywhere under internal/, it flags context.Background() and
// context.TODO(): library code must accept the caller's context. The
// deliberate pattern — a non-Ctx compatibility wrapper delegating to its
// ...Ctx sibling — is suppressed explicitly with
// //rahtm:allow(ctxpoll): so each root context is a documented decision.
//
// In the solver packages (lp, milp, hiermap, merge), any function that
// receives a cancellation signal (a context.Context or a done/cancel
// chan struct{}) must consult it from every solve loop — a `for` whose
// trip count is not fixed by the input data: infinite (`for {}`),
// while-style (`for converging`), or bounded by an iteration budget
// (maxIters, sweeps, restarts). Such a loop with real work in its body
// has to mention the context, a done channel, or a poll/deadline helper,
// so cancellation is observed within bounded iterations. Data-bounded
// setup loops (`for i := 0; i < n; i++`, `range xs`) finish on their own
// and are not required to poll.
var CtxPoll = &Analyzer{
	Name:   "ctxpoll",
	Doc:    "solver loops must poll ctx cancellation; no context.Background in internal code",
	Filter: IsInternalPkg,
	Run:    runCtxPoll,
}

// cancelNameRe matches identifiers conventionally tied to cancellation:
// ctx, done channels, checkDeadline-style helpers, stop flags.
var cancelNameRe = regexp.MustCompile(`(?i)ctx|done|cancel|deadline|abort|stop`)

// budgetNameRe matches loop bounds that are iteration budgets — tuning
// knobs rather than data sizes — whose loops must therefore poll.
var budgetNameRe = regexp.MustCompile(`(?i)iter|sweep|round|restart|epoch|budget|trial|attempt|retries`)

func runCtxPoll(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
					fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
					(fn.Name() == "Background" || fn.Name() == "TODO") {
					pass.Reportf(sel.Pos(), "context.%s() in internal code: accept the caller's ctx (compatibility wrappers need a rahtm:allow with justification)", fn.Name())
				}
			}
			return true
		})
	}
	if !IsSolverPkg(pass.PkgPath()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasCancelParam(pass, fd) {
				continue
			}
			checkLoopsPoll(pass, fd.Body)
		}
	}
	return nil
}

// hasCancelParam reports whether fd receives a cancellation signal: a
// context.Context or a chan struct{} parameter.
func hasCancelParam(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if isCancelType(pass.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func isCancelType(t types.Type) bool {
	if t == nil {
		return false
	}
	if t.String() == "context.Context" {
		return true
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// checkLoopsPoll reports every solve loop under body whose own body never
// consults a cancellation signal.
func checkLoopsPoll(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		fs, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		if needsPoll(fs) && heavyLoop(pass, fs.Body) && !mentionsCancel(pass, fs.Body) {
			pass.Reportf(fs.Pos(), "solve loop never polls cancellation; check ctx.Err()/select on the done channel within bounded iterations")
		}
		return true
	})
}

// needsPoll reports whether the loop's trip count is a tuning knob rather
// than a data size: infinite, while-style, or budget-bounded.
func needsPoll(fs *ast.ForStmt) bool {
	if fs.Cond == nil {
		return true // for {}
	}
	if fs.Init == nil && fs.Post == nil {
		return true // for cond {} — convergence loop
	}
	return budgetNameRe.MatchString(types.ExprString(fs.Cond))
}

// heavyLoop reports whether the body performs real calls or nested loops
// — work that can accumulate unbounded latency between polls.
func heavyLoop(pass *Pass, body *ast.BlockStmt) bool {
	heavy := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			heavy = true
		case *ast.CallExpr:
			if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			if id, ok := n.Fun.(*ast.Ident); ok {
				if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); builtin {
					return true
				}
			}
			heavy = true
		}
		return !heavy
	})
	return heavy
}

// mentionsCancel reports whether the subtree references anything
// cancellation-shaped: a context value, an empty-struct channel, or an
// identifier matching the ctx/done/cancel/deadline naming convention.
func mentionsCancel(pass *Pass, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if cancelNameRe.MatchString(id.Name) {
			found = true
			return false
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && isCancelType(obj.Type()) {
			found = true
			return false
		}
		return true
	})
	return found
}
