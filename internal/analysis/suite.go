package analysis

// Analyzers returns the full rahtm-vet suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{CtxPoll, DetRange, FloatEq, GlobalRand, TelemetryBatch}
}

// KnownNames returns the set of analyzer names a rahtm:allow directive may
// legally reference.
func KnownNames() map[string]bool {
	known := map[string]bool{}
	for _, az := range Analyzers() {
		known[az.Name] = true
	}
	return known
}

// RunPackages applies the given analyzers to every package, honoring each
// analyzer's Filter, then resolves rahtm:allow directives per package
// (suppressing matched diagnostics, reporting unused or unknown allows).
// The result is sorted by position.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := KnownNames()
	var all []Diagnostic
	for _, pkg := range pkgs {
		allows, malformed := CollectAllows(pkg.Fset, pkg.Files)
		var diags []Diagnostic
		for _, az := range analyzers {
			if az.Filter != nil && !az.Filter(pkg.ImportPath) {
				continue
			}
			ds, err := runOne(az, pkg)
			if err != nil {
				return nil, err
			}
			diags = append(diags, ds...)
		}
		all = append(all, ApplyAllows(diags, allows, known)...)
		all = append(all, malformed...)
	}
	sortDiagnostics(all)
	return all, nil
}
