package analysis

// Analyzers returns the full rahtm-vet suite in reporting order: the five
// v1 invariant checks (determinism, cancellation, float hygiene, telemetry
// budget) plus the four v2 aliasing/concurrency/scope analyzers.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		CSRAlias, CtxPoll, DetRange, FloatEq, GlobalRand,
		GoroutineJoin, LockDiscipline, ScopeProp, TelemetryBatch,
	}
}

// KnownNames returns the set of analyzer names a rahtm:allow directive may
// legally reference.
func KnownNames() map[string]bool {
	known := map[string]bool{}
	for _, az := range Analyzers() {
		known[az.Name] = true
	}
	return known
}

// RunPackages applies the given analyzers to every package, honoring each
// analyzer's Filter, then resolves rahtm:allow directives per package
// (suppressing matched diagnostics, reporting unused or unknown allows).
// The result is sorted by position.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	active, _, err := RunPackagesAll(pkgs, analyzers)
	return active, err
}

// RunPackagesAll is RunPackages, but additionally returns the diagnostics
// that rahtm:allow directives suppressed — each stamped with the
// directive's justification — so audits and the -json output can show the
// full picture. Both slices are sorted by position.
func RunPackagesAll(pkgs []*Package, analyzers []*Analyzer) (active, suppressed []Diagnostic, err error) {
	known := KnownNames()
	for _, pkg := range pkgs {
		allows, malformed := CollectAllows(pkg.Fset, pkg.Files)
		var diags []Diagnostic
		for _, az := range analyzers {
			if az.Filter != nil && !az.Filter(pkg.ImportPath) {
				continue
			}
			ds, err := runOne(az, pkg)
			if err != nil {
				return nil, nil, err
			}
			diags = append(diags, ds...)
		}
		kept, quiet := applyAllows(diags, allows, known)
		active = append(active, kept...)
		active = append(active, malformed...)
		suppressed = append(suppressed, quiet...)
	}
	sortDiagnostics(active)
	sortDiagnostics(suppressed)
	return active, suppressed, nil
}
