package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// AllowName is the pseudo-analyzer under which directive hygiene problems
// (unused, unknown-analyzer, or malformed //rahtm:allow comments) are
// reported. It is not itself suppressible.
const AllowName = "allow"

// An Allow is one parsed //rahtm:allow(<analyzer>): <reason> directive. It
// suppresses diagnostics of the named analyzer on its own line (trailing
// directive) or on the line immediately below (directive on its own line).
type Allow struct {
	Analyzer string
	Reason   string
	Pos      token.Position
	used     bool
}

var (
	// allowRe matches a well-formed directive; group 1 is the analyzer
	// name, group 2 the justification.
	allowRe = regexp.MustCompile(`^//rahtm:allow\(([A-Za-z0-9_-]+)\):\s*(\S.*)$`)
	// allowLooseRe matches anything that looks like an attempted
	// directive, so malformed variants are reported rather than ignored.
	allowLooseRe = regexp.MustCompile(`^//\s*rahtm:allow`)
)

// CollectAllows parses every //rahtm:allow directive in files. Malformed
// directives (wrong shape, missing reason) are returned as diagnostics
// immediately.
func CollectAllows(fset *token.FileSet, files []*ast.File) ([]*Allow, []Diagnostic) {
	var allows []*Allow
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimRight(c.Text, " \t")
				if !allowLooseRe.MatchString(text) {
					continue
				}
				pos := fset.Position(c.Pos())
				m := allowRe.FindStringSubmatch(text)
				if m == nil {
					bad = append(bad, Diagnostic{
						Analyzer: AllowName,
						Pos:      pos,
						Message:  "malformed rahtm:allow directive; want //rahtm:allow(<analyzer>): <reason>",
					})
					continue
				}
				allows = append(allows, &Allow{Analyzer: m[1], Reason: m[2], Pos: pos})
			}
		}
	}
	return allows, bad
}

// ApplyAllows filters diags through the given directives and appends
// directive-hygiene diagnostics: an allow naming an analyzer outside known
// is reported as unknown, and an allow that suppressed nothing is reported
// as unused (both under the AllowName pseudo-analyzer). The returned slice
// is sorted by position.
func ApplyAllows(diags []Diagnostic, allows []*Allow, known map[string]bool) []Diagnostic {
	out, _ := applyAllows(diags, allows, known)
	return out
}

// applyAllows is ApplyAllows returning the suppressed diagnostics too,
// each stamped with the justification of the directive that silenced it.
func applyAllows(diags []Diagnostic, allows []*Allow, known map[string]bool) (out, quiet []Diagnostic) {
	for _, d := range diags {
		suppressed := false
		for _, a := range allows {
			if a.Analyzer != d.Analyzer || a.Pos.Filename != d.Pos.Filename {
				continue
			}
			if a.Pos.Line == d.Pos.Line || a.Pos.Line+1 == d.Pos.Line {
				a.used = true
				suppressed = true
				d.AllowReason = a.Reason
			}
		}
		if suppressed {
			quiet = append(quiet, d)
		} else {
			out = append(out, d)
		}
	}
	for _, a := range allows {
		switch {
		case !known[a.Analyzer]:
			out = append(out, Diagnostic{
				Analyzer: AllowName,
				Pos:      a.Pos,
				Message:  "rahtm:allow names unknown analyzer \"" + a.Analyzer + "\"",
			})
		case !a.used:
			out = append(out, Diagnostic{
				Analyzer: AllowName,
				Pos:      a.Pos,
				Message:  "unused rahtm:allow(" + a.Analyzer + ") directive: nothing to suppress here",
			})
		}
	}
	sortDiagnostics(out)
	return out, quiet
}
