// Package analysis is rahtm-vet: a custom static-analysis suite enforcing
// the invariants this codebase guarantees but no stock tool checks —
// bit-identical deterministic execution (no global rand, no observable map
// iteration order), context cancellation polling in solver loops, exact
// float comparison hygiene, and the telemetry hot-loop batching budget.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic) but is built entirely on the standard
// library: packages are enumerated with `go list -json`, parsed with
// go/parser, and type-checked with go/types against gc export data
// obtained from `go list -export` (see load.go). x/tools is deliberately
// not a dependency — the suite must build offline from a bare toolchain.
//
// Diagnostics can be suppressed, one line at a time, with a directive
// comment naming the analyzer and a mandatory justification:
//
//	//rahtm:allow(detrange): single write per key, values order-insensitive
//
// An allow that suppresses nothing, names an unknown analyzer, or omits
// the reason is itself reported (see allow.go), so stale suppressions rot
// loudly instead of silently.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant check. Run inspects a single
// type-checked package via the Pass and reports findings with
// Pass.Reportf. Filter, when non-nil, restricts which packages the driver
// hands to Run; the analysistest harness bypasses Filter so fixtures can
// impersonate any package via their configured import path.
type Analyzer struct {
	Name   string
	Doc    string
	Filter func(pkgPath string) bool
	Run    func(*Pass) error
}

// A Pass is one (analyzer, package) unit of work, carrying the
// type-checked syntax the analyzer inspects.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// PkgPath returns the import path the package was checked under.
func (p *Pass) PkgPath() string { return p.Pkg.Path() }

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.TypesInfo.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// A Diagnostic is one finding, positioned for editor navigation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// AllowReason carries the justification of the rahtm:allow directive
	// that suppressed this diagnostic; empty for active findings.
	AllowReason string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// JSONDiagnostic is the wire form -json mode emits, one object per line.
// Allow is "none" for an active finding and "suppressed" (with the
// directive's reason) for one silenced by a rahtm:allow.
type JSONDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Allow    string `json:"allow"`
	Reason   string `json:"reason,omitempty"`
}

// JSON renders d for the machine-readable output stream.
func (d Diagnostic) JSON(suppressed bool) JSONDiagnostic {
	j := JSONDiagnostic{
		Analyzer: d.Analyzer,
		File:     d.Pos.Filename,
		Line:     d.Pos.Line,
		Col:      d.Pos.Column,
		Message:  d.Message,
		Allow:    "none",
	}
	if suppressed {
		j.Allow = "suppressed"
		j.Reason = d.AllowReason
	}
	return j
}

// sortDiagnostics orders diagnostics by file, line, column, analyzer.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// runOne applies one analyzer to one loaded package and returns its raw
// (unsuppressed) diagnostics.
func runOne(az *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  az,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
	}
	if err := az.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", az.Name, pkg.ImportPath, err)
	}
	return pass.diags, nil
}
