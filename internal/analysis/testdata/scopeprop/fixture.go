// Fixture for the scopeprop analyzer: a ctx-carrying function must keep
// the request's telemetry scope attached — no root contexts handed to
// callees, no unscoped evaluators, no scope-dropping compatibility
// wrappers. Checked under the synthetic import path rahtm/internal/core.
package fixture

import (
	"context"

	"rahtm/internal/graph"
	"rahtm/internal/hiermap"
	"rahtm/internal/routing"
	"rahtm/internal/telemetry"
	"rahtm/internal/topology"
)

func helper(ctx context.Context) {}

// badRootArg detaches the callee from the request's ctx and scope.
func badRootArg(ctx context.Context) {
	helper(context.Background()) // want `scopeprop: root context passed while the caller's ctx`
	helper(context.TODO())       // want `scopeprop: root context passed while the caller's ctx`
}

// badUnscopedEvaluator builds an evaluator that bills its stencil-cache
// traffic to the process-wide counters instead of the request's registry.
func badUnscopedEvaluator(ctx context.Context, loads []float64) routing.MinimalAdaptive {
	alg := routing.MinimalAdaptive{} // want `scopeprop: unscoped routing\.MinimalAdaptive in a ctx-carrying function`
	return alg
}

// badCompatWrapper calls the scope-dropping sibling of EvaluateWith.
func badCompatWrapper(ctx context.Context, g *graph.Comm, shape []int, m topology.Mapping) float64 {
	return hiermap.Evaluate(g, shape, true, m) // want `scopeprop: Evaluate hard-codes an unscoped evaluator; call EvaluateWith`
}

// goodScoped is the clean twin: the scope rides ctx into the evaluator and
// the scope-threading sibling carries it to the solve.
func goodScoped(ctx context.Context, g *graph.Comm, shape []int, m topology.Mapping) float64 {
	alg := routing.MinimalAdaptive{}.WithScope(telemetry.ScopeFrom(ctx))
	return hiermap.EvaluateWith(g, shape, true, m, alg)
}

// goodCtxThreaded forwards the caller's ctx, not a fresh root.
func goodCtxThreaded(ctx context.Context) {
	helper(ctx)
}

// goodNoCtx has no ctx parameter: it is a documented unscoped entry point
// (CLI, test, non-Ctx compatibility shim) and is exempt.
func goodNoCtx(g *graph.Comm, shape []int, m topology.Mapping) float64 {
	alg := routing.MinimalAdaptive{}
	_ = alg
	return hiermap.Evaluate(g, shape, true, m)
}

// allowedRoot shows a justified suppression: no diagnostic expected.
func allowedRoot(ctx context.Context) {
	//rahtm:allow(scopeprop): fixture exercises suppression on the next line
	helper(context.Background())
}
