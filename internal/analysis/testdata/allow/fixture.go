// Fixture for the rahtm:allow directive itself, run under the globalrand
// analyzer: a well-placed allow silences exactly the named analyzer on its
// line; unused, misnamed, and malformed allows are themselves reported.
package fixture

import "math/rand"

// suppressed: the directive names the analyzer that fires here, so no
// globalrand diagnostic is expected.
func suppressed(n int) int {
	//rahtm:allow(globalrand): deliberate draw from the global source in a fixture
	return rand.Intn(n)
}

// trailing directives on the offending line itself also suppress.
func suppressedTrailing(n int) int {
	return rand.Intn(n) //rahtm:allow(globalrand): deliberate draw from the global source in a fixture
}

// wrongName: the allow names a different (known) analyzer, so the
// globalrand diagnostic survives and the floateq allow is unused.
func wrongName(n int) int {
	//rahtm:allow(floateq): names the wrong analyzer on purpose // want `allow: unused rahtm:allow\(floateq\)`
	return rand.Intn(n) // want `globalrand: global math/rand.Intn`
}

// An allow with nothing to suppress is reported as unused.
//
//rahtm:allow(globalrand): nothing on the next line violates // want `allow: unused rahtm:allow\(globalrand\)`
func clean() {}

// An allow naming an analyzer that does not exist is reported.
//
//rahtm:allow(nosuchanalyzer): bogus name // want `allow: rahtm:allow names unknown analyzer "nosuchanalyzer"`
func cleanToo() {}

// A directive without the mandatory reason is malformed.
//
//rahtm:allow(globalrand) // want `allow: malformed rahtm:allow directive`
func cleanThree() {}
