// Fixture for the globalrand analyzer: package-level math/rand calls draw
// from the process-wide source, which Go seeds randomly at startup.
package fixture

import "math/rand"

// bad draws from the global source.
func bad(n int) int {
	return rand.Intn(n) // want `globalrand: global math/rand.Intn`
}

// badShuffle permutes through the global source.
func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `globalrand: global math/rand.Shuffle`
}

// badFloat draws a float from the global source.
func badFloat() float64 {
	return rand.Float64() // want `globalrand: global math/rand.Float64`
}

// good is the approved pattern: a seeded generator from the config.
func good(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// allowed shows a justified suppression: no diagnostic expected.
func allowed(n int) int {
	//rahtm:allow(globalrand): fixture exercises suppression on the next line
	return rand.Intn(n)
}
