// Fixture for the telemetrybatch analyzer: per-iteration shared-counter
// updates in hot-package loops bust the 2% telemetry budget. Checked under
// the synthetic import path rahtm/internal/routing.
package fixture

import "rahtm/internal/telemetry"

var ctr = telemetry.Default.Counter("fixture.events")

// bad pays a striped-counter atomic every iteration.
func bad(items []int) {
	for range items {
		ctr.Inc() // want `telemetrybatch: telemetry\.Counter\.Inc inside a hot loop`
	}
}

// badLookup pays a registry lock AND a counter atomic every iteration.
func badLookup(items []int) {
	for range items {
		telemetry.Default.Counter("fixture.events").Add(1) // want `telemetrybatch: telemetry\.Registry\.Counter lookup inside a loop` `telemetrybatch: telemetry\.Counter\.Add inside a hot loop`
	}
}

// good batches into a local and flushes once after the loop.
func good(items []int) {
	n := int64(0)
	for range items {
		n++
	}
	ctr.Add(n)
}

// goodLocal claims an uncontended handle outside the loop — the approved
// per-item firing pattern.
func goodLocal(items []int) {
	local := ctr.Local()
	for range items {
		local.Inc()
	}
}

// allowed shows a justified suppression: no diagnostic expected.
func allowed(items []int) {
	for range items {
		ctr.Inc() //rahtm:allow(telemetrybatch): fixture exercises suppression on this line
	}
}
