// Fixture for the ctxpoll analyzer: solver loops must poll cancellation;
// internal code must not mint root contexts. Checked under the synthetic
// import path rahtm/internal/lp (a solver package).
package fixture

import "context"

func work() {}

// badRoot mints a root context inside internal code.
func badRoot() context.Context {
	return context.Background() // want `ctxpoll: context.Background\(\) in internal code`
}

// badBudget runs an iteration-budget loop without ever consulting ctx.
func badBudget(ctx context.Context, maxIters int) {
	for it := 0; it < maxIters; it++ { // want `ctxpoll: solve loop never polls cancellation`
		work()
	}
}

// badConverge is a while-style convergence loop ignoring its cancel channel.
func badConverge(cancel <-chan struct{}) {
	improving := true
	for improving { // want `ctxpoll: solve loop never polls cancellation`
		work()
		improving = false
	}
}

// goodSelect polls ctx each sweep.
func goodSelect(ctx context.Context, maxIters int) {
	for it := 0; it < maxIters; it++ {
		select {
		case <-ctx.Done():
			return
		default:
		}
		work()
	}
}

// goodChan polls a done channel each sweep.
func goodChan(cancel <-chan struct{}, maxIters int) {
	for it := 0; it < maxIters; it++ {
		select {
		case <-cancel:
			return
		default:
		}
		work()
	}
}

// goodDataBounded is bounded by its input and does no heavy work; such
// loops finish on their own and need not poll.
func goodDataBounded(ctx context.Context, xs []float64) float64 {
	sum := 0.0
	for i := 0; i < len(xs); i++ {
		sum += xs[i]
	}
	return sum
}

// allowedLoop shows a justified suppression: no diagnostic expected.
func allowedLoop(ctx context.Context, maxIters int) {
	//rahtm:allow(ctxpoll): fixture exercises suppression on the next line
	for it := 0; it < maxIters; it++ {
		work()
	}
}
