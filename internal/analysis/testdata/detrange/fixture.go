// Fixture for the detrange analyzer: map iteration with order-dependent
// effects in a deterministic package. Checked under the synthetic import
// path rahtm/internal/graph.
package fixture

import "sort"

// badFloatSum accumulates floats in map order: not associative, flagged.
func badFloatSum(m map[int]float64) float64 {
	tot := 0.0
	for _, v := range m { // want `detrange: map iteration with order-dependent effects`
		tot += v
	}
	return tot
}

// badCollect appends keys but never sorts them before returning.
func badCollect(m map[int]float64) []int {
	var keys []int
	for k := range m { // want `detrange: map iteration with order-dependent effects`
		keys = append(keys, k)
	}
	return keys
}

// badNested writes through a call whose effect depends on arrival order.
func badNested(m map[int]float64, sink func(int, float64)) {
	for k, v := range m { // want `detrange: map iteration with order-dependent effects`
		sink(k, v)
	}
}

// goodCollect is the canonical collect-then-sort pattern.
func goodCollect(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// goodIntCount only accumulates integers, which commutes exactly.
func goodIntCount(m map[int]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// goodPrune only deletes, which is order-insensitive.
func goodPrune(m map[int]float64) {
	for k, v := range m {
		if v <= 0 {
			delete(m, k)
		}
	}
}

// allowedSum shows a justified suppression: no diagnostic expected.
func allowedSum(m map[int]float64) float64 {
	tot := 0.0
	//rahtm:allow(detrange): fixture exercises suppression on the next line
	for _, v := range m {
		tot += v
	}
	return tot
}
