// Fixture for the floateq analyzer: exact ==/!= between floats outside
// tolerance helpers.
package fixture

import "math"

// bad compares two computed floats exactly.
func bad(a, b float64) bool {
	return a == b // want `floateq: exact == on float values`
}

// badNeq is the != form.
func badNeq(a, b float64) bool {
	return a != b // want `floateq: exact != on float values`
}

// goodZero compares against the zero sentinel, which is exact.
func goodZero(a float64) bool { return a == 0 }

// goodNaN is the x != x NaN probe.
func goodNaN(a float64) bool { return a != a }

// goodInf compares against the exact infinity.
func goodInf(a float64) bool { return a == math.Inf(1) }

// goodTol is the approved tolerance comparison.
func goodTol(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

// almostEqual is a tolerance helper by name; its exact compare (the
// fast path before the tolerance fallback) is its job.
func almostEqual(a, b float64) bool {
	return a == b || math.Abs(a-b) <= 1e-12
}

// allowed shows a justified suppression: no diagnostic expected.
func allowed(a, b float64) bool {
	//rahtm:allow(floateq): fixture exercises suppression on the next line
	return a == b
}
