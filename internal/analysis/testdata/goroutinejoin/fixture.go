// Fixture for the goroutinejoin analyzer: every goroutine in a concurrent
// package must be cancellable (ctx/done in sight) or joined (WaitGroup).
// Checked under the synthetic import path rahtm/internal/serve.
package fixture

import (
	"context"
	"sync"
)

func work()             {}
func drain(items []int) {}

type server struct {
	wg sync.WaitGroup
}

func (s *server) worker() { work() }

// badFireAndForget spawns a goroutine nothing can stop or await.
func badFireAndForget(items []int) {
	go drain(items) // want `goroutinejoin: goroutine is neither cancellable nor joined`
}

// badLiteral is the literal-body variant of the same leak.
func badLiteral() {
	go func() { // want `goroutinejoin: goroutine is neither cancellable nor joined`
		work()
	}()
}

// goodCtx passes a context into the goroutine: cancellable.
func goodCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// goodDone watches an empty-struct done channel: cancellable.
func goodDone(done <-chan struct{}) {
	go func() {
		<-done
		work()
	}()
}

// goodJoined participates in a WaitGroup join from inside the literal.
func goodJoined(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// goodMethodSpawn registers the goroutine with Add before the go statement
// — how method-value spawns are recognized without inter-procedural flow.
func (s *server) goodMethodSpawn(n int) {
	for i := 0; i < n; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// allowedSpawn shows a justified suppression: no diagnostic expected.
func allowedSpawn() {
	//rahtm:allow(goroutinejoin): fixture exercises suppression on the next line
	go work()
}
