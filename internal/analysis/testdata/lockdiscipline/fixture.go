// Fixture for the lockdiscipline analyzer: no mutexes copied by value,
// every Lock released on every return path, no double-lock on one
// receiver. Checked under the synthetic import path rahtm/internal/serve.
package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func use(*sync.Mutex) {}

// badValueReceiver copies the whole counter — and its lock state — on
// every call.
func (c counter) badValueReceiver() int { // want `lockdiscipline: method receiver contains a sync mutex`
	return c.n
}

// badParam receives the mutex itself by value.
func badParam(mu sync.Mutex) { // want `lockdiscipline: parameter is a sync mutex`
	mu.Lock()
	mu.Unlock()
}

// badAssignCopy duplicates a mutex through a plain assignment.
func badAssignCopy(c *counter) {
	m2 := c.mu // want `lockdiscipline: assigned value is a sync mutex`
	use(&m2)
}

// badLeakOnReturn holds the lock on the early-return path.
func badLeakOnReturn(c *counter, fail bool) int {
	c.mu.Lock() // want `lockdiscipline: c\.mu locked here is not released on every return path`
	if fail {
		return -1
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// badFallOffEnd never releases at all.
func badFallOffEnd(c *counter) {
	c.mu.Lock() // want `lockdiscipline: c\.mu locked here is not released on every return path`
	c.n++
}

// badDoubleLock self-deadlocks on the second acquisition.
func badDoubleLock(c *counter) {
	c.mu.Lock()
	c.mu.Lock() // want `lockdiscipline: second Lock on c\.mu while already held in this function deadlocks`
	c.n++
	c.mu.Unlock()
}

// badDoubleRLock deadlocks too once a writer queues between the two reads.
func badDoubleRLock(mu *sync.RWMutex) {
	mu.RLock()
	mu.RLock() // want `lockdiscipline: second RLock on mu \(read\) while already held in this function deadlocks against a waiting writer`
	mu.RUnlock()
	mu.RUnlock()
}

// goodDefer is the clean twin: the deferred unlock covers every path.
func goodDefer(c *counter, fail bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fail {
		return -1
	}
	return c.n
}

// goodBranchRelease releases explicitly on each path.
func goodBranchRelease(c *counter, fail bool) int {
	c.mu.Lock()
	if fail {
		c.mu.Unlock()
		return -1
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// goodLoopExit unlocks before the return inside an escape-proof for {}.
func goodLoopExit(c *counter) {
	c.mu.Lock()
	for {
		if c.n > 0 {
			c.mu.Unlock()
			return
		}
		c.n++
	}
}

// goodReadWrite keeps read and write locks distinct.
func goodReadWrite(mu *sync.RWMutex) {
	mu.RLock()
	defer mu.RUnlock()
}

// allowedLockedReturn shows a justified locked-accessor: no diagnostic.
func allowedLockedReturn(c *counter) *counter {
	//rahtm:allow(lockdiscipline): fixture exercises suppression on the next line
	c.mu.Lock()
	return c
}
