// Fixture for the csralias analyzer: slices returned by graph.Comm.Edges
// (and rows of nbr/nvol caches built from them) alias the frozen CSR
// arrays and must not be mutated or stored long-lived without a directive.
// Checked under the synthetic import path rahtm/internal/merge.
package fixture

import (
	"sort"

	"rahtm/internal/graph"
)

// rowCache mimics the merger's CSR row caches: rows alias graph storage.
type rowCache struct {
	nbr  [][]int32
	nvol [][]float64
	vols []float64
}

// badWrite stores through an Edges row directly.
func badWrite(g *graph.Comm, s int) {
	ds, vs := g.Edges(s)
	vs[0] = 0 // want `csralias: write through a slice aliasing frozen CSR rows`
	ds[0] = 1 // want `csralias: write through a slice aliasing frozen CSR rows`
}

// badIncDec increments an aliased element in place.
func badIncDec(g *graph.Comm, s int) {
	_, vs := g.Edges(s)
	vs[0]++ // want `csralias: write through a slice aliasing frozen CSR rows`
}

// badPropagated mutates through a copy of the alias and a reslice of it —
// the taint walk follows plain assignments and slicings to a fixpoint.
func badPropagated(g *graph.Comm, s int) {
	_, vs := g.Edges(s)
	alias := vs
	sub := alias[1:]
	sub[0] = 2 // want `csralias: write through a slice aliasing frozen CSR rows`
}

// badSort sorts the shared row in place.
func badSort(g *graph.Comm, s int) {
	_, vs := g.Edges(s)
	sort.Float64s(vs) // want `csralias: sort\.Float64s sorts in place through a slice aliasing frozen CSR rows`
}

// badAppend may write into the graph's backing array when capacity allows.
func badAppend(g *graph.Comm, s int) []int32 {
	ds, _ := g.Edges(s)
	return append(ds, 7) // want `csralias: append to a slice aliasing frozen CSR rows`
}

// badCopyInto overwrites the shared row with copy.
func badCopyInto(g *graph.Comm, s int, src []float64) {
	_, vs := g.Edges(s)
	copy(vs, src) // want `csralias: copy into a slice aliasing frozen CSR rows`
}

// badEscape parks the alias in a field, extending its lifetime beyond the
// local scope without a documented decision.
func badEscape(m *rowCache, g *graph.Comm, s int) {
	m.nbr[s], m.nvol[s] = g.Edges(s) // want `csralias: storing a CSR-aliasing slice into a field or element` `csralias: storing a CSR-aliasing slice into a field or element`
	_, vs := g.Edges(s)
	m.vols = vs // want `csralias: storing a CSR-aliasing slice into a field or element`
}

// badCachedRow mutates through the nbr/nvol row caches, which are aliasing
// sources in their own right.
func badCachedRow(m *rowCache, t int) {
	row := m.nvol[t]
	row[0] = 3 // want `csralias: write through a slice aliasing frozen CSR rows`
}

// goodCopyFirst is the clean twin: copy the row into owned memory, then
// mutate and sort freely.
func goodCopyFirst(g *graph.Comm, s int) float64 {
	_, vs := g.Edges(s)
	own := append([]float64(nil), vs...)
	sort.Float64s(own)
	own[0] = 42
	return own[0]
}

// goodReadOnly reads through the alias without mutating; reads are the
// whole point of the zero-copy accessor.
func goodReadOnly(g *graph.Comm, s int) float64 {
	_, vs := g.Edges(s)
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum
}

// allowedEscape shows a justified long-lived alias: no diagnostic.
func allowedEscape(m *rowCache, g *graph.Comm, s int) {
	//rahtm:allow(csralias): fixture documents a deliberate read-only row cache
	m.nbr[s], m.nvol[s] = g.Edges(s)
}
