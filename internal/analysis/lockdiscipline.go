package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockDiscipline enforces three mutex rules in internal code:
//
//   - no sync.Mutex/RWMutex copied by value: a parameter, value receiver,
//     or plain assignment whose type is (or directly embeds) a mutex
//     duplicates the lock state, so the copy guards nothing;
//   - every Lock must be released on every return path: after a plain
//     (non-deferred) Lock, reaching a return — or falling off the end of
//     the function — while the lock is still held is reported, unless a
//     matching deferred Unlock is registered;
//   - no double-lock on the same receiver within one function: a second
//     Lock on an expression already holding the lock self-deadlocks
//     (RLock is tracked separately; recursive RLock is reported too, as it
//     deadlocks against a waiting writer).
//
// The release check is a block-structured walk, not full data flow: branch
// bodies are analyzed with a copy of the held-set, the state after a
// branch is the intersection of its non-terminating arms (so a branch that
// unlocks-and-returns does not disturb the fall-through path), and loop
// bodies are checked with the loop-entry state. `for {}` without a break
// never falls through and ends the path. A function that intentionally
// returns while holding its lock (a locked-accessor idiom) needs an allow
// directive with the justification. sync.Cond.Wait's internal
// unlock/relock is invisible to the walk and needs no annotation — it
// reacquires before returning, so the held-set stays truthful.
var LockDiscipline = &Analyzer{
	Name:   "lockdiscipline",
	Doc:    "mutex copied by value, lock not released on every return path, or double-lock on one receiver",
	Filter: IsInternalPkg,
	Run:    runLockDiscipline,
}

func runLockDiscipline(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkMutexCopies(pass, fd)
			if fd.Body != nil {
				walkFuncLocks(pass, fd.Body)
			}
		}
	}
	return nil
}

// --- rule 1: copies ---

// mutexKind classifies t: 1 when t is sync.Mutex/RWMutex itself, 2 when t
// is a struct directly containing one (embedded or named field), 0 otherwise.
func mutexKind(t types.Type) int {
	if t == nil {
		return 0
	}
	if isSyncMutex(t) {
		return 1
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return 0
	}
	for i := 0; i < st.NumFields(); i++ {
		if isSyncMutex(st.Field(i).Type()) {
			return 2
		}
	}
	return 0
}

func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func checkMutexCopies(pass *Pass, fd *ast.FuncDecl) {
	report := func(pos token.Pos, what string, kind int) {
		how := "is a sync mutex"
		if kind == 2 {
			how = "contains a sync mutex"
		}
		pass.Reportf(pos, "%s %s and is passed by value; the copy's lock state is independent of the original — use a pointer", what, how)
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			if k := mutexKind(pass.TypeOf(f.Type)); k != 0 {
				report(f.Pos(), "method receiver", k)
			}
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			if k := mutexKind(pass.TypeOf(f.Type)); k != 0 {
				report(f.Pos(), "parameter", k)
			}
		}
	}
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, r := range as.Rhs {
			switch r.(type) {
			case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
				if k := mutexKind(pass.TypeOf(r)); k != 0 {
					report(r.Pos(), "assigned value", k)
				}
			}
		}
		return true
	})
}

// --- rules 2 and 3: release on all paths, double-lock ---

// lockOp identifies one mutex call: the rendered receiver expression plus
// the read/write mode, e.g. "s.mu" / "s.mu#R".
func lockOp(pass *Pass, call *ast.CallExpr) (key string, method string, ok bool) {
	sel, selOk := call.Fun.(*ast.SelectorExpr)
	if !selOk {
		return "", "", false
	}
	fn, fnOk := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !fnOk {
		return "", "", false
	}
	recv := receiverNamed(fn)
	if recv == nil || recv.Obj().Pkg() == nil || recv.Obj().Pkg().Path() != "sync" {
		return "", "", false
	}
	if recv.Obj().Name() != "Mutex" && recv.Obj().Name() != "RWMutex" {
		return "", "", false
	}
	method = fn.Name()
	key = types.ExprString(sel.X)
	if method == "RLock" || method == "RUnlock" {
		key += "#R"
	}
	return key, method, true
}

// lockWalker carries per-function reporting state so each (lock site,
// problem) pair is reported once even when several paths reach it.
type lockWalker struct {
	pass     *Pass
	deferred map[string]bool
	reported map[token.Pos]bool
}

// walkFuncLocks checks one function body (and, separately, every function
// literal inside it) for release-on-all-paths and double-lock.
func walkFuncLocks(pass *Pass, body *ast.BlockStmt) {
	w := &lockWalker{pass: pass, deferred: map[string]bool{}, reported: map[token.Pos]bool{}}
	held := map[string]token.Pos{}
	terminated := w.walkStmts(body.List, held)
	if !terminated {
		w.checkReturn(held, body.End())
	}
	// Function literals are independent lock scopes.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			walkFuncLocks(pass, lit.Body)
			return false
		}
		return true
	})
}

// checkReturn reports every lock still held (and not covered by a deferred
// unlock) when a return path completes.
func (w *lockWalker) checkReturn(held map[string]token.Pos, _ token.Pos) {
	for key, lockPos := range held {
		if w.deferred[key] || w.reported[lockPos] {
			continue
		}
		w.reported[lockPos] = true
		w.pass.Reportf(lockPos, "%s locked here is not released on every return path; defer the unlock or release before each return", displayKey(key))
	}
}

func displayKey(key string) string {
	if len(key) > 2 && key[len(key)-2:] == "#R" {
		return key[:len(key)-2] + " (read)"
	}
	return key
}

// walkStmts runs the held-set through stmts in order. It returns true when
// the statement list definitely terminates (returns, branches away, or
// ends in an escape-proof infinite loop), meaning code after it in the
// enclosing block is unreachable from here.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held map[string]token.Pos) bool {
	for _, st := range stmts {
		if w.walkStmt(st, held) {
			return true
		}
	}
	return false
}

func cloneHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// intersectInto keeps in dst only locks held in every provided state.
func intersectInto(dst map[string]token.Pos, others ...map[string]token.Pos) {
	for key := range dst {
		for _, o := range others {
			if _, ok := o[key]; !ok {
				delete(dst, key)
				break
			}
		}
	}
}

func (w *lockWalker) walkStmt(st ast.Stmt, held map[string]token.Pos) (terminated bool) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			w.applyCall(call, held)
		}
	case *ast.DeferStmt:
		w.applyDefer(st.Call)
	case *ast.ReturnStmt:
		w.checkReturn(held, st.Pos())
		return true
	case *ast.BranchStmt:
		// break/continue/goto/fallthrough leave this block; the lock state
		// rejoins the loop analysis conservatively (a loop's post-state is
		// its entry state).
		return true
	case *ast.BlockStmt:
		return w.walkStmts(st.List, held)
	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt, held)
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		bodyState := cloneHeld(held)
		bodyTerm := w.walkStmts(st.Body.List, bodyState)
		if st.Else == nil {
			// Fall-through continues either with the pre-if state (branch
			// not taken or terminated) or the body state; keep locks held
			// on both to stay conservative about double-locks, and adopt
			// unlocks only when the body cannot fall through.
			if !bodyTerm {
				intersectInto(held, bodyState)
			}
			return false
		}
		elseState := cloneHeld(held)
		elseTerm := w.walkStmt(st.Else, elseState)
		switch {
		case bodyTerm && elseTerm:
			return true
		case bodyTerm:
			replaceHeld(held, elseState)
		case elseTerm:
			replaceHeld(held, bodyState)
		default:
			replaceHeld(held, bodyState)
			intersectInto(held, elseState)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		bodyState := cloneHeld(held)
		w.walkStmts(st.Body.List, bodyState)
		// An infinite loop with no break never falls through.
		if st.Cond == nil && !hasBreak(st.Body) {
			return true
		}
	case *ast.RangeStmt:
		bodyState := cloneHeld(held)
		w.walkStmts(st.Body.List, bodyState)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		w.walkClauses(st, held)
	case *ast.GoStmt:
		// The goroutine runs under its own lock scope (walkFuncLocks
		// visits literals separately); spawning changes nothing here.
	}
	return false
}

// replaceHeld overwrites dst with src in place.
func replaceHeld(dst, src map[string]token.Pos) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// walkClauses analyzes each case/comm clause with a copy of the entry
// state and joins the non-terminating clauses by intersection.
func (w *lockWalker) walkClauses(st ast.Stmt, held map[string]token.Pos) {
	var bodies [][]ast.Stmt
	switch st := st.(type) {
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		for _, c := range st.Body.List {
			bodies = append(bodies, c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		for _, c := range st.Body.List {
			bodies = append(bodies, c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			bodies = append(bodies, c.(*ast.CommClause).Body)
		}
	}
	var live []map[string]token.Pos
	for _, b := range bodies {
		s := cloneHeld(held)
		if !w.walkStmts(b, s) {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		return
	}
	replaceHeld(held, live[0])
	intersectInto(held, live[1:]...)
}

// applyCall folds one call into the held-set: Lock acquires (reporting a
// double-lock), Unlock releases.
func (w *lockWalker) applyCall(call *ast.CallExpr, held map[string]token.Pos) {
	key, method, ok := lockOp(w.pass, call)
	if !ok {
		return
	}
	switch method {
	case "Lock", "RLock":
		if _, already := held[key]; already && !w.reported[call.Pos()] {
			w.reported[call.Pos()] = true
			verb := "deadlocks"
			if method == "RLock" {
				verb = "deadlocks against a waiting writer"
			}
			w.pass.Reportf(call.Pos(), "second %s on %s while already held in this function %s", method, displayKey(key), verb)
		}
		held[key] = call.Pos()
	case "Unlock", "RUnlock":
		delete(held, key)
	}
}

// applyDefer registers deferred unlocks, including the common
// `defer func() { mu.Unlock() }()` shape.
func (w *lockWalker) applyDefer(call *ast.CallExpr) {
	if key, method, ok := lockOp(w.pass, call); ok {
		if method == "Unlock" || method == "RUnlock" {
			w.deferred[key] = true
		}
		return
	}
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if key, method, ok := lockOp(w.pass, c); ok && (method == "Unlock" || method == "RUnlock") {
				w.deferred[key] = true
			}
		}
		return true
	})
}

// hasBreak reports whether body contains a break binding to this loop
// (i.e., not nested inside an inner for/range/switch/select).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				found = true
			}
			return false
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			// break inside these binds to them, not to our loop — except
			// labeled breaks, which the conservative answer treats as
			// absent (a labeled break past an infinite loop is rare and an
			// allow directive can document it).
			return false
		}
		return true
	}
	ast.Inspect(body, walk)
	return found
}
