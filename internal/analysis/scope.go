package analysis

import "strings"

// Package classes. Scoping is by final path element so that analysistest
// fixtures can impersonate a class by being checked under a synthetic
// import path such as "rahtm/internal/graph" (see analysistest.Run).
var (
	// deterministicPkgs must produce bit-identical output across runs
	// and across sequential/parallel schedules: map iteration feeding
	// any output (including float accumulation, which is not
	// associative) must happen in sorted key order.
	deterministicPkgs = set("graph", "core", "cluster", "merge", "hiermap", "routing")

	// solverPkgs contain the iterative solvers whose ...Ctx entry
	// points promise to poll cancellation within bounded iterations.
	// serve is held to the same bar: its workers run under per-request
	// contexts and any retry/wait loop must observe them.
	solverPkgs = set("lp", "milp", "hiermap", "merge", "serve")

	// hotPkgs are on the pipeline's per-flow / per-node hot paths and
	// must keep telemetry inside the 2% overhead budget by batching
	// counter updates outside loops.
	hotPkgs = set("routing", "core", "lp", "milp", "hiermap", "merge")

	// concurrentPkgs spawn goroutines (daemon workers, speculative
	// branch-and-bound, the Phase 2/3 worker pools) and must keep every
	// one cancellable and joined — the goroutinejoin contract.
	concurrentPkgs = set("serve", "milp", "core", "merge")
)

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// IsDeterministicPkg reports whether path is in the bit-identical class.
func IsDeterministicPkg(path string) bool { return deterministicPkgs[pkgBase(path)] }

// IsSolverPkg reports whether path hosts cancellation-polling solvers.
func IsSolverPkg(path string) bool { return solverPkgs[pkgBase(path)] }

// IsHotPkg reports whether path is under the telemetry overhead budget.
func IsHotPkg(path string) bool { return hotPkgs[pkgBase(path)] }

// IsConcurrentPkg reports whether path spawns pooled/speculative
// goroutines held to the join-or-cancel contract.
func IsConcurrentPkg(path string) bool { return concurrentPkgs[pkgBase(path)] }

// IsScopedPkg reports whether path participates in per-request telemetry
// attribution: the whole internal tree plus the module root ("rahtm"),
// where Solve installs and merges the request scope.
func IsScopedPkg(path string) bool {
	return IsInternalPkg(path) || path == "rahtm"
}

// IsInternalPkg reports whether path is part of this module's internal
// tree (library code as opposed to examples or third-party mains).
func IsInternalPkg(path string) bool {
	return strings.Contains(path, "internal/") || strings.HasPrefix(path, "internal/")
}
