package collective

import (
	"math"
	"testing"
	"testing/quick"

	"rahtm/internal/graph"
)

func volPerProcess(g *graph.Comm, rank int) float64 {
	return g.OutVolume(rank)
}

func TestRecursiveDoublingAllGatherVolume(t *testing.T) {
	g := graph.New(8)
	if err := RecursiveDoublingAllGather(g, World(8), 10); err != nil {
		t.Fatal(err)
	}
	// Each process sends msg*(n-1) total: 10*7 = 70.
	for r := 0; r < 8; r++ {
		if v := volPerProcess(g, r); math.Abs(v-70) > 1e-9 {
			t.Fatalf("rank %d volume %v, want 70", r, v)
		}
	}
	// Stage distances are powers of two: rank 0 talks to 1, 2, 4.
	nb := g.Neighbors(0)
	want := []int{1, 2, 4}
	if len(nb) != 3 || nb[0] != want[0] || nb[1] != want[1] || nb[2] != want[2] {
		t.Fatalf("rank 0 partners = %v, want %v", nb, want)
	}
}

func TestDisseminationAllGatherAnySize(t *testing.T) {
	g := graph.New(6)
	if err := DisseminationAllGather(g, World(6), 3); err != nil {
		t.Fatal(err)
	}
	// Stages s=1,2,4 with blocks 1,2,2: total per process 3*(1+2+2) = 15 =
	// msg*(n-1).
	for r := 0; r < 6; r++ {
		if v := volPerProcess(g, r); math.Abs(v-15) > 1e-9 {
			t.Fatalf("rank %d volume %v, want 15", r, v)
		}
	}
	// Partner of rank 5 at stage 1 wraps to 0.
	if g.Traffic(5, 0) == 0 {
		t.Fatal("dissemination must wrap")
	}
}

func TestAllGatherImplementationsDiffer(t *testing.T) {
	// §VI's point: the same collective has different patterns per
	// implementation, so mapping must know which one runs.
	a := graph.New(8)
	b := graph.New(8)
	if err := RecursiveDoublingAllGather(a, World(8), 1); err != nil {
		t.Fatal(err)
	}
	if err := DisseminationAllGather(b, World(8), 1); err != nil {
		t.Fatal(err)
	}
	if a.Equal(b, 1e-12) {
		t.Fatal("recursive doubling and dissemination should differ")
	}
	// But both move the same total volume.
	if math.Abs(a.TotalVolume()-b.TotalVolume()) > 1e-9 {
		t.Fatalf("total volumes differ: %v vs %v", a.TotalVolume(), b.TotalVolume())
	}
}

func TestRecursiveDoublingAllReduce(t *testing.T) {
	g := graph.New(4)
	if err := RecursiveDoublingAllReduce(g, World(4), 5); err != nil {
		t.Fatal(err)
	}
	// log2(4)=2 stages, msg each: 10 per process.
	for r := 0; r < 4; r++ {
		if v := volPerProcess(g, r); math.Abs(v-10) > 1e-9 {
			t.Fatalf("rank %d volume %v, want 10", r, v)
		}
	}
}

func TestRingAllReduceVolume(t *testing.T) {
	g := graph.New(4)
	if err := RingAllReduce(g, World(4), 8); err != nil {
		t.Fatal(err)
	}
	// 2*(n-1)/n*msg = 2*3/4*8 = 12 to the successor only.
	for r := 0; r < 4; r++ {
		if v := g.Traffic(r, (r+1)%4); math.Abs(v-12) > 1e-9 {
			t.Fatalf("ring edge %d volume %v, want 12", r, v)
		}
		if len(g.Neighbors(r)) != 1 {
			t.Fatalf("ring rank %d has %d partners", r, len(g.Neighbors(r)))
		}
	}
}

func TestBinomialBroadcastTree(t *testing.T) {
	g := graph.New(8)
	if err := BinomialBroadcast(g, World(8), 1); err != nil {
		t.Fatal(err)
	}
	// A binomial broadcast over n processes has exactly n-1 edges.
	if g.NumEdges() != 7 {
		t.Fatalf("edges = %d, want 7", g.NumEdges())
	}
	// Root sends to 4, 2, 1.
	nb := g.Neighbors(0)
	if len(nb) != 3 {
		t.Fatalf("root partners = %v", nb)
	}
	// Every non-root receives exactly once.
	for r := 1; r < 8; r++ {
		in := 0.0
		for s := 0; s < 8; s++ {
			in += g.Traffic(s, r)
		}
		if math.Abs(in-1) > 1e-9 {
			t.Fatalf("rank %d received %v, want 1", r, in)
		}
	}
}

func TestBinomialReduceIsReversedBroadcast(t *testing.T) {
	b := graph.New(8)
	r := graph.New(8)
	if err := BinomialBroadcast(b, World(8), 2); err != nil {
		t.Fatal(err)
	}
	if err := BinomialReduce(r, World(8), 2); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if math.Abs(b.Traffic(s, d)-r.Traffic(d, s)) > 1e-12 {
				t.Fatalf("reduce is not the reversed broadcast at (%d,%d)", s, d)
			}
		}
	}
}

func TestPairwiseAllToAll(t *testing.T) {
	g := graph.New(4)
	if err := PairwiseAllToAll(g, World(4), 3); err != nil {
		t.Fatal(err)
	}
	// Every ordered pair carries exactly msg.
	for s := 0; s < 4; s++ {
		for d := 0; d < 4; d++ {
			if s == d {
				continue
			}
			if math.Abs(g.Traffic(s, d)-3) > 1e-9 {
				t.Fatalf("traffic(%d,%d) = %v, want 3", s, d, g.Traffic(s, d))
			}
		}
	}
}

func TestReduceScatterRing(t *testing.T) {
	g := graph.New(4)
	if err := ReduceScatterRing(g, World(4), 8); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if v := g.Traffic(r, (r+1)%4); math.Abs(v-6) > 1e-9 {
			t.Fatalf("edge volume %v, want 6", v)
		}
	}
}

func TestSubCommunicator(t *testing.T) {
	// A collective over a row of a larger job touches only those ranks.
	g := graph.New(16)
	row := Communicator{4, 5, 6, 7}
	if err := RecursiveDoublingAllReduce(g, row, 1); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 16; r++ {
		v := volPerProcess(g, r)
		if r >= 4 && r < 8 {
			if v == 0 {
				t.Fatalf("row rank %d silent", r)
			}
		} else if v != 0 {
			t.Fatalf("rank %d outside the communicator communicates", r)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	g := graph.New(4)
	if err := RecursiveDoublingAllGather(g, Communicator{}, 1); err == nil {
		t.Fatal("empty communicator should fail")
	}
	if err := RecursiveDoublingAllGather(g, Communicator{0, 0}, 1); err == nil {
		t.Fatal("duplicate rank should fail")
	}
	if err := RecursiveDoublingAllGather(g, Communicator{0, 9}, 1); err == nil {
		t.Fatal("out-of-range rank should fail")
	}
	if err := RecursiveDoublingAllGather(g, Communicator{0, 1, 2}, 1); err == nil {
		t.Fatal("non-power-of-two should fail for recursive doubling")
	}
	if err := PairwiseAllToAll(g, Communicator{0, 1, 2}, 1); err == nil {
		t.Fatal("non-power-of-two should fail for pairwise all-to-all")
	}
}

func TestSingletonCommunicatorsAreSilent(t *testing.T) {
	g := graph.New(2)
	for _, op := range Ops() {
		if err := Add(g, op, Communicator{0}, 5); err != nil {
			t.Fatalf("%s on singleton: %v", op, err)
		}
	}
	if g.TotalVolume() != 0 {
		t.Fatal("singleton collectives should move nothing")
	}
}

func TestAddDispatch(t *testing.T) {
	for _, op := range Ops() {
		g := graph.New(8)
		if err := Add(g, op, World(8), 1); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if g.TotalVolume() <= 0 {
			t.Fatalf("%s moved no data", op)
		}
	}
	if err := Add(graph.New(2), Op("nope"), World(2), 1); err == nil {
		t.Fatal("unknown op should fail")
	}
}

// Property: all-gather implementations deliver msg*(n-1) bytes per process
// regardless of communicator size (dissemination) or power-of-two sizes
// (recursive doubling).
func TestQuickAllGatherVolumeInvariant(t *testing.T) {
	prop := func(seedRaw int64) bool {
		n := 2 + int(uint64(seedRaw)%14)
		msg := 1 + float64(uint64(seedRaw)%5)
		g := graph.New(n)
		if err := DisseminationAllGather(g, World(n), msg); err != nil {
			return false
		}
		for r := 0; r < n; r++ {
			if math.Abs(g.OutVolume(r)-msg*float64(n-1)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
