// Package collective synthesizes the point-to-point communication patterns
// of common MPI collective implementations. The RAHTM paper's §VI sketches
// exactly this extension: RAHTM only needs "the identities of the
// communicating processes and the (relative) amounts of communication
// between them", which depend on how each collective is implemented — a
// recursive-doubling all-gather produces a completely different pattern
// than a dissemination all-gather.
//
// Every generator adds its traffic into an existing communication graph, so
// application phases and collectives compose into one mapping problem. All
// volumes follow the standard cost models (see e.g. Thakur, Rabenseifner &
// Gropp, "Optimization of Collective Communication Operations in MPICH").
package collective

import (
	"fmt"
	"math/bits"

	"rahtm/internal/graph"
)

// Communicator is an ordered set of process ranks participating in a
// collective. Index within the slice is the rank inside the communicator.
type Communicator []int

// World returns the communicator over ranks 0..n-1.
func World(n int) Communicator {
	c := make(Communicator, n)
	for i := range c {
		c[i] = i
	}
	return c
}

func (c Communicator) validate(g *graph.Comm) error {
	if len(c) == 0 {
		return fmt.Errorf("collective: empty communicator")
	}
	seen := make(map[int]bool, len(c))
	for _, r := range c {
		if r < 0 || r >= g.N() {
			return fmt.Errorf("collective: rank %d outside graph of %d vertices", r, g.N())
		}
		if seen[r] {
			return fmt.Errorf("collective: duplicate rank %d", r)
		}
		seen[r] = true
	}
	return nil
}

func (c Communicator) powerOfTwo() error {
	n := len(c)
	if n&(n-1) != 0 {
		return fmt.Errorf("collective: communicator size %d is not a power of two", n)
	}
	return nil
}

// RecursiveDoublingAllGather adds the pattern of a recursive-doubling
// all-gather of msg bytes per process: log2(n) stages; at stage s, partner
// distance 2^s, exchanged volume msg * 2^s (the data gathered so far).
// Total bytes sent per process: msg * (n - 1).
func RecursiveDoublingAllGather(g *graph.Comm, c Communicator, msg float64) error {
	if err := c.validate(g); err != nil {
		return err
	}
	if err := c.powerOfTwo(); err != nil {
		return err
	}
	n := len(c)
	for s := 1; s < n; s *= 2 {
		vol := msg * float64(s)
		for i := 0; i < n; i++ {
			g.AddTraffic(c[i], c[i^s], vol)
		}
	}
	return nil
}

// DisseminationAllGather adds the dissemination (Bruck) all-gather pattern:
// ceil(log2(n)) stages; at stage s each process sends to (i + 2^s) mod n
// the min(2^s, n-2^s) blocks it holds. Works for any communicator size.
func DisseminationAllGather(g *graph.Comm, c Communicator, msg float64) error {
	if err := c.validate(g); err != nil {
		return err
	}
	n := len(c)
	for s := 1; s < n; s *= 2 {
		blocks := s
		if n-s < blocks {
			blocks = n - s
		}
		vol := msg * float64(blocks)
		for i := 0; i < n; i++ {
			g.AddTraffic(c[i], c[(i+s)%n], vol)
		}
	}
	return nil
}

// RecursiveDoublingAllReduce adds the recursive-doubling all-reduce
// pattern: log2(n) stages, full msg bytes exchanged with the partner at
// distance 2^s in every stage.
func RecursiveDoublingAllReduce(g *graph.Comm, c Communicator, msg float64) error {
	if err := c.validate(g); err != nil {
		return err
	}
	if err := c.powerOfTwo(); err != nil {
		return err
	}
	n := len(c)
	for s := 1; s < n; s *= 2 {
		for i := 0; i < n; i++ {
			g.AddTraffic(c[i], c[i^s], msg)
		}
	}
	return nil
}

// RingAllReduce adds the bandwidth-optimal ring all-reduce (reduce-scatter
// ring followed by all-gather ring): each process sends 2*(n-1)/n * msg
// bytes to its ring successor.
func RingAllReduce(g *graph.Comm, c Communicator, msg float64) error {
	if err := c.validate(g); err != nil {
		return err
	}
	n := len(c)
	if n == 1 {
		return nil
	}
	vol := 2 * float64(n-1) / float64(n) * msg
	for i := 0; i < n; i++ {
		g.AddTraffic(c[i], c[(i+1)%n], vol)
	}
	return nil
}

// BinomialBroadcast adds the binomial-tree broadcast pattern rooted at
// communicator rank 0: at stage s (from the top), every process whose
// relative rank is a multiple of 2^(k-s) and already holds the data sends
// msg bytes to the process 2^(k-s-1) away.
func BinomialBroadcast(g *graph.Comm, c Communicator, msg float64) error {
	if err := c.validate(g); err != nil {
		return err
	}
	n := len(c)
	if n == 1 {
		return nil
	}
	k := bits.Len(uint(n - 1)) // ceil(log2(n))
	for s := k - 1; s >= 0; s-- {
		step := 1 << s
		for i := 0; i+step < n; i += 2 * step {
			g.AddTraffic(c[i], c[i+step], msg)
		}
	}
	return nil
}

// BinomialReduce adds the binomial-tree reduce pattern (the broadcast tree
// with all edges reversed) toward communicator rank 0.
func BinomialReduce(g *graph.Comm, c Communicator, msg float64) error {
	if err := c.validate(g); err != nil {
		return err
	}
	n := len(c)
	if n == 1 {
		return nil
	}
	k := bits.Len(uint(n - 1))
	for s := k - 1; s >= 0; s-- {
		step := 1 << s
		for i := 0; i+step < n; i += 2 * step {
			g.AddTraffic(c[i+step], c[i], msg)
		}
	}
	return nil
}

// PairwiseAllToAll adds the pairwise-exchange all-to-all pattern: n-1
// rounds; in round r each process exchanges msg bytes with rank i XOR r
// (power-of-two sizes) — every pair communicates exactly once per call.
func PairwiseAllToAll(g *graph.Comm, c Communicator, msg float64) error {
	if err := c.validate(g); err != nil {
		return err
	}
	if err := c.powerOfTwo(); err != nil {
		return err
	}
	n := len(c)
	for r := 1; r < n; r++ {
		for i := 0; i < n; i++ {
			g.AddTraffic(c[i], c[i^r], msg)
		}
	}
	return nil
}

// ReduceScatterRing adds a ring reduce-scatter: (n-1)/n * msg bytes to the
// ring successor, n-1 rounds collapsed into aggregate volume.
func ReduceScatterRing(g *graph.Comm, c Communicator, msg float64) error {
	if err := c.validate(g); err != nil {
		return err
	}
	n := len(c)
	if n == 1 {
		return nil
	}
	vol := float64(n-1) / float64(n) * msg
	for i := 0; i < n; i++ {
		g.AddTraffic(c[i], c[(i+1)%n], vol)
	}
	return nil
}

// Op names a collective implementation for the string-driven API.
type Op string

// Supported collective implementations.
const (
	OpAllGatherRD   Op = "allgather-recursive-doubling"
	OpAllGatherDiss Op = "allgather-dissemination"
	OpAllReduceRD   Op = "allreduce-recursive-doubling"
	OpAllReduceRing Op = "allreduce-ring"
	OpBroadcast     Op = "broadcast-binomial"
	OpReduce        Op = "reduce-binomial"
	OpAllToAll      Op = "alltoall-pairwise"
	OpReduceScatter Op = "reducescatter-ring"
)

// Add applies the named collective to the graph.
func Add(g *graph.Comm, op Op, c Communicator, msg float64) error {
	switch op {
	case OpAllGatherRD:
		return RecursiveDoublingAllGather(g, c, msg)
	case OpAllGatherDiss:
		return DisseminationAllGather(g, c, msg)
	case OpAllReduceRD:
		return RecursiveDoublingAllReduce(g, c, msg)
	case OpAllReduceRing:
		return RingAllReduce(g, c, msg)
	case OpBroadcast:
		return BinomialBroadcast(g, c, msg)
	case OpReduce:
		return BinomialReduce(g, c, msg)
	case OpAllToAll:
		return PairwiseAllToAll(g, c, msg)
	case OpReduceScatter:
		return ReduceScatterRing(g, c, msg)
	}
	return fmt.Errorf("collective: unknown op %q", op)
}

// Ops lists every supported collective implementation.
func Ops() []Op {
	return []Op{
		OpAllGatherRD, OpAllGatherDiss, OpAllReduceRD, OpAllReduceRing,
		OpBroadcast, OpReduce, OpAllToAll, OpReduceScatter,
	}
}
