// Package topology models k-ary n-dimensional torus and mesh interconnects
// (Blue Gene/Q's 5-D torus in the paper) and the 2-ary n-cube hierarchy that
// RAHTM's divide-and-conquer operates on.
//
// Nodes are identified both by dense ranks (0..N-1, row-major over the
// dimension list) and by coordinate vectors. Directed network channels are
// identified densely so per-channel load vectors can be flat slices.
package topology

import (
	"fmt"
	"math/bits"
	"strings"
)

// Torus is a k-ary n-dimensional torus or mesh. Each dimension may wrap
// independently (a mesh is a torus with no wrapping dimensions).
type Torus struct {
	dims    []int
	wrap    []bool
	strides []int
	n       int
}

// NewTorus returns a fully wrapped torus with the given per-dimension sizes.
func NewTorus(dims ...int) *Torus {
	w := make([]bool, len(dims))
	for i, k := range dims {
		// A wrap link in a 1-wide or 2-wide dimension with k<=1 is
		// meaningless; wrapping a k=2 dimension yields the "double-wide
		// link" pair the paper exploits, so keep it.
		w[i] = k > 1
	}
	return newTorus(dims, w)
}

// NewMesh returns an unwrapped mesh with the given per-dimension sizes.
func NewMesh(dims ...int) *Torus {
	return newTorus(dims, make([]bool, len(dims)))
}

// NewMixed returns a topology with explicit per-dimension wrap flags.
func NewMixed(dims []int, wrap []bool) *Torus {
	if len(dims) != len(wrap) {
		panic("topology: dims/wrap length mismatch")
	}
	w := append([]bool(nil), wrap...)
	for i, k := range dims {
		if k <= 1 {
			w[i] = false
		}
	}
	return newTorus(dims, w)
}

func newTorus(dims []int, wrap []bool) *Torus {
	if len(dims) == 0 {
		panic("topology: need at least one dimension")
	}
	d := append([]int(nil), dims...)
	n := 1
	strides := make([]int, len(d))
	for i := len(d) - 1; i >= 0; i-- {
		if d[i] < 1 {
			panic(fmt.Sprintf("topology: dimension %d has size %d", i, d[i]))
		}
		strides[i] = n
		n *= d[i]
	}
	return &Torus{dims: d, wrap: wrap, strides: strides, n: n}
}

// N returns the node count.
func (t *Torus) N() int { return t.n }

// NumDims returns the dimensionality.
func (t *Torus) NumDims() int { return len(t.dims) }

// Dim returns the size of dimension d.
func (t *Torus) Dim(d int) int { return t.dims[d] }

// Stride returns the rank stride of dimension d: ranks are row-major over
// the dimension list, so moving one step along d changes the rank by this.
func (t *Torus) Stride(d int) int { return t.strides[d] }

// Dims returns a copy of the dimension sizes.
func (t *Torus) Dims() []int { return append([]int(nil), t.dims...) }

// Wrap reports whether dimension d wraps around.
func (t *Torus) Wrap(d int) bool { return t.wrap[d] }

// String renders e.g. "torus(4x4x4x2)" or "mesh(2x2)".
func (t *Torus) String() string {
	parts := make([]string, len(t.dims))
	allWrap, anyWrap := true, false
	for i, k := range t.dims {
		parts[i] = fmt.Sprintf("%d", k)
		if t.wrap[i] {
			anyWrap = true
		} else if k > 1 {
			allWrap = false
		}
	}
	kind := "mesh"
	if anyWrap && allWrap {
		kind = "torus"
	} else if anyWrap {
		kind = "mixed"
	}
	return kind + "(" + strings.Join(parts, "x") + ")"
}

// CoordOf decodes rank into a coordinate vector. If out has capacity it is
// reused; otherwise a new slice is allocated.
func (t *Torus) CoordOf(rank int, out []int) []int {
	if rank < 0 || rank >= t.n {
		panic(fmt.Sprintf("topology: rank %d out of range [0,%d)", rank, t.n))
	}
	if cap(out) < len(t.dims) {
		out = make([]int, len(t.dims))
	}
	out = out[:len(t.dims)]
	for i := range t.dims {
		out[i] = rank / t.strides[i]
		rank %= t.strides[i]
	}
	return out
}

// RankOf encodes a coordinate vector into a rank.
func (t *Torus) RankOf(coord []int) int {
	if len(coord) != len(t.dims) {
		panic("topology: coordinate dimensionality mismatch")
	}
	r := 0
	for i, c := range coord {
		if c < 0 || c >= t.dims[i] {
			panic(fmt.Sprintf("topology: coordinate %d out of range [0,%d) in dim %d", c, t.dims[i], i))
		}
		r += c * t.strides[i]
	}
	return r
}

// Directions of travel along a dimension.
const (
	Plus  = 0 // increasing coordinate
	Minus = 1 // decreasing coordinate
)

// NumChannels returns the size of a dense per-channel array: every node has
// a slot for both directions of every dimension (slots that have no physical
// link — mesh boundaries, 1-wide dimensions — simply stay unused).
func (t *Torus) NumChannels() int { return t.n * len(t.dims) * 2 }

// ChannelID returns the dense id of the directed link leaving node along
// dim in direction dir (Plus or Minus).
func (t *Torus) ChannelID(node, dim, dir int) int {
	return (node*len(t.dims)+dim)*2 + dir
}

// DecodeChannel inverts ChannelID.
func (t *Torus) DecodeChannel(ch int) (node, dim, dir int) {
	dir = ch & 1
	ch >>= 1
	dim = ch % len(t.dims)
	node = ch / len(t.dims)
	return
}

// ChannelExists reports whether the directed link leaving node along dim in
// direction dir is physically present.
func (t *Torus) ChannelExists(node, dim, dir int) bool {
	k := t.dims[dim]
	if k <= 1 {
		return false
	}
	if t.wrap[dim] {
		return true
	}
	c := (node / t.strides[dim]) % k
	if dir == Plus {
		return c < k-1
	}
	return c > 0
}

// NeighborRank returns the rank reached from node by one hop along dim in
// direction dir, applying wraparound; ok is false when no such link exists.
func (t *Torus) NeighborRank(node, dim, dir int) (next int, ok bool) {
	if !t.ChannelExists(node, dim, dir) {
		return 0, false
	}
	k := t.dims[dim]
	c := (node / t.strides[dim]) % k
	var nc int
	if dir == Plus {
		nc = c + 1
		if nc == k {
			nc = 0
		}
	} else {
		nc = c - 1
		if nc < 0 {
			nc = k - 1
		}
	}
	return node + (nc-c)*t.strides[dim], true
}

// NumLinks returns the number of physical directed links.
func (t *Torus) NumLinks() int {
	total := 0
	for d, k := range t.dims {
		if k <= 1 {
			continue
		}
		perLine := k - 1
		if t.wrap[d] {
			perLine = k
		}
		total += 2 * perLine * (t.n / k)
	}
	return total
}

// Box is an axis-aligned sub-region of a torus: the nodes with
// Origin[d] <= coord[d] < Origin[d]+Shape[d] (no wrap in the box itself;
// origins must leave the box inside the torus bounds).
type Box struct {
	Origin []int
	Shape  []int
}

// Size returns the node count of the box.
func (b Box) Size() int {
	n := 1
	for _, s := range b.Shape {
		n *= s
	}
	return n
}

// Nodes lists the ranks inside the box in local row-major order: local index
// i corresponds to the coordinate offset decodable by a mesh of shape
// b.Shape.
func (t *Torus) Nodes(b Box) []int {
	if len(b.Origin) != len(t.dims) || len(b.Shape) != len(t.dims) {
		panic("topology: box dimensionality mismatch")
	}
	for d := range b.Origin {
		if b.Origin[d] < 0 || b.Shape[d] < 1 || b.Origin[d]+b.Shape[d] > t.dims[d] {
			panic(fmt.Sprintf("topology: box dim %d origin %d shape %d exceeds torus dim %d",
				d, b.Origin[d], b.Shape[d], t.dims[d]))
		}
	}
	out := make([]int, 0, b.Size())
	coord := make([]int, len(t.dims))
	copy(coord, b.Origin)
	for {
		out = append(out, t.RankOf(coord))
		// Mixed-radix increment over the box, last dim fastest.
		d := len(coord) - 1
		for d >= 0 {
			coord[d]++
			if coord[d] < b.Origin[d]+b.Shape[d] {
				break
			}
			coord[d] = b.Origin[d]
			d--
		}
		if d < 0 {
			return out
		}
	}
}

// SubMesh returns the box as a standalone mesh topology (no wrap), plus the
// rank list aligning local mesh ranks with torus ranks (same order as Nodes).
func (t *Torus) SubMesh(b Box) (*Torus, []int) {
	return NewMesh(b.Shape...), t.Nodes(b)
}

// Hierarchy is the 2-ary n-cube decomposition RAHTM uses: every dimension
// size must be a power of two. Level 0 is the root; level NumLevels()-1 is
// the leaf. Level l consumes bit (NumLevels()-1-l) of each coordinate, so a
// dimension of size 2^b participates (with extent 2) in the b deepest
// levels and has extent 1 above them.
type Hierarchy struct {
	t    *Torus
	bits []int
	l    int
}

// NewHierarchy builds the hierarchy; it fails if any dimension size is not
// a power of two (partition such tori first, as the paper does for BG/Q's
// E dimension when needed).
func NewHierarchy(t *Torus) (*Hierarchy, error) {
	b := make([]int, t.NumDims())
	max := 0
	for d := 0; d < t.NumDims(); d++ {
		k := t.Dim(d)
		if k&(k-1) != 0 {
			return nil, fmt.Errorf("topology: dim %d size %d is not a power of two", d, k)
		}
		b[d] = bits.Len(uint(k)) - 1
		if b[d] > max {
			max = b[d]
		}
	}
	if max == 0 {
		return nil, fmt.Errorf("topology: single-node topology has no hierarchy")
	}
	return &Hierarchy{t: t, bits: b, l: max}, nil
}

// Torus returns the underlying topology.
func (h *Hierarchy) Torus() *Torus { return h.t }

// NumLevels returns the number of hierarchy levels.
func (h *Hierarchy) NumLevels() int { return h.l }

// CubeShape returns the {1,2}^n shape of the cube solved at the given level
// (0 = root).
func (h *Hierarchy) CubeShape(level int) []int {
	h.checkLevel(level)
	bit := h.l - 1 - level
	shape := make([]int, len(h.bits))
	for d, b := range h.bits {
		if b > bit {
			shape[d] = 2
		} else {
			shape[d] = 1
		}
	}
	return shape
}

// CubeSize returns the number of positions in the level's cube (2^n for n
// participating dimensions).
func (h *Hierarchy) CubeSize(level int) int {
	sz := 1
	for _, s := range h.CubeShape(level) {
		sz *= s
	}
	return sz
}

// NumCubes returns how many disjoint cubes exist at the given level
// (the product of cube sizes of all strictly shallower levels).
func (h *Hierarchy) NumCubes(level int) int {
	h.checkLevel(level)
	n := 1
	for l := 0; l < level; l++ {
		n *= h.CubeSize(l)
	}
	return n
}

// BlockShape returns the full per-dimension extent of one block at the given
// level — the box covered by a level-l cube and everything beneath it
// (2^min(bits_d, L-l) per dimension). level may equal NumLevels(), denoting
// a single node.
func (h *Hierarchy) BlockShape(level int) []int {
	if level < 0 || level > h.l {
		panic(fmt.Sprintf("topology: level %d out of range [0,%d]", level, h.l))
	}
	shape := make([]int, len(h.bits))
	for d, b := range h.bits {
		e := h.l - level
		if e > b {
			e = b
		}
		shape[d] = 1 << e
	}
	return shape
}

// ChildBlockShape returns the extent of one child block within a level-l
// cube, i.e. BlockShape(level+1), or all-ones at the leaf.
func (h *Hierarchy) ChildBlockShape(level int) []int {
	h.checkLevel(level)
	if level == h.l-1 {
		shape := make([]int, len(h.bits))
		for d := range shape {
			shape[d] = 1
		}
		return shape
	}
	return h.BlockShape(level + 1)
}

// PathOf decomposes a node rank into per-level cube positions: out[l] is the
// position of the node's block within its level-l cube, encoded row-major
// over CubeShape(l).
func (h *Hierarchy) PathOf(node int) []int {
	coord := h.t.CoordOf(node, nil)
	out := make([]int, h.l)
	for level := 0; level < h.l; level++ {
		bit := h.l - 1 - level
		pos := 0
		for d, b := range h.bits {
			if b <= bit {
				continue
			}
			pos = pos*2 + (coord[d]>>bit)&1
		}
		out[level] = pos
	}
	return out
}

// NodeFromPath inverts PathOf.
func (h *Hierarchy) NodeFromPath(path []int) int {
	if len(path) != h.l {
		panic("topology: path length mismatch")
	}
	coord := make([]int, len(h.bits))
	for level := 0; level < h.l; level++ {
		bit := h.l - 1 - level
		pos := path[level]
		// Undo the row-major encoding over participating dims.
		shape := h.CubeShape(level)
		for d := len(shape) - 1; d >= 0; d-- {
			if shape[d] != 2 {
				continue
			}
			coord[d] |= (pos & 1) << bit
			pos >>= 1
		}
	}
	return h.t.RankOf(coord)
}

// BlockBox returns the box covered by the block identified by the given
// path prefix (positions for levels 0..len(prefix)-1). An empty prefix
// yields the whole topology.
func (h *Hierarchy) BlockBox(prefix []int) Box {
	if len(prefix) > h.l {
		panic("topology: path prefix too long")
	}
	origin := make([]int, len(h.bits))
	for level, pos := range prefix {
		bit := h.l - 1 - level
		shape := h.CubeShape(level)
		for d := len(shape) - 1; d >= 0; d-- {
			if shape[d] != 2 {
				continue
			}
			origin[d] |= (pos & 1) << bit
			pos >>= 1
		}
	}
	return Box{Origin: origin, Shape: h.BlockShape(len(prefix))}
}

func (h *Hierarchy) checkLevel(level int) {
	if level < 0 || level >= h.l {
		panic(fmt.Sprintf("topology: level %d out of range [0,%d)", level, h.l))
	}
}
