package topology

// DimDistance returns the minimal hop count between coordinates a and b
// along dimension d, honoring wraparound.
func (t *Torus) DimDistance(d, a, b int) int {
	k := t.dims[d]
	diff := b - a
	if diff < 0 {
		diff = -diff
	}
	if t.wrap[d] && k-diff < diff {
		diff = k - diff
	}
	return diff
}

// MinDistance returns the minimal hop count between nodes a and b.
func (t *Torus) MinDistance(a, b int) int {
	ca := t.CoordOf(a, nil)
	cb := t.CoordOf(b, nil)
	dist := 0
	for d := range ca {
		dist += t.DimDistance(d, ca[d], cb[d])
	}
	return dist
}
