package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRankCoordRoundTrip(t *testing.T) {
	topos := []*Torus{
		NewTorus(4, 4, 4, 4, 2),
		NewMesh(3, 5),
		NewTorus(2),
		NewMixed([]int{4, 2, 3}, []bool{true, false, true}),
	}
	for _, tp := range topos {
		for r := 0; r < tp.N(); r++ {
			c := tp.CoordOf(r, nil)
			if got := tp.RankOf(c); got != r {
				t.Fatalf("%v: RankOf(CoordOf(%d)) = %d", tp, r, got)
			}
		}
	}
}

func TestTorusBasics(t *testing.T) {
	tp := NewTorus(4, 4, 4, 4, 2)
	if tp.N() != 512 {
		t.Fatalf("N = %d, want 512", tp.N())
	}
	if tp.NumDims() != 5 {
		t.Fatalf("NumDims = %d", tp.NumDims())
	}
	if !tp.Wrap(0) || !tp.Wrap(4) {
		t.Fatal("expected all dims wrapped")
	}
	if tp.String() != "torus(4x4x4x4x2)" {
		t.Fatalf("String = %q", tp.String())
	}
	if NewMesh(2, 2).String() != "mesh(2x2)" {
		t.Fatalf("mesh String = %q", NewMesh(2, 2).String())
	}
}

func TestNumLinks(t *testing.T) {
	// 4-cycle: 8 directed links.
	if got := NewTorus(4).NumLinks(); got != 8 {
		t.Fatalf("ring links = %d, want 8", got)
	}
	// 4-node line: 6 directed links.
	if got := NewMesh(4).NumLinks(); got != 6 {
		t.Fatalf("line links = %d, want 6", got)
	}
	// 2x2 torus: each dim contributes 2 lines x 2 links x 2 dirs = 8 -> 16.
	if got := NewTorus(2, 2).NumLinks(); got != 16 {
		t.Fatalf("2x2 torus links = %d, want 16", got)
	}
	// 2x2 mesh: 4 undirected edges -> 8 directed.
	if got := NewMesh(2, 2).NumLinks(); got != 8 {
		t.Fatalf("2x2 mesh links = %d, want 8", got)
	}
}

func TestChannelExistsAndNeighbor(t *testing.T) {
	m := NewMesh(3)
	// Node 0: Plus exists, Minus does not.
	if !m.ChannelExists(0, 0, Plus) || m.ChannelExists(0, 0, Minus) {
		t.Fatal("mesh boundary channels wrong at node 0")
	}
	if m.ChannelExists(2, 0, Plus) || !m.ChannelExists(2, 0, Minus) {
		t.Fatal("mesh boundary channels wrong at node 2")
	}
	tor := NewTorus(3)
	nxt, ok := tor.NeighborRank(2, 0, Plus)
	if !ok || nxt != 0 {
		t.Fatalf("wraparound neighbor = %d/%v, want 0/true", nxt, ok)
	}
	nxt, ok = tor.NeighborRank(0, 0, Minus)
	if !ok || nxt != 2 {
		t.Fatalf("wraparound neighbor = %d/%v, want 2/true", nxt, ok)
	}
	if _, ok := m.NeighborRank(2, 0, Plus); ok {
		t.Fatal("mesh edge off the end exists")
	}
}

func TestChannelIDRoundTrip(t *testing.T) {
	tp := NewTorus(4, 2, 3)
	seen := make(map[int]bool)
	for node := 0; node < tp.N(); node++ {
		for dim := 0; dim < tp.NumDims(); dim++ {
			for dir := 0; dir < 2; dir++ {
				id := tp.ChannelID(node, dim, dir)
				if id < 0 || id >= tp.NumChannels() {
					t.Fatalf("channel id %d out of range", id)
				}
				if seen[id] {
					t.Fatalf("duplicate channel id %d", id)
				}
				seen[id] = true
				n2, d2, s2 := tp.DecodeChannel(id)
				if n2 != node || d2 != dim || s2 != dir {
					t.Fatalf("DecodeChannel(%d) = (%d,%d,%d), want (%d,%d,%d)", id, n2, d2, s2, node, dim, dir)
				}
			}
		}
	}
}

func TestOneWideDimensionHasNoChannels(t *testing.T) {
	tp := NewTorus(4, 1)
	for node := 0; node < tp.N(); node++ {
		if tp.ChannelExists(node, 1, Plus) || tp.ChannelExists(node, 1, Minus) {
			t.Fatal("1-wide dimension should have no links")
		}
	}
}

func TestBoxNodes(t *testing.T) {
	tp := NewTorus(4, 4)
	b := Box{Origin: []int{2, 2}, Shape: []int{2, 2}}
	nodes := tp.Nodes(b)
	want := []int{10, 11, 14, 15} // coords (2,2),(2,3),(3,2),(3,3)
	if len(nodes) != 4 {
		t.Fatalf("box nodes = %v", nodes)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("box nodes = %v, want %v", nodes, want)
		}
	}
	if b.Size() != 4 {
		t.Fatalf("box size = %d", b.Size())
	}
}

func TestSubMeshAlignment(t *testing.T) {
	tp := NewTorus(4, 4)
	b := Box{Origin: []int{0, 2}, Shape: []int{2, 2}}
	mesh, ranks := tp.SubMesh(b)
	if mesh.N() != 4 || mesh.Wrap(0) || mesh.Wrap(1) {
		t.Fatalf("submesh = %v", mesh)
	}
	// Local rank 3 = local coord (1,1) = torus coord (1,3) = rank 7.
	if ranks[3] != 7 {
		t.Fatalf("ranks = %v", ranks)
	}
}

func TestHierarchyBGQLike(t *testing.T) {
	tp := NewTorus(4, 4, 4, 4, 2)
	h, err := NewHierarchy(tp)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLevels() != 2 {
		t.Fatalf("NumLevels = %d, want 2", h.NumLevels())
	}
	// Root level: only the 4-wide dims participate (bit 1).
	root := h.CubeShape(0)
	want := []int{2, 2, 2, 2, 1}
	for d := range want {
		if root[d] != want[d] {
			t.Fatalf("root cube shape = %v, want %v", root, want)
		}
	}
	if h.CubeSize(0) != 16 {
		t.Fatalf("root cube size = %d", h.CubeSize(0))
	}
	// Leaf level: every dim participates.
	leaf := h.CubeShape(1)
	for d := 0; d < 5; d++ {
		if leaf[d] != 2 {
			t.Fatalf("leaf cube shape = %v", leaf)
		}
	}
	if h.CubeSize(1) != 32 {
		t.Fatalf("leaf cube size = %d", h.CubeSize(1))
	}
	if h.NumCubes(0) != 1 || h.NumCubes(1) != 16 {
		t.Fatalf("NumCubes = %d/%d", h.NumCubes(0), h.NumCubes(1))
	}
	// 16 root positions x 32 leaf positions = 512 nodes.
	if h.CubeSize(0)*h.CubeSize(1) != tp.N() {
		t.Fatal("hierarchy does not cover the torus")
	}
}

func TestHierarchyRejectsNonPowerOfTwo(t *testing.T) {
	if _, err := NewHierarchy(NewTorus(3, 4)); err == nil {
		t.Fatal("expected error for 3-wide dim")
	}
	if _, err := NewHierarchy(NewTorus(1)); err == nil {
		t.Fatal("expected error for single-node topology")
	}
}

func TestPathRoundTrip(t *testing.T) {
	for _, tp := range []*Torus{NewTorus(4, 4), NewTorus(4, 4, 4), NewTorus(4, 4, 4, 4, 2), NewTorus(8, 2)} {
		h, err := NewHierarchy(tp)
		if err != nil {
			t.Fatal(err)
		}
		for node := 0; node < tp.N(); node++ {
			p := h.PathOf(node)
			if got := h.NodeFromPath(p); got != node {
				t.Fatalf("%v: NodeFromPath(PathOf(%d)) = %d (path %v)", tp, node, got, p)
			}
		}
	}
}

func TestBlockBox(t *testing.T) {
	tp := NewTorus(4, 4)
	h, _ := NewHierarchy(tp)
	// Whole topology.
	whole := h.BlockBox(nil)
	if whole.Size() != 16 {
		t.Fatalf("whole box size = %d", whole.Size())
	}
	// Root position 3 = root coords (1,1) -> origin (2,2), shape (2,2).
	b := h.BlockBox([]int{3})
	if b.Origin[0] != 2 || b.Origin[1] != 2 || b.Shape[0] != 2 || b.Shape[1] != 2 {
		t.Fatalf("block box = %+v", b)
	}
	// Full path identifies exactly one node.
	for node := 0; node < tp.N(); node++ {
		bb := h.BlockBox(h.PathOf(node))
		if bb.Size() != 1 {
			t.Fatalf("full-path box size = %d", bb.Size())
		}
		if tp.Nodes(bb)[0] != node {
			t.Fatalf("full-path box = %+v for node %d", bb, node)
		}
	}
}

func TestBlockShapes(t *testing.T) {
	tp := NewTorus(4, 4, 2)
	h, _ := NewHierarchy(tp)
	// Level 0 block = whole torus; level 1 block = leaf cube; level 2 = node.
	if got := h.BlockShape(0); got[0] != 4 || got[1] != 4 || got[2] != 2 {
		t.Fatalf("BlockShape(0) = %v", got)
	}
	if got := h.BlockShape(1); got[0] != 2 || got[1] != 2 || got[2] != 2 {
		t.Fatalf("BlockShape(1) = %v", got)
	}
	if got := h.BlockShape(2); got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("BlockShape(2) = %v", got)
	}
	if got := h.ChildBlockShape(1); got[0] != 1 || got[2] != 1 {
		t.Fatalf("ChildBlockShape(1) = %v", got)
	}
	if got := h.ChildBlockShape(0); got[0] != 2 {
		t.Fatalf("ChildBlockShape(0) = %v", got)
	}
}

// Property: every node lands in exactly the block box of its own path
// prefix, for random topologies.
func TestQuickPathPrefixContainsNode(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nd := 1 + rng.Intn(4)
		dims := make([]int, nd)
		for i := range dims {
			dims[i] = 1 << (1 + rng.Intn(3)) // 2,4,8
		}
		tp := NewTorus(dims...)
		h, err := NewHierarchy(tp)
		if err != nil {
			return false
		}
		node := rng.Intn(tp.N())
		path := h.PathOf(node)
		for plen := 0; plen <= len(path); plen++ {
			box := h.BlockBox(path[:plen])
			found := false
			for _, r := range tp.Nodes(box) {
				if r == node {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: channel ids are a bijection onto [0, NumChannels).
func TestQuickChannelBijection(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nd := 1 + rng.Intn(3)
		dims := make([]int, nd)
		for i := range dims {
			dims[i] = 1 + rng.Intn(5)
		}
		tp := NewTorus(dims...)
		id := rng.Intn(tp.NumChannels())
		n, d, s := tp.DecodeChannel(id)
		return tp.ChannelID(n, d, s) == id
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
