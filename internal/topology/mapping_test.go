package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentityMapping(t *testing.T) {
	m := Identity(4)
	for i := range m {
		if m[i] != i {
			t.Fatalf("Identity[%d] = %d", i, m[i])
		}
	}
	if err := m.Validate(4, true); err != nil {
		t.Fatal(err)
	}
}

func TestMappingValidate(t *testing.T) {
	if err := (Mapping{0, 1, 2}).Validate(3, true); err != nil {
		t.Fatal(err)
	}
	if err := (Mapping{0, 0}).Validate(3, true); err == nil {
		t.Fatal("duplicate should fail one-to-one")
	}
	if err := (Mapping{0, 0}).Validate(3, false); err != nil {
		t.Fatal("duplicates allowed when not one-to-one")
	}
	if err := (Mapping{5}).Validate(3, false); err == nil {
		t.Fatal("out of range should fail")
	}
	if err := (Mapping{-1}).Validate(3, false); err == nil {
		t.Fatal("negative should fail")
	}
}

func TestMappingInverse(t *testing.T) {
	m := Mapping{2, 0, 3}
	inv := m.Inverse(4)
	if inv[2] != 0 || inv[0] != 1 || inv[3] != 2 || inv[1] != -1 {
		t.Fatalf("inverse = %v", inv)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-injective inverse")
		}
	}()
	Mapping{0, 0}.Inverse(2)
}

func TestMappingCloneAndCompose(t *testing.T) {
	m := Mapping{1, 0}
	c := m.Clone()
	c[0] = 9
	if m[0] != 1 {
		t.Fatal("clone shares storage")
	}
	relabeled := m.ComposeNodes([]int{10, 20})
	if relabeled[0] != 20 || relabeled[1] != 10 {
		t.Fatalf("composed = %v", relabeled)
	}
}

func TestDimDistance(t *testing.T) {
	tor := NewTorus(8)
	if tor.DimDistance(0, 1, 7) != 2 {
		t.Fatalf("torus distance = %d, want 2 (wrap)", tor.DimDistance(0, 1, 7))
	}
	if tor.DimDistance(0, 7, 1) != 2 {
		t.Fatal("distance not symmetric")
	}
	msh := NewMesh(8)
	if msh.DimDistance(0, 1, 7) != 6 {
		t.Fatalf("mesh distance = %d, want 6", msh.DimDistance(0, 1, 7))
	}
}

func TestMinDistance(t *testing.T) {
	tp := NewTorus(4, 4)
	if got := tp.MinDistance(tp.RankOf([]int{0, 0}), tp.RankOf([]int{3, 3})); got != 2 {
		t.Fatalf("corner distance = %d, want 2 (double wrap)", got)
	}
	mesh := NewMesh(4, 4)
	if got := mesh.MinDistance(0, 15); got != 6 {
		t.Fatalf("mesh corner distance = %d, want 6", got)
	}
	if tp.MinDistance(5, 5) != 0 {
		t.Fatal("self distance != 0")
	}
}

func TestDims(t *testing.T) {
	tp := NewTorus(3, 5)
	d := tp.Dims()
	d[0] = 99
	if tp.Dim(0) != 3 {
		t.Fatal("Dims exposed internal storage")
	}
}

func TestHierarchyTorusAccessor(t *testing.T) {
	tp := NewTorus(4, 4)
	h, err := NewHierarchy(tp)
	if err != nil {
		t.Fatal(err)
	}
	if h.Torus() != tp {
		t.Fatal("Torus accessor broken")
	}
}

func TestMixedString(t *testing.T) {
	tp := NewMixed([]int{4, 3}, []bool{true, false})
	if tp.String() != "mixed(4x3)" {
		t.Fatalf("String = %q", tp.String())
	}
	if NewMixed([]int{2, 1}, []bool{true, true}).Wrap(1) {
		t.Fatal("1-wide dim must not wrap")
	}
}

func TestPanicsOnBadArguments(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	tp := NewTorus(2, 2)
	mustPanic("RankOf short", func() { tp.RankOf([]int{0}) })
	mustPanic("RankOf range", func() { tp.RankOf([]int{0, 5}) })
	mustPanic("CoordOf range", func() { tp.CoordOf(99, nil) })
	mustPanic("zero dims", func() { NewTorus() })
	mustPanic("bad dim", func() { NewTorus(0) })
	mustPanic("mixed mismatch", func() { NewMixed([]int{2}, []bool{true, false}) })
	h, _ := NewHierarchy(tp)
	mustPanic("bad level", func() { h.CubeShape(5) })
	mustPanic("bad block level", func() { h.BlockShape(-1) })
	mustPanic("long prefix", func() { h.BlockBox([]int{0, 0, 0}) })
	mustPanic("bad path", func() { h.NodeFromPath([]int{0, 0}) })
	mustPanic("bad box", func() { tp.Nodes(Box{Origin: []int{0, 0}, Shape: []int{3, 1}}) })
}

// Property: MinDistance satisfies the triangle inequality and symmetry.
func TestQuickMinDistanceMetric(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []int{2 + rng.Intn(4), 2 + rng.Intn(4)}
		var tp *Torus
		if rng.Intn(2) == 0 {
			tp = NewTorus(dims...)
		} else {
			tp = NewMesh(dims...)
		}
		a, b, c := rng.Intn(tp.N()), rng.Intn(tp.N()), rng.Intn(tp.N())
		dab, dba := tp.MinDistance(a, b), tp.MinDistance(b, a)
		if dab != dba {
			return false
		}
		return tp.MinDistance(a, c) <= dab+tp.MinDistance(b, c)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: NeighborRank moves exactly distance 1 and is inverted by the
// opposite direction.
func TestQuickNeighborRankInverse(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tp := NewTorus(2+rng.Intn(4), 2+rng.Intn(4))
		n := rng.Intn(tp.N())
		dim := rng.Intn(2)
		dir := rng.Intn(2)
		next, ok := tp.NeighborRank(n, dim, dir)
		if !ok {
			return true
		}
		if tp.MinDistance(n, next) != 1 {
			return false
		}
		back, ok := tp.NeighborRank(next, dim, 1-dir)
		return ok && back == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
