package topology

import "fmt"

// Mapping assigns tasks (or clusters) to nodes: task t runs on node
// Mapping[t]. A node-level mapping after clustering is one-to-one; a
// process-level mapping with concentration factor c maps c tasks per node.
type Mapping []int

// Identity returns the mapping task i -> node i.
func Identity(n int) Mapping {
	m := make(Mapping, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// Validate checks that every task is mapped to a node in [0, numNodes) and,
// when oneToOne is set, that no node holds more than one task.
func (m Mapping) Validate(numNodes int, oneToOne bool) error {
	seen := make([]int, numNodes)
	for t, n := range m {
		if n < 0 || n >= numNodes {
			return fmt.Errorf("topology: task %d mapped to node %d, want [0,%d)", t, n, numNodes)
		}
		seen[n]++
		if oneToOne && seen[n] > 1 {
			return fmt.Errorf("topology: node %d holds %d tasks, want at most 1", n, seen[n])
		}
	}
	return nil
}

// Inverse returns node -> task for a one-to-one mapping (-1 for empty
// nodes). Panics when two tasks share a node.
func (m Mapping) Inverse(numNodes int) []int {
	inv := make([]int, numNodes)
	for i := range inv {
		inv[i] = -1
	}
	for t, n := range m {
		if inv[n] != -1 {
			panic(fmt.Sprintf("topology: mapping is not one-to-one at node %d", n))
		}
		inv[n] = t
	}
	return inv
}

// Clone returns a copy of the mapping.
func (m Mapping) Clone() Mapping {
	return append(Mapping(nil), m...)
}

// ComposeNodes relabels the node side: task t moves to relabel[m[t]].
// Used when a mapping onto a sub-mesh is embedded into the full torus.
func (m Mapping) ComposeNodes(relabel []int) Mapping {
	out := make(Mapping, len(m))
	for t, n := range m {
		out[t] = relabel[n]
	}
	return out
}
