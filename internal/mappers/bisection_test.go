package mappers

import (
	"testing"

	"rahtm/internal/metrics"
	"rahtm/internal/topology"
	"rahtm/internal/workload"
)

func TestRecursiveBisectionBalanced(t *testing.T) {
	tp := topology.NewTorus(4, 4)
	w := workload.Halo2D(4, 4, 5)
	m := mustMap(t, RecursiveBisection{}, w, tp, 1)
	if err := m.Validate(tp.N(), true); err != nil {
		t.Fatal(err)
	}
}

func TestRecursiveBisectionConcentration(t *testing.T) {
	tp := topology.NewTorus(4, 4)
	w := workload.Halo2D(8, 8, 5)
	mustMap(t, RecursiveBisection{}, w, tp, 4) // mustMap checks capacity
}

func TestRecursiveBisectionKeepsCommunitiesTogether(t *testing.T) {
	// Recursive bisection's guarantee is cut quality: heavily connected
	// communities end up in the same sub-box. Four 4-task cliques with a
	// light inter-clique ring must beat random placement on hop-bytes.
	tp := topology.NewTorus(4, 4)
	g := workload.RandomNeighbors(16, 0, 1, 1) // 16 procs, empty graph
	for grp := 0; grp < 4; grp++ {
		base := grp * 4
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if i != j {
					g.Graph.AddTraffic(base+i, base+j, 50)
				}
			}
		}
		g.Graph.AddTraffic(base, (base+4)%16, 1)
	}
	bis := mustMap(t, RecursiveBisection{}, g, tp, 1)
	rnd := mustMap(t, Random{Seed: 2}, g, tp, 1)
	hbB := metrics.HopBytes(tp, g.Graph, bis)
	hbR := metrics.HopBytes(tp, g.Graph, rnd)
	if hbB >= hbR {
		t.Fatalf("bisection hop-bytes %v not better than random %v", hbB, hbR)
	}
	// Every clique must land inside a 2x2 sub-box (pairwise distance <= 2).
	for grp := 0; grp < 4; grp++ {
		base := grp * 4
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				if d := tp.MinDistance(bis[base+i], bis[base+j]); d > 2 {
					t.Fatalf("clique %d fragmented: distance %d", grp, d)
				}
			}
		}
	}
}

func TestRecursiveBisectionCutQuality(t *testing.T) {
	// Two cliques joined by one light edge must not be split down the
	// middle of a clique.
	tp := topology.NewTorus(2, 2)
	g := workload.RandomNeighbors(4, 0, 1, 1) // empty graph, 4 procs
	// Build two heavy pairs: {0,1} and {2,3}, light cross edge.
	g.Graph.AddTraffic(0, 1, 100)
	g.Graph.AddTraffic(2, 3, 100)
	g.Graph.AddTraffic(1, 2, 1)
	m := mustMap(t, RecursiveBisection{}, g, tp, 1)
	// The heavy pairs must land at distance 1 (same bisection half).
	if tp.MinDistance(m[0], m[1]) > 1 || tp.MinDistance(m[2], m[3]) > 1 {
		t.Fatalf("bisection split a heavy pair: %v", m)
	}
}

func TestRecursiveBisectionOddDimension(t *testing.T) {
	tp := topology.NewTorus(3, 2)
	w := workload.Halo2D(3, 2, 1)
	if _, err := (RecursiveBisection{}).MapProcs(w, tp, 1); err == nil {
		t.Fatal("odd dimension should fail cleanly")
	}
}
