package mappers

import (
	"testing"

	"rahtm/internal/metrics"
	"rahtm/internal/topology"
	"rahtm/internal/workload"
)

func mustMap(t *testing.T, m Mapper, w *workload.Workload, tp *topology.Torus, conc int) topology.Mapping {
	t.Helper()
	got, err := m.MapProcs(w, tp, conc)
	if err != nil {
		t.Fatalf("%s: %v", m.Name(), err)
	}
	if err := got.Validate(tp.N(), false); err != nil {
		t.Fatalf("%s: %v", m.Name(), err)
	}
	counts := make([]int, tp.N())
	for _, n := range got {
		counts[n]++
	}
	for node, c := range counts {
		if c != conc {
			t.Fatalf("%s: node %d holds %d processes, want %d", m.Name(), node, c, conc)
		}
	}
	return got
}

func TestDefaultPermutationPacksNodes(t *testing.T) {
	tp := topology.NewTorus(2, 2)
	w := workload.Halo2D(2, 4, 1) // 8 procs, conc 2
	m := mustMap(t, Default(tp), w, tp, 2)
	// ABT order, T fastest: ranks 0,1 share node 0; ranks 2,3 node 1...
	if m[0] != m[1] || m[0] != 0 {
		t.Fatalf("default mapping = %v", m)
	}
	if m[2] != m[3] || m[2] != 1 {
		t.Fatalf("default mapping = %v", m)
	}
}

func TestTFirstPermutationSpreads(t *testing.T) {
	tp := topology.NewTorus(2, 2)
	w := workload.Halo2D(2, 4, 1)
	m := mustMap(t, Permutation{Spec: "TAB"}, w, tp, 2)
	// T slowest: first 4 ranks cover all 4 nodes.
	seen := map[int]bool{}
	for r := 0; r < 4; r++ {
		seen[m[r]] = true
	}
	if len(seen) != 4 {
		t.Fatalf("TAB mapping does not spread: %v", m)
	}
}

func TestPermutationOrderMatters(t *testing.T) {
	tp := topology.NewTorus(4, 2)
	w := workload.Halo2D(2, 4, 1)
	ab := mustMap(t, Permutation{Spec: "AB"}, w, tp, 1)
	ba := mustMap(t, Permutation{Spec: "BA"}, w, tp, 1)
	// AB: rank 1 -> coord (0,1); BA: rank 1 -> coord (1,0).
	if ab[1] != tp.RankOf([]int{0, 1}) {
		t.Fatalf("AB mapping = %v", ab)
	}
	if ba[1] != tp.RankOf([]int{1, 0}) {
		t.Fatalf("BA mapping = %v", ba)
	}
}

func TestPermutationSpecErrors(t *testing.T) {
	tp := topology.NewTorus(2, 2)
	w := workload.Halo2D(2, 2, 1)
	cases := []string{"", "AAB", "A", "ABX", "ABZ", "ab!"}
	for _, spec := range cases {
		if _, err := (Permutation{Spec: spec}).MapProcs(w, tp, 1); err == nil {
			t.Fatalf("spec %q should fail", spec)
		}
	}
	// Missing T with concentration > 1.
	w8 := workload.Halo2D(2, 4, 1)
	if _, err := (Permutation{Spec: "AB"}).MapProcs(w8, tp, 2); err == nil {
		t.Fatal("spec without T should fail when concentration > 1")
	}
}

func TestHilbertMapperLocality(t *testing.T) {
	tp := topology.NewTorus(4, 4)
	w := workload.Halo2D(4, 4, 1)
	m := mustMap(t, Hilbert{}, w, tp, 1)
	// Consecutive ranks land on adjacent nodes (Hilbert adjacency).
	for r := 1; r < 16; r++ {
		if d := tp.MinDistance(m[r-1], m[r]); d != 1 {
			t.Fatalf("ranks %d,%d at distance %d (mapping %v)", r-1, r, d, m)
		}
	}
}

func TestHilbertMapperMixedDims(t *testing.T) {
	// 4x4x2: Hilbert over the two 4-dims, the 2-dim in plain order.
	tp := topology.NewTorus(4, 4, 2)
	w := workload.Halo2D(8, 4, 1)
	mustMap(t, Hilbert{}, w, tp, 1)
}

func TestHilbertRejectsNonPowerDims(t *testing.T) {
	tp := topology.NewTorus(3, 3)
	w := workload.Halo2D(3, 3, 1)
	if _, err := (Hilbert{}).MapProcs(w, tp, 1); err == nil {
		t.Fatal("expected failure without power-of-two dims")
	}
}

func TestRHTDefaultTiles(t *testing.T) {
	tp := topology.NewTorus(4, 4)
	w := workload.Halo2D(4, 4, 1)
	m := mustMap(t, RHT{}, w, tp, 1)
	// Default box 2x2: app tile 2x2; ranks (0,0),(0,1),(1,0),(1,1) share
	// the first box {nodes with coords < 2}.
	for _, r := range []int{0, 1, 4, 5} {
		c := tp.CoordOf(m[r], nil)
		if c[0] >= 2 || c[1] >= 2 {
			t.Fatalf("rank %d outside first box: coord %v", r, c)
		}
	}
}

func TestRHTExplicitShapes(t *testing.T) {
	tp := topology.NewTorus(4, 4)
	w := workload.Halo2D(2, 8, 1)
	m := mustMap(t, RHT{AppTile: []int{1, 8}, NodeBox: []int{2, 4}}, w, tp, 1)
	if err := m.Validate(tp.N(), true); err != nil {
		t.Fatal(err)
	}
}

func TestRHTErrors(t *testing.T) {
	tp := topology.NewTorus(4, 4)
	w := workload.Halo2D(4, 4, 1)
	if _, err := (RHT{NodeBox: []int{3, 2}}).MapProcs(w, tp, 1); err == nil {
		t.Fatal("non-dividing box should fail")
	}
	if _, err := (RHT{AppTile: []int{3, 1}}).MapProcs(w, tp, 1); err == nil {
		t.Fatal("non-dividing tile should fail")
	}
	if _, err := (RHT{AppTile: []int{2, 1}}).MapProcs(w, tp, 1); err == nil {
		t.Fatal("wrong-volume tile should fail")
	}
	noGrid := workload.RandomNeighbors(16, 3, 1, 1)
	if _, err := (RHT{}).MapProcs(noGrid, tp, 1); err == nil {
		t.Fatal("gridless workload should fail")
	}
}

func TestGreedyHopBytesReducesHopBytes(t *testing.T) {
	tp := topology.NewTorus(4, 4)
	w := workload.Halo2D(4, 4, 5)
	greedy := mustMap(t, GreedyHopBytes{}, w, tp, 1)
	random := mustMap(t, Random{Seed: 1}, w, tp, 1)
	hbG := metrics.HopBytes(tp, w.Graph, greedy)
	hbR := metrics.HopBytes(tp, w.Graph, random)
	if hbG >= hbR {
		t.Fatalf("greedy hop-bytes %v not better than random %v", hbG, hbR)
	}
}

func TestRandomDeterministicBySeed(t *testing.T) {
	tp := topology.NewTorus(2, 2)
	w := workload.Halo2D(2, 4, 1)
	a := mustMap(t, Random{Seed: 5}, w, tp, 2)
	b := mustMap(t, Random{Seed: 5}, w, tp, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different mapping")
		}
	}
}

func TestSizeValidation(t *testing.T) {
	tp := topology.NewTorus(2, 2)
	w := workload.Halo2D(2, 2, 1) // 4 procs
	if _, err := Default(tp).MapProcs(w, tp, 2); err == nil {
		t.Fatal("expected size mismatch error")
	}
	if _, err := Default(tp).MapProcs(w, tp, 0); err == nil {
		t.Fatal("expected concentration error")
	}
}

func TestNodeGraphAggregation(t *testing.T) {
	tp := topology.NewTorus(2, 2)
	w := workload.Halo2D(2, 4, 2) // 8 procs, conc 2
	m := mustMap(t, Default(tp), w, tp, 2)
	ng := NodeGraph(w.Graph, m, tp.N())
	if ng.N() != 4 {
		t.Fatalf("node graph N = %d", ng.N())
	}
	// Total node-level volume <= process volume (co-located traffic drops).
	if ng.TotalVolume() > w.Graph.TotalVolume() {
		t.Fatal("aggregation created volume")
	}
	if ng.TotalVolume() == w.Graph.TotalVolume() {
		t.Fatal("default packing should make some traffic node-local")
	}
}
