// Package mappers provides the baseline task-mapping strategies the paper
// compares RAHTM against (§IV):
//
//   - dimension-permutation mappings (ABCDET default, TABCDE, ACEBDT, or any
//     permutation of the torus dimensions plus the in-node T dimension);
//   - the Hilbert-curve mapping over the square sub-space of the torus;
//   - Rubik-style hierarchical tiling (RHT): application-grid tiles mapped
//     onto topology sub-boxes;
//   - greedy hop-bytes placement (the routing-unaware heuristic family);
//   - random placement.
//
// All mappers produce process-to-node mappings with exactly `concentration`
// processes per node.
package mappers

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"rahtm/internal/graph"
	"rahtm/internal/hilbert"
	"rahtm/internal/topology"
	"rahtm/internal/workload"
)

// Mapper turns a workload into a process-to-node mapping on a topology with
// the given concentration factor (processes per node).
type Mapper interface {
	Name() string
	MapProcs(w *workload.Workload, t *topology.Torus, conc int) (topology.Mapping, error)
}

// checkSize validates the process count against the topology capacity.
func checkSize(w *workload.Workload, t *topology.Torus, conc int) error {
	if conc < 1 {
		return fmt.Errorf("mappers: concentration %d < 1", conc)
	}
	if w.Procs() != t.N()*conc {
		return fmt.Errorf("mappers: %d processes != %d nodes x %d per node", w.Procs(), t.N(), conc)
	}
	return nil
}

// Permutation assigns consecutive ranks by traversing the space in the
// given dimension order, rightmost letter fastest — exactly BG/Q's map
// strings. Letters A..Z name torus dimensions 0..; T names the in-node
// dimension (cores).
type Permutation struct {
	Spec string // e.g. "ABCDET", "TABCDE", "ACEBDT"
}

// Name implements Mapper.
func (p Permutation) Name() string { return p.Spec }

// parseSpec resolves the spec into a dimension sequence; nd is the torus
// dimensionality and the value nd denotes T.
func (p Permutation) parseSpec(nd int, conc int) ([]int, error) {
	spec := strings.ToUpper(strings.TrimSpace(p.Spec))
	if spec == "" {
		return nil, fmt.Errorf("mappers: empty permutation spec")
	}
	seen := make(map[int]bool)
	var seq []int
	for _, r := range spec {
		var d int
		switch {
		case r == 'T':
			d = nd
		case r >= 'A' && r <= 'Z':
			d = int(r - 'A')
			if d >= nd {
				return nil, fmt.Errorf("mappers: letter %c exceeds %d topology dimensions", r, nd)
			}
		default:
			return nil, fmt.Errorf("mappers: bad letter %q in spec %q", r, p.Spec)
		}
		if seen[d] {
			return nil, fmt.Errorf("mappers: duplicate letter %c in spec %q", r, p.Spec)
		}
		seen[d] = true
		seq = append(seq, d)
	}
	for d := 0; d < nd; d++ {
		if !seen[d] {
			return nil, fmt.Errorf("mappers: spec %q misses dimension %c", p.Spec, 'A'+rune(d))
		}
	}
	if conc > 1 && !seen[nd] {
		return nil, fmt.Errorf("mappers: spec %q misses T with concentration %d", p.Spec, conc)
	}
	return seq, nil
}

// MapProcs implements Mapper.
func (p Permutation) MapProcs(w *workload.Workload, t *topology.Torus, conc int) (topology.Mapping, error) {
	if err := checkSize(w, t, conc); err != nil {
		return nil, err
	}
	nd := t.NumDims()
	seq, err := p.parseSpec(nd, conc)
	if err != nil {
		return nil, err
	}
	sizeOf := func(d int) int {
		if d == nd {
			return conc
		}
		return t.Dim(d)
	}
	m := make(topology.Mapping, w.Procs())
	coord := make([]int, nd)
	for rank := 0; rank < w.Procs(); rank++ {
		r := rank
		for i := len(seq) - 1; i >= 0; i-- {
			d := seq[i]
			digit := r % sizeOf(d)
			r /= sizeOf(d)
			if d < nd {
				coord[d] = digit
			}
		}
		m[rank] = t.RankOf(coord)
	}
	return m, nil
}

// Hilbert traverses the largest group of equal power-of-two dimensions in
// Hilbert-curve order (ABCD on BG/Q); remaining dimensions and the in-node
// T dimension follow in plain dimension order, T fastest (the paper's
// "ET order").
type Hilbert struct{}

// Name implements Mapper.
func (Hilbert) Name() string { return "Hilbert" }

// MapProcs implements Mapper.
func (Hilbert) MapProcs(w *workload.Workload, t *topology.Torus, conc int) (topology.Mapping, error) {
	if err := checkSize(w, t, conc); err != nil {
		return nil, err
	}
	nd := t.NumDims()
	// Group dimensions by size; pick the power-of-two size >= 2 with the
	// most dimensions (ties: larger size).
	bySize := make(map[int][]int)
	for d := 0; d < nd; d++ {
		k := t.Dim(d)
		if k >= 2 && k&(k-1) == 0 {
			bySize[k] = append(bySize[k], d)
		}
	}
	bestSize := 0
	for k, dims := range bySize {
		if bestSize == 0 || len(dims) > len(bySize[bestSize]) ||
			(len(dims) == len(bySize[bestSize]) && k > bestSize) {
			bestSize = k
		}
	}
	if bestSize == 0 {
		return nil, fmt.Errorf("mappers: no power-of-two dimensions for the Hilbert traversal")
	}
	sq := bySize[bestSize]
	bits := 0
	for 1<<bits < bestSize {
		bits++
	}
	var rest []int
	inSq := make(map[int]bool)
	for _, d := range sq {
		inSq[d] = true
	}
	for d := 0; d < nd; d++ {
		if !inSq[d] {
			rest = append(rest, d)
		}
	}
	restVol := 1
	for _, d := range rest {
		restVol *= t.Dim(d)
	}
	sqVol := 1
	for range sq {
		sqVol *= bestSize
	}
	if sqVol*restVol != t.N() {
		return nil, fmt.Errorf("mappers: internal volume mismatch")
	}

	m := make(topology.Mapping, w.Procs())
	coord := make([]int, nd)
	for rank := 0; rank < w.Procs(); rank++ {
		r := rank / conc // node visit index; T fastest
		hIdx := r / restVol
		restIdx := r % restVol
		pt := hilbert.Point(bits, len(sq), uint64(hIdx))
		for i, d := range sq {
			coord[d] = pt[i]
		}
		for i := len(rest) - 1; i >= 0; i-- {
			d := rest[i]
			coord[d] = restIdx % t.Dim(d)
			restIdx /= t.Dim(d)
		}
		m[rank] = t.RankOf(coord)
	}
	return m, nil
}

// RHT is Rubik-style hierarchical tiling: the application grid is cut into
// tiles, the topology into sub-boxes, and tile k maps onto box k (both
// row-major), processes row-major within the tile, cores fastest.
type RHT struct {
	// AppTile is the application-grid tile shape; nil picks the most
	// cubic tile of the right volume automatically.
	AppTile []int
	// NodeBox is the topology sub-box shape; nil picks min(dim, 2) per
	// dimension (the topology's natural 2-ary building block).
	NodeBox []int
}

// Name implements Mapper.
func (RHT) Name() string { return "RHT" }

// MapProcs implements Mapper.
func (r RHT) MapProcs(w *workload.Workload, t *topology.Torus, conc int) (topology.Mapping, error) {
	if err := checkSize(w, t, conc); err != nil {
		return nil, err
	}
	if w.Grid == nil {
		return nil, fmt.Errorf("mappers: RHT needs a workload grid")
	}
	box := r.NodeBox
	if box == nil {
		box = make([]int, t.NumDims())
		for d := range box {
			box[d] = t.Dim(d)
			if box[d] > 2 {
				box[d] = 2
			}
		}
	}
	boxVol := 1
	boxGrid := make([]int, t.NumDims())
	for d := range box {
		if box[d] < 1 || t.Dim(d)%box[d] != 0 {
			return nil, fmt.Errorf("mappers: RHT box %v does not divide topology %v", box, t)
		}
		boxVol *= box[d]
		boxGrid[d] = t.Dim(d) / box[d]
	}
	tileVol := boxVol * conc
	tile := r.AppTile
	if tile == nil {
		tile = mostCubicTile(w.Grid, tileVol)
		if tile == nil {
			return nil, fmt.Errorf("mappers: no tile of volume %d fits grid %v", tileVol, w.Grid)
		}
	}
	tVol := 1
	tileGrid := make([]int, len(w.Grid))
	for d := range tile {
		if d >= len(w.Grid) || tile[d] < 1 || w.Grid[d]%tile[d] != 0 {
			return nil, fmt.Errorf("mappers: RHT tile %v does not divide grid %v", tile, w.Grid)
		}
		tVol *= tile[d]
		tileGrid[d] = w.Grid[d] / tile[d]
	}
	if tVol != tileVol {
		return nil, fmt.Errorf("mappers: tile %v volume %d, want %d", tile, tVol, tileVol)
	}

	// Rank -> (tile index, offset in tile) on the application grid.
	m := make(topology.Mapping, w.Procs())
	appCoord := make([]int, len(w.Grid))
	nodeCoord := make([]int, t.NumDims())
	for rank := 0; rank < w.Procs(); rank++ {
		// Decode the rank on the application grid, row-major.
		rr := rank
		for d := len(w.Grid) - 1; d >= 0; d-- {
			appCoord[d] = rr % w.Grid[d]
			rr /= w.Grid[d]
		}
		// Tile index (row-major over tileGrid) and offset within tile.
		tileIdx, offIdx := 0, 0
		for d := 0; d < len(w.Grid); d++ {
			tileIdx = tileIdx*tileGrid[d] + appCoord[d]/tile[d]
			offIdx = offIdx*tile[d] + appCoord[d]%tile[d]
		}
		// Box index equals tile index; node within box from offset.
		nodeInBox := offIdx / conc
		bIdx := tileIdx
		for d := t.NumDims() - 1; d >= 0; d-- {
			boxPos := bIdx % boxGrid[d]
			bIdx /= boxGrid[d]
			nodeCoord[d] = boxPos * box[d]
		}
		nb := nodeInBox
		for d := t.NumDims() - 1; d >= 0; d-- {
			nodeCoord[d] += nb % box[d]
			nb /= box[d]
		}
		m[rank] = t.RankOf(nodeCoord)
	}
	return m, nil
}

// mostCubicTile picks the tile shape of the given volume dividing the grid
// with the smallest aspect ratio.
func mostCubicTile(grid []int, vol int) []int {
	var best []int
	bestScore := 0
	var rec func(d, rem int, cur []int)
	rec = func(d, rem int, cur []int) {
		if d == len(grid) {
			if rem != 1 {
				return
			}
			lo, hi := cur[0], cur[0]
			for _, s := range cur {
				if s < lo {
					lo = s
				}
				if s > hi {
					hi = s
				}
			}
			score := hi * 1000 / lo // lower is squarer
			if best == nil || score < bestScore {
				best = append([]int(nil), cur...)
				bestScore = score
			}
			return
		}
		for s := 1; s <= grid[d] && s <= rem; s++ {
			if grid[d]%s != 0 || rem%s != 0 {
				continue
			}
			rec(d+1, rem/s, append(cur, s))
		}
	}
	rec(0, vol, nil)
	return best
}

// GreedyHopBytes places processes one at a time (heaviest communicators
// first) onto the free node slot minimizing the added hop-bytes — the
// routing-unaware greedy heuristic family the paper contrasts with.
type GreedyHopBytes struct{}

// Name implements Mapper.
func (GreedyHopBytes) Name() string { return "greedy-hop-bytes" }

// MapProcs implements Mapper.
func (GreedyHopBytes) MapProcs(w *workload.Workload, t *topology.Torus, conc int) (topology.Mapping, error) {
	if err := checkSize(w, t, conc); err != nil {
		return nil, err
	}
	g := w.Graph
	n := w.Procs()
	// Order: total symmetric volume descending, rank ascending tie-break.
	vol := make([]float64, n)
	g.EachFlow(func(s, d int, v float64) {
		vol[s] += v
		vol[d] += v
	})
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return vol[order[a]] > vol[order[b]] })

	// Symmetric adjacency so both directions count once each.
	adj := make([]map[int]float64, n)
	for i := range adj {
		adj[i] = make(map[int]float64)
	}
	g.EachFlow(func(s, d int, v float64) {
		adj[s][d] += v
		adj[d][s] += v
	})

	free := make([]int, t.N()) // remaining capacity per node
	for i := range free {
		free[i] = conc
	}
	m := make(topology.Mapping, n)
	placed := make([]bool, n)
	for _, task := range order {
		bestNode, bestCost := -1, 0.0
		for node := 0; node < t.N(); node++ {
			if free[node] == 0 {
				continue
			}
			cost := 0.0
			for nb, v := range adj[task] {
				if placed[nb] {
					cost += v * float64(t.MinDistance(node, m[nb]))
				}
			}
			if bestNode == -1 || cost < bestCost {
				bestNode, bestCost = node, cost
			}
		}
		m[task] = bestNode
		free[bestNode]--
		placed[task] = true
	}
	return m, nil
}

// Random shuffles processes uniformly over node slots.
type Random struct {
	Seed int64
}

// Name implements Mapper.
func (Random) Name() string { return "random" }

// MapProcs implements Mapper.
func (r Random) MapProcs(w *workload.Workload, t *topology.Torus, conc int) (topology.Mapping, error) {
	if err := checkSize(w, t, conc); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(r.Seed))
	slots := make([]int, 0, w.Procs())
	for node := 0; node < t.N(); node++ {
		for c := 0; c < conc; c++ {
			slots = append(slots, node)
		}
	}
	rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
	return topology.Mapping(slots), nil
}

// Default returns the machine's default mapping (ABCDET-style: dimension
// order with T fastest) for a topology of any dimensionality.
func Default(t *topology.Torus) Permutation {
	letters := make([]byte, t.NumDims()+1)
	for d := 0; d < t.NumDims(); d++ {
		letters[d] = byte('A' + d)
	}
	letters[t.NumDims()] = 'T'
	return Permutation{Spec: string(letters)}
}

// aggregateToNodes coarsens a process graph to node level for a given
// process mapping — what the network actually sees.
func aggregateToNodes(g *graph.Comm, m topology.Mapping, numNodes int) *graph.Comm {
	out := graph.New(numNodes)
	g.EachFlow(func(s, d int, vol float64) {
		out.AddTraffic(m[s], m[d], vol)
	})
	return out
}

// NodeGraph exposes aggregateToNodes for callers computing node-level
// metrics of a process mapping.
func NodeGraph(g *graph.Comm, m topology.Mapping, numNodes int) *graph.Comm {
	return aggregateToNodes(g, m, numNodes)
}
