package mappers

import (
	"fmt"
	"sort"

	"rahtm/internal/graph"
	"rahtm/internal/topology"
	"rahtm/internal/workload"
)

// RecursiveBisection is a Chaco-style topology-aware mapper: it recursively
// bisects the task graph (minimizing cut volume with a Kernighan-Lin-style
// refinement) in lock-step with a geometric bisection of the topology along
// its longest dimension. It is topology-aware but routing-unaware — the
// classic partitioning family the paper positions RAHTM against.
type RecursiveBisection struct {
	// Passes is the number of KL refinement passes per bisection (0 = 4).
	Passes int
	// Seed reserved for future randomized refinement; the implementation
	// is currently deterministic.
	Seed int64
}

// Name implements Mapper.
func (RecursiveBisection) Name() string { return "recursive-bisection" }

// MapProcs implements Mapper.
func (r RecursiveBisection) MapProcs(w *workload.Workload, t *topology.Torus, conc int) (topology.Mapping, error) {
	if err := checkSize(w, t, conc); err != nil {
		return nil, err
	}
	passes := r.Passes
	if passes <= 0 {
		passes = 4
	}
	m := make(topology.Mapping, w.Procs())
	tasks := make([]int, w.Procs())
	for i := range tasks {
		tasks[i] = i
	}
	box := topology.Box{Origin: make([]int, t.NumDims()), Shape: t.Dims()}
	if err := bisectAssign(w.Graph, t, tasks, box, conc, passes, m); err != nil {
		return nil, err
	}
	return m, nil
}

// bisectAssign recursively splits tasks and box together until the box is a
// single node, then assigns all (conc) remaining tasks to it.
func bisectAssign(g *graph.Comm, t *topology.Torus, tasks []int, box topology.Box, conc, passes int, m topology.Mapping) error {
	if box.Size() == 1 {
		if len(tasks) != conc {
			return fmt.Errorf("mappers: bisection imbalance: %d tasks for one node (conc %d)", len(tasks), conc)
		}
		coord := box.Origin
		node := t.RankOf(coord)
		for _, task := range tasks {
			m[task] = node
		}
		return nil
	}
	// Split the box along its longest dimension.
	dim := 0
	for d := 1; d < len(box.Shape); d++ {
		if box.Shape[d] > box.Shape[dim] {
			dim = d
		}
	}
	if box.Shape[dim]%2 != 0 {
		return fmt.Errorf("mappers: bisection needs even dimensions, box %v", box.Shape)
	}
	half := box.Shape[dim] / 2
	loBox := topology.Box{Origin: append([]int(nil), box.Origin...), Shape: append([]int(nil), box.Shape...)}
	loBox.Shape[dim] = half
	hiBox := topology.Box{Origin: append([]int(nil), box.Origin...), Shape: append([]int(nil), box.Shape...)}
	hiBox.Origin[dim] += half
	hiBox.Shape[dim] -= half

	lo, hi := bisectGraph(g, tasks, passes)
	if err := bisectAssign(g, t, lo, loBox, conc, passes, m); err != nil {
		return err
	}
	return bisectAssign(g, t, hi, hiBox, conc, passes, m)
}

// bisectGraph splits tasks into two equal halves minimizing the cut volume,
// via greedy KL-style pairwise swap passes.
func bisectGraph(g *graph.Comm, tasks []int, passes int) (lo, hi []int) {
	n := len(tasks)
	halfN := n / 2
	side := make(map[int]bool, n) // true = hi
	for i, task := range tasks {
		side[task] = i >= halfN
	}
	inSet := make(map[int]bool, n)
	for _, task := range tasks {
		inSet[task] = true
	}
	// Symmetric adjacency restricted to the task set.
	adj := make(map[int]map[int]float64, n)
	for _, task := range tasks {
		adj[task] = make(map[int]float64)
	}
	for _, task := range tasks {
		nbs, vols := g.Edges(task)
		for i, nb := range nbs {
			if !inSet[int(nb)] {
				continue
			}
			v := vols[i]
			adj[task][int(nb)] += v
			adj[int(nb)][task] += v
		}
	}
	// D value: external - internal connectivity.
	dval := func(task int) float64 {
		d := 0.0
		for nb, v := range adj[task] {
			if side[nb] != side[task] {
				d += v
			} else {
				d -= v
			}
		}
		return d
	}
	for pass := 0; pass < passes; pass++ {
		// Greedy: pick the best cross swap; repeat with locking.
		locked := make(map[int]bool, n)
		improved := false
		for round := 0; round < halfN; round++ {
			bestGain := 0.0
			bestA, bestB := -1, -1
			var loSide, hiSide []int
			for _, task := range tasks {
				if locked[task] {
					continue
				}
				if side[task] {
					hiSide = append(hiSide, task)
				} else {
					loSide = append(loSide, task)
				}
			}
			// Rank candidates by D value and examine only the top few from
			// each side: the classic KL economization.
			sort.Slice(loSide, func(i, j int) bool { return dval(loSide[i]) > dval(loSide[j]) })
			sort.Slice(hiSide, func(i, j int) bool { return dval(hiSide[i]) > dval(hiSide[j]) })
			top := 8
			for i := 0; i < len(loSide) && i < top; i++ {
				for j := 0; j < len(hiSide) && j < top; j++ {
					a, b := loSide[i], hiSide[j]
					gain := dval(a) + dval(b) - 2*adj[a][b]
					if gain > bestGain+1e-12 {
						bestGain, bestA, bestB = gain, a, b
					}
				}
			}
			if bestA < 0 {
				break
			}
			side[bestA], side[bestB] = true, false
			locked[bestA], locked[bestB] = true, true
			improved = true
		}
		if !improved {
			break
		}
	}
	for _, task := range tasks {
		if side[task] {
			hi = append(hi, task)
		} else {
			lo = append(lo, task)
		}
	}
	return lo, hi
}
