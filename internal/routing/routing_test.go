package routing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rahtm/internal/graph"
	"rahtm/internal/topology"
)

// enumerateMinimalPathLoads is the brute-force oracle: it enumerates every
// minimal path (distance-decreasing hops) from src to dst and spreads vol
// uniformly over them.
func enumerateMinimalPathLoads(t *topology.Torus, src, dst int, vol float64, loads []float64) int {
	type step struct{ node, ch int }
	var paths [][]step
	var cur []step
	var dfs func(v int)
	dfs = func(v int) {
		if v == dst {
			paths = append(paths, append([]step(nil), cur...))
			return
		}
		dv := t.MinDistance(v, dst)
		for dim := 0; dim < t.NumDims(); dim++ {
			for dir := 0; dir < 2; dir++ {
				next, ok := t.NeighborRank(v, dim, dir)
				if !ok || t.MinDistance(next, dst) != dv-1 {
					continue
				}
				cur = append(cur, step{node: v, ch: t.ChannelID(v, dim, dir)})
				dfs(next)
				cur = cur[:len(cur)-1]
			}
		}
	}
	dfs(src)
	if len(paths) == 0 {
		return 0
	}
	w := vol / float64(len(paths))
	for _, p := range paths {
		for _, s := range p {
			loads[s.ch] += w
		}
	}
	return len(paths)
}

func TestMinimalAdaptiveTwoNodeLine(t *testing.T) {
	tp := topology.NewMesh(2)
	loads := make([]float64, tp.NumChannels())
	MinimalAdaptive{}.AddLoads(tp, 0, 1, 3, loads)
	if got := loads[tp.ChannelID(0, 0, topology.Plus)]; got != 3 {
		t.Fatalf("load = %v, want 3", got)
	}
	if TotalLoad(loads) != 3 {
		t.Fatalf("total = %v, want 3", TotalLoad(loads))
	}
}

func TestMinimalAdaptiveDiagonalSplit(t *testing.T) {
	tp := topology.NewMesh(2, 2)
	loads := make([]float64, tp.NumChannels())
	MinimalAdaptive{}.AddLoads(tp, tp.RankOf([]int{0, 0}), tp.RankOf([]int{1, 1}), 1, loads)
	// Two minimal paths; all four traversed edges carry 0.5.
	expect := map[int]float64{
		tp.ChannelID(tp.RankOf([]int{0, 0}), 0, topology.Plus): 0.5,
		tp.ChannelID(tp.RankOf([]int{0, 0}), 1, topology.Plus): 0.5,
		tp.ChannelID(tp.RankOf([]int{0, 1}), 0, topology.Plus): 0.5,
		tp.ChannelID(tp.RankOf([]int{1, 0}), 1, topology.Plus): 0.5,
	}
	for ch, want := range expect {
		if math.Abs(loads[ch]-want) > 1e-12 {
			t.Fatalf("channel %d load = %v, want %v (loads=%v)", ch, loads[ch], want, loads)
		}
	}
	if math.Abs(TotalLoad(loads)-2) > 1e-12 {
		t.Fatalf("total = %v, want 2", TotalLoad(loads))
	}
}

func TestMinimalAdaptiveTorusTie(t *testing.T) {
	// 4-ring, flow 0 -> 2: distance 2 both ways; split 50/50.
	tp := topology.NewTorus(4)
	loads := make([]float64, tp.NumChannels())
	MinimalAdaptive{}.AddLoads(tp, 0, 2, 1, loads)
	want := map[int]float64{
		tp.ChannelID(0, 0, topology.Plus):  0.5,
		tp.ChannelID(1, 0, topology.Plus):  0.5,
		tp.ChannelID(0, 0, topology.Minus): 0.5,
		tp.ChannelID(3, 0, topology.Minus): 0.5,
	}
	for ch, w := range want {
		if math.Abs(loads[ch]-w) > 1e-12 {
			t.Fatalf("channel %d load = %v, want %v", ch, loads[ch], w)
		}
	}
}

func TestMinimalAdaptiveDoubleWideLink(t *testing.T) {
	// 2-ary 1-torus: both physical links between the two nodes split the
	// flow (the paper's "2-ary torus = 2-ary mesh with double links").
	tp := topology.NewTorus(2)
	loads := make([]float64, tp.NumChannels())
	MinimalAdaptive{}.AddLoads(tp, 0, 1, 4, loads)
	p := loads[tp.ChannelID(0, 0, topology.Plus)]
	m := loads[tp.ChannelID(0, 0, topology.Minus)]
	if math.Abs(p-2) > 1e-12 || math.Abs(m-2) > 1e-12 {
		t.Fatalf("double link loads = %v/%v, want 2/2", p, m)
	}
}

func TestMinimalAdaptiveMatchesPathEnumeration(t *testing.T) {
	topos := []*topology.Torus{
		topology.NewMesh(3, 3),
		topology.NewMesh(2, 2, 2),
		topology.NewTorus(4, 4),
		topology.NewTorus(2, 4),
		topology.NewMixed([]int{4, 3}, []bool{true, false}),
	}
	rng := rand.New(rand.NewSource(5))
	for _, tp := range topos {
		for trial := 0; trial < 40; trial++ {
			s := rng.Intn(tp.N())
			d := rng.Intn(tp.N())
			if s == d {
				continue
			}
			vol := 1 + rng.Float64()*9
			got := make([]float64, tp.NumChannels())
			MinimalAdaptive{}.AddLoads(tp, s, d, vol, got)
			want := make([]float64, tp.NumChannels())
			enumerateMinimalPathLoads(tp, s, d, vol, want)
			for ch := range want {
				if math.Abs(got[ch]-want[ch]) > 1e-9 {
					t.Fatalf("%v: flow %d->%d vol %v: channel %d: DP %v, oracle %v",
						tp, s, d, vol, ch, got[ch], want[ch])
				}
			}
		}
	}
}

func TestDimOrderSimplePath(t *testing.T) {
	tp := topology.NewMesh(3, 3)
	loads := make([]float64, tp.NumChannels())
	DimOrder{}.AddLoads(tp, tp.RankOf([]int{0, 0}), tp.RankOf([]int{2, 2}), 1, loads)
	// Default order: dim 0 first, then dim 1: (0,0)->(1,0)->(2,0)->(2,1)->(2,2).
	want := []int{
		tp.ChannelID(tp.RankOf([]int{0, 0}), 0, topology.Plus),
		tp.ChannelID(tp.RankOf([]int{1, 0}), 0, topology.Plus),
		tp.ChannelID(tp.RankOf([]int{2, 0}), 1, topology.Plus),
		tp.ChannelID(tp.RankOf([]int{2, 1}), 1, topology.Plus),
	}
	for _, ch := range want {
		if loads[ch] != 1 {
			t.Fatalf("channel %d load = %v, want 1 (loads %v)", ch, loads[ch], loads)
		}
	}
	if TotalLoad(loads) != 4 {
		t.Fatalf("total = %v, want 4", TotalLoad(loads))
	}
}

func TestDimOrderCustomOrder(t *testing.T) {
	tp := topology.NewMesh(3, 3)
	loads := make([]float64, tp.NumChannels())
	DimOrder{Order: []int{1, 0}}.AddLoads(tp, tp.RankOf([]int{0, 0}), tp.RankOf([]int{1, 1}), 1, loads)
	// Dim 1 first: (0,0)->(0,1)->(1,1).
	if loads[tp.ChannelID(tp.RankOf([]int{0, 0}), 1, topology.Plus)] != 1 {
		t.Fatal("dim-1-first path not taken")
	}
	if loads[tp.ChannelID(tp.RankOf([]int{0, 0}), 0, topology.Plus)] != 0 {
		t.Fatal("dim 0 taken first despite custom order")
	}
}

func TestDimOrderTorusWrap(t *testing.T) {
	tp := topology.NewTorus(4)
	loads := make([]float64, tp.NumChannels())
	DimOrder{}.AddLoads(tp, 0, 3, 1, loads)
	// Minimal direction is Minus (one wrap hop).
	if loads[tp.ChannelID(0, 0, topology.Minus)] != 1 {
		t.Fatalf("wrap hop not used: %v", loads)
	}
	if TotalLoad(loads) != 1 {
		t.Fatalf("total = %v, want 1", TotalLoad(loads))
	}
}

func TestChannelLoadsAggregatesAndSkipsColocated(t *testing.T) {
	tp := topology.NewMesh(2, 2)
	g := graph.New(4)
	g.AddTraffic(0, 1, 5)
	g.AddTraffic(1, 0, 5)
	g.AddTraffic(2, 3, 7) // will be colocated
	m := topology.Mapping{0, 1, 2, 2}
	loads := ChannelLoads(tp, g, m, MinimalAdaptive{})
	if math.Abs(TotalLoad(loads)-10) > 1e-12 {
		t.Fatalf("total = %v, want 10 (colocated traffic must not hit network)", TotalLoad(loads))
	}
	if MCL(loads) != 5 {
		t.Fatalf("MCL = %v, want 5", MCL(loads))
	}
}

func TestStats(t *testing.T) {
	tp := topology.NewMesh(2)
	loads := make([]float64, tp.NumChannels())
	loads[tp.ChannelID(0, 0, topology.Plus)] = 4
	loads[tp.ChannelID(1, 0, topology.Minus)] = 2
	st := Stats(tp, loads)
	if st.MCL != 4 || st.Total != 6 || st.NumUsed != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if math.Abs(st.Mean-3) > 1e-12 { // 2 physical links
		t.Fatalf("mean = %v, want 3", st.Mean)
	}
}

func TestMaxChannelLoadFigure1Intuition(t *testing.T) {
	// The paper's Figure 1: on a 2x2 mesh with minimal adaptive routing,
	// placing the heavy pair on a diagonal halves its per-link load.
	tp := topology.NewMesh(2, 2)
	g := graph.New(4)
	g.AddTraffic(0, 1, 10) // heavy pair
	g.AddTraffic(2, 3, 1)
	adjacent := topology.Mapping{0, 1, 2, 3} // heavy pair adjacent
	diagonal := topology.Mapping{0, 3, 1, 2} // heavy pair on diagonal
	mclAdj := MaxChannelLoad(tp, g, adjacent, MinimalAdaptive{})
	mclDiag := MaxChannelLoad(tp, g, diagonal, MinimalAdaptive{})
	if mclAdj != 10 {
		t.Fatalf("adjacent MCL = %v, want 10", mclAdj)
	}
	if mclDiag >= mclAdj {
		t.Fatalf("diagonal placement (%v) should beat adjacent (%v)", mclDiag, mclAdj)
	}
	if math.Abs(mclDiag-5.5) > 1e-9 { // 5 from heavy split + 0.5 light split
		t.Fatalf("diagonal MCL = %v, want 5.5", mclDiag)
	}
}

// Property: total load equals volume times minimal distance for the
// minimal-adaptive model (every unit travels exactly the minimal hops).
func TestQuickTotalLoadIsVolumeTimesDistance(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := make([]int, 1+rng.Intn(3))
		for i := range dims {
			dims[i] = 2 + rng.Intn(4)
		}
		var tp *topology.Torus
		if rng.Intn(2) == 0 {
			tp = topology.NewTorus(dims...)
		} else {
			tp = topology.NewMesh(dims...)
		}
		s, d := rng.Intn(tp.N()), rng.Intn(tp.N())
		vol := 1 + rng.Float64()*5
		loads := make([]float64, tp.NumChannels())
		MinimalAdaptive{}.AddLoads(tp, s, d, vol, loads)
		want := vol * float64(tp.MinDistance(s, d))
		if s == d {
			want = 0
		}
		return math.Abs(TotalLoad(loads)-want) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: DOR total load also equals volume times minimal distance.
func TestQuickDORTotalLoad(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []int{2 + rng.Intn(4), 2 + rng.Intn(4)}
		tp := topology.NewTorus(dims...)
		s, d := rng.Intn(tp.N()), rng.Intn(tp.N())
		loads := make([]float64, tp.NumChannels())
		DimOrder{}.AddLoads(tp, s, d, 2, loads)
		want := 2 * float64(tp.MinDistance(s, d))
		if s == d {
			want = 0
		}
		return math.Abs(TotalLoad(loads)-want) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: loads are only ever placed on physically existing channels.
func TestQuickLoadsOnlyOnRealChannels(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tp := topology.NewMesh(1+rng.Intn(4), 1+rng.Intn(4))
		s, d := rng.Intn(tp.N()), rng.Intn(tp.N())
		loads := make([]float64, tp.NumChannels())
		MinimalAdaptive{}.AddLoads(tp, s, d, 1, loads)
		for ch, v := range loads {
			if v == 0 {
				continue
			}
			n, dim, dir := tp.DecodeChannel(ch)
			if !tp.ChannelExists(n, dim, dir) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
