package routing

// Sparse delta evaluation for incremental MCL scoring.
//
// The Phase 3 beam merger scores hundreds of thousands of candidate
// placements per merge step. Scoring with dense channel-load vectors costs
// O(NumChannels) per candidate just to copy, zero and scan the vector, even
// though each candidate only perturbs the handful of channels its flows
// actually traverse — on the paper's 16,384-process configuration the dense
// bookkeeping dwarfs the routing work itself. DeltaVec is the sparse
// accumulator that removes it (the sparse quadratic-assignment framing of
// Schulz & Träff): generation-stamped so Reset is O(touched), it records
// exactly which channels a candidate's flows deposit load on, letting the
// merger score a candidate as
//
//	max(baseMCL, max over touched ch of base[ch] + delta[ch])
//
// which is exact for non-negative deltas because untouched channels cannot
// exceed the base maximum.
//
// MinimalAdaptive.AddLoadsDelta mirrors AddLoads exactly — same direction
// and tie handling, same stencil-cache decisions, same DP, same deposit
// order — so for any flow the per-channel totals accumulated into a DeltaVec
// are bit-identical to the totals the dense path accumulates from a zeroed
// vector. Delta evaluation is therefore byte-exact against a full
// recomputation, not merely approximately equal.

import (
	"rahtm/internal/topology"
)

// DeltaVec is a sparse accumulator over a dense channel space. The zero
// value is not usable; construct with NewDeltaVec. Not safe for concurrent
// use — scoring workers each own one.
type DeltaVec struct {
	vals    []float64
	stamp   []uint64
	gen     uint64
	touched []int32
}

// NewDeltaVec returns an empty accumulator over n channels.
func NewDeltaVec(n int) *DeltaVec {
	return &DeltaVec{
		vals:  make([]float64, n),
		stamp: make([]uint64, n),
		gen:   1,
	}
}

// Size returns the dense channel-space size.
func (v *DeltaVec) Size() int { return len(v.vals) }

// Reset forgets all accumulated deltas in O(1).
func (v *DeltaVec) Reset() {
	v.gen++
	v.touched = v.touched[:0]
}

// Add accumulates x onto channel ch, marking it touched.
func (v *DeltaVec) Add(ch int, x float64) {
	if v.stamp[ch] != v.gen {
		v.stamp[ch] = v.gen
		v.vals[ch] = x
		v.touched = append(v.touched, int32(ch))
		return
	}
	v.vals[ch] += x
}

// Value returns the accumulated delta on ch (0 when untouched).
func (v *DeltaVec) Value(ch int) float64 {
	if v.stamp[ch] != v.gen {
		return 0
	}
	return v.vals[ch]
}

// Touched returns the channels with accumulated deltas, in first-touch
// order. The slice is owned by the DeltaVec and valid until the next Reset.
func (v *DeltaVec) Touched() []int32 { return v.touched }

// NumTouched returns how many distinct channels hold deltas.
func (v *DeltaVec) NumTouched() int { return len(v.touched) }

// Max returns the maximum accumulated delta (0 when nothing was touched,
// matching MCL of an otherwise-zero load vector).
func (v *DeltaVec) Max() float64 {
	max := 0.0
	for _, ch := range v.touched {
		if x := v.vals[ch]; x > max {
			max = x
		}
	}
	return max
}

// MaxOver returns max(baseMCL, max over touched ch of base[ch]+delta[ch]) —
// the MCL of base with the deltas applied, exact when baseMCL == MCL(base)
// and all deltas are non-negative.
func (v *DeltaVec) MaxOver(base []float64, baseMCL float64) float64 {
	max := baseMCL
	for _, ch := range v.touched {
		if x := base[ch] + v.vals[ch]; x > max {
			max = x
		}
	}
	return max
}

// AddTo adds the accumulated deltas into the dense vector loads.
func (v *DeltaVec) AddTo(loads []float64) {
	for _, ch := range v.touched {
		loads[ch] += v.vals[ch]
	}
}

// Snapshot is a frozen copy of a DeltaVec's contents: parallel channel and
// value slices. Each channel appears exactly once, so replaying a snapshot
// (AddSnapshot) reproduces the accumulated per-channel totals bit-exactly
// regardless of entry order.
type Snapshot struct {
	Ch  []int32
	Val []float64
}

// Snapshot freezes the current contents.
func (v *DeltaVec) Snapshot() Snapshot {
	s := Snapshot{
		Ch:  make([]int32, len(v.touched)),
		Val: make([]float64, len(v.touched)),
	}
	copy(s.Ch, v.touched)
	for i, ch := range v.touched {
		s.Val[i] = v.vals[ch]
	}
	return s
}

// AddSnapshot replays a snapshot into the accumulator with every channel id
// shifted by chOff (translation of the pattern to a different box origin).
func (v *DeltaVec) AddSnapshot(s Snapshot, chOff int) {
	for i, ch := range s.Ch {
		v.Add(int(ch)+chOff, s.Val[i])
	}
}

// AddSnapshotTo replays a snapshot into a dense load vector with every
// channel id shifted by chOff.
func (s Snapshot) AddSnapshotTo(loads []float64, chOff int) {
	for i, ch := range s.Ch {
		loads[int(ch)+chOff] += s.Val[i]
	}
}

// AddLoadsDelta is AddLoads depositing into a DeltaVec instead of a dense
// vector. For a given flow it makes exactly the stencil-cache decisions and
// deposits exactly the values, in the same order, as AddLoads would into a
// zeroed dense vector, so sparse and dense evaluation agree bit-for-bit.
// A negative vol subtracts. Safe for concurrent use with distinct DeltaVecs.
func (a MinimalAdaptive) AddLoadsDelta(t *topology.Torus, src, dst int, vol float64, dv *DeltaVec) {
	if src == dst || vol == 0 {
		return
	}
	nd := t.NumDims()
	sc := getScratch(nd)
	defer putScratch(sc)
	cs := t.CoordOf(src, sc.cs)
	cd := t.CoordOf(dst, sc.cd)
	numCombos := prepareDirs(t, cs, cd, sc)
	comboVol := vol / float64(numCombos)
	for mask := 0; mask < numCombos; mask++ {
		for b, d := range sc.ties {
			if mask&(1<<uint(b)) == 0 {
				sc.dirs[d] = topology.Plus
			} else {
				sc.dirs[d] = topology.Minus
			}
		}
		a.routeBoxDelta(t, cs, sc.dirs, sc.dists, comboVol, dv, sc)
	}
	sc.flushStencil(a)
}

// routeBoxDelta is routeBox with a DeltaVec sink: stencil cache when the
// displacement is cacheable, direct DP otherwise, with the same hit/miss
// accounting.
func (a MinimalAdaptive) routeBoxDelta(t *topology.Torus, cs, dirs, dists []int, vol float64, dv *DeltaVec, sc *scratch) {
	if !a.DisableCache {
		if s := sc.stencilFor(dists); s != nil {
			sc.nhits++
			s.applyDelta(t, cs, dirs, vol, dv, sc)
			return
		}
	}
	sc.nmisses++
	addMinimalBoxLoadsDelta(t, cs, dirs, dists, vol, dv, sc)
}

// applyDelta is stencil.apply depositing into a DeltaVec.
func (s *stencil) applyDelta(t *topology.Torus, cs, dirs []int, vol float64, dv *DeltaVec, sc *scratch) {
	nd := s.nd
	tab := sc.ints(s.tabLen)
	s.fillChanTab(t, cs, dirs, tab)
	chanOff := sc.chanOff
	for d := 0; d < nd; d++ {
		chanOff[d] = 2*d + dirs[d]
	}
	ei := 0
	for c := 0; c < s.cells; c++ {
		base := c * nd
		nodeCh := 0
		for d := 0; d < nd; d++ {
			nodeCh += tab[s.offs[base+d]]
		}
		for n := s.cnt[c]; n > 0; n-- {
			dv.Add(nodeCh+chanOff[s.dims[ei]], s.fracs[ei]*vol)
			ei++
		}
	}
}

// addMinimalBoxLoadsDelta is addMinimalBoxLoads depositing into a DeltaVec.
func addMinimalBoxLoadsDelta(t *topology.Torus, cs []int, dirs, dists []int, vol float64, dv *DeltaVec, sc *scratch) {
	nd := t.NumDims()
	total := 1
	shape := sc.shape
	for d := 0; d < nd; d++ {
		shape[d] = dists[d] + 1
		total *= shape[d]
	}
	strides := sc.strides
	s := 1
	for d := nd - 1; d >= 0; d-- {
		strides[d] = s
		s *= shape[d]
	}

	p := sc.floats(total)
	p[0] = vol
	u := sc.u
	for d := range u {
		u[d] = 0
	}
	coord := sc.coord
	for idx := 0; idx < total; idx++ {
		pu := p[idx]
		if pu == 0 {
			incOffset(u, shape)
			continue
		}
		remain := 0
		for d := 0; d < nd; d++ {
			remain += dists[d] - u[d]
		}
		if remain > 0 {
			for d := 0; d < nd; d++ {
				k := t.Dim(d)
				if dirs[d] == topology.Plus {
					coord[d] = (cs[d] + u[d]) % k
				} else {
					coord[d] = ((cs[d]-u[d])%k + k) % k
				}
			}
			node := t.RankOf(coord)
			inv := pu / float64(remain)
			for d := 0; d < nd; d++ {
				left := dists[d] - u[d]
				if left == 0 {
					continue
				}
				frac := inv * float64(left)
				dv.Add(t.ChannelID(node, d, dirs[d]), frac)
				p[idx+strides[d]] += frac
			}
		}
		incOffset(u, shape)
	}
}
