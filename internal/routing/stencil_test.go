package routing

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"rahtm/internal/graph"
	"rahtm/internal/topology"
)

// randomGraph builds a dense-ish random traffic pattern over n vertices.
func randomGraph(n int, seed int64) *graph.Comm {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for s := 0; s < n; s++ {
		for k := 0; k < 6; k++ {
			d := rng.Intn(n)
			if d != s {
				g.AddTraffic(s, d, 1+rng.Float64()*9)
			}
		}
	}
	return g
}

// TestStencilCacheEquivalence checks that the displacement-stencil cache
// reproduces the direct DP's channel loads on wrapped, unwrapped, and mixed
// shapes (including odd extents and tie-prone even extents).
func TestStencilCacheEquivalence(t *testing.T) {
	topos := []*topology.Torus{
		topology.NewTorus(4, 4, 4),
		topology.NewTorus(8, 8),
		topology.NewTorus(5, 4, 3),
		topology.NewMesh(4, 4, 4),
		topology.NewMesh(7, 3),
		topology.NewMixed([]int{4, 6}, []bool{true, false}),
	}
	for ti, tp := range topos {
		t.Run(fmt.Sprint(tp), func(t *testing.T) {
			g := randomGraph(tp.N(), int64(ti+1))
			m := topology.Mapping(rand.New(rand.NewSource(int64(ti + 100))).Perm(tp.N()))
			cached := ChannelLoads(tp, g, m, MinimalAdaptive{})
			direct := ChannelLoads(tp, g, m, MinimalAdaptive{DisableCache: true})
			if len(cached) != len(direct) {
				t.Fatalf("load vector lengths differ: %d vs %d", len(cached), len(direct))
			}
			for ch := range cached {
				diff := math.Abs(cached[ch] - direct[ch])
				scale := math.Max(1, math.Abs(direct[ch]))
				if diff > 1e-9*scale {
					t.Fatalf("channel %d: cached %.17g, direct %.17g", ch, cached[ch], direct[ch])
				}
			}
			if m1, m2 := MCL(cached), MCL(direct); math.Abs(m1-m2) > 1e-9*math.Max(1, m2) {
				t.Fatalf("MCL mismatch: cached %.17g, direct %.17g", m1, m2)
			}
		})
	}
}

// TestStencilCacheDeterministic checks the cached evaluator is bitwise
// reproducible call to call — the property the parallel scheduler's
// determinism guarantee rests on.
func TestStencilCacheDeterministic(t *testing.T) {
	tp := topology.NewTorus(4, 4, 4)
	g := randomGraph(tp.N(), 7)
	m := topology.Mapping(rand.New(rand.NewSource(7)).Perm(tp.N()))
	a := ChannelLoads(tp, g, m, MinimalAdaptive{})
	for rep := 0; rep < 3; rep++ {
		b := ChannelLoads(tp, g, m, MinimalAdaptive{})
		for ch := range a {
			if a[ch] != b[ch] {
				t.Fatalf("rep %d channel %d: %.17g != %.17g", rep, ch, a[ch], b[ch])
			}
		}
	}
}

// TestStencilCacheConcurrent hammers the cache from many goroutines (run
// under -race in CI) and checks every worker computes identical loads.
func TestStencilCacheConcurrent(t *testing.T) {
	tp := topology.NewTorus(6, 4, 2)
	g := randomGraph(tp.N(), 11)
	m := topology.Mapping(rand.New(rand.NewSource(11)).Perm(tp.N()))
	want := ChannelLoads(tp, g, m, MinimalAdaptive{})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				got := ChannelLoads(tp, g, m, MinimalAdaptive{})
				for ch := range got {
					if got[ch] != want[ch] {
						select {
						case errs <- fmt.Errorf("channel %d: %g != %g", ch, got[ch], want[ch]):
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

// TestStencilKeyBounds covers the fallback edges of the key encoding.
func TestStencilKeyBounds(t *testing.T) {
	if _, ok := stencilKey([]int{1, 2, 3}); !ok {
		t.Fatal("small vector must be encodable")
	}
	if _, ok := stencilKey(make([]int, maxStencilDims+1)); ok {
		t.Fatal("too many dims must fall back")
	}
	if _, ok := stencilKey([]int{maxStencilDist + 1}); ok {
		t.Fatal("oversized distance must fall back")
	}
	k1, _ := stencilKey([]int{1, 0})
	k2, _ := stencilKey([]int{0, 1})
	if k1 == k2 {
		t.Fatal("distinct distance vectors must get distinct keys")
	}
}

func BenchmarkMinimalAdaptiveStencil(b *testing.B) {
	tp := topology.NewTorus(8, 8, 8)
	g := randomGraph(tp.N(), 3)
	m := topology.Identity(tp.N())
	for _, cfg := range []struct {
		name string
		alg  MinimalAdaptive
	}{
		{"cached", MinimalAdaptive{}},
		{"direct", MinimalAdaptive{DisableCache: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				loads := ChannelLoads(tp, g, m, cfg.alg)
				_ = loads
			}
		})
	}
}
