package routing

import (
	"math"
	"math/rand"
	"testing"

	"rahtm/internal/topology"
)

// TestDeltaVecBasics exercises the sparse accumulator invariants.
func TestDeltaVecBasics(t *testing.T) {
	dv := NewDeltaVec(8)
	if dv.Size() != 8 || dv.NumTouched() != 0 || dv.Max() != 0 {
		t.Fatalf("fresh DeltaVec: size=%d touched=%d max=%v", dv.Size(), dv.NumTouched(), dv.Max())
	}
	dv.Add(3, 1.5)
	dv.Add(5, 2.0)
	dv.Add(3, 0.5)
	if got := dv.Value(3); got != 2.0 {
		t.Fatalf("Value(3) = %v, want 2", got)
	}
	if got := dv.Value(0); got != 0 {
		t.Fatalf("Value(0) = %v, want 0", got)
	}
	if dv.NumTouched() != 2 {
		t.Fatalf("NumTouched = %d, want 2", dv.NumTouched())
	}
	if dv.Max() != 2.0 {
		t.Fatalf("Max = %v, want 2", dv.Max())
	}
	base := []float64{0, 0, 0, 1, 0, 0.25, 0, 0}
	if got := dv.MaxOver(base, 1); got != 3.0 {
		t.Fatalf("MaxOver = %v, want 3", got)
	}
	dense := make([]float64, 8)
	dv.AddTo(dense)
	if dense[3] != 2.0 || dense[5] != 2.0 {
		t.Fatalf("AddTo: %v", dense)
	}

	dv.Reset()
	if dv.NumTouched() != 0 || dv.Value(3) != 0 {
		t.Fatalf("after Reset: touched=%d val3=%v", dv.NumTouched(), dv.Value(3))
	}
	dv.Add(3, 7)
	if dv.Value(3) != 7 || dv.NumTouched() != 1 {
		t.Fatalf("after Reset+Add: val3=%v touched=%d", dv.Value(3), dv.NumTouched())
	}
}

func TestDeltaVecSnapshotTranslate(t *testing.T) {
	dv := NewDeltaVec(32)
	dv.Add(2, 0.75)
	dv.Add(9, 1.25)
	dv.Add(2, 0.25)
	snap := dv.Snapshot()
	if len(snap.Ch) != 2 || len(snap.Val) != 2 {
		t.Fatalf("snapshot shape: %+v", snap)
	}

	// Replay shifted by 10 into a fresh accumulator.
	dv2 := NewDeltaVec(32)
	dv2.AddSnapshot(snap, 10)
	if dv2.Value(12) != 1.0 || dv2.Value(19) != 1.25 {
		t.Fatalf("AddSnapshot: ch12=%v ch19=%v", dv2.Value(12), dv2.Value(19))
	}

	dense := make([]float64, 32)
	snap.AddSnapshotTo(dense, 10)
	if dense[12] != 1.0 || dense[19] != 1.25 {
		t.Fatalf("AddSnapshotTo: %v %v", dense[12], dense[19])
	}

	// Snapshot is frozen: resetting the source must not affect it.
	dv.Reset()
	if snap.Val[0] != 1.0 && snap.Val[1] != 1.0 {
		t.Fatalf("snapshot mutated by Reset: %+v", snap)
	}
}

// TestAddLoadsDeltaBitwise asserts the core contract: for any flow, the
// per-channel totals deposited by AddLoadsDelta are bit-identical (==, not
// approximately equal) to the totals AddLoads deposits into a zeroed dense
// vector. Covers wrap ties (torus distance exactly k/2), mesh dimensions,
// and the cache-disabled direct DP.
func TestAddLoadsDeltaBitwise(t *testing.T) {
	shapes := []struct {
		name string
		topo *topology.Torus
	}{
		{"torus-4x4", topology.NewTorus(4, 4)},
		{"mesh-5x3", topology.NewMesh(5, 3)},
		{"torus-4x4x4", topology.NewTorus(4, 4, 4)},
		{"torus-4x4x4x4x2", topology.NewTorus(4, 4, 4, 4, 2)},
	}
	for _, alg := range []MinimalAdaptive{{}, {DisableCache: true}} {
		name := "cached"
		if alg.DisableCache {
			name = "direct"
		}
		for _, sh := range shapes {
			t.Run(name+"/"+sh.name, func(t *testing.T) {
				topo := sh.topo
				rng := rand.New(rand.NewSource(7))
				n := topo.N()
				dense := make([]float64, topo.NumChannels())
				dv := NewDeltaVec(topo.NumChannels())
				for trial := 0; trial < 50; trial++ {
					src := rng.Intn(n)
					dst := rng.Intn(n)
					vol := 1 + rng.Float64()*9
					for i := range dense {
						dense[i] = 0
					}
					alg.AddLoads(topo, src, dst, vol, dense)
					dv.Reset()
					alg.AddLoadsDelta(topo, src, dst, vol, dv)

					nz := 0
					for ch, want := range dense {
						if want != 0 {
							nz++
						}
						if got := dv.Value(ch); got != want {
							t.Fatalf("trial %d flow %d->%d vol %v: ch %d delta %v dense %v (diff %g)",
								trial, src, dst, vol, ch, got, want, math.Abs(got-want))
						}
					}
					if dv.NumTouched() < nz {
						t.Fatalf("trial %d: delta touched %d channels, dense has %d non-zero",
							trial, dv.NumTouched(), nz)
					}
					// And the sparse max equals the dense MCL bitwise.
					if got, want := dv.Max(), MCL(dense); got != want {
						t.Fatalf("trial %d: sparse max %v, dense MCL %v", trial, got, want)
					}
				}
			})
		}
	}
}

// TestAddLoadsDeltaTieEnumeration pins the wrap-tie case explicitly: on a
// 4-ring, distance 2 admits both directions and the flow splits.
func TestAddLoadsDeltaTieEnumeration(t *testing.T) {
	topo := topology.NewTorus(4)
	alg := MinimalAdaptive{}
	dense := make([]float64, topo.NumChannels())
	alg.AddLoads(topo, 0, 2, 8, dense)
	dv := NewDeltaVec(topo.NumChannels())
	alg.AddLoadsDelta(topo, 0, 2, 8, dv)
	for ch, want := range dense {
		if got := dv.Value(ch); got != want {
			t.Fatalf("ch %d: delta %v dense %v", ch, got, want)
		}
	}
	// Both directions carry half the volume across two hops each.
	if dv.NumTouched() != 4 {
		t.Fatalf("tie flow should touch 4 channels, touched %d", dv.NumTouched())
	}
}
