package routing

// Displacement-stencil cache for the minimal-adaptive evaluator.
//
// The proportional-split DP of addMinimalBoxLoads distributes a flow over
// the minimal box spanned by its per-dimension travel distances. The load
// *fraction* deposited on each channel of that box depends only on the
// distance vector — it is invariant under translation of the source, under
// the travel directions (the box is mirror-symmetric), and under the
// topology the box is embedded in. The stencil for a distance vector is
// therefore computed once — a list of (cell offset, dimension, fraction)
// triples normalized to unit volume — and applied to any concrete flow by
// translating cell offsets from the flow's source coordinate and scaling by
// its volume. This turns the per-flow DP (allocate + fill an O(box) flow
// array) into a linear walk over precomputed fractions, which is what the
// Phase 3 merge scorers and the annealing incremental evaluator spend most
// of their time in.

import (
	"sync"
	"sync/atomic"

	"rahtm/internal/telemetry"
	"rahtm/internal/topology"
)

const (
	// maxStencilDims bounds the dimensionality a stencil key can encode.
	maxStencilDims = 8
	// maxStencilDist bounds each per-dimension distance a key can encode.
	maxStencilDist = 255
	// maxStencilCells bounds the total cells held by the cache (~48 bytes
	// per cell); displacement vectors beyond the budget are routed by the
	// direct DP.
	maxStencilCells = 1 << 20
)

// stencil is the unit-volume channel-load pattern of one displacement,
// stored flat: cell c occupies offs[c*nd : (c+1)*nd] and owns cnt[c]
// consecutive (dims, fracs) entries. Cells appear in the DP's visit order,
// so applying a stencil deposits loads in exactly the order the direct DP
// would, keeping results reproducible run to run.
//
// offs holds table indices, not raw box offsets: the entry for cell c,
// dimension d is tabOff(d)+u where u is the cell's box offset along d and
// tabOff(d) is the running sum of shape[:d]. Resolving each index through a
// per-flow channel-base table (fillChanTab) turns the per-cell node-rank
// computation — wrap, RankOf, ChannelID — into nd loads and adds.
type stencil struct {
	nd    int
	cells int
	offs  []int32
	cnt   []int32
	dims  []int8
	fracs []float64
	// shape[d] = dists[d]+1; tabLen = sum(shape) = channel-base table size.
	shape  []int32
	tabLen int
}

// fillChanTab writes the channel-base table for applying s to one concrete
// flow: for dimension d and box offset u, tab[tabOff(d)+u] holds the
// channels-per-node multiple of the rank contribution of the wrapped
// coordinate cs[d] stepped u hops along dirs[d]. Summing one entry per
// dimension yields node*2*nd — the base of the node's channel-id block.
func (s *stencil) fillChanTab(t *topology.Torus, cs, dirs []int, tab []int) {
	ti := 0
	for d := 0; d < s.nd; d++ {
		k := t.Dim(d)
		m := 2 * s.nd * t.Stride(d)
		c := cs[d]
		if dirs[d] == topology.Plus {
			for u := 0; u < int(s.shape[d]); u++ {
				v := c + u
				if v >= k {
					v -= k
				}
				tab[ti] = m * v
				ti++
			}
		} else {
			for u := 0; u < int(s.shape[d]); u++ {
				v := c - u
				if v < 0 {
					v += k
				}
				tab[ti] = m * v
				ti++
			}
		}
	}
}

var (
	stencilCache sync.Map // uint64 key -> *stencil
	stencilCells atomic.Int64
)

// Cache telemetry. Hits and misses fire once per routed box — the hottest
// counter in the process — so the per-box path increments plain ints on the
// scratch and flushStencil drains them once per AddLoads/AddLoadsDelta call
// through striped local handles (claimed in the pool's New func; sync.Pool's
// per-P affinity spreads the stripes across CPUs). Builds and evictions are
// rare and use the counters directly. "Evictions" counts stencils that were
// built and then discarded: cell-budget rejections and lost publication
// races.
var (
	ctrStencilHits      = telemetry.Default.Counter(telemetry.CtrStencilHits)
	ctrStencilMisses    = telemetry.Default.Counter(telemetry.CtrStencilMisses)
	ctrStencilBuilds    = telemetry.Default.Counter(telemetry.CtrStencilBuilds)
	ctrStencilEvictions = telemetry.Default.Counter(telemetry.CtrStencilEvictions)
)

// stencilKey packs a distance vector into a cache key. ok is false when the
// vector does not fit the key encoding (too many dims or too far).
func stencilKey(dists []int) (key uint64, ok bool) {
	if len(dists) > maxStencilDims {
		return 0, false
	}
	key = uint64(len(dists))
	for _, x := range dists {
		if x > maxStencilDist {
			return 0, false
		}
		key = key<<8 | uint64(x)
	}
	return key, true
}

// stencilFor returns the cached stencil for dists, building and publishing
// it on first use. It returns nil when the cache budget is exhausted and the
// stencil is not already present.
func stencilFor(dists []int) *stencil {
	key, ok := stencilKey(dists)
	if !ok {
		return nil
	}
	return stencilForKey(key, dists)
}

// stencilFor is stencilFor fronted by the scratch's direct-mapped memo.
// Merge scoring routes millions of boxes drawn from a few hundred distinct
// displacement vectors, so the interface-hashing sync.Map lookup is
// measurable; the memo turns the common repeat into two array reads.
// Stencils are immutable and never unpublished once returned, so memo
// entries cannot go stale.
func (sc *scratch) stencilFor(dists []int) *stencil {
	key, ok := stencilKey(dists)
	if !ok {
		return nil
	}
	// Fibonacci-hash the key into a slot; keys are nonzero (they encode
	// the dimension count), so the zero-initialized memo never false-hits.
	slot := (key * 0x9e3779b97f4a7c15) >> (64 - stencilMemoBits)
	if sc.memoKey[slot] == key {
		return sc.memoVal[slot]
	}
	s := stencilForKey(key, dists)
	if s != nil {
		sc.memoKey[slot] = key
		sc.memoVal[slot] = s
	}
	return s
}

func stencilForKey(key uint64, dists []int) *stencil {
	if v, ok := stencilCache.Load(key); ok {
		return v.(*stencil)
	}
	s := buildStencil(dists)
	ctrStencilBuilds.Inc()
	if stencilCells.Add(int64(s.cells)) > maxStencilCells {
		stencilCells.Add(-int64(s.cells))
		ctrStencilEvictions.Inc()
		return nil
	}
	if prev, loaded := stencilCache.LoadOrStore(key, s); loaded {
		// Lost a build race; keep the published copy and return the cells.
		stencilCells.Add(-int64(s.cells))
		ctrStencilEvictions.Inc()
		return prev.(*stencil)
	}
	return s
}

// buildStencil runs the proportional-split DP once with unit volume,
// recording per-cell fractions instead of depositing channel loads.
func buildStencil(dists []int) *stencil {
	nd := len(dists)
	total := 1
	shape := make([]int, nd)
	for d := 0; d < nd; d++ {
		shape[d] = dists[d] + 1
		total *= shape[d]
	}
	strides := make([]int, nd)
	s := 1
	for d := nd - 1; d >= 0; d-- {
		strides[d] = s
		s *= shape[d]
	}

	st := &stencil{nd: nd, shape: make([]int32, nd)}
	tabOff := make([]int32, nd)
	for d := 0; d < nd; d++ {
		st.shape[d] = int32(shape[d])
		tabOff[d] = int32(st.tabLen)
		st.tabLen += shape[d]
	}
	p := make([]float64, total)
	p[0] = 1
	u := make([]int, nd)
	for idx := 0; idx < total; idx++ {
		pu := p[idx]
		if pu == 0 {
			incOffset(u, shape)
			continue
		}
		remain := 0
		for d := 0; d < nd; d++ {
			remain += dists[d] - u[d]
		}
		if remain > 0 {
			st.cells++
			for d := 0; d < nd; d++ {
				st.offs = append(st.offs, tabOff[d]+int32(u[d]))
			}
			n := int32(0)
			inv := pu / float64(remain)
			for d := 0; d < nd; d++ {
				left := dists[d] - u[d]
				if left == 0 {
					continue
				}
				frac := inv * float64(left)
				st.dims = append(st.dims, int8(d))
				st.fracs = append(st.fracs, frac)
				p[idx+strides[d]] += frac
				n++
			}
			st.cnt = append(st.cnt, n)
		}
		incOffset(u, shape)
	}
	return st
}

// apply translates the stencil to a concrete flow: source coordinate cs,
// travel directions dirs, vol units of traffic. sc supplies the channel-base
// table storage. Deposit order matches the direct DP exactly.
func (s *stencil) apply(t *topology.Torus, cs, dirs []int, vol float64, loads []float64, sc *scratch) {
	nd := s.nd
	tab := sc.ints(s.tabLen)
	s.fillChanTab(t, cs, dirs, tab)
	chanOff := sc.chanOff
	for d := 0; d < nd; d++ {
		chanOff[d] = 2*d + dirs[d]
	}
	ei := 0
	for c := 0; c < s.cells; c++ {
		base := c * nd
		nodeCh := 0
		for d := 0; d < nd; d++ {
			nodeCh += tab[s.offs[base+d]]
		}
		for n := s.cnt[c]; n > 0; n-- {
			loads[nodeCh+chanOff[s.dims[ei]]] += s.fracs[ei] * vol
			ei++
		}
	}
}

// scratch holds the per-call working storage of MinimalAdaptive.AddLoads,
// recycled through a pool so the hot evaluators (merge scorers, annealing
// swaps) do not allocate per flow.
type scratch struct {
	cs, cd, dirs, dists, coord, ties []int
	shape, strides, u                []int
	p                                []float64
	// tab holds a stencil's per-flow channel-base table; chanOff holds the
	// per-dimension channel-id remainder 2*d+dirs[d] for the current flow.
	tab, chanOff []int
	// memoKey/memoVal form a direct-mapped stencil memo that short-circuits
	// the process-wide sync.Map on repeat displacement vectors.
	memoKey [stencilMemoSize]uint64
	memoVal [stencilMemoSize]*stencil
	// nhits/nmisses batch the cache accounting of one AddLoads or
	// AddLoadsDelta call as plain ints; flushStencil drains them once per
	// call into the striped handles below.
	nhits, nmisses int64
	// hits/misses are striped process-wide cache-counter handles, claimed
	// once per scratch so the per-call flush adds without cross-CPU
	// contention.
	hits, misses *telemetry.LocalCounter
	// scopeKey/scopeHits/scopeMisses cache striped handles of a request
	// scope's counters; re-claimed only when the scratch migrates to a
	// different scope (scopeKey is the scope's hit counter, used as the
	// scope identity).
	scopeKey               *telemetry.Counter
	scopeHits, scopeMisses *telemetry.LocalCounter
}

// flushStencil drains the call-batched hit/miss counts: into the request
// scope's counters when the evaluator is scoped, into the process-wide
// striped handles otherwise. The scoped path costs one pointer compare per
// call; Local handles are claimed only when the scratch changes scopes.
func (sc *scratch) flushStencil(a MinimalAdaptive) {
	if sc.nhits == 0 && sc.nmisses == 0 {
		return
	}
	h, m := sc.hits, sc.misses
	if a.hits != nil {
		if sc.scopeKey != a.hits {
			sc.scopeKey = a.hits
			sc.scopeHits = a.hits.Local()
			sc.scopeMisses = a.misses.Local()
		}
		h, m = sc.scopeHits, sc.scopeMisses
	}
	h.Add(sc.nhits)
	m.Add(sc.nmisses)
	sc.nhits, sc.nmisses = 0, 0
}

const (
	stencilMemoBits = 7
	stencilMemoSize = 1 << stencilMemoBits
)

var scratchPool = sync.Pool{New: func() interface{} {
	return &scratch{
		hits:   ctrStencilHits.Local(),
		misses: ctrStencilMisses.Local(),
	}
}}

func getScratch(nd int) *scratch {
	sc := scratchPool.Get().(*scratch)
	sc.cs = grow(sc.cs, nd)
	sc.cd = grow(sc.cd, nd)
	sc.dirs = grow(sc.dirs, nd)
	sc.dists = grow(sc.dists, nd)
	sc.coord = grow(sc.coord, nd)
	sc.shape = grow(sc.shape, nd)
	sc.strides = grow(sc.strides, nd)
	sc.u = grow(sc.u, nd)
	sc.chanOff = grow(sc.chanOff, nd)
	sc.ties = sc.ties[:0]
	return sc
}

// ints returns an integer scratch of length n (contents undefined).
func (sc *scratch) ints(n int) []int {
	if cap(sc.tab) < n {
		sc.tab = make([]int, n)
	}
	return sc.tab[:n]
}

func putScratch(sc *scratch) { scratchPool.Put(sc) }

func grow(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// floats returns a zeroed float scratch of length n from the pool entry.
func (sc *scratch) floats(n int) []float64 {
	if cap(sc.p) < n {
		sc.p = make([]float64, n)
	}
	sc.p = sc.p[:n]
	for i := range sc.p {
		sc.p[i] = 0
	}
	return sc.p
}
