package routing

// Displacement-stencil cache for the minimal-adaptive evaluator.
//
// The proportional-split DP of addMinimalBoxLoads distributes a flow over
// the minimal box spanned by its per-dimension travel distances. The load
// *fraction* deposited on each channel of that box depends only on the
// distance vector — it is invariant under translation of the source, under
// the travel directions (the box is mirror-symmetric), and under the
// topology the box is embedded in. The stencil for a distance vector is
// therefore computed once — a list of (cell offset, dimension, fraction)
// triples normalized to unit volume — and applied to any concrete flow by
// translating cell offsets from the flow's source coordinate and scaling by
// its volume. This turns the per-flow DP (allocate + fill an O(box) flow
// array) into a linear walk over precomputed fractions, which is what the
// Phase 3 merge scorers and the annealing incremental evaluator spend most
// of their time in.

import (
	"sync"
	"sync/atomic"

	"rahtm/internal/telemetry"
	"rahtm/internal/topology"
)

const (
	// maxStencilDims bounds the dimensionality a stencil key can encode.
	maxStencilDims = 8
	// maxStencilDist bounds each per-dimension distance a key can encode.
	maxStencilDist = 255
	// maxStencilCells bounds the total cells held by the cache (~48 bytes
	// per cell); displacement vectors beyond the budget are routed by the
	// direct DP.
	maxStencilCells = 1 << 20
)

// stencil is the unit-volume channel-load pattern of one displacement,
// stored flat: cell c occupies offs[c*nd : (c+1)*nd] and owns cnt[c]
// consecutive (dims, fracs) entries. Cells appear in the DP's visit order,
// so applying a stencil deposits loads in exactly the order the direct DP
// would, keeping results reproducible run to run.
type stencil struct {
	nd    int
	cells int
	offs  []int32
	cnt   []int32
	dims  []int8
	fracs []float64
}

var (
	stencilCache sync.Map // uint64 key -> *stencil
	stencilCells atomic.Int64
)

// Cache telemetry. Hits and misses fire once per routed box — the hottest
// counter in the process — so each pooled scratch carries striped local
// handles (claimed in the pool's New func; sync.Pool's per-P affinity
// spreads the stripes across CPUs). Builds and evictions are rare and use
// the counters directly. "Evictions" counts stencils that were built and
// then discarded: cell-budget rejections and lost publication races.
var (
	ctrStencilHits      = telemetry.Default.Counter(telemetry.CtrStencilHits)
	ctrStencilMisses    = telemetry.Default.Counter(telemetry.CtrStencilMisses)
	ctrStencilBuilds    = telemetry.Default.Counter(telemetry.CtrStencilBuilds)
	ctrStencilEvictions = telemetry.Default.Counter(telemetry.CtrStencilEvictions)
)

// stencilKey packs a distance vector into a cache key. ok is false when the
// vector does not fit the key encoding (too many dims or too far).
func stencilKey(dists []int) (key uint64, ok bool) {
	if len(dists) > maxStencilDims {
		return 0, false
	}
	key = uint64(len(dists))
	for _, x := range dists {
		if x > maxStencilDist {
			return 0, false
		}
		key = key<<8 | uint64(x)
	}
	return key, true
}

// stencilFor returns the cached stencil for dists, building and publishing
// it on first use. It returns nil when the cache budget is exhausted and the
// stencil is not already present.
func stencilFor(dists []int) *stencil {
	key, ok := stencilKey(dists)
	if !ok {
		return nil
	}
	if v, ok := stencilCache.Load(key); ok {
		return v.(*stencil)
	}
	s := buildStencil(dists)
	ctrStencilBuilds.Inc()
	if stencilCells.Add(int64(s.cells)) > maxStencilCells {
		stencilCells.Add(-int64(s.cells))
		ctrStencilEvictions.Inc()
		return nil
	}
	if prev, loaded := stencilCache.LoadOrStore(key, s); loaded {
		// Lost a build race; keep the published copy and return the cells.
		stencilCells.Add(-int64(s.cells))
		ctrStencilEvictions.Inc()
		return prev.(*stencil)
	}
	return s
}

// buildStencil runs the proportional-split DP once with unit volume,
// recording per-cell fractions instead of depositing channel loads.
func buildStencil(dists []int) *stencil {
	nd := len(dists)
	total := 1
	shape := make([]int, nd)
	for d := 0; d < nd; d++ {
		shape[d] = dists[d] + 1
		total *= shape[d]
	}
	strides := make([]int, nd)
	s := 1
	for d := nd - 1; d >= 0; d-- {
		strides[d] = s
		s *= shape[d]
	}

	st := &stencil{nd: nd}
	p := make([]float64, total)
	p[0] = 1
	u := make([]int, nd)
	for idx := 0; idx < total; idx++ {
		pu := p[idx]
		if pu == 0 {
			incOffset(u, shape)
			continue
		}
		remain := 0
		for d := 0; d < nd; d++ {
			remain += dists[d] - u[d]
		}
		if remain > 0 {
			st.cells++
			for d := 0; d < nd; d++ {
				st.offs = append(st.offs, int32(u[d]))
			}
			n := int32(0)
			inv := pu / float64(remain)
			for d := 0; d < nd; d++ {
				left := dists[d] - u[d]
				if left == 0 {
					continue
				}
				frac := inv * float64(left)
				st.dims = append(st.dims, int8(d))
				st.fracs = append(st.fracs, frac)
				p[idx+strides[d]] += frac
				n++
			}
			st.cnt = append(st.cnt, n)
		}
		incOffset(u, shape)
	}
	return st
}

// apply translates the stencil to a concrete flow: source coordinate cs,
// travel directions dirs, vol units of traffic. coord is caller scratch of
// length nd.
func (s *stencil) apply(t *topology.Torus, cs, dirs []int, vol float64, loads []float64, coord []int) {
	nd := s.nd
	ei := 0
	for c := 0; c < s.cells; c++ {
		base := c * nd
		for d := 0; d < nd; d++ {
			u := int(s.offs[base+d])
			if u == 0 {
				coord[d] = cs[d]
				continue
			}
			k := t.Dim(d)
			if dirs[d] == topology.Plus {
				v := cs[d] + u
				if v >= k {
					v -= k
				}
				coord[d] = v
			} else {
				v := cs[d] - u
				if v < 0 {
					v += k
				}
				coord[d] = v
			}
		}
		node := t.RankOf(coord)
		for n := s.cnt[c]; n > 0; n-- {
			d := int(s.dims[ei])
			loads[t.ChannelID(node, d, dirs[d])] += s.fracs[ei] * vol
			ei++
		}
	}
}

// scratch holds the per-call working storage of MinimalAdaptive.AddLoads,
// recycled through a pool so the hot evaluators (merge scorers, annealing
// swaps) do not allocate per flow.
type scratch struct {
	cs, cd, dirs, dists, coord, ties []int
	shape, strides, u                []int
	p                                []float64
	// hits/misses are striped cache-counter handles, claimed once per
	// scratch so the per-flow hot path increments without cross-CPU
	// contention.
	hits, misses *telemetry.LocalCounter
}

var scratchPool = sync.Pool{New: func() interface{} {
	return &scratch{
		hits:   ctrStencilHits.Local(),
		misses: ctrStencilMisses.Local(),
	}
}}

func getScratch(nd int) *scratch {
	sc := scratchPool.Get().(*scratch)
	sc.cs = grow(sc.cs, nd)
	sc.cd = grow(sc.cd, nd)
	sc.dirs = grow(sc.dirs, nd)
	sc.dists = grow(sc.dists, nd)
	sc.coord = grow(sc.coord, nd)
	sc.shape = grow(sc.shape, nd)
	sc.strides = grow(sc.strides, nd)
	sc.u = grow(sc.u, nd)
	sc.ties = sc.ties[:0]
	return sc
}

func putScratch(sc *scratch) { scratchPool.Put(sc) }

func grow(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// floats returns a zeroed float scratch of length n from the pool entry.
func (sc *scratch) floats(n int) []float64 {
	if cap(sc.p) < n {
		sc.p = make([]float64, n)
	}
	sc.p = sc.p[:n]
	for i := range sc.p {
		sc.p[i] = 0
	}
	return sc.p
}
