// Package routing computes per-channel loads and the maximum channel load
// (MCL) metric for communication patterns mapped onto torus/mesh topologies.
//
// The central model is the paper's approximation of Blue Gene/Q's minimal
// adaptive routing (MAR): an oblivious routing that spreads each flow
// uniformly over *all* minimal (Manhattan) paths (§III-D of the RAHTM
// paper, following Towles & Dally's channel-load analysis for oblivious
// routing). Uniform-over-paths is computed exactly — without enumerating
// paths — by a dynamic program that, at every intermediate node, splits the
// remaining flow proportionally to the remaining distance in each
// dimension; that split induces exactly the uniform distribution over
// minimal paths.
//
// Dimension-order routing (DOR) is provided as the routing-oblivious
// comparator.
package routing

import (
	"fmt"
	"math"

	"rahtm/internal/graph"
	"rahtm/internal/telemetry"
	"rahtm/internal/topology"
)

// Algorithm turns a single flow into per-channel loads.
type Algorithm interface {
	// AddLoads routes vol units from node src to node dst on t, adding the
	// resulting channel loads into loads (len t.NumChannels()).
	AddLoads(t *topology.Torus, src, dst int, vol float64, loads []float64)
	// Name identifies the algorithm in reports.
	Name() string
}

// MinimalAdaptive is the balanced all-minimal-paths oblivious approximation
// of BG/Q's minimal adaptive routing. The zero value is ready to use, and
// routes through a process-wide displacement-stencil cache (see stencil.go)
// that memoizes the translation-invariant per-channel load fractions of
// each distance vector. The cache is safe for concurrent use.
type MinimalAdaptive struct {
	// DisableCache bypasses the displacement-stencil cache and the pooled
	// scratch fast path, recomputing every flow with the direct DP. Cached
	// and direct results agree up to floating-point rounding; the switch
	// exists for A/B validation and benchmarking.
	DisableCache bool

	// hits/misses, when set by WithScope, receive the stencil-cache
	// accounting instead of the process-wide counters, attributing the
	// evaluator's work to one request.
	hits, misses *telemetry.Counter
}

// Name implements Algorithm.
func (MinimalAdaptive) Name() string { return "minimal-adaptive" }

// WithScope returns a copy of a whose stencil-cache hit/miss accounting
// lands in scope's request-local registry instead of the process-wide
// counters (rahtm.Solve merges the request's delta back into the global
// registry at request end). A nil scope returns a unchanged, so call sites
// can pass telemetry.ScopeFrom(ctx) unconditionally.
func (a MinimalAdaptive) WithScope(scope *telemetry.Scope) MinimalAdaptive {
	if scope == nil {
		return a
	}
	a.hits = scope.Counter(telemetry.CtrStencilHits)
	a.misses = scope.Counter(telemetry.CtrStencilMisses)
	return a
}

// AddLoads implements Algorithm. A negative vol subtracts the flow's loads
// — incremental evaluators use this to retract a previously added flow.
// It is safe for concurrent use with distinct loads vectors.
func (a MinimalAdaptive) AddLoads(t *topology.Torus, src, dst int, vol float64, loads []float64) {
	if src == dst || vol == 0 {
		return
	}
	sc := getScratch(t.NumDims())
	defer putScratch(sc)
	cs := t.CoordOf(src, sc.cs)
	cd := t.CoordOf(dst, sc.cd)
	numCombos := prepareDirs(t, cs, cd, sc)
	comboVol := vol / float64(numCombos)
	for mask := 0; mask < numCombos; mask++ {
		for b, d := range sc.ties {
			if mask&(1<<uint(b)) == 0 {
				sc.dirs[d] = topology.Plus
			} else {
				sc.dirs[d] = topology.Minus
			}
		}
		a.routeBox(t, cs, sc.dirs, sc.dists, comboVol, loads, sc)
	}
	sc.flushStencil(a)
}

// prepareDirs fills sc.dirs/sc.dists with the per-dimension minimal
// direction choices for the flow cs→cd and records tied dimensions in
// sc.ties. Ties (torus distance exactly k/2) admit both directions; every
// combination of choices contributes the same number of minimal paths, so
// combinations weigh equally. Returns the number of direction combinations
// (2^len(ties)). Shared by the dense (AddLoads) and sparse (AddLoadsDelta)
// evaluators so their routing decisions cannot drift apart.
func prepareDirs(t *topology.Torus, cs, cd []int, sc *scratch) int {
	dirs, dists := sc.dirs, sc.dists
	numCombos := 1
	for d := 0; d < t.NumDims(); d++ {
		dirs[d], dists[d] = 0, 0
		x, y := cs[d], cd[d]
		if x == y {
			continue
		}
		k := t.Dim(d)
		if !t.Wrap(d) {
			if y > x {
				dirs[d], dists[d] = topology.Plus, y-x
			} else {
				dirs[d], dists[d] = topology.Minus, x-y
			}
			continue
		}
		plus := ((y-x)%k + k) % k
		minus := k - plus
		switch {
		case plus < minus:
			dirs[d], dists[d] = topology.Plus, plus
		case minus < plus:
			dirs[d], dists[d] = topology.Minus, minus
		default:
			// Tie: both directions are minimal; the caller enumerates.
			dirs[d], dists[d] = topology.Plus, plus
			sc.ties = append(sc.ties, d)
			numCombos *= 2
		}
	}
	return numCombos
}

// routeBox deposits one direction-combination's loads, through the stencil
// cache when the displacement is cacheable and the cache has room, and
// through the direct DP otherwise. Every box counts as a stencil-cache hit
// or miss (boxes routed with DisableCache count as misses: the cache did
// not serve them).
func (a MinimalAdaptive) routeBox(t *topology.Torus, cs, dirs, dists []int, vol float64, loads []float64, sc *scratch) {
	if !a.DisableCache {
		if s := sc.stencilFor(dists); s != nil {
			sc.nhits++
			s.apply(t, cs, dirs, vol, loads, sc)
			return
		}
	}
	sc.nmisses++
	addMinimalBoxLoads(t, cs, dirs, dists, vol, loads, sc)
}

// addMinimalBoxLoads runs the proportional-split DP over the minimal box
// defined by the source coordinate, the per-dimension travel directions and
// distances, adding channel loads for vol units of flow. sc supplies the
// working storage; pass a fresh scratch when calling outside the pool.
func addMinimalBoxLoads(t *topology.Torus, cs []int, dirs, dists []int, vol float64, loads []float64, sc *scratch) {
	nd := t.NumDims()
	// Box shape and local strides (row-major, last dim fastest).
	total := 1
	shape := sc.shape
	for d := 0; d < nd; d++ {
		shape[d] = dists[d] + 1
		total *= shape[d]
	}
	strides := sc.strides
	s := 1
	for d := nd - 1; d >= 0; d-- {
		strides[d] = s
		s *= shape[d]
	}

	p := sc.floats(total)
	p[0] = vol
	u := sc.u
	for d := range u {
		u[d] = 0
	}
	coord := sc.coord
	for idx := 0; idx < total; idx++ {
		pu := p[idx]
		if pu == 0 {
			// Still need to advance the offset counter.
			incOffset(u, shape)
			continue
		}
		remain := 0
		for d := 0; d < nd; d++ {
			remain += dists[d] - u[d]
		}
		if remain > 0 {
			// Torus rank of the node at offset u.
			for d := 0; d < nd; d++ {
				k := t.Dim(d)
				if dirs[d] == topology.Plus {
					coord[d] = (cs[d] + u[d]) % k
				} else {
					coord[d] = ((cs[d]-u[d])%k + k) % k
				}
			}
			node := t.RankOf(coord)
			inv := pu / float64(remain)
			for d := 0; d < nd; d++ {
				left := dists[d] - u[d]
				if left == 0 {
					continue
				}
				frac := inv * float64(left)
				loads[t.ChannelID(node, d, dirs[d])] += frac
				p[idx+strides[d]] += frac
			}
		}
		incOffset(u, shape)
	}
}

// incOffset advances a mixed-radix counter (row-major, last dim fastest).
func incOffset(u, shape []int) {
	for d := len(u) - 1; d >= 0; d-- {
		u[d]++
		if u[d] < shape[d] {
			return
		}
		u[d] = 0
	}
}

// DimOrder is deterministic dimension-order routing: the flow fully
// traverses each dimension in Order before the next. Ties on wrapped
// dimensions take the Plus direction. A nil Order means 0,1,2,....
type DimOrder struct {
	Order []int
}

// Name implements Algorithm.
func (r DimOrder) Name() string { return "dimension-order" }

// AddLoads implements Algorithm.
func (r DimOrder) AddLoads(t *topology.Torus, src, dst int, vol float64, loads []float64) {
	if src == dst || vol <= 0 {
		return
	}
	nd := t.NumDims()
	order := r.Order
	if order == nil {
		order = make([]int, nd)
		for i := range order {
			order[i] = i
		}
	}
	if len(order) != nd {
		panic(fmt.Sprintf("routing: DimOrder has %d dims, topology has %d", len(order), nd))
	}
	cs := t.CoordOf(src, nil)
	cd := t.CoordOf(dst, nil)
	cur := append([]int(nil), cs...)
	for _, d := range order {
		k := t.Dim(d)
		for cur[d] != cd[d] {
			dir := topology.Plus
			if t.Wrap(d) {
				plus := ((cd[d]-cur[d])%k + k) % k
				if k-plus < plus {
					dir = topology.Minus
				}
			} else if cd[d] < cur[d] {
				dir = topology.Minus
			}
			node := t.RankOf(cur)
			loads[t.ChannelID(node, d, dir)] += vol
			if dir == topology.Plus {
				cur[d] = (cur[d] + 1) % k
			} else {
				cur[d] = (cur[d] - 1 + k) % k
			}
		}
	}
}

// ChannelLoads routes every flow of g under mapping m with alg and returns
// the dense per-channel load vector. Tasks sharing a node exchange data
// through shared memory, contributing no network load.
func ChannelLoads(t *topology.Torus, g *graph.Comm, m topology.Mapping, alg Algorithm) []float64 {
	if len(m) != g.N() {
		panic(fmt.Sprintf("routing: mapping covers %d tasks, graph has %d", len(m), g.N()))
	}
	loads := make([]float64, t.NumChannels())
	g.EachFlow(func(s, d int, vol float64) {
		alg.AddLoads(t, m[s], m[d], vol, loads)
	})
	return loads
}

// MCL returns the maximum entry of a channel-load vector.
func MCL(loads []float64) float64 {
	max := 0.0
	for _, v := range loads {
		if v > max {
			max = v
		}
	}
	return max
}

// MaxChannelLoad is shorthand for MCL(ChannelLoads(...)).
func MaxChannelLoad(t *topology.Torus, g *graph.Comm, m topology.Mapping, alg Algorithm) float64 {
	return MCL(ChannelLoads(t, g, m, alg))
}

// TotalLoad returns the sum of a channel-load vector; divided by volume it
// is the average hop count (a hop-bytes analogue).
func TotalLoad(loads []float64) float64 {
	tot := 0.0
	for _, v := range loads {
		tot += v
	}
	return tot
}

// LoadStats summarizes a channel-load vector over physically present links.
type LoadStats struct {
	MCL     float64 // maximum channel load
	Mean    float64 // mean load over physical links
	Total   float64 // sum of loads
	NumUsed int     // channels with non-zero load
}

// Stats computes LoadStats for the load vector on t.
func Stats(t *topology.Torus, loads []float64) LoadStats {
	st := LoadStats{}
	links := 0
	for ch, v := range loads {
		node, dim, dir := t.DecodeChannel(ch)
		if !t.ChannelExists(node, dim, dir) {
			continue
		}
		links++
		st.Total += v
		if v > st.MCL {
			st.MCL = v
		}
		if v > 0 {
			st.NumUsed++
		}
	}
	if links > 0 {
		st.Mean = st.Total / float64(links)
	}
	if math.IsNaN(st.Mean) {
		st.Mean = 0
	}
	return st
}
