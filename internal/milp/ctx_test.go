package milp

import (
	"context"
	"testing"

	"rahtm/internal/lp"
)

func knapsack() *Problem {
	base := lp.NewProblem(0)
	p := NewProblem(base)
	a := p.AddBinary(-5, "a")
	b := p.AddBinary(-4, "b")
	c := p.AddBinary(-3, "c")
	base.AddConstraint([]lp.Term{{Var: a, Coef: 2}, {Var: b, Coef: 3}, {Var: c, Coef: 1}}, lp.LE, 5)
	return p
}

func TestSolveCtxBackground(t *testing.T) {
	res := knapsack().SolveCtx(context.Background(), Options{})
	wantStatus(t, res, Optimal)
	wantObj(t, res, -9)
}

func TestSolveCtxAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := knapsack().SolveCtx(ctx, Options{})
	// A canceled search must not fabricate a certificate: it processed no
	// nodes, found no incumbent, and must report Unknown, never Optimal or
	// Infeasible.
	wantStatus(t, res, Unknown)
	if res.Nodes != 0 {
		t.Fatalf("processed %d nodes after cancellation", res.Nodes)
	}
}

func TestSolveCtxCanceledKeepsIncumbent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := knapsack().SolveCtx(ctx, Options{Incumbent: []float64{1, 0, 1}})
	// The warm-start incumbent survives but must be reported Feasible,
	// not proved Optimal.
	wantStatus(t, res, Feasible)
	wantObj(t, res, -8)
}

func TestSolveCtxAccumulatesLPIters(t *testing.T) {
	res := knapsack().SolveCtx(context.Background(), Options{})
	if res.LPIters <= 0 {
		t.Fatalf("LPIters = %d, want > 0", res.LPIters)
	}
}
