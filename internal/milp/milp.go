// Package milp implements a branch-and-bound mixed integer linear program
// solver on top of the dense simplex in internal/lp.
//
// It is the substitute for the commercial CPLEX solver the RAHTM paper uses
// to solve the Table II mapping formulation. The solver supports:
//
//   - binary / general non-negative integer variables (branching adds bound
//     rows along the tree path; LP relaxations are re-solved from scratch,
//     which is cheap at the subproblem sizes RAHTM produces);
//   - best-bound search with depth-first plunging for early incumbents;
//   - warm starting from a caller-supplied incumbent (RAHTM seeds it with a
//     simulated-annealing mapping);
//   - a wall-clock deadline and node budget, after which the best incumbent
//     is returned (mirroring the paper's tolerance for hours-long offline
//     solves, scaled down);
//   - a speculative parallel mode (Options.Parallelism) in which worker
//     goroutines pull the best open nodes off the shared best-bound heap and
//     pre-solve their LP relaxations while the coordinator replays the exact
//     sequential search. A relaxation depends only on the node's branching
//     bounds — never on the incumbent — so prefetched solutions are valid
//     whenever they were computed, and the coordinator's pop / prune /
//     incumbent / branch sequence is identical to the sequential one. The
//     Result (status, objective, solution vector, bound, node and iteration
//     counts) is therefore bitwise identical at any parallelism; only
//     wall-clock time changes. Workers consult the mutex-guarded incumbent
//     bound so they never speculate on nodes the coordinator will prune.
package milp

import (
	"container/heap"
	"context"
	"math"
	"sort"
	"sync"
	"time"

	"rahtm/internal/lp"
	"rahtm/internal/telemetry"
)

// Branch-and-bound effort counters on the process-wide registry, flushed
// once per solve (never per node).
var (
	ctrMILPSolves = telemetry.Default.Counter(telemetry.CtrMILPSolves)
	ctrMILPNodes  = telemetry.Default.Counter(telemetry.CtrMILPNodes)
)

// Status reports the outcome of a MILP solve.
type Status int8

// Solve outcomes.
const (
	// Optimal means the incumbent was proved optimal within tolerance.
	Optimal Status = iota
	// Feasible means an integer solution was found but optimality was not
	// proved before the deadline or node budget ran out.
	Feasible
	// Infeasible means no integer-feasible point exists.
	Infeasible
	// Unknown means the search was cut off before finding any incumbent.
	Unknown
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unknown:
		return "unknown"
	}
	return "bad-status"
}

// Problem couples an LP with integrality requirements. The LP is treated as
// a minimization and must keep all variables non-negative (the lp package
// convention). Binary variables should additionally carry an x <= 1 row,
// which AddBinary arranges.
type Problem struct {
	LP      *lp.Problem
	intVars []int // sorted variable indices required to be integral
}

// NewProblem wraps base (not copied; the solver clones per node).
func NewProblem(base *lp.Problem) *Problem {
	return &Problem{LP: base}
}

// MarkInteger requires variable v to take an integer value.
func (p *Problem) MarkInteger(v int) {
	i := sort.SearchInts(p.intVars, v)
	if i < len(p.intVars) && p.intVars[i] == v {
		return
	}
	p.intVars = append(p.intVars, 0)
	copy(p.intVars[i+1:], p.intVars[i:])
	p.intVars[i] = v
}

// AddBinary creates a fresh binary variable: objective coefficient c, an
// upper bound row x <= 1, and an integrality mark. Returns the index.
func (p *Problem) AddBinary(c float64, name string) int {
	v := p.LP.AddVariable(c, name)
	p.LP.AddConstraint([]lp.Term{{Var: v, Coef: 1}}, lp.LE, 1)
	p.MarkInteger(v)
	return v
}

// IntegerVariables returns the indices marked integral (sorted, shared slice —
// do not mutate).
func (p *Problem) IntegerVariables() []int { return p.intVars }

// Options tunes the branch-and-bound search. Zero values select defaults.
type Options struct {
	// Deadline, when non-zero, stops the search at that wall-clock time and
	// returns the incumbent.
	Deadline time.Time
	// MaxNodes bounds the number of branch-and-bound nodes (<= 0: 200000).
	MaxNodes int
	// Tol is the integrality/optimality tolerance (<= 0: 1e-6).
	Tol float64
	// Incumbent optionally provides a known integer-feasible solution used
	// to prune from the start. Objective is computed from the LP.
	Incumbent []float64
	// LPOptions is passed through to every relaxation solve.
	LPOptions lp.Options
	// Parallelism, when >= 2, spawns that many prefetch workers that
	// speculatively solve LP relaxations of open nodes ahead of the
	// coordinator. The Result is bitwise identical to the sequential search
	// (<= 1) at any setting; see the package comment.
	Parallelism int
}

// Result is the outcome of a MILP solve.
type Result struct {
	Status    Status
	X         []float64 // best integer solution found (nil when none)
	Objective float64   // objective of X
	Bound     float64   // best proved lower bound on the optimum
	Nodes     int       // number of branch-and-bound nodes processed
	LPIters   int       // simplex iterations summed over all relaxations
}

// branch is one bound change relative to the root problem.
type branch struct {
	v     int
	sense lp.Sense // LE (x <= k) or GE (x >= k)
	bound float64
}

// Relaxation state of an open node, guarded by search.mu.
const (
	nodeUnsolved int8 = iota // no one has started this node's relaxation
	nodeClaimed              // a goroutine is solving it right now
	nodeSolved               // sol/err hold the finished relaxation
)

// node is a live branch-and-bound node.
type node struct {
	bounds []branch
	lb     float64 // parent LP bound (priority)
	depth  int

	// Speculative-prefetch slots, guarded by search.mu. The relaxation is a
	// pure function of bounds, so a prefetched result stays valid no matter
	// when the coordinator consumes it.
	state int8
	sol   *lp.Solution
	err   error
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].lb < h[j].lb {
		return true
	}
	if h[i].lb > h[j].lb {
		return false
	}
	return h[i].depth > h[j].depth // deeper first on tie: plunge
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Solve runs branch and bound and returns the best result found.
func (p *Problem) Solve(opt Options) *Result {
	//rahtm:allow(ctxpoll): compatibility wrapper; the root context is the documented default for the non-Ctx API
	return p.SolveCtx(context.Background(), opt)
}

// SolveCtx runs branch and bound under a context. When ctx is canceled or
// its deadline expires the search stops at the next node boundary (and
// in-flight LP relaxations abort at their next pivot poll); the best
// incumbent found so far is returned, exactly as for an expired Deadline.
// Callers that must distinguish hard cancellation inspect ctx.Err()
// themselves.
func (p *Problem) SolveCtx(ctx context.Context, opt Options) *Result {
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	maxNodes := opt.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 200000
	}

	res := &Result{Status: Unknown, Bound: math.Inf(-1)}
	scope := telemetry.ScopeFrom(ctx)
	defer func() {
		scope.CounterOr(telemetry.CtrMILPSolves, ctrMILPSolves).Inc()
		scope.CounterOr(telemetry.CtrMILPNodes, ctrMILPNodes).Add(int64(res.Nodes))
	}()
	s := &search{
		p:      p,
		ctx:    ctx,
		lpOpts: opt.LPOptions,
		tol:    tol,
		open:   &nodeHeap{{lb: math.Inf(-1)}},
		incObj: math.Inf(1),
	}
	s.cond = sync.NewCond(&s.mu)
	heap.Init(s.open)
	if opt.Incumbent != nil && p.integral(opt.Incumbent, tol) && p.LP.Feasible(opt.Incumbent, 1e-6) {
		res.X = append([]float64(nil), opt.Incumbent...)
		s.incObj = p.LP.Value(opt.Incumbent)
		res.Objective = s.incObj
		res.Status = Feasible
	}
	for w := 1; w < opt.Parallelism; w++ {
		s.wg.Add(1)
		go s.prefetch()
	}

	deadline := opt.Deadline
	checkDeadline := func() bool {
		return !deadline.IsZero() && time.Now().After(deadline)
	}

	// The coordinator below IS the sequential algorithm: it alone pops nodes,
	// prunes, updates the incumbent and branches, so the search trajectory —
	// and with it every Result field — does not depend on Parallelism.
	// Prefetch workers only fill the sol/err slots of nodes still in the heap.
	s.mu.Lock()
	for s.open.Len() > 0 {
		if res.Nodes >= maxNodes || checkDeadline() || ctx.Err() != nil {
			break
		}
		nd := heap.Pop(s.open).(*node)
		if nd.lb >= pruneThreshold(s.incObj, tol) {
			continue // pruned by bound
		}
		res.Nodes++

		var sol *lp.Solution
		var err error
		switch nd.state {
		case nodeUnsolved:
			nd.state = nodeClaimed
			s.mu.Unlock()
			sol, err = p.relax(ctx, nd, opt.LPOptions)
			s.mu.Lock()
			nd.sol, nd.err, nd.state = sol, err, nodeSolved
		case nodeClaimed:
			// A worker is mid-solve; its result arrives with a broadcast.
			//rahtm:allow(ctxpoll): bounded wait — the claiming worker's LP solve polls ctx and always marks the node solved
			for nd.state != nodeSolved {
				s.cond.Wait()
			}
			sol, err = nd.sol, nd.err
		case nodeSolved:
			sol, err = nd.sol, nd.err
		}
		if sol != nil {
			// Counts only consumed relaxations — identical to the sequential
			// search; speculative solves that get pruned stay invisible.
			res.LPIters += sol.Iters
		}
		if err != nil {
			continue // canceled mid-relaxation; the loop head exits next
		}
		switch sol.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			// An unbounded relaxation at the root means the MILP is
			// unbounded or the model is missing bounds; give up on this
			// subtree (RAHTM models are always bounded).
			continue
		case lp.IterLimit:
			continue
		}
		if sol.Objective >= pruneThreshold(s.incObj, tol) {
			continue
		}
		fracVar, fracVal := p.mostFractional(sol.X, tol)
		if fracVar < 0 {
			// Integer feasible: new incumbent, published under the lock so
			// workers stop speculating on now-pruned nodes.
			if sol.Objective < s.incObj {
				s.incObj = sol.Objective
				res.X = append(res.X[:0], sol.X...)
				res.Objective = s.incObj
				if res.Status == Unknown {
					res.Status = Feasible
				}
			}
			continue
		}
		// Branch on the most fractional variable; explore the side nearer
		// the relaxation value first (heap tie-break handles plunging).
		floorB := math.Floor(fracVal)
		down := &node{
			bounds: appendBranch(nd.bounds, branch{fracVar, lp.LE, floorB}),
			lb:     sol.Objective,
			depth:  nd.depth + 1,
		}
		up := &node{
			bounds: appendBranch(nd.bounds, branch{fracVar, lp.GE, floorB + 1}),
			lb:     sol.Objective,
			depth:  nd.depth + 1,
		}
		heap.Push(s.open, down)
		heap.Push(s.open, up)
		s.cond.Broadcast() // fresh work for prefetch workers
	}
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()

	// Lower bound: min over remaining open nodes and the incumbent.
	bound := s.incObj
	for _, nd := range *s.open {
		if nd.lb < bound {
			bound = nd.lb
		}
	}
	res.Bound = bound
	// Optimality and infeasibility may only be claimed when the search tree
	// was actually exhausted, not cut short by cancellation.
	if ctx.Err() == nil {
		if res.Status == Feasible && s.open.Len() == 0 && res.Nodes < maxNodes {
			res.Status = Optimal
			res.Bound = s.incObj
		}
		if res.Status == Unknown && s.open.Len() == 0 && res.Nodes > 0 {
			res.Status = Infeasible
		}
	}
	return res
}

// search is the state shared between the coordinator and the prefetch
// workers. Everything behind mu; cond signals both "new open nodes" (to
// workers) and "node solved" (to a coordinator waiting on a claimed node).
type search struct {
	p      *Problem
	ctx    context.Context
	lpOpts lp.Options
	tol    float64

	mu      sync.Mutex
	cond    *sync.Cond
	open    *nodeHeap
	incObj  float64 // published incumbent objective (+Inf before the first)
	stopped bool
	wg      sync.WaitGroup
}

// prefetch is the worker loop: claim the best unsolved open node that the
// incumbent bound cannot prune, solve its relaxation outside the lock, store
// the result on the node and broadcast.
func (s *search) prefetch() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		if s.stopped {
			s.mu.Unlock()
			return
		}
		nd := s.pickUnsolved()
		if nd == nil {
			s.cond.Wait()
			continue
		}
		nd.state = nodeClaimed
		s.mu.Unlock()
		sol, err := s.p.relax(s.ctx, nd, s.lpOpts)
		s.mu.Lock()
		nd.sol, nd.err, nd.state = sol, err, nodeSolved
		s.cond.Broadcast()
	}
}

// pickUnsolved returns an unsolved open node worth prefetching, or nil. The
// heap array is scanned in index order — element 0 is the true best bound and
// the rest are heap-ordered, which is close enough to best-first for a
// speculation heuristic (correctness never depends on the choice).
func (s *search) pickUnsolved() *node {
	thr := pruneThreshold(s.incObj, s.tol)
	for _, nd := range *s.open {
		if nd.state == nodeUnsolved && nd.lb < thr {
			return nd
		}
	}
	return nil
}

// relax clones the root LP, applies the node's branching bounds and solves
// the relaxation. The result depends only on nd.bounds — never on the
// incumbent — which is what makes speculative prefetching safe. Clone only
// reads the shared root LP, so concurrent relaxations do not race.
func (p *Problem) relax(ctx context.Context, nd *node, opt lp.Options) (*lp.Solution, error) {
	rel := p.LP.Clone()
	for _, b := range nd.bounds {
		rel.AddConstraint([]lp.Term{{Var: b.v, Coef: 1}}, b.sense, b.bound)
	}
	return rel.SolveCtx(ctx, opt)
}

// pruneThreshold is the objective value at or above which a node cannot
// improve the incumbent: incObj - tol*(1+|incObj|), kept at +Inf while no
// incumbent exists (the subtraction would otherwise yield NaN).
func pruneThreshold(incObj, tol float64) float64 {
	if math.IsInf(incObj, 1) {
		return incObj
	}
	return incObj - tol*(1+math.Abs(incObj))
}

func appendBranch(bs []branch, b branch) []branch {
	out := make([]branch, len(bs)+1)
	copy(out, bs)
	out[len(bs)] = b
	return out
}

// mostFractional returns the integer-marked variable whose value is furthest
// from an integer, or (-1, 0) when all are integral within tol.
func (p *Problem) mostFractional(x []float64, tol float64) (int, float64) {
	bestVar := -1
	bestDist := tol
	bestVal := 0.0
	for _, v := range p.intVars {
		if v >= len(x) {
			continue
		}
		f := x[v] - math.Floor(x[v])
		dist := math.Min(f, 1-f)
		if dist > bestDist {
			bestDist = dist
			bestVar = v
			bestVal = x[v]
		}
	}
	return bestVar, bestVal
}

func (p *Problem) integral(x []float64, tol float64) bool {
	v, _ := p.mostFractional(x, tol)
	return v < 0
}
