// Package milp implements a branch-and-bound mixed integer linear program
// solver on top of the dense simplex in internal/lp.
//
// It is the substitute for the commercial CPLEX solver the RAHTM paper uses
// to solve the Table II mapping formulation. The solver supports:
//
//   - binary / general non-negative integer variables (branching adds bound
//     rows along the tree path; LP relaxations are re-solved from scratch,
//     which is cheap at the subproblem sizes RAHTM produces);
//   - best-bound search with depth-first plunging for early incumbents;
//   - warm starting from a caller-supplied incumbent (RAHTM seeds it with a
//     simulated-annealing mapping);
//   - a wall-clock deadline and node budget, after which the best incumbent
//     is returned (mirroring the paper's tolerance for hours-long offline
//     solves, scaled down).
package milp

import (
	"container/heap"
	"context"
	"math"
	"sort"
	"time"

	"rahtm/internal/lp"
	"rahtm/internal/telemetry"
)

// Branch-and-bound effort counters on the process-wide registry, flushed
// once per solve (never per node).
var (
	ctrMILPSolves = telemetry.Default.Counter(telemetry.CtrMILPSolves)
	ctrMILPNodes  = telemetry.Default.Counter(telemetry.CtrMILPNodes)
)

// Status reports the outcome of a MILP solve.
type Status int8

// Solve outcomes.
const (
	// Optimal means the incumbent was proved optimal within tolerance.
	Optimal Status = iota
	// Feasible means an integer solution was found but optimality was not
	// proved before the deadline or node budget ran out.
	Feasible
	// Infeasible means no integer-feasible point exists.
	Infeasible
	// Unknown means the search was cut off before finding any incumbent.
	Unknown
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unknown:
		return "unknown"
	}
	return "bad-status"
}

// Problem couples an LP with integrality requirements. The LP is treated as
// a minimization and must keep all variables non-negative (the lp package
// convention). Binary variables should additionally carry an x <= 1 row,
// which AddBinary arranges.
type Problem struct {
	LP      *lp.Problem
	intVars []int // sorted variable indices required to be integral
}

// NewProblem wraps base (not copied; the solver clones per node).
func NewProblem(base *lp.Problem) *Problem {
	return &Problem{LP: base}
}

// MarkInteger requires variable v to take an integer value.
func (p *Problem) MarkInteger(v int) {
	i := sort.SearchInts(p.intVars, v)
	if i < len(p.intVars) && p.intVars[i] == v {
		return
	}
	p.intVars = append(p.intVars, 0)
	copy(p.intVars[i+1:], p.intVars[i:])
	p.intVars[i] = v
}

// AddBinary creates a fresh binary variable: objective coefficient c, an
// upper bound row x <= 1, and an integrality mark. Returns the index.
func (p *Problem) AddBinary(c float64, name string) int {
	v := p.LP.AddVariable(c, name)
	p.LP.AddConstraint([]lp.Term{{Var: v, Coef: 1}}, lp.LE, 1)
	p.MarkInteger(v)
	return v
}

// IntegerVariables returns the indices marked integral (sorted, shared slice —
// do not mutate).
func (p *Problem) IntegerVariables() []int { return p.intVars }

// Options tunes the branch-and-bound search. Zero values select defaults.
type Options struct {
	// Deadline, when non-zero, stops the search at that wall-clock time and
	// returns the incumbent.
	Deadline time.Time
	// MaxNodes bounds the number of branch-and-bound nodes (<= 0: 200000).
	MaxNodes int
	// Tol is the integrality/optimality tolerance (<= 0: 1e-6).
	Tol float64
	// Incumbent optionally provides a known integer-feasible solution used
	// to prune from the start. Objective is computed from the LP.
	Incumbent []float64
	// LPOptions is passed through to every relaxation solve.
	LPOptions lp.Options
}

// Result is the outcome of a MILP solve.
type Result struct {
	Status    Status
	X         []float64 // best integer solution found (nil when none)
	Objective float64   // objective of X
	Bound     float64   // best proved lower bound on the optimum
	Nodes     int       // number of branch-and-bound nodes processed
	LPIters   int       // simplex iterations summed over all relaxations
}

// branch is one bound change relative to the root problem.
type branch struct {
	v     int
	sense lp.Sense // LE (x <= k) or GE (x >= k)
	bound float64
}

// node is a live branch-and-bound node.
type node struct {
	bounds []branch
	lb     float64 // parent LP bound (priority)
	depth  int
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].lb < h[j].lb {
		return true
	}
	if h[i].lb > h[j].lb {
		return false
	}
	return h[i].depth > h[j].depth // deeper first on tie: plunge
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Solve runs branch and bound and returns the best result found.
func (p *Problem) Solve(opt Options) *Result {
	//rahtm:allow(ctxpoll): compatibility wrapper; the root context is the documented default for the non-Ctx API
	return p.SolveCtx(context.Background(), opt)
}

// SolveCtx runs branch and bound under a context. When ctx is canceled or
// its deadline expires the search stops at the next node boundary (and
// in-flight LP relaxations abort at their next pivot poll); the best
// incumbent found so far is returned, exactly as for an expired Deadline.
// Callers that must distinguish hard cancellation inspect ctx.Err()
// themselves.
func (p *Problem) SolveCtx(ctx context.Context, opt Options) *Result {
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	maxNodes := opt.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 200000
	}

	res := &Result{Status: Unknown, Bound: math.Inf(-1)}
	defer func() {
		ctrMILPSolves.Inc()
		ctrMILPNodes.Add(int64(res.Nodes))
	}()
	incObj := math.Inf(1)
	if opt.Incumbent != nil && p.integral(opt.Incumbent, tol) && p.LP.Feasible(opt.Incumbent, 1e-6) {
		res.X = append([]float64(nil), opt.Incumbent...)
		incObj = p.LP.Value(opt.Incumbent)
		res.Objective = incObj
		res.Status = Feasible
	}

	open := &nodeHeap{{lb: math.Inf(-1)}}
	heap.Init(open)

	deadline := opt.Deadline
	checkDeadline := func() bool {
		return !deadline.IsZero() && time.Now().After(deadline)
	}

	for open.Len() > 0 {
		if res.Nodes >= maxNodes || checkDeadline() || ctx.Err() != nil {
			break
		}
		nd := heap.Pop(open).(*node)
		if nd.lb >= incObj-tol*(1+math.Abs(incObj)) {
			continue // pruned by bound
		}
		res.Nodes++

		rel := p.LP.Clone()
		for _, b := range nd.bounds {
			rel.AddConstraint([]lp.Term{{Var: b.v, Coef: 1}}, b.sense, b.bound)
		}
		sol, err := rel.SolveCtx(ctx, opt.LPOptions)
		if sol != nil {
			res.LPIters += sol.Iters
		}
		if err != nil {
			continue // canceled mid-relaxation; the loop head exits next
		}
		switch sol.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			// An unbounded relaxation at the root means the MILP is
			// unbounded or the model is missing bounds; give up on this
			// subtree (RAHTM models are always bounded).
			continue
		case lp.IterLimit:
			continue
		}
		if sol.Objective >= incObj-tol*(1+math.Abs(incObj)) {
			continue
		}
		fracVar, fracVal := p.mostFractional(sol.X, tol)
		if fracVar < 0 {
			// Integer feasible: new incumbent.
			if sol.Objective < incObj {
				incObj = sol.Objective
				res.X = append(res.X[:0], sol.X...)
				res.Objective = incObj
				if res.Status == Unknown {
					res.Status = Feasible
				}
			}
			continue
		}
		// Branch on the most fractional variable; explore the side nearer
		// the relaxation value first (heap tie-break handles plunging).
		floorB := math.Floor(fracVal)
		down := &node{
			bounds: appendBranch(nd.bounds, branch{fracVar, lp.LE, floorB}),
			lb:     sol.Objective,
			depth:  nd.depth + 1,
		}
		up := &node{
			bounds: appendBranch(nd.bounds, branch{fracVar, lp.GE, floorB + 1}),
			lb:     sol.Objective,
			depth:  nd.depth + 1,
		}
		heap.Push(open, down)
		heap.Push(open, up)
	}

	// Lower bound: min over remaining open nodes and the incumbent.
	bound := incObj
	for _, nd := range *open {
		if nd.lb < bound {
			bound = nd.lb
		}
	}
	res.Bound = bound
	// Optimality and infeasibility may only be claimed when the search tree
	// was actually exhausted, not cut short by cancellation.
	if ctx.Err() == nil {
		if res.Status == Feasible && open.Len() == 0 && res.Nodes < maxNodes {
			res.Status = Optimal
			res.Bound = incObj
		}
		if res.Status == Unknown && open.Len() == 0 && res.Nodes > 0 {
			res.Status = Infeasible
		}
	}
	return res
}

func appendBranch(bs []branch, b branch) []branch {
	out := make([]branch, len(bs)+1)
	copy(out, bs)
	out[len(bs)] = b
	return out
}

// mostFractional returns the integer-marked variable whose value is furthest
// from an integer, or (-1, 0) when all are integral within tol.
func (p *Problem) mostFractional(x []float64, tol float64) (int, float64) {
	bestVar := -1
	bestDist := tol
	bestVal := 0.0
	for _, v := range p.intVars {
		if v >= len(x) {
			continue
		}
		f := x[v] - math.Floor(x[v])
		dist := math.Min(f, 1-f)
		if dist > bestDist {
			bestDist = dist
			bestVar = v
			bestVal = x[v]
		}
	}
	return bestVar, bestVal
}

func (p *Problem) integral(x []float64, tol float64) bool {
	v, _ := p.mostFractional(x, tol)
	return v < 0
}
