package milp

import (
	"math/rand"
	"strconv"
	"testing"

	"rahtm/internal/lp"
)

// randomBinaryMILP builds a random binary MILP with n variables and m LE
// rows; coefficients are small integers so ties and degenerate relaxations
// are common (the hard cases for search determinism).
func randomBinaryMILP(rng *rand.Rand, n, m int) *Problem {
	base := lp.NewProblem(0)
	p := NewProblem(base)
	vars := make([]int, n)
	for j := 0; j < n; j++ {
		vars[j] = p.AddBinary(float64(rng.Intn(21)-10), "")
	}
	for i := 0; i < m; i++ {
		var terms []lp.Term
		for j := 0; j < n; j++ {
			if a := rng.Intn(9) - 2; a != 0 {
				terms = append(terms, lp.Term{Var: vars[j], Coef: float64(a)})
			}
		}
		if len(terms) > 0 {
			base.AddConstraint(terms, lp.LE, float64(rng.Intn(12)))
		}
	}
	return p
}

// wantSameResult asserts two results are bitwise identical in every field —
// the parallel-mode contract, not an approximate comparison.
func wantSameResult(t *testing.T, seq, par *Result, label string) {
	t.Helper()
	if par.Status != seq.Status {
		t.Fatalf("%s: status %v, sequential %v", label, par.Status, seq.Status)
	}
	if par.Objective != seq.Objective {
		t.Fatalf("%s: objective %v, sequential %v", label, par.Objective, seq.Objective)
	}
	if par.Bound != seq.Bound {
		t.Fatalf("%s: bound %v, sequential %v", label, par.Bound, seq.Bound)
	}
	if par.Nodes != seq.Nodes || par.LPIters != seq.LPIters {
		t.Fatalf("%s: nodes/iters %d/%d, sequential %d/%d",
			label, par.Nodes, par.LPIters, seq.Nodes, seq.LPIters)
	}
	if (par.X == nil) != (seq.X == nil) || len(par.X) != len(seq.X) {
		t.Fatalf("%s: X shape %d (nil=%v), sequential %d (nil=%v)",
			label, len(par.X), par.X == nil, len(seq.X), seq.X == nil)
	}
	for j := range seq.X {
		if par.X[j] != seq.X[j] {
			t.Fatalf("%s: X[%d] = %v, sequential %v", label, j, par.X[j], seq.X[j])
		}
	}
}

// TestParallelMatchesSequential is the parallel-mode contract: over a batch
// of random MILPs (optimal and infeasible instances both), the speculative
// parallel search returns a Result bitwise identical to the sequential one —
// same status, objective, solution vector, bound, node and iteration counts.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(6)
		m := 1 + rng.Intn(4)
		seed := rng.Int63()
		seq := randomBinaryMILP(rand.New(rand.NewSource(seed)), n, m).Solve(Options{})
		for _, par := range []int{2, 4, 8} {
			p := randomBinaryMILP(rand.New(rand.NewSource(seed)), n, m)
			got := p.Solve(Options{Parallelism: par})
			wantSameResult(t, seq, got, "trial "+strconv.Itoa(trial)+" parallelism "+strconv.Itoa(par))
		}
	}
}

// TestParallelNodeBudgetDeterministic checks the cutoff path: a node budget
// truncates the identical trajectory at the identical point, so even a
// Feasible-not-Optimal result matches the sequential one exactly.
func TestParallelNodeBudgetDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		seed := rng.Int63()
		opt := Options{MaxNodes: 5}
		seq := randomBinaryMILP(rand.New(rand.NewSource(seed)), 7, 3).Solve(opt)
		p := randomBinaryMILP(rand.New(rand.NewSource(seed)), 7, 3)
		opt.Parallelism = 4
		got := p.Solve(opt)
		wantSameResult(t, seq, got, "budget trial "+strconv.Itoa(trial))
	}
}

// TestParallelGeneralInteger exercises the prefetchers on a general-integer
// model whose relaxation branches several levels deep.
func TestParallelGeneralInteger(t *testing.T) {
	build := func() *Problem {
		base := lp.NewProblem(0)
		p := NewProblem(base)
		// minimize -3x - 2y s.t. 2x + y <= 11, x + 3y <= 12, x,y integer >= 0.
		x := base.AddVariable(-3, "x")
		y := base.AddVariable(-2, "y")
		base.AddConstraint([]lp.Term{{Var: x, Coef: 2}, {Var: y, Coef: 1}}, lp.LE, 11)
		base.AddConstraint([]lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 3}}, lp.LE, 12)
		p.MarkInteger(x)
		p.MarkInteger(y)
		return p
	}
	seq := build().Solve(Options{})
	par := build().Solve(Options{Parallelism: 4})
	wantSameResult(t, seq, par, "general-integer")
	wantStatus(t, par, Optimal)
}
