package milp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"rahtm/internal/lp"
)

func wantStatus(t *testing.T, res *Result, want Status) {
	t.Helper()
	if res.Status != want {
		t.Fatalf("status = %v, want %v (x=%v obj=%v nodes=%d)", res.Status, want, res.X, res.Objective, res.Nodes)
	}
}

func wantObj(t *testing.T, res *Result, want float64) {
	t.Helper()
	if math.Abs(res.Objective-want) > 1e-6*(1+math.Abs(want)) {
		t.Fatalf("objective = %v, want %v (x=%v)", res.Objective, want, res.X)
	}
}

// Simple knapsack: maximize 5a+4b+3c s.t. 2a+3b+c <= 5, binaries.
// Optimum: a=1, c=1 -> wait, 2+1=3 <= 5, value 8; a=1,b=1 -> 5 <= 5, value 9.
func TestKnapsackBinary(t *testing.T) {
	base := lp.NewProblem(0)
	p := NewProblem(base)
	a := p.AddBinary(-5, "a")
	b := p.AddBinary(-4, "b")
	c := p.AddBinary(-3, "c")
	base.AddConstraint([]lp.Term{{Var: a, Coef: 2}, {Var: b, Coef: 3}, {Var: c, Coef: 1}}, lp.LE, 5)
	res := p.Solve(Options{})
	wantStatus(t, res, Optimal)
	wantObj(t, res, -9)
	if math.Abs(res.X[a]-1) > 1e-6 || math.Abs(res.X[b]-1) > 1e-6 || math.Abs(res.X[c]) > 1e-6 {
		t.Fatalf("x = %v, want (1,1,0)", res.X)
	}
}

// A MILP whose LP relaxation is fractional: max x+y s.t. 2x+2y <= 3, binaries.
// Relaxation gives 1.5; integer optimum is 1.
func TestFractionalRelaxation(t *testing.T) {
	base := lp.NewProblem(0)
	p := NewProblem(base)
	x := p.AddBinary(-1, "x")
	y := p.AddBinary(-1, "y")
	base.AddConstraint([]lp.Term{{Var: x, Coef: 2}, {Var: y, Coef: 2}}, lp.LE, 3)
	res := p.Solve(Options{})
	wantStatus(t, res, Optimal)
	wantObj(t, res, -1)
}

func TestInfeasibleMILP(t *testing.T) {
	base := lp.NewProblem(0)
	p := NewProblem(base)
	x := p.AddBinary(1, "x")
	y := p.AddBinary(1, "y")
	// x + y == 2 with x + y <= 1: infeasible.
	base.AddConstraint([]lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.EQ, 2)
	base.AddConstraint([]lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.LE, 1)
	res := p.Solve(Options{})
	wantStatus(t, res, Infeasible)
}

// General integers: min x s.t. 3x >= 10 -> x = 4.
func TestGeneralInteger(t *testing.T) {
	base := lp.NewProblem(1)
	base.SetObjectiveCoef(0, 1)
	base.AddConstraint([]lp.Term{{Var: 0, Coef: 3}}, lp.GE, 10)
	p := NewProblem(base)
	p.MarkInteger(0)
	res := p.Solve(Options{})
	wantStatus(t, res, Optimal)
	wantObj(t, res, 4)
}

// Assignment problem as MILP (LP relaxation is already integral, but the
// B&B must recognize it immediately).
func TestAssignmentIntegralRelaxation(t *testing.T) {
	cost := [][]float64{
		{4, 2, 8},
		{4, 3, 7},
		{3, 1, 6},
	}
	base := lp.NewProblem(0)
	p := NewProblem(base)
	v := make([][]int, 3)
	for i := range v {
		v[i] = make([]int, 3)
		for j := range v[i] {
			v[i][j] = p.AddBinary(cost[i][j], "")
		}
	}
	for i := 0; i < 3; i++ {
		var rowT, colT []lp.Term
		for j := 0; j < 3; j++ {
			rowT = append(rowT, lp.Term{Var: v[i][j], Coef: 1})
			colT = append(colT, lp.Term{Var: v[j][i], Coef: 1})
		}
		base.AddConstraint(rowT, lp.EQ, 1)
		base.AddConstraint(colT, lp.EQ, 1)
	}
	res := p.Solve(Options{})
	wantStatus(t, res, Optimal)
	// Optimal assignment: (0,1)=2,(1,2)=7,(2,0)=3 -> 12; check alternatives:
	// (0,0)=4,(1,2)=7,(2,1)=1 -> 12; (0,1)? both 12.
	wantObj(t, res, 12)
	if res.Nodes > 10 {
		t.Errorf("expected near-immediate solve for integral relaxation, used %d nodes", res.Nodes)
	}
}

func TestIncumbentWarmStart(t *testing.T) {
	base := lp.NewProblem(0)
	p := NewProblem(base)
	x := p.AddBinary(-1, "x")
	y := p.AddBinary(-1, "y")
	base.AddConstraint([]lp.Term{{Var: x, Coef: 2}, {Var: y, Coef: 2}}, lp.LE, 3)
	inc := make([]float64, base.NumVariables())
	inc[x] = 1 // feasible: 2 <= 3
	res := p.Solve(Options{Incumbent: inc})
	wantStatus(t, res, Optimal)
	wantObj(t, res, -1)
}

func TestBadIncumbentIgnored(t *testing.T) {
	base := lp.NewProblem(0)
	p := NewProblem(base)
	x := p.AddBinary(-1, "x")
	base.AddConstraint([]lp.Term{{Var: x, Coef: 1}}, lp.LE, 0)
	inc := make([]float64, base.NumVariables())
	inc[x] = 1 // violates x <= 0
	res := p.Solve(Options{Incumbent: inc})
	wantStatus(t, res, Optimal)
	wantObj(t, res, 0)
}

func TestDeadlineReturnsIncumbent(t *testing.T) {
	// A deliberately awkward problem plus an already-expired deadline: the
	// solver must return the provided incumbent without exploring.
	base := lp.NewProblem(0)
	p := NewProblem(base)
	n := 12
	vars := make([]int, n)
	terms := make([]lp.Term, n)
	for i := 0; i < n; i++ {
		vars[i] = p.AddBinary(-float64(i+1), "")
		terms[i] = lp.Term{Var: vars[i], Coef: float64(2*i + 3)}
	}
	base.AddConstraint(terms, lp.LE, 17)
	inc := make([]float64, base.NumVariables())
	inc[vars[0]] = 1
	res := p.Solve(Options{Incumbent: inc, Deadline: time.Now().Add(-time.Second)})
	wantStatus(t, res, Feasible)
	if res.X == nil || math.Abs(res.X[vars[0]]-1) > 1e-9 {
		t.Fatalf("incumbent not preserved: %v", res.X)
	}
}

func TestNodeBudget(t *testing.T) {
	base := lp.NewProblem(0)
	p := NewProblem(base)
	n := 14
	terms := make([]lp.Term, n)
	for i := 0; i < n; i++ {
		v := p.AddBinary(-float64(7+i%5), "")
		terms[i] = lp.Term{Var: v, Coef: float64(5 + (i*3)%7)}
	}
	base.AddConstraint(terms, lp.LE, 23)
	res := p.Solve(Options{MaxNodes: 3})
	if res.Nodes > 3 {
		t.Fatalf("node budget exceeded: %d", res.Nodes)
	}
}

func TestMarkIntegerIdempotent(t *testing.T) {
	base := lp.NewProblem(3)
	p := NewProblem(base)
	p.MarkInteger(2)
	p.MarkInteger(0)
	p.MarkInteger(2)
	p.MarkInteger(1)
	got := p.IntegerVariables()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("IntegerVariables = %v", got)
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Feasible: "feasible", Infeasible: "infeasible", Unknown: "unknown",
	} {
		if s.String() != want {
			t.Fatalf("got %q want %q", s.String(), want)
		}
	}
}

// Randomized cross-check against exhaustive enumeration over binaries.
func TestRandomBinaryMILPAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(6) // up to 7 binaries -> 128 points
		m := 1 + rng.Intn(3)
		c := make([]float64, n)
		for j := range c {
			c[j] = float64(rng.Intn(21) - 10)
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = float64(rng.Intn(9) - 2)
			}
			b[i] = float64(rng.Intn(12))
		}

		// Brute force over all 2^n assignments.
		best := math.Inf(1)
		feasAny := false
		for mask := 0; mask < 1<<n; mask++ {
			ok := true
			for i := 0; i < m && ok; i++ {
				lhs := 0.0
				for j := 0; j < n; j++ {
					if mask>>j&1 == 1 {
						lhs += a[i][j]
					}
				}
				if lhs > b[i]+1e-9 {
					ok = false
				}
			}
			if !ok {
				continue
			}
			feasAny = true
			obj := 0.0
			for j := 0; j < n; j++ {
				if mask>>j&1 == 1 {
					obj += c[j]
				}
			}
			if obj < best {
				best = obj
			}
		}

		base := lp.NewProblem(0)
		p := NewProblem(base)
		vars := make([]int, n)
		for j := 0; j < n; j++ {
			vars[j] = p.AddBinary(c[j], "")
		}
		for i := 0; i < m; i++ {
			var terms []lp.Term
			for j := 0; j < n; j++ {
				if a[i][j] != 0 {
					terms = append(terms, lp.Term{Var: vars[j], Coef: a[i][j]})
				}
			}
			b0 := b[i]
			if len(terms) == 0 && b0 >= 0 {
				continue
			}
			base.AddConstraint(terms, lp.LE, b0)
		}
		res := p.Solve(Options{})
		if !feasAny {
			wantStatus(t, res, Infeasible)
			continue
		}
		wantStatus(t, res, Optimal)
		if math.Abs(res.Objective-best) > 1e-6*(1+math.Abs(best)) {
			t.Fatalf("trial %d: obj %v, brute force %v (n=%d m=%d)", trial, res.Objective, best, n, m)
		}
	}
}
