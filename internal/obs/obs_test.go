package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestOrNop(t *testing.T) {
	if OrNop(nil) == nil {
		t.Fatal("OrNop(nil) must return a usable observer")
	}
	l := NewLog(&strings.Builder{})
	if OrNop(l) != Observer(l) {
		t.Fatal("OrNop must pass through non-nil observers")
	}
	// Nop must absorb every event without panicking.
	n := OrNop(nil)
	n.PhaseStart(PhaseCluster)
	n.PhaseEnd(PhaseMap, time.Second)
	n.SubproblemSolved(0, "anneal", 1, false)
	n.AnnealSample(0, 0, 1, 1, 1)
	n.BeamRound(0, 0, 1, 1)
	n.LPIterations(1)
}

func TestLogWritesEvents(t *testing.T) {
	var sb strings.Builder
	l := NewLog(&sb)
	l.PhaseStart(PhaseMerge)
	l.PhaseEnd(PhaseMerge, 3*time.Millisecond)
	l.SubproblemSolved(2, "milp", 4.5, true)
	l.AnnealSample(1, 256, 0.5, 10, 9)
	l.BeamRound(0, 3, 64, 7.25)
	l.LPIterations(1234)
	out := sb.String()
	for _, want := range []string{
		"phase merge start",
		"phase merge done",
		"level 2 subproblem solved by milp",
		"(cached)",
		"anneal restart 1",
		"merge step 3",
		"1234 simplex iterations",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("log missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "rahtm: ") {
			t.Fatalf("line %q missing prefix", line)
		}
	}
}

func TestLogConcurrentUse(t *testing.T) {
	l := NewLog(&strings.Builder{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.BeamRound(i, j, 64, 1)
			}
		}(i)
	}
	wg.Wait()
}
