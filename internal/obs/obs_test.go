package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestOrNop(t *testing.T) {
	if OrNop(nil) == nil {
		t.Fatal("OrNop(nil) must return a usable observer")
	}
	l := NewLog(&strings.Builder{})
	if OrNop(l) != Observer(l) {
		t.Fatal("OrNop must pass through non-nil observers")
	}
	// Nop must absorb every event without panicking.
	n := OrNop(nil)
	n.PhaseStart(PhaseCluster)
	n.PhaseEnd(PhaseMap, time.Second)
	n.SubproblemSolved(0, "anneal", 1, false)
	n.AnnealSample(0, 0, 1, 1, 1)
	n.BeamRound(0, 0, 1, 1)
	n.LPIterations(1)
}

func TestLogWritesEvents(t *testing.T) {
	var sb strings.Builder
	l := NewLog(&sb)
	l.PhaseStart(PhaseMerge)
	l.PhaseEnd(PhaseMerge, 3*time.Millisecond)
	l.SubproblemSolved(2, "milp", 4.5, true)
	l.AnnealSample(1, 256, 0.5, 10, 9)
	l.BeamRound(0, 3, 64, 7.25)
	l.LPIterations(1234)
	out := sb.String()
	for _, want := range []string{
		"phase merge start",
		"phase merge done",
		"level 2 subproblem solved by milp",
		"(cached)",
		"anneal restart 1",
		"merge step 3",
		"1234 simplex iterations",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("log missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "rahtm: ") {
			t.Fatalf("line %q missing prefix", line)
		}
	}
}

// TestLogZeroValueDiscards pins the documented zero-value contract: a zero
// Log, a nil *Log, and NewLog(nil) all silently discard events instead of
// panicking.
func TestLogZeroValueDiscards(t *testing.T) {
	var zero Log
	zero.PhaseStart(PhaseMap)
	zero.LPIterations(7)
	var nilLog *Log
	nilLog.PhaseEnd(PhaseMap, time.Second)
	nilLog.BeamRound(0, 0, 1, 1)
	l := NewLog(nil)
	l.PhaseStart(PhaseCluster)
	l.SubproblemSolved(0, "anneal", 1, false)
	l.WorkerPool(PhaseMap, 2, 3, time.Second)
}

func TestLogCustomPrefix(t *testing.T) {
	var sb strings.Builder
	l := NewLogPrefix(&sb, "run7> ")
	l.PhaseStart(PhaseMap)
	l.LPIterations(3)
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		if !strings.HasPrefix(line, "run7> ") {
			t.Fatalf("line %q missing custom prefix", line)
		}
	}
	sb.Reset()
	NewLogPrefix(&sb, "").PhaseStart(PhaseMap)
	if got := sb.String(); got != "phase map start\n" {
		t.Fatalf("empty prefix: got %q", got)
	}
}

// countingObserver records event counts; it implements only the core
// Observer interface (no extensions), so it doubles as the no-op-path probe
// for EmitWorkerPool / EmitSpan / EmitJobsPlanned.
type countingObserver struct {
	mu     sync.Mutex
	counts map[string]int
}

func newCountingObserver() *countingObserver {
	return &countingObserver{counts: map[string]int{}}
}

func (c *countingObserver) bump(k string) {
	c.mu.Lock()
	c.counts[k]++
	c.mu.Unlock()
}

func (c *countingObserver) count(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[k]
}

func (c *countingObserver) PhaseStart(string)                           { c.bump("start") }
func (c *countingObserver) PhaseEnd(string, time.Duration)              { c.bump("end") }
func (c *countingObserver) SubproblemSolved(int, string, float64, bool) { c.bump("sub") }
func (c *countingObserver) AnnealSample(int, int, float64, float64, float64) {
	c.bump("anneal")
}
func (c *countingObserver) BeamRound(int, int, int, float64) { c.bump("beam") }
func (c *countingObserver) LPIterations(int)                 { c.bump("lp") }

// extObserver additionally implements every optional extension.
type extObserver struct {
	countingObserver
}

func (e *extObserver) WorkerPool(string, int, int, time.Duration) { e.bump("pool") }
func (e *extObserver) Span(string, string, int, int, uint64, time.Time, time.Duration) {
	e.bump("span")
}
func (e *extObserver) JobsPlanned(string, int) { e.bump("planned") }

func TestTeeFanOut(t *testing.T) {
	a := newCountingObserver()
	b := &extObserver{countingObserver{counts: map[string]int{}}}
	o := Tee(nil, a, nil, b)
	o.PhaseStart(PhaseMap)
	o.PhaseEnd(PhaseMap, time.Second)
	o.SubproblemSolved(0, "milp", 1, false)
	o.AnnealSample(0, 0, 1, 1, 1)
	o.BeamRound(0, 0, 1, 1)
	o.LPIterations(5)
	EmitWorkerPool(o, PhaseMap, 4, 8, time.Second)
	EmitSpan(o, "solve", PhaseMap, 0, 1, 42, time.Now(), time.Millisecond)
	EmitJobsPlanned(o, PhaseMap, 8)
	for _, k := range []string{"start", "end", "sub", "anneal", "beam", "lp"} {
		if a.count(k) != 1 || b.count(k) != 1 {
			t.Fatalf("event %q: a=%d b=%d, want 1/1", k, a.count(k), b.count(k))
		}
	}
	// Extension events reach only the member that implements them; the
	// plain member must not see them (and must not panic).
	for _, k := range []string{"pool", "span", "planned"} {
		if a.count(k) != 0 {
			t.Fatalf("plain observer saw extension event %q", k)
		}
		if b.count(k) != 1 {
			t.Fatalf("extension observer missed event %q", k)
		}
	}
}

func TestTeeDegenerateForms(t *testing.T) {
	if _, ok := Tee().(Nop); !ok {
		t.Fatal("empty Tee must collapse to Nop")
	}
	if _, ok := Tee(nil, nil).(Nop); !ok {
		t.Fatal("all-nil Tee must collapse to Nop")
	}
	l := NewLog(&strings.Builder{})
	if Tee(nil, l) != Observer(l) {
		t.Fatal("single-member Tee must return the member unchanged")
	}
}

// TestEmitWorkerPoolNoOpPath pins that the Emit helpers are safe no-ops for
// observers without the extension — including Tee-wrapped ones.
func TestEmitWorkerPoolNoOpPath(t *testing.T) {
	plain := newCountingObserver()
	EmitWorkerPool(plain, PhaseMap, 2, 2, time.Second)
	EmitSpan(plain, "solve", PhaseMap, 0, 0, 0, time.Now(), 0)
	EmitJobsPlanned(plain, PhaseMap, 2)
	if plain.count("pool")+plain.count("span")+plain.count("planned") != 0 {
		t.Fatal("no-op path must not synthesize events")
	}
	other := newCountingObserver()
	EmitWorkerPool(Tee(plain, other), PhaseMap, 2, 2, time.Second)
	if plain.count("pool") != 0 || other.count("pool") != 0 {
		t.Fatal("tee of plain observers must swallow WorkerPool")
	}
}

// TestTeeConcurrentEmission hammers a tee from many goroutines; run with
// -race this verifies the fan-out adds no unsynchronized state.
func TestTeeConcurrentEmission(t *testing.T) {
	a := newCountingObserver()
	b := &extObserver{countingObserver{counts: map[string]int{}}}
	o := Tee(a, b, NewLog(&safeWriter{}))
	const goroutines, events = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				o.SubproblemSolved(g, "anneal", float64(i), i%2 == 0)
				o.BeamRound(g, i, 64, 1)
				EmitSpan(o, "solve", PhaseMap, g, 0, uint64(i), time.Now(), time.Microsecond)
				EmitJobsPlanned(o, PhaseMap, 1)
			}
		}(g)
	}
	wg.Wait()
	if got := a.count("sub"); got != goroutines*events {
		t.Fatalf("lost events: %d/%d", got, goroutines*events)
	}
	if got := b.count("span"); got != goroutines*events {
		t.Fatalf("lost spans: %d/%d", got, goroutines*events)
	}
}

// safeWriter is a mutex-guarded sink (strings.Builder alone is not safe for
// the concurrent Log writes this test provokes).
type safeWriter struct {
	mu sync.Mutex
	n  int
}

func (w *safeWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	w.n += len(p)
	w.mu.Unlock()
	return len(p), nil
}

func TestLogConcurrentUse(t *testing.T) {
	l := NewLog(&strings.Builder{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.BeamRound(i, j, 64, 1)
			}
		}(i)
	}
	wg.Wait()
}
