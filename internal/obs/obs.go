// Package obs defines the Observer tracing layer of the RAHTM pipeline:
// a small event interface through which long-running phases (clustering,
// hierarchical cube mapping, beam merging, LP/MILP solves) report structured
// progress to the caller.
//
// Observers are delivered to the pipeline via core.Config (and, on the
// public facade, rahtm.PipelineConfig / rahtm.Mapper). The zero default is
// Nop; Log writes line-oriented events to an io.Writer, serialized by an
// internal mutex. Every implementation MUST be safe for concurrent use:
// the level-wise scheduler solves Phase 2 subproblems and Phase 3 merges on
// worker goroutines, so callbacks fire concurrently whenever the pipeline
// runs with Parallelism != 1.
package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Pipeline phase names passed to PhaseStart / PhaseEnd.
const (
	PhaseCluster = "cluster" // Phase 1: concentration + per-level coarsening
	PhaseMap     = "map"     // Phase 2: top-down cube mapping
	PhaseMerge   = "merge"   // Phase 3: bottom-up beam merging
)

// Observer receives structured progress events from the RAHTM pipeline.
// Callbacks must not block; the pipeline invokes them synchronously on its
// hot paths (sampled, so the volume stays modest).
//
// Thread safety: implementations must be safe for concurrent use. With
// pipeline Parallelism != 1 the Phase 2/3 level-wise scheduler invokes
// SubproblemSolved, AnnealSample, BeamRound and LPIterations from multiple
// worker goroutines at once (PhaseStart/PhaseEnd remain single-threaded).
// Guard mutable state with a mutex, as Log does.
type Observer interface {
	// PhaseStart fires when a pipeline phase begins (PhaseCluster,
	// PhaseMap, PhaseMerge).
	PhaseStart(phase string)
	// PhaseEnd fires when the phase completes, with its wall-clock
	// duration.
	PhaseEnd(phase string, elapsed time.Duration)
	// SubproblemSolved fires once per Phase 2 cube subproblem: hierarchy
	// level, solver method, achieved MCL, and whether the solution came
	// from the sibling-reuse cache.
	SubproblemSolved(level int, method string, mcl float64, cached bool)
	// AnnealSample reports a sampled point of a simulated-annealing run:
	// restart index, iteration, current temperature, current energy
	// (MCL), and best energy so far.
	AnnealSample(restart, iter int, temp, energy, best float64)
	// BeamRound reports one Phase 3 merge step: hierarchy level, step
	// index within the merge, surviving candidate count, and the best MCL
	// in the beam.
	BeamRound(level, step, candidates int, bestMCL float64)
	// LPIterations reports simplex iterations spent by an LP or MILP
	// solve.
	LPIterations(iters int)
}

// Nop is the no-op Observer; the pipeline default.
type Nop struct{}

// PhaseStart implements Observer.
func (Nop) PhaseStart(string) {}

// PhaseEnd implements Observer.
func (Nop) PhaseEnd(string, time.Duration) {}

// SubproblemSolved implements Observer.
func (Nop) SubproblemSolved(int, string, float64, bool) {}

// AnnealSample implements Observer.
func (Nop) AnnealSample(int, int, float64, float64, float64) {}

// BeamRound implements Observer.
func (Nop) BeamRound(int, int, int, float64) {}

// LPIterations implements Observer.
func (Nop) LPIterations(int) {}

// WorkerPool implements WorkerObserver, so embedders inherit the full
// surface.
func (Nop) WorkerPool(string, int, int, time.Duration) {}

// Span implements SpanObserver, so embedders inherit the full surface.
func (Nop) Span(string, string, int, int, uint64, time.Time, time.Duration) {}

// JobsPlanned implements ProgressObserver, so embedders inherit the full
// surface.
func (Nop) JobsPlanned(string, int) {}

// WorkerObserver is an optional Observer extension: observers that also
// implement it receive worker-pool utilization reports from the level-wise
// scheduler. Like every Observer callback it must be safe for concurrent
// use (the pipeline emits it from the coordinating goroutine, once per
// phase).
type WorkerObserver interface {
	// WorkerPool reports a phase's scheduler configuration and cost:
	// the worker count, the number of jobs (representative subproblem
	// solves or merges) dispatched, and the cumulative busy time across
	// workers (with W workers this may exceed the phase wall time by up
	// to a factor of W).
	WorkerPool(phase string, workers, jobs int, busy time.Duration)
}

// EmitWorkerPool forwards a worker-pool report to o when it implements
// WorkerObserver, and is a no-op otherwise.
func EmitWorkerPool(o Observer, phase string, workers, jobs int, busy time.Duration) {
	if wo, ok := o.(WorkerObserver); ok {
		wo.WorkerPool(phase, workers, jobs, busy)
	}
}

// SpanObserver is an optional Observer extension: observers that also
// implement it receive one timed span per unit of scheduler work — every
// representative subproblem solve, merge job, level preparation, and
// sibling fan-out of the level-wise pipeline.
//
// Unlike the core Observer events, which the scheduler commits in
// deterministic sibling index order, spans fire from worker goroutines the
// moment each job finishes: their order reflects real execution timing and
// varies run to run. Implementations must be safe for concurrent use.
type SpanObserver interface {
	// Span reports one completed unit of work. name identifies the kind
	// ("solve", "merge", "prepare", "leaves", "fanout"); phase is the
	// enclosing pipeline phase; worker is the scheduler worker index that
	// ran the job (-1 for the coordinating goroutine); level is the
	// hierarchy depth; hash is the structural fingerprint of the
	// subproblem (0 when not applicable).
	Span(name, phase string, worker, level int, hash uint64, start time.Time, elapsed time.Duration)
}

// EmitSpan forwards a span to o when it implements SpanObserver, and is a
// no-op otherwise.
func EmitSpan(o Observer, name, phase string, worker, level int, hash uint64, start time.Time, elapsed time.Duration) {
	if so, ok := o.(SpanObserver); ok {
		so.Span(name, phase, worker, level, hash, start, elapsed)
	}
}

// ProgressObserver is an optional Observer extension: observers that also
// implement it learn how many scheduler jobs a phase is about to dispatch,
// which lets live progress views report done/total counts.
type ProgressObserver interface {
	// JobsPlanned reports that the scheduler is about to dispatch n more
	// jobs (representative solves or merges) in the given phase.
	JobsPlanned(phase string, n int)
}

// EmitJobsPlanned forwards a job count to o when it implements
// ProgressObserver, and is a no-op otherwise.
func EmitJobsPlanned(o Observer, phase string, n int) {
	if po, ok := o.(ProgressObserver); ok {
		po.JobsPlanned(phase, n)
	}
}

// OrNop returns o, or Nop when o is nil, so call sites never need a nil
// check.
func OrNop(o Observer) Observer {
	if o == nil {
		return Nop{}
	}
	return o
}

// Tee returns an Observer that fans every event out to all non-nil members,
// in argument order. The tee also implements the WorkerObserver,
// SpanObserver, and ProgressObserver extensions, forwarding each extension
// event only to the members that implement it (so a Log and a span recorder
// compose without either seeing events it does not handle). With zero
// non-nil members it returns Nop; with one, that member unchanged.
//
// The tee adds no synchronization of its own: it is safe for concurrent use
// exactly when every member is, which the Observer contract already
// requires.
func Tee(members ...Observer) Observer {
	kept := make([]Observer, 0, len(members))
	for _, o := range members {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return Nop{}
	case 1:
		return kept[0]
	}
	return tee(kept)
}

type tee []Observer

// PhaseStart implements Observer.
func (t tee) PhaseStart(phase string) {
	for _, o := range t {
		o.PhaseStart(phase)
	}
}

// PhaseEnd implements Observer.
func (t tee) PhaseEnd(phase string, elapsed time.Duration) {
	for _, o := range t {
		o.PhaseEnd(phase, elapsed)
	}
}

// SubproblemSolved implements Observer.
func (t tee) SubproblemSolved(level int, method string, mcl float64, cached bool) {
	for _, o := range t {
		o.SubproblemSolved(level, method, mcl, cached)
	}
}

// AnnealSample implements Observer.
func (t tee) AnnealSample(restart, iter int, temp, energy, best float64) {
	for _, o := range t {
		o.AnnealSample(restart, iter, temp, energy, best)
	}
}

// BeamRound implements Observer.
func (t tee) BeamRound(level, step, candidates int, bestMCL float64) {
	for _, o := range t {
		o.BeamRound(level, step, candidates, bestMCL)
	}
}

// LPIterations implements Observer.
func (t tee) LPIterations(iters int) {
	for _, o := range t {
		o.LPIterations(iters)
	}
}

// WorkerPool implements WorkerObserver, forwarding to members that do.
func (t tee) WorkerPool(phase string, workers, jobs int, busy time.Duration) {
	for _, o := range t {
		EmitWorkerPool(o, phase, workers, jobs, busy)
	}
}

// Span implements SpanObserver, forwarding to members that do.
func (t tee) Span(name, phase string, worker, level int, hash uint64, start time.Time, elapsed time.Duration) {
	for _, o := range t {
		EmitSpan(o, name, phase, worker, level, hash, start, elapsed)
	}
}

// JobsPlanned implements ProgressObserver, forwarding to members that do.
func (t tee) JobsPlanned(phase string, n int) {
	for _, o := range t {
		EmitJobsPlanned(o, phase, n)
	}
}

// DefaultLogPrefix is the line prefix of Log observers built by NewLog.
const DefaultLogPrefix = "rahtm: "

// Log is an Observer that writes one line per event to an io.Writer,
// serialized by an internal mutex. It is safe for concurrent use.
//
// The zero value (and a nil *Log) is a valid observer that silently
// discards every event — a Log carries its writer only through NewLog /
// NewLogPrefix, so a zero Log has nowhere to write. Construct with NewLog;
// do not copy a Log after first use (it contains a mutex).
type Log struct {
	mu     sync.Mutex
	w      io.Writer
	prefix string
}

// NewLog returns a Log writing to w with the default "rahtm: " line prefix.
// A nil w yields an observer that discards every event.
func NewLog(w io.Writer) *Log { return &Log{w: w, prefix: DefaultLogPrefix} }

// NewLogPrefix returns a Log writing to w with a custom line prefix, so
// multi-run drivers can label each run's trace ("run3: ", for example). An
// empty prefix emits bare lines.
func NewLogPrefix(w io.Writer, prefix string) *Log {
	return &Log{w: w, prefix: prefix}
}

func (l *Log) printf(format string, args ...interface{}) {
	if l == nil || l.w == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, l.prefix+format+"\n", args...)
}

// PhaseStart implements Observer.
func (l *Log) PhaseStart(phase string) { l.printf("phase %s start", phase) }

// PhaseEnd implements Observer.
func (l *Log) PhaseEnd(phase string, elapsed time.Duration) {
	l.printf("phase %s done in %v", phase, elapsed)
}

// SubproblemSolved implements Observer.
func (l *Log) SubproblemSolved(level int, method string, mcl float64, cached bool) {
	suffix := ""
	if cached {
		suffix = " (cached)"
	}
	l.printf("level %d subproblem solved by %s, mcl %.4g%s", level, method, mcl, suffix)
}

// AnnealSample implements Observer.
func (l *Log) AnnealSample(restart, iter int, temp, energy, best float64) {
	l.printf("anneal restart %d iter %d temp %.4g energy %.4g best %.4g",
		restart, iter, temp, energy, best)
}

// BeamRound implements Observer.
func (l *Log) BeamRound(level, step, candidates int, bestMCL float64) {
	l.printf("level %d merge step %d: %d candidates, best mcl %.4g",
		level, step, candidates, bestMCL)
}

// LPIterations implements Observer.
func (l *Log) LPIterations(iters int) { l.printf("lp solve: %d simplex iterations", iters) }

// WorkerPool implements WorkerObserver.
func (l *Log) WorkerPool(phase string, workers, jobs int, busy time.Duration) {
	l.printf("phase %s scheduler: %d workers, %d jobs, %v cumulative work", phase, workers, jobs, busy)
}
