// Package obs defines the Observer tracing layer of the RAHTM pipeline:
// a small event interface through which long-running phases (clustering,
// hierarchical cube mapping, beam merging, LP/MILP solves) report structured
// progress to the caller.
//
// Observers are delivered to the pipeline via core.Config (and, on the
// public facade, rahtm.PipelineConfig / rahtm.Mapper). The zero default is
// Nop; Log writes line-oriented events to an io.Writer, serialized by an
// internal mutex. Every implementation MUST be safe for concurrent use:
// the level-wise scheduler solves Phase 2 subproblems and Phase 3 merges on
// worker goroutines, so callbacks fire concurrently whenever the pipeline
// runs with Parallelism != 1.
package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Pipeline phase names passed to PhaseStart / PhaseEnd.
const (
	PhaseCluster = "cluster" // Phase 1: concentration + per-level coarsening
	PhaseMap     = "map"     // Phase 2: top-down cube mapping
	PhaseMerge   = "merge"   // Phase 3: bottom-up beam merging
)

// Observer receives structured progress events from the RAHTM pipeline.
// Callbacks must not block; the pipeline invokes them synchronously on its
// hot paths (sampled, so the volume stays modest).
//
// Thread safety: implementations must be safe for concurrent use. With
// pipeline Parallelism != 1 the Phase 2/3 level-wise scheduler invokes
// SubproblemSolved, AnnealSample, BeamRound and LPIterations from multiple
// worker goroutines at once (PhaseStart/PhaseEnd remain single-threaded).
// Guard mutable state with a mutex, as Log does.
type Observer interface {
	// PhaseStart fires when a pipeline phase begins (PhaseCluster,
	// PhaseMap, PhaseMerge).
	PhaseStart(phase string)
	// PhaseEnd fires when the phase completes, with its wall-clock
	// duration.
	PhaseEnd(phase string, elapsed time.Duration)
	// SubproblemSolved fires once per Phase 2 cube subproblem: hierarchy
	// level, solver method, achieved MCL, and whether the solution came
	// from the sibling-reuse cache.
	SubproblemSolved(level int, method string, mcl float64, cached bool)
	// AnnealSample reports a sampled point of a simulated-annealing run:
	// restart index, iteration, current temperature, current energy
	// (MCL), and best energy so far.
	AnnealSample(restart, iter int, temp, energy, best float64)
	// BeamRound reports one Phase 3 merge step: hierarchy level, step
	// index within the merge, surviving candidate count, and the best MCL
	// in the beam.
	BeamRound(level, step, candidates int, bestMCL float64)
	// LPIterations reports simplex iterations spent by an LP or MILP
	// solve.
	LPIterations(iters int)
}

// Nop is the no-op Observer; the pipeline default.
type Nop struct{}

// PhaseStart implements Observer.
func (Nop) PhaseStart(string) {}

// PhaseEnd implements Observer.
func (Nop) PhaseEnd(string, time.Duration) {}

// SubproblemSolved implements Observer.
func (Nop) SubproblemSolved(int, string, float64, bool) {}

// AnnealSample implements Observer.
func (Nop) AnnealSample(int, int, float64, float64, float64) {}

// BeamRound implements Observer.
func (Nop) BeamRound(int, int, int, float64) {}

// LPIterations implements Observer.
func (Nop) LPIterations(int) {}

// WorkerPool implements WorkerObserver, so embedders inherit the full
// surface.
func (Nop) WorkerPool(string, int, int, time.Duration) {}

// WorkerObserver is an optional Observer extension: observers that also
// implement it receive worker-pool utilization reports from the level-wise
// scheduler. Like every Observer callback it must be safe for concurrent
// use (the pipeline emits it from the coordinating goroutine, once per
// phase).
type WorkerObserver interface {
	// WorkerPool reports a phase's scheduler configuration and cost:
	// the worker count, the number of jobs (representative subproblem
	// solves or merges) dispatched, and the cumulative busy time across
	// workers (with W workers this may exceed the phase wall time by up
	// to a factor of W).
	WorkerPool(phase string, workers, jobs int, busy time.Duration)
}

// EmitWorkerPool forwards a worker-pool report to o when it implements
// WorkerObserver, and is a no-op otherwise.
func EmitWorkerPool(o Observer, phase string, workers, jobs int, busy time.Duration) {
	if wo, ok := o.(WorkerObserver); ok {
		wo.WorkerPool(phase, workers, jobs, busy)
	}
}

// OrNop returns o, or Nop when o is nil, so call sites never need a nil
// check.
func OrNop(o Observer) Observer {
	if o == nil {
		return Nop{}
	}
	return o
}

// Log is an Observer that writes one line per event to W, prefixed with
// "rahtm:". It is safe for concurrent use. The zero value discards events;
// use NewLog.
type Log struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLog returns a Log writing to w.
func NewLog(w io.Writer) *Log { return &Log{w: w} }

func (l *Log) printf(format string, args ...interface{}) {
	if l == nil || l.w == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, "rahtm: "+format+"\n", args...)
}

// PhaseStart implements Observer.
func (l *Log) PhaseStart(phase string) { l.printf("phase %s start", phase) }

// PhaseEnd implements Observer.
func (l *Log) PhaseEnd(phase string, elapsed time.Duration) {
	l.printf("phase %s done in %v", phase, elapsed)
}

// SubproblemSolved implements Observer.
func (l *Log) SubproblemSolved(level int, method string, mcl float64, cached bool) {
	suffix := ""
	if cached {
		suffix = " (cached)"
	}
	l.printf("level %d subproblem solved by %s, mcl %.4g%s", level, method, mcl, suffix)
}

// AnnealSample implements Observer.
func (l *Log) AnnealSample(restart, iter int, temp, energy, best float64) {
	l.printf("anneal restart %d iter %d temp %.4g energy %.4g best %.4g",
		restart, iter, temp, energy, best)
}

// BeamRound implements Observer.
func (l *Log) BeamRound(level, step, candidates int, bestMCL float64) {
	l.printf("level %d merge step %d: %d candidates, best mcl %.4g",
		level, step, candidates, bestMCL)
}

// LPIterations implements Observer.
func (l *Log) LPIterations(iters int) { l.printf("lp solve: %d simplex iterations", iters) }

// WorkerPool implements WorkerObserver.
func (l *Log) WorkerPool(phase string, workers, jobs int, busy time.Duration) {
	l.printf("phase %s scheduler: %d workers, %d jobs, %v cumulative work", phase, workers, jobs, busy)
}
