// Package mapfile reads and writes task-mapping files in the two formats
// Blue Gene/Q's runtime understands (§II-B "the MPI runtime allows for
// arbitrary task-to-node mappings that can be read from a file"):
//
//   - rank format: one topology node rank per line, indexed by MPI rank;
//   - coordinate format: one whitespace-separated coordinate tuple per
//     line, "A B C D E T" style — the torus coordinates followed by the
//     in-node slot.
//
// Lines starting with '#' are comments in both formats.
package mapfile

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"rahtm/internal/topology"
)

// WriteRanks writes the rank format (optionally with a header comment).
func WriteRanks(w io.Writer, m topology.Mapping, header string) error {
	bw := bufio.NewWriter(w)
	if header != "" {
		if _, err := fmt.Fprintf(bw, "# %s\n", header); err != nil {
			return err
		}
	}
	for _, node := range m {
		if _, err := fmt.Fprintln(bw, node); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadRanks parses the rank format. Node ranks are validated against t when
// t is non-nil.
func ReadRanks(r io.Reader, t *topology.Torus) (topology.Mapping, error) {
	var m topology.Mapping
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || strings.HasPrefix(txt, "#") {
			continue
		}
		v, err := strconv.Atoi(txt)
		if err != nil {
			return nil, fmt.Errorf("mapfile: line %d: bad rank %q", line, txt)
		}
		if v < 0 || (t != nil && v >= t.N()) {
			return nil, fmt.Errorf("mapfile: line %d: rank %d out of range", line, v)
		}
		m = append(m, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("mapfile: no mapping entries")
	}
	return m, nil
}

// WriteCoords writes the BG/Q coordinate format: for each MPI rank, the
// torus coordinates of its node followed by the in-node slot (the T value).
// Slots are assigned in rank order per node.
func WriteCoords(w io.Writer, t *topology.Torus, m topology.Mapping, header string) error {
	bw := bufio.NewWriter(w)
	if header != "" {
		if _, err := fmt.Fprintf(bw, "# %s\n", header); err != nil {
			return err
		}
	}
	slot := make(map[int]int, t.N())
	coord := make([]int, t.NumDims())
	for _, node := range m {
		if node < 0 || node >= t.N() {
			return fmt.Errorf("mapfile: node rank %d out of range", node)
		}
		coord = t.CoordOf(node, coord)
		parts := make([]string, 0, len(coord)+1)
		for _, c := range coord {
			parts = append(parts, strconv.Itoa(c))
		}
		parts = append(parts, strconv.Itoa(slot[node]))
		slot[node]++
		if _, err := fmt.Fprintln(bw, strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCoords parses the coordinate format against topology t; the trailing
// T column is allowed but ignored for the node rank (it orders processes
// within a node).
func ReadCoords(r io.Reader, t *topology.Torus) (topology.Mapping, error) {
	var m topology.Mapping
	sc := bufio.NewScanner(r)
	line := 0
	nd := t.NumDims()
	coord := make([]int, nd)
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || strings.HasPrefix(txt, "#") {
			continue
		}
		fields := strings.Fields(txt)
		if len(fields) != nd && len(fields) != nd+1 {
			return nil, fmt.Errorf("mapfile: line %d: want %d or %d columns, got %d",
				line, nd, nd+1, len(fields))
		}
		for d := 0; d < nd; d++ {
			v, err := strconv.Atoi(fields[d])
			if err != nil {
				return nil, fmt.Errorf("mapfile: line %d: bad coordinate %q", line, fields[d])
			}
			if v < 0 || v >= t.Dim(d) {
				return nil, fmt.Errorf("mapfile: line %d: coordinate %d out of range [0,%d)", line, v, t.Dim(d))
			}
			coord[d] = v
		}
		m = append(m, t.RankOf(coord))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("mapfile: no mapping entries")
	}
	return m, nil
}

// Detect reads a mapping in either format, sniffing by column count.
func Detect(r io.Reader, t *topology.Torus) (topology.Mapping, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	cols := 0
	for _, line := range strings.Split(string(data), "\n") {
		txt := strings.TrimSpace(line)
		if txt == "" || strings.HasPrefix(txt, "#") {
			continue
		}
		cols = len(strings.Fields(txt))
		break
	}
	switch {
	case cols == 1:
		return ReadRanks(strings.NewReader(string(data)), t)
	case cols > 1:
		return ReadCoords(strings.NewReader(string(data)), t)
	}
	return nil, fmt.Errorf("mapfile: empty mapping file")
}
