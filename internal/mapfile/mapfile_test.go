package mapfile

import (
	"bytes"
	"strings"
	"testing"

	"rahtm/internal/topology"
)

func TestRankRoundTrip(t *testing.T) {
	m := topology.Mapping{3, 1, 0, 2, 3, 1}
	var buf bytes.Buffer
	if err := WriteRanks(&buf, m, "test header"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRanks(&buf, topology.NewTorus(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(m) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range m {
		if got[i] != m[i] {
			t.Fatalf("entry %d: %d != %d", i, got[i], m[i])
		}
	}
}

func TestCoordRoundTrip(t *testing.T) {
	tp := topology.NewTorus(4, 4, 2)
	m := topology.Mapping{0, 5, 31, 5, 16}
	var buf bytes.Buffer
	if err := WriteCoords(&buf, tp, m, "coords"); err != nil {
		t.Fatal(err)
	}
	// Two processes on node 5 must get distinct T slots.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 { // header + 5 entries
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	if lines[2] == lines[4] {
		t.Fatalf("duplicate node entries share a slot:\n%s", buf.String())
	}
	got, err := ReadCoords(strings.NewReader(buf.String()), tp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m {
		if got[i] != m[i] {
			t.Fatalf("entry %d: %d != %d", i, got[i], m[i])
		}
	}
}

func TestReadCoordsWithoutT(t *testing.T) {
	tp := topology.NewTorus(2, 2)
	got, err := ReadCoords(strings.NewReader("0 1\n1 0\n"), tp)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("mapping = %v", got)
	}
}

func TestDetect(t *testing.T) {
	tp := topology.NewTorus(2, 2)
	m, err := Detect(strings.NewReader("# c\n2\n3\n"), tp)
	if err != nil || m[0] != 2 {
		t.Fatalf("rank detect: %v %v", m, err)
	}
	m, err = Detect(strings.NewReader("1 1 0\n0 0 0\n"), tp)
	if err != nil || m[0] != 3 {
		t.Fatalf("coord detect: %v %v", m, err)
	}
	if _, err := Detect(strings.NewReader("# only comments\n"), tp); err == nil {
		t.Fatal("empty file should fail")
	}
}

func TestReadErrors(t *testing.T) {
	tp := topology.NewTorus(2, 2)
	if _, err := ReadRanks(strings.NewReader("abc\n"), tp); err == nil {
		t.Fatal("bad rank should fail")
	}
	if _, err := ReadRanks(strings.NewReader("9\n"), tp); err == nil {
		t.Fatal("out-of-range rank should fail")
	}
	if _, err := ReadRanks(strings.NewReader(""), tp); err == nil {
		t.Fatal("empty should fail")
	}
	if _, err := ReadCoords(strings.NewReader("1\n"), tp); err == nil {
		t.Fatal("short row should fail")
	}
	if _, err := ReadCoords(strings.NewReader("5 0\n"), tp); err == nil {
		t.Fatal("out-of-range coord should fail")
	}
	if _, err := ReadCoords(strings.NewReader("a 0\n"), tp); err == nil {
		t.Fatal("bad coord should fail")
	}
	if err := WriteCoords(&bytes.Buffer{}, tp, topology.Mapping{99}, ""); err == nil {
		t.Fatal("bad node should fail on write")
	}
}
