package netsim

import (
	"math"
	"testing"

	"rahtm/internal/graph"
	"rahtm/internal/routing"
	"rahtm/internal/topology"
)

func TestCommTimeLinkBound(t *testing.T) {
	tp := topology.NewMesh(2)
	g := graph.New(2)
	g.AddTraffic(0, 1, 2e9) // 2 GB over a 2 GB/s link = 1 s
	rep, err := CommTime(tp, g, topology.Identity(2), Model{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.LinkTime-1) > 1e-9 {
		t.Fatalf("link time = %v, want 1", rep.LinkTime)
	}
	if rep.Time < rep.LinkTime {
		t.Fatal("total time below link time")
	}
	if rep.MCL != 2e9 {
		t.Fatalf("MCL = %v", rep.MCL)
	}
}

func TestCommTimeInjectionBound(t *testing.T) {
	// One node fans out to many: with a high link bandwidth the injection
	// term dominates.
	tp := topology.NewTorus(4)
	g := graph.New(4)
	g.AddTraffic(0, 1, 1e9)
	g.AddTraffic(0, 2, 1e9)
	g.AddTraffic(0, 3, 1e9)
	rep, err := CommTime(tp, g, topology.Identity(4), Model{
		LinkBandwidth:      1e12,
		InjectionBandwidth: 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.InjectionTime-3) > 1e-9 {
		t.Fatalf("injection time = %v, want 3", rep.InjectionTime)
	}
	if math.Abs(rep.Time-3) > 1e-9 {
		t.Fatalf("time = %v, want 3 (injection bound)", rep.Time)
	}
}

func TestCommTimeColocatedFree(t *testing.T) {
	tp := topology.NewMesh(2)
	g := graph.New(4)
	g.AddTraffic(0, 1, 1e12)
	rep, err := CommTime(tp, g, topology.Mapping{0, 0, 0, 1}, Model{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Time != 0 {
		t.Fatalf("co-located traffic cost %v, want 0", rep.Time)
	}
}

func TestCommTimeMappingMismatch(t *testing.T) {
	tp := topology.NewMesh(2)
	g := graph.New(3)
	if _, err := CommTime(tp, g, topology.Mapping{0, 1}, Model{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestCalibrationMatchesTargetFraction(t *testing.T) {
	cal, err := Calibrate(2.0, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	if f := cal.CommFraction(2.0); math.Abs(f-0.35) > 1e-12 {
		t.Fatalf("calibrated fraction = %v, want 0.35", f)
	}
	// Halving communication time improves execution by Amdahl's law:
	// speedup = 1 / (0.65 + 0.35/2) = 1.212...
	base := cal.ExecTime(2.0)
	fast := cal.ExecTime(1.0)
	wantRatio := 0.65 + 0.35/2
	if math.Abs(fast/base-wantRatio) > 1e-12 {
		t.Fatalf("exec ratio = %v, want %v", fast/base, wantRatio)
	}
}

func TestCalibrationErrors(t *testing.T) {
	if _, err := Calibrate(1, 0); err == nil {
		t.Fatal("fraction 0 should fail")
	}
	if _, err := Calibrate(1, 1); err == nil {
		t.Fatal("fraction 1 should fail")
	}
	if _, err := Calibrate(-1, 0.5); err == nil {
		t.Fatal("negative baseline should fail")
	}
}

func TestModelDefaults(t *testing.T) {
	m := Model{}.WithDefaults()
	if m.LinkBandwidth != 2e9 || m.InjectionBandwidth != 8e9 || m.EjectionBandwidth != 8e9 {
		t.Fatalf("defaults = %+v", m)
	}
	if m.Routing == nil || m.Routing.Name() != (routing.MinimalAdaptive{}).Name() {
		t.Fatal("default routing should be minimal adaptive")
	}
}

func TestCommFractionZeroTotal(t *testing.T) {
	cal := Calibration{CompTime: 0}
	if cal.CommFraction(0) != 0 {
		t.Fatal("zero total should give zero fraction")
	}
}
