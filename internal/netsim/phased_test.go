package netsim

import (
	"math"
	"testing"

	"rahtm/internal/graph"
	"rahtm/internal/topology"
)

func TestPhasedCommTimeSumsPhases(t *testing.T) {
	tp := topology.NewMesh(2)
	a := graph.New(2)
	a.AddTraffic(0, 1, 2e9)
	b := graph.New(2)
	b.AddTraffic(1, 0, 4e9)
	total, reports, err := PhasedCommTime(tp, []*graph.Comm{a, b}, topology.Identity(2), Model{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	// 1s + 2s.
	if math.Abs(total-3) > 1e-9 {
		t.Fatalf("total = %v, want 3", total)
	}
}

func TestPhasedExceedsUnionWhenHotspotsDiffer(t *testing.T) {
	// Phase A loads link 0->1, phase B loads 1->0: the union's MCL sees
	// them independently (max), but the phased time pays both in sequence.
	tp := topology.NewMesh(2)
	a := graph.New(2)
	a.AddTraffic(0, 1, 2e9)
	b := graph.New(2)
	b.AddTraffic(1, 0, 2e9)
	union := graph.New(2)
	union.AddTraffic(0, 1, 2e9)
	union.AddTraffic(1, 0, 2e9)

	phased, _, err := PhasedCommTime(tp, []*graph.Comm{a, b}, topology.Identity(2), Model{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CommTime(tp, union, topology.Identity(2), Model{})
	if err != nil {
		t.Fatal(err)
	}
	if phased <= rep.Time {
		t.Fatalf("phased %v should exceed union %v (barriers serialize)", phased, rep.Time)
	}
}

func TestPhasedCommTimeError(t *testing.T) {
	tp := topology.NewMesh(2)
	g := graph.New(3)
	if _, _, err := PhasedCommTime(tp, []*graph.Comm{g}, topology.Identity(2), Model{}); err == nil {
		t.Fatal("mismatched phase should fail")
	}
}
