// Package netsim is a flow-level network performance model for iterative
// HPC communication on torus topologies. It replaces the paper's physical
// Blue Gene/Q runs: per-iteration communication time is dominated by the
// most contended resource — the hottest network channel, or the injection/
// ejection bandwidth of the busiest node — and overall execution time adds a
// computation term calibrated from the measured communication fraction
// (Figure 9 in the paper).
//
// The model is deliberately throughput-centric: the paper's benchmarks are
// bandwidth-bound, which is exactly why minimizing the maximum channel load
// (MCL) is the right mapping objective (§II-B).
package netsim

import (
	"fmt"

	"rahtm/internal/graph"
	"rahtm/internal/routing"
	"rahtm/internal/topology"
)

// Model holds the machine's bandwidth parameters. Zero fields take Blue
// Gene/Q-flavored defaults via WithDefaults.
type Model struct {
	// LinkBandwidth is bytes/second per network channel (BG/Q: 2 GB/s).
	LinkBandwidth float64
	// InjectionBandwidth is bytes/second from a node into the network; the
	// torus NIC on BG/Q also runs at 2 GB/s per link with 10 links, but the
	// memory system bounds sustained injection.
	InjectionBandwidth float64
	// EjectionBandwidth is bytes/second from the network into a node.
	EjectionBandwidth float64
	// Routing is the routing model (default: minimal adaptive
	// approximation).
	Routing routing.Algorithm
}

// WithDefaults fills zero fields with BG/Q-like values.
func (m Model) WithDefaults() Model {
	if m.LinkBandwidth <= 0 {
		m.LinkBandwidth = 2e9
	}
	if m.InjectionBandwidth <= 0 {
		m.InjectionBandwidth = 8e9
	}
	if m.EjectionBandwidth <= 0 {
		m.EjectionBandwidth = 8e9
	}
	if m.Routing == nil {
		m.Routing = routing.MinimalAdaptive{}
	}
	return m
}

// CommReport breaks down one iteration's communication time.
type CommReport struct {
	Time          float64 // seconds per iteration (max of the three terms)
	LinkTime      float64 // MCL / LinkBandwidth
	InjectionTime float64 // busiest sender / InjectionBandwidth
	EjectionTime  float64 // busiest receiver / EjectionBandwidth
	MCL           float64 // bytes on the hottest channel
}

// CommTime estimates one iteration's communication time for graph g mapped
// onto t by mapping (tasks may share nodes; co-located traffic is free).
func CommTime(t *topology.Torus, g *graph.Comm, mapping topology.Mapping, model Model) (*CommReport, error) {
	model = model.WithDefaults()
	if len(mapping) != g.N() {
		return nil, fmt.Errorf("netsim: mapping covers %d tasks, graph has %d", len(mapping), g.N())
	}
	loads := routing.ChannelLoads(t, g, mapping, model.Routing)
	mcl := routing.MCL(loads)

	inj := make([]float64, t.N())
	ej := make([]float64, t.N())
	for _, f := range g.Flows() {
		s, d := mapping[f.Src], mapping[f.Dst]
		if s == d {
			continue
		}
		inj[s] += f.Vol
		ej[d] += f.Vol
	}
	maxInj, maxEj := 0.0, 0.0
	for n := 0; n < t.N(); n++ {
		if inj[n] > maxInj {
			maxInj = inj[n]
		}
		if ej[n] > maxEj {
			maxEj = ej[n]
		}
	}
	rep := &CommReport{
		LinkTime:      mcl / model.LinkBandwidth,
		InjectionTime: maxInj / model.InjectionBandwidth,
		EjectionTime:  maxEj / model.EjectionBandwidth,
		MCL:           mcl,
	}
	rep.Time = rep.LinkTime
	if rep.InjectionTime > rep.Time {
		rep.Time = rep.InjectionTime
	}
	if rep.EjectionTime > rep.Time {
		rep.Time = rep.EjectionTime
	}
	return rep, nil
}

// Calibration fixes the computation term of the execution model so that the
// baseline mapping reproduces a target communication fraction — the role
// Figure 9 (IPM profiles) plays in the paper.
type Calibration struct {
	CompTime float64 // seconds of computation per iteration
}

// Calibrate computes the computation time such that commFraction of total
// time is communication when communication costs baselineCommTime:
// comp = comm * (1 - f) / f.
func Calibrate(baselineCommTime, commFraction float64) (Calibration, error) {
	if commFraction <= 0 || commFraction >= 1 {
		return Calibration{}, fmt.Errorf("netsim: communication fraction %v outside (0,1)", commFraction)
	}
	if baselineCommTime < 0 {
		return Calibration{}, fmt.Errorf("netsim: negative baseline communication time")
	}
	return Calibration{CompTime: baselineCommTime * (1 - commFraction) / commFraction}, nil
}

// ExecTime is the per-iteration execution time: exposed communication plus
// the calibrated computation (the paper's benchmarks overlap little).
func (c Calibration) ExecTime(commTime float64) float64 {
	return c.CompTime + commTime
}

// CommFraction reports the communication share of execution for a given
// communication time under this calibration.
func (c Calibration) CommFraction(commTime float64) float64 {
	total := c.ExecTime(commTime)
	if total == 0 {
		return 0
	}
	return commTime / total
}

// PhasedCommTime estimates one iteration of a multi-phase application:
// phases are separated by barriers, so each phase pays its own bottleneck
// and the iteration's communication time is the SUM of per-phase times —
// generally larger than evaluating the union graph, whose hot spots may
// belong to different phases.
func PhasedCommTime(t *topology.Torus, phases []*graph.Comm, mapping topology.Mapping, model Model) (float64, []*CommReport, error) {
	total := 0.0
	reports := make([]*CommReport, 0, len(phases))
	for i, g := range phases {
		rep, err := CommTime(t, g, mapping, model)
		if err != nil {
			return 0, nil, fmt.Errorf("netsim: phase %d: %w", i, err)
		}
		total += rep.Time
		reports = append(reports, rep)
	}
	return total, reports, nil
}
