package hiermap

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"rahtm/internal/graph"
	"rahtm/internal/lp"
	"rahtm/internal/mcflow"
	"rahtm/internal/routing"
	"rahtm/internal/topology"
)

func ringGraph(n int, w float64) *graph.Comm {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddTraffic(i, (i+1)%n, w)
	}
	return g
}

// figure1Graph reproduces the paper's Figure 1 communication graph: a heavy
// pair plus light edges around.
func figure1Graph() *graph.Comm {
	g := graph.New(4)
	g.AddTraffic(0, 1, 10) // the heavy pair
	g.AddTraffic(1, 2, 1)
	g.AddTraffic(2, 3, 1)
	g.AddTraffic(3, 0, 1)
	return g
}

func diagonalDistance(shape []int, m topology.Mapping, a, b int) int {
	mesh := topology.NewMesh(shape...)
	return mesh.MinDistance(m[a], m[b])
}

func TestExhaustiveFigure1PutsHeavyPairOnDiagonal(t *testing.T) {
	res, err := Map(figure1Graph(), []int{2, 2}, Config{Method: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proved {
		t.Fatal("exhaustive must prove optimality")
	}
	if d := diagonalDistance([]int{2, 2}, res.Mapping, 0, 1); d != 2 {
		t.Fatalf("heavy pair at distance %d, want 2 (diagonal); mapping %v", d, res.Mapping)
	}
	// Heavy flow splits 5/5; light flows add at most 1 per link.
	if res.MCL > 6+1e-9 {
		t.Fatalf("MCL = %v, want <= 6", res.MCL)
	}
}

func TestMILPFigure1PutsHeavyPairOnDiagonal(t *testing.T) {
	res, err := Map(figure1Graph(), []int{2, 2}, Config{Method: MILP, MILPDeadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proved {
		t.Fatalf("MILP did not prove optimality")
	}
	if d := diagonalDistance([]int{2, 2}, res.Mapping, 0, 1); d != 2 {
		t.Fatalf("heavy pair at distance %d, want 2 (diagonal); mapping %v", d, res.Mapping)
	}
}

func TestMILPObjectiveMatchesLPEvaluator(t *testing.T) {
	// On a mesh, the Table II model and the fixed-mapping minimal-path LP
	// agree: re-evaluating the MILP's mapping with mcflow must reproduce an
	// MCL no worse than any other placement's.
	g := figure1Graph()
	shape := []int{2, 2}
	res, err := Map(g, shape, Config{Method: MILP, MILPDeadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	mesh := topology.NewMesh(shape...)
	milpEval, err := mcflow.Evaluate(mesh, g, res.Mapping, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Brute force: best optimal-split MCL over all 24 placements.
	best := math.Inf(1)
	perm := []int{0, 1, 2, 3}
	var permute func(k int)
	permute = func(k int) {
		if k == 4 {
			ev, err := mcflow.Evaluate(mesh, g, topology.Mapping(perm), lp.Options{})
			if err == nil && ev.MCL < best {
				best = ev.MCL
			}
			return
		}
		for i := k; i < 4; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			permute(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	permute(0)
	if milpEval.MCL > best+1e-6 {
		t.Fatalf("MILP mapping LP-MCL %v, best possible %v", milpEval.MCL, best)
	}
}

func TestExhaustiveMatchesBruteForceUniformModel(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		g := graph.New(4)
		for e := 0; e < 6; e++ {
			g.AddTraffic(rng.Intn(4), rng.Intn(4), float64(1+rng.Intn(9)))
		}
		res, err := Map(g, []int{2, 2}, Config{Method: Exhaustive})
		if err != nil {
			t.Fatal(err)
		}
		mesh := topology.NewMesh(2, 2)
		best := math.Inf(1)
		perm := []int{0, 1, 2, 3}
		var permute func(k int)
		permute = func(k int) {
			if k == 4 {
				mcl := routing.MaxChannelLoad(mesh, g, topology.Mapping(perm), routing.MinimalAdaptive{})
				if mcl < best {
					best = mcl
				}
				return
			}
			for i := k; i < 4; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				permute(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		permute(0)
		if math.Abs(res.MCL-best) > 1e-9 {
			t.Fatalf("trial %d: exhaustive MCL %v, brute force %v", trial, res.MCL, best)
		}
	}
}

func TestMILPNeverWorseThanExhaustiveUnderLPModel(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	mesh := topology.NewMesh(2, 2)
	for trial := 0; trial < 5; trial++ {
		g := graph.New(4)
		for e := 0; e < 5; e++ {
			g.AddTraffic(rng.Intn(4), rng.Intn(4), float64(1+rng.Intn(5)))
		}
		mRes, err := Map(g, []int{2, 2}, Config{Method: MILP, MILPDeadline: time.Minute, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		eRes, err := Map(g, []int{2, 2}, Config{Method: Exhaustive})
		if err != nil {
			t.Fatal(err)
		}
		mEval, err := mcflow.Evaluate(mesh, g, mRes.Mapping, lp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		eEval, err := mcflow.Evaluate(mesh, g, eRes.Mapping, lp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if mRes.Proved && mEval.MCL > eEval.MCL+1e-6 {
			t.Fatalf("trial %d: proved MILP LP-MCL %v worse than exhaustive %v", trial, mEval.MCL, eEval.MCL)
		}
	}
}

func TestAnnealFindsGoodRingMapping(t *testing.T) {
	g := ringGraph(8, 5)
	aRes, err := Map(g, []int{2, 2, 2}, Config{Method: Anneal, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	eRes, err := Map(g, []int{2, 2, 2}, Config{Method: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if aRes.MCL < eRes.MCL-1e-9 {
		t.Fatalf("anneal %v beat proven optimum %v", aRes.MCL, eRes.MCL)
	}
	// A ring embeds in the cube with bounded contention; annealing should
	// land within 2x of optimal on this easy instance.
	if aRes.MCL > 2*eRes.MCL+1e-9 {
		t.Fatalf("anneal MCL %v, optimum %v", aRes.MCL, eRes.MCL)
	}
}

func TestAutoSelectsBySize(t *testing.T) {
	res, err := Map(ringGraph(4, 1), []int{2, 2}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != Exhaustive {
		t.Fatalf("auto picked %v for 4 nodes, want exhaustive", res.Method)
	}
	res, err = Map(ringGraph(16, 1), []int{2, 2, 2, 2}, Config{AnnealIters: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != Anneal {
		t.Fatalf("auto picked %v for 16 nodes, want anneal", res.Method)
	}
}

func TestTorusDoubleLinksHalveLoad(t *testing.T) {
	// Two clusters exchanging on a 2-cube with torus links: load splits
	// across the double links.
	g := graph.New(2)
	g.AddTraffic(0, 1, 8)
	res, err := Map(g, []int{2, 1}, Config{Method: Exhaustive, Torus: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MCL-4) > 1e-9 {
		t.Fatalf("torus MCL = %v, want 4 (double-wide links)", res.MCL)
	}
	res, err = Map(g, []int{2, 1}, Config{Method: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MCL-8) > 1e-9 {
		t.Fatalf("mesh MCL = %v, want 8", res.MCL)
	}
}

func TestMapValidation(t *testing.T) {
	if _, err := Map(ringGraph(4, 1), []int{3, 2}, Config{}); err == nil {
		t.Fatal("expected error for non-2-ary shape")
	}
	if _, err := Map(ringGraph(3, 1), []int{2, 2}, Config{}); err == nil {
		t.Fatal("expected error for size mismatch")
	}
}

func TestMethodString(t *testing.T) {
	for m, want := range map[Method]string{
		Auto: "auto", MILP: "milp", Exhaustive: "exhaustive", Anneal: "anneal",
	} {
		if m.String() != want {
			t.Fatalf("Method(%d).String() = %q", m, m.String())
		}
	}
}

func TestEvaluateConsistentWithResult(t *testing.T) {
	g := figure1Graph()
	res, err := Map(g, []int{2, 2}, Config{Method: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if ev := Evaluate(g, []int{2, 2}, false, res.Mapping); math.Abs(ev-res.MCL) > 1e-12 {
		t.Fatalf("Evaluate = %v, Result.MCL = %v", ev, res.MCL)
	}
}

// Property-style check: the exhaustive mapping is always a permutation.
func TestExhaustiveProducesPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		g := graph.New(8)
		for e := 0; e < 12; e++ {
			g.AddTraffic(rng.Intn(8), rng.Intn(8), float64(1+rng.Intn(4)))
		}
		res, err := Map(g, []int{2, 2, 2}, Config{Method: Exhaustive})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Mapping.Validate(8, true); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
