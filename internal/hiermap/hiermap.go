// Package hiermap implements Phase 2 of RAHTM: optimally mapping a cluster
// communication graph onto a small 2-ary n-cube (a {1,2}^n mesh, or the
// "double-wide link" 2-ary torus at the root level).
//
// Three solvers are provided:
//
//   - MILP: the paper's Table II mixed integer linear program — binary
//     placement variables g, per-flow per-edge flow variables f, binary
//     per-flow per-dimension direction variables r enforcing minimal
//     routing, minimizing the maximum channel load. Solved by the
//     branch-and-bound in internal/milp.
//   - Exhaustive: enumerate all |V|! placements and score each with the
//     balanced all-minimal-paths evaluator; exact for the uniform-split
//     routing model and fast up to 8-node cubes.
//   - Anneal: seeded simulated annealing over placements, for cubes too
//     large to enumerate.
//
// Method Auto picks Exhaustive for cubes of at most 8 nodes and Anneal
// above, with the MILP available explicitly (it is exact for the
// optimal-split routing model but costs branch-and-bound time).
package hiermap

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"rahtm/internal/graph"
	"rahtm/internal/obs"
	"rahtm/internal/routing"
	"rahtm/internal/telemetry"
	"rahtm/internal/topology"
)

// Annealing acceptance counters on the process-wide registry. The hot loop
// accumulates plain locals and flushes once per solve.
var (
	ctrAnnealMoves    = telemetry.Default.Counter(telemetry.CtrAnnealMoves)
	ctrAnnealAccepted = telemetry.Default.Counter(telemetry.CtrAnnealAccepted)
	ctrAnnealRestarts = telemetry.Default.Counter(telemetry.CtrAnnealRestarts)
)

// Method selects the subproblem solver.
type Method int8

// Solver methods.
const (
	Auto       Method = iota // Exhaustive for <= 8 nodes, Anneal above
	MILP                     // Table II mixed integer program
	Exhaustive               // all placements, uniform-split evaluator
	Anneal                   // simulated annealing, uniform-split evaluator
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case Auto:
		return "auto"
	case MILP:
		return "milp"
	case Exhaustive:
		return "exhaustive"
	case Anneal:
		return "anneal"
	}
	return "bad-method"
}

// Config tunes the solvers. The zero value is usable.
type Config struct {
	Method Method
	// Torus evaluates the cube with wrapped (double-wide) links, as the
	// paper does for the root 2-ary n-torus.
	Torus bool
	// MILPDeadline bounds the branch-and-bound (0 = 30s).
	MILPDeadline time.Duration
	// MILPMaxNodes bounds branch-and-bound nodes (0 = default).
	MILPMaxNodes int
	// AnnealIters is the annealing step count (0 = 40 * |V|^2).
	AnnealIters int
	// AnnealRestarts is the number of independent annealing runs (0 = 4).
	AnnealRestarts int
	// Seed makes annealing deterministic.
	Seed int64
	// Parallelism is passed to the branch-and-bound solver's speculative
	// prefetch mode (<= 1: sequential). Any setting yields the identical
	// mapping — milp results are bitwise parallelism-invariant.
	Parallelism int
	// Observer receives annealing samples and LP iteration counts; nil is
	// a no-op.
	Observer obs.Observer
}

// Result of mapping a cluster graph onto a cube.
type Result struct {
	Mapping topology.Mapping // cluster -> cube position (row-major in shape)
	MCL     float64          // achieved maximum channel load (uniform-split model)
	Method  Method           // solver that produced the mapping
	Proved  bool             // true when the solver proved optimality
	// Degraded is set when the context deadline expired mid-solve and the
	// mapping is the best found so far rather than the full search result.
	Degraded bool
}

// Map places the |V| clusters of g onto the cube with the given {1,2}^n
// shape (|V| must equal the cube size).
func Map(g *graph.Comm, shape []int, cfg Config) (*Result, error) {
	//rahtm:allow(ctxpoll): compatibility wrapper; the root context is the documented default for the non-Ctx API
	return MapCtx(context.Background(), g, shape, cfg)
}

// MapCtx is Map under a context. Hard cancellation aborts the solver at
// its next poll and returns ctx.Err(); an expired deadline degrades
// gracefully — the solver stops searching and returns its best-so-far valid
// placement with Result.Degraded set.
func MapCtx(ctx context.Context, g *graph.Comm, shape []int, cfg Config) (*Result, error) {
	if err := hardCancel(ctx); err != nil {
		return nil, err
	}
	size := 1
	for _, s := range shape {
		if s != 1 && s != 2 {
			return nil, fmt.Errorf("hiermap: shape %v is not a 2-ary cube", shape)
		}
		size *= s
	}
	if g.N() != size {
		return nil, fmt.Errorf("hiermap: graph has %d clusters, cube has %d positions", g.N(), size)
	}
	cube := cubeTopology(shape, cfg.Torus)

	method := cfg.Method
	if method == Auto {
		if size <= 8 {
			method = Exhaustive
		} else {
			method = Anneal
		}
	}
	switch method {
	case Exhaustive:
		return solveExhaustive(ctx, g, cube)
	case Anneal:
		return solveAnneal(ctx, g, cube, cfg)
	case MILP:
		return solveMILP(ctx, g, cube, shape, cfg)
	}
	return nil, fmt.Errorf("hiermap: unknown method %v", cfg.Method)
}

// hardCancel returns ctx's error when it was canceled outright. Deadline
// expiry returns nil: the solvers degrade to best-so-far instead of
// failing.
func hardCancel(ctx context.Context) error {
	if err := ctx.Err(); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

// expired reports whether ctx's deadline has passed.
func expired(ctx context.Context) bool {
	return errors.Is(ctx.Err(), context.DeadlineExceeded)
}

// cubeTopology builds the evaluation topology for a cube shape.
func cubeTopology(shape []int, torus bool) *topology.Torus {
	if torus {
		return topology.NewTorus(shape...)
	}
	return topology.NewMesh(shape...)
}

// Evaluate scores an existing placement with the uniform-split model.
func Evaluate(g *graph.Comm, shape []int, torus bool, m topology.Mapping) float64 {
	return EvaluateWith(g, shape, torus, m, routing.MinimalAdaptive{})
}

// EvaluateWith is Evaluate with a caller-supplied evaluator, so request-
// scoped callers (routing.MinimalAdaptive.WithScope) keep their stencil
// attribution.
func EvaluateWith(g *graph.Comm, shape []int, torus bool, m topology.Mapping, alg routing.MinimalAdaptive) float64 {
	return routing.MaxChannelLoad(cubeTopology(shape, torus), g, m, alg)
}

// solveExhaustive tries every placement. Feasible for cubes up to 8 nodes
// (8! = 40320 placements). Cancellation is polled every 1024 evaluations;
// deadline expiry returns the best placement seen so far as degraded.
func solveExhaustive(ctx context.Context, g *graph.Comm, cube *topology.Torus) (*Result, error) {
	n := cube.N()
	if n > 10 {
		return nil, fmt.Errorf("hiermap: exhaustive search on %d nodes is too large", n)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := append(topology.Mapping(nil), perm...)
	bestMCL := math.Inf(1)
	alg := routing.MinimalAdaptive{}.WithScope(telemetry.ScopeFrom(ctx))
	// Heap's algorithm over placements.
	c := make([]int, n)
	evals := 0
	degraded := false
	var ctxErr error
	evalCur := func() {
		mcl := routing.MaxChannelLoad(cube, g, perm, alg)
		if mcl < bestMCL {
			bestMCL = mcl
			copy(best, perm)
		}
	}
	// stop polls the context; true aborts the enumeration.
	stop := func() bool {
		evals++
		if evals&1023 != 0 {
			return false
		}
		if err := ctx.Err(); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				degraded = true
			} else {
				ctxErr = err
			}
			return true
		}
		return false
	}
	evalCur()
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				perm[0], perm[i] = perm[i], perm[0]
			} else {
				perm[c[i]], perm[i] = perm[i], perm[c[i]]
			}
			evalCur()
			if stop() {
				break
			}
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	if degraded {
		return &Result{Mapping: best, MCL: bestMCL, Method: Exhaustive, Degraded: true}, nil
	}
	return &Result{Mapping: best, MCL: bestMCL, Method: Exhaustive, Proved: true}, nil
}

// solveAnneal runs restart simulated annealing over placements with
// pairwise-swap moves and incremental channel-load maintenance. The context
// is polled every 256 steps: hard cancellation aborts with ctx.Err(), an
// expired deadline returns the best placement found so far as degraded.
// Temperature/energy samples go to cfg.Observer roughly 32 times per
// restart.
func solveAnneal(ctx context.Context, g *graph.Comm, cube *topology.Torus, cfg Config) (*Result, error) {
	n := cube.N()
	iters := cfg.AnnealIters
	if iters <= 0 {
		iters = 40 * n * n
	}
	restarts := cfg.AnnealRestarts
	if restarts <= 0 {
		restarts = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	o := obs.OrNop(cfg.Observer)
	sampleEvery := iters / 32
	if sampleEvery < 1 {
		sampleEvery = 1
	}

	var best topology.Mapping
	bestMCL := math.Inf(1)
	degraded := false
	var moves, accepted, restartsRun int64
	scope := telemetry.ScopeFrom(ctx)
	alg := routing.MinimalAdaptive{}.WithScope(scope)
	defer func() {
		scope.CounterOr(telemetry.CtrAnnealMoves, ctrAnnealMoves).Add(moves)
		scope.CounterOr(telemetry.CtrAnnealAccepted, ctrAnnealAccepted).Add(accepted)
		scope.CounterOr(telemetry.CtrAnnealRestarts, ctrAnnealRestarts).Add(restartsRun)
	}()
restartLoop:
	for r := 0; r < restarts; r++ {
		restartsRun++
		ev := newIncEval(g, cube, topology.Mapping(rng.Perm(n)), alg)
		curMCL := ev.mcl()
		if curMCL < bestMCL {
			bestMCL = curMCL
			best = ev.cur.Clone()
		}
		// Geometric cooling from a temperature scaled to the data.
		t0 := curMCL/2 + 1e-9
		alpha := math.Pow(1e-3, 1/float64(iters)) // t ends at t0/1000
		temp := t0
		for it := 0; it < iters; it++ {
			if it&255 == 0 {
				if err := ctx.Err(); err != nil {
					if !errors.Is(err, context.DeadlineExceeded) {
						return nil, err
					}
					degraded = true
					break restartLoop
				}
			}
			if it%sampleEvery == 0 {
				o.AnnealSample(r, it, temp, curMCL, bestMCL)
			}
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			mcl := ev.swap(i, j)
			moves++
			if mcl <= curMCL || rng.Float64() < math.Exp((curMCL-mcl)/temp) {
				accepted++
				curMCL = mcl
				if mcl < bestMCL {
					bestMCL = mcl
					best = ev.cur.Clone()
				}
			} else {
				ev.swap(i, j) // reject: undo
			}
			temp *= alpha
		}
	}
	return &Result{Mapping: best, MCL: bestMCL, Method: Anneal, Degraded: degraded}, nil
}
