package hiermap

import (
	"math"
	"testing"
	"time"

	"rahtm/internal/graph"
	"rahtm/internal/topology"
)

func TestMILPTrivialTwoNodeShape(t *testing.T) {
	g := graph.New(2)
	g.AddTraffic(0, 1, 6)
	res, err := Map(g, []int{2, 1}, Config{Method: MILP, MILPDeadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proved {
		t.Fatal("trivial MILP should prove optimality")
	}
	if math.Abs(res.MCL-6) > 1e-9 {
		t.Fatalf("MCL = %v, want 6", res.MCL)
	}
}

func TestMILPTorusCapacityHalvesLoad(t *testing.T) {
	// The paper's root-level trick: a 2-ary torus is a 2-ary mesh with
	// double-wide links. Result.MCL reports the uniform-split model on the
	// torus (split across the pair), i.e. half the mesh load.
	g := graph.New(2)
	g.AddTraffic(0, 1, 8)
	mesh, err := Map(g, []int{2, 1}, Config{Method: MILP, MILPDeadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	torus, err := Map(g, []int{2, 1}, Config{Method: MILP, MILPDeadline: time.Minute, Torus: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mesh.MCL-8) > 1e-9 || math.Abs(torus.MCL-4) > 1e-9 {
		t.Fatalf("mesh MCL %v (want 8), torus MCL %v (want 4)", mesh.MCL, torus.MCL)
	}
}

func TestMILPEmptyGraph(t *testing.T) {
	// No flows: any placement is optimal with MCL 0.
	g := graph.New(4)
	res, err := Map(g, []int{2, 2}, Config{Method: MILP, MILPDeadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if res.MCL != 0 {
		t.Fatalf("MCL = %v, want 0", res.MCL)
	}
	if err := res.Mapping.Validate(4, true); err != nil {
		t.Fatal(err)
	}
}

func TestMILPDeadlineStillReturnsMapping(t *testing.T) {
	// An aggressive deadline must still yield a feasible placement (from
	// the annealing incumbent), just possibly unproved.
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				g.AddTraffic(i, j, float64(1+(i*3+j)%5))
			}
		}
	}
	res, err := Map(g, []int{2, 2}, Config{Method: MILP, MILPDeadline: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Mapping.Validate(4, true); err != nil {
		t.Fatal(err)
	}
}

func TestMILPSymmetryPinRespected(t *testing.T) {
	// The symmetry-breaking constraint pins cluster 0 to vertex 0; the
	// solution must honor it (any optimum can be rotated to this form).
	g := graph.New(4)
	g.AddTraffic(2, 3, 10)
	g.AddTraffic(0, 1, 1)
	res, err := Map(g, []int{2, 2}, Config{Method: MILP, MILPDeadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mapping[0] != 0 {
		t.Fatalf("cluster 0 at vertex %d, pin requires 0", res.Mapping[0])
	}
	// And the heavy pair still lands on a diagonal.
	mesh := topology.NewMesh(2, 2)
	if mesh.MinDistance(res.Mapping[2], res.Mapping[3]) != 2 {
		t.Fatalf("heavy pair not diagonal: %v", res.Mapping)
	}
}
