package hiermap

import (
	"rahtm/internal/graph"
	"rahtm/internal/routing"
	"rahtm/internal/topology"
)

// incEval maintains the channel-load vector of a placement and updates it
// incrementally under swap moves: only flows incident to the two swapped
// clusters are re-routed, instead of the whole graph. This is the §VI
// "reduce the mapping computation" optimization; it turns each annealing
// step from O(flows) into O(degree) route computations.
type incEval struct {
	cube    *topology.Torus
	flows   []graph.Flow
	byTask  [][]int // task -> indices into flows touching it
	loads   []float64
	cur     topology.Mapping
	alg     routing.MinimalAdaptive
	touched []int // scratch: flow indices affected by the current move
	seen    []int // scratch: generation marks per flow
	gen     int
	moves   int // accepted/attempted moves since the last full rebuild
}

// newIncEval builds the evaluator; alg routes the flows, so a request-scoped
// evaluator (routing.MinimalAdaptive.WithScope) attributes the annealing
// loop's stencil traffic to its request.
func newIncEval(g *graph.Comm, cube *topology.Torus, start topology.Mapping, alg routing.MinimalAdaptive) *incEval {
	flows := g.Flows()
	byTask := make([][]int, g.N())
	for idx, f := range flows {
		byTask[f.Src] = append(byTask[f.Src], idx)
		if f.Dst != f.Src {
			byTask[f.Dst] = append(byTask[f.Dst], idx)
		}
	}
	e := &incEval{
		cube:   cube,
		flows:  flows,
		byTask: byTask,
		cur:    start.Clone(),
		alg:    alg,
		seen:   make([]int, len(flows)),
	}
	e.rebuild()
	return e
}

// rebuild recomputes the load vector from scratch (also used periodically
// to cancel floating-point drift from incremental updates).
func (e *incEval) rebuild() {
	if e.loads == nil {
		e.loads = make([]float64, e.cube.NumChannels())
	} else {
		for i := range e.loads {
			e.loads[i] = 0
		}
	}
	for _, f := range e.flows {
		e.alg.AddLoads(e.cube, e.cur[f.Src], e.cur[f.Dst], f.Vol, e.loads)
	}
	e.moves = 0
}

// mcl returns the current maximum channel load.
func (e *incEval) mcl() float64 {
	return routing.MCL(e.loads)
}

// affected collects the distinct flows incident to tasks i or j.
func (e *incEval) affected(i, j int) []int {
	e.gen++
	e.touched = e.touched[:0]
	for _, lists := range [2][]int{e.byTask[i], e.byTask[j]} {
		for _, idx := range lists {
			if e.seen[idx] == e.gen {
				continue
			}
			e.seen[idx] = e.gen
			e.touched = append(e.touched, idx)
		}
	}
	return e.touched
}

// swap applies the move (i, j) incrementally and returns the new MCL.
func (e *incEval) swap(i, j int) float64 {
	aff := e.affected(i, j)
	for _, idx := range aff {
		f := e.flows[idx]
		e.alg.AddLoads(e.cube, e.cur[f.Src], e.cur[f.Dst], -f.Vol, e.loads)
	}
	e.cur[i], e.cur[j] = e.cur[j], e.cur[i]
	for _, idx := range aff {
		f := e.flows[idx]
		e.alg.AddLoads(e.cube, e.cur[f.Src], e.cur[f.Dst], f.Vol, e.loads)
	}
	e.moves++
	if e.moves >= 8192 {
		e.rebuild()
	}
	return e.mcl()
}
