package hiermap

import (
	"math"
	"math/rand"
	"testing"

	"rahtm/internal/graph"
	"rahtm/internal/routing"
	"rahtm/internal/topology"
)

// TestIncEvalMatchesFullEvaluation drives the incremental evaluator with
// random swaps and cross-checks the load vector against a from-scratch
// computation after every step.
func TestIncEvalMatchesFullEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 5; trial++ {
		cube := topology.NewMesh(2, 2, 2)
		g := graph.New(8)
		for e := 0; e < 20; e++ {
			g.AddTraffic(rng.Intn(8), rng.Intn(8), float64(1+rng.Intn(9)))
		}
		ev := newIncEval(g, cube, topology.Mapping(rng.Perm(8)), routing.MinimalAdaptive{})
		for step := 0; step < 200; step++ {
			i, j := rng.Intn(8), rng.Intn(8)
			if i == j {
				continue
			}
			got := ev.swap(i, j)
			want := routing.MaxChannelLoad(cube, g, ev.cur, routing.MinimalAdaptive{})
			if math.Abs(got-want) > 1e-6 {
				t.Fatalf("trial %d step %d: incremental MCL %v, full %v", trial, step, got, want)
			}
			fresh := routing.ChannelLoads(cube, g, ev.cur, routing.MinimalAdaptive{})
			for ch := range fresh {
				if math.Abs(fresh[ch]-ev.loads[ch]) > 1e-6 {
					t.Fatalf("trial %d step %d: channel %d drifted: %v vs %v",
						trial, step, ch, ev.loads[ch], fresh[ch])
				}
			}
		}
	}
}

// TestIncEvalSwapUndo verifies that swapping the same pair twice restores
// the loads exactly enough.
func TestIncEvalSwapUndo(t *testing.T) {
	cube := topology.NewMesh(2, 2)
	g := graph.New(4)
	g.AddTraffic(0, 1, 5)
	g.AddTraffic(2, 3, 2)
	g.AddTraffic(0, 3, 1)
	ev := newIncEval(g, cube, topology.Identity(4), routing.MinimalAdaptive{})
	before := append([]float64(nil), ev.loads...)
	ev.swap(0, 3)
	ev.swap(0, 3)
	for ch := range before {
		if math.Abs(before[ch]-ev.loads[ch]) > 1e-9 {
			t.Fatalf("channel %d not restored: %v vs %v", ch, before[ch], ev.loads[ch])
		}
	}
}

// TestIncEvalPeriodicRebuild forces the rebuild path.
func TestIncEvalPeriodicRebuild(t *testing.T) {
	cube := topology.NewMesh(2, 2)
	g := graph.New(4)
	g.AddTraffic(0, 1, 3)
	ev := newIncEval(g, cube, topology.Identity(4), routing.MinimalAdaptive{})
	for k := 0; k < 9000; k++ {
		ev.swap(0, 1)
	}
	want := routing.MaxChannelLoad(cube, g, ev.cur, routing.MinimalAdaptive{})
	if math.Abs(ev.mcl()-want) > 1e-9 {
		t.Fatalf("after rebuild: %v vs %v", ev.mcl(), want)
	}
}

// TestNegativeVolumeSubtracts locks the signed-AddLoads contract the
// incremental evaluator depends on.
func TestNegativeVolumeSubtracts(t *testing.T) {
	cube := topology.NewTorus(4, 4)
	loads := make([]float64, cube.NumChannels())
	alg := routing.MinimalAdaptive{}
	alg.AddLoads(cube, 1, 14, 7, loads)
	alg.AddLoads(cube, 1, 14, -7, loads)
	for ch, v := range loads {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("channel %d residual %v", ch, v)
		}
	}
}

func BenchmarkAnnealStepIncremental(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cube := topology.NewMesh(2, 2, 2, 2, 2)
	g := graph.New(32)
	for e := 0; e < 200; e++ {
		g.AddTraffic(rng.Intn(32), rng.Intn(32), float64(1+rng.Intn(9)))
	}
	ev := newIncEval(g, cube, topology.Identity(32), routing.MinimalAdaptive{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.swap(rng.Intn(32), rng.Intn(32))
	}
}

func BenchmarkAnnealStepFull(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cube := topology.NewMesh(2, 2, 2, 2, 2)
	g := graph.New(32)
	for e := 0; e < 200; e++ {
		g.AddTraffic(rng.Intn(32), rng.Intn(32), float64(1+rng.Intn(9)))
	}
	m := topology.Identity(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, k := rng.Intn(32), rng.Intn(32)
		m[j], m[k] = m[k], m[j]
		_ = routing.MaxChannelLoad(cube, g, m, routing.MinimalAdaptive{})
	}
}
