package hiermap

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"rahtm/internal/graph"
)

func randomGraph(n int, seed int64) *graph.Comm {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < 0.4 {
				g.AddTraffic(i, j, 1+9*rng.Float64())
			}
		}
	}
	return g
}

func cubeShape(n int) []int {
	shape := []int{}
	for n > 1 {
		shape = append(shape, 2)
		n /= 2
	}
	return shape
}

func TestMapCtxAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range []Method{Exhaustive, Anneal, MILP} {
		_, err := MapCtx(ctx, randomGraph(8, 1), cubeShape(8), Config{Method: m})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", m, err)
		}
	}
}

func TestAnnealCtxCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := randomGraph(32, 2)
	errc := make(chan error, 1)
	go func() {
		// A huge iteration budget would run for a long time uncancelled.
		_, err := MapCtx(ctx, g, cubeShape(32), Config{
			Method: Anneal, AnnealIters: 200_000_000, AnnealRestarts: 1,
		})
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("anneal did not abort within 5s of cancellation")
	}
}

func TestAnnealCtxDeadlineDegrades(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	g := randomGraph(32, 3)
	start := time.Now()
	res, err := MapCtx(ctx, g, cubeShape(32), Config{
		Method: Anneal, AnnealIters: 200_000_000, AnnealRestarts: 1,
	})
	if err != nil {
		t.Fatalf("deadline must degrade, not fail: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("degraded anneal took %v", elapsed)
	}
	if !res.Degraded {
		t.Fatal("Degraded not set")
	}
	if err := res.Mapping.Validate(32, true); err != nil {
		t.Fatalf("degraded mapping invalid: %v", err)
	}
}

func TestExhaustiveCtxDeadlineDegrades(t *testing.T) {
	// 8 nodes = 40320 placements; an already-expired deadline stops the
	// enumeration at the first poll but still yields a valid placement.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := MapCtx(ctx, randomGraph(8, 4), cubeShape(8), Config{Method: Exhaustive})
	if err != nil {
		t.Fatalf("deadline must degrade, not fail: %v", err)
	}
	if !res.Degraded {
		t.Fatal("Degraded not set")
	}
	if res.Proved {
		t.Fatal("a truncated enumeration must not claim optimality")
	}
	if err := res.Mapping.Validate(8, true); err != nil {
		t.Fatalf("degraded mapping invalid: %v", err)
	}
}

func TestMILPCtxDeadlineFallsBackToAnneal(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := MapCtx(ctx, randomGraph(8, 5), cubeShape(8), Config{Method: MILP})
	if err != nil {
		t.Fatalf("deadline must degrade, not fail: %v", err)
	}
	if !res.Degraded {
		t.Fatal("Degraded not set")
	}
	if err := res.Mapping.Validate(8, true); err != nil {
		t.Fatalf("degraded mapping invalid: %v", err)
	}
}
