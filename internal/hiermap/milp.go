package hiermap

import (
	"context"
	"fmt"
	"time"

	"rahtm/internal/graph"
	"rahtm/internal/lp"
	"rahtm/internal/milp"
	"rahtm/internal/obs"
	"rahtm/internal/routing"
	"rahtm/internal/telemetry"
	"rahtm/internal/topology"
)

// solveMILP builds and solves the paper's Table II formulation.
//
// The cube is always modelled as a 2-ary n-mesh; the root torus case is
// handled, exactly as in §III-C, by giving every link double capacity
// (a 2-ary n-torus is a 2-ary n-mesh with double-wide links). Minimal
// routing is enforced by constraint C3: per flow, a binary r_{i,dim} allows
// flow in only one direction within each dimension.
func solveMILP(ctx context.Context, g *graph.Comm, cube *topology.Torus, shape []int, cfg Config) (*Result, error) {
	if err := hardCancel(ctx); err != nil {
		return nil, err
	}
	if expired(ctx) {
		// No time left even for model construction: fall back to the
		// annealing seed, which degrades to its first valid placement.
		res, err := solveAnneal(ctx, g, cube, cfg)
		if err != nil {
			return nil, err
		}
		res.Degraded = true
		return res, nil
	}
	mesh := topology.NewMesh(shape...)
	n := mesh.N()
	flows := g.Flows()

	base := lp.NewProblem(0)
	prob := milp.NewProblem(base)
	z := base.AddVariable(1, "mcl")

	// Placement variables g_{a,v}.
	gVar := make([][]int, n)
	for a := 0; a < n; a++ {
		gVar[a] = make([]int, n)
		for v := 0; v < n; v++ {
			gVar[a][v] = prob.AddBinary(0, fmt.Sprintf("g_%d_%d", a, v))
		}
	}

	// Directed mesh edges.
	type edge struct {
		ch, from, to, dim, dir int
	}
	var edges []edge
	edgeOf := make(map[int]int) // channel id -> edge index
	for v := 0; v < n; v++ {
		for dim := 0; dim < mesh.NumDims(); dim++ {
			for dir := 0; dir < 2; dir++ {
				to, ok := mesh.NeighborRank(v, dim, dir)
				if !ok {
					continue
				}
				ch := mesh.ChannelID(v, dim, dir)
				edgeOf[ch] = len(edges)
				edges = append(edges, edge{ch: ch, from: v, to: to, dim: dim, dir: dir})
			}
		}
	}

	// Flow variables f_{i,e} and direction binaries r_{i,dim}.
	fVar := make([][]int, len(flows))
	rVar := make([][]int, len(flows))
	for i, fl := range flows {
		fVar[i] = make([]int, len(edges))
		for e := range edges {
			fVar[i][e] = base.AddVariable(0, fmt.Sprintf("f_%d_e%d", i, e))
		}
		rVar[i] = make([]int, mesh.NumDims())
		for dim := 0; dim < mesh.NumDims(); dim++ {
			rVar[i][dim] = prob.AddBinary(0, fmt.Sprintf("r_%d_%d", i, dim))
		}
		_ = fl
	}

	// C1: every cluster on exactly one vertex; every vertex at most one.
	for a := 0; a < n; a++ {
		terms := make([]lp.Term, n)
		for v := 0; v < n; v++ {
			terms[v] = lp.Term{Var: gVar[a][v], Coef: 1}
		}
		base.AddConstraint(terms, lp.EQ, 1)
	}
	for v := 0; v < n; v++ {
		terms := make([]lp.Term, n)
		for a := 0; a < n; a++ {
			terms[a] = lp.Term{Var: gVar[a][v], Coef: 1}
		}
		base.AddConstraint(terms, lp.LE, 1)
	}

	// C2: flow conservation with floating endpoints:
	// sum_out f - sum_in f - l*g_{s,v} + l*g_{d,v} = 0 at every vertex.
	for i, fl := range flows {
		for v := 0; v < n; v++ {
			var terms []lp.Term
			for e, ed := range edges {
				if ed.from == v {
					terms = append(terms, lp.Term{Var: fVar[i][e], Coef: 1})
				} else if ed.to == v {
					terms = append(terms, lp.Term{Var: fVar[i][e], Coef: -1})
				}
			}
			terms = append(terms,
				lp.Term{Var: gVar[fl.Src][v], Coef: -fl.Vol},
				lp.Term{Var: gVar[fl.Dst][v], Coef: fl.Vol},
			)
			base.AddConstraint(terms, lp.EQ, 0)
		}
	}

	// C3: one direction per dimension per flow.
	for i, fl := range flows {
		for e, ed := range edges {
			if ed.dir == topology.Plus {
				// f <= l * r
				base.AddConstraint([]lp.Term{
					{Var: fVar[i][e], Coef: 1},
					{Var: rVar[i][ed.dim], Coef: -fl.Vol},
				}, lp.LE, 0)
			} else {
				// f <= l * (1 - r)
				base.AddConstraint([]lp.Term{
					{Var: fVar[i][e], Coef: 1},
					{Var: rVar[i][ed.dim], Coef: fl.Vol},
				}, lp.LE, fl.Vol)
			}
		}
	}

	// Objective rows: sum_i f_i(e) <= cap * z.
	cap := 1.0
	if cfg.Torus {
		cap = 2.0
	}
	for e := range edges {
		terms := make([]lp.Term, 0, len(flows)+1)
		for i := range flows {
			terms = append(terms, lp.Term{Var: fVar[i][e], Coef: 1})
		}
		terms = append(terms, lp.Term{Var: z, Coef: -cap})
		base.AddConstraint(terms, lp.LE, 0)
	}

	// Symmetry breaking: the hyperoctahedral group acts transitively on the
	// cube's vertices, so cluster 0 can be pinned to vertex 0 without loss
	// of optimality.
	if n > 1 {
		base.AddConstraint([]lp.Term{{Var: gVar[0][0], Coef: 1}}, lp.EQ, 1)
	}

	// Warm-start incumbent from annealing (or the identity when trivial).
	incumbent, err := buildIncumbent(ctx, g, mesh, cube, flows, base.NumVariables(), z, gVar, fVar, rVar, edgeOf, cap, cfg)
	if err != nil {
		return nil, err
	}

	budget := cfg.MILPDeadline
	if budget <= 0 {
		budget = 30 * time.Second
	}
	deadline := time.Now().Add(budget)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	res := prob.SolveCtx(ctx, milp.Options{
		Deadline:    deadline,
		MaxNodes:    cfg.MILPMaxNodes,
		Incumbent:   incumbent,
		Parallelism: cfg.Parallelism,
	})
	obs.OrNop(cfg.Observer).LPIterations(res.LPIters)
	if err := hardCancel(ctx); err != nil {
		return nil, err
	}
	if res.X == nil {
		return nil, fmt.Errorf("hiermap: MILP found no feasible mapping (status %v)", res.Status)
	}

	mapping := make(topology.Mapping, n)
	for a := 0; a < n; a++ {
		pos := -1
		for v := 0; v < n; v++ {
			if res.X[gVar[a][v]] > 0.5 {
				pos = v
				break
			}
		}
		if pos < 0 {
			return nil, fmt.Errorf("hiermap: MILP solution leaves cluster %d unplaced", a)
		}
		mapping[a] = pos
	}
	return &Result{
		Mapping:  mapping,
		MCL:      routing.MaxChannelLoad(cube, g, mapping, routing.MinimalAdaptive{}.WithScope(telemetry.ScopeFrom(ctx))),
		Method:   MILP,
		Proved:   res.Status == milp.Optimal,
		Degraded: expired(ctx),
	}, nil
}

// buildIncumbent converts an annealed placement into a full MILP variable
// assignment: g from the placement, f from the uniform minimal-path split
// on the mesh (which respects C3 because meshes have a unique minimal
// direction per dimension), r from the travel directions. Returns a nil
// slice (and nil error) when the placement cannot be pinned to the
// symmetry-broken form; a non-nil error only on hard cancellation.
func buildIncumbent(ctx context.Context, g *graph.Comm, mesh, cube *topology.Torus, flows []graph.Flow,
	numVars, z int, gVar, fVar [][]int, rVar [][]int, edgeOf map[int]int, cap float64, cfg Config) ([]float64, error) {

	seedRes, err := solveAnneal(ctx, g, cube, Config{
		AnnealIters:    cfg.AnnealIters,
		AnnealRestarts: 1,
		Seed:           cfg.Seed,
	})
	if err != nil {
		if hardCancel(ctx) != nil {
			return nil, err
		}
		return nil, nil
	}
	m := seedRes.Mapping
	// Respect the symmetry-breaking pin g_{0,0}=1 by composing with a cube
	// automorphism that sends m[0] to vertex 0: flip every dimension where
	// m[0] has coordinate 1.
	c0 := mesh.CoordOf(m[0], nil)
	relabel := make([]int, mesh.N())
	for v := 0; v < mesh.N(); v++ {
		cv := mesh.CoordOf(v, nil)
		for d := range cv {
			if c0[d] == 1 {
				cv[d] = mesh.Dim(d) - 1 - cv[d]
			}
		}
		relabel[v] = mesh.RankOf(cv)
	}
	m = m.ComposeNodes(relabel)

	x := make([]float64, numVars)
	for a, v := range m {
		x[gVar[a][v]] = 1
	}
	maxLoad := 0.0
	loads := make([]float64, mesh.NumChannels())
	alg := routing.MinimalAdaptive{}.WithScope(telemetry.ScopeFrom(ctx))
	for i, fl := range flows {
		for j := range loads {
			loads[j] = 0
		}
		alg.AddLoads(mesh, m[fl.Src], m[fl.Dst], fl.Vol, loads)
		dirUsed := make([]int, mesh.NumDims())
		for d := range dirUsed {
			dirUsed[d] = -1
		}
		for ch, v := range loads {
			if v == 0 {
				continue
			}
			e, ok := edgeOf[ch]
			if !ok {
				return nil, nil
			}
			x[fVar[i][e]] = v
			_, dim, dir := mesh.DecodeChannel(ch)
			dirUsed[dim] = dir
		}
		for d, dir := range dirUsed {
			if dir == topology.Plus {
				x[rVar[i][d]] = 1
			}
		}
	}
	// Aggregate loads for z.
	total := make([]float64, mesh.NumChannels())
	for _, fl := range flows {
		alg.AddLoads(mesh, m[fl.Src], m[fl.Dst], fl.Vol, total)
	}
	for _, v := range total {
		if v > maxLoad {
			maxLoad = v
		}
	}
	x[z] = maxLoad / cap
	return x, nil
}
