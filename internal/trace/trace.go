// Package trace ingests communication profiles — the role the IPM profiling
// tool plays in the paper's methodology (§II-A). A profile is a plain-text
// record of an application's iterative communication: point-to-point
// message totals plus collective operations with a named implementation,
// which expand into point-to-point patterns via internal/collective
// (the §VI extension).
//
// Format (one record per line, '#' comments):
//
//	procs <n>
//	p2p <src> <dst> <bytes> [count]
//	coll <implementation> <bytes> all
//	coll <implementation> <bytes> <rank> <rank> ...
//
// Implementations are the internal/collective op names, e.g.
// "allreduce-recursive-doubling" or "allgather-dissemination".
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"rahtm/internal/collective"
	"rahtm/internal/graph"
	"rahtm/internal/telemetry"
)

// Profile expansion is metered on the process-wide telemetry registry, so
// trace-driven tools can report ingestion volume alongside routing effort.
var (
	ctrP2P   = telemetry.Default.Counter(telemetry.CtrTraceP2P)
	ctrColls = telemetry.Default.Counter(telemetry.CtrTraceColls)
)

// P2P is one aggregated point-to-point record.
type P2P struct {
	Src, Dst int
	Bytes    float64
	Count    int
}

// Coll is one collective record.
type Coll struct {
	Op    collective.Op
	Bytes float64
	Ranks []int // nil means all processes
}

// Profile is a parsed communication profile.
type Profile struct {
	Procs int
	P2Ps  []P2P
	Colls []Coll
}

// Parse reads a profile.
func Parse(r io.Reader) (*Profile, error) {
	p := &Profile{Procs: -1}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || strings.HasPrefix(txt, "#") {
			continue
		}
		fields := strings.Fields(txt)
		switch fields[0] {
		case "procs":
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace: line %d: want 'procs <n>'", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("trace: line %d: bad process count %q", line, fields[1])
			}
			if p.Procs != -1 {
				return nil, fmt.Errorf("trace: line %d: duplicate procs record", line)
			}
			p.Procs = n
		case "p2p":
			if len(fields) != 4 && len(fields) != 5 {
				return nil, fmt.Errorf("trace: line %d: want 'p2p src dst bytes [count]'", line)
			}
			src, err1 := strconv.Atoi(fields[1])
			dst, err2 := strconv.Atoi(fields[2])
			bytes, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil || bytes < 0 {
				return nil, fmt.Errorf("trace: line %d: parse error in %q", line, txt)
			}
			count := 1
			if len(fields) == 5 {
				count, err1 = strconv.Atoi(fields[4])
				if err1 != nil || count < 1 {
					return nil, fmt.Errorf("trace: line %d: bad count %q", line, fields[4])
				}
			}
			p.P2Ps = append(p.P2Ps, P2P{Src: src, Dst: dst, Bytes: bytes, Count: count})
		case "coll":
			if len(fields) < 4 {
				return nil, fmt.Errorf("trace: line %d: want 'coll op bytes all|ranks...'", line)
			}
			bytes, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || bytes < 0 {
				return nil, fmt.Errorf("trace: line %d: bad bytes %q", line, fields[2])
			}
			c := Coll{Op: collective.Op(fields[1]), Bytes: bytes}
			if !(len(fields) == 4 && fields[3] == "all") {
				for _, f := range fields[3:] {
					rk, err := strconv.Atoi(f)
					if err != nil {
						return nil, fmt.Errorf("trace: line %d: bad rank %q", line, f)
					}
					c.Ranks = append(c.Ranks, rk)
				}
			}
			p.Colls = append(p.Colls, c)
		default:
			return nil, fmt.Errorf("trace: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p.Procs == -1 {
		return nil, fmt.Errorf("trace: missing procs record")
	}
	for _, rec := range p.P2Ps {
		if rec.Src < 0 || rec.Src >= p.Procs || rec.Dst < 0 || rec.Dst >= p.Procs {
			return nil, fmt.Errorf("trace: p2p rank out of range in %+v", rec)
		}
	}
	return p, nil
}

// Graph expands the profile into a communication graph: p2p volumes are
// bytes*count; collectives expand according to their implementation.
func (p *Profile) Graph() (*graph.Comm, error) {
	g := graph.New(p.Procs)
	ctrP2P.Add(int64(len(p.P2Ps)))
	ctrColls.Add(int64(len(p.Colls)))
	for _, rec := range p.P2Ps {
		g.AddTraffic(rec.Src, rec.Dst, rec.Bytes*float64(rec.Count))
	}
	for _, c := range p.Colls {
		comm := collective.Communicator(c.Ranks)
		if comm == nil {
			comm = collective.World(p.Procs)
		}
		if err := collective.Add(g, c.Op, comm, c.Bytes); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Write serializes the profile in the Parse format.
func (p *Profile) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "procs %d\n", p.Procs); err != nil {
		return err
	}
	recs := append([]P2P(nil), p.P2Ps...)
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Src != recs[j].Src {
			return recs[i].Src < recs[j].Src
		}
		return recs[i].Dst < recs[j].Dst
	})
	for _, rec := range recs {
		if _, err := fmt.Fprintf(w, "p2p %d %d %g %d\n", rec.Src, rec.Dst, rec.Bytes, rec.Count); err != nil {
			return err
		}
	}
	for _, c := range p.Colls {
		if c.Ranks == nil {
			if _, err := fmt.Fprintf(w, "coll %s %g all\n", c.Op, c.Bytes); err != nil {
				return err
			}
			continue
		}
		parts := make([]string, len(c.Ranks))
		for i, r := range c.Ranks {
			parts[i] = strconv.Itoa(r)
		}
		if _, err := fmt.Fprintf(w, "coll %s %g %s\n", c.Op, c.Bytes, strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	return nil
}

// FromGraph converts a plain communication graph into a profile (one p2p
// record per edge) — useful to round-trip measured graphs through files.
func FromGraph(g *graph.Comm) *Profile {
	p := &Profile{Procs: g.N()}
	for _, f := range g.Flows() {
		p.P2Ps = append(p.P2Ps, P2P{Src: f.Src, Dst: f.Dst, Bytes: f.Vol, Count: 1})
	}
	return p
}
