package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"rahtm/internal/collective"
	"rahtm/internal/graph"
)

const sample = `# IPM-like profile
procs 8
p2p 0 1 1024 4
p2p 1 0 1024
coll allreduce-recursive-doubling 4096 all
coll broadcast-binomial 512 0 1 2 3
`

func TestParseSample(t *testing.T) {
	p, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if p.Procs != 8 || len(p.P2Ps) != 2 || len(p.Colls) != 2 {
		t.Fatalf("profile = %+v", p)
	}
	if p.P2Ps[0].Count != 4 || p.P2Ps[1].Count != 1 {
		t.Fatalf("counts = %+v", p.P2Ps)
	}
	if p.Colls[0].Ranks != nil {
		t.Fatal("'all' should parse to nil ranks")
	}
	if len(p.Colls[1].Ranks) != 4 {
		t.Fatalf("subset ranks = %v", p.Colls[1].Ranks)
	}
}

func TestGraphExpansion(t *testing.T) {
	p, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	g, err := p.Graph()
	if err != nil {
		t.Fatal(err)
	}
	// p2p: 0->1 carries 1024*4, plus allreduce stage-1 partner traffic
	// 4096, plus the broadcast tree edge 0->1 of 512.
	if v := g.Traffic(0, 1); math.Abs(v-(1024*4+4096+512)) > 1e-9 {
		t.Fatalf("traffic(0,1) = %v", v)
	}
	// Allreduce reaches distance-4 partners.
	if g.Traffic(0, 4) != 4096 {
		t.Fatalf("allreduce partner traffic = %v", g.Traffic(0, 4))
	}
	// Broadcast subtree stays within ranks 0..3.
	if g.Traffic(0, 2) == 0 {
		t.Fatal("broadcast edge missing")
	}
}

func TestGraphUnknownCollective(t *testing.T) {
	p := &Profile{Procs: 4, Colls: []Coll{{Op: "bogus", Bytes: 1}}}
	if _, err := p.Graph(); err == nil {
		t.Fatal("unknown collective should fail at expansion")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"p2p 0 1 10\n",
		"procs x\n",
		"procs 4\nprocs 4\n",
		"procs 4\np2p 0 1\n",
		"procs 4\np2p a b c\n",
		"procs 4\np2p 0 9 10\n",
		"procs 4\np2p 0 1 10 0\n",
		"procs 4\ncoll allreduce-recursive-doubling\n",
		"procs 4\ncoll x y all\n",
		"procs 4\ncoll allreduce-recursive-doubling 10 a b\n",
		"procs 4\nwhat 1 2\n",
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Fatalf("Parse(%q) succeeded, want error", c)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	p, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	ga, err := p.Graph()
	if err != nil {
		t.Fatal(err)
	}
	gb, err := q.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if !ga.Equal(gb, 1e-9) {
		t.Fatal("round trip changed the expanded graph")
	}
}

func TestFromGraph(t *testing.T) {
	g := graph.New(4)
	g.AddTraffic(0, 3, 7.5)
	g.AddTraffic(2, 1, 3)
	p := FromGraph(g)
	if p.Procs != 4 || len(p.P2Ps) != 2 {
		t.Fatalf("profile = %+v", p)
	}
	back, err := p.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(back, 1e-12) {
		t.Fatal("FromGraph/Graph round trip failed")
	}
}

func TestSubsetCollectiveStaysLocal(t *testing.T) {
	in := "procs 8\ncoll allreduce-ring 100 4 5 6 7\n"
	p, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	g, err := p.Graph()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if g.OutVolume(r) != 0 {
			t.Fatalf("rank %d outside communicator has traffic", r)
		}
	}
	if g.OutVolume(5) == 0 {
		t.Fatal("communicator member silent")
	}
	_ = collective.OpAllReduceRing
}
