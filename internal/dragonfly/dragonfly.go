// Package dragonfly extends RAHTM's machinery to dragonfly topologies, the
// second "other topology" §VI of the paper names. The model is the
// canonical one-level dragonfly (Kim, Dally, Scott, Abts; ISCA 2008):
//
//   - g groups, each with a routers;
//   - routers within a group fully connected (local links);
//   - every router owns h global links; groups fully connected globally
//     (a*h >= g-1), with the standard "palmtree" global link arrangement;
//   - p hosts per router.
//
// Two routing models are provided:
//
//   - Minimal: local hop to the router owning the right global link, the
//     global hop, then a local hop in the destination group (at most l-g-l);
//   - Valiant: minimal routing through a uniformly random intermediate
//     group — load-balancing at twice the path length, modelled as an even
//     spread over intermediate groups.
//
// Mapping quality on a dragonfly is dominated by how much traffic stays
// within routers and groups, so the RAHTM-style mapper is, as on fat trees,
// recursive balanced min-cut clustering (hosts -> routers -> groups).
package dragonfly

import (
	"fmt"

	"rahtm/internal/cluster"
	"rahtm/internal/graph"
	"rahtm/internal/topology"
)

// Dragonfly describes the topology. Create instances with New.
type Dragonfly struct {
	groups  int // g
	routers int // a: routers per group
	hosts   int // p: hosts per router
	global  int // h: global links per router
}

// New builds a dragonfly with g groups of a routers, p hosts per router and
// h global links per router. The global link count must connect every group
// pair: a*h >= g-1.
func New(g, a, p, h int) (*Dragonfly, error) {
	if g < 1 || a < 1 || p < 1 || h < 0 {
		return nil, fmt.Errorf("dragonfly: bad parameters g=%d a=%d p=%d h=%d", g, a, p, h)
	}
	if g > 1 && a*h < g-1 {
		return nil, fmt.Errorf("dragonfly: %d routers x %d global links cannot reach %d peer groups", a, h, g-1)
	}
	return &Dragonfly{groups: g, routers: a, hosts: p, global: h}, nil
}

// Hosts returns the total host count (g*a*p).
func (d *Dragonfly) Hosts() int { return d.groups * d.routers * d.hosts }

// Groups returns the group count.
func (d *Dragonfly) Groups() int { return d.groups }

// RoutersPerGroup returns routers per group.
func (d *Dragonfly) RoutersPerGroup() int { return d.routers }

// HostsPerRouter returns hosts per router.
func (d *Dragonfly) HostsPerRouter() int { return d.hosts }

// String implements fmt.Stringer.
func (d *Dragonfly) String() string {
	return fmt.Sprintf("dragonfly(g=%d a=%d p=%d h=%d, %d hosts)", d.groups, d.routers, d.hosts, d.global, d.Hosts())
}

// RouterOf returns the global router index of a host.
func (d *Dragonfly) RouterOf(host int) int { return host / d.hosts }

// GroupOf returns the group index of a host.
func (d *Dragonfly) GroupOf(host int) int { return host / (d.hosts * d.routers) }

// localRouter returns a router's index within its group.
func (d *Dragonfly) localRouter(router int) int { return router % d.routers }

// globalLinkOwner returns, for source group gs talking to destination group
// gd (gs != gd), the in-group router index owning the direct global link,
// using the palmtree arrangement: peer groups are enumerated in cyclic
// order and dealt to routers round-robin.
func (d *Dragonfly) globalLinkOwner(gs, gd int) int {
	// Cyclic distance from gs to gd, 1..groups-1, minus one: the index of
	// gd in gs's peer enumeration.
	idx := ((gd-gs)%d.groups+d.groups)%d.groups - 1
	return idx / d.global
}

// Link classes for dense load indexing.
const (
	linkHost   = 0 // host <-> router
	linkLocal  = 1 // router <-> router within a group (undirected pair id)
	linkGlobal = 2 // group <-> group (undirected pair id)
)

// NumLinks returns the dense load-vector size.
func (d *Dragonfly) NumLinks() int {
	nHost := d.Hosts()
	nLocal := d.groups * d.routers * d.routers // ordered router pairs in-group
	nGlobal := d.groups * d.groups             // ordered group pairs
	return nHost + nLocal + nGlobal
}

// hostLinkID indexes the host link of host h.
func (d *Dragonfly) hostLinkID(h int) int { return h }

// localLinkID indexes the directed local link r1 -> r2 within group g
// (local router indices).
func (d *Dragonfly) localLinkID(g, r1, r2 int) int {
	return d.Hosts() + (g*d.routers+r1)*d.routers + r2
}

// globalLinkID indexes the directed global channel g1 -> g2.
func (d *Dragonfly) globalLinkID(g1, g2 int) int {
	return d.Hosts() + d.groups*d.routers*d.routers + g1*d.groups + g2
}

// Routing selects the load model.
type Routing int8

// Routing models.
const (
	// Minimal routes l-g-l through the direct global link.
	Minimal Routing = iota
	// Valiant spreads each inter-group flow over all intermediate groups.
	Valiant
)

// String implements fmt.Stringer.
func (r Routing) String() string {
	if r == Minimal {
		return "minimal"
	}
	return "valiant"
}

// Loads computes the per-link load vector for graph g mapped by m.
func (d *Dragonfly) Loads(gr *graph.Comm, m topology.Mapping, r Routing) ([]float64, error) {
	if len(m) != gr.N() {
		return nil, fmt.Errorf("dragonfly: mapping covers %d tasks, graph has %d", len(m), gr.N())
	}
	loads := make([]float64, d.NumLinks())
	for _, fl := range gr.Flows() {
		src, dst := m[fl.Src], m[fl.Dst]
		if src < 0 || src >= d.Hosts() || dst < 0 || dst >= d.Hosts() {
			return nil, fmt.Errorf("dragonfly: host out of range")
		}
		if src == dst {
			continue
		}
		loads[d.hostLinkID(src)] += fl.Vol
		loads[d.hostLinkID(dst)] += fl.Vol
		rs, rd := d.RouterOf(src), d.RouterOf(dst)
		if rs == rd {
			continue // same router: host links only
		}
		gs, gd := d.GroupOf(src), d.GroupOf(dst)
		if gs == gd {
			// One local hop.
			loads[d.localLinkID(gs, d.localRouter(rs), d.localRouter(rd))] += fl.Vol
			continue
		}
		switch r {
		case Minimal:
			d.addMinimal(loads, gs, d.localRouter(rs), gd, d.localRouter(rd), fl.Vol)
		case Valiant:
			// Spread over all intermediate groups (including the trivial
			// direct one, following the classic UGAL-style average).
			share := fl.Vol / float64(d.groups)
			for gi := 0; gi < d.groups; gi++ {
				switch gi {
				case gs, gd:
					// Counts as the direct minimal path.
					d.addMinimal(loads, gs, d.localRouter(rs), gd, d.localRouter(rd), share)
				default:
					// src group -> gi: arrives at gi's entry router, then
					// gi -> dst group.
					entry := d.globalLinkOwner(gi, gs) // router receiving from gs side? modelled as owner of gi->gs link
					d.addMinimal(loads, gs, d.localRouter(rs), gi, entry, share)
					d.addMinimal(loads, gi, entry, gd, d.localRouter(rd), share)
				}
			}
		}
	}
	return loads, nil
}

// addMinimal adds one minimal l-g-l path's loads from (group gs, local
// router ls) to (group gd, local router ld).
func (d *Dragonfly) addMinimal(loads []float64, gs, ls, gd, ld int, vol float64) {
	if gs == gd {
		if ls != ld {
			loads[d.localLinkID(gs, ls, ld)] += vol
		}
		return
	}
	owner := d.globalLinkOwner(gs, gd)
	if ls != owner {
		loads[d.localLinkID(gs, ls, owner)] += vol
	}
	loads[d.globalLinkID(gs, gd)] += vol
	dstOwner := d.globalLinkOwner(gd, gs)
	if dstOwner != ld {
		loads[d.localLinkID(gd, dstOwner, ld)] += vol
	}
}

// MCL returns the maximum load over local and global links (host links are
// mapping-invariant and excluded, as in fat trees).
func (d *Dragonfly) MCL(gr *graph.Comm, m topology.Mapping, r Routing) (float64, error) {
	loads, err := d.Loads(gr, m, r)
	if err != nil {
		return 0, err
	}
	max := 0.0
	for id := d.Hosts(); id < len(loads); id++ {
		if loads[id] > max {
			max = loads[id]
		}
	}
	return max, nil
}

// GlobalMCL returns the maximum global-link load only — the scarce resource
// of a dragonfly.
func (d *Dragonfly) GlobalMCL(gr *graph.Comm, m topology.Mapping, r Routing) (float64, error) {
	loads, err := d.Loads(gr, m, r)
	if err != nil {
		return 0, err
	}
	max := 0.0
	for id := d.Hosts() + d.groups*d.routers*d.routers; id < len(loads); id++ {
		if loads[id] > max {
			max = loads[id]
		}
	}
	return max, nil
}

// Map runs the dragonfly variant of RAHTM: hierarchical min-cut clustering
// of the task graph into routers (groups of p) and then groups (groups of
// a), confining heavy traffic at the cheapest level. Requires p and a to be
// powers of two when no grid is given (the greedy clusterer's constraint).
func (d *Dragonfly) Map(gr *graph.Comm, gridDims []int) (topology.Mapping, error) {
	if gr.N() != d.Hosts() {
		return nil, fmt.Errorf("dragonfly: %d tasks for %d hosts", gr.N(), d.Hosts())
	}
	// Level 1: hosts per router; level 2: routers per group.
	res1, err := cluster.Auto(gr, gridDims, d.hosts)
	if err != nil {
		return nil, fmt.Errorf("dragonfly: router clustering: %w", err)
	}
	res2, err := cluster.Auto(res1.Coarse, res1.GridDims, d.routers)
	if err != nil {
		return nil, fmt.Errorf("dragonfly: group clustering: %w", err)
	}
	// Host id = ((group*routers)+routerInGroup)*hosts + slot.
	routerPos := make([]int, res1.NumClusters) // router cluster -> index within its group
	seenR := make(map[int]int, res2.NumClusters)
	for rc := 0; rc < res1.NumClusters; rc++ {
		grp := res2.Assign[rc]
		routerPos[rc] = seenR[grp]
		seenR[grp]++
	}
	for _, c := range seenR {
		if c != d.routers {
			return nil, fmt.Errorf("dragonfly: group received %d routers, want %d", c, d.routers)
		}
	}
	slot := make(map[int]int, res1.NumClusters)
	m := make(topology.Mapping, gr.N())
	for task := 0; task < gr.N(); task++ {
		rc := res1.Assign[task]
		grp := res2.Assign[rc]
		s := slot[rc]
		slot[rc]++
		if s >= d.hosts {
			return nil, fmt.Errorf("dragonfly: router overfilled")
		}
		m[task] = (grp*d.routers+routerPos[rc])*d.hosts + s
	}
	if err := m.Validate(d.Hosts(), true); err != nil {
		return nil, fmt.Errorf("dragonfly: produced invalid mapping: %w", err)
	}
	return m, nil
}
