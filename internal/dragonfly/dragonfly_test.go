package dragonfly

import (
	"math"
	"testing"

	"rahtm/internal/graph"
	"rahtm/internal/topology"
)

func mustNew(t *testing.T, g, a, p, h int) *Dragonfly {
	t.Helper()
	d, err := New(g, a, p, h)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConstruction(t *testing.T) {
	d := mustNew(t, 5, 2, 2, 2) // a*h = 4 >= g-1 = 4
	if d.Hosts() != 20 || d.Groups() != 5 {
		t.Fatalf("%v", d)
	}
	if _, err := New(5, 2, 2, 1); err == nil {
		t.Fatal("insufficient global links should fail")
	}
	if _, err := New(0, 1, 1, 1); err == nil {
		t.Fatal("zero groups should fail")
	}
}

func TestHierarchyIndexing(t *testing.T) {
	d := mustNew(t, 3, 2, 2, 1)
	// Host 9: group 9/(2*2)=2, router 9/2=4, local router 0.
	if d.GroupOf(9) != 2 || d.RouterOf(9) != 4 || d.localRouter(d.RouterOf(9)) != 0 {
		t.Fatalf("host 9: group %d router %d", d.GroupOf(9), d.RouterOf(9))
	}
}

func TestGlobalLinkOwnerPalmtree(t *testing.T) {
	d := mustNew(t, 5, 2, 1, 2)
	// Group 0's peers in cyclic order: 1,2,3,4; h=2 per router -> router 0
	// owns links to 1,2; router 1 owns links to 3,4.
	if d.globalLinkOwner(0, 1) != 0 || d.globalLinkOwner(0, 2) != 0 {
		t.Fatal("owner of first two peers should be router 0")
	}
	if d.globalLinkOwner(0, 3) != 1 || d.globalLinkOwner(0, 4) != 1 {
		t.Fatal("owner of last two peers should be router 1")
	}
}

func TestSameRouterTrafficUsesHostLinksOnly(t *testing.T) {
	d := mustNew(t, 2, 2, 2, 1)
	g := graph.New(d.Hosts())
	g.AddTraffic(0, 1, 10) // hosts 0,1 share router 0
	mcl, err := d.MCL(g, topology.Identity(d.Hosts()), Minimal)
	if err != nil {
		t.Fatal(err)
	}
	if mcl != 0 {
		t.Fatalf("switch MCL = %v, want 0 (same-router traffic)", mcl)
	}
}

func TestMinimalIntraGroup(t *testing.T) {
	d := mustNew(t, 2, 2, 2, 1)
	g := graph.New(d.Hosts())
	g.AddTraffic(0, 2, 6) // router 0 -> router 1, same group
	loads, err := d.Loads(g, topology.Identity(d.Hosts()), Minimal)
	if err != nil {
		t.Fatal(err)
	}
	if loads[d.localLinkID(0, 0, 1)] != 6 {
		t.Fatalf("local link load = %v, want 6", loads[d.localLinkID(0, 0, 1)])
	}
	if loads[d.globalLinkID(0, 1)] != 0 {
		t.Fatal("intra-group flow used a global link")
	}
}

func TestMinimalInterGroup(t *testing.T) {
	d := mustNew(t, 2, 2, 2, 1)
	g := graph.New(d.Hosts())
	// Host 0 (group 0, local router 0) -> host 4 (group 1, local router 0).
	g.AddTraffic(0, 4, 8)
	loads, err := d.Loads(g, topology.Identity(d.Hosts()), Minimal)
	if err != nil {
		t.Fatal(err)
	}
	if loads[d.globalLinkID(0, 1)] != 8 {
		t.Fatalf("global link load = %v, want 8", loads[d.globalLinkID(0, 1)])
	}
}

func TestValiantSpreadsGlobalLoad(t *testing.T) {
	d := mustNew(t, 4, 2, 1, 2)
	g := graph.New(d.Hosts())
	g.AddTraffic(0, 6, 12) // group 0 -> group 3
	mclMin, err := d.GlobalMCL(g, topology.Identity(d.Hosts()), Minimal)
	if err != nil {
		t.Fatal(err)
	}
	mclVal, err := d.GlobalMCL(g, topology.Identity(d.Hosts()), Valiant)
	if err != nil {
		t.Fatal(err)
	}
	if mclVal >= mclMin {
		t.Fatalf("valiant global MCL %v should beat minimal %v for one adversarial flow", mclVal, mclMin)
	}
}

func TestVolumeConservationMinimal(t *testing.T) {
	d := mustNew(t, 3, 2, 2, 1)
	g := graph.New(d.Hosts())
	g.AddTraffic(0, 11, 5) // cross-group
	loads, err := d.Loads(g, topology.Identity(d.Hosts()), Minimal)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one global link carries the 5.
	totalGlobal := 0.0
	for g1 := 0; g1 < 3; g1++ {
		for g2 := 0; g2 < 3; g2++ {
			totalGlobal += loads[d.globalLinkID(g1, g2)]
		}
	}
	if math.Abs(totalGlobal-5) > 1e-9 {
		t.Fatalf("global volume = %v, want 5", totalGlobal)
	}
}

func TestMapConfinesHeavyPairs(t *testing.T) {
	d := mustNew(t, 2, 2, 2, 1) // 8 hosts
	g := graph.New(8)
	pairs := [][2]int{{0, 7}, {1, 6}, {2, 5}, {3, 4}}
	for _, p := range pairs {
		g.AddTraffic(p[0], p[1], 100)
		g.AddTraffic(p[1], p[0], 100)
	}
	g.AddTraffic(0, 2, 1)
	m, err := d.Map(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Heavy pairs must share routers.
	for _, p := range pairs {
		if d.RouterOf(m[p[0]]) != d.RouterOf(m[p[1]]) {
			t.Fatalf("pair %v split across routers: %v", p, m)
		}
	}
	opt, err := d.MCL(g, m, Minimal)
	if err != nil {
		t.Fatal(err)
	}
	id, err := d.MCL(g, topology.Identity(8), Minimal)
	if err != nil {
		t.Fatal(err)
	}
	if opt >= id {
		t.Fatalf("mapper MCL %v not better than identity %v", opt, id)
	}
}

func TestMapErrors(t *testing.T) {
	d := mustNew(t, 2, 2, 2, 1)
	if _, err := d.Map(graph.New(5), nil); err == nil {
		t.Fatal("size mismatch should fail")
	}
}

func TestLoadsMappingMismatch(t *testing.T) {
	d := mustNew(t, 2, 2, 2, 1)
	if _, err := d.Loads(graph.New(8), topology.Mapping{0}, Minimal); err == nil {
		t.Fatal("short mapping should fail")
	}
}

func TestRoutingString(t *testing.T) {
	if Minimal.String() != "minimal" || Valiant.String() != "valiant" {
		t.Fatal("routing names")
	}
}
