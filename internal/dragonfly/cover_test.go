package dragonfly

import (
	"strings"
	"testing"

	"rahtm/internal/graph"
	"rahtm/internal/topology"
)

func TestAccessorsAndString(t *testing.T) {
	d := mustNew(t, 3, 2, 4, 1)
	if d.RoutersPerGroup() != 2 || d.HostsPerRouter() != 4 {
		t.Fatal("accessors")
	}
	if !strings.Contains(d.String(), "dragonfly(g=3 a=2 p=4 h=1") {
		t.Fatalf("String = %q", d.String())
	}
}

func TestMinimalEntersViaGlobalLinkOwner(t *testing.T) {
	// Source router does not own the global link: a local hop precedes the
	// global hop; destination-side local hop follows when needed.
	d := mustNew(t, 3, 2, 1, 1) // 6 hosts, 1 host per router
	g := graph.New(6)
	// Host 1 = group 0 router 1; host 4 = group 2 router 0.
	// Group 0's link to group 2: peer index (2-0)-1 = 1 -> owner router 1.
	// Group 2's link to group 0: peer index (0-2+3)-1 = 0 -> owner router 0.
	g.AddTraffic(1, 4, 9)
	loads, err := d.Loads(g, topology.Identity(6), Minimal)
	if err != nil {
		t.Fatal(err)
	}
	if loads[d.globalLinkID(0, 2)] != 9 {
		t.Fatalf("global load = %v", loads[d.globalLinkID(0, 2)])
	}
	// Source is the owner; no source-side local hop. Destination owner is
	// router 0 == destination router; no dst-side local hop either.
	for g1 := 0; g1 < 3; g1++ {
		for r1 := 0; r1 < 2; r1++ {
			for r2 := 0; r2 < 2; r2++ {
				if l := loads[d.localLinkID(g1, r1, r2)]; l != 0 {
					t.Fatalf("unexpected local load %v at g%d %d->%d", l, g1, r1, r2)
				}
			}
		}
	}
}

func TestMinimalLocalHopsBothSides(t *testing.T) {
	d := mustNew(t, 3, 2, 1, 1)
	g := graph.New(6)
	// Host 0 = group 0 router 0; link to group 1 owned by router 0
	// (peer index 0). Destination host 3 = group 1 router 1; group 1's
	// link to group 0 has peer index (0-1+3)-1 = 1 -> owner router 1... so
	// pick a flow with dst-side hop: host 0 -> host 2 (group 1 router 0):
	// dst owner router 1 != dst router 0 -> dst-side local hop.
	g.AddTraffic(0, 2, 4)
	loads, err := d.Loads(g, topology.Identity(6), Minimal)
	if err != nil {
		t.Fatal(err)
	}
	if loads[d.globalLinkID(0, 1)] != 4 {
		t.Fatalf("global = %v", loads[d.globalLinkID(0, 1)])
	}
	if loads[d.localLinkID(1, 1, 0)] != 4 {
		t.Fatalf("dst local hop missing: %v", loads[d.localLinkID(1, 1, 0)])
	}
}

func TestGlobalMCLAndMCLDiffer(t *testing.T) {
	d := mustNew(t, 2, 2, 2, 1)
	g := graph.New(8)
	g.AddTraffic(0, 2, 50) // intra-group router hop only
	mcl, err := d.MCL(g, topology.Identity(8), Minimal)
	if err != nil {
		t.Fatal(err)
	}
	gmcl, err := d.GlobalMCL(g, topology.Identity(8), Minimal)
	if err != nil {
		t.Fatal(err)
	}
	if mcl != 50 || gmcl != 0 {
		t.Fatalf("mcl=%v gmcl=%v, want 50/0", mcl, gmcl)
	}
}

func TestMCLMappingErrors(t *testing.T) {
	d := mustNew(t, 2, 2, 2, 1)
	if _, err := d.MCL(graph.New(8), topology.Mapping{0}, Minimal); err == nil {
		t.Fatal("short mapping")
	}
	if _, err := d.GlobalMCL(graph.New(8), topology.Mapping{0}, Minimal); err == nil {
		t.Fatal("short mapping")
	}
	g := graph.New(8)
	g.AddTraffic(0, 1, 1)
	bad := topology.Mapping{99, 1, 2, 3, 4, 5, 6, 7}
	if _, err := d.Loads(g, bad, Minimal); err == nil {
		t.Fatal("out-of-range host")
	}
}

func TestMapWithGrid(t *testing.T) {
	d := mustNew(t, 2, 2, 4, 1) // 16 hosts
	g := graph.New(16)
	id := func(i, j int) int { return i*4 + j }
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			g.AddTraffic(id(i, j), id(i, (j+1)%4), 3)
			g.AddTraffic(id(i, j), id((i+1)%4, j), 3)
		}
	}
	m, err := d.Map(g, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(16, true); err != nil {
		t.Fatal(err)
	}
}
