package hilbert

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIndexPointRoundTrip(t *testing.T) {
	cases := []struct{ bits, dims int }{
		{1, 2}, {2, 2}, {3, 2}, {1, 3}, {2, 3}, {2, 4}, {1, 5},
	}
	for _, c := range cases {
		total := uint64(1) << uint(c.bits*c.dims)
		for h := uint64(0); h < total; h++ {
			p := Point(c.bits, c.dims, h)
			if got := Index(c.bits, p); got != h {
				t.Fatalf("bits=%d dims=%d: Index(Point(%d)) = %d", c.bits, c.dims, h, got)
			}
		}
	}
}

func TestCurveIsBijective(t *testing.T) {
	bits, dims := 2, 3
	total := 1 << uint(bits*dims)
	seen := make(map[[3]int]bool, total)
	for h := 0; h < total; h++ {
		p := Point(bits, dims, uint64(h))
		key := [3]int{p[0], p[1], p[2]}
		if seen[key] {
			t.Fatalf("point %v visited twice", p)
		}
		seen[key] = true
	}
	if len(seen) != total {
		t.Fatalf("visited %d points, want %d", len(seen), total)
	}
}

func TestCurveAdjacency(t *testing.T) {
	// The defining Hilbert property: consecutive indices are grid neighbors
	// (L1 distance exactly 1).
	for _, c := range []struct{ bits, dims int }{{2, 2}, {3, 2}, {2, 3}, {1, 4}, {2, 4}} {
		total := 1 << uint(c.bits*c.dims)
		prev := Point(c.bits, c.dims, 0)
		for h := 1; h < total; h++ {
			cur := Point(c.bits, c.dims, uint64(h))
			dist := 0
			for d := range cur {
				dd := cur[d] - prev[d]
				if dd < 0 {
					dd = -dd
				}
				dist += dd
			}
			if dist != 1 {
				t.Fatalf("bits=%d dims=%d: steps %d->%d jump distance %d (%v -> %v)",
					c.bits, c.dims, h-1, h, dist, prev, cur)
			}
			prev = cur
		}
	}
}

func TestCurveStartsAtOrigin(t *testing.T) {
	for _, c := range []struct{ bits, dims int }{{1, 2}, {2, 2}, {2, 3}} {
		p := Point(c.bits, c.dims, 0)
		for _, v := range p {
			if v != 0 {
				t.Fatalf("bits=%d dims=%d: curve starts at %v, want origin", c.bits, c.dims, p)
			}
		}
	}
}

func TestOrder(t *testing.T) {
	pts := Order(1, 2)
	if len(pts) != 4 {
		t.Fatalf("Order(1,2) has %d points", len(pts))
	}
	// 2x2 Hilbert: (0,0) -> (0,1) -> (1,1) -> (1,0).
	want := [][]int{{0, 0}, {0, 1}, {1, 1}, {1, 0}}
	for i := range want {
		if pts[i][0] != want[i][0] || pts[i][1] != want[i][1] {
			t.Fatalf("Order(1,2) = %v, want %v", pts, want)
		}
	}
}

func TestArgumentValidation(t *testing.T) {
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { Index(0, []int{0}) })
	mustPanic(func() { Index(2, []int{4, 0}) })
	mustPanic(func() { Point(2, 0, 0) })
	mustPanic(func() { Point(2, 2, 16) })
	mustPanic(func() { Index(33, []int{0}) })
}

// Property: round trip holds for random bits/dims/coords.
func TestQuickRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := 1 + rng.Intn(5)
		bits := 1 + rng.Intn(3)
		x := make([]int, dims)
		for i := range x {
			x[i] = rng.Intn(1 << uint(bits))
		}
		h := Index(bits, x)
		p := Point(bits, dims, h)
		for i := range x {
			if p[i] != x[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
