// Package hilbert provides d-dimensional Hilbert space-filling curves using
// Skilling's transpose algorithm ("Programming the Hilbert curve", AIP
// Conference Proceedings 707, 2004). The paper's Hilbert baseline mapping
// traverses the square sub-space of the torus (the 4-long A..D dimensions of
// BG/Q) in Hilbert order for locality.
package hilbert

import "fmt"

// Index returns the Hilbert index of the point x on a curve with 2^bits
// cells per dimension. Each coordinate must lie in [0, 2^bits).
func Index(bits int, x []int) uint64 {
	n := len(x)
	checkArgs(bits, n)
	X := make([]uint32, n)
	for i, v := range x {
		if v < 0 || v >= 1<<bits {
			panic(fmt.Sprintf("hilbert: coordinate %d out of range [0,%d)", v, 1<<bits))
		}
		X[i] = uint32(v)
	}
	axesToTranspose(X, bits)
	// Interleave: bit j of X[i] contributes to index bit (j*n + (n-1-i)).
	var h uint64
	for j := bits - 1; j >= 0; j-- {
		for i := 0; i < n; i++ {
			h = h<<1 | uint64(X[i]>>uint(j)&1)
		}
	}
	return h
}

// Point inverts Index: it returns the coordinates of the h-th cell of the
// dims-dimensional Hilbert curve with 2^bits cells per dimension.
func Point(bits, dims int, h uint64) []int {
	checkArgs(bits, dims)
	if dims*bits < 64 && h >= 1<<uint(dims*bits) {
		panic(fmt.Sprintf("hilbert: index %d out of range [0,2^%d)", h, dims*bits))
	}
	X := make([]uint32, dims)
	// De-interleave.
	for j := bits - 1; j >= 0; j-- {
		for i := 0; i < dims; i++ {
			shift := uint(j*dims + (dims - 1 - i))
			X[i] |= uint32(h>>shift&1) << uint(j)
		}
	}
	transposeToAxes(X, bits)
	out := make([]int, dims)
	for i, v := range X {
		out[i] = int(v)
	}
	return out
}

func checkArgs(bits, dims int) {
	if bits < 1 || bits > 31 {
		panic(fmt.Sprintf("hilbert: bits %d out of range [1,31]", bits))
	}
	if dims < 1 {
		panic("hilbert: need at least one dimension")
	}
	if dims*bits > 64 {
		panic(fmt.Sprintf("hilbert: %d dims x %d bits exceeds 64-bit indices", dims, bits))
	}
}

// axesToTranspose converts coordinates into Skilling transpose form.
func axesToTranspose(x []uint32, bits int) {
	n := len(x)
	m := uint32(1) << uint(bits-1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes inverts axesToTranspose.
func transposeToAxes(x []uint32, bits int) {
	n := len(x)
	nBig := uint32(2) << uint(bits-1)
	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != nBig; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

// Order returns all 2^(bits*dims) grid points in Hilbert-curve order.
func Order(bits, dims int) [][]int {
	checkArgs(bits, dims)
	total := uint64(1) << uint(bits*dims)
	out := make([][]int, total)
	for h := uint64(0); h < total; h++ {
		out[h] = Point(bits, dims, h)
	}
	return out
}
