package merge

import (
	"math"
	"math/rand"
	"testing"

	"rahtm/internal/graph"
	"rahtm/internal/topology"
)

func TestRepositionOverridesBadPins(t *testing.T) {
	// Two heavy pairs pinned apart: with repositioning the merge can put
	// each pair's blocks adjacent regardless of the pins.
	g := graph.New(4)
	g.AddTraffic(0, 1, 100)
	g.AddTraffic(2, 3, 100)
	blocks := singleTaskBlocks(4, 2)
	// Pins separate the pairs onto diagonals: 0@0, 1@3, 2@1, 3@2.
	badPins := []int{0, 3, 1, 2}
	pinned, err := Merge(g, blocks, []int{2, 2}, badPins, Config{})
	if err != nil {
		t.Fatal(err)
	}
	free, err := Merge(g, blocks, []int{2, 2}, badPins, Config{Reposition: true})
	if err != nil {
		t.Fatal(err)
	}
	if free.Candidates[0].MCL > pinned.Candidates[0].MCL {
		t.Fatalf("repositioning (%v) lost to pinned (%v)",
			free.Candidates[0].MCL, pinned.Candidates[0].MCL)
	}
	// With freedom, each pair can sit adjacent: heavy flows at distance 1,
	// MCL 100 on separate links... but diagonal split gives 50. Either
	// way, strictly better than the pinned diagonal arrangement is not
	// guaranteed (diagonals split too); assert validity instead.
	for _, cand := range free.Candidates {
		if err := cand.Local.Validate(4, true); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRepositionProducesValidPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := graph.New(8)
	for e := 0; e < 14; e++ {
		g.AddTraffic(rng.Intn(8), rng.Intn(8), float64(1+rng.Intn(9)))
	}
	a := NewLeafBlock([]int{0, 1, 2, 3}, []int{2, 2}, topology.Mapping{0, 1, 2, 3}, 0)
	b := NewLeafBlock([]int{4, 5, 6, 7}, []int{2, 2}, topology.Mapping{0, 1, 2, 3}, 0)
	merged, err := Merge(g, []*Block{a, b}, []int{2, 1}, []int{0, 1}, Config{Reposition: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, cand := range merged.Candidates {
		if err := cand.Local.Validate(8, true); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRepositionNeverWorseThanPinned(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		g := graph.New(4)
		for e := 0; e < 6; e++ {
			g.AddTraffic(rng.Intn(4), rng.Intn(4), float64(1+rng.Intn(9)))
		}
		blocks := singleTaskBlocks(4, 2)
		pins := rng.Perm(4)
		pinned, err := Merge(g, blocks, []int{2, 2}, pins, Config{})
		if err != nil {
			t.Fatal(err)
		}
		free, err := Merge(g, blocks, []int{2, 2}, pins, Config{Reposition: true})
		if err != nil {
			t.Fatal(err)
		}
		if free.Candidates[0].MCL > pinned.Candidates[0].MCL+1e-9 {
			t.Fatalf("trial %d: reposition %v worse than pinned %v",
				trial, free.Candidates[0].MCL, pinned.Candidates[0].MCL)
		}
	}
}

func TestParallelMergeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.New(8)
	for e := 0; e < 20; e++ {
		g.AddTraffic(rng.Intn(8), rng.Intn(8), float64(1+rng.Intn(9)))
	}
	mk := func() []*Block {
		a := NewLeafBlock([]int{0, 1, 2, 3}, []int{2, 2}, topology.Mapping{0, 1, 2, 3}, 0)
		b := NewLeafBlock([]int{4, 5, 6, 7}, []int{2, 2}, topology.Mapping{3, 2, 1, 0}, 0)
		return []*Block{a, b}
	}
	serial, err := Merge(g, mk(), []int{2, 1}, []int{0, 1}, Config{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Merge(g, mk(), []int{2, 1}, []int{0, 1}, Config{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Candidates) != len(parallel.Candidates) {
		t.Fatalf("candidate counts differ: %d vs %d", len(serial.Candidates), len(parallel.Candidates))
	}
	for i := range serial.Candidates {
		if math.Abs(serial.Candidates[i].MCL-parallel.Candidates[i].MCL) > 1e-12 {
			t.Fatalf("candidate %d MCL differs: %v vs %v",
				i, serial.Candidates[i].MCL, parallel.Candidates[i].MCL)
		}
		for j := range serial.Candidates[i].Local {
			if serial.Candidates[i].Local[j] != parallel.Candidates[i].Local[j] {
				t.Fatalf("candidate %d mapping differs at %d", i, j)
			}
		}
	}
}

func TestRepositionCubeTooLarge(t *testing.T) {
	// 128 single-task children on a 2^7 cube exceed the bitmask width.
	n := 128
	g := graph.New(n)
	shape := []int{1, 1, 1, 1, 1, 1, 1}
	blocks := make([]*Block, n)
	pins := make([]int, n)
	for i := range blocks {
		blocks[i] = NewLeafBlock([]int{i}, shape, topology.Mapping{0}, 0)
		pins[i] = i
	}
	cube := []int{2, 2, 2, 2, 2, 2, 2}
	if _, err := Merge(g, blocks, cube, pins, Config{Reposition: true}); err == nil {
		t.Fatal("expected error for oversized reposition cube")
	}
}
