package merge

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"rahtm/internal/graph"
	"rahtm/internal/topology"
)

// denseBlocks builds n multi-task leaf blocks over a dense random graph so
// the merge has real scoring work to do.
func denseBlocks(t *testing.T, seed int64) (*graph.Comm, []*Block, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const kids, per = 8, 8 // 8 children of 8 tasks each
	g := graph.New(kids * per)
	for i := 0; i < g.N(); i++ {
		for j := 0; j < g.N(); j++ {
			if i != j && rng.Float64() < 0.3 {
				g.AddTraffic(i, j, 1+9*rng.Float64())
			}
		}
	}
	blocks := make([]*Block, kids)
	childPos := make([]int, kids)
	shape := []int{2, 2, 2}
	for c := 0; c < kids; c++ {
		tasks := make([]int, per)
		local := make(topology.Mapping, per)
		for k := 0; k < per; k++ {
			tasks[k] = c*per + k
			local[k] = k
		}
		blocks[c] = NewLeafBlock(tasks, shape, local, 0)
		childPos[c] = c
	}
	return g, blocks, childPos
}

func TestMergeCtxAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g, blocks, childPos := denseBlocks(t, 1)
	_, err := MergeCtx(ctx, g, blocks, []int{2, 2, 2}, childPos, Config{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMergeCtxCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g, blocks, childPos := denseBlocks(t, 2)
	errc := make(chan error, 1)
	go func() {
		_, err := MergeCtx(ctx, g, blocks, []int{2, 2, 2}, childPos, Config{BeamWidth: 512})
		errc <- err
	}()
	cancel()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled or nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("merge did not return within 10s of cancellation")
	}
}

func TestMergeCtxDeadlineDegrades(t *testing.T) {
	// An already-expired deadline forces the greedy completion path from
	// the very first step; the result must still be a valid block.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	g, blocks, childPos := denseBlocks(t, 3)
	out, err := MergeCtx(ctx, g, blocks, []int{2, 2, 2}, childPos, Config{})
	if err != nil {
		t.Fatalf("deadline must degrade, not fail: %v", err)
	}
	if !out.Degraded {
		t.Fatal("Degraded not set")
	}
	if len(out.Candidates) == 0 {
		t.Fatal("no candidates in degraded block")
	}
	best := out.Candidates[0]
	if err := best.Local.Validate(64, true); err != nil {
		t.Fatalf("degraded merge produced invalid placement: %v", err)
	}
}

func TestMergeCtxDeadlineHonorsPins(t *testing.T) {
	// The degraded greedy completion must still place each child at its
	// pinned cube position when nothing conflicts.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	g := graph.New(4)
	g.AddTraffic(0, 1, 1)
	shape := []int{1, 1}
	blocks := make([]*Block, 4)
	for i := range blocks {
		blocks[i] = NewLeafBlock([]int{i}, shape, topology.Mapping{0}, 0)
	}
	childPos := []int{3, 2, 1, 0}
	out, err := MergeCtx(ctx, g, blocks, []int{2, 2}, childPos, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Degraded {
		t.Fatal("Degraded not set")
	}
	best := out.Candidates[0]
	for task := 0; task < 4; task++ {
		if best.Local[task] != 3-task {
			t.Fatalf("task %d at %d, want %d (mapping %v)", task, best.Local[task], 3-task, best.Local)
		}
	}
}
