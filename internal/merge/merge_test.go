package merge

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rahtm/internal/graph"
	"rahtm/internal/routing"
	"rahtm/internal/topology"
)

func TestOrientationCounts(t *testing.T) {
	cases := []struct {
		shape []int
		want  int
	}{
		{[]int{2}, 2},
		{[]int{2, 2}, 8},     // dihedral group of the square
		{[]int{2, 1}, 2},     // only flips of the wide dim
		{[]int{2, 2, 2}, 48}, // full hyperoctahedral group B3
		{[]int{4, 2}, 4},     // no dim swap, two flips
		{[]int{1, 1}, 1},
		{[]int{4, 4}, 8},
	}
	for _, c := range cases {
		if got := len(Orientations(c.shape)); got != c.want {
			t.Errorf("Orientations(%v) = %d, want %d", c.shape, got, c.want)
		}
	}
}

func TestOrientationsArePermutationsOfPositions(t *testing.T) {
	for _, shape := range [][]int{{2, 2}, {2, 2, 2}, {4, 2}, {2, 1, 2}} {
		size := 1
		for _, s := range shape {
			size *= s
		}
		for _, o := range Orientations(shape) {
			seen := make([]bool, size)
			for p := 0; p < size; p++ {
				q := o.Apply(shape, p)
				if q < 0 || q >= size || seen[q] {
					t.Fatalf("shape %v orientation %+v is not a bijection", shape, o)
				}
				seen[q] = true
			}
		}
	}
}

func TestOrientationIdentityPresent(t *testing.T) {
	shape := []int{2, 2}
	found := false
	for _, o := range Orientations(shape) {
		id := true
		for p := 0; p < 4; p++ {
			if o.Apply(shape, p) != p {
				id = false
				break
			}
		}
		if id {
			found = true
		}
	}
	if !found {
		t.Fatal("identity orientation missing")
	}
}

func TestOrientationFlipOneDim(t *testing.T) {
	o := Orientation{Perm: []int{0, 1}, Flip: []bool{false, true}}
	shape := []int{2, 2}
	// (0,0)->(0,1): pos 0 -> 1; (1,1)->(1,0): pos 3 -> 2.
	if o.Apply(shape, 0) != 1 || o.Apply(shape, 3) != 2 {
		t.Fatalf("flip wrong: 0->%d, 3->%d", o.Apply(shape, 0), o.Apply(shape, 3))
	}
}

// singleTaskBlocks builds 1-task blocks for tasks 0..n-1.
func singleTaskBlocks(n int, nd int) []*Block {
	shape := make([]int, nd)
	for d := range shape {
		shape[d] = 1
	}
	out := make([]*Block, n)
	for i := range out {
		out[i] = NewLeafBlock([]int{i}, shape, topology.Mapping{0}, 0)
	}
	return out
}

func TestMergeSingleTaskChildrenHonorsPins(t *testing.T) {
	g := graph.New(4)
	g.AddTraffic(0, 1, 1)
	blocks := singleTaskBlocks(4, 2)
	childPos := []int{3, 2, 1, 0} // task i pinned to position 3-i
	merged, err := Merge(g, blocks, []int{2, 2}, childPos, Config{})
	if err != nil {
		t.Fatal(err)
	}
	best := merged.Candidates[0]
	for task := 0; task < 4; task++ {
		if best.Local[task] != 3-task {
			t.Fatalf("task %d at %d, want %d (mapping %v)", task, best.Local[task], 3-task, best.Local)
		}
	}
}

func TestMergeMCLMatchesDirectEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		g := graph.New(4)
		for e := 0; e < 5; e++ {
			g.AddTraffic(rng.Intn(4), rng.Intn(4), float64(1+rng.Intn(9)))
		}
		blocks := singleTaskBlocks(4, 2)
		merged, err := Merge(g, blocks, []int{2, 2}, []int{0, 1, 2, 3}, Config{})
		if err != nil {
			t.Fatal(err)
		}
		mesh := topology.NewMesh(2, 2)
		for _, cand := range merged.Candidates {
			direct := routing.MaxChannelLoad(mesh, g, cand.Local, routing.MinimalAdaptive{})
			if math.Abs(direct-cand.MCL) > 1e-9 {
				t.Fatalf("trial %d: candidate MCL %v, direct %v", trial, cand.MCL, direct)
			}
		}
	}
}

func TestMergeBestEqualsOrientationBruteForce(t *testing.T) {
	// Two 2x1 blocks side by side: the beam search over orientations must
	// find the same optimum as brute force over orientation pairs.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 8; trial++ {
		g := graph.New(4)
		for e := 0; e < 6; e++ {
			g.AddTraffic(rng.Intn(4), rng.Intn(4), float64(1+rng.Intn(9)))
		}
		a := NewLeafBlock([]int{0, 1}, []int{1, 2}, topology.Mapping{0, 1}, 0)
		b := NewLeafBlock([]int{2, 3}, []int{1, 2}, topology.Mapping{0, 1}, 0)
		merged, err := Merge(g, []*Block{a, b}, []int{2, 1}, []int{0, 1}, Config{BeamWidth: 64})
		if err != nil {
			t.Fatal(err)
		}
		// Brute force: all orientation pairs of the two blocks.
		mesh := topology.NewMesh(2, 2)
		orients := Orientations([]int{1, 2})
		best := math.Inf(1)
		for _, oa := range orients {
			for _, ob := range orients {
				m := make(topology.Mapping, 4)
				// Block a at origin (0,*), block b at origin (1,*).
				m[0] = oa.Apply([]int{1, 2}, 0)
				m[1] = oa.Apply([]int{1, 2}, 1)
				m[2] = 2 + ob.Apply([]int{1, 2}, 0)
				m[3] = 2 + ob.Apply([]int{1, 2}, 1)
				mcl := routing.MaxChannelLoad(mesh, g, m, routing.MinimalAdaptive{})
				if mcl < best {
					best = mcl
				}
			}
		}
		if math.Abs(merged.Candidates[0].MCL-best) > 1e-9 {
			t.Fatalf("trial %d: merge best %v, brute force %v", trial, merged.Candidates[0].MCL, best)
		}
	}
}

func TestMergeBeamWidthRespected(t *testing.T) {
	g := graph.New(4)
	g.AddTraffic(0, 1, 1)
	blocks := singleTaskBlocks(4, 2)
	merged, err := Merge(g, blocks, []int{2, 2}, []int{0, 1, 2, 3}, Config{BeamWidth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Candidates) > 3 {
		t.Fatalf("beam width violated: %d candidates", len(merged.Candidates))
	}
	// Candidates must be sorted ascending by MCL.
	for i := 1; i < len(merged.Candidates); i++ {
		if merged.Candidates[i].MCL < merged.Candidates[i-1].MCL-1e-12 {
			t.Fatal("candidates not sorted by MCL")
		}
	}
}

func TestMergeValidatesInput(t *testing.T) {
	g := graph.New(4)
	blocks := singleTaskBlocks(4, 2)
	if _, err := Merge(g, blocks[:3], []int{2, 2}, []int{0, 1, 2}, Config{}); err == nil {
		t.Fatal("expected error: 3 children for 4-cube")
	}
	if _, err := Merge(g, blocks, []int{2, 2}, []int{0, 1, 2, 2}, Config{}); err == nil {
		t.Fatal("expected error: duplicate positions")
	}
	if _, err := Merge(g, blocks, []int{3, 2}, []int{0, 1, 2, 3}, Config{}); err == nil {
		t.Fatal("expected error: non-2-ary cube")
	}
	if _, err := Merge(g, nil, []int{2, 2}, nil, Config{}); err == nil {
		t.Fatal("expected error: no children")
	}
}

func TestMergedMappingIsInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := graph.New(8)
	for e := 0; e < 16; e++ {
		g.AddTraffic(rng.Intn(8), rng.Intn(8), float64(1+rng.Intn(5)))
	}
	// Two 2x2 blocks merged along a 2x1 cube into a 4x2 parent.
	a := NewLeafBlock([]int{0, 1, 2, 3}, []int{2, 2}, topology.Mapping{0, 1, 2, 3}, 0)
	b := NewLeafBlock([]int{4, 5, 6, 7}, []int{2, 2}, topology.Mapping{3, 2, 1, 0}, 0)
	merged, err := Merge(g, []*Block{a, b}, []int{2, 1}, []int{1, 0}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Shape[0] != 4 || merged.Shape[1] != 2 {
		t.Fatalf("merged shape = %v", merged.Shape)
	}
	for _, cand := range merged.Candidates {
		if err := cand.Local.Validate(8, true); err != nil {
			t.Fatalf("candidate not injective: %v", err)
		}
	}
}

func TestMergeTorusEvaluation(t *testing.T) {
	// At the root the parent is a torus: a flow between opposite corners of
	// a 2x2 torus splits over double links, so MCL is half the mesh value.
	g := graph.New(4)
	g.AddTraffic(0, 1, 8)
	blocks := singleTaskBlocks(4, 2)
	meshRes, err := Merge(g, blocks, []int{2, 2}, []int{0, 1, 2, 3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	torusRes, err := Merge(g, blocks, []int{2, 2}, []int{0, 1, 2, 3}, Config{Torus: true})
	if err != nil {
		t.Fatal(err)
	}
	if torusRes.Candidates[0].MCL >= meshRes.Candidates[0].MCL {
		t.Fatalf("torus MCL %v should beat mesh MCL %v (extra links)",
			torusRes.Candidates[0].MCL, meshRes.Candidates[0].MCL)
	}
}

// Property: Apply of every orientation preserves pairwise L1 distances
// within the box (orientations are isometries).
func TestQuickOrientationsAreIsometries(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shapes := [][]int{{2, 2}, {2, 2, 2}, {4, 2}, {2, 4, 2}}
		shape := shapes[rng.Intn(len(shapes))]
		size := 1
		for _, s := range shape {
			size *= s
		}
		mesh := topology.NewMesh(shape...)
		os := Orientations(shape)
		o := os[rng.Intn(len(os))]
		a, b := rng.Intn(size), rng.Intn(size)
		return mesh.MinDistance(a, b) == mesh.MinDistance(o.Apply(shape, a), o.Apply(shape, b))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestApplyFastMatchesApply is the property test for the allocation-free
// orientation path: applyFast must agree with Apply on every position of
// every orientation for 2-D, 3-D and 4-D boxes and for the 16k top-level
// child shape 4x4x4x4x2.
func TestApplyFastMatchesApply(t *testing.T) {
	shapes := [][]int{
		{4, 4},
		{2, 3},
		{2, 2, 2},
		{4, 2, 3},
		{2, 2, 2, 2},
		{3, 2, 2, 1},
		{4, 4, 4, 4, 2},
	}
	for _, shape := range shapes {
		n := 1
		for _, k := range shape {
			n *= k
		}
		for oi, o := range Orientations(shape) {
			seen := make([]bool, n)
			for pos := 0; pos < n; pos++ {
				fast := o.applyFast(shape, pos)
				slow := o.Apply(shape, pos)
				if fast != slow {
					t.Fatalf("shape %v orientation %d pos %d: applyFast %d, Apply %d",
						shape, oi, pos, fast, slow)
				}
				if fast < 0 || fast >= n || seen[fast] {
					t.Fatalf("shape %v orientation %d pos %d: image %d not a fresh position",
						shape, oi, pos, fast)
				}
				seen[fast] = true
			}
		}
	}
}
