package merge

import (
	"fmt"
	"math/rand"
	"testing"

	"rahtm/internal/graph"
	"rahtm/internal/topology"
)

// deltaChildren builds nchild blocks of tpc tasks each by merging
// single-task leaves on the child cube, so every child carries a beam of
// candidates (not just one) and the byte-identity test exercises the
// ChildCandidates dimension. Construction is deterministic, so both arms of
// the comparison see identical children.
func deltaChildren(t *testing.T, g *graph.Comm, nchild, tpc int, childShape []int) []*Block {
	t.Helper()
	ones := make([]int, len(childShape))
	for d := range ones {
		ones[d] = 1
	}
	children := make([]*Block, nchild)
	for i := 0; i < nchild; i++ {
		leaves := make([]*Block, tpc)
		pins := make([]int, tpc)
		for j := 0; j < tpc; j++ {
			leaves[j] = NewLeafBlock([]int{i*tpc + j}, ones, topology.Mapping{0}, 0)
			pins[j] = j
		}
		blk, err := Merge(g, leaves, childShape, pins, Config{BeamWidth: 4, MaxOrientations: 8})
		if err != nil {
			t.Fatal(err)
		}
		children[i] = blk
	}
	return children
}

// wantSameBlock asserts got is byte-identical to want: same candidate
// count and order, bitwise-equal MCLs, identical local mappings, same
// Degraded flag. This is the delta-evaluation contract — == on float64 is
// deliberate.
func wantSameBlock(t *testing.T, want, got *Block, label string) {
	t.Helper()
	if got.Degraded != want.Degraded {
		t.Fatalf("%s: degraded %v, want %v", label, got.Degraded, want.Degraded)
	}
	if len(got.Candidates) != len(want.Candidates) {
		t.Fatalf("%s: %d candidates, want %d", label, len(got.Candidates), len(want.Candidates))
	}
	for i := range want.Candidates {
		//rahtm:allow(floateq): byte-identity is the contract under test, not a tolerance check
		if got.Candidates[i].MCL != want.Candidates[i].MCL {
			t.Fatalf("%s: candidate %d MCL %v, want %v (bitwise)",
				label, i, got.Candidates[i].MCL, want.Candidates[i].MCL)
		}
		if len(got.Candidates[i].Local) != len(want.Candidates[i].Local) {
			t.Fatalf("%s: candidate %d mapping length differs", label, i)
		}
		for j, p := range want.Candidates[i].Local {
			if got.Candidates[i].Local[j] != p {
				t.Fatalf("%s: candidate %d task %d at %d, want %d",
					label, i, j, got.Candidates[i].Local[j], p)
			}
		}
	}
}

// TestMergeDeltaByteIdentical pins the incremental-MCL contract the package
// comment promises: at every beam width, parallelism and reposition setting,
// the sparse delta evaluator produces candidates byte-identical — bitwise
// MCL, same mappings, same order — to the dense exact-recompute path
// (Config.DisableDeltaEval). It doubles as the Parallelism 1-vs-8 beam
// determinism regression for the deterministic topN/combo tie-breaks.
func TestMergeDeltaByteIdentical(t *testing.T) {
	scenarios := []struct {
		name       string
		childShape []int
		cubeShape  []int
		torus      bool
		forceDelta bool // drop deltaMinChannels so small channel spaces use the sparse path
		beams      []int
		reposition []bool
	}{
		// Parent 4x4x4, 384 channels: the sparse path engages by default.
		{
			name:       "3d-4x4x4",
			childShape: []int{2, 2, 2},
			cubeShape:  []int{2, 2, 2},
			beams:      []int{1, 2, 8},
			reposition: []bool{false, true},
		},
		// The paper's 16,384-process shape scaled to one top-level merge:
		// parent 4x4x4x4x2 with a 1-extent child dimension.
		{
			name:       "5d-4x4x4x4x2",
			childShape: []int{2, 2, 2, 2, 1},
			cubeShape:  []int{2, 2, 2, 2, 2},
			beams:      []int{4},
			reposition: []bool{false},
		},
		// Wrapped evaluation (k=4 dims tie at distance 2) on a channel
		// space below the auto threshold, forced onto the sparse path.
		{
			name:       "torus-4x4x2",
			childShape: []int{2, 2, 2},
			cubeShape:  []int{2, 2, 1},
			torus:      true,
			forceDelta: true,
			beams:      []int{1, 8},
			reposition: []bool{false, true},
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			if sc.forceDelta {
				saved := deltaMinChannels
				deltaMinChannels = 0
				t.Cleanup(func() { deltaMinChannels = saved })
			}
			nchild := 1
			for _, k := range sc.cubeShape {
				nchild *= k
			}
			tpc := 1
			for _, k := range sc.childShape {
				tpc *= k
			}
			n := nchild * tpc
			rng := rand.New(rand.NewSource(int64(1000 + n)))
			g := graph.New(n)
			for e := 0; e < 4*n; e++ {
				g.AddTraffic(rng.Intn(n), rng.Intn(n), float64(1+rng.Intn(9)))
			}
			pins := rng.Perm(nchild)

			for _, bw := range sc.beams {
				for _, repos := range sc.reposition {
					cfg := Config{
						BeamWidth:       bw,
						ChildCandidates: 2,
						MaxOrientations: 8,
						Torus:           sc.torus,
						Reposition:      repos,
					}
					run := func(disable bool, par int) *Block {
						c := cfg
						c.DisableDeltaEval = disable
						c.Parallelism = par
						blk, err := Merge(g, deltaChildren(t, g, nchild, tpc, sc.childShape), sc.cubeShape, pins, c)
						if err != nil {
							t.Fatal(err)
						}
						return blk
					}
					label := fmt.Sprintf("bw=%d repos=%v", bw, repos)
					dense := run(true, 1)
					wantSameBlock(t, dense, run(false, 1), label+" delta/seq")
					wantSameBlock(t, dense, run(false, 8), label+" delta/par8")
					wantSameBlock(t, dense, run(true, 8), label+" dense/par8")
				}
			}
		})
	}
}

// TestTopNDeterministicTieBreak pins the beam truncation tie-break: states
// with equal MCL are ordered by their packed choice key, so which of them
// survives a narrow beam never depends on arrival order (and hence not on
// scoring-worker scheduling).
func TestTopNDeterministicTieBreak(t *testing.T) {
	mk := func(mcl float64, key ...uint64) *state {
		return &state{mcl: mcl, key: key}
	}
	a := mk(5, 1, 2)
	b := mk(5, 1, 3)
	c := mk(5, 0, 9)
	d := mk(4, 7, 7)
	for _, order := range [][]*state{{a, b, c, d}, {d, c, b, a}, {b, d, a, c}} {
		in := append([]*state(nil), order...)
		got := topN(in, 2)
		if len(got) != 2 || got[0] != d || got[1] != c {
			t.Fatalf("order %v: topN kept %v, want [d c]", order, got)
		}
	}
}
