// Package merge implements Phase 3 of RAHTM: bottom-up merging of mapped
// sub-blocks with rotation/reorientation search and top-N candidate pruning.
//
// Each block carries a beam of candidate internal mappings. Merging the
// children of one hierarchy node proceeds incrementally: children are
// ordered by decreasing average pairwise MCL (blocks with heavy interactions
// get placed while the search is still flexible), and at every step all
// combinations of surviving partial configurations, child candidates, and
// child orientations (the hyperoctahedral symmetries of the child box) are
// scored by the maximum channel load of the traffic merged so far; only the
// best N (the paper uses N = 64) survive.
package merge

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"rahtm/internal/graph"
	"rahtm/internal/obs"
	"rahtm/internal/routing"
	"rahtm/internal/telemetry"
	"rahtm/internal/topology"
)

// Beam-search counters on the process-wide registry. The scoring loops
// accumulate plain locals and flush once per merge step / ordering pass.
var (
	ctrBeamCandidates = telemetry.Default.Counter(telemetry.CtrBeamCandidates)
	ctrBeamKept       = telemetry.Default.Counter(telemetry.CtrBeamKept)
	ctrSymmetryEvals  = telemetry.Default.Counter(telemetry.CtrSymmetryEvals)
)

// Orientation is a signed dimension permutation of a box: output coordinate
// d reads input coordinate Perm[d], reversed when Flip[d] is set. Only
// shape-preserving orientations are valid for a given box.
type Orientation struct {
	Perm []int
	Flip []bool
}

// Orientations enumerates every shape-preserving orientation of a box,
// deterministically. Flips of 1-wide dimensions are identities and are not
// enumerated.
func Orientations(shape []int) []Orientation {
	nd := len(shape)
	var out []Orientation
	perm := make([]int, nd)
	used := make([]bool, nd)
	var flips func(p []int, d int, f []bool)
	flips = func(p []int, d int, f []bool) {
		if d == nd {
			out = append(out, Orientation{
				Perm: append([]int(nil), p...),
				Flip: append([]bool(nil), f...),
			})
			return
		}
		f[d] = false
		flips(p, d+1, f)
		if shape[d] > 1 {
			f[d] = true
			flips(p, d+1, f)
			f[d] = false
		}
	}
	var perms func(d int)
	perms = func(d int) {
		if d == nd {
			flips(perm, 0, make([]bool, nd))
			return
		}
		if shape[d] == 1 {
			// Permuting 1-wide dimensions among themselves never changes
			// the action; pin them to avoid duplicate orientations.
			if used[d] {
				return
			}
			used[d] = true
			perm[d] = d
			perms(d + 1)
			used[d] = false
			return
		}
		for v := 0; v < nd; v++ {
			if used[v] || shape[v] != shape[d] {
				continue
			}
			used[v] = true
			perm[d] = v
			perms(d + 1)
			used[v] = false
		}
	}
	perms(0)
	return out
}

// applyFast is Apply without heap allocations for boxes of at most 8
// dimensions — the merge scorers call it once per task per candidate.
func (o Orientation) applyFast(shape []int, pos int) int {
	nd := len(shape)
	if nd > 8 {
		return o.Apply(shape, pos)
	}
	var x, y [8]int
	for d := nd - 1; d >= 0; d-- {
		x[d] = pos % shape[d]
		pos /= shape[d]
	}
	for d := 0; d < nd; d++ {
		v := x[o.Perm[d]]
		if o.Flip[d] {
			v = shape[d] - 1 - v
		}
		y[d] = v
	}
	out := 0
	for d := 0; d < nd; d++ {
		out = out*shape[d] + y[d]
	}
	return out
}

// Apply transforms a row-major position within a box of the given shape.
func (o Orientation) Apply(shape []int, pos int) int {
	nd := len(shape)
	// Decode row-major (last dim fastest).
	x := make([]int, nd)
	for d := nd - 1; d >= 0; d-- {
		x[d] = pos % shape[d]
		pos /= shape[d]
	}
	// Transform.
	y := make([]int, nd)
	for d := 0; d < nd; d++ {
		v := x[o.Perm[d]]
		if o.Flip[d] {
			v = shape[d] - 1 - v
		}
		y[d] = v
	}
	// Encode.
	out := 0
	for d := 0; d < nd; d++ {
		out = out*shape[d] + y[d]
	}
	return out
}

// Candidate is one internal mapping of a block, with its MCL estimate.
type Candidate struct {
	// Local maps task index (into Block.Tasks) to a row-major position in
	// Block.Shape.
	Local topology.Mapping
	// MCL is the maximum channel load of the block-internal traffic under
	// the uniform minimal-path model.
	MCL float64
}

// Block is a mapped sub-box of the machine carrying a beam of candidates,
// best first.
type Block struct {
	Tasks      []int // global task ids, ascending
	Shape      []int // box extent per dimension
	Candidates []Candidate
	// Degraded is set when the merge ran out of time (context deadline)
	// and completed greedily instead of searching: the candidates are
	// valid but best-effort.
	Degraded bool
}

// NewLeafBlock wraps a Phase 2 leaf solution as a single-candidate block.
// tasks[i] is the global id of local task i; local[i] its cube position.
func NewLeafBlock(tasks []int, shape []int, local topology.Mapping, mcl float64) *Block {
	return &Block{
		Tasks:      append([]int(nil), tasks...),
		Shape:      append([]int(nil), shape...),
		Candidates: []Candidate{{Local: local.Clone(), MCL: mcl}},
	}
}

// Config tunes the merge search. Zero values select the paper's defaults.
type Config struct {
	// BeamWidth is the number of merged candidates retained (paper: 64).
	BeamWidth int
	// ChildCandidates caps how many candidates of an incoming child are
	// combined with the beam (0 = 4).
	ChildCandidates int
	// Torus evaluates the merged block with wraparound links; set at the
	// root where the block is the whole machine.
	Torus bool
	// Topology, when non-nil, overrides the evaluation topology of the
	// merged block (its dimensions must equal the parent block shape).
	// The root merge passes the real machine here so per-dimension wrap
	// flags are exact.
	Topology *topology.Torus
	// MaxOrientations caps how many child orientations are explored per
	// merge step (0 = 384, the full hyperoctahedral group of a 4-D cube).
	// Larger groups are subsampled with a deterministic stride that always
	// keeps the identity.
	MaxOrientations int
	// MaxPairEvals caps the orientation-pair evaluations used for merge
	// ordering (0 = 4096); ordering falls back to coarser sampling above.
	MaxPairEvals int
	// Reposition additionally searches over the free cube positions for
	// each incoming child instead of honoring its Phase 2 pseudo-pin —
	// the extra placement freedom §III-D alludes to. It multiplies the
	// search space by up to the cube size.
	Reposition bool
	// Parallelism bounds the worker goroutines scoring merge candidates
	// (0 = GOMAXPROCS).
	Parallelism int
	// Observer receives BeamRound events after every merge step; nil is a
	// no-op.
	Observer obs.Observer
	// Level tags Observer events with the hierarchy depth of this merge.
	Level int
}

func (c Config) withDefaults() Config {
	if c.BeamWidth <= 0 {
		c.BeamWidth = 64
	}
	if c.ChildCandidates <= 0 {
		c.ChildCandidates = 4
	}
	if c.MaxOrientations <= 0 {
		c.MaxOrientations = 384
	}
	if c.MaxPairEvals <= 0 {
		c.MaxPairEvals = 4096
	}
	return c
}

// Merge combines child blocks arranged on a {1,2}^n cube into their parent
// block. childPos[i] is the pinned cube position of child i (row-major over
// cubeShape) from Phase 2. g is the global task-level communication graph.
func Merge(g *graph.Comm, children []*Block, cubeShape []int, childPos []int, cfg Config) (*Block, error) {
	//rahtm:allow(ctxpoll): compatibility wrapper; the root context is the documented default for the non-Ctx API
	return MergeCtx(context.Background(), g, children, cubeShape, childPos, cfg)
}

// MergeCtx is Merge under a context. Hard cancellation aborts the beam
// search (workers bail at their next poll) and returns ctx.Err(); an
// expired deadline stops searching and completes the remaining children
// greedily — pinned positions, first candidate, identity orientation — so a
// valid merged block is still produced, flagged Degraded.
func MergeCtx(ctx context.Context, g *graph.Comm, children []*Block, cubeShape []int, childPos []int, cfg Config) (*Block, error) {
	if err := hardCancel(ctx); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if len(children) == 0 {
		return nil, fmt.Errorf("merge: no children")
	}
	if len(childPos) != len(children) {
		return nil, fmt.Errorf("merge: %d children, %d positions", len(children), len(childPos))
	}
	nd := len(cubeShape)
	childShape := children[0].Shape
	for i, c := range children {
		if len(c.Shape) != nd {
			return nil, fmt.Errorf("merge: child %d dimensionality mismatch", i)
		}
		for d := range childShape {
			if c.Shape[d] != childShape[d] {
				return nil, fmt.Errorf("merge: child %d shape %v differs from %v", i, c.Shape, childShape)
			}
		}
		if len(c.Candidates) == 0 {
			return nil, fmt.Errorf("merge: child %d has no candidates", i)
		}
	}
	cubeSize := 1
	parentShape := make([]int, nd)
	for d := 0; d < nd; d++ {
		if cubeShape[d] != 1 && cubeShape[d] != 2 {
			return nil, fmt.Errorf("merge: cube shape %v is not 2-ary", cubeShape)
		}
		cubeSize *= cubeShape[d]
		parentShape[d] = cubeShape[d] * childShape[d]
	}
	if len(children) != cubeSize {
		return nil, fmt.Errorf("merge: %d children for cube of %d positions", len(children), cubeSize)
	}
	seen := make([]bool, cubeSize)
	for i, p := range childPos {
		if p < 0 || p >= cubeSize || seen[p] {
			return nil, fmt.Errorf("merge: bad child position %d for child %d", p, i)
		}
		seen[p] = true
	}
	if cfg.Reposition && cubeSize > 64 {
		return nil, fmt.Errorf("merge: repositioning supports cubes up to 64 positions, have %d", cubeSize)
	}

	m := &merger{
		g:          g,
		children:   children,
		childPos:   childPos,
		cubeShape:  cubeShape,
		childShape: childShape,
		cfg:        cfg,
	}
	switch {
	case cfg.Topology != nil:
		for d := 0; d < nd; d++ {
			if cfg.Topology.Dim(d) != parentShape[d] {
				return nil, fmt.Errorf("merge: override topology %v does not match parent shape %v",
					cfg.Topology, parentShape)
			}
		}
		m.parent = cfg.Topology
	case cfg.Torus:
		m.parent = topology.NewTorus(parentShape...)
	default:
		m.parent = topology.NewMesh(parentShape...)
	}
	m.orients = Orientations(childShape)
	if len(m.orients) > cfg.MaxOrientations {
		// Deterministic stride subsample keeping the identity (index 0).
		stride := (len(m.orients) + cfg.MaxOrientations - 1) / cfg.MaxOrientations
		var kept []Orientation
		for i := 0; i < len(m.orients); i += stride {
			kept = append(kept, m.orients[i])
		}
		m.orients = kept
	}
	m.origins = make([][]int, cubeSize)
	for p := 0; p < cubeSize; p++ {
		m.origins[p] = cubeOrigin(cubeShape, childShape, p)
	}
	m.ctx = ctx
	m.done = ctx.Done()
	m.obs = obs.OrNop(cfg.Observer)
	m.initAdjacency()
	return m.run()
}

// hardCancel returns ctx's error when it was canceled outright. Deadline
// expiry returns nil: the merge degrades to a greedy completion instead of
// failing.
func hardCancel(ctx context.Context) error {
	if err := ctx.Err(); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

// expired reports whether ctx's deadline has passed.
func expired(ctx context.Context) bool {
	return errors.Is(ctx.Err(), context.DeadlineExceeded)
}

// cubeOrigin returns the parent-box origin of the child at cube position p.
func cubeOrigin(cubeShape, childShape []int, p int) []int {
	nd := len(cubeShape)
	o := make([]int, nd)
	for d := nd - 1; d >= 0; d-- {
		o[d] = (p % cubeShape[d]) * childShape[d]
		p /= cubeShape[d]
	}
	return o
}

type merger struct {
	g          *graph.Comm
	children   []*Block
	childPos   []int
	cubeShape  []int
	childShape []int
	parent     *topology.Torus
	orients    []Orientation
	origins    [][]int // cube position -> parent origin coords
	cfg        Config
	ctx        context.Context
	done       <-chan struct{} // ctx.Done(), polled inside worker loops
	obs        obs.Observer

	// Per-task adjacency of the merged tasks, precomputed once so the
	// scorers do not rebuild (and re-sort) neighbor lists per evaluation.
	nbr  [][]int
	nvol [][]float64
	// scratch pools flowScratch instances sized to g.N() for addFlows.
	scratch sync.Pool
}

// flowScratch is the per-call working set of addFlows: task -> parent
// position plus membership marks, validated by generation counters so the
// arrays never need clearing between calls.
type flowScratch struct {
	pos      []int
	inA, inB []int64
	gen      int64
}

// initAdjacency caches neighbor/volume lists for every task of the merge.
func (m *merger) initAdjacency() {
	n := m.g.N()
	m.nbr = make([][]int, n)
	m.nvol = make([][]float64, n)
	for _, c := range m.children {
		for _, t := range c.Tasks {
			if m.nbr[t] != nil {
				continue
			}
			ns := m.g.Neighbors(t)
			vs := make([]float64, len(ns))
			for i, d := range ns {
				vs[i] = m.g.Traffic(t, d)
			}
			m.nbr[t] = ns
			m.nvol[t] = vs
		}
	}
	m.scratch.New = func() interface{} {
		return &flowScratch{
			pos: make([]int, n),
			inA: make([]int64, n),
			inB: make([]int64, n),
		}
	}
}

// taskParentPos computes the parent-box rank of a child's task under a
// candidate and orientation, with the child block at cube position cubePos.
func (m *merger) taskParentPos(cand Candidate, o Orientation, cubePos, taskIdx int) int {
	local := o.applyFast(m.childShape, cand.Local[taskIdx])
	// Decode local within childShape, offset by the child's origin.
	origin := m.origins[cubePos]
	nd := len(m.childShape)
	if nd <= 8 {
		var buf [8]int
		coord := buf[:nd]
		for d := nd - 1; d >= 0; d-- {
			coord[d] = origin[d] + local%m.childShape[d]
			local /= m.childShape[d]
		}
		return m.parent.RankOf(coord)
	}
	coord := make([]int, nd)
	for d := nd - 1; d >= 0; d-- {
		coord[d] = origin[d] + local%m.childShape[d]
		local /= m.childShape[d]
	}
	return m.parent.RankOf(coord)
}

// placementAt materializes parent positions for all tasks of a child placed
// at the given cube position.
func (m *merger) placementAt(child int, cand Candidate, o Orientation, cubePos int) []int {
	out := make([]int, len(m.children[child].Tasks))
	for i := range out {
		out[i] = m.taskParentPos(cand, o, cubePos, i)
	}
	return out
}

// placement materializes parent positions using the child's pinned position.
func (m *merger) placement(child int, cand Candidate, o Orientation) []int {
	return m.placementAt(child, cand, o, m.childPos[child])
}

// addFlows adds the loads of all graph flows between the two task->position
// maps (a may equal b for internal flows) into loads.
func (m *merger) addFlows(aTasks []int, aPos []int, bTasks []int, bPos []int, loads []float64, includeInternal bool) {
	alg := routing.MinimalAdaptive{}
	fs := m.scratch.Get().(*flowScratch)
	fs.gen++
	gen := fs.gen
	for i, t := range aTasks {
		fs.pos[t] = aPos[i]
		fs.inA[t] = gen
	}
	for i, t := range bTasks {
		fs.pos[t] = bPos[i]
		fs.inB[t] = gen
	}
	for _, t := range aTasks {
		for ni, d := range m.nbr[t] {
			if fs.inB[d] != gen {
				continue
			}
			if !includeInternal && fs.inA[d] == gen {
				continue
			}
			alg.AddLoads(m.parent, fs.pos[t], fs.pos[d], m.nvol[t][ni], loads)
		}
	}
	for _, t := range bTasks {
		if fs.inA[t] == gen {
			continue
		}
		for ni, d := range m.nbr[t] {
			if fs.inA[d] != gen {
				continue
			}
			alg.AddLoads(m.parent, fs.pos[t], fs.pos[d], m.nvol[t][ni], loads)
		}
	}
	m.scratch.Put(fs)
}

// mergeOrder ranks children by decreasing average best-pair MCL. Pair
// evaluations are independent and run on all cores.
func (m *merger) mergeOrder() []int {
	n := len(m.children)
	if n == 1 {
		return []int{0}
	}
	// Cap orientation pairs.
	ko := len(m.orients)
	for ko > 1 && ko*ko > m.cfg.MaxPairEvals {
		ko--
	}
	type pair struct{ i, j int }
	var pairs []pair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	best := make([]float64, len(pairs))
	workers := m.cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers && w*chunk < len(pairs); w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var evals int64
			//rahtm:allow(telemetrybatch): flushes a per-worker local once at worker exit, not per iteration
			defer func() { ctrSymmetryEvals.Add(evals) }()
			buf := make([]float64, m.parent.NumChannels())
			for pi := lo; pi < hi; pi++ {
				select {
				case <-m.done:
					return // ordering becomes partial; run() handles the context
				default:
				}
				evals += int64(ko * ko)
				i, j := pairs[pi].i, pairs[pi].j
				ci := m.children[i].Candidates[0]
				cj := m.children[j].Candidates[0]
				bst := -1.0
				for oi := 0; oi < ko; oi++ {
					plI := m.placement(i, ci, m.orients[oi])
					for oj := 0; oj < ko; oj++ {
						plJ := m.placement(j, cj, m.orients[oj])
						for k := range buf {
							buf[k] = 0
						}
						m.addFlows(m.children[i].Tasks, plI, m.children[i].Tasks, plI, buf, true)
						m.addFlows(m.children[j].Tasks, plJ, m.children[j].Tasks, plJ, buf, true)
						m.addFlows(m.children[i].Tasks, plI, m.children[j].Tasks, plJ, buf, false)
						mcl := routing.MCL(buf)
						if bst < 0 || mcl < bst {
							bst = mcl
						}
					}
				}
				best[pi] = bst
			}
		}(lo, hi)
	}
	wg.Wait()
	avg := make([]float64, n)
	for pi, p := range pairs {
		avg[p.i] += best[pi]
		avg[p.j] += best[pi]
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return avg[order[a]] > avg[order[b]] })
	return order
}

// state is one partial merged configuration.
type state struct {
	pos   [][]int // per merged child (in merge order): task parent positions
	cube  []int   // cube position chosen per merged child (in merge order)
	used  uint64  // bitmask of occupied cube positions
	loads []float64
	mcl   float64
}

// variant is one way to absorb the incoming child: which of its candidates,
// which orientation, and (with Reposition) which cube position.
type variant struct {
	cand   int
	orient int
	cube   int
}

// variantsOf enumerates the incoming child's variants given the occupied
// cube positions of a partial configuration.
func (m *merger) variantsOf(child int, used uint64) []variant {
	nc := len(m.children[child].Candidates)
	if nch := m.cfg.ChildCandidates; nc > nch {
		nc = nch
	}
	var cubes []int
	if m.cfg.Reposition {
		for p := range m.origins {
			if used&(1<<uint(p)) == 0 {
				cubes = append(cubes, p)
			}
		}
	} else {
		cubes = []int{m.childPos[child]}
	}
	out := make([]variant, 0, nc*len(m.orients)*len(cubes))
	for c := 0; c < nc; c++ {
		for o := range m.orients {
			for _, q := range cubes {
				out = append(out, variant{cand: c, orient: o, cube: q})
			}
		}
	}
	return out
}

// applyVariant adds the child's internal and cross loads for the variant on
// top of the partial state's loads (into dst, which must already hold the
// state's loads).
func (m *merger) applyVariant(st *state, order []int, step, child int, v variant, p []int, dst []float64) {
	m.addFlows(m.children[child].Tasks, p, m.children[child].Tasks, p, dst, true)
	for s := 0; s < step; s++ {
		m.addFlows(m.children[order[s]].Tasks, st.pos[s], m.children[child].Tasks, p, dst, false)
	}
}

func (m *merger) run() (*Block, error) {
	order := m.mergeOrder()
	if err := hardCancel(m.ctx); err != nil {
		return nil, err
	}
	workers := m.cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	degraded := false
	var candGen, candKept int64
	defer func() {
		ctrBeamCandidates.Add(candGen)
		ctrBeamKept.Add(candKept)
	}()

	// Seed the beam with the first child. With the deadline already gone,
	// seed only the pinned identity variant; the loop below completes the
	// rest greedily.
	var beam []*state
	first := order[0]
	if expired(m.ctx) {
		degraded = true
		beam = []*state{m.seedState(first, variant{cube: m.childPos[first]})}
	} else {
		for _, v := range m.variantsOf(first, 0) {
			beam = append(beam, m.seedState(first, v))
		}
		candGen += int64(len(beam))
		beam = topN(beam, m.cfg.BeamWidth)
		candKept += int64(len(beam))
	}
	m.obs.BeamRound(m.cfg.Level, 0, len(beam), beam[0].mcl)

	for step := 1; step < len(order); step++ {
		if err := hardCancel(m.ctx); err != nil {
			return nil, err
		}
		if expired(m.ctx) {
			beam = m.completeGreedy(beam, order, step)
			degraded = true
			break
		}
		child := order[step]
		// Pass 1: score every (state, variant) combination, in parallel.
		type combo struct {
			st  int
			v   variant
			mcl float64
		}
		var combos []combo
		for si, st := range beam {
			for _, v := range m.variantsOf(child, st.used) {
				combos = append(combos, combo{st: si, v: v, mcl: math.Inf(1)})
			}
		}
		var wg sync.WaitGroup
		chunk := (len(combos) + workers - 1) / workers
		for w := 0; w < workers && w*chunk < len(combos); w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > len(combos) {
				hi = len(combos)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				buf := make([]float64, m.parent.NumChannels())
				for i := lo; i < hi; i++ {
					select {
					case <-m.done:
						return // unscored combos keep mcl=+Inf and are discarded
					default:
					}
					c := &combos[i]
					st := beam[c.st]
					cand := m.children[child].Candidates[c.v.cand]
					p := m.placementAt(child, cand, m.orients[c.v.orient], c.v.cube)
					copy(buf, st.loads)
					m.applyVariant(st, order, step, child, c.v, p, buf)
					c.mcl = routing.MCL(buf)
				}
			}(lo, hi)
		}
		wg.Wait()
		if err := hardCancel(m.ctx); err != nil {
			return nil, err
		}
		if expired(m.ctx) {
			// The step was cut short; its scores are partial. Discard them
			// and complete this and the remaining steps greedily.
			beam = m.completeGreedy(beam, order, step)
			degraded = true
			break
		}
		candGen += int64(len(combos))
		sort.SliceStable(combos, func(a, b int) bool { return combos[a].mcl < combos[b].mcl })
		if len(combos) > m.cfg.BeamWidth {
			combos = combos[:m.cfg.BeamWidth]
		}
		candKept += int64(len(combos))
		// Pass 2: materialize the winners.
		next := make([]*state, 0, len(combos))
		for _, sc := range combos {
			st := beam[sc.st]
			cand := m.children[child].Candidates[sc.v.cand]
			p := m.placementAt(child, cand, m.orients[sc.v.orient], sc.v.cube)
			loads := append([]float64(nil), st.loads...)
			m.applyVariant(st, order, step, child, sc.v, p, loads)
			pos := make([][]int, step+1)
			copy(pos, st.pos)
			pos[step] = p
			cube := make([]int, step+1)
			copy(cube, st.cube)
			cube[step] = sc.v.cube
			next = append(next, &state{
				pos:   pos,
				cube:  cube,
				used:  st.used | 1<<uint(sc.v.cube),
				loads: loads,
				mcl:   sc.mcl,
			})
		}
		beam = next
		m.obs.BeamRound(m.cfg.Level, step, len(beam), beam[0].mcl)
	}

	// Assemble the merged block: tasks ascending, candidates from the beam.
	var allTasks []int
	for _, c := range m.children {
		allTasks = append(allTasks, c.Tasks...)
	}
	sort.Ints(allTasks)
	taskIdx := make(map[int]int, len(allTasks))
	for i, t := range allTasks {
		taskIdx[t] = i
	}
	parentShape := make([]int, len(m.cubeShape))
	for d := range parentShape {
		parentShape[d] = m.cubeShape[d] * m.childShape[d]
	}
	out := &Block{Tasks: allTasks, Shape: parentShape, Degraded: degraded}
	for _, st := range beam {
		local := make(topology.Mapping, len(allTasks))
		for s := 0; s < len(order); s++ {
			tasks := m.children[order[s]].Tasks
			for i, t := range tasks {
				local[taskIdx[t]] = st.pos[s][i]
			}
		}
		out.Candidates = append(out.Candidates, Candidate{Local: local, MCL: st.mcl})
	}
	return out, nil
}

// seedState builds the single-child beam state for variant v of child.
func (m *merger) seedState(child int, v variant) *state {
	cand := m.children[child].Candidates[v.cand]
	p := m.placementAt(child, cand, m.orients[v.orient], v.cube)
	loads := make([]float64, m.parent.NumChannels())
	m.addFlows(m.children[child].Tasks, p, m.children[child].Tasks, p, loads, true)
	return &state{
		pos:   [][]int{p},
		cube:  []int{v.cube},
		used:  1 << uint(v.cube),
		loads: loads,
		mcl:   routing.MCL(loads),
	}
}

// completeGreedy finishes an interrupted merge from the best surviving
// state: each remaining child (steps from..end of order) is absorbed with
// its first candidate, the identity orientation, and its pinned cube
// position (or the first free one when Reposition already took it). The
// result is a valid single-candidate beam without any further search.
func (m *merger) completeGreedy(beam []*state, order []int, from int) []*state {
	st := beam[0]
	for step := from; step < len(order); step++ {
		child := order[step]
		cube := m.childPos[child]
		if st.used&(1<<uint(cube)) != 0 {
			for p := range m.origins {
				if st.used&(1<<uint(p)) == 0 {
					cube = p
					break
				}
			}
		}
		cand := m.children[child].Candidates[0]
		p := m.placementAt(child, cand, m.orients[0], cube)
		loads := append([]float64(nil), st.loads...)
		m.applyVariant(st, order, step, child, variant{cube: cube}, p, loads)
		pos := make([][]int, step+1)
		copy(pos, st.pos)
		pos[step] = p
		cubes := make([]int, step+1)
		copy(cubes, st.cube)
		cubes[step] = cube
		st = &state{
			pos:   pos,
			cube:  cubes,
			used:  st.used | 1<<uint(cube),
			loads: loads,
			mcl:   routing.MCL(loads),
		}
	}
	return []*state{st}
}

// topN sorts states ascending by MCL and truncates.
func topN(states []*state, n int) []*state {
	sort.SliceStable(states, func(a, b int) bool { return states[a].mcl < states[b].mcl })
	if len(states) > n {
		states = states[:n]
	}
	return states
}
