// Package merge implements Phase 3 of RAHTM: bottom-up merging of mapped
// sub-blocks with rotation/reorientation search and top-N candidate pruning.
//
// Each block carries a beam of candidate internal mappings. Merging the
// children of one hierarchy node proceeds incrementally: children are
// ordered by decreasing average pairwise MCL (blocks with heavy interactions
// get placed while the search is still flexible), and at every step all
// combinations of surviving partial configurations, child candidates, and
// child orientations (the hyperoctahedral symmetries of the child box) are
// scored by the maximum channel load of the traffic merged so far; only the
// best N (the paper uses N = 64) survive.
//
// # Incremental MCL evaluation
//
// Scoring a candidate placement does not recompute the merged channel loads
// from scratch. A candidate perturbs only the channels its own flows
// traverse, so the scorers accumulate the candidate's contribution — the
// incoming child's internal loads plus its cross flows to the already-placed
// children — into a sparse routing.DeltaVec and score it against the partial
// configuration's dense load vector as
//
//	mcl = max(state.mcl, max over touched ch of state.loads[ch] + delta[ch])
//
// which is exact (bit-for-bit, not approximately) because deltas are
// non-negative: untouched channels cannot exceed the state's maximum. The
// child-internal loads are themselves computed once per (candidate,
// orientation) pair at the child's pinned cube position and translated to
// any other position by a constant channel offset — inside a 2-ary merge
// cube a child box never spans half a wrapped parent dimension, so its
// internal minimal routes neither wrap nor pick up direction ties, making
// the load pattern translation-equivariant.
//
// A dense exact-recompute path (Config.DisableDeltaEval, also selected
// automatically for small channel spaces) scores every candidate from a
// zeroed load vector instead; both paths deposit per-channel values in the
// same order and therefore produce byte-identical beams, a property pinned
// by TestMergeDeltaByteIdentical.
package merge

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"rahtm/internal/graph"
	"rahtm/internal/obs"
	"rahtm/internal/routing"
	"rahtm/internal/telemetry"
	"rahtm/internal/topology"
)

// Beam-search counters on the process-wide registry. The scoring loops
// accumulate plain locals and flush once per merge step / ordering pass.
var (
	ctrBeamCandidates = telemetry.Default.Counter(telemetry.CtrBeamCandidates)
	ctrBeamKept       = telemetry.Default.Counter(telemetry.CtrBeamKept)
	ctrSymmetryEvals  = telemetry.Default.Counter(telemetry.CtrSymmetryEvals)
	ctrDeltaHits      = telemetry.Default.Counter(telemetry.CtrDeltaHits)
	ctrDeltaFallbacks = telemetry.Default.Counter(telemetry.CtrDeltaFallbacks)
)

// deltaMinChannels is the channel-space size below which the merge scorers
// use the dense exact-recompute path unconditionally: with only a few
// hundred channels the O(NumChannels) zero-and-scan is cheaper than sparse
// bookkeeping. Both paths are byte-identical, so the threshold only affects
// speed. Package variable so tests can force the sparse path on small
// topologies.
var deltaMinChannels = 256

// Orientation is a signed dimension permutation of a box: output coordinate
// d reads input coordinate Perm[d], reversed when Flip[d] is set. Only
// shape-preserving orientations are valid for a given box.
type Orientation struct {
	Perm []int
	Flip []bool
}

// Orientations enumerates every shape-preserving orientation of a box,
// deterministically. Flips of 1-wide dimensions are identities and are not
// enumerated.
func Orientations(shape []int) []Orientation {
	nd := len(shape)
	var out []Orientation
	perm := make([]int, nd)
	used := make([]bool, nd)
	var flips func(p []int, d int, f []bool)
	flips = func(p []int, d int, f []bool) {
		if d == nd {
			out = append(out, Orientation{
				Perm: append([]int(nil), p...),
				Flip: append([]bool(nil), f...),
			})
			return
		}
		f[d] = false
		flips(p, d+1, f)
		if shape[d] > 1 {
			f[d] = true
			flips(p, d+1, f)
			f[d] = false
		}
	}
	var perms func(d int)
	perms = func(d int) {
		if d == nd {
			flips(perm, 0, make([]bool, nd))
			return
		}
		if shape[d] == 1 {
			// Permuting 1-wide dimensions among themselves never changes
			// the action; pin them to avoid duplicate orientations.
			if used[d] {
				return
			}
			used[d] = true
			perm[d] = d
			perms(d + 1)
			used[d] = false
			return
		}
		for v := 0; v < nd; v++ {
			if used[v] || shape[v] != shape[d] {
				continue
			}
			used[v] = true
			perm[d] = v
			perms(d + 1)
			used[v] = false
		}
	}
	perms(0)
	return out
}

// applyFast is Apply without heap allocations for boxes of at most 8
// dimensions — the merge scorers call it once per task per candidate.
func (o Orientation) applyFast(shape []int, pos int) int {
	nd := len(shape)
	if nd > 8 {
		return o.Apply(shape, pos)
	}
	var x, y [8]int
	for d := nd - 1; d >= 0; d-- {
		x[d] = pos % shape[d]
		pos /= shape[d]
	}
	for d := 0; d < nd; d++ {
		v := x[o.Perm[d]]
		if o.Flip[d] {
			v = shape[d] - 1 - v
		}
		y[d] = v
	}
	out := 0
	for d := 0; d < nd; d++ {
		out = out*shape[d] + y[d]
	}
	return out
}

// Apply transforms a row-major position within a box of the given shape.
func (o Orientation) Apply(shape []int, pos int) int {
	nd := len(shape)
	// Decode row-major (last dim fastest).
	x := make([]int, nd)
	for d := nd - 1; d >= 0; d-- {
		x[d] = pos % shape[d]
		pos /= shape[d]
	}
	// Transform.
	y := make([]int, nd)
	for d := 0; d < nd; d++ {
		v := x[o.Perm[d]]
		if o.Flip[d] {
			v = shape[d] - 1 - v
		}
		y[d] = v
	}
	// Encode.
	out := 0
	for d := 0; d < nd; d++ {
		out = out*shape[d] + y[d]
	}
	return out
}

// Candidate is one internal mapping of a block, with its MCL estimate.
type Candidate struct {
	// Local maps task index (into Block.Tasks) to a row-major position in
	// Block.Shape.
	Local topology.Mapping
	// MCL is the maximum channel load of the block-internal traffic under
	// the uniform minimal-path model.
	MCL float64
}

// Block is a mapped sub-box of the machine carrying a beam of candidates,
// best first.
type Block struct {
	Tasks      []int // global task ids, ascending
	Shape      []int // box extent per dimension
	Candidates []Candidate
	// Degraded is set when the merge ran out of time (context deadline)
	// and completed greedily instead of searching: the candidates are
	// valid but best-effort.
	Degraded bool
}

// NewLeafBlock wraps a Phase 2 leaf solution as a single-candidate block.
// tasks[i] is the global id of local task i; local[i] its cube position.
func NewLeafBlock(tasks []int, shape []int, local topology.Mapping, mcl float64) *Block {
	return &Block{
		Tasks:      append([]int(nil), tasks...),
		Shape:      append([]int(nil), shape...),
		Candidates: []Candidate{{Local: local.Clone(), MCL: mcl}},
	}
}

// Config tunes the merge search. Zero values select the paper's defaults.
type Config struct {
	// BeamWidth is the number of merged candidates retained (paper: 64).
	BeamWidth int
	// ChildCandidates caps how many candidates of an incoming child are
	// combined with the beam (0 = 4).
	ChildCandidates int
	// Torus evaluates the merged block with wraparound links; set at the
	// root where the block is the whole machine.
	Torus bool
	// Topology, when non-nil, overrides the evaluation topology of the
	// merged block (its dimensions must equal the parent block shape).
	// The root merge passes the real machine here so per-dimension wrap
	// flags are exact.
	Topology *topology.Torus
	// MaxOrientations caps how many child orientations are explored per
	// merge step (0 = 384, the full hyperoctahedral group of a 4-D cube).
	// Larger groups are subsampled with a deterministic stride that always
	// keeps the identity.
	MaxOrientations int
	// MaxPairEvals caps the orientation-pair evaluations used for merge
	// ordering (0 = 4096); ordering falls back to coarser sampling above.
	MaxPairEvals int
	// Reposition additionally searches over the free cube positions for
	// each incoming child instead of honoring its Phase 2 pseudo-pin —
	// the extra placement freedom §III-D alludes to. It multiplies the
	// search space by up to the cube size.
	Reposition bool
	// Parallelism bounds the worker goroutines scoring merge candidates
	// (0 = GOMAXPROCS).
	Parallelism int
	// DisableDeltaEval forces the scorers onto the dense exact-recompute
	// path: every candidate's channel loads are re-accumulated from a
	// zeroed vector instead of sparsely against the beam state. Both paths
	// produce byte-identical beams; the switch exists for A/B validation
	// and benchmarking (small channel spaces fall back automatically).
	DisableDeltaEval bool
	// Observer receives BeamRound events after every merge step; nil is a
	// no-op.
	Observer obs.Observer
	// Level tags Observer events with the hierarchy depth of this merge.
	Level int
}

func (c Config) withDefaults() Config {
	if c.BeamWidth <= 0 {
		c.BeamWidth = 64
	}
	if c.ChildCandidates <= 0 {
		c.ChildCandidates = 4
	}
	if c.MaxOrientations <= 0 {
		c.MaxOrientations = 384
	}
	if c.MaxPairEvals <= 0 {
		c.MaxPairEvals = 4096
	}
	return c
}

// Merge combines child blocks arranged on a {1,2}^n cube into their parent
// block. childPos[i] is the pinned cube position of child i (row-major over
// cubeShape) from Phase 2. g is the global task-level communication graph.
func Merge(g *graph.Comm, children []*Block, cubeShape []int, childPos []int, cfg Config) (*Block, error) {
	//rahtm:allow(ctxpoll): compatibility wrapper; the root context is the documented default for the non-Ctx API
	return MergeCtx(context.Background(), g, children, cubeShape, childPos, cfg)
}

// MergeCtx is Merge under a context. Hard cancellation aborts the beam
// search (workers bail at their next poll) and returns ctx.Err(); an
// expired deadline stops searching and completes the remaining children
// greedily — pinned positions, first candidate, identity orientation — so a
// valid merged block is still produced, flagged Degraded.
func MergeCtx(ctx context.Context, g *graph.Comm, children []*Block, cubeShape []int, childPos []int, cfg Config) (*Block, error) {
	if err := hardCancel(ctx); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if len(children) == 0 {
		return nil, fmt.Errorf("merge: no children")
	}
	if len(childPos) != len(children) {
		return nil, fmt.Errorf("merge: %d children, %d positions", len(children), len(childPos))
	}
	nd := len(cubeShape)
	childShape := children[0].Shape
	for i, c := range children {
		if len(c.Shape) != nd {
			return nil, fmt.Errorf("merge: child %d dimensionality mismatch", i)
		}
		for d := range childShape {
			if c.Shape[d] != childShape[d] {
				return nil, fmt.Errorf("merge: child %d shape %v differs from %v", i, c.Shape, childShape)
			}
		}
		if len(c.Candidates) == 0 {
			return nil, fmt.Errorf("merge: child %d has no candidates", i)
		}
	}
	cubeSize := 1
	parentShape := make([]int, nd)
	for d := 0; d < nd; d++ {
		if cubeShape[d] != 1 && cubeShape[d] != 2 {
			return nil, fmt.Errorf("merge: cube shape %v is not 2-ary", cubeShape)
		}
		cubeSize *= cubeShape[d]
		parentShape[d] = cubeShape[d] * childShape[d]
	}
	if len(children) != cubeSize {
		return nil, fmt.Errorf("merge: %d children for cube of %d positions", len(children), cubeSize)
	}
	seen := make([]bool, cubeSize)
	for i, p := range childPos {
		if p < 0 || p >= cubeSize || seen[p] {
			return nil, fmt.Errorf("merge: bad child position %d for child %d", p, i)
		}
		seen[p] = true
	}
	if cfg.Reposition && cubeSize > 64 {
		return nil, fmt.Errorf("merge: repositioning supports cubes up to 64 positions, have %d", cubeSize)
	}

	m := &merger{
		g:          g,
		children:   children,
		childPos:   childPos,
		cubeShape:  cubeShape,
		childShape: childShape,
		cfg:        cfg,
	}
	switch {
	case cfg.Topology != nil:
		for d := 0; d < nd; d++ {
			if cfg.Topology.Dim(d) != parentShape[d] {
				return nil, fmt.Errorf("merge: override topology %v does not match parent shape %v",
					cfg.Topology, parentShape)
			}
		}
		m.parent = cfg.Topology
	case cfg.Torus:
		m.parent = topology.NewTorus(parentShape...)
	default:
		m.parent = topology.NewMesh(parentShape...)
	}
	m.orients = Orientations(childShape)
	if len(m.orients) > cfg.MaxOrientations {
		// Deterministic stride subsample keeping the identity (index 0).
		stride := (len(m.orients) + cfg.MaxOrientations - 1) / cfg.MaxOrientations
		var kept []Orientation
		for i := 0; i < len(m.orients); i += stride {
			kept = append(kept, m.orients[i])
		}
		m.orients = kept
	}
	m.origins = make([][]int, cubeSize)
	m.originRank = make([]int, cubeSize)
	for p := 0; p < cubeSize; p++ {
		m.origins[p] = cubeOrigin(cubeShape, childShape, p)
		m.originRank[p] = m.parent.RankOf(m.origins[p])
	}
	m.ctx = ctx
	m.done = ctx.Done()
	m.obs = obs.OrNop(cfg.Observer)
	m.scope = telemetry.ScopeFrom(ctx)
	m.alg = routing.MinimalAdaptive{}.WithScope(m.scope)
	m.initAdjacency()
	return m.run()
}

// hardCancel returns ctx's error when it was canceled outright. Deadline
// expiry returns nil: the merge degrades to a greedy completion instead of
// failing.
func hardCancel(ctx context.Context) error {
	if err := ctx.Err(); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

// expired reports whether ctx's deadline has passed.
func expired(ctx context.Context) bool {
	return errors.Is(ctx.Err(), context.DeadlineExceeded)
}

// cubeOrigin returns the parent-box origin of the child at cube position p.
func cubeOrigin(cubeShape, childShape []int, p int) []int {
	nd := len(cubeShape)
	o := make([]int, nd)
	for d := nd - 1; d >= 0; d-- {
		o[d] = (p % cubeShape[d]) * childShape[d]
		p /= cubeShape[d]
	}
	return o
}

type merger struct {
	g          *graph.Comm
	children   []*Block
	childPos   []int
	cubeShape  []int
	childShape []int
	parent     *topology.Torus
	orients    []Orientation
	origins    [][]int // cube position -> parent origin coords
	originRank []int   // cube position -> parent rank of the origin
	cfg        Config
	ctx        context.Context
	done       <-chan struct{} // ctx.Done(), polled inside worker loops
	obs        obs.Observer
	// scope is the request scope carried by ctx (nil outside the daemon);
	// alg is the shared evaluator, scoped so every scorer's stencil
	// traffic is attributed to the owning request.
	scope *telemetry.Scope
	alg   routing.MinimalAdaptive

	// Per-task adjacency of the merged tasks. On a frozen graph these alias
	// the CSR rows directly; on a builder graph they are compiled once here
	// so the scorers never rebuild (or re-sort) neighbor lists per
	// evaluation. Read-only either way.
	nbr  [][]int32
	nvol [][]float64
	// taskChild/taskLocal invert the children's task lists: global task id
	// -> owning child index and local index within that child (-1 for tasks
	// outside this merge). The scorers use them to extract cross-child flow
	// lists once per step instead of re-marking task sets per evaluation.
	taskChild []int32
	taskLocal []int32
	// scratch pools flowScratch instances sized to g.N() for addFlows.
	scratch sync.Pool
}

// flowScratch is the per-call working set of addFlows: task -> parent
// position plus membership marks, validated by generation counters so the
// arrays never need clearing between calls.
type flowScratch struct {
	pos      []int
	inA, inB []int64
	gen      int64
}

// initAdjacency caches neighbor/volume lists for every task of the merge.
func (m *merger) initAdjacency() {
	n := m.g.N()
	m.nbr = make([][]int32, n)
	m.nvol = make([][]float64, n)
	m.taskChild = make([]int32, n)
	m.taskLocal = make([]int32, n)
	for t := range m.taskChild {
		m.taskChild[t] = -1
		m.taskLocal[t] = -1
	}
	for ci, c := range m.children {
		for i, t := range c.Tasks {
			m.taskChild[t] = int32(ci)
			m.taskLocal[t] = int32(i)
		}
	}
	for _, c := range m.children {
		for _, t := range c.Tasks {
			if m.nbr[t] != nil {
				continue
			}
			//rahtm:allow(csralias): nbr/nvol deliberately cache CSR row aliases for zero-copy adjacency scans; the rows are never written and the frozen graph outlives the merger (TestMergeDeltaByteIdentical covers the read-only contract)
			m.nbr[t], m.nvol[t] = m.g.Edges(t)
		}
	}
	m.scratch.New = func() interface{} {
		return &flowScratch{
			pos: make([]int, n),
			inA: make([]int64, n),
			inB: make([]int64, n),
		}
	}
}

// taskParentPos computes the parent-box rank of a child's task under a
// candidate and orientation, with the child block at cube position cubePos.
func (m *merger) taskParentPos(cand Candidate, o Orientation, cubePos, taskIdx int) int {
	local := o.applyFast(m.childShape, cand.Local[taskIdx])
	// Decode local within childShape, offset by the child's origin.
	origin := m.origins[cubePos]
	nd := len(m.childShape)
	if nd <= 8 {
		var buf [8]int
		coord := buf[:nd]
		for d := nd - 1; d >= 0; d-- {
			coord[d] = origin[d] + local%m.childShape[d]
			local /= m.childShape[d]
		}
		return m.parent.RankOf(coord)
	}
	coord := make([]int, nd)
	for d := nd - 1; d >= 0; d-- {
		coord[d] = origin[d] + local%m.childShape[d]
		local /= m.childShape[d]
	}
	return m.parent.RankOf(coord)
}

// placementAt materializes parent positions for all tasks of a child placed
// at the given cube position.
func (m *merger) placementAt(child int, cand Candidate, o Orientation, cubePos int) []int {
	out := make([]int, len(m.children[child].Tasks))
	for i := range out {
		out[i] = m.taskParentPos(cand, o, cubePos, i)
	}
	return out
}

// placement materializes parent positions using the child's pinned position.
func (m *merger) placement(child int, cand Candidate, o Orientation) []int {
	return m.placementAt(child, cand, o, m.childPos[child])
}

// addFlows adds the loads of all graph flows between the two task->position
// maps (a may equal b for internal flows) into loads.
func (m *merger) addFlows(aTasks []int, aPos []int, bTasks []int, bPos []int, loads []float64, includeInternal bool) {
	alg := m.alg
	fs := m.scratch.Get().(*flowScratch)
	fs.gen++
	gen := fs.gen
	for i, t := range aTasks {
		fs.pos[t] = aPos[i]
		fs.inA[t] = gen
	}
	for i, t := range bTasks {
		fs.pos[t] = bPos[i]
		fs.inB[t] = gen
	}
	for _, t := range aTasks {
		for ni, d := range m.nbr[t] {
			if fs.inB[d] != gen {
				continue
			}
			if !includeInternal && fs.inA[d] == gen {
				continue
			}
			alg.AddLoads(m.parent, fs.pos[t], fs.pos[d], m.nvol[t][ni], loads)
		}
	}
	for _, t := range bTasks {
		if fs.inA[t] == gen {
			continue
		}
		for ni, d := range m.nbr[t] {
			if fs.inA[d] != gen {
				continue
			}
			alg.AddLoads(m.parent, fs.pos[t], fs.pos[d], m.nvol[t][ni], loads)
		}
	}
	m.scratch.Put(fs)
}

// addFlowsDelta is addFlows depositing into a sparse DeltaVec. It walks the
// same flows in the same order, so per-channel totals match the dense path
// bit-for-bit (see routing.AddLoadsDelta).
func (m *merger) addFlowsDelta(aTasks []int, aPos []int, bTasks []int, bPos []int, dv *routing.DeltaVec, includeInternal bool) {
	alg := m.alg
	fs := m.scratch.Get().(*flowScratch)
	fs.gen++
	gen := fs.gen
	for i, t := range aTasks {
		fs.pos[t] = aPos[i]
		fs.inA[t] = gen
	}
	for i, t := range bTasks {
		fs.pos[t] = bPos[i]
		fs.inB[t] = gen
	}
	for _, t := range aTasks {
		for ni, d := range m.nbr[t] {
			if fs.inB[d] != gen {
				continue
			}
			if !includeInternal && fs.inA[d] == gen {
				continue
			}
			alg.AddLoadsDelta(m.parent, fs.pos[t], fs.pos[d], m.nvol[t][ni], dv)
		}
	}
	for _, t := range bTasks {
		if fs.inA[t] == gen {
			continue
		}
		for ni, d := range m.nbr[t] {
			if fs.inA[d] != gen {
				continue
			}
			alg.AddLoadsDelta(m.parent, fs.pos[t], fs.pos[d], m.nvol[t][ni], dv)
		}
	}
	m.scratch.Put(fs)
}

// mergeOrder ranks children by decreasing average best-pair MCL. Each
// child's internal loads are routed once per sampled orientation into a
// snapshot; a pair evaluation then replays two snapshots and routes only the
// cross flows, sparsely — no dense vector is zeroed or scanned per pair.
func (m *merger) mergeOrder() []int {
	n := len(m.children)
	if n == 1 {
		return []int{0}
	}
	// Cap orientation pairs.
	ko := len(m.orients)
	for ko > 1 && ko*ko > m.cfg.MaxPairEvals {
		ko--
	}
	workers := m.cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Stage 1: pinned placements and internal-load snapshots per (child,
	// orientation), shared by every pair the child participates in.
	pl := make([][][]int, n)
	snaps := make([][]routing.Snapshot, n)
	for i := range pl {
		pl[i] = make([][]int, ko)
		snaps[i] = make([]routing.Snapshot, ko)
	}
	units := n * ko
	var wg sync.WaitGroup
	chunk := (units + workers - 1) / workers
	for w := 0; w < workers && w*chunk < units; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > units {
			hi = units
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			dv := routing.NewDeltaVec(m.parent.NumChannels())
			for u := lo; u < hi; u++ {
				select {
				case <-m.done:
					return // ordering becomes partial; run() handles the context
				default:
				}
				i, oi := u/ko, u%ko
				p := m.placement(i, m.children[i].Candidates[0], m.orients[oi])
				dv.Reset()
				m.addFlowsDelta(m.children[i].Tasks, p, m.children[i].Tasks, p, dv, true)
				pl[i][oi] = p
				snaps[i][oi] = dv.Snapshot()
			}
		}(lo, hi)
	}
	wg.Wait()

	// Stage 2: pair evaluations. The cross flows of each child pair are
	// extracted once from the adjacency (a single graph pass); an
	// evaluation replays the two internal snapshots and routes only those
	// flows.
	type pair struct{ i, j int }
	var pairs []pair
	pairIdx := make([][]int, n)
	for i := 0; i < n; i++ {
		pairIdx[i] = make([]int, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairIdx[i][j] = len(pairs)
			pairs = append(pairs, pair{i, j})
		}
	}
	type pairEdge struct {
		ai, bi int32 // local task indices within child i / child j
		fromJ  bool  // the flow runs j -> i when set
		vol    float64
	}
	pairEdges := make([][]pairEdge, len(pairs))
	for t := 0; t < m.g.N(); t++ {
		ci := m.taskChild[t]
		if ci < 0 {
			continue
		}
		for ni, d := range m.nbr[t] {
			cj := m.taskChild[d]
			if cj < 0 || cj == ci {
				continue
			}
			vol := m.nvol[t][ni]
			if ci < cj {
				pi := pairIdx[ci][cj]
				pairEdges[pi] = append(pairEdges[pi], pairEdge{ai: m.taskLocal[t], bi: m.taskLocal[d], vol: vol})
			} else {
				pi := pairIdx[cj][ci]
				pairEdges[pi] = append(pairEdges[pi], pairEdge{ai: m.taskLocal[d], bi: m.taskLocal[t], fromJ: true, vol: vol})
			}
		}
	}
	best := make([]float64, len(pairs))
	chunk = (len(pairs) + workers - 1) / workers
	for w := 0; w < workers && w*chunk < len(pairs); w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var evals int64
			//rahtm:allow(telemetrybatch): flushes a per-worker local once at worker exit, not per iteration
			defer func() { m.scope.CounterOr(telemetry.CtrSymmetryEvals, ctrSymmetryEvals).Add(evals) }()
			alg := m.alg
			dv := routing.NewDeltaVec(m.parent.NumChannels())
			for pi := lo; pi < hi; pi++ {
				select {
				case <-m.done:
					return // ordering becomes partial; run() handles the context
				default:
				}
				i, j := pairs[pi].i, pairs[pi].j
				bst := -1.0
				for oi := 0; oi < ko; oi++ {
					if pl[i][oi] == nil {
						continue // stage 1 was cut short by cancellation
					}
					for oj := 0; oj < ko; oj++ {
						if pl[j][oj] == nil {
							continue
						}
						evals++
						dv.Reset()
						dv.AddSnapshot(snaps[i][oi], 0)
						dv.AddSnapshot(snaps[j][oj], 0)
						for _, e := range pairEdges[pi] {
							if e.fromJ {
								alg.AddLoadsDelta(m.parent, pl[j][oj][e.bi], pl[i][oi][e.ai], e.vol, dv)
							} else {
								alg.AddLoadsDelta(m.parent, pl[i][oi][e.ai], pl[j][oj][e.bi], e.vol, dv)
							}
						}
						mcl := dv.Max()
						if bst < 0 || mcl < bst {
							bst = mcl
						}
					}
				}
				best[pi] = bst
			}
		}(lo, hi)
	}
	wg.Wait()
	avg := make([]float64, n)
	for pi, p := range pairs {
		avg[p.i] += best[pi]
		avg[p.j] += best[pi]
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return avg[order[a]] > avg[order[b]] })
	return order
}

// state is one partial merged configuration.
type state struct {
	pos  [][]int // per merged child (in merge order): task parent positions
	cube []int   // cube position chosen per merged child (in merge order)
	used uint64  // bitmask of occupied cube positions
	// key is the packed (cube, candidate, orientation) choice made at every
	// merge step: a placement key unique to the state, used as the
	// deterministic tie-break between equal-MCL states so beam contents
	// never depend on scoring order or parallelism.
	key   []uint64
	loads []float64
	mcl   float64
}

// packChoice encodes one merge step's choice as a single ordered word.
func packChoice(cube, cand, orient int) uint64 {
	return uint64(cube)<<40 | uint64(cand)<<20 | uint64(orient)
}

// lessKey compares placement keys lexicographically. Keys of states in the
// same beam have equal length.
func lessKey(a, b []uint64) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// combo is one (beam state, child candidate, orientation, cube position)
// scoring unit of a merge step.
type combo struct {
	si     int32
	cand   int32
	orient int32
	cube   int32
	mcl    float64
}

// freeCubes returns the cube positions the incoming child may take given the
// occupied positions of a partial configuration, appended to dst.
func (m *merger) freeCubes(child int, used uint64, dst []int) []int {
	dst = dst[:0]
	if !m.cfg.Reposition {
		return append(dst, m.childPos[child])
	}
	for p := range m.origins {
		if used&(1<<uint(p)) == 0 {
			dst = append(dst, p)
		}
	}
	return dst
}

// applyVariant adds the child's internal and cross loads for placement p on
// top of dst (dense). Only the greedy completion path uses it; the scorers
// route precomputed crossEdge lists instead.
func (m *merger) applyVariant(st *state, order []int, step, child int, p []int, dst []float64) {
	m.addFlows(m.children[child].Tasks, p, m.children[child].Tasks, p, dst, true)
	for s := 0; s < step; s++ {
		m.addFlows(m.children[order[s]].Tasks, st.pos[s], m.children[child].Tasks, p, dst, false)
	}
}

// crossEdge is one directed flow between the incoming child of a merge step
// and an already-placed child. The list is extracted once per step so a
// combo evaluation touches exactly the flows it routes — no per-evaluation
// task-set marking.
type crossEdge struct {
	ci      int32 // local task index within the incoming child
	s       int32 // merge-order step of the placed child
	oi      int32 // local task index within that placed child
	toChild bool  // the flow runs placed -> child when set
	vol     float64
}

// crossEdgesFor lists the flows between the incoming child of this step and
// every placed child, in a deterministic order shared by the sparse and
// dense scorers and the materialization pass.
func (m *merger) crossEdgesFor(order []int, step int, childStep []int32) []crossEdge {
	child := order[step]
	var edges []crossEdge
	for li, t := range m.children[child].Tasks {
		for ni, d := range m.nbr[t] {
			if m.taskChild[d] < 0 {
				continue
			}
			s := childStep[m.taskChild[d]]
			if s < 0 || s >= int32(step) {
				continue
			}
			edges = append(edges, crossEdge{ci: int32(li), s: s, oi: m.taskLocal[d], vol: m.nvol[t][ni]})
		}
	}
	for s := 0; s < step; s++ {
		for oi, u := range m.children[order[s]].Tasks {
			for ni, d := range m.nbr[u] {
				if m.taskChild[d] != int32(child) {
					continue
				}
				edges = append(edges, crossEdge{ci: m.taskLocal[d], s: int32(s), oi: int32(oi), toChild: true, vol: m.nvol[u][ni]})
			}
		}
	}
	return edges
}

// addCrossEdgesDelta routes the step's cross flows for the child placed at
// cp (task local index -> parent rank) against the state's placements.
func (m *merger) addCrossEdgesDelta(edges []crossEdge, st *state, cp []int, dv *routing.DeltaVec) {
	alg := m.alg
	for _, e := range edges {
		pp := st.pos[e.s][e.oi]
		if e.toChild {
			alg.AddLoadsDelta(m.parent, pp, cp[e.ci], e.vol, dv)
		} else {
			alg.AddLoadsDelta(m.parent, cp[e.ci], pp, e.vol, dv)
		}
	}
}

// addCrossEdges is addCrossEdgesDelta into a dense vector, same flow order.
func (m *merger) addCrossEdges(edges []crossEdge, st *state, cp []int, loads []float64) {
	alg := m.alg
	for _, e := range edges {
		pp := st.pos[e.s][e.oi]
		if e.toChild {
			alg.AddLoads(m.parent, pp, cp[e.ci], e.vol, loads)
		} else {
			alg.AddLoads(m.parent, cp[e.ci], pp, e.vol, loads)
		}
	}
}

// maxShifted returns the maximum of base[ch]+delta[ch] over all channels —
// the dense-path score, bit-identical to DeltaVec.MaxOver because adding a
// zero delta is exact and deltas are non-negative.
func maxShifted(base, delta []float64) float64 {
	max := 0.0
	for ch, b := range base {
		if v := b + delta[ch]; v > max {
			max = v
		}
	}
	return max
}

func (m *merger) run() (*Block, error) {
	order := m.mergeOrder()
	if err := hardCancel(m.ctx); err != nil {
		return nil, err
	}
	workers := m.cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	useDelta := !m.cfg.DisableDeltaEval && m.parent.NumChannels() >= deltaMinChannels
	nd2 := m.parent.NumDims() * 2
	degraded := false
	var candGen, candKept, deltaHits, deltaFalls int64
	defer func() {
		m.scope.CounterOr(telemetry.CtrBeamCandidates, ctrBeamCandidates).Add(candGen)
		m.scope.CounterOr(telemetry.CtrBeamKept, ctrBeamKept).Add(candKept)
		m.scope.CounterOr(telemetry.CtrDeltaHits, ctrDeltaHits).Add(deltaHits)
		m.scope.CounterOr(telemetry.CtrDeltaFallbacks, ctrDeltaFallbacks).Add(deltaFalls)
	}()

	// The beam starts from the empty configuration; step 0 seeds it with
	// the first child's variants through the same scoring path as every
	// later step.
	beam := []*state{{loads: make([]float64, m.parent.NumChannels())}}
	childStep := make([]int32, len(m.children))
	for i := range childStep {
		childStep[i] = -1
	}

	for step := 0; step < len(order); step++ {
		if err := hardCancel(m.ctx); err != nil {
			return nil, err
		}
		if expired(m.ctx) {
			beam = m.completeGreedy(beam, order, step)
			degraded = true
			if step == 0 {
				m.obs.BeamRound(m.cfg.Level, 0, len(beam), beam[0].mcl)
			}
			break
		}
		child := order[step]
		tasks := m.children[child].Tasks
		nc := len(m.children[child].Candidates)
		if nc > m.cfg.ChildCandidates {
			nc = m.cfg.ChildCandidates
		}
		numOrients := len(m.orients)
		refCube := m.childPos[child]
		crossEdges := m.crossEdgesFor(order, step, childStep)
		childStep[child] = int32(step)

		// Combo layout: (candidate, orientation) groups are contiguous so a
		// worker computes each group's reference placement — and, in delta
		// mode, its internal-load snapshot — exactly once, then scores the
		// group against every (state, cube position).
		cubesOf := make([][]int, len(beam))
		off := make([]int, len(beam)+1)
		for si, st := range beam {
			cubesOf[si] = m.freeCubes(child, st.used, nil)
			off[si+1] = off[si] + len(cubesOf[si])
		}
		groupSize := off[len(beam)]
		groups := nc * numOrients
		combos := make([]combo, groups*groupSize)
		for c := 0; c < nc; c++ {
			for o := 0; o < numOrients; o++ {
				base := (c*numOrients + o) * groupSize
				for si := range beam {
					for qi, q := range cubesOf[si] {
						combos[base+off[si]+qi] = combo{
							si: int32(si), cand: int32(c), orient: int32(o),
							cube: int32(q), mcl: math.Inf(1),
						}
					}
				}
			}
		}

		// Pass 1: score every combo, in parallel over groups.
		var wg sync.WaitGroup
		chunk := (groups + workers - 1) / workers
		for w := 0; w < workers && w*chunk < groups; w++ {
			glo, ghi := w*chunk, (w+1)*chunk
			if ghi > groups {
				ghi = groups
			}
			wg.Add(1)
			go func(glo, ghi int) {
				defer wg.Done()
				var hits, falls int64
				defer func() {
					atomic.AddInt64(&deltaHits, hits)
					atomic.AddInt64(&deltaFalls, falls)
				}()
				refPos := make([]int, len(tasks))
				posBuf := make([]int, len(tasks))
				var dv *routing.DeltaVec
				var buf []float64
				if useDelta {
					dv = routing.NewDeltaVec(m.parent.NumChannels())
				} else {
					buf = make([]float64, m.parent.NumChannels())
				}
				var snap routing.Snapshot
				for g := glo; g < ghi; g++ {
					c, o := g/numOrients, g%numOrients
					cand := m.children[child].Candidates[c]
					for i := range tasks {
						refPos[i] = m.taskParentPos(cand, m.orients[o], refCube, i)
					}
					if useDelta {
						dv.Reset()
						m.addFlowsDelta(tasks, refPos, tasks, refPos, dv, true)
						snap = dv.Snapshot()
					}
					base := g * groupSize
					for si, st := range beam {
						for qi, q := range cubesOf[si] {
							select {
							case <-m.done:
								return // unscored combos keep mcl=+Inf and are discarded
							default:
							}
							rankOff := m.originRank[q] - m.originRank[refCube]
							for i := range refPos {
								posBuf[i] = refPos[i] + rankOff
							}
							var mcl float64
							if useDelta {
								dv.Reset()
								dv.AddSnapshot(snap, rankOff*nd2)
								m.addCrossEdgesDelta(crossEdges, st, posBuf, dv)
								mcl = dv.MaxOver(st.loads, st.mcl)
								hits++
							} else {
								for k := range buf {
									buf[k] = 0
								}
								m.addFlows(tasks, posBuf, tasks, posBuf, buf, true)
								m.addCrossEdges(crossEdges, st, posBuf, buf)
								mcl = maxShifted(st.loads, buf)
								falls++
							}
							combos[base+off[si]+qi].mcl = mcl
						}
					}
				}
			}(glo, ghi)
		}
		wg.Wait()
		if err := hardCancel(m.ctx); err != nil {
			return nil, err
		}
		if expired(m.ctx) {
			// The step was cut short; its scores are partial. Discard them
			// and complete this and the remaining steps greedily.
			beam = m.completeGreedy(beam, order, step)
			degraded = true
			break
		}
		candGen += int64(len(combos))
		sort.Slice(combos, func(a, b int) bool {
			ca, cb := &combos[a], &combos[b]
			if ca.mcl < cb.mcl {
				return true
			}
			if cb.mcl < ca.mcl {
				return false
			}
			// Equal MCL: tie-break on the placement key — state choice path
			// first, then this step's packed choice — a total order
			// independent of scoring order and parallelism.
			if ca.si != cb.si {
				return lessKey(beam[ca.si].key, beam[cb.si].key)
			}
			return packChoice(int(ca.cube), int(ca.cand), int(ca.orient)) <
				packChoice(int(cb.cube), int(cb.cand), int(cb.orient))
		})
		if len(combos) > m.cfg.BeamWidth {
			combos = combos[:m.cfg.BeamWidth]
		}
		candKept += int64(len(combos))

		// Pass 2: materialize the winners. The winner's contribution is
		// re-accumulated at its actual cube position — bit-identical to the
		// translated snapshot used for scoring — and added onto the state
		// loads channel by channel, so both modes build identical vectors.
		next := make([]*state, 0, len(combos))
		var dvM *routing.DeltaVec
		var bufM []float64
		if useDelta {
			dvM = routing.NewDeltaVec(m.parent.NumChannels())
		} else {
			bufM = make([]float64, m.parent.NumChannels())
		}
		for _, sc := range combos {
			st := beam[sc.si]
			cand := m.children[child].Candidates[sc.cand]
			p := m.placementAt(child, cand, m.orients[sc.orient], int(sc.cube))
			loads := append([]float64(nil), st.loads...)
			if useDelta {
				dvM.Reset()
				m.addFlowsDelta(tasks, p, tasks, p, dvM, true)
				m.addCrossEdgesDelta(crossEdges, st, p, dvM)
				dvM.AddTo(loads)
			} else {
				for k := range bufM {
					bufM[k] = 0
				}
				m.addFlows(tasks, p, tasks, p, bufM, true)
				m.addCrossEdges(crossEdges, st, p, bufM)
				for k := range loads {
					loads[k] += bufM[k]
				}
			}
			pos := make([][]int, step+1)
			copy(pos, st.pos)
			pos[step] = p
			cube := make([]int, step+1)
			copy(cube, st.cube)
			cube[step] = int(sc.cube)
			key := make([]uint64, step+1)
			copy(key, st.key)
			key[step] = packChoice(int(sc.cube), int(sc.cand), int(sc.orient))
			next = append(next, &state{
				pos:   pos,
				cube:  cube,
				used:  st.used | 1<<uint(sc.cube),
				key:   key,
				loads: loads,
				mcl:   sc.mcl,
			})
		}
		beam = topN(next, m.cfg.BeamWidth)
		m.obs.BeamRound(m.cfg.Level, step, len(beam), beam[0].mcl)
	}

	// Assemble the merged block: tasks ascending, candidates from the beam.
	var allTasks []int
	for _, c := range m.children {
		allTasks = append(allTasks, c.Tasks...)
	}
	sort.Ints(allTasks)
	taskIdx := make(map[int]int, len(allTasks))
	for i, t := range allTasks {
		taskIdx[t] = i
	}
	parentShape := make([]int, len(m.cubeShape))
	for d := range parentShape {
		parentShape[d] = m.cubeShape[d] * m.childShape[d]
	}
	out := &Block{Tasks: allTasks, Shape: parentShape, Degraded: degraded}
	for _, st := range beam {
		local := make(topology.Mapping, len(allTasks))
		for s := 0; s < len(order); s++ {
			tasks := m.children[order[s]].Tasks
			for i, t := range tasks {
				local[taskIdx[t]] = st.pos[s][i]
			}
		}
		out.Candidates = append(out.Candidates, Candidate{Local: local, MCL: st.mcl})
	}
	return out, nil
}

// completeGreedy finishes an interrupted merge from the best surviving
// state: each remaining child (steps from..end of order) is absorbed with
// its first candidate, the identity orientation, and its pinned cube
// position (or the first free one when Reposition already took it). The
// result is a valid single-candidate beam without any further search.
func (m *merger) completeGreedy(beam []*state, order []int, from int) []*state {
	st := beam[0]
	for step := from; step < len(order); step++ {
		child := order[step]
		cube := m.childPos[child]
		if st.used&(1<<uint(cube)) != 0 {
			for p := range m.origins {
				if st.used&(1<<uint(p)) == 0 {
					cube = p
					break
				}
			}
		}
		cand := m.children[child].Candidates[0]
		p := m.placementAt(child, cand, m.orients[0], cube)
		loads := append([]float64(nil), st.loads...)
		m.applyVariant(st, order, step, child, p, loads)
		pos := make([][]int, step+1)
		copy(pos, st.pos)
		pos[step] = p
		cubes := make([]int, step+1)
		copy(cubes, st.cube)
		cubes[step] = cube
		key := make([]uint64, step+1)
		copy(key, st.key)
		key[step] = packChoice(cube, 0, 0)
		st = &state{
			pos:   pos,
			cube:  cubes,
			used:  st.used | 1<<uint(cube),
			key:   key,
			loads: loads,
			mcl:   routing.MCL(loads),
		}
	}
	return []*state{st}
}

// topN sorts states ascending by MCL — equal-MCL states ordered by their
// placement key, an explicit deterministic tie-break — and truncates.
func topN(states []*state, n int) []*state {
	sort.Slice(states, func(a, b int) bool {
		sa, sb := states[a], states[b]
		if sa.mcl < sb.mcl {
			return true
		}
		if sb.mcl < sa.mcl {
			return false
		}
		return lessKey(sa.key, sb.key)
	})
	if len(states) > n {
		states = states[:n]
	}
	return states
}
