package workload

import (
	"testing"
)

func TestTranspose(t *testing.T) {
	w := Transpose(4, 7)
	if w.Procs() != 16 {
		t.Fatalf("procs = %d", w.Procs())
	}
	// (1,2) <-> (2,1): ranks 6 and 9.
	if w.Graph.Traffic(6, 9) != 7 || w.Graph.Traffic(9, 6) != 7 {
		t.Fatal("transpose partners missing")
	}
	// Diagonal ranks are silent.
	if w.Graph.OutVolume(0) != 0 || w.Graph.OutVolume(5) != 0 {
		t.Fatal("diagonal ranks should not communicate")
	}
}

func TestSweepIsAcyclicPipeline(t *testing.T) {
	w := Sweep(3, 4, 2)
	// Corner (0,0) sends to two neighbors, receives nothing.
	if len(w.Graph.Neighbors(0)) != 2 {
		t.Fatalf("source corner neighbors = %v", w.Graph.Neighbors(0))
	}
	// Sink corner (2,3) = rank 11 sends nothing.
	if w.Graph.OutVolume(11) != 0 {
		t.Fatal("sink corner should not send")
	}
	// No wraparound.
	if w.Graph.Traffic(3, 0) != 0 {
		t.Fatal("sweep must not wrap")
	}
}

func TestSpectral(t *testing.T) {
	w, err := Spectral(4, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Each rank: log2(4)=2 row partners + 2 column partners.
	for v := 0; v < 16; v++ {
		if got := len(w.Graph.Neighbors(v)); got != 4 {
			t.Fatalf("rank %d has %d partners, want 4", v, got)
		}
	}
	if _, err := Spectral(3, 4, 1); err == nil {
		t.Fatal("non-power-of-two side should fail")
	}
}

func TestManyToOne(t *testing.T) {
	w, err := ManyToOne(16, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregators receive 3*5 each, send nothing.
	for agg := 0; agg < 16; agg += 4 {
		if w.Graph.OutVolume(agg) != 0 {
			t.Fatalf("aggregator %d sends", agg)
		}
		in := 0.0
		for v := 0; v < 16; v++ {
			in += w.Graph.Traffic(v, agg)
		}
		if in != 15 {
			t.Fatalf("aggregator %d receives %v, want 15", agg, in)
		}
	}
	if _, err := ManyToOne(10, 3, 1); err == nil {
		t.Fatal("non-dividing block should fail")
	}
}
