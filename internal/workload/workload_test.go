package workload

import (
	"testing"
)

func TestBTStructure(t *testing.T) {
	w, err := BT(16)
	if err != nil {
		t.Fatal(err)
	}
	if w.Procs() != 16 || w.Grid[0] != 4 || w.Grid[1] != 4 {
		t.Fatalf("BT(16) = procs %d grid %v", w.Procs(), w.Grid)
	}
	// Each rank has 4 face neighbors + 1 diagonal = 5 out-edges.
	for v := 0; v < 16; v++ {
		if got := len(w.Graph.Neighbors(v)); got != 5 {
			t.Fatalf("BT rank %d has %d neighbors, want 5", v, got)
		}
	}
	if w.CommFraction != 0.35 {
		t.Fatalf("BT comm fraction = %v", w.CommFraction)
	}
}

func TestSPStructure(t *testing.T) {
	w, err := SP(16)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 16; v++ {
		if got := len(w.Graph.Neighbors(v)); got != 4 {
			t.Fatalf("SP rank %d has %d neighbors, want 4", v, got)
		}
	}
	// SP per-rank volume exceeds BT's face volume (heavier exchanges).
	bt, _ := BT(16)
	if w.Graph.OutVolume(0) <= bt.Graph.OutVolume(0)-4*10 {
		t.Fatal("SP should carry heavier face traffic than BT")
	}
}

func TestCGStructure(t *testing.T) {
	w, err := CG(16)
	if err != nil {
		t.Fatal(err)
	}
	// Rank (0,1): butterfly partners (0,0),(0,3),(0,5)... within row: j^1,
	// j^2; grid side 4 -> distances 1,2 => partners j^1, j^2; plus
	// transpose partner (1,0).
	nb := w.Graph.Neighbors(1)
	if len(nb) != 3 {
		t.Fatalf("CG rank 1 neighbors = %v, want 3", nb)
	}
	// Diagonal ranks have no transpose partner.
	nb0 := w.Graph.Neighbors(0)
	if len(nb0) != 2 {
		t.Fatalf("CG rank 0 neighbors = %v, want 2 (no self transpose)", nb0)
	}
	if w.CommFraction != 0.70 {
		t.Fatalf("CG comm fraction = %v", w.CommFraction)
	}
}

func TestCGHasLongDistanceFlows(t *testing.T) {
	w, err := CG(64)
	if err != nil {
		t.Fatal(err)
	}
	// The butterfly includes distance-4 partners in an 8-wide row: rank 0
	// talks to rank 4.
	if w.Graph.Traffic(0, 4) == 0 {
		t.Fatal("CG missing long-distance butterfly partner")
	}
}

func TestWorkloadErrors(t *testing.T) {
	if _, err := BT(15); err == nil {
		t.Fatal("BT(15) should fail: not a square")
	}
	if _, err := SP(8); err == nil {
		t.Fatal("SP(8) should fail: not a square")
	}
	if _, err := CG(36); err == nil {
		t.Fatal("CG(36) should fail: side 6 not a power of two")
	}
	if _, err := ByName("LU", 16); err == nil {
		t.Fatal("unknown benchmark should fail")
	}
}

func TestByNameAndSuite(t *testing.T) {
	for _, n := range []string{"BT", "bt", "SP", "sp", "CG", "cg"} {
		if _, err := ByName(n, 16); err != nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
	}
	ws, err := Suite(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 || ws[0].Name != "BT" || ws[1].Name != "SP" || ws[2].Name != "CG" {
		t.Fatalf("Suite = %v", ws)
	}
}

func TestHalo2D(t *testing.T) {
	w := Halo2D(4, 8, 2)
	if w.Procs() != 32 {
		t.Fatalf("procs = %d", w.Procs())
	}
	// Symmetric periodic halo: each rank sends to 4 neighbors.
	for v := 0; v < 32; v++ {
		if len(w.Graph.Neighbors(v)) != 4 {
			t.Fatalf("rank %d neighbors = %v", v, w.Graph.Neighbors(v))
		}
	}
}

func TestHalo3D(t *testing.T) {
	w := Halo3D(2, 2, 4, 1)
	if w.Procs() != 16 {
		t.Fatalf("procs = %d", w.Procs())
	}
	for v := 0; v < 16; v++ {
		nb := len(w.Graph.Neighbors(v))
		// With a 2-wide dimension, +1 and -1 neighbors coincide, so ranks
		// have between 3 and 6 distinct neighbors.
		if nb < 3 || nb > 6 {
			t.Fatalf("rank %d has %d neighbors", v, nb)
		}
	}
}

func TestRandomNeighborsDeterministic(t *testing.T) {
	a := RandomNeighbors(32, 4, 1, 7)
	b := RandomNeighbors(32, 4, 1, 7)
	if !a.Graph.Equal(b.Graph, 0) {
		t.Fatal("same seed produced different graphs")
	}
	c := RandomNeighbors(32, 4, 1, 8)
	if a.Graph.Equal(c.Graph, 0) {
		t.Fatal("different seeds produced identical graphs")
	}
	if a.Grid != nil {
		t.Fatal("random workload should have no grid")
	}
}

func TestRing(t *testing.T) {
	w := Ring(8, 3)
	if w.Graph.NumEdges() != 8 {
		t.Fatalf("ring edges = %d", w.Graph.NumEdges())
	}
	if w.Graph.Traffic(7, 0) != 3 {
		t.Fatal("ring must wrap")
	}
}

func TestVolumesScaleWithProcs(t *testing.T) {
	// Total volume must grow with the process count (weak-scaling shape).
	small, _ := CG(16)
	large, _ := CG(64)
	if large.Graph.TotalVolume() <= small.Graph.TotalVolume() {
		t.Fatal("CG volume should grow with scale")
	}
}
