package workload

import (
	"fmt"

	"rahtm/internal/graph"
)

// Phase is one communication phase of a multi-phase application: a pattern
// that executes as a unit (a barrier separates phases, so their traffic
// does not overlap on the network).
type Phase struct {
	Name  string
	Graph *graph.Comm
}

// Phased is a multi-phase workload: real applications alternate distinct
// patterns (halo exchange, then transpose, then a reduction). Mapping must
// consider the union graph, but performance is governed per phase — the
// hottest link of each phase in turn, not of the summed traffic.
type Phased struct {
	Name   string
	Grid   []int
	Phases []Phase
	// CommFraction is the communication share under the default mapping.
	CommFraction float64
}

// NewPhased combines workload phases; all phases must agree on the process
// count. The grid is taken from the first phase that has one.
func NewPhased(name string, ws ...*Workload) (*Phased, error) {
	if len(ws) == 0 {
		return nil, fmt.Errorf("workload: phased workload needs at least one phase")
	}
	p := &Phased{Name: name}
	procs := ws[0].Procs()
	sumFrac := 0.0
	for _, w := range ws {
		if w.Procs() != procs {
			return nil, fmt.Errorf("workload: phase %s has %d processes, want %d", w.Name, w.Procs(), procs)
		}
		p.Phases = append(p.Phases, Phase{Name: w.Name, Graph: w.Graph.Clone()})
		if p.Grid == nil && w.Grid != nil {
			p.Grid = append([]int(nil), w.Grid...)
		}
		sumFrac += w.CommFraction
	}
	p.CommFraction = sumFrac / float64(len(ws))
	return p, nil
}

// Procs returns the process count.
func (p *Phased) Procs() int { return p.Phases[0].Graph.N() }

// Union returns the summed communication graph — the mapping input.
func (p *Phased) Union() *graph.Comm {
	g := graph.New(p.Procs())
	for _, ph := range p.Phases {
		for _, f := range ph.Graph.Flows() {
			g.AddTraffic(f.Src, f.Dst, f.Vol)
		}
	}
	return g
}

// Workload converts the phased job to a plain workload over the union
// graph, for mappers that do not understand phases.
func (p *Phased) Workload() *Workload {
	return &Workload{
		Name:         p.Name,
		Grid:         append([]int(nil), p.Grid...),
		Graph:        p.Union(),
		CommFraction: p.CommFraction,
	}
}
