package workload

import (
	"fmt"

	"rahtm/internal/graph"
)

// Transpose builds the FFT/matrix-transpose exchange on an n x n process
// grid: every rank exchanges with its transpose partner, the long-distance
// all-to-one-diagonal pattern that punishes locality-only mappers.
func Transpose(n int, vol float64) *Workload {
	g := graph.New(n * n)
	id := func(i, j int) int { return i*n + j }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				g.AddTraffic(id(i, j), id(j, i), vol)
			}
		}
	}
	return &Workload{
		Name:         fmt.Sprintf("transpose-%dx%d", n, n),
		Grid:         []int{n, n},
		Graph:        g,
		CommFraction: 0.55,
	}
}

// Sweep builds a wavefront (Sweep3D/KBA-style) pattern on an r x c grid:
// each rank forwards to its east and south neighbors only — directed,
// non-periodic, pipeline-structured traffic.
func Sweep(r, c int, vol float64) *Workload {
	g := graph.New(r * c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddTraffic(id(i, j), id(i, j+1), vol)
			}
			if i+1 < r {
				g.AddTraffic(id(i, j), id(i+1, j), vol)
			}
		}
	}
	return &Workload{
		Name:         fmt.Sprintf("sweep-%dx%d", r, c),
		Grid:         []int{r, c},
		Graph:        g,
		CommFraction: 0.30,
	}
}

// Spectral builds an FFT-like pattern: a 2-D grid performing butterfly
// exchanges along both rows and columns (the communication core of a
// pencil-decomposed 3-D FFT).
func Spectral(rows, cols int, vol float64) (*Workload, error) {
	if rows&(rows-1) != 0 || cols&(cols-1) != 0 {
		return nil, fmt.Errorf("workload: spectral grid %dx%d must have power-of-two sides", rows, cols)
	}
	g := graph.New(rows * cols)
	id := func(i, j int) int { return i*cols + j }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			for d := 1; d < cols; d *= 2 {
				g.AddTraffic(id(i, j), id(i, j^d), vol)
			}
			for d := 1; d < rows; d *= 2 {
				g.AddTraffic(id(i, j), id(i^d, j), vol)
			}
		}
	}
	return &Workload{
		Name:         fmt.Sprintf("spectral-%dx%d", rows, cols),
		Grid:         []int{rows, cols},
		Graph:        g,
		CommFraction: 0.60,
	}, nil
}

// ManyToOne builds an I/O-aggregation pattern: every rank sends vol to a
// small set of aggregator ranks (rank 0 of each block of blockSize).
func ManyToOne(procs, blockSize int, vol float64) (*Workload, error) {
	if blockSize < 1 || procs%blockSize != 0 {
		return nil, fmt.Errorf("workload: block size %d does not divide %d", blockSize, procs)
	}
	g := graph.New(procs)
	for v := 0; v < procs; v++ {
		agg := (v / blockSize) * blockSize
		if v != agg {
			g.AddTraffic(v, agg, vol)
		}
	}
	return &Workload{
		Name:         fmt.Sprintf("manytoone-%d-b%d", procs, blockSize),
		Graph:        g,
		CommFraction: 0.45,
	}, nil
}
