package workload

import (
	"math"
	"testing"
)

func TestNewPhased(t *testing.T) {
	halo := Halo2D(4, 4, 5)
	tr := Transpose(4, 10)
	p, err := NewPhased("halo+transpose", halo, tr)
	if err != nil {
		t.Fatal(err)
	}
	if p.Procs() != 16 || len(p.Phases) != 2 {
		t.Fatalf("phased = %+v", p)
	}
	if p.Grid == nil || p.Grid[0] != 4 {
		t.Fatalf("grid = %v", p.Grid)
	}
	u := p.Union()
	want := halo.Graph.TotalVolume() + tr.Graph.TotalVolume()
	if math.Abs(u.TotalVolume()-want) > 1e-9 {
		t.Fatalf("union volume = %v, want %v", u.TotalVolume(), want)
	}
	w := p.Workload()
	if w.Procs() != 16 || !w.Graph.Equal(u, 1e-12) {
		t.Fatal("Workload conversion mismatch")
	}
}

func TestNewPhasedErrors(t *testing.T) {
	if _, err := NewPhased("empty"); err == nil {
		t.Fatal("no phases should fail")
	}
	if _, err := NewPhased("mismatch", Halo2D(4, 4, 1), Halo2D(2, 4, 1)); err == nil {
		t.Fatal("process count mismatch should fail")
	}
}
