package workload

import (
	"fmt"

	"rahtm/internal/collective"
	"rahtm/internal/graph"
)

// WithCollective returns a copy of the workload with the traffic of the
// named collective (over all ranks) added — the §VI extension: collectives
// become mappable point-to-point patterns once the implementation is known.
func (w *Workload) WithCollective(op collective.Op, msg float64) (*Workload, error) {
	g := w.Graph.Clone()
	if err := collective.Add(g, op, collective.World(g.N()), msg); err != nil {
		return nil, err
	}
	return &Workload{
		Name:         fmt.Sprintf("%s+%s", w.Name, op),
		Grid:         append([]int(nil), w.Grid...),
		Graph:        g,
		CommFraction: w.CommFraction,
	}, nil
}

// WithRowCollectives adds the collective over every row of the workload's
// 2-D grid (sub-communicator collectives, as in CG's row reductions).
func (w *Workload) WithRowCollectives(op collective.Op, msg float64) (*Workload, error) {
	if len(w.Grid) != 2 {
		return nil, fmt.Errorf("workload: row collectives need a 2-D grid, have %v", w.Grid)
	}
	g := w.Graph.Clone()
	rows, cols := w.Grid[0], w.Grid[1]
	for i := 0; i < rows; i++ {
		comm := make(collective.Communicator, cols)
		for j := 0; j < cols; j++ {
			comm[j] = i*cols + j
		}
		if err := collective.Add(g, op, comm, msg); err != nil {
			return nil, err
		}
	}
	return &Workload{
		Name:         fmt.Sprintf("%s+row-%s", w.Name, op),
		Grid:         append([]int(nil), w.Grid...),
		Graph:        g,
		CommFraction: w.CommFraction,
	}, nil
}

// AllReduceJob is a data-parallel training-style workload: computation
// interleaved with global all-reduces of msg bytes, implemented either as a
// ring or with recursive doubling.
func AllReduceJob(procs int, msg float64, op collective.Op) (*Workload, error) {
	g := graph.New(procs)
	if err := collective.Add(g, op, collective.World(procs), msg); err != nil {
		return nil, err
	}
	return &Workload{
		Name:         fmt.Sprintf("allreduce-%d-%s", procs, op),
		Graph:        g,
		CommFraction: 0.50,
	}, nil
}
