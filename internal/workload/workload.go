// Package workload generates synthetic communication graphs reproducing the
// point-to-point patterns of the paper's benchmarks (NAS BT, SP, CG) and
// several generic HPC patterns (halo exchanges, butterflies, random
// neighbors).
//
// The paper profiles real MPI runs on Blue Gene/Q with IPM; this repository
// substitutes graphs built from the published communication structure of
// those benchmarks:
//
//   - BT and SP use the NAS multi-partition scheme on a sqrt(P) x sqrt(P)
//     process grid: each rank exchanges faces with its four periodic grid
//     neighbors during the x/y/z sweeps (BT also touches its diagonal
//     successors, a by-product of the multi-partition cell rotation).
//   - CG lays ranks on a num_proc_rows x num_proc_cols grid: every rank
//     exchanges with its row-mates at power-of-two distances during the
//     reduce phase (a butterfly) and with its transpose partner — the
//     long-distance pattern that makes CG so mapping-sensitive in Figures 8
//     and 10.
//
// CommFraction carries the communication share of total execution time the
// paper measured (Figure 9: CG > 70%, BT/SP ~ 35%); internal/netsim uses it
// to calibrate the computation term of the execution-time model.
package workload

import (
	"fmt"
	"math/rand"

	"rahtm/internal/graph"
)

// Workload is a benchmark communication pattern plus the metadata the
// mapping pipeline and the simulator need.
type Workload struct {
	Name string
	// Grid is the logical process grid (row-major), used by the tiling
	// clusterer and the blocked baseline mappers.
	Grid []int
	// Graph is the process-level communication graph; volumes are relative
	// bytes per iteration.
	Graph *graph.Comm
	// CommFraction is the fraction of execution time spent communicating
	// under the default mapping (Figure 9 calibration).
	CommFraction float64
}

// Procs returns the process count.
func (w *Workload) Procs() int { return w.Graph.N() }

// perfectSquare returns the integer square root when procs is a perfect
// square.
func perfectSquare(procs int) (int, error) {
	s := 1
	for s*s < procs {
		s++
	}
	if s*s != procs {
		return 0, fmt.Errorf("workload: %d is not a perfect square", procs)
	}
	return s, nil
}

// BT builds the Block Tri-diagonal solver pattern on procs ranks (a perfect
// square). Face exchanges with the four periodic neighbors dominate; the
// multi-partition diagonal shift adds lighter diagonal traffic.
func BT(procs int) (*Workload, error) {
	s, err := perfectSquare(procs)
	if err != nil {
		return nil, fmt.Errorf("BT: %w", err)
	}
	g := graph.New(procs)
	id := func(i, j int) int { return i*s + j }
	const face = 40.0 // relative face-exchange volume per iteration
	const diag = 10.0 // multi-partition diagonal successor volume
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			g.AddTraffic(id(i, j), id(i, (j+1)%s), face)
			g.AddTraffic(id(i, j), id(i, (j-1+s)%s), face)
			g.AddTraffic(id(i, j), id((i+1)%s, j), face)
			g.AddTraffic(id(i, j), id((i-1+s)%s, j), face)
			g.AddTraffic(id(i, j), id((i+1)%s, (j+1)%s), diag)
		}
	}
	return &Workload{Name: "BT", Grid: []int{s, s}, Graph: g, CommFraction: 0.35}, nil
}

// SP builds the Scalar Penta-diagonal solver pattern: the same
// multi-partition grid as BT but with heavier, more frequent boundary
// exchanges and no diagonal component.
func SP(procs int) (*Workload, error) {
	s, err := perfectSquare(procs)
	if err != nil {
		return nil, fmt.Errorf("SP: %w", err)
	}
	g := graph.New(procs)
	id := func(i, j int) int { return i*s + j }
	const face = 60.0
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			g.AddTraffic(id(i, j), id(i, (j+1)%s), face)
			g.AddTraffic(id(i, j), id(i, (j-1+s)%s), face)
			g.AddTraffic(id(i, j), id((i+1)%s, j), face)
			g.AddTraffic(id(i, j), id((i-1+s)%s, j), face)
		}
	}
	return &Workload{Name: "SP", Grid: []int{s, s}, Graph: g, CommFraction: 0.35}, nil
}

// CG builds the Conjugate Gradient pattern on procs ranks (a power of four
// works best: square grid of power-of-two sides). Row butterflies at
// power-of-two distances plus transpose-partner exchanges.
func CG(procs int) (*Workload, error) {
	s, err := perfectSquare(procs)
	if err != nil {
		return nil, fmt.Errorf("CG: %w", err)
	}
	if s&(s-1) != 0 {
		return nil, fmt.Errorf("CG: grid side %d must be a power of two", s)
	}
	g := graph.New(procs)
	id := func(i, j int) int { return i*s + j }
	const reduce = 50.0    // per-stage butterfly exchange volume
	const transpose = 80.0 // transpose-partner exchange volume
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			for d := 1; d < s; d *= 2 {
				g.AddTraffic(id(i, j), id(i, j^d), reduce)
			}
			if i != j {
				g.AddTraffic(id(i, j), id(j, i), transpose)
			}
		}
	}
	return &Workload{Name: "CG", Grid: []int{s, s}, Graph: g, CommFraction: 0.70}, nil
}

// ByName builds one of the paper's three benchmarks by name.
func ByName(name string, procs int) (*Workload, error) {
	switch name {
	case "BT", "bt":
		return BT(procs)
	case "SP", "sp":
		return SP(procs)
	case "CG", "cg":
		return CG(procs)
	}
	return nil, fmt.Errorf("workload: unknown benchmark %q (want BT, SP or CG)", name)
}

// Suite returns the paper's three benchmarks at the given scale.
func Suite(procs int) ([]*Workload, error) {
	var out []*Workload
	for _, name := range []string{"BT", "SP", "CG"} {
		w, err := ByName(name, procs)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// Halo2D builds a periodic 2-D nearest-neighbor exchange.
func Halo2D(rows, cols int, vol float64) *Workload {
	g := graph.New(rows * cols)
	id := func(i, j int) int { return i*cols + j }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			g.AddTraffic(id(i, j), id(i, (j+1)%cols), vol)
			g.AddTraffic(id(i, j), id(i, (j-1+cols)%cols), vol)
			g.AddTraffic(id(i, j), id((i+1)%rows, j), vol)
			g.AddTraffic(id(i, j), id((i-1+rows)%rows, j), vol)
		}
	}
	return &Workload{
		Name:         fmt.Sprintf("halo2d-%dx%d", rows, cols),
		Grid:         []int{rows, cols},
		Graph:        g,
		CommFraction: 0.30,
	}
}

// Halo3D builds a periodic 3-D nearest-neighbor exchange.
func Halo3D(nx, ny, nz int, vol float64) *Workload {
	g := graph.New(nx * ny * nz)
	id := func(x, y, z int) int { return (x*ny+y)*nz + z }
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			for z := 0; z < nz; z++ {
				g.AddTraffic(id(x, y, z), id((x+1)%nx, y, z), vol)
				g.AddTraffic(id(x, y, z), id((x-1+nx)%nx, y, z), vol)
				g.AddTraffic(id(x, y, z), id(x, (y+1)%ny, z), vol)
				g.AddTraffic(id(x, y, z), id(x, (y-1+ny)%ny, z), vol)
				g.AddTraffic(id(x, y, z), id(x, y, (z+1)%nz), vol)
				g.AddTraffic(id(x, y, z), id(x, y, (z-1+nz)%nz), vol)
			}
		}
	}
	return &Workload{
		Name:         fmt.Sprintf("halo3d-%dx%dx%d", nx, ny, nz),
		Grid:         []int{nx, ny, nz},
		Graph:        g,
		CommFraction: 0.30,
	}
}

// RandomNeighbors builds a graph where every rank talks to deg random
// peers — the unstructured comparison case (no grid, greedy clustering).
func RandomNeighbors(procs, deg int, vol float64, seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(procs)
	for v := 0; v < procs; v++ {
		for k := 0; k < deg; k++ {
			d := rng.Intn(procs)
			if d == v {
				continue
			}
			g.AddTraffic(v, d, vol*(0.5+rng.Float64()))
		}
	}
	return &Workload{
		Name:         fmt.Sprintf("random-%d-deg%d", procs, deg),
		Graph:        g,
		CommFraction: 0.40,
	}
}

// Ring builds a unidirectional ring exchange (pipeline pattern).
func Ring(procs int, vol float64) *Workload {
	g := graph.New(procs)
	for v := 0; v < procs; v++ {
		g.AddTraffic(v, (v+1)%procs, vol)
	}
	return &Workload{
		Name:         fmt.Sprintf("ring-%d", procs),
		Graph:        g,
		CommFraction: 0.25,
	}
}
