// Package fattree extends RAHTM's ideas to fat-tree topologies, as §VI of
// the paper sketches: "leaf-level topology partitions can be other
// structures such as trees in the case of fat-tree topology" and minimal
// routing constraints change accordingly.
//
// The model is an m-ary l-level full-bisection fat tree (a folded Clos):
// m^l hosts; the subtree at level k contains m^k hosts and owns m^k uplinks
// toward level k+1. Two routing models are provided:
//
//   - ECMP: uplink chosen uniformly at random per flow packet — the load of
//     traffic crossing a subtree boundary spreads evenly over that
//     subtree's uplinks (the fat-tree analogue of the paper's balanced
//     all-minimal-paths approximation);
//   - DModK: the deterministic destination-mod-k uplink choice common in
//     InfiniBand deployments — the routing-oblivious comparator.
//
// Because a full-bisection fat tree is completely symmetric above the leaf
// level, mapping quality depends only on how well the recursive partition
// of the task graph confines traffic within subtrees — which is exactly
// RAHTM's clustering phase with the cube-mapping phase degenerating away.
// Map implements that: recursive balanced min-cut grouping, bottom-up.
package fattree

import (
	"fmt"

	"rahtm/internal/cluster"
	"rahtm/internal/graph"
	"rahtm/internal/topology"
)

// FatTree is an m-ary l-level full-bisection fat tree.
type FatTree struct {
	arity  int
	levels int
	hosts  int
}

// New builds a fat tree with the given switch arity (>= 2) and level count
// (>= 1). Hosts = arity^levels.
func New(arity, levels int) (*FatTree, error) {
	if arity < 2 {
		return nil, fmt.Errorf("fattree: arity %d < 2", arity)
	}
	if levels < 1 {
		return nil, fmt.Errorf("fattree: levels %d < 1", levels)
	}
	hosts := 1
	for i := 0; i < levels; i++ {
		hosts *= arity
		if hosts > 1<<24 {
			return nil, fmt.Errorf("fattree: %d^%d hosts is too large", arity, levels)
		}
	}
	return &FatTree{arity: arity, levels: levels, hosts: hosts}, nil
}

// Hosts returns the host count.
func (f *FatTree) Hosts() int { return f.hosts }

// Arity returns the switch arity.
func (f *FatTree) Arity() int { return f.arity }

// Levels returns the number of tree levels.
func (f *FatTree) Levels() int { return f.levels }

// String implements fmt.Stringer.
func (f *FatTree) String() string {
	return fmt.Sprintf("fattree(%d-ary, %d levels, %d hosts)", f.arity, f.levels, f.hosts)
}

// SubtreeOf returns the index of the level-k subtree containing host h
// (level 0 = the host itself, level levels = the whole machine).
func (f *FatTree) SubtreeOf(host, level int) int {
	div := 1
	for i := 0; i < level; i++ {
		div *= f.arity
	}
	return host / div
}

// subtreeSize returns hosts per level-k subtree.
func (f *FatTree) subtreeSize(level int) int {
	s := 1
	for i := 0; i < level; i++ {
		s *= f.arity
	}
	return s
}

// numSubtrees returns the number of level-k subtrees.
func (f *FatTree) numSubtrees(level int) int { return f.hosts / f.subtreeSize(level) }

// Uplinks returns the uplink count of one level-k subtree (full bisection:
// equal to its host count). Level ranges over 0..levels-1: level 0 uplinks
// are the host-to-leaf-switch links.
func (f *FatTree) Uplinks(level int) int { return f.subtreeSize(level) }

// Routing selects the uplink load model.
type Routing int8

// Routing models.
const (
	// ECMP spreads each flow uniformly over all uplinks of every subtree
	// it crosses (the adaptive/balanced model).
	ECMP Routing = iota
	// DModK pins each flow to uplink (dst mod uplinks) at every crossed
	// subtree (the deterministic, routing-oblivious model).
	DModK
)

// String implements fmt.Stringer.
func (r Routing) String() string {
	if r == ECMP {
		return "ecmp"
	}
	return "d-mod-k"
}

// Loads computes per-uplink loads (up and down direction combined per
// link pair; up dominates symmetric traffic identically) for graph g mapped
// by m. The result is indexed by LinkID.
func (f *FatTree) Loads(g *graph.Comm, m topology.Mapping, r Routing) ([]float64, error) {
	if len(m) != g.N() {
		return nil, fmt.Errorf("fattree: mapping covers %d tasks, graph has %d", len(m), g.N())
	}
	loads := make([]float64, f.NumLinks())
	for _, fl := range g.Flows() {
		src, dst := m[fl.Src], m[fl.Dst]
		if src < 0 || src >= f.hosts || dst < 0 || dst >= f.hosts {
			return nil, fmt.Errorf("fattree: host out of range")
		}
		if src == dst {
			continue
		}
		// LCA level: the lowest level whose subtrees contain both hosts.
		lca := 1
		for f.SubtreeOf(src, lca) != f.SubtreeOf(dst, lca) {
			lca++
		}
		// The flow crosses the uplinks of src's subtree (upward) and dst's
		// subtree (downward) at every level below the LCA.
		for level := 0; level < lca; level++ {
			up := f.SubtreeOf(src, level)
			down := f.SubtreeOf(dst, level)
			n := f.Uplinks(level)
			switch r {
			case ECMP:
				share := fl.Vol / float64(n)
				for u := 0; u < n; u++ {
					loads[f.LinkID(level, up, u)] += share
					loads[f.LinkID(level, down, u)] += share
				}
			case DModK:
				u := dst % n
				loads[f.LinkID(level, up, u)] += fl.Vol
				loads[f.LinkID(level, down, u)] += fl.Vol
			}
		}
	}
	return loads, nil
}

// NumLinks returns the number of distinct (level, subtree, uplink) slots.
func (f *FatTree) NumLinks() int {
	total := 0
	for level := 0; level < f.levels; level++ {
		total += f.numSubtrees(level) * f.Uplinks(level)
	}
	return total
}

// LinkID densely indexes uplink u of level-`level` subtree s.
func (f *FatTree) LinkID(level, subtree, uplink int) int {
	base := 0
	for l := 0; l < level; l++ {
		base += f.numSubtrees(l) * f.Uplinks(l)
	}
	return base + subtree*f.Uplinks(level) + uplink
}

// MCL returns the maximum uplink load for g mapped by m under r, including
// the host links (whose loads are mapping-invariant for one-task-per-host
// mappings).
func (f *FatTree) MCL(g *graph.Comm, m topology.Mapping, r Routing) (float64, error) {
	loads, err := f.Loads(g, m, r)
	if err != nil {
		return 0, err
	}
	max := 0.0
	for _, v := range loads {
		if v > max {
			max = v
		}
	}
	return max, nil
}

// SwitchMCL returns the maximum load over switch-to-switch links only
// (levels >= 1) — the quantity mapping actually controls, since host-link
// loads are fixed by the traffic matrix.
func (f *FatTree) SwitchMCL(g *graph.Comm, m topology.Mapping, r Routing) (float64, error) {
	loads, err := f.Loads(g, m, r)
	if err != nil {
		return 0, err
	}
	max := 0.0
	for id := f.numSubtrees(0) * f.Uplinks(0); id < len(loads); id++ {
		if loads[id] > max {
			max = loads[id]
		}
	}
	return max, nil
}

// Map runs the fat-tree variant of RAHTM: recursive balanced clustering
// (heavy-edge grouping, or tile search when gridDims describe the tasks)
// assigns task groups to subtrees bottom-up, confining as much traffic as
// possible at the lowest levels. Above the leaf the full-bisection tree is
// symmetric, so no cube-mapping or rotation phase is needed — the paper's
// phases 2-3 degenerate and only phase 1 quality matters.
func (f *FatTree) Map(g *graph.Comm, gridDims []int) (topology.Mapping, error) {
	if g.N() != f.hosts {
		return nil, fmt.Errorf("fattree: %d tasks for %d hosts", g.N(), f.hosts)
	}
	if f.arity&(f.arity-1) != 0 {
		return nil, fmt.Errorf("fattree: mapping requires power-of-two arity, have %d", f.arity)
	}
	// Bottom-up: group tasks into leaf subtrees, then groups into larger
	// subtrees. The per-level digit of a task is the position of its
	// cluster within that cluster's parent; composed root-to-leaf the
	// digits form the host id.
	assign := make([]int, g.N()) // task -> current cluster id
	for i := range assign {
		assign[i] = i
	}
	cur := g.Clone()
	grids := gridDims
	perLevel := make([][]int, f.levels) // perLevel[level][task] = digit
	for level := 0; level < f.levels; level++ {
		res, err := cluster.Auto(cur, grids, f.arity)
		if err != nil {
			return nil, fmt.Errorf("fattree: level %d clustering: %w", level, err)
		}
		grids = res.GridDims
		// Position of each fine cluster within its parent group, by order
		// of appearance (deterministic).
		pos := make([]int, cur.N())
		seen := make(map[int]int, res.NumClusters)
		for v := 0; v < cur.N(); v++ {
			parent := res.Assign[v]
			pos[v] = seen[parent]
			seen[parent]++
		}
		for _, c := range seen {
			if c != f.arity {
				return nil, fmt.Errorf("fattree: level %d produced a group of %d, want %d", level, c, f.arity)
			}
		}
		taskPos := make([]int, g.N())
		for t := range taskPos {
			taskPos[t] = pos[assign[t]]
		}
		perLevel[level] = taskPos
		for t := range assign {
			assign[t] = res.Assign[assign[t]]
		}
		cur = res.Coarse
	}
	// Host id: digits from root (last level) down to leaf (first level).
	m := make(topology.Mapping, g.N())
	for t := 0; t < g.N(); t++ {
		h := 0
		for level := f.levels - 1; level >= 0; level-- {
			h = h*f.arity + perLevel[level][t]
		}
		m[t] = h
	}
	if err := m.Validate(f.hosts, true); err != nil {
		return nil, fmt.Errorf("fattree: produced invalid mapping: %w", err)
	}
	return m, nil
}
