package fattree

import (
	"math"
	"testing"

	"rahtm/internal/graph"
	"rahtm/internal/topology"
)

func TestConstruction(t *testing.T) {
	f, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f.Hosts() != 16 || f.Arity() != 4 || f.Levels() != 2 {
		t.Fatalf("%v", f)
	}
	if f.String() != "fattree(4-ary, 2 levels, 16 hosts)" {
		t.Fatalf("String = %q", f.String())
	}
	if _, err := New(1, 2); err == nil {
		t.Fatal("arity 1 should fail")
	}
	if _, err := New(2, 0); err == nil {
		t.Fatal("0 levels should fail")
	}
}

func TestSubtreeOf(t *testing.T) {
	f, _ := New(2, 3) // 8 hosts
	if f.SubtreeOf(5, 0) != 5 {
		t.Fatal("level 0 subtree is the host")
	}
	if f.SubtreeOf(5, 1) != 2 || f.SubtreeOf(5, 2) != 1 || f.SubtreeOf(5, 3) != 0 {
		t.Fatalf("subtrees of host 5: %d %d %d",
			f.SubtreeOf(5, 1), f.SubtreeOf(5, 2), f.SubtreeOf(5, 3))
	}
}

func TestLinkIDsDense(t *testing.T) {
	f, _ := New(2, 2) // 4 hosts
	seen := make(map[int]bool)
	for level := 0; level < f.Levels(); level++ {
		for s := 0; s < f.Hosts()/f.Uplinks(level); s++ {
			for u := 0; u < f.Uplinks(level); u++ {
				id := f.LinkID(level, s, u)
				if id < 0 || id >= f.NumLinks() || seen[id] {
					t.Fatalf("bad or duplicate link id %d", id)
				}
				seen[id] = true
			}
		}
	}
	if len(seen) != f.NumLinks() {
		t.Fatalf("covered %d of %d links", len(seen), f.NumLinks())
	}
}

func TestLoadsSameLeafSwitch(t *testing.T) {
	f, _ := New(2, 2)
	g := graph.New(4)
	g.AddTraffic(0, 1, 10) // hosts 0,1 share the leaf switch
	loads, err := f.Loads(g, topology.Identity(4), ECMP)
	if err != nil {
		t.Fatal(err)
	}
	// Only the two host links carry traffic.
	total := 0.0
	for _, v := range loads {
		total += v
	}
	if math.Abs(total-20) > 1e-9 {
		t.Fatalf("total load = %v, want 20 (host links only)", total)
	}
	if loads[f.LinkID(0, 0, 0)] != 10 || loads[f.LinkID(0, 1, 0)] != 10 {
		t.Fatalf("host link loads wrong: %v", loads)
	}
}

func TestLoadsCrossTree(t *testing.T) {
	f, _ := New(2, 2) // hosts 0..3; leaves {0,1},{2,3}
	g := graph.New(4)
	g.AddTraffic(0, 2, 8)
	loads, err := f.Loads(g, topology.Identity(4), ECMP)
	if err != nil {
		t.Fatal(err)
	}
	// Host links: 8 each at hosts 0 and 2. Level-1 uplinks: each leaf has
	// 2 uplinks; ECMP puts 4 on each of src-leaf's and dst-leaf's uplinks.
	if loads[f.LinkID(0, 0, 0)] != 8 || loads[f.LinkID(0, 2, 0)] != 8 {
		t.Fatalf("host links: %v", loads)
	}
	for _, leaf := range []int{0, 1} {
		for u := 0; u < 2; u++ {
			if math.Abs(loads[f.LinkID(1, leaf, u)]-4) > 1e-9 {
				t.Fatalf("leaf %d uplink %d = %v, want 4", leaf, u, loads[f.LinkID(1, leaf, u)])
			}
		}
	}
}

func TestDModKConcentrates(t *testing.T) {
	f, _ := New(2, 2)
	g := graph.New(4)
	g.AddTraffic(0, 2, 8)
	loads, err := f.Loads(g, topology.Identity(4), DModK)
	if err != nil {
		t.Fatal(err)
	}
	// dst=2, uplinks=2 at level 1 -> uplink 0 carries all 8.
	if loads[f.LinkID(1, 0, 0)] != 8 || loads[f.LinkID(1, 0, 1)] != 0 {
		t.Fatalf("d-mod-k loads: %v", loads)
	}
}

func TestECMPNeverWorseThanDModK(t *testing.T) {
	f, _ := New(2, 3)
	g := graph.New(8)
	for i := 0; i < 8; i++ {
		g.AddTraffic(i, (i+3)%8, float64(1+i))
		g.AddTraffic(i, 7-i, 2)
	}
	m := topology.Identity(8)
	ecmp, err := f.MCL(g, m, ECMP)
	if err != nil {
		t.Fatal(err)
	}
	dmodk, err := f.MCL(g, m, DModK)
	if err != nil {
		t.Fatal(err)
	}
	if ecmp > dmodk+1e-9 {
		t.Fatalf("ECMP MCL %v worse than d-mod-k %v", ecmp, dmodk)
	}
}

func TestMapConfinesCommunities(t *testing.T) {
	// Four 2-task heavy pairs with light cross traffic: the mapper must
	// put each pair under one leaf switch, zeroing their uplink load.
	f, _ := New(2, 3) // 8 hosts, leaves of 2
	g := graph.New(8)
	pairs := [][2]int{{0, 5}, {1, 4}, {2, 7}, {3, 6}}
	for _, p := range pairs {
		g.AddTraffic(p[0], p[1], 100)
		g.AddTraffic(p[1], p[0], 100)
	}
	g.AddTraffic(0, 1, 1)
	m, err := f.Map(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if f.SubtreeOf(m[p[0]], 1) != f.SubtreeOf(m[p[1]], 1) {
			t.Fatalf("heavy pair %v split across leaves (mapping %v)", p, m)
		}
	}
	// MCL should crush the identity mapping's.
	opt, err := f.SwitchMCL(g, m, ECMP)
	if err != nil {
		t.Fatal(err)
	}
	id, err := f.SwitchMCL(g, topology.Identity(8), ECMP)
	if err != nil {
		t.Fatal(err)
	}
	if opt >= id {
		t.Fatalf("mapper MCL %v not better than identity %v", opt, id)
	}
}

func TestMapGridWorkload(t *testing.T) {
	// An 4x4 halo mapped to a 4-ary 2-level tree: tiling should confine
	// tile-internal traffic.
	f, _ := New(4, 2)
	g := graph.New(16)
	id := func(i, j int) int { return i*4 + j }
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			g.AddTraffic(id(i, j), id(i, (j+1)%4), 5)
			g.AddTraffic(id(i, j), id((i+1)%4, j), 5)
		}
	}
	m, err := f.Map(g, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(16, true); err != nil {
		t.Fatal(err)
	}
}

func TestMapErrors(t *testing.T) {
	f, _ := New(2, 2)
	if _, err := f.Map(graph.New(5), nil); err == nil {
		t.Fatal("task count mismatch should fail")
	}
	f3, _ := New(3, 2)
	if _, err := f3.Map(graph.New(9), nil); err == nil {
		t.Fatal("non-power-of-two arity mapping should fail")
	}
}

func TestLoadsMappingMismatch(t *testing.T) {
	f, _ := New(2, 2)
	if _, err := f.Loads(graph.New(4), topology.Mapping{0, 1}, ECMP); err == nil {
		t.Fatal("short mapping should fail")
	}
}

func TestRoutingString(t *testing.T) {
	if ECMP.String() != "ecmp" || DModK.String() != "d-mod-k" {
		t.Fatal("routing names")
	}
}
