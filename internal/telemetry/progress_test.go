package telemetry

import (
	"sync"
	"testing"
	"time"

	"rahtm/internal/obs"
)

func TestProgressTrackerLifecycle(t *testing.T) {
	tr := NewProgressTracker()
	if p := tr.Snapshot(); p.BestLevel != -1 || p.Phase != "" {
		t.Fatalf("fresh tracker: %+v", p)
	}
	tr.PhaseStart(obs.PhaseMap)
	tr.JobsPlanned(obs.PhaseMap, 6)
	tr.Span("solve", obs.PhaseMap, 0, 1, 7, time.Now(), time.Millisecond)
	tr.SubproblemSolved(1, "anneal", 4, false)
	tr.SubproblemSolved(1, "anneal", 4, true)
	p := tr.Snapshot()
	if p.Phase != obs.PhaseMap || p.PhaseDone {
		t.Fatalf("phase: %+v", p)
	}
	if p.MapJobsPlanned != 6 || p.MapJobsDone != 1 || p.Subproblems != 2 {
		t.Fatalf("map counters: %+v", p)
	}
	tr.PhaseEnd(obs.PhaseMap, time.Second)
	tr.PhaseStart(obs.PhaseMerge)
	tr.JobsPlanned(obs.PhaseMerge, 3)
	tr.Span("merge", obs.PhaseMerge, 1, 1, 0, time.Now(), time.Millisecond)
	tr.BeamRound(1, 0, 8, 12.5)
	tr.BeamRound(0, 0, 8, 9.25) // shallower level wins
	tr.BeamRound(1, 1, 8, 1.0)  // deeper level must not override
	p = tr.Snapshot()
	if p.MergeJobsPlanned != 3 || p.MergeJobsDone != 1 {
		t.Fatalf("merge counters: %+v", p)
	}
	if p.BestLevel != 0 || p.BestMCL != 9.25 {
		t.Fatalf("best MCL: %+v", p)
	}
	tr.PhaseEnd(obs.PhaseMerge, time.Second)
	if p = tr.Snapshot(); !p.PhaseDone || p.Phase != obs.PhaseMerge {
		t.Fatalf("final phase state: %+v", p)
	}
}

func TestProgressTrackerConcurrent(t *testing.T) {
	tr := NewProgressTracker()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Span("solve", obs.PhaseMap, g, 0, 0, time.Now(), 0)
				tr.SubproblemSolved(0, "anneal", 1, false)
				tr.BeamRound(g%3, i, 8, float64(i+1))
				tr.JobsPlanned(obs.PhaseMerge, 1)
			}
		}(g)
	}
	wg.Wait()
	p := tr.Snapshot()
	if p.MapJobsDone != 800 || p.Subproblems != 800 || p.MergeJobsPlanned != 800 {
		t.Fatalf("lost events: %+v", p)
	}
}
