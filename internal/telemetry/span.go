package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"rahtm/internal/obs"
)

// Span is one timed unit of pipeline work on the recorder's timeline.
// Start is the offset from the recorder's epoch (its creation time), so
// exported timelines are self-contained and stable.
type Span struct {
	// Name is the span kind: "solve", "merge", "prepare", "leaves",
	// "fanout" for scheduler jobs, or "phase" for whole-phase envelopes.
	Name string `json:"name"`
	// Phase is the pipeline phase the work belongs to (obs.PhaseCluster,
	// obs.PhaseMap, obs.PhaseMerge).
	Phase string `json:"phase"`
	// Worker is the scheduler worker index that ran the job; -1 marks the
	// coordinating goroutine (phase envelopes, fan-outs, preparation).
	Worker int `json:"worker"`
	// Level is the hierarchy depth of the job, -1 when not applicable.
	Level int `json:"level"`
	// Hash is the structural fingerprint of the subproblem (sibling-group
	// key), 0 when not applicable.
	Hash uint64 `json:"hash,omitempty"`
	// TraceID is the request identity the span belongs to, "" for spans
	// recorded outside a request scope (CLI runs).
	TraceID string `json:"trace,omitempty"`
	// Start is the offset from the recorder epoch.
	Start time.Duration `json:"start_ns"`
	// Dur is the span's wall-clock duration.
	Dur time.Duration `json:"dur_ns"`
}

// End returns Start + Dur.
func (s Span) End() time.Duration { return s.Start + s.Dur }

// Recorder collects pipeline spans. It implements obs.Observer (phase
// boundaries become "phase" envelope spans) plus the obs.SpanObserver
// extension (per-job spans from the level-wise scheduler), and is safe for
// concurrent use — attach it to a pipeline via obs.Tee alongside logging
// and progress observers.
type Recorder struct {
	obs.Nop
	mu      sync.Mutex
	epoch   time.Time
	spans   []Span
	opened  map[string]time.Time // phase -> PhaseStart time
	traceID string
}

// NewRecorder returns an empty recorder whose epoch (timeline zero) is now.
func NewRecorder() *Recorder {
	return &Recorder{epoch: time.Now(), opened: map[string]time.Time{}}
}

// SetTraceID stamps id on every span recorded from now on. The serving
// layer sets it right after construction so a request recorder's whole
// timeline carries the request's identity.
func (r *Recorder) SetTraceID(id string) {
	r.mu.Lock()
	r.traceID = id
	r.mu.Unlock()
}

// TraceID returns the stamp set by SetTraceID ("" by default).
func (r *Recorder) TraceID() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.traceID
}

// PhaseStart implements obs.Observer.
func (r *Recorder) PhaseStart(phase string) {
	r.mu.Lock()
	r.opened[phase] = time.Now()
	r.mu.Unlock()
}

// PhaseEnd implements obs.Observer: the completed phase becomes a "phase"
// envelope span.
func (r *Recorder) PhaseEnd(phase string, elapsed time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	start, ok := r.opened[phase]
	if !ok {
		start = time.Now().Add(-elapsed)
	}
	delete(r.opened, phase)
	r.spans = append(r.spans, Span{
		Name:    "phase",
		Phase:   phase,
		Worker:  -1,
		Level:   -1,
		TraceID: r.traceID,
		Start:   start.Sub(r.epoch),
		Dur:     elapsed,
	})
}

// Span implements obs.SpanObserver.
func (r *Recorder) Span(name, phase string, worker, level int, hash uint64, start time.Time, elapsed time.Duration) {
	sp := Span{
		Name:   name,
		Phase:  phase,
		Worker: worker,
		Level:  level,
		Hash:   hash,
		Start:  start.Sub(r.epoch),
		Dur:    elapsed,
	}
	r.mu.Lock()
	sp.TraceID = r.traceID
	r.spans = append(r.spans, sp)
	r.mu.Unlock()
}

// Len returns the number of recorded spans.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Spans returns a copy of the recorded spans, sorted by start offset.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	out := append([]Span(nil), r.spans...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// PhaseSpan returns the envelope span of the given phase, if recorded. With
// multiple pipeline runs on one recorder the last envelope wins.
func (r *Recorder) PhaseSpan(phase string) (Span, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.spans) - 1; i >= 0; i-- {
		if r.spans[i].Name == "phase" && r.spans[i].Phase == phase {
			return r.spans[i], true
		}
	}
	return Span{}, false
}

// PhaseCoverage returns the fraction of the phase envelope's wall time
// covered by the union of the phase's job spans (across all workers): 1.0
// means the timeline accounts for every moment of the phase, lower values
// expose untimed coordinator work or idle gaps. Returns 0 when the phase
// was not recorded or has zero duration.
func (r *Recorder) PhaseCoverage(phase string) float64 {
	env, ok := r.PhaseSpan(phase)
	if !ok || env.Dur <= 0 {
		return 0
	}
	type iv struct{ lo, hi time.Duration }
	var ivs []iv
	r.mu.Lock()
	for _, s := range r.spans {
		if s.Name == "phase" || s.Phase != phase {
			continue
		}
		lo, hi := s.Start, s.End()
		if lo < env.Start {
			lo = env.Start
		}
		if hi > env.End() {
			hi = env.End()
		}
		if hi > lo {
			ivs = append(ivs, iv{lo, hi})
		}
	}
	r.mu.Unlock()
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	var covered, hi time.Duration
	lo := ivs[0].lo
	hi = ivs[0].hi
	for _, v := range ivs[1:] {
		if v.lo > hi {
			covered += hi - lo
			lo, hi = v.lo, v.hi
			continue
		}
		if v.hi > hi {
			hi = v.hi
		}
	}
	covered += hi - lo
	return float64(covered) / float64(env.Dur)
}

// WriteJSONL writes one JSON object per span (sorted by start offset) —
// the format downstream analysis scripts consume.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range r.Spans() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one Chrome trace-event (the Perfetto/chrome://tracing
// JSON format). Durations and timestamps are microseconds.
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`
	Dur  float64                `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// WriteChromeTrace writes the spans as a Chrome trace-event file: load it
// in Perfetto (ui.perfetto.dev) or chrome://tracing to see the parallel
// worker timeline and idle gaps. Workers map to threads; the coordinating
// goroutine (phase envelopes, preparation, fan-out) is thread 0.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	spans := r.Spans()
	const pid = 1
	tidOf := func(worker int) int { return worker + 1 } // coordinator -1 -> 0
	events := []chromeEvent{{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]interface{}{"name": "rahtm pipeline"},
	}}
	threads := map[int]bool{}
	for _, s := range spans {
		threads[tidOf(s.Worker)] = true
	}
	tids := make([]int, 0, len(threads))
	for tid := range threads {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		name := fmt.Sprintf("worker %d", tid-1)
		if tid == 0 {
			name = "coordinator"
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]interface{}{"name": name},
		})
	}
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  s.Phase,
			Ph:   "X",
			Ts:   float64(s.Start) / float64(time.Microsecond),
			Dur:  float64(s.Dur) / float64(time.Microsecond),
			Pid:  pid,
			Tid:  tidOf(s.Worker),
			Args: map[string]interface{}{"phase": s.Phase},
		}
		if s.Level >= 0 {
			ev.Args["level"] = s.Level
			ev.Name = fmt.Sprintf("%s L%d", s.Name, s.Level)
		}
		if s.Hash != 0 {
			ev.Args["hash"] = fmt.Sprintf("%#x", s.Hash)
		}
		events = append(events, ev)
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events}); err != nil {
		return err
	}
	return bw.Flush()
}
