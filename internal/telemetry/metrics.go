// Package telemetry is the observability layer of the RAHTM pipeline: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms), a span recorder exporting worker timelines as JSONL and
// Chrome trace-event files, a live-progress tracker, an expvar HTTP
// endpoint, and an end-of-run report table.
//
// The package sits below every pipeline layer (it depends only on the
// standard library and internal/obs), so the hot paths — the routing
// stencil cache, the level-wise scheduler, the LP/MILP solvers, annealing
// and the beam merger — instrument themselves against the process-wide
// Default registry. Instrumentation is always on; its budget is <= 2% of
// pipeline wall time with a Nop observer (see BenchmarkPipelineTelemetry
// and DESIGN.md §8), achieved by batching hot-loop counts locally and by
// striping the counters the routing evaluator updates per flow.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Well-known metric names. Instrumented packages register these against the
// Default registry; the report table and the bench JSON reader look them up
// by the same constants.
const (
	// graph: communication-graph construction and CSR compilation.
	CtrGraphBuild  = "graph.build"  // Comm instances created (builders and derived results)
	CtrGraphFreeze = "graph.freeze" // CSR compilations (Freeze calls and frozen derived results)

	// routing: displacement-stencil cache of the minimal-adaptive evaluator.
	CtrStencilHits      = "routing.stencil.hits"
	CtrStencilMisses    = "routing.stencil.misses"
	CtrStencilBuilds    = "routing.stencil.builds"
	CtrStencilEvictions = "routing.stencil.evictions"

	// core: level-wise scheduler sibling-reuse caches.
	CtrSubproblems    = "core.subproblems"
	CtrSubproblemHits = "core.subproblems.reused"
	CtrMerges         = "core.merges"
	CtrMergeHits      = "core.merges.reused"

	// lp / milp: solver effort.
	CtrLPSolves   = "lp.solves"
	CtrLPPivots   = "lp.pivots"
	CtrMILPSolves = "milp.solves"
	CtrMILPNodes  = "milp.nodes"

	// hiermap: simulated annealing acceptance.
	CtrAnnealMoves    = "anneal.moves"
	CtrAnnealAccepted = "anneal.accepted"
	CtrAnnealRestarts = "anneal.restarts"

	// merge: Phase 3 beam search.
	CtrBeamCandidates = "merge.beam.candidates"
	CtrBeamKept       = "merge.beam.kept"
	CtrSymmetryEvals  = "merge.symmetry.evals"
	CtrDeltaHits      = "merge.delta.hits"      // combos scored by the sparse delta evaluator
	CtrDeltaFallbacks = "merge.delta.fallbacks" // combos scored by dense exact recompute

	// trace: communication-profile ingestion.
	CtrTraceP2P   = "trace.p2p.records"
	CtrTraceColls = "trace.collectives.expanded"

	// serve: the mapping-as-a-service daemon (internal/serve).
	CtrServeRequests     = "serve.requests"
	CtrServeCacheHits    = "serve.cache.hits"
	CtrServeCacheMisses  = "serve.cache.misses"
	CtrServeRejected     = "serve.rejected" // admission-control 429s
	CtrServeDegraded     = "serve.degraded" // deadline-degraded completions
	CtrServeErrors       = "serve.errors"   // failed solves
	HistServeQueueWait   = "serve.queue.wait_ms"
	HistServeLatency     = "serve.latency_ms"
	GaugeServeQueueDepth = "serve.queue.depth"
	GaugeServeInflight   = "serve.inflight"
)

// ServeLatencyBounds are the millisecond bucket bounds of the daemon's
// queue-wait and request-latency histograms.
var ServeLatencyBounds = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

// stripes is the cell count of a striped Counter. Local handles are dealt
// round-robin, so with up to this many concurrent writers each updates its
// own cache line.
const stripes = 8

// cell is one padded counter stripe. The padding keeps neighboring stripes
// on distinct cache lines so concurrent writers do not false-share.
type cell struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a monotonic (or at least sum-semantics) int64 metric, striped
// across padded cells so concurrent writers do not contend. The zero value
// is ready to use. Hot loops that increment from worker goroutines should
// claim a Local handle once and update through it.
type Counter struct {
	cells [stripes]cell
	next  atomic.Uint32
}

// Add adds delta through the default stripe.
func (c *Counter) Add(delta int64) { c.cells[0].n.Add(delta) }

// Inc adds one through the default stripe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the sum across all stripes.
func (c *Counter) Value() int64 {
	var sum int64
	for i := range c.cells {
		sum += c.cells[i].n.Load()
	}
	return sum
}

// Local claims a stripe (round-robin) and returns a handle that adds to it
// without contending with other handles. Handles are cheap; claim one per
// long-lived worker or pooled scratch object, not per operation.
func (c *Counter) Local() *LocalCounter {
	i := (c.next.Add(1) - 1) % stripes
	return &LocalCounter{cell: &c.cells[i]}
}

// LocalCounter is a striped handle of a Counter; see Counter.Local.
type LocalCounter struct {
	cell *cell
}

// Add adds delta to the handle's stripe.
func (l *LocalCounter) Add(delta int64) { l.cell.n.Add(delta) }

// Inc adds one to the handle's stripe.
func (l *LocalCounter) Inc() { l.Add(1) }

// Gauge is a float64 metric that holds the latest set value (worker counts,
// temperatures, best-so-far objectives). The zero value is ready to use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta to the stored value (compare-and-swap loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution metric. Bounds are the ascending
// upper bounds of the first len(bounds) buckets; one final bucket catches
// everything above the last bound. Observe is safe for concurrent use.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64
	sum    Gauge
	n      atomic.Int64
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds (at least one).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = []float64{math.Inf(1)}
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("telemetry: histogram bounds must ascend")
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// snapshot captures the histogram state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.n.Load(),
		Sum:     h.sum.Value(),
		Bounds:  append([]float64(nil), h.bounds...),
		Buckets: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is the point-in-time view of one histogram.
// Buckets[i] counts samples <= Bounds[i]; the final bucket counts the rest.
type HistogramSnapshot struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
}

// Registry is a concurrency-safe, get-or-create collection of named
// metrics. The zero value is not usable; construct with NewRegistry or use
// the process-wide Default.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// Default is the process-wide registry every built-in instrumentation point
// reports to.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the counter registered under name, creating it on first
// use. The same name always yields the same *Counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bounds on first use. An existing histogram keeps its original
// bounds (first registration wins).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot returns a consistent-enough point-in-time view of every metric.
// Counters that have never been touched report their zero value; names the
// registry has never seen are absent.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Snapshot is the point-in-time view of a Registry, JSON-encodable as-is.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Counter returns the snapshotted value of a counter, zero when absent.
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Sub returns a snapshot whose counters are the difference s - prev
// (gauges and histograms keep s's values): the per-run delta of cumulative
// process-wide counters. Counters present only in prev appear as negative
// deltas rather than vanishing, and the gauge/histogram maps are copied, so
// mutating the result never reaches back into s.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range prev.Counters {
		if _, ok := s.Counters[name]; !ok {
			out.Counters[name] = -v
		}
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		h.Bounds = append([]float64(nil), h.Bounds...)
		h.Buckets = append([]int64(nil), h.Buckets...)
		out.Histograms[name] = h
	}
	return out
}

// Sanitized returns a copy of s with non-finite gauge values and histogram
// sums replaced by zero. encoding/json refuses NaN and the infinities
// outright, so every snapshot that lands in a JSON payload (the /metrics
// endpoint, bench reports) passes through here first.
func (s Snapshot) Sanitized() Snapshot {
	out := Snapshot{
		Counters:   s.Counters,
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Gauges {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		if math.IsNaN(h.Sum) || math.IsInf(h.Sum, 0) {
			h.Sum = 0
		}
		out.Histograms[name] = h
	}
	return out
}

// Rate returns hit/(hit+miss) as a fraction in [0,1], or NaN when the
// denominator is zero.
func Rate(hit, miss int64) float64 {
	if hit+miss == 0 {
		return math.NaN()
	}
	return float64(hit) / float64(hit+miss)
}

// JSONRate is Rate for JSON payloads: a zero denominator yields nil (which
// encodes as null) instead of NaN, which encoding/json refuses to encode.
func JSONRate(hit, miss int64) *float64 {
	if hit+miss == 0 {
		return nil
	}
	v := float64(hit) / float64(hit+miss)
	return &v
}
