package telemetry

import (
	"math"
	"sync"
	"time"

	"rahtm/internal/obs"
)

// Progress is a point-in-time view of a running pipeline, JSON-encodable
// as-is; the live endpoint serves it next to the metrics snapshot.
type Progress struct {
	// Phase is the pipeline phase currently running ("" before the first
	// PhaseStart; the last completed phase keeps the name with Done set).
	Phase string `json:"phase"`
	// PhaseDone reports that Phase has completed and the next one has not
	// started yet.
	PhaseDone bool `json:"phase_done,omitempty"`
	// MapJobsPlanned / MapJobsDone count Phase 2 scheduler jobs
	// (representative subproblem solves after sibling grouping).
	MapJobsPlanned int `json:"map_jobs_planned"`
	MapJobsDone    int `json:"map_jobs_done"`
	// MergeJobsPlanned / MergeJobsDone count Phase 3 scheduler jobs.
	MergeJobsPlanned int `json:"merge_jobs_planned"`
	MergeJobsDone    int `json:"merge_jobs_done"`
	// Subproblems counts committed Phase 2 results including sibling-reuse
	// copies — the done/total a user compares against PhaseStats.
	Subproblems int `json:"subproblems"`
	// BestMCL is the best maximum channel load reported so far at the
	// shallowest hierarchy level reached; BestLevel is that level (-1 until
	// the first beam round reports, in which case BestMCL is 0).
	BestMCL   float64 `json:"best_mcl"`
	BestLevel int     `json:"best_level"`
}

// ProgressTracker derives a live Progress view from pipeline observer
// events. It implements obs.Observer plus the SpanObserver and
// ProgressObserver extensions, and is safe for concurrent use — attach it
// via obs.Tee and poll Snapshot from the serving goroutine.
type ProgressTracker struct {
	obs.Nop
	mu sync.Mutex
	p  Progress
}

// NewProgressTracker returns a tracker with no progress yet.
func NewProgressTracker() *ProgressTracker {
	return &ProgressTracker{p: Progress{BestLevel: -1}}
}

// Snapshot returns the current progress view.
func (t *ProgressTracker) Snapshot() Progress {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.p
}

// PhaseStart implements obs.Observer.
func (t *ProgressTracker) PhaseStart(phase string) {
	t.mu.Lock()
	t.p.Phase = phase
	t.p.PhaseDone = false
	t.mu.Unlock()
}

// PhaseEnd implements obs.Observer.
func (t *ProgressTracker) PhaseEnd(phase string, elapsed time.Duration) {
	t.mu.Lock()
	if t.p.Phase == phase {
		t.p.PhaseDone = true
	}
	t.mu.Unlock()
}

// SubproblemSolved implements obs.Observer: counts committed Phase 2
// results, sibling-reuse copies included.
func (t *ProgressTracker) SubproblemSolved(level int, method string, mcl float64, cached bool) {
	t.mu.Lock()
	t.p.Subproblems++
	t.mu.Unlock()
}

// BeamRound implements obs.Observer: the shallowest level's best MCL is the
// pipeline's best-so-far (level 0 is the root merge).
func (t *ProgressTracker) BeamRound(level, step, candidates int, bestMCL float64) {
	if math.IsNaN(bestMCL) || math.IsInf(bestMCL, 0) {
		return
	}
	t.mu.Lock()
	if t.p.BestLevel < 0 || level <= t.p.BestLevel {
		t.p.BestLevel = level
		t.p.BestMCL = bestMCL
	}
	t.mu.Unlock()
}

// JobsPlanned implements obs.ProgressObserver.
func (t *ProgressTracker) JobsPlanned(phase string, n int) {
	t.mu.Lock()
	switch phase {
	case obs.PhaseMap:
		t.p.MapJobsPlanned += n
	case obs.PhaseMerge:
		t.p.MergeJobsPlanned += n
	}
	t.mu.Unlock()
}

// Span implements obs.SpanObserver: completed solve/merge scheduler jobs
// advance the done counters.
func (t *ProgressTracker) Span(name, phase string, worker, level int, hash uint64, start time.Time, elapsed time.Duration) {
	switch name {
	case "solve":
		t.mu.Lock()
		t.p.MapJobsDone++
		t.mu.Unlock()
	case "merge":
		t.mu.Lock()
		t.p.MergeJobsDone++
		t.mu.Unlock()
	}
}
