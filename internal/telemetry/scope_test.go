package telemetry

import (
	"context"
	"regexp"
	"sync"
	"testing"
)

func TestNewTraceIDFormat(t *testing.T) {
	re := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if !re.MatchString(id) {
			t.Fatalf("trace ID %q is not 16 lowercase hex chars", id)
		}
		if seen[id] {
			t.Fatalf("trace ID %q repeated", id)
		}
		seen[id] = true
	}
}

func TestScopeContextRoundTrip(t *testing.T) {
	if got := ScopeFrom(context.Background()); got != nil {
		t.Fatalf("bare context carries scope %v", got)
	}
	s := NewScope("abc")
	if s.TraceID != "abc" {
		t.Fatalf("TraceID = %q, want abc", s.TraceID)
	}
	ctx := WithScope(context.Background(), s)
	if got := ScopeFrom(ctx); got != s {
		t.Fatalf("ScopeFrom returned %v, want %v", got, s)
	}
	if got := WithScope(ctx, nil); got != ctx {
		t.Fatal("WithScope(nil) should return ctx unchanged")
	}
	if NewScope("").TraceID == "" {
		t.Fatal("empty trace ID not replaced with a random one")
	}
}

func TestCounterOrRouting(t *testing.T) {
	fallback := NewRegistry().Counter("x")
	var nilScope *Scope
	if got := nilScope.CounterOr("x", fallback); got != fallback {
		t.Fatal("nil scope must route to the fallback counter")
	}
	s := NewScope("t")
	c := s.CounterOr("x", fallback)
	if c == fallback {
		t.Fatal("scoped CounterOr returned the fallback")
	}
	c.Add(5)
	if fallback.Value() != 0 {
		t.Fatal("scoped add leaked into the fallback counter")
	}
	if got := s.Reg.Counter("x").Value(); got != 5 {
		t.Fatalf("scope registry holds %d, want 5", got)
	}
}

func TestRegistryMerge(t *testing.T) {
	dst := NewRegistry()
	dst.Counter("a").Add(1)
	dst.Gauge("g").Set(1)
	dst.Histogram("h", []float64{1, 10}).Observe(0.5)

	src := NewRegistry()
	src.Counter("a").Add(2)
	src.Counter("b").Add(3)
	src.Gauge("g").Set(7)
	src.Histogram("h", []float64{1, 10}).Observe(5)

	dst.Merge(src.Snapshot())
	snap := dst.Snapshot()
	if snap.Counters["a"] != 3 || snap.Counters["b"] != 3 {
		t.Fatalf("merged counters = %v, want a=3 b=3", snap.Counters)
	}
	if snap.Gauges["g"] != 7 {
		t.Fatalf("merged gauge = %v, want 7", snap.Gauges["g"])
	}
	h := snap.Histograms["h"]
	if h.Count != 2 || h.Sum != 5.5 {
		t.Fatalf("merged histogram count=%d sum=%v, want 2 and 5.5", h.Count, h.Sum)
	}
}

func TestScopeConcurrentPartition(t *testing.T) {
	// Two scopes hammered from many goroutines stay fully partitioned.
	a, b := NewScope("a"), NewScope("b")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		s := a
		if i%2 == 1 {
			s = b
		}
		wg.Add(1)
		go func(s *Scope) {
			defer wg.Done()
			c := s.Counter("n")
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}(s)
	}
	wg.Wait()
	if got := a.Reg.Counter("n").Value(); got != 4000 {
		t.Fatalf("scope a counted %d, want 4000", got)
	}
	if got := b.Reg.Counter("n").Value(); got != 4000 {
		t.Fatalf("scope b counted %d, want 4000", got)
	}
}

func TestSubKeepsPrevOnlyCounters(t *testing.T) {
	prev := Snapshot{Counters: map[string]int64{"gone": 4, "both": 1}}
	cur := Snapshot{Counters: map[string]int64{"both": 5, "new": 2}}
	d := cur.Sub(prev)
	if d.Counters["both"] != 4 || d.Counters["new"] != 2 {
		t.Fatalf("delta = %v, want both=4 new=2", d.Counters)
	}
	if d.Counters["gone"] != -4 {
		t.Fatalf("prev-only counter dropped: delta = %v, want gone=-4", d.Counters)
	}
}

func TestSubDoesNotAliasMaps(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("g").Set(1)
	reg.Histogram("h", []float64{1}).Observe(0.5)
	cur := reg.Snapshot()
	d := cur.Sub(Snapshot{})
	d.Gauges["g"] = 99
	d.Histograms["h"].Buckets[0] = 99
	if cur.Gauges["g"] == 99 {
		t.Fatal("Sub aliased the gauge map")
	}
	if cur.Histograms["h"].Buckets[0] == 99 {
		t.Fatal("Sub aliased the histogram buckets")
	}
}
