package telemetry

import (
	"math"
	"strings"
	"testing"
)

// populated builds a registry exercising every metric kind.
func populated() *Registry {
	reg := NewRegistry()
	reg.Counter("stencil.hits").Add(42)
	reg.Counter("lp.pivots").Add(7)
	reg.Gauge("serve.queue.depth").Set(3)
	h := reg.Histogram("serve.latency.ms", []float64{1, 10, 100})
	h.Observe(0.5)
	h.Observe(50)
	h.Observe(5000)
	return reg
}

func TestWritePrometheusRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := WritePrometheus(&sb, populated().Snapshot()); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := sb.String()
	fams, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	counter := fams["rahtm_stencil_hits_total"]
	if counter == nil || counter.Type != "counter" {
		t.Fatalf("counter family missing or mistyped: %+v", counter)
	}
	if len(counter.Samples) != 1 || counter.Samples[0].Value != 42 {
		t.Fatalf("counter samples = %+v, want one sample of 42", counter.Samples)
	}
	gauge := fams["rahtm_serve_queue_depth"]
	if gauge == nil || gauge.Type != "gauge" || gauge.Samples[0].Value != 3 {
		t.Fatalf("gauge family wrong: %+v", gauge)
	}
	hist := fams["rahtm_serve_latency_ms"]
	if hist == nil || hist.Type != "histogram" {
		t.Fatalf("histogram family missing: %+v", hist)
	}
	// Cumulative buckets: le=1 -> 1, le=10 -> 1, le=100 -> 2, +Inf -> 3.
	want := map[string]float64{"1": 1, "10": 1, "100": 2, "+Inf": 3}
	var count, sum float64
	for _, s := range hist.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le := s.Labels["le"]
			if s.Value != want[le] {
				t.Errorf("bucket le=%s = %v, want %v", le, s.Value, want[le])
			}
		case strings.HasSuffix(s.Name, "_count"):
			count = s.Value
		case strings.HasSuffix(s.Name, "_sum"):
			sum = s.Value
		}
	}
	if count != 3 || sum != 5050.5 {
		t.Fatalf("count=%v sum=%v, want 3 and 5050.5", count, sum)
	}
}

func TestWritePrometheusNonFinite(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("bad").Set(math.NaN())
	reg.Gauge("inf").Set(math.Inf(1))
	var sb strings.Builder
	if err := WritePrometheus(&sb, reg.Snapshot()); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	// The text format has spellings for non-finite values; the document
	// must still parse.
	if _, err := ParsePrometheus(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("non-finite gauges break the exposition: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "NaN") || !strings.Contains(sb.String(), "+Inf") {
		t.Fatalf("non-finite spellings missing:\n%s", sb.String())
	}
}

func TestParsePrometheusRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad name":           "9metric 1\n",
		"bad label name":     `m{9l="x"} 1` + "\n",
		"bad value":          "m one\n",
		"missing value":      "m\n",
		"duplicate TYPE":     "# TYPE m counter\n# TYPE m counter\nm_total 1\n",
		"unknown type":       "# TYPE m widget\nm 1\n",
		"unterminated label": `m{l="x} 1` + "\n",
		"histogram missing +Inf": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\nh_sum 1\nh_count 1\n",
		"histogram non-cumulative": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 3\n",
		"histogram count mismatch": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 4\n",
	}
	for name, doc := range cases {
		if _, err := ParsePrometheus(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: parser accepted malformed document:\n%s", name, doc)
		}
	}
}

func TestParsePrometheusAcceptsLabels(t *testing.T) {
	doc := "# HELP m a metric\n# TYPE m counter\n" +
		`m_total{path="/solve",code="200"} 12` + "\n"
	fams, err := ParsePrometheus(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("labeled sample rejected: %v", err)
	}
	s := fams["m_total"].Samples[0]
	if s.Labels["path"] != "/solve" || s.Labels["code"] != "200" || s.Value != 12 {
		t.Fatalf("sample = %+v", s)
	}
}
