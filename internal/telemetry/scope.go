package telemetry

// Request-scoped metric attribution.
//
// The process-wide Default registry answers "what has this process done";
// once the daemon solves several requests concurrently it cannot answer
// "which request did it". A Scope is one request's private slice of the
// same metric space: a trace ID plus a throwaway Registry that the
// pipeline's batched flush sites route into (via CounterOr) when the solve
// context carries a scope. The hot paths keep their batching — a scope adds
// one pointer test per flush site, never per-iteration work — so the <= 2%
// telemetry budget of DESIGN.md §8 holds with attribution enabled (see
// BenchmarkPipelineTelemetry's scoped variant).
//
// Scoped counts bypass the process-wide registry while the solve runs;
// rahtm.Solve folds the request's delta into Default at request end
// (Registry.Merge), so process totals are unchanged whether or not a scope
// is attached — each count lands exactly once.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// Scope is one request's telemetry identity: a trace ID and a private
// registry collecting that request's share of the pipeline counters. All
// methods are safe on a nil *Scope, so flush sites can route through
// CounterOr unconditionally.
type Scope struct {
	// TraceID identifies the request end to end; it is stamped on spans,
	// response headers and structured log lines.
	TraceID string
	// Reg is the request-local registry. Counters the pipeline tees here
	// are merged into Default when the solve finishes.
	Reg *Registry
}

// NewScope returns a scope with its own empty registry. An empty traceID
// gets a fresh random one.
func NewScope(traceID string) *Scope {
	if traceID == "" {
		traceID = NewTraceID()
	}
	return &Scope{TraceID: traceID, Reg: NewRegistry()}
}

// scopeKey is the context key carrying a *Scope.
type scopeKey struct{}

// WithScope returns a context carrying s; the pipeline's Ctx entry points
// pick it up with ScopeFrom. A nil scope returns ctx unchanged.
func WithScope(ctx context.Context, s *Scope) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, scopeKey{}, s)
}

// ScopeFrom returns the scope carried by ctx, or nil. Call it once per
// solve/merge/level — not in hot loops — and route flushes through the
// result's nil-safe methods.
func ScopeFrom(ctx context.Context) *Scope {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(scopeKey{}).(*Scope)
	return s
}

// TraceIDFrom returns the trace ID carried by ctx's scope, or "".
func TraceIDFrom(ctx context.Context) string {
	if s := ScopeFrom(ctx); s != nil {
		return s.TraceID
	}
	return ""
}

// Counter returns the scope's counter for name, or nil when s is nil.
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.Reg.Counter(name)
}

// CounterOr returns the scope's counter for name, or fallback when s is
// nil. Batched flush sites call it once per flush to pick between the
// request-local registry and their process-wide handle.
func (s *Scope) CounterOr(name string, fallback *Counter) *Counter {
	if s == nil {
		return fallback
	}
	return s.Reg.Counter(name)
}

// Snapshot returns the scope registry's snapshot (zero when s is nil).
func (s *Scope) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	return s.Reg.Snapshot()
}

// NewTraceID returns a fresh 16-hex-character request identifier drawn from
// crypto/rand (the math/rand globals are banned repo-wide; see the
// globalrand analyzer).
func NewTraceID() string {
	var b [8]byte
	// crypto/rand.Read never fails on supported platforms (and panics
	// internally if the kernel source does); the error is unreachable.
	_, _ = rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// Merge folds a snapshot into the registry: counters add their values,
// gauges overwrite, histograms add bucket-wise (created with the
// snapshot's bounds on first use; snapshots whose bounds disagree with an
// existing histogram are dropped rather than corrupting buckets). It is
// how a request scope's delta lands in Default at request end.
func (r *Registry) Merge(s Snapshot) {
	for name, v := range s.Counters {
		if v != 0 {
			r.Counter(name).Add(v)
		}
	}
	for name, v := range s.Gauges {
		r.Gauge(name).Set(v)
	}
	for name, hs := range s.Histograms {
		if hs.Count == 0 {
			continue
		}
		r.Histogram(name, hs.Bounds).addSnapshot(hs)
	}
}

// addSnapshot adds a snapshot's samples into h when the bucket layouts
// match; mismatched bounds are dropped.
func (h *Histogram) addSnapshot(s HistogramSnapshot) {
	if len(s.Bounds) != len(h.bounds) || len(s.Buckets) != len(h.counts) {
		return
	}
	for i := range h.bounds {
		if h.bounds[i] != s.Bounds[i] { //rahtm:allow(floateq): bucket bounds are copied verbatim, identity comparison intended
			return
		}
	}
	for i, c := range s.Buckets {
		if c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.sum.Add(s.Sum)
	h.n.Add(s.Count)
}
