package telemetry

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"
	"time"
)

// PhaseTime is one row of the end-of-run report: a pipeline phase's wall
// time, the cumulative worker busy time inside it (Work >= Wall when more
// than one worker was busy), and the scheduler job count.
type PhaseTime struct {
	Name string
	Wall time.Duration
	Work time.Duration
	Jobs int
}

// EffectiveParallelism returns Work/Wall — the average number of busy
// workers across the phase. Zero when the phase recorded no wall time.
func (p PhaseTime) EffectiveParallelism() float64 {
	if p.Wall <= 0 {
		return 0
	}
	return float64(p.Work) / float64(p.Wall)
}

// WriteReport prints the end-of-run telemetry table: per-phase wall time,
// cumulative work and effective parallelism, then the cache and solver
// counters from snap (hit rates, pivots/sec, anneal acceptance, beam
// pruning). phases may be empty for counters-only reports; counters that
// never fired are omitted.
func WriteReport(w io.Writer, workers int, phases []PhaseTime, snap Snapshot) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(phases) > 0 {
		fmt.Fprintf(tw, "telemetry report (%d workers)\n", workers)
		fmt.Fprintln(tw, "phase\twall\twork\tjobs\teff. parallelism")
		var totalWall time.Duration
		for _, p := range phases {
			totalWall += p.Wall
			eff := "-"
			if p.Work > 0 && p.Wall > 0 {
				eff = fmt.Sprintf("%.2f", p.EffectiveParallelism())
			}
			fmt.Fprintf(tw, "%s\t%v\t%v\t%d\t%s\n",
				p.Name, p.Wall.Round(time.Microsecond), p.Work.Round(time.Microsecond), p.Jobs, eff)
		}
		fmt.Fprintf(tw, "total\t%v\t\t\t\n", totalWall.Round(time.Microsecond))
	} else {
		fmt.Fprintln(tw, "telemetry report")
	}

	wall := time.Duration(0)
	for _, p := range phases {
		wall += p.Wall
	}
	line := func(format string, args ...interface{}) {
		fmt.Fprintf(tw, format+"\n", args...)
	}
	pct := func(rate float64) string {
		if math.IsNaN(rate) {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*rate)
	}

	if hits, misses := snap.Counter(CtrStencilHits), snap.Counter(CtrStencilMisses); hits+misses > 0 {
		line("stencil cache\t%d hits / %d misses (%s hit rate), %d builds, %d evictions",
			hits, misses, pct(Rate(hits, misses)),
			snap.Counter(CtrStencilBuilds), snap.Counter(CtrStencilEvictions))
	}
	if subs := snap.Counter(CtrSubproblems); subs > 0 {
		hit := snap.Counter(CtrSubproblemHits)
		line("sibling reuse\t%d/%d subproblems from cache (%s)",
			hit, subs, pct(Rate(hit, subs-hit)))
	}
	if merges := snap.Counter(CtrMerges); merges > 0 {
		hit := snap.Counter(CtrMergeHits)
		line("merge reuse\t%d/%d merges from cache (%s)",
			hit, merges, pct(Rate(hit, merges-hit)))
	}
	if solves := snap.Counter(CtrLPSolves); solves > 0 {
		pivots := snap.Counter(CtrLPPivots)
		rate := ""
		if wall > 0 {
			rate = fmt.Sprintf(", %.0f pivots/sec", float64(pivots)/wall.Seconds())
		}
		line("lp\t%d solves, %d simplex pivots%s", solves, pivots, rate)
	}
	if solves := snap.Counter(CtrMILPSolves); solves > 0 {
		line("milp\t%d solves, %d branch-and-bound nodes",
			solves, snap.Counter(CtrMILPNodes))
	}
	if moves := snap.Counter(CtrAnnealMoves); moves > 0 {
		acc := snap.Counter(CtrAnnealAccepted)
		line("anneal\t%d moves, %d accepted (%s), %d restarts",
			moves, acc, pct(Rate(acc, moves-acc)), snap.Counter(CtrAnnealRestarts))
	}
	if cand := snap.Counter(CtrBeamCandidates); cand > 0 {
		kept := snap.Counter(CtrBeamKept)
		line("beam\t%d candidates generated, %d kept (%s pruned), %d symmetry evals",
			cand, kept, pct(Rate(cand-kept, kept)), snap.Counter(CtrSymmetryEvals))
	}
	if p2p, colls := snap.Counter(CtrTraceP2P), snap.Counter(CtrTraceColls); p2p+colls > 0 {
		line("trace\t%d p2p records, %d collectives expanded", p2p, colls)
	}
	return tw.Flush()
}
