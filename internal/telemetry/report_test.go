package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestWriteReportTable(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(CtrStencilHits).Add(90)
	reg.Counter(CtrStencilMisses).Add(10)
	reg.Counter(CtrStencilBuilds).Add(10)
	reg.Counter(CtrSubproblems).Add(20)
	reg.Counter(CtrSubproblemHits).Add(15)
	reg.Counter(CtrLPSolves).Add(4)
	reg.Counter(CtrLPPivots).Add(4000)
	reg.Counter(CtrAnnealMoves).Add(1000)
	reg.Counter(CtrAnnealAccepted).Add(250)
	reg.Counter(CtrBeamCandidates).Add(640)
	reg.Counter(CtrBeamKept).Add(64)
	phases := []PhaseTime{
		{Name: "cluster", Wall: 10 * time.Millisecond},
		{Name: "map", Wall: 100 * time.Millisecond, Work: 350 * time.Millisecond, Jobs: 12},
		{Name: "merge", Wall: 50 * time.Millisecond, Work: 50 * time.Millisecond, Jobs: 3},
	}
	var sb strings.Builder
	if err := WriteReport(&sb, 4, phases, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"4 workers",
		"eff. parallelism",
		"3.50", // map effective parallelism
		"90 hits / 10 misses (90.0% hit rate)",
		"15/20 subproblems from cache",
		"4 solves, 4000 simplex pivots",
		"pivots/sec",
		"250 accepted (25.0%)",
		"640 candidates generated, 64 kept (90.0% pruned)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// Counters-only mode: no phases (rahtm-sim's use) still prints the counter
// lines and omits counters that never fired.
func TestWriteReportCountersOnly(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(CtrStencilHits).Add(1)
	reg.Counter(CtrStencilMisses).Add(1)
	var sb strings.Builder
	if err := WriteReport(&sb, 0, nil, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "stencil cache") {
		t.Fatalf("missing stencil line:\n%s", out)
	}
	for _, absent := range []string{"anneal", "lp", "beam", "eff. parallelism"} {
		if strings.Contains(out, absent+"\t") || strings.Contains(out, "\n"+absent+" ") {
			t.Fatalf("counters-only report must omit untouched %q:\n%s", absent, out)
		}
	}
}

func TestEffectiveParallelism(t *testing.T) {
	p := PhaseTime{Wall: time.Second, Work: 3 * time.Second}
	if got := p.EffectiveParallelism(); got != 3 {
		t.Fatalf("got %v", got)
	}
	if (PhaseTime{}).EffectiveParallelism() != 0 {
		t.Fatal("zero wall must yield 0")
	}
}
