package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestCounterStripes(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("Value = %d, want 4", got)
	}
	// Local handles land on distinct stripes but sum into the same total.
	locals := make([]*LocalCounter, 2*stripes)
	for i := range locals {
		locals[i] = c.Local()
		locals[i].Add(10)
	}
	if got := c.Value(); got != 4+10*int64(len(locals)) {
		t.Fatalf("Value = %d after local adds", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l := c.Local()
			for i := 0; i < per; i++ {
				l.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("lost increments: %d/%d", got, goroutines*per)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Fatal("zero gauge must read 0")
	}
	g.Set(2.5)
	g.Add(0.5)
	if got := g.Value(); got != 3 {
		t.Fatalf("Value = %v, want 3", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 5 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Sum != 556.5 {
		t.Fatalf("Sum = %v", s.Sum)
	}
	want := []int64{2, 1, 1, 1} // <=1: {0.5, 1}; <=10: {5}; <=100: {50}; rest: {500}
	for i, n := range want {
		if s.Buckets[i] != n {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Buckets[i], n, s.Buckets)
		}
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending bounds must panic")
		}
	}()
	NewHistogram([]float64{10, 1})
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name must yield the same counter")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("same name must yield the same gauge")
	}
	h1 := r.Histogram("h", []float64{1, 2})
	if h2 := r.Histogram("h", []float64{9}); h1 != h2 {
		t.Fatal("first histogram registration must win")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Counter("race").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("race").Value(); got != 800 {
		t.Fatalf("concurrent get-or-create lost increments: %d", got)
	}
}

func TestSnapshotAndSub(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(5)
	r.Gauge("g").Set(1.5)
	r.Histogram("h", []float64{1}).Observe(0.5)
	prev := r.Snapshot()
	r.Counter("c").Add(7)
	snap := r.Snapshot()
	if snap.Counter("c") != 12 || prev.Counter("c") != 5 {
		t.Fatalf("snapshots not independent: %d / %d", snap.Counter("c"), prev.Counter("c"))
	}
	delta := snap.Sub(prev)
	if delta.Counter("c") != 7 {
		t.Fatalf("delta = %d, want 7", delta.Counter("c"))
	}
	if delta.Counter("absent") != 0 {
		t.Fatal("absent counter must read 0")
	}
	if snap.Gauges["g"] != 1.5 || snap.Histograms["h"].Count != 1 {
		t.Fatal("gauges/histograms missing from snapshot")
	}
}

func TestRate(t *testing.T) {
	if got := Rate(3, 1); got != 0.75 {
		t.Fatalf("Rate = %v", got)
	}
	if !math.IsNaN(Rate(0, 0)) {
		t.Fatal("zero denominator must be NaN")
	}
}
