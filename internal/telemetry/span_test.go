package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"rahtm/internal/obs"
)

// record feeds a recorder a deterministic two-phase timeline through the
// observer interface, with explicit start times so coverage is exact.
func record(t *testing.T) *Recorder {
	t.Helper()
	r := NewRecorder()
	epoch := r.epoch
	at := func(ms int) time.Time { return epoch.Add(time.Duration(ms) * time.Millisecond) }
	// Phase envelope [0, 100); job spans [0,40) w0, [20,90) w1, [40,100) coord.
	r.PhaseStart(obs.PhaseMap)
	r.Span("solve", obs.PhaseMap, 0, 2, 0xabc, at(0), 40*time.Millisecond)
	r.Span("solve", obs.PhaseMap, 1, 2, 0xdef, at(20), 70*time.Millisecond)
	r.Span("fanout", obs.PhaseMap, -1, 2, 0, at(40), 60*time.Millisecond)
	r.mu.Lock()
	r.opened[obs.PhaseMap] = epoch // pin the envelope to the epoch for exact math
	r.mu.Unlock()
	r.PhaseEnd(obs.PhaseMap, 100*time.Millisecond)
	return r
}

func TestRecorderPhaseEnvelope(t *testing.T) {
	r := record(t)
	env, ok := r.PhaseSpan(obs.PhaseMap)
	if !ok {
		t.Fatal("phase envelope missing")
	}
	if env.Worker != -1 || env.Level != -1 || env.Dur != 100*time.Millisecond {
		t.Fatalf("bad envelope: %+v", env)
	}
	if env.Start != 0 {
		t.Fatalf("envelope start = %v, want 0", env.Start)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
}

func TestPhaseCoverage(t *testing.T) {
	r := record(t)
	// Union of [0,40), [20,90), [40,100) covers the full [0,100) envelope.
	if got := r.PhaseCoverage(obs.PhaseMap); got < 0.999 || got > 1.001 {
		t.Fatalf("coverage = %v, want 1.0", got)
	}
	if got := r.PhaseCoverage(obs.PhaseMerge); got != 0 {
		t.Fatalf("unrecorded phase coverage = %v, want 0", got)
	}
}

func TestPhaseCoverageGaps(t *testing.T) {
	r := NewRecorder()
	epoch := r.epoch
	r.PhaseStart(obs.PhaseMerge)
	r.Span("merge", obs.PhaseMerge, 0, 1, 0, epoch, 30*time.Millisecond)
	r.Span("merge", obs.PhaseMerge, 1, 1, 0, epoch.Add(60*time.Millisecond), 20*time.Millisecond)
	r.mu.Lock()
	r.opened[obs.PhaseMerge] = epoch
	r.mu.Unlock()
	r.PhaseEnd(obs.PhaseMerge, 100*time.Millisecond)
	// [0,30) + [60,80) = 50ms of 100ms.
	if got := r.PhaseCoverage(obs.PhaseMerge); got < 0.499 || got > 0.501 {
		t.Fatalf("coverage = %v, want 0.5", got)
	}
}

func TestWriteJSONL(t *testing.T) {
	r := record(t)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var spans []Span
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		spans = append(spans, s)
	}
	if len(spans) != 4 {
		t.Fatalf("got %d spans", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatal("JSONL spans must be sorted by start")
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := record(t)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	var complete, meta int
	tids := map[float64]bool{}
	for _, ev := range trace.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
			tids[ev["tid"].(float64)] = true
		case "M":
			meta++
		}
	}
	if complete != 4 {
		t.Fatalf("%d complete events, want 4", complete)
	}
	// workers 0,1 -> tids 1,2; coordinator (-1) and phase envelope -> tid 0.
	for _, tid := range []float64{0, 1, 2} {
		if !tids[tid] {
			t.Fatalf("missing tid %v in %v", tid, tids)
		}
	}
	if meta < 4 { // process_name + 3 thread names
		t.Fatalf("%d metadata events, want >= 4", meta)
	}
	if !strings.Contains(buf.String(), "0xdef") {
		t.Fatal("structural hash missing from trace args")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Span("solve", obs.PhaseMap, g, i%3, uint64(i), time.Now(), time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("lost spans: %d/800", r.Len())
	}
}
