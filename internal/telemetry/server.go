package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Server is a live telemetry HTTP endpoint. It serves:
//
//	/metrics    — LiveSnapshot JSON: {"progress": ..., "metrics": ...};
//	              Prometheus text exposition instead under
//	              Accept: text/plain or ?format=prometheus
//	/debug/vars — standard expvar JSON (includes the "rahtm" var mirroring
//	              the same LiveSnapshot, next to memstats and cmdline)
//
// Construct with Serve and stop with Close. The server runs on its own
// listener and mux, so it never interferes with an application's default
// mux or other expvar publishers.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// LiveSnapshot is the payload of the /metrics endpoint.
type LiveSnapshot struct {
	Progress Progress `json:"progress"`
	Metrics  Snapshot `json:"metrics"`
}

// serveState is the process-wide source feeding the published "rahtm"
// expvar. expvar.Publish panics on duplicate names and has no Unpublish, so
// the var is registered once and reads through an atomic pointer that each
// Serve call swaps to its own sources.
type serveState struct {
	reg      *Registry
	progress func() Progress
}

var (
	publishOnce sync.Once
	current     atomic.Pointer[serveState]
)

func liveSnapshot() LiveSnapshot {
	st := current.Load()
	if st == nil {
		return LiveSnapshot{}
	}
	out := LiveSnapshot{Metrics: st.reg.Snapshot()}
	if st.progress != nil {
		out.Progress = st.progress()
	}
	return out
}

// Mount registers the telemetry handlers (/metrics and /debug/vars) on
// mux, reading metrics from reg (nil = Default) and live progress from the
// progress callback (nil = zero Progress). It lets an application server —
// the rahtm-serve daemon — carry the telemetry endpoint on its own mux
// instead of a second listener. Mount and Serve share the process-wide
// published expvar; the most recent call wins its sources.
func Mount(mux *http.ServeMux, reg *Registry, progress func() Progress) {
	if reg == nil {
		reg = Default
	}
	current.Store(&serveState{reg: reg, progress: progress})
	publishOnce.Do(func() {
		expvar.Publish("rahtm", expvar.Func(func() interface{} {
			return liveSnapshot()
		}))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := liveSnapshot()
		if wantsPrometheus(r) {
			w.Header().Set("Content-Type", PromContentType)
			_ = WritePrometheus(w, snap.Metrics)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		// encoding/json refuses NaN/Inf outright; a single poisoned gauge
		// must not take the whole scrape down.
		snap.Metrics = snap.Metrics.Sanitized()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
}

// wantsPrometheus decides the /metrics representation: Prometheus text for
// scrapers that ask for text/plain (or the OpenMetrics type) in Accept, or
// for an explicit ?format=prometheus; JSON — the original payload — for
// everyone else, so existing consumers never change.
func wantsPrometheus(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prometheus" {
		return true
	}
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		if mt == "text/plain" || mt == "application/openmetrics-text" {
			return true
		}
	}
	return false
}

// Serve starts a telemetry endpoint on addr (e.g. "localhost:6060" or
// ":0" for an ephemeral port) reading metrics from reg (nil = Default) and
// live progress from the progress callback (nil = zero Progress). It
// returns once the listener is bound; use Server.Addr for the bound
// address and Server.Close to shut down.
func Serve(addr string, reg *Registry, progress func() Progress) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	Mount(mux, reg, progress)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s := &Server{ln: ln, srv: srv}
	go func() { _ = srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the base http:// URL of the endpoint.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
