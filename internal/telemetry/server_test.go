package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func getJSON(t *testing.T, url string, into interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, into); err != nil {
		t.Fatalf("GET %s: bad JSON: %v\n%s", url, err, body)
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(CtrStencilHits).Add(42)
	tr := NewProgressTracker()
	tr.PhaseStart("map")
	s, err := Serve("localhost:0", reg, tr.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var live LiveSnapshot
	getJSON(t, s.URL()+"/metrics", &live)
	if live.Metrics.Counter(CtrStencilHits) != 42 {
		t.Fatalf("metrics: %+v", live.Metrics)
	}
	if live.Progress.Phase != "map" {
		t.Fatalf("progress: %+v", live.Progress)
	}

	var vars map[string]json.RawMessage
	getJSON(t, s.URL()+"/debug/vars", &vars)
	raw, ok := vars["rahtm"]
	if !ok {
		t.Fatalf("expvar output missing rahtm var: %v", vars)
	}
	var published LiveSnapshot
	if err := json.Unmarshal(raw, &published); err != nil {
		t.Fatal(err)
	}
	if published.Metrics.Counter(CtrStencilHits) != 42 || published.Progress.Phase != "map" {
		t.Fatalf("published expvar: %+v", published)
	}
}

// TestServeTwiceSwapsState pins the expvar single-publish contract: a second
// Serve must not panic and must redirect the published var to its own
// sources.
func TestServeTwiceSwapsState(t *testing.T) {
	reg1 := NewRegistry()
	reg1.Counter("x").Add(1)
	s1, err := Serve("localhost:0", reg1, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()
	reg2 := NewRegistry()
	reg2.Counter("x").Add(2)
	s2, err := Serve("localhost:0", reg2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var live LiveSnapshot
	getJSON(t, s2.URL()+"/metrics", &live)
	if live.Metrics.Counter("x") != 2 {
		t.Fatalf("second Serve must read its own registry: %+v", live.Metrics)
	}
}
