package telemetry

// Prometheus text exposition (format version 0.0.4) for a Snapshot, plus a
// small stdlib-only parser used by the format-validity tests and the
// rahtm-promcheck CI gate. The JSON /metrics payload stays the default for
// existing consumers; Prometheus scrapers get this via content negotiation
// (Accept: text/plain) on the same endpoint.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promNamespace prefixes every exposed metric name, so rahtm's series are
// greppable in a shared Prometheus and never collide with other exporters.
const promNamespace = "rahtm_"

// WritePrometheus writes s in the Prometheus text exposition format:
// counters as <name>_total with TYPE counter, gauges with TYPE gauge, and
// histograms as cumulative _bucket{le="..."} series plus _sum and _count.
// Families are emitted in sorted name order so scrapes diff cleanly.
func WritePrometheus(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mn := promName(name) + "_total"
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", mn, mn, s.Counters[name])
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", mn, mn, promFloat(s.Gauges[name]))
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		mn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", mn)
		cum := int64(0)
		for i, b := range h.Bounds {
			if i < len(h.Buckets) {
				cum += h.Buckets[i]
			}
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", mn, promFloat(b), cum)
		}
		if len(h.Buckets) > len(h.Bounds) {
			cum += h.Buckets[len(h.Buckets)-1]
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", mn, cum)
		fmt.Fprintf(bw, "%s_sum %s\n", mn, promFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", mn, h.Count)
	}
	return bw.Flush()
}

// promName maps a registry metric name (dotted, e.g. "routing.stencil.hits")
// to a valid Prometheus metric name: the rahtm_ namespace plus the name with
// every character outside [a-zA-Z0-9_:] replaced by '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(promNamespace) + len(name))
	b.WriteString(promNamespace)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float sample value. NaN and the infinities have
// defined spellings in the exposition format.
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PromSample is one parsed exposition sample line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily is one parsed metric family: its declared TYPE and samples in
// file order.
type PromFamily struct {
	Name    string
	Type    string
	Samples []PromSample
}

// ParsePrometheus validates r as Prometheus text exposition and returns the
// metric families keyed by name. It is deliberately small — names, label
// syntax, float values, TYPE comments — but strict about what it does
// check: malformed lines, invalid names or values, samples for histogram
// families whose cumulative buckets decrease, and a missing +Inf bucket all
// fail. That is exactly the safety net the CI e2e scrape needs.
func ParsePrometheus(r io.Reader) (map[string]*PromFamily, error) {
	families := map[string]*PromFamily{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parsePromComment(line, families); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		sample, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := families[familyOf(sample.Name)]
		if fam == nil {
			// Untyped samples are legal exposition; track them under their
			// own name so bucket checks still see the series.
			fam = &PromFamily{Name: sample.Name, Type: "untyped"}
			families[fam.Name] = fam
		}
		fam.Samples = append(fam.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, fam := range families {
		if fam.Type == "histogram" {
			if err := checkHistogramFamily(fam); err != nil {
				return nil, err
			}
		}
	}
	return families, nil
}

// parsePromComment handles "# TYPE name type" and "# HELP name text".
func parsePromComment(line string, families map[string]*PromFamily) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		name, typ := fields[2], fields[3]
		if !validPromName(name) {
			return fmt.Errorf("invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if _, ok := families[name]; ok {
			return fmt.Errorf("duplicate TYPE for %q", name)
		}
		families[name] = &PromFamily{Name: name, Type: typ}
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
	}
	return nil
}

// parsePromSample parses one sample line: name[{labels}] value [timestamp].
func parsePromSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		end := strings.IndexByte(rest, '}')
		if end < i {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parsePromLabels(rest[i+1:end], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return s, fmt.Errorf("sample %q has no value", line)
		}
		s.Name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	if !validPromName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("sample %q needs a value and at most a timestamp", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value: %v", line, err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("sample %q: bad timestamp: %v", line, err)
		}
	}
	return s, nil
}

// parsePromLabels parses `k="v",k2="v2"` into dst.
func parsePromLabels(s string, dst map[string]string) error {
	s = strings.TrimSpace(s)
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("label pair %q has no '='", s)
		}
		key := strings.TrimSpace(s[:eq])
		if !validPromLabelName(key) {
			return fmt.Errorf("invalid label name %q", key)
		}
		rest := s[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("label %q value is not quoted", key)
		}
		val, remain, err := unquotePromValue(rest)
		if err != nil {
			return fmt.Errorf("label %q: %w", key, err)
		}
		dst[key] = val
		s = strings.TrimSpace(remain)
		s = strings.TrimPrefix(s, ",")
		s = strings.TrimSpace(s)
	}
	return nil
}

// unquotePromValue reads a leading double-quoted exposition string (with
// \\, \" and \n escapes) and returns the remainder.
func unquotePromValue(s string) (val, rest string, err error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("bad escape \\%c", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(c)
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string")
}

// familyOf strips the histogram/summary sample suffixes so _bucket/_sum/
// _count lines attach to their declared family.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// checkHistogramFamily verifies the invariants scrapers rely on: cumulative
// buckets never decrease, a +Inf bucket exists, and it equals _count.
func checkHistogramFamily(fam *PromFamily) error {
	prev := math.Inf(-1)
	last := math.NaN()
	var haveInf bool
	var infVal, count float64
	var haveCount bool
	for _, s := range fam.Samples {
		switch {
		case s.Name == fam.Name+"_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s: bucket without le label", fam.Name)
			}
			bound, err := parsePromBound(le)
			if err != nil {
				return fmt.Errorf("histogram %s: %w", fam.Name, err)
			}
			if bound <= prev {
				return fmt.Errorf("histogram %s: bucket bounds not ascending at le=%q", fam.Name, le)
			}
			prev = bound
			if !math.IsNaN(last) && s.Value < last {
				return fmt.Errorf("histogram %s: cumulative bucket counts decrease at le=%q", fam.Name, le)
			}
			last = s.Value
			if math.IsInf(bound, 1) {
				haveInf, infVal = true, s.Value
			}
		case s.Name == fam.Name+"_count":
			haveCount, count = true, s.Value
		}
	}
	if !haveInf {
		return fmt.Errorf("histogram %s: missing le=\"+Inf\" bucket", fam.Name)
	}
	if haveCount && infVal != count { //rahtm:allow(floateq): both are exact integer sample counts
		return fmt.Errorf("histogram %s: +Inf bucket %v != count %v", fam.Name, infVal, count)
	}
	return nil
}

// validPromName reports whether s is a legal metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validPromLabelName reports whether s is a legal label name:
// [a-zA-Z_][a-zA-Z0-9_]*.
func validPromLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parsePromBound parses an le label value ("+Inf" included).
func parsePromBound(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le bound %q", s)
	}
	return v, nil
}
