module rahtm

go 1.22
