package rahtm

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"testing"
	"time"
)

// runTraced runs the pipeline with a full telemetry stack attached and
// returns the result plus the recorder and tracker.
func runTraced(t *testing.T, parallelism int) (*PipelineResult, *SpanRecorder, *ProgressTracker) {
	t.Helper()
	w := Halo3D(4, 4, 8, 10) // 128 processes
	top := NewTorus(4, 4, 8) // 128 nodes
	rec := NewSpanRecorder()
	prog := NewProgressTracker()
	m := Mapper{Parallelism: parallelism, Observer: TeeObservers(rec, prog)}
	res, err := m.Pipeline(w, top, 1)
	if err != nil {
		t.Fatal(err)
	}
	return res, rec, prog
}

// TestPhaseStatsEffectiveParallelism pins the work-time accounting under
// Parallelism=1 vs NumCPU: both settings produce the same mapping and
// subproblem counts, sequential effective parallelism stays ~1, and the
// parallel work time never exceeds wall x workers.
func TestPhaseStatsEffectiveParallelism(t *testing.T) {
	seq, _, _ := runTraced(t, 1)
	par, _, _ := runTraced(t, 0)
	if seq.MCL != par.MCL {
		t.Fatalf("MCL diverged: seq %v, par %v", seq.MCL, par.MCL)
	}
	if seq.Stats.Subproblems != par.Stats.Subproblems || seq.Stats.Merges != par.Stats.Merges {
		t.Fatalf("work diverged: seq %+v, par %+v", seq.Stats, par.Stats)
	}
	if seq.Stats.Parallelism != 1 {
		t.Fatalf("sequential Parallelism = %d", seq.Stats.Parallelism)
	}
	if par.Stats.Parallelism != runtime.NumCPU() {
		t.Fatalf("parallel Parallelism = %d, NumCPU %d", par.Stats.Parallelism, runtime.NumCPU())
	}
	for _, c := range []struct {
		name    string
		stats   PhaseStats
		workers int
	}{
		{"seq", seq.Stats, 1},
		{"par", par.Stats, par.Stats.Parallelism},
	} {
		if c.stats.MapWorkTime <= 0 || c.stats.MapTime <= 0 {
			t.Fatalf("%s: missing phase 2 times: %+v", c.name, c.stats)
		}
		// Work time is solver time summed across workers: it cannot exceed
		// wall x workers (plus scheduling jitter).
		limit := 1.15 * float64(c.workers)
		if eff := c.stats.MapParallelism(); eff > limit {
			t.Fatalf("%s: map eff. parallelism %v exceeds %v", c.name, eff, limit)
		}
		if eff := c.stats.MergeParallelism(); c.stats.MergeTime > 0 && eff > limit {
			t.Fatalf("%s: merge eff. parallelism %v exceeds %v", c.name, eff, limit)
		}
	}
}

// TestSpansNestWithinPhases pins the recorder contract: every job span
// falls inside its phase envelope (small tolerance: the envelope duration
// is measured just after PhaseStart fires) and phase coverage is high —
// the scheduler's prepare/solve/fanout spans account for the phase wall.
func TestSpansNestWithinPhases(t *testing.T) {
	_, rec, _ := runTraced(t, 0)
	const tol = 10 * time.Millisecond
	for _, phase := range []string{PhaseMap, PhaseMerge} {
		env, ok := rec.PhaseSpan(phase)
		if !ok {
			t.Fatalf("phase %s not recorded", phase)
		}
		n := 0
		for _, s := range rec.Spans() {
			if s.Phase != phase || s.Name == "phase" {
				continue
			}
			n++
			if s.Start < env.Start-tol || s.End() > env.End()+tol {
				t.Fatalf("span %+v outside %s envelope [%v, %v]", s, phase, env.Start, env.End())
			}
		}
		if n == 0 {
			t.Fatalf("no job spans in phase %s", phase)
		}
		// The acceptance bar is >=95% on the long 512-proc run; this small
		// fixture keeps a conservative floor so scheduling noise cannot
		// flake the test.
		if cov := rec.PhaseCoverage(phase); cov < 0.5 {
			t.Fatalf("phase %s coverage %v < 0.5", phase, cov)
		}
	}
}

// TestProgressAndCountersEndToEnd checks that the progress view converges
// to the stats and that the always-on counters moved.
func TestProgressAndCountersEndToEnd(t *testing.T) {
	before := Metrics()
	res, rec, prog := runTraced(t, 0)
	delta := Metrics().Sub(before)
	p := prog.Snapshot()
	if p.Phase != PhaseMerge || !p.PhaseDone {
		t.Fatalf("final progress phase: %+v", p)
	}
	if p.Subproblems != res.Stats.Subproblems {
		t.Fatalf("progress subproblems %d != stats %d", p.Subproblems, res.Stats.Subproblems)
	}
	if p.MapJobsDone != p.MapJobsPlanned || p.MergeJobsDone != p.MergeJobsPlanned {
		t.Fatalf("jobs done != planned: %+v", p)
	}
	if p.MapJobsDone == 0 || p.MergeJobsDone == 0 {
		t.Fatalf("no jobs tracked: %+v", p)
	}
	if p.BestLevel != 0 || p.BestMCL <= 0 {
		t.Fatalf("best MCL not tracked to the root: %+v", p)
	}
	// The fixture's 8-node cubes use the exhaustive leaf solver, so the
	// anneal/LP/MILP counters legitimately stay at zero here.
	for _, ctr := range []string{
		"routing.stencil.hits",
		"core.subproblems",
		"core.merges",
		"merge.beam.candidates",
		"merge.beam.kept",
		"merge.symmetry.evals",
	} {
		if delta.Counter(ctr) <= 0 {
			t.Fatalf("counter %s did not move: %+v", ctr, delta.Counters)
		}
	}
	if delta.Counter("core.subproblems") != int64(res.Stats.Subproblems) {
		t.Fatalf("counter core.subproblems %d != stats %d",
			delta.Counter("core.subproblems"), res.Stats.Subproblems)
	}
	if delta.Counter("core.subproblems.reused") != int64(res.Stats.SubproblemsHit) {
		t.Fatalf("counter core.subproblems.reused %d != stats %d",
			delta.Counter("core.subproblems.reused"), res.Stats.SubproblemsHit)
	}

	// Exports round-trip as valid JSON.
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	if len(trace.TraceEvents) < rec.Len() {
		t.Fatalf("trace has %d events for %d spans", len(trace.TraceEvents), rec.Len())
	}
}

func TestWriteTelemetryReportFacade(t *testing.T) {
	res, _, _ := runTraced(t, 0)
	var sb strings.Builder
	if err := WriteTelemetryReport(&sb, &res.Stats); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"telemetry report", "map", "merge", "stencil cache", "sibling reuse"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	if err := WriteTelemetryReport(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "telemetry report") {
		t.Fatalf("counters-only report:\n%s", sb.String())
	}
}

func TestServeMetricsFacade(t *testing.T) {
	prog := NewProgressTracker()
	s, err := ServeMetrics("localhost:0", prog.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.URL() == "" {
		t.Fatal("no URL")
	}
}
