package rahtm

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
)

func TestRequestJSONRoundTrip(t *testing.T) {
	in := Request{
		Workload:    "CG",
		Procs:       64,
		Grid:        []int{8, 8},
		Topo:        []int{4, 4, 4},
		Mesh:        true,
		Conc:        1,
		Mapper:      "hilbert",
		DeadlineMS:  1500,
		Parallelism: 2,
		BeamWidth:   16,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip lost fields:\n in: %+v\nout: %+v", in, out)
	}
	// The library-side escape hatches must never leak onto the wire.
	var raw map[string]any
	if err := json.Unmarshal(b, &raw); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"Work", "Torus", "Config", "Observer", "work", "torus"} {
		if _, ok := raw[k]; ok {
			t.Errorf("non-wire field %q serialized: %s", k, b)
		}
	}
	if _, ok := raw["deadline_ms"]; !ok {
		t.Errorf("deadline_ms missing from wire form: %s", b)
	}
}

func TestRequestKey(t *testing.T) {
	base := Request{Workload: "CG", Topo: []int{4, 4}, Conc: 1}
	k1, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	if len(k1) != 16 {
		t.Fatalf("key %q is not a 16-hex-digit hash", k1)
	}
	// Identical problem, fresh struct: same key.
	again := Request{Workload: "CG", Topo: []int{4, 4}, Conc: 1}
	if k2, _ := again.Key(); k2 != k1 {
		t.Fatalf("identical requests keyed %q vs %q", k1, k2)
	}
	// Deadline and parallelism are excluded: results don't depend on them.
	budgeted := Request{Workload: "CG", Topo: []int{4, 4}, Conc: 1, DeadlineMS: 5, Parallelism: 3}
	if k2, _ := budgeted.Key(); k2 != k1 {
		t.Fatalf("deadline/parallelism changed the key: %q vs %q", k1, k2)
	}
	// Everything that shapes the mapping must change the key.
	variants := map[string]Request{
		"mapper":   {Workload: "CG", Topo: []int{4, 4}, Conc: 1, Mapper: "hilbert"},
		"topology": {Workload: "CG", Topo: []int{2, 8}, Conc: 1},
		"mesh":     {Workload: "CG", Topo: []int{4, 4}, Conc: 1, Mesh: true},
		"conc":     {Workload: "CG", Topo: []int{4, 4, 2}, Conc: 2, Procs: 64},
		"beam":     {Workload: "CG", Topo: []int{4, 4}, Conc: 1, BeamWidth: 8},
		"workload": {Workload: "BT", Topo: []int{4, 4}, Conc: 1},
	}
	for name, v := range variants {
		v := v
		kv, err := v.Key()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if kv == k1 {
			t.Errorf("%s variant collided with the base key %q", name, k1)
		}
	}
}

func TestMapperByName(t *testing.T) {
	for _, name := range MapperNames() {
		f, err := MapperByName(name)
		if err != nil || f == nil {
			t.Errorf("registry name %q did not resolve: %v", name, err)
		}
	}
	// Case-insensitive.
	if _, err := MapperByName("Hilbert"); err != nil {
		t.Errorf("mixed-case lookup failed: %v", err)
	}
	// Permutation specs resolve without registration.
	f, err := MapperByName("ABT")
	if err != nil {
		t.Fatalf("permutation spec: %v", err)
	}
	if got := f(nil).Name(); got != "ABT" {
		t.Errorf("permutation mapper named %q, want ABT", got)
	}
	// Unknown names fail with the typed error.
	_, err = MapperByName("no-such-mapper")
	if !errors.Is(err, ErrUnknownMapper) {
		t.Fatalf("error %v does not wrap ErrUnknownMapper", err)
	}
}

func TestRegisterMapper(t *testing.T) {
	RegisterMapper("Custom-Test", func(*Torus) ProcMapper { return Mapper{} })
	if _, err := MapperByName("custom-test"); err != nil {
		t.Fatalf("registered mapper not found: %v", err)
	}
	found := false
	for _, n := range MapperNames() {
		if n == "custom-test" {
			found = true
		}
	}
	if !found {
		t.Error("registered mapper missing from MapperNames")
	}
}

// TestSolveMatchesLegacyWrappers pins the API redesign's compatibility
// contract: the deprecated MapProcs/Pipeline entry points are wrappers over
// Solve and must keep producing byte-identical mappings.
func TestSolveMatchesLegacyWrappers(t *testing.T) {
	w := MustWorkload(t)
	topo := NewTorus(4, 4)

	legacy, err := Mapper{}.MapProcs(w, topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), Request{Work: w, Torus: topo, Conc: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, res.Mapping) {
		t.Fatalf("Solve mapping differs from legacy MapProcs:\n%v\n%v", legacy, res.Mapping)
	}
	if res.MCL <= 0 || res.HopBytes <= 0 {
		t.Errorf("Solve did not measure quality: MCL=%v hop-bytes=%v", res.MCL, res.HopBytes)
	}
	if res.Stats == nil || res.Detail == nil {
		t.Error("Solve dropped the pipeline stats/detail for the RAHTM mapper")
	}

	pipe, err := Mapper{}.Pipeline(w, topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pipe.ProcToNode, res.Mapping) {
		t.Error("Pipeline wrapper diverged from Solve")
	}
}

func TestSolveBaselineAndDeadline(t *testing.T) {
	// Baselines resolve by name and skip pipeline stats.
	res, err := Solve(context.Background(), Request{Workload: "CG", Topo: []int{4, 4}, Mapper: "greedy"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != nil || res.Detail != nil {
		t.Error("baseline solve carries pipeline stats")
	}
	if res.Mapper != "greedy-hop-bytes" {
		t.Errorf("mapper = %q", res.Mapper)
	}

	// A millisecond budget degrades rather than fails.
	res, err = Solve(context.Background(), Request{Workload: "CG", Topo: []int{4, 4, 4}, Conc: 4, DeadlineMS: 1})
	if err != nil {
		t.Fatalf("short deadline failed instead of degrading: %v", err)
	}
	if !res.Degraded {
		t.Error("1ms budget did not flag Degraded")
	}
	if len(res.Mapping) != 256 {
		t.Errorf("degraded mapping covers %d processes", len(res.Mapping))
	}

	// Hard cancel still aborts.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(ctx, Request{Workload: "CG", Topo: []int{4, 4}}); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled solve returned %v, want context.Canceled", err)
	}
}

func TestSolveInvalidRequests(t *testing.T) {
	cases := map[string]Request{
		"no topology":      {Workload: "CG"},
		"no workload":      {Topo: []int{4, 4}},
		"unknown workload": {Workload: "nope", Topo: []int{4, 4}},
		"unknown mapper":   {Workload: "CG", Topo: []int{4, 4}, Mapper: "nope1"},
		"size mismatch":    {Workload: "CG", Procs: 64, Topo: []int{4, 4}},
		"both graphs":      {Workload: "CG", Graph: "comm 2\n0 1 5\n", Topo: []int{4, 4}},
	}
	for name, req := range cases {
		req := req
		if _, err := Solve(context.Background(), req); err == nil {
			t.Errorf("%s: solve succeeded, want error", name)
		}
	}
}

// MustWorkload builds the CG/16 test workload.
func MustWorkload(t *testing.T) *Workload {
	t.Helper()
	w, err := WorkloadByName("CG", 16)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestMaterializeMemo(t *testing.T) {
	req := Request{Workload: "CG", Topo: []int{4, 4}}
	w1, t1, err := req.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	w2, t2, err := req.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 || t1 != t2 {
		t.Error("Materialize rebuilt instead of reusing the memo")
	}
	if _, err := req.Key(); err != nil {
		t.Fatal(err)
	}
}

// TestSolveWithScope checks the request-scoped attribution contract: a
// scope on the context yields a Result stamped with the trace ID and the
// per-request counter deltas, while the process-wide registry still
// advances by exactly the same amounts (the scope's counts are folded in
// at solve end). A scope-less Solve leaves TraceID/Metrics empty.
func TestSolveWithScope(t *testing.T) {
	req := Request{Workload: "CG", Topo: []int{4, 4}, Conc: 1}

	res, err := Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID != "" || res.Metrics != nil {
		t.Fatalf("scope-less solve carries attribution: trace %q metrics %v", res.TraceID, res.Metrics)
	}

	scope := NewScope("feedfacefeedface")
	before := Metrics()
	res, err = Solve(WithScope(context.Background(), scope), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID != "feedfacefeedface" {
		t.Fatalf("trace ID = %q, want the scope's", res.TraceID)
	}
	if len(res.Metrics) == 0 {
		t.Fatal("scoped solve reports no metrics")
	}
	delta := Metrics().Sub(before)
	for name, v := range res.Metrics {
		if v < 0 {
			t.Errorf("metric %s is negative: %d", name, v)
		}
		if got := delta.Counters[name]; got != v {
			t.Errorf("global %s advanced by %d, request attributed %d", name, got, v)
		}
	}
}
