package rahtm

import (
	"context"
	"math"
	"testing"

	"rahtm/internal/core"
	"rahtm/internal/workload"
)

// TestFrozenPathByteIdentical pins the CSR contract end to end: for every
// mapper the bench exercises (StandardMappers: the permutation baselines,
// Hilbert, RHT, and the RAHTM pipeline itself), solving with the map-backed
// builder graph and with its frozen CSR clone must produce the same mapping
// and a bit-identical MCL. The RAHTM entry drives the pipeline through
// core.MapPartitionedCtx directly, because the public Solve entry freezes
// its input — which would leave the map path unexercised.
func TestFrozenPathByteIdentical(t *testing.T) {
	cases := []struct {
		topo       []int
		conc       int
		rows, cols int
	}{
		{[]int{4, 4}, 4, 8, 8},
		{[]int{2, 2, 2}, 4, 8, 4},
	}
	for _, tc := range cases {
		tp := NewTorus(tc.topo...)
		for _, m := range StandardMappers(tp) {
			wBuilder := workload.Halo2D(tc.rows, tc.cols, 1)
			frozen := *wBuilder
			frozen.Graph = wBuilder.Graph.Clone().Freeze()
			wFrozen := &frozen

			var mapA, mapB Mapping
			if rm, ok := m.(Mapper); ok {
				cfg := PipelineConfig{
					Concentration: tc.conc,
					GridDims:      wBuilder.Grid,
					Leaf:          rm.Leaf,
					Merge:         rm.Merge,
				}
				resA, err := core.MapPartitionedCtx(context.Background(), wBuilder.Graph, tp, cfg)
				if err != nil {
					t.Fatalf("%v %s builder path: %v", tc.topo, m.Name(), err)
				}
				resB, err := core.MapPartitionedCtx(context.Background(), wFrozen.Graph, tp, cfg)
				if err != nil {
					t.Fatalf("%v %s frozen path: %v", tc.topo, m.Name(), err)
				}
				if wBuilder.Graph.Frozen() {
					t.Fatalf("%v %s: pipeline froze the caller's builder graph", tc.topo, m.Name())
				}
				mapA, mapB = resA.ProcToNode, resB.ProcToNode
			} else {
				var err error
				mapA, err = m.MapProcs(wBuilder, tp, tc.conc)
				if err != nil {
					t.Fatalf("%v %s builder path: %v", tc.topo, m.Name(), err)
				}
				mapB, err = m.MapProcs(wFrozen, tp, tc.conc)
				if err != nil {
					t.Fatalf("%v %s frozen path: %v", tc.topo, m.Name(), err)
				}
			}

			if len(mapA) != len(mapB) {
				t.Fatalf("%v %s: mapping lengths differ: %d vs %d", tc.topo, m.Name(), len(mapA), len(mapB))
			}
			for i := range mapA {
				if mapA[i] != mapB[i] {
					t.Fatalf("%v %s: mapping differs at task %d: %d vs %d",
						tc.topo, m.Name(), i, mapA[i], mapB[i])
				}
			}
			// MCL evaluated over each representation: same mapping, same
			// traversal order, so the float bits must agree exactly.
			mclA := MCL(tp, wBuilder.Graph, mapA)
			mclB := MCL(tp, wFrozen.Graph, mapB)
			if math.Float64bits(mclA) != math.Float64bits(mclB) {
				t.Fatalf("%v %s: MCL bits differ: %v (map) vs %v (CSR)", tc.topo, m.Name(), mclA, mclB)
			}
		}
	}
}
