package rahtm

import (
	"math"
	"strings"
	"testing"
)

func smallSuite(t *testing.T) ([]*Workload, *Torus, int) {
	t.Helper()
	ws, err := Suite(64)
	if err != nil {
		t.Fatal(err)
	}
	return ws, NewTorus(4, 4), 4
}

func TestCompareBasics(t *testing.T) {
	ws, tp, conc := smallSuite(t)
	ms := []ProcMapper{DefaultMapper(tp), NewHilbert(), Mapper{}}
	cmp, err := Compare(ws[2], tp, conc, ms, Model{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Rows) != 3 {
		t.Fatalf("rows = %d", len(cmp.Rows))
	}
	base := cmp.Rows[0]
	if base.RelComm != 1 || base.RelExec != 1 {
		t.Fatalf("baseline not normalized: %+v", base)
	}
	for _, r := range cmp.Rows {
		if r.Err != "" {
			t.Fatalf("%s failed: %s", r.Mapper, r.Err)
		}
		if r.CommTime <= 0 || r.ExecTime <= r.CommTime {
			t.Fatalf("times wrong: %+v", r)
		}
	}
	// Amdahl consistency: relExec = (1-f) + f*relComm for the calibrated
	// fraction f.
	f := ws[2].CommFraction
	for _, r := range cmp.Rows {
		want := (1 - f) + f*r.RelComm
		if math.Abs(r.RelExec-want) > 1e-9 {
			t.Fatalf("%s: relExec %v, Amdahl predicts %v", r.Mapper, r.RelExec, want)
		}
	}
}

func TestCompareRAHTMWins(t *testing.T) {
	ws, tp, conc := smallSuite(t)
	ms := []ProcMapper{DefaultMapper(tp), Mapper{}}
	for _, w := range ws {
		cmp, err := Compare(w, tp, conc, ms, Model{})
		if err != nil {
			t.Fatal(err)
		}
		rahtmRow := cmp.Rows[1]
		if rahtmRow.RelComm > 1+1e-9 {
			t.Fatalf("%s: RAHTM relComm %v > 1 (must not lose to the default)", w.Name, rahtmRow.RelComm)
		}
	}
}

func TestCompareSuiteAddsGeomean(t *testing.T) {
	ws, tp, conc := smallSuite(t)
	ms := []ProcMapper{DefaultMapper(tp), Mapper{}}
	cs, err := CompareSuite(ws, tp, conc, ms, Model{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != len(ws)+1 {
		t.Fatalf("comparisons = %d", len(cs))
	}
	gm := cs[len(cs)-1]
	if gm.Workload != "geomean" {
		t.Fatalf("last comparison = %q", gm.Workload)
	}
	// Geomean of per-benchmark relComm values.
	prod := 1.0
	for _, c := range cs[:len(ws)] {
		prod *= c.Rows[1].RelComm
	}
	want := math.Pow(prod, 1/float64(len(ws)))
	if math.Abs(gm.Rows[1].RelComm-want) > 1e-9 {
		t.Fatalf("geomean = %v, want %v", gm.Rows[1].RelComm, want)
	}
}

func TestCompareFailingMapperRecorded(t *testing.T) {
	ws, tp, conc := smallSuite(t)
	bad := NewPermutation("ZZT") // invalid spec for this topology
	cmp, err := Compare(ws[0], tp, conc, []ProcMapper{DefaultMapper(tp), bad}, Model{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Rows[1].Err == "" {
		t.Fatal("failure not recorded")
	}
	// A failing baseline aborts.
	if _, err := Compare(ws[0], tp, conc, []ProcMapper{bad}, Model{}); err == nil {
		t.Fatal("failing baseline should abort")
	}
}

func TestWriteTableModes(t *testing.T) {
	ws, tp, conc := smallSuite(t)
	cs, err := CompareSuite(ws[:1], tp, conc, []ProcMapper{DefaultMapper(tp), NewHilbert()}, Model{})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"exec", "comm", "mcl"} {
		var sb strings.Builder
		if err := WriteTable(&sb, cs, mode); err != nil {
			t.Fatal(err)
		}
		out := sb.String()
		if !strings.Contains(out, "BT") || !strings.Contains(out, "Hilbert") {
			t.Fatalf("mode %s output missing content:\n%s", mode, out)
		}
	}
	if err := WriteTable(new(strings.Builder), cs, "nope"); err == nil {
		t.Fatal("bad mode should fail")
	}
	if err := WriteTable(new(strings.Builder), nil, "exec"); err != nil {
		t.Fatal("empty input should be a no-op")
	}
}

func TestCommFractionTableMatchesCalibration(t *testing.T) {
	ws, tp, conc := smallSuite(t)
	var sb strings.Builder
	if err := CommFractionTable(&sb, ws, tp, conc, DefaultMapper(tp), Model{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// CG must show ~70% communication, BT/SP ~35% (Figure 9).
	if !strings.Contains(out, "70.0%") {
		t.Fatalf("CG fraction missing:\n%s", out)
	}
	if !strings.Contains(out, "35.0%") {
		t.Fatalf("BT/SP fraction missing:\n%s", out)
	}
}

func TestGeoMeanEmptyAndFailures(t *testing.T) {
	gm := GeoMean(nil)
	if gm.Workload != "geomean" || len(gm.Rows) != 0 {
		t.Fatalf("empty geomean = %+v", gm)
	}
	cs := []*Comparison{{
		Workload: "x",
		Rows:     []Row{{Mapper: "a", Err: "boom"}},
	}}
	gm = GeoMean(cs)
	if gm.Rows[0].Err == "" {
		t.Fatal("all-failure mapper should carry an error")
	}
}

func TestCompareNoMappers(t *testing.T) {
	ws, tp, conc := smallSuite(t)
	if _, err := Compare(ws[0], tp, conc, nil, Model{}); err == nil {
		t.Fatal("expected error")
	}
}
