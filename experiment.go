package rahtm

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"rahtm/internal/netsim"
)

// CtxProcMapper is a ProcMapper that also accepts a context, letting
// comparisons propagate cancellation and time budgets into the mapping
// computation. Mapper implements it; the baselines do not need to (they map
// in microseconds).
type CtxProcMapper interface {
	ProcMapper
	MapProcsCtx(ctx context.Context, w *Workload, t *Torus, conc int) (Mapping, error)
}

// Row is one mapper's result within a Comparison.
type Row struct {
	Mapper   string
	MCL      float64       // bytes on the hottest channel
	HopBytes float64       // routing-oblivious metric, for reference
	CommTime float64       // seconds per iteration
	ExecTime float64       // seconds per iteration including computation
	RelComm  float64       // CommTime / baseline CommTime
	RelExec  float64       // ExecTime / baseline ExecTime
	MapTime  time.Duration // offline mapping computation time
	Err      string        // non-empty when the mapper failed
}

// Comparison evaluates one workload across a set of mappers — the engine
// behind Figures 8 and 10.
type Comparison struct {
	Workload     string
	Procs        int
	Topology     string
	Conc         int
	CommFraction float64 // Figure 9 calibration used for ExecTime
	Rows         []Row
}

// Compare maps w onto t with every mapper (the first is the normalization
// baseline, conventionally the machine default) and simulates communication
// and execution time. Mapper failures are recorded per row rather than
// aborting the comparison.
func Compare(w *Workload, t *Torus, conc int, ms []ProcMapper, model Model) (*Comparison, error) {
	return CompareCtx(context.Background(), w, t, conc, ms, model)
}

// CompareCtx is Compare under a context. Mappers implementing CtxProcMapper
// (RAHTM's Mapper among them) receive ctx and can degrade or abort; the
// rest run as usual. Hard cancellation aborts the comparison between
// mappers with ctx.Err(); deadline expiry lets it finish, with
// context-aware mappers returning degraded results.
func CompareCtx(ctx context.Context, w *Workload, t *Torus, conc int, ms []ProcMapper, model Model) (*Comparison, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("rahtm: no mappers to compare")
	}
	cmp := &Comparison{
		Workload:     w.Name,
		Procs:        w.Procs(),
		Topology:     t.String(),
		Conc:         conc,
		CommFraction: w.CommFraction,
	}
	var cal netsim.Calibration
	for i, m := range ms {
		if err := ctx.Err(); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		row := Row{Mapper: m.Name()}
		start := time.Now()
		var mp Mapping
		var err error
		if cm, ok := m.(CtxProcMapper); ok {
			mp, err = cm.MapProcsCtx(ctx, w, t, conc)
		} else {
			mp, err = m.MapProcs(w, t, conc)
		}
		row.MapTime = time.Since(start)
		if err != nil {
			row.Err = err.Error()
			cmp.Rows = append(cmp.Rows, row)
			if i == 0 {
				return nil, fmt.Errorf("rahtm: baseline mapper %s failed: %w", m.Name(), err)
			}
			continue
		}
		rep, err := CommTime(t, w.Graph, mp, model)
		if err != nil {
			row.Err = err.Error()
			cmp.Rows = append(cmp.Rows, row)
			continue
		}
		row.MCL = rep.MCL
		row.CommTime = rep.Time
		row.HopBytes = HopBytes(t, w.Graph, mp)
		if i == 0 {
			cal, err = netsim.Calibrate(rep.Time, w.CommFraction)
			if err != nil {
				return nil, fmt.Errorf("rahtm: calibration: %w", err)
			}
		}
		row.ExecTime = cal.ExecTime(rep.Time)
		cmp.Rows = append(cmp.Rows, row)
	}
	base := cmp.Rows[0]
	for i := range cmp.Rows {
		r := &cmp.Rows[i]
		if r.Err != "" {
			continue
		}
		if base.CommTime > 0 {
			r.RelComm = r.CommTime / base.CommTime
		}
		if base.ExecTime > 0 {
			r.RelExec = r.ExecTime / base.ExecTime
		}
	}
	return cmp, nil
}

// CompareSuite runs Compare over several workloads and appends a geometric
// mean pseudo-comparison, mirroring the extra bar cluster of Figures 8/10.
func CompareSuite(ws []*Workload, t *Torus, conc int, ms []ProcMapper, model Model) ([]*Comparison, error) {
	return CompareSuiteCtx(context.Background(), ws, t, conc, ms, model)
}

// CompareSuiteCtx is CompareSuite under a context, with CompareCtx's
// cancellation semantics applied per workload.
func CompareSuiteCtx(ctx context.Context, ws []*Workload, t *Torus, conc int, ms []ProcMapper, model Model) ([]*Comparison, error) {
	var out []*Comparison
	for _, w := range ws {
		c, err := CompareCtx(ctx, w, t, conc, ms, model)
		if err != nil {
			return nil, fmt.Errorf("rahtm: %s: %w", w.Name, err)
		}
		out = append(out, c)
	}
	out = append(out, GeoMean(out))
	return out, nil
}

// GeoMean aggregates relative communication/execution times across
// comparisons by geometric mean (per mapper, skipping failures).
func GeoMean(cs []*Comparison) *Comparison {
	if len(cs) == 0 {
		return &Comparison{Workload: "geomean"}
	}
	agg := &Comparison{Workload: "geomean", Topology: cs[0].Topology, Conc: cs[0].Conc}
	nMap := len(cs[0].Rows)
	for i := 0; i < nMap; i++ {
		row := Row{Mapper: cs[0].Rows[i].Mapper}
		logComm, logExec := 0.0, 0.0
		n := 0
		for _, c := range cs {
			if i >= len(c.Rows) || c.Rows[i].Err != "" || c.Rows[i].RelComm <= 0 {
				continue
			}
			logComm += math.Log(c.Rows[i].RelComm)
			logExec += math.Log(c.Rows[i].RelExec)
			n++
		}
		if n > 0 {
			row.RelComm = math.Exp(logComm / float64(n))
			row.RelExec = math.Exp(logExec / float64(n))
		} else {
			row.Err = "no successful runs"
		}
		agg.Rows = append(agg.Rows, row)
	}
	return agg
}

// WriteTable renders comparisons as a Figure 8/10-style text table. mode
// selects the reported column: "exec" (Figure 8), "comm" (Figure 10), or
// "mcl".
func WriteTable(w io.Writer, cs []*Comparison, mode string) error {
	if len(cs) == 0 {
		return nil
	}
	var header string
	switch mode {
	case "exec":
		header = "relative execution time vs baseline (Figure 8)"
	case "comm":
		header = "relative communication time vs baseline (Figure 10)"
	case "mcl":
		header = "maximum channel load (bytes/iteration)"
	default:
		return fmt.Errorf("rahtm: unknown table mode %q", mode)
	}
	fmt.Fprintf(w, "%s\n", header)
	fmt.Fprintf(w, "%-14s", "mapper")
	for _, c := range cs {
		fmt.Fprintf(w, " %12s", c.Workload)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 14+13*len(cs)))
	for i := range cs[0].Rows {
		fmt.Fprintf(w, "%-14s", cs[0].Rows[i].Mapper)
		for _, c := range cs {
			if i >= len(c.Rows) {
				fmt.Fprintf(w, " %12s", "-")
				continue
			}
			r := c.Rows[i]
			if r.Err != "" {
				fmt.Fprintf(w, " %12s", "error")
				continue
			}
			switch mode {
			case "exec":
				fmt.Fprintf(w, " %11.1f%%", 100*(r.RelExec-1))
			case "comm":
				fmt.Fprintf(w, " %11.1f%%", 100*(r.RelComm-1))
			case "mcl":
				fmt.Fprintf(w, " %12.3g", r.MCL)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// CommFractionTable renders the Figure 9 analogue: the communication and
// computation share of execution per workload under the baseline mapper.
func CommFractionTable(w io.Writer, ws []*Workload, t *Torus, conc int, baseline ProcMapper, model Model) error {
	fmt.Fprintln(w, "communication vs computation fraction (Figure 9)")
	fmt.Fprintf(w, "%-10s %14s %14s\n", "benchmark", "comm fraction", "comp fraction")
	for _, wl := range ws {
		m, err := baseline.MapProcs(wl, t, conc)
		if err != nil {
			return err
		}
		rep, err := CommTime(t, wl.Graph, m, model)
		if err != nil {
			return err
		}
		cal, err := netsim.Calibrate(rep.Time, wl.CommFraction)
		if err != nil {
			return err
		}
		f := cal.CommFraction(rep.Time)
		fmt.Fprintf(w, "%-10s %13.1f%% %13.1f%%\n", wl.Name, 100*f, 100*(1-f))
	}
	return nil
}
