package rahtm

import (
	"strings"
	"testing"
)

func TestAddCollectiveFacade(t *testing.T) {
	g := NewGraph(8)
	if err := AddCollective(g, AllReduceRecursiveDoubling, nil, 100); err != nil {
		t.Fatal(err)
	}
	if g.TotalVolume() != 8*3*100 { // 8 procs x log2(8) stages x msg
		t.Fatalf("volume = %v", g.TotalVolume())
	}
	if err := AddCollective(g, "bogus", nil, 1); err == nil {
		t.Fatal("unknown op should fail")
	}
}

func TestCollectiveOpsListed(t *testing.T) {
	ops := CollectiveOps()
	if len(ops) < 8 {
		t.Fatalf("only %d collective ops", len(ops))
	}
}

func TestAllReduceJobMappable(t *testing.T) {
	tp := NewTorus(4, 4)
	w, err := AllReduceJob(16, 1000, AllReduceRing)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Mapper{}.MapProcs(w, tp, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A ring embeds with low contention; RAHTM should not lose to random.
	rnd, err := NewRandom(3).MapProcs(w, tp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if MCL(tp, w.Graph, m) > MCL(tp, w.Graph, rnd) {
		t.Fatalf("RAHTM %v worse than random %v on a ring", MCL(tp, w.Graph, m), MCL(tp, w.Graph, rnd))
	}
}

func TestParseProfileFacade(t *testing.T) {
	in := "procs 4\np2p 0 1 10\ncoll allreduce-ring 8 all\n"
	p, err := ParseProfile(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	g, err := p.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.Traffic(0, 1) <= 10 {
		t.Fatalf("profile graph wrong: N=%d t01=%v", g.N(), g.Traffic(0, 1))
	}
	back := ProfileFromGraph(g)
	if back.Procs != 4 {
		t.Fatal("round trip lost process count")
	}
}

func TestOptimalSplitMCLFacade(t *testing.T) {
	tp := NewMesh(2, 2)
	g := NewGraph(4)
	g.AddTraffic(0, 3, 4)
	mcl, rt, err := OptimalSplitMCL(tp, g, Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	// The diagonal flow splits 2/2 optimally.
	if mcl > 2+1e-6 {
		t.Fatalf("optimal MCL = %v, want 2", mcl)
	}
	if err := rt.Conserved(1e-6); err != nil {
		t.Fatal(err)
	}
	// The LP never does worse than the uniform split.
	if uniform := MCL(tp, g, Identity(4)); mcl > uniform+1e-9 {
		t.Fatalf("LP %v worse than uniform %v", mcl, uniform)
	}
}

func TestPacketSimulateFacadeAgreesWithMCLOrdering(t *testing.T) {
	tp := NewTorus(4, 4)
	w := Halo2D(4, 4, 40)
	good := Identity(16)
	bad, err := NewRandom(11).MapProcs(w, tp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if MCL(tp, w.Graph, bad) <= MCL(tp, w.Graph, good) {
		t.Skip("random mapping happened to be good; nothing to validate")
	}
	cfg := PacketSimConfig{Seed: 1, InjectionRate: 64}
	rg, err := PacketSimulate(tp, w.Graph, good, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := PacketSimulate(tp, w.Graph, bad, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rg.Cycles >= rb.Cycles {
		t.Fatalf("packet sim contradicts MCL: good %d cycles, bad %d", rg.Cycles, rb.Cycles)
	}
}

func TestWorkloadWithCollective(t *testing.T) {
	w, err := CG(16)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := w.WithCollective(AllReduceRecursiveDoubling, 50)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Graph.TotalVolume() <= w.Graph.TotalVolume() {
		t.Fatal("collective added no volume")
	}
	if w2.Name == w.Name {
		t.Fatal("derived workload should be renamed")
	}
	// Row collectives stay within rows.
	w3, err := w.WithRowCollectives(AllReduceRing, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Ring all-reduce within row 0 adds traffic 0->1 but nothing 0->4.
	if w3.Graph.Traffic(0, 4) != w.Graph.Traffic(0, 4) {
		t.Fatal("row collective leaked across rows")
	}
}
