package rahtm

// Telemetry surface: the metrics registry, span timeline recorder, live
// progress tracker, HTTP endpoint, and end-of-run report implemented in
// internal/telemetry. Counters are process-wide and always on (the hot
// paths batch and stripe their updates; overhead is within 2% of pipeline
// wall time — see DESIGN.md §8); spans and progress are only collected when
// a SpanRecorder / ProgressTracker observer is attached to the pipeline,
// typically composed with TeeObservers.

import (
	"io"

	"rahtm/internal/core"
	"rahtm/internal/obs"
	"rahtm/internal/telemetry"
)

type (
	// PhaseStats reports where pipeline time went (PipelineResult.Stats).
	PhaseStats = core.PhaseStats
	// SpanRecorder is an Observer that records every scheduler job
	// (representative solves, sibling fan-outs, merges, phase envelopes)
	// as a timed span, exportable as JSONL or a Chrome trace-event file.
	SpanRecorder = telemetry.Recorder
	// Span is one timed unit of recorded pipeline work.
	Span = telemetry.Span
	// ProgressTracker is an Observer that maintains a live Progress view.
	ProgressTracker = telemetry.ProgressTracker
	// Progress is a point-in-time view of a running pipeline.
	Progress = telemetry.Progress
	// MetricsSnapshot is a point-in-time view of the process-wide metrics
	// registry; Sub computes per-run deltas of the cumulative counters.
	MetricsSnapshot = telemetry.Snapshot
	// MetricsServer is a live telemetry HTTP endpoint (expvar + /metrics).
	MetricsServer = telemetry.Server
	// PhaseTime is one row of the end-of-run telemetry report.
	PhaseTime = telemetry.PhaseTime
	// Scope is a request-local telemetry scope: a trace ID plus a private
	// metrics registry the solver layers write into when the scope rides
	// the solve context. Solve folds the scope's counters back into the
	// process-wide registry on exit and reports the per-request delta in
	// Result.Metrics.
	Scope = telemetry.Scope
)

var (
	// NewSpanRecorder returns an empty span recorder (timeline zero = now).
	NewSpanRecorder = telemetry.NewRecorder
	// NewProgressTracker returns an empty progress tracker.
	NewProgressTracker = telemetry.NewProgressTracker
	// NewScope builds a request-local telemetry scope; an empty trace ID
	// draws a fresh random one.
	NewScope = telemetry.NewScope
	// WithScope attaches a scope to a context for Solve to pick up.
	WithScope = telemetry.WithScope
	// ScopeFrom retrieves the scope carried by a context (nil when absent).
	ScopeFrom = telemetry.ScopeFrom
	// NewTraceID draws a 16-hex-character random trace identifier.
	NewTraceID = telemetry.NewTraceID
)

// Metrics returns a snapshot of the process-wide metrics registry
// (stencil-cache hits/misses, sibling-reuse counts, simplex pivots, MILP
// nodes, anneal acceptance, beam pruning).
func Metrics() MetricsSnapshot { return telemetry.Default.Snapshot() }

// ServeMetrics starts a live telemetry endpoint on addr serving expvar JSON
// (/debug/vars) and a combined progress+metrics snapshot (/metrics).
// progress supplies the live view (typically ProgressTracker.Snapshot); nil
// serves metrics only. Close the returned server when done.
func ServeMetrics(addr string, progress func() Progress) (*MetricsServer, error) {
	return telemetry.Serve(addr, nil, progress)
}

// PhaseTimes converts pipeline PhaseStats into the per-phase rows of the
// telemetry report. The jobs columns count committed subproblems and
// merges (sibling-reuse copies included).
func PhaseTimes(s PhaseStats) []PhaseTime {
	return []PhaseTime{
		{Name: obs.PhaseCluster, Wall: s.ClusterTime},
		{Name: obs.PhaseMap, Wall: s.MapTime, Work: s.MapWorkTime, Jobs: s.Subproblems},
		{Name: obs.PhaseMerge, Wall: s.MergeTime, Work: s.MergeWorkTime, Jobs: s.Merges},
	}
}

// WriteTelemetryReport prints the end-of-run report table: per-phase wall
// time, effective parallelism, cache hit rates and solver effort from the
// process-wide registry. A nil stats prints the counters-only form (no
// phase table), which is what trace-driven tools use.
func WriteTelemetryReport(w io.Writer, stats *PhaseStats) error {
	if stats == nil {
		return telemetry.WriteReport(w, 0, nil, telemetry.Default.Snapshot())
	}
	return telemetry.WriteReport(w, stats.Parallelism, PhaseTimes(*stats), telemetry.Default.Snapshot())
}
