package rahtm

// Benchmarks for the §VI extensions and the remaining ablations.

import (
	"fmt"
	"testing"

	"rahtm/internal/merge"
	"rahtm/internal/packetsim"
	"rahtm/internal/topology"
)

// BenchmarkAblationReposition compares Phase 3 with and without the
// repositioning degree of freedom (children free to occupy any cube
// position instead of their Phase 2 pseudo-pin).
func BenchmarkAblationReposition(b *testing.B) {
	t := NewTorus(4, 4)
	w := Transpose(4, 10)
	for _, reposition := range []bool{false, true} {
		b.Run(fmt.Sprintf("reposition=%v", reposition), func(b *testing.B) {
			var mcl float64
			for i := 0; i < b.N; i++ {
				m := Mapper{}
				m.Merge = merge.Config{Reposition: reposition}
				mp, err := m.MapProcs(w, t, 1)
				if err != nil {
					b.Fatal(err)
				}
				mcl = MCL(t, w.Graph, mp)
			}
			b.ReportMetric(mcl, "MCL")
		})
	}
}

// BenchmarkScalingStudy measures the offline mapping cost as the process
// count grows (the §V-B scaling discussion): 64 -> 256 -> 1024 processes.
func BenchmarkScalingStudy(b *testing.B) {
	cases := []struct {
		topo  *Torus
		procs int
		conc  int
	}{
		{NewTorus(4, 4), 64, 4},
		{NewTorus(4, 4, 4), 256, 4},
		{NewTorus(4, 4, 4, 4), 1024, 4},
	}
	for _, c := range cases {
		b.Run(fmt.Sprintf("procs=%d", c.procs), func(b *testing.B) {
			w, err := CG(c.procs)
			if err != nil {
				b.Fatal(err)
			}
			m := Mapper{}
			// Keep the largest case in seconds, like the bench default.
			if c.procs >= 1024 {
				m.Merge.BeamWidth = 16
				m.Merge.ChildCandidates = 2
				m.Merge.MaxOrientations = 96
			}
			var res *PipelineResult
			for i := 0; i < b.N; i++ {
				res, err = m.Pipeline(w, c.topo, c.conc)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Stats.MapTime.Milliseconds()+res.Stats.MergeTime.Milliseconds()), "mapping-ms")
			b.ReportMetric(res.MCL, "MCL")
		})
	}
}

// BenchmarkPacketSimValidation runs the packet-level simulator on the CG
// pattern under the default and RAHTM mappings, reporting completion
// cycles — the non-analytic confirmation of Figure 10's ordering.
func BenchmarkPacketSimValidation(b *testing.B) {
	t := NewTorus(4, 4)
	w, err := CG(64)
	if err != nil {
		b.Fatal(err)
	}
	def, err := DefaultMapper(t).MapProcs(w, t, 4)
	if err != nil {
		b.Fatal(err)
	}
	opt, err := (Mapper{}).MapProcs(w, t, 4)
	if err != nil {
		b.Fatal(err)
	}
	cfg := packetsim.Config{Seed: 1, InjectionRate: 64, PacketBytes: 10}
	for _, c := range []struct {
		name string
		m    topology.Mapping
	}{{"default", def}, {"RAHTM", opt}} {
		b.Run(c.name, func(b *testing.B) {
			var cycles int
			for i := 0; i < b.N; i++ {
				res, err := PacketSimulate(t, w.Graph, c.m, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkFatTreeMapping measures the fat-tree variant's mapping cost and
// quality.
func BenchmarkFatTreeMapping(b *testing.B) {
	ft, err := NewFatTree(4, 3)
	if err != nil {
		b.Fatal(err)
	}
	w := Halo2D(8, 8, 10)
	var mcl float64
	for i := 0; i < b.N; i++ {
		m, err := ft.Map(w.Graph, w.Grid)
		if err != nil {
			b.Fatal(err)
		}
		mcl, err = ft.SwitchMCL(w.Graph, m, FatTreeECMP)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mcl, "switch-MCL")
}

// BenchmarkDragonflyMapping measures the dragonfly variant.
func BenchmarkDragonflyMapping(b *testing.B) {
	df, err := NewDragonfly(4, 4, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	w := Halo2D(8, 8, 10)
	var mcl float64
	for i := 0; i < b.N; i++ {
		m, err := df.Map(w.Graph, w.Grid)
		if err != nil {
			b.Fatal(err)
		}
		mcl, err = df.MCL(w.Graph, m, DragonflyMinimal)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mcl, "MCL")
}

// BenchmarkAblationClustering compares tiling clustering (the paper's
// choice, §III-B: simple tiling "preserved the structure of the
// communication pattern") against heavy-edge greedy clustering in the full
// pipeline.
func BenchmarkAblationClustering(b *testing.B) {
	t := NewTorus(4, 4)
	w, err := BT(64)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []struct {
		name string
		grid []int
	}{{"tiling", w.Grid}, {"greedy", nil}} {
		b.Run(c.name, func(b *testing.B) {
			wc := *w
			wc.Grid = c.grid
			var mcl float64
			for i := 0; i < b.N; i++ {
				mp, err := (Mapper{}).MapProcs(&wc, t, 4)
				if err != nil {
					b.Fatal(err)
				}
				mcl = MCL(t, w.Graph, mp)
			}
			b.ReportMetric(mcl, "MCL")
		})
	}
}

// BenchmarkCollectiveExpansion measures profile/collective expansion cost.
func BenchmarkCollectiveExpansion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := NewGraph(1024)
		if err := AddCollective(g, AllReduceRecursiveDoubling, nil, 100); err != nil {
			b.Fatal(err)
		}
		if err := AddCollective(g, AllGatherDissemination, nil, 10); err != nil {
			b.Fatal(err)
		}
	}
}
