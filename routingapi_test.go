package rahtm

import (
	"math"
	"testing"
)

func TestChannelLoadsFacade(t *testing.T) {
	tp := NewTorus(4, 4)
	w := Halo2D(4, 4, 10)
	m := Identity(16)
	loads := ChannelLoads(tp, w.Graph, m, MinimalAdaptive{})
	if len(loads) != tp.NumChannels() {
		t.Fatalf("got %d channel loads, want %d", len(loads), tp.NumChannels())
	}
	stats := LoadStatsOf(tp, loads)
	if math.Abs(stats.MCL-MCL(tp, w.Graph, m)) > 1e-12 {
		t.Fatalf("LoadStatsOf MCL %v != MCL() %v", stats.MCL, MCL(tp, w.Graph, m))
	}
	if stats.Total <= 0 || stats.NumUsed == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// Dimension-order routing concentrates load differently but moves the
	// same total volume.
	dor := ChannelLoads(tp, w.Graph, m, DimOrder{Order: []int{0, 1}})
	sum := func(xs []float64) (s float64) {
		for _, x := range xs {
			s += x
		}
		return
	}
	if math.Abs(sum(dor)-sum(loads)) > 1e-9 {
		t.Fatalf("DOR total %v != minimal-adaptive total %v", sum(dor), sum(loads))
	}
}
