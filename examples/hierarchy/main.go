// hierarchy traces RAHTM's three phases on the paper's §III running
// example: a 16-process communication graph mapped onto a 4x4 torus
// (Figures 3-7), printing what each phase produced.
package main

import (
	"fmt"
	"log"

	"rahtm"
)

func main() {
	// The running example: 16 processes with 2-D nearest-neighbor
	// communication (the structure of Figure 3's example graph).
	w := rahtm.Halo2D(4, 4, 10)
	t := rahtm.NewTorus(4, 4)

	fmt.Printf("mapping %d processes onto %s\n\n", w.Procs(), t)

	res, err := (rahtm.Mapper{}).Pipeline(w, t, 1)
	if err != nil {
		log.Fatal(err)
	}

	s := res.Stats
	fmt.Println("Phase 1 — clustering (Figures 3-4)")
	fmt.Printf("  tile shapes per level : %v\n", s.TileShapes)
	fmt.Printf("  volume made local     : %.1f%%\n", 100*s.ClusterQuality)
	fmt.Printf("  time                  : %v\n\n", s.ClusterTime)

	fmt.Println("Phase 2 — hierarchical cube mapping (Figures 5-6)")
	fmt.Printf("  subproblems solved    : %d (%d reused from siblings)\n", s.Subproblems, s.SubproblemsHit)
	fmt.Printf("  leaf solver           : %v\n", s.LeafMethod)
	fmt.Printf("  time                  : %v\n\n", s.MapTime)

	fmt.Println("Phase 3 — rotation merge (Figure 7)")
	fmt.Printf("  merges                : %d (%d reused)\n", s.Merges, s.MergesHit)
	fmt.Printf("  candidates at root    : %d\n", s.CandidatesKept)
	fmt.Printf("  time                  : %v\n\n", s.MergeTime)

	fmt.Printf("final node mapping (task -> node): %v\n", res.NodeMapping)
	fmt.Printf("final MCL: %.4g", res.MCL)

	def, err := rahtm.DefaultMapper(t).MapProcs(w, t, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf(" (default mapping: %.4g)\n", rahtm.MCL(t, w.Graph, def))
}
