// collectives demonstrates the paper's §VI extension: once the
// *implementation* of a collective is known, its point-to-point pattern can
// be mapped like any other traffic — and different implementations of the
// same collective want different mappings.
package main

import (
	"fmt"
	"log"

	"rahtm"
)

func main() {
	t := rahtm.NewTorus(4, 4)
	const procs = 16
	const msg = 1000.0

	impls := []rahtm.CollectiveOp{
		rahtm.AllReduceRing,
		rahtm.AllReduceRecursiveDoubling,
	}

	fmt.Printf("all-reduce of %g bytes/process on %s\n\n", msg, t)
	fmt.Printf("%-28s %12s %12s %12s\n", "implementation", "default MCL", "RAHTM MCL", "improvement")
	for _, op := range impls {
		w, err := rahtm.AllReduceJob(procs, msg, op)
		if err != nil {
			log.Fatal(err)
		}
		def, err := rahtm.DefaultMapper(t).MapProcs(w, t, 1)
		if err != nil {
			log.Fatal(err)
		}
		opt, err := rahtm.Mapper{}.MapProcs(w, t, 1)
		if err != nil {
			log.Fatal(err)
		}
		mclDef := rahtm.MCL(t, w.Graph, def)
		mclOpt := rahtm.MCL(t, w.Graph, opt)
		fmt.Printf("%-28s %12.4g %12.4g %11.1f%%\n", op, mclDef, mclOpt, 100*(1-mclOpt/mclDef))
	}

	// A composite job: CG plus a global all-reduce per iteration — the
	// profile-driven path an MPI tool would feed RAHTM.
	fmt.Println("\ncomposite: CG + allreduce-recursive-doubling")
	w, err := rahtm.CG(procs)
	if err != nil {
		log.Fatal(err)
	}
	w2, err := w.WithCollective(rahtm.AllReduceRecursiveDoubling, 200)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := rahtm.Mapper{}.MapProcs(w2, t, 1)
	if err != nil {
		log.Fatal(err)
	}
	def, err := rahtm.DefaultMapper(t).MapProcs(w2, t, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("default MCL %.4g -> RAHTM MCL %.4g\n",
		rahtm.MCL(t, w2.Graph, def), rahtm.MCL(t, w2.Graph, opt))

	// Validate the win with the packet-level simulator rather than the
	// analytic model.
	cfg := rahtm.PacketSimConfig{Seed: 1, InjectionRate: 64}
	rd, err := rahtm.PacketSimulate(t, w2.Graph, def, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ro, err := rahtm.PacketSimulate(t, w2.Graph, opt, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("packet-level: default %d cycles, RAHTM %d cycles (%.1f%% faster)\n",
		rd.Cycles, ro.Cycles, 100*(1-float64(ro.Cycles)/float64(rd.Cycles)))
}
