// fattree demonstrates the §VI topology extension: RAHTM's divide-and-
// conquer applied to a fat tree, where the leaf-level partitions are
// subtrees and the rotation phase degenerates (the tree is symmetric above
// the leaves), so mapping quality reduces to recursive min-cut clustering.
package main

import (
	"fmt"
	"log"

	"rahtm"
)

func main() {
	ft, err := rahtm.NewFatTree(4, 3) // 64 hosts
	if err != nil {
		log.Fatal(err)
	}

	// An 8x8 halo job: plenty of locality for the mapper to exploit.
	w := rahtm.Halo2D(8, 8, 10)

	identity := rahtm.Identity(64)
	mapped, err := ft.Map(w.Graph, w.Grid)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s on %s\n\n", w.Name, ft)
	fmt.Printf("%-12s %16s %16s\n", "mapping", "ECMP switch MCL", "d-mod-k MCL")
	for _, c := range []struct {
		name string
		m    rahtm.Mapping
	}{{"identity", identity}, {"RAHTM-tree", mapped}} {
		ecmp, err := ft.SwitchMCL(w.Graph, c.m, rahtm.FatTreeECMP)
		if err != nil {
			log.Fatal(err)
		}
		dmodk, err := ft.SwitchMCL(w.Graph, c.m, rahtm.FatTreeDModK)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %16.4g %16.4g\n", c.name, ecmp, dmodk)
	}

	e0, _ := ft.SwitchMCL(w.Graph, identity, rahtm.FatTreeECMP)
	e1, _ := ft.SwitchMCL(w.Graph, mapped, rahtm.FatTreeECMP)
	fmt.Printf("\nclustered mapping cuts the hottest switch link by %.1f%%\n", 100*(1-e1/e0))
}
