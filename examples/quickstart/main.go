// Quickstart: map a 2-D halo-exchange job onto a small torus with RAHTM and
// compare the result against the machine's default mapping.
package main

import (
	"fmt"
	"log"

	"rahtm"
)

func main() {
	// A 16-node 4x4 torus — the scale of the paper's §III walk-through.
	t := rahtm.NewTorus(4, 4)

	// 64 MPI processes doing a periodic 8x8 halo exchange, 4 per node.
	w := rahtm.Halo2D(8, 8, 10)
	const conc = 4

	// The machine default: ABT dimension order, cores fastest.
	def := rahtm.DefaultMapper(t)
	defMap, err := def.MapProcs(w, t, conc)
	if err != nil {
		log.Fatal(err)
	}

	// RAHTM: clustering + hierarchical optimal mapping + rotation merge.
	rahtmMap, err := rahtm.Mapper{}.MapProcs(w, t, conc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s on %s, %d processes per node\n\n", w.Name, t, conc)
	for _, c := range []struct {
		name string
		m    rahtm.Mapping
	}{{def.Name(), defMap}, {"RAHTM", rahtmMap}} {
		rep := rahtm.Measure(t, w.Graph, c.m)
		comm, err := rahtm.CommTime(t, w.Graph, c.m, rahtm.Model{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %s\n         comm %.3gs/iter\n", c.name, rep, comm.Time)
	}

	base := rahtm.MCL(t, w.Graph, defMap)
	opt := rahtm.MCL(t, w.Graph, rahtmMap)
	fmt.Printf("\nRAHTM cuts the maximum channel load by %.1f%%\n", 100*(1-opt/base))
}
