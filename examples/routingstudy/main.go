// routingstudy reproduces the paper's Figure 1 argument numerically: on a
// 2x2 mesh with minimal adaptive routing, the hop-bytes metric and the
// maximum channel load (MCL) metric prefer *different* mappings for a
// communication graph with one heavy pair — and MCL is the one that
// predicts throughput.
package main

import (
	"fmt"
	"log"

	"rahtm"
)

func main() {
	// Figure 1(a): four processes; P0-P1 exchange heavily, the rest
	// lightly.
	g := rahtm.NewGraph(4)
	g.AddTraffic(0, 1, 10)
	g.AddTraffic(1, 2, 1)
	g.AddTraffic(2, 3, 1)
	g.AddTraffic(3, 0, 1)

	t := rahtm.NewMesh(2, 2)

	// Figure 1(b): the hop-bytes-optimal mapping keeps the heavy pair on
	// adjacent nodes.
	adjacent := rahtm.Mapping{0, 1, 3, 2}
	// Figure 1(c): the MCL-optimal mapping puts the heavy pair on the
	// diagonal so minimal adaptive routing splits it over two paths.
	diagonal := rahtm.Mapping{0, 3, 1, 2}

	fmt.Println("Figure 1: routing awareness changes the best mapping")
	fmt.Println("communication graph: P0-P1 weight 10; ring edges weight 1")
	fmt.Println()
	for _, c := range []struct {
		name string
		m    rahtm.Mapping
	}{{"adjacent (hop-bytes optimal)", adjacent}, {"diagonal (MCL optimal)", diagonal}} {
		hb := rahtm.HopBytes(t, g, c.m)
		mcl := rahtm.MCL(t, g, c.m)
		comm, err := rahtm.CommTime(t, g, c.m, rahtm.Model{LinkBandwidth: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-30s hop-bytes=%-5.4g MCL=%-5.4g comm-time=%.4g\n", c.name, hb, mcl, comm.Time)
	}

	fmt.Println()
	fmt.Println("hop-bytes prefers the adjacent mapping, but under minimal")
	fmt.Println("adaptive routing the diagonal mapping halves the hottest link —")
	fmt.Println("exactly the effect RAHTM's MCL objective captures.")

	// And indeed RAHTM's own leaf solver (the Table II MILP family)
	// discovers the diagonal placement by itself:
	w := &rahtm.Workload{Name: "figure1", Graph: g, CommFraction: 0.5}
	m, err := rahtm.Mapper{}.MapProcs(w, rahtm.NewMesh(2, 2), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRAHTM's placement: %v (heavy pair at distance %d)\n",
		m, rahtm.NewMesh(2, 2).MinDistance(m[0], m[1]))
}
