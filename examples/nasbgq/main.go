// nasbgq reproduces the paper's Mira Blue Gene/Q evaluation at laptop scale:
// the NAS BT, SP and CG benchmarks mapped by the full comparison set
// (dimension permutations, Hilbert, RHT, RAHTM) onto a torus, reporting the
// Figure 9, Figure 10 and Figure 8 tables.
//
// Run with -full for the paper's 512-node 4x4x4x4x2 configuration with
// 16,384 processes (minutes of mapping time, like the paper's offline runs).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"rahtm"
)

func main() {
	full := flag.Bool("full", false, "run the paper-scale 4x4x4x4x2 / 16K-process configuration")
	flag.Parse()

	// Laptop-scale default: 64-node 3-D torus, 256 processes, 4 per node.
	topo := rahtm.NewTorus(4, 4, 4)
	procs, conc := 256, 4
	mapper := rahtm.Mapper{}
	if *full {
		// The Mira partition of §IV: 4x4x4x4x2 torus, concentration 32.
		topo = rahtm.NewTorus(4, 4, 4, 4, 2)
		procs, conc = 16384, 32
		// Trim the beam search so the offline mapping stays in minutes.
		mapper.Merge.BeamWidth = 16
		mapper.Merge.ChildCandidates = 2
		mapper.Merge.MaxOrientations = 96
		mapper.Merge.MaxPairEvals = 256
		mapper.Leaf.AnnealIters = 10000
	}

	ws, err := rahtm.Suite(procs)
	if err != nil {
		log.Fatal(err)
	}
	ms := rahtm.StandardMappers(topo)
	ms[len(ms)-1] = mapper

	fmt.Printf("NAS benchmarks on %s, %d processes, concentration %d\n\n", topo, procs, conc)

	if err := rahtm.CommFractionTable(os.Stdout, ws, topo, conc, ms[0], rahtm.Model{}); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	start := time.Now()
	cs, err := rahtm.CompareSuite(ws, topo, conc, ms, rahtm.Model{})
	if err != nil {
		log.Fatal(err)
	}
	if err := rahtm.WriteTable(os.Stdout, cs, "comm"); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := rahtm.WriteTable(os.Stdout, cs, "exec"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotal mapping + simulation time: %v\n", time.Since(start).Round(time.Millisecond))

	// The paper's headline: geometric-mean communication and execution
	// improvements of RAHTM over the default mapping.
	gm := cs[len(cs)-1]
	last := gm.Rows[len(gm.Rows)-1]
	fmt.Printf("RAHTM geomean: communication %+.1f%%, execution %+.1f%% (paper: -20%% / -9%%)\n",
		100*(last.RelComm-1), 100*(last.RelExec-1))
}
