package rahtm

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// recObserver records events for assertions; safe for concurrent use.
type recObserver struct {
	mu          sync.Mutex
	starts      []string
	ends        []string
	subproblems int
	samples     int
	rounds      int
	lpIters     int
}

func (r *recObserver) PhaseStart(phase string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.starts = append(r.starts, phase)
}

func (r *recObserver) PhaseEnd(phase string, _ time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ends = append(r.ends, phase)
}

func (r *recObserver) SubproblemSolved(int, string, float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.subproblems++
}

func (r *recObserver) AnnealSample(int, int, float64, float64, float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples++
}

func (r *recObserver) BeamRound(int, int, int, float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rounds++
}

func (r *recObserver) LPIterations(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lpIters += n
}

func TestPipelineCtxAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := Halo2D(8, 8, 10)
	tp := NewTorus(4, 4, 4)
	start := time.Now()
	_, err := Mapper{}.PipelineCtx(ctx, w, tp, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("canceled pipeline still took %v", elapsed)
	}
}

func TestPipelineCtxDeadlineDegrades(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	w, err := CG(64)
	if err != nil {
		t.Fatal(err)
	}
	tp := NewTorus(4, 4, 4)
	res, err := Mapper{}.PipelineCtx(ctx, w, tp, 1)
	if err != nil {
		t.Fatalf("expired deadline must degrade, not fail: %v", err)
	}
	if err := res.NodeMapping.Validate(tp.N(), true); err != nil {
		t.Fatalf("degraded mapping invalid: %v", err)
	}
	if len(res.ProcToNode) != w.Procs() {
		t.Fatalf("got %d proc assignments, want %d", len(res.ProcToNode), w.Procs())
	}
	// The full run takes seconds on this configuration (see
	// TestPipelineObserverPhases's larger sibling), so a 20ms budget cannot
	// have completed the full search.
	if !res.Stats.Degraded {
		t.Fatal("Stats.Degraded not set after deadline expiry")
	}
}

func TestPipelineCtxCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	w, err := CG(64)
	if err != nil {
		t.Fatal(err)
	}
	tp := NewTorus(4, 4, 4)
	errc := make(chan error, 1)
	go func() {
		_, err := Mapper{}.PipelineCtx(ctx, w, tp, 1)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		// Either the run was canceled mid-flight, or (rarely, on a fast
		// machine) it completed before the cancel landed.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled or nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pipeline did not return within 10s of cancellation")
	}
}

func TestPipelineObserverPhases(t *testing.T) {
	rec := &recObserver{}
	w := Halo2D(4, 4, 10)
	tp := NewTorus(4, 4)
	res, err := Mapper{Observer: rec}.PipelineCtx(context.Background(), w, tp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Degraded {
		t.Fatal("unbudgeted run must not be degraded")
	}
	for _, phase := range []string{PhaseCluster, PhaseMap, PhaseMerge} {
		if !containsStr(rec.starts, phase) {
			t.Fatalf("no PhaseStart(%q); starts = %v", phase, rec.starts)
		}
		if !containsStr(rec.ends, phase) {
			t.Fatalf("no PhaseEnd(%q); ends = %v", phase, rec.ends)
		}
	}
	if rec.subproblems == 0 {
		t.Fatal("no SubproblemSolved events")
	}
	if rec.rounds == 0 {
		t.Fatal("no BeamRound events")
	}
}

func TestLogObserverWrites(t *testing.T) {
	var sb strings.Builder
	o := NewLogObserver(&sb)
	w := Halo2D(4, 4, 10)
	tp := NewTorus(4, 4)
	if _, err := (Mapper{Observer: o}).PipelineCtx(context.Background(), w, tp, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"phase cluster start", "phase map start", "phase merge start", "done in"} {
		if !strings.Contains(out, want) {
			t.Fatalf("log output missing %q:\n%s", want, out)
		}
	}
}

func TestCompareCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := Halo2D(4, 4, 10)
	tp := NewTorus(4, 4)
	_, err := CompareCtx(ctx, w, tp, 1, StandardMappers(tp), Model{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapperImplementsCtxProcMapper(t *testing.T) {
	var m ProcMapper = Mapper{}
	if _, ok := m.(CtxProcMapper); !ok {
		t.Fatal("Mapper must implement CtxProcMapper")
	}
}

func TestStandardPermutationsDeduped(t *testing.T) {
	for _, tc := range []struct {
		topo *Torus
		want []string
	}{
		{NewTorus(8), []string{"AT", "TA"}},
		{NewTorus(4, 4), []string{"ABT", "TAB"}},
		{NewTorus(4, 4, 4), []string{"ABCT", "TABC", "ACBT"}},
	} {
		ps := StandardPermutations(tc.topo)
		if len(ps) != len(tc.want) {
			t.Fatalf("%v: got %d permutations, want %v", tc.topo, len(ps), tc.want)
		}
		for i, p := range ps {
			if p.Name() != tc.want[i] {
				t.Fatalf("%v: permutation %d = %q, want %q", tc.topo, i, p.Name(), tc.want[i])
			}
		}
	}
}

func containsStr(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
