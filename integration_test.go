package rahtm

// End-to-end integration tests exercising the full toolchain the way a
// user would: profile ingestion -> mapping -> map-file round trip ->
// analytic simulation -> packet-level validation.

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestEndToEndProfileToValidatedMapping(t *testing.T) {
	// 1. A communication profile with point-to-point and collective parts,
	// as an MPI profiling tool would emit it.
	profile := `
procs 16
# iterative stencil phase
p2p 0 1 400 2
p2p 1 2 400 2
p2p 2 3 400 2
coll allreduce-recursive-doubling 300 all
coll broadcast-binomial 100 0 1 2 3
`
	p, err := ParseProfile(strings.NewReader(profile))
	if err != nil {
		t.Fatal(err)
	}
	g, err := p.Graph()
	if err != nil {
		t.Fatal(err)
	}

	// 2. Map with RAHTM onto a 4x4 torus.
	tp := NewTorus(4, 4)
	w := &Workload{Name: "profiled", Graph: g, CommFraction: 0.5}
	mapping, err := Mapper{}.MapProcs(w, tp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := mapping.Validate(tp.N(), true); err != nil {
		t.Fatal(err)
	}

	// 3. Map-file round trip in both formats.
	var ranks bytes.Buffer
	if err := WriteMapFileRanks(&ranks, mapping, "integration"); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMapFile(&ranks, tp)
	if err != nil {
		t.Fatal(err)
	}
	var coords bytes.Buffer
	if err := WriteMapFileCoords(&coords, tp, mapping, "integration"); err != nil {
		t.Fatal(err)
	}
	back2, err := ReadMapFile(&coords, tp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mapping {
		if back[i] != mapping[i] || back2[i] != mapping[i] {
			t.Fatalf("map file round trip diverged at %d: %d / %d / %d",
				i, mapping[i], back[i], back2[i])
		}
	}

	// 4. The mapping must beat the default under the analytic model...
	def, err := DefaultMapper(tp).MapProcs(w, tp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if MCL(tp, g, mapping) > MCL(tp, g, def)+1e-9 {
		t.Fatalf("RAHTM MCL %v worse than default %v", MCL(tp, g, mapping), MCL(tp, g, def))
	}

	// 5. ...and the packet simulator must agree (or at least not invert a
	// decisive analytic win).
	if MCL(tp, g, def) > 1.3*MCL(tp, g, mapping) {
		cfg := PacketSimConfig{Seed: 7, InjectionRate: 64}
		rOpt, err := PacketSimulate(tp, g, mapping, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rDef, err := PacketSimulate(tp, g, def, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rOpt.Cycles > rDef.Cycles {
			t.Fatalf("packet sim inverted the win: %d vs %d cycles", rOpt.Cycles, rDef.Cycles)
		}
	}
}

func TestEndToEndSuiteConsistency(t *testing.T) {
	// The comparison engine, the metrics facade, and the netsim model must
	// tell one coherent story for the whole suite.
	tp := NewTorus(4, 4)
	ws, err := Suite(64)
	if err != nil {
		t.Fatal(err)
	}
	ms := []ProcMapper{DefaultMapper(tp), NewHilbert(), NewRHT(), NewRecursiveBisection(), Mapper{}}
	cs, err := CompareSuite(ws, tp, 4, ms, Model{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cs[:len(ws)] {
		for _, r := range c.Rows {
			if r.Err != "" {
				t.Fatalf("%s/%s failed: %s", c.Workload, r.Mapper, r.Err)
			}
			// Relative comm must match the MCL ratio when link time
			// dominates; at minimum it must be positive and finite.
			if r.RelComm <= 0 || math.IsInf(r.RelComm, 0) || math.IsNaN(r.RelComm) {
				t.Fatalf("%s/%s bad RelComm %v", c.Workload, r.Mapper, r.RelComm)
			}
		}
		// RAHTM is the last row and must be the best or tied-best mapper.
		rahtmRow := c.Rows[len(c.Rows)-1]
		for _, r := range c.Rows[:len(c.Rows)-1] {
			if rahtmRow.RelComm > r.RelComm+1e-9 {
				t.Fatalf("%s: RAHTM (%v) beaten by %s (%v)", c.Workload, rahtmRow.RelComm, r.Mapper, r.RelComm)
			}
		}
	}
}

func TestEndToEndAllWorkloadGenerators(t *testing.T) {
	// Every generator must produce a mappable workload on a matched torus.
	tp := NewTorus(4, 4)
	spectral, err := Spectral(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	manyToOne, err := ManyToOne(16, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []*Workload{
		Halo2D(4, 4, 1),
		Transpose(4, 2),
		Sweep(4, 4, 2),
		spectral,
		manyToOne,
		Ring(16, 1),
		RandomNeighbors(16, 3, 1, 5),
	}
	for _, w := range cases {
		m, err := Mapper{}.MapProcs(w, tp, 1)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if err := m.Validate(tp.N(), true); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		def, err := DefaultMapper(tp).MapProcs(w, tp, 1)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if MCL(tp, w.Graph, m) > MCL(tp, w.Graph, def)+1e-9 {
			t.Fatalf("%s: RAHTM %v worse than default %v", w.Name,
				MCL(tp, w.Graph, m), MCL(tp, w.Graph, def))
		}
	}
}

func TestEndToEndConcentratedNASRun(t *testing.T) {
	// The headline configuration shape at small scale: each benchmark,
	// concentration > 1, RAHTM vs default, exec time via Figure 9 fractions.
	tp := NewTorus(4, 4)
	for _, name := range []string{"BT", "SP", "CG"} {
		w, err := WorkloadByName(name, 64)
		if err != nil {
			t.Fatal(err)
		}
		cmp, err := Compare(w, tp, 4, []ProcMapper{DefaultMapper(tp), Mapper{}}, Model{})
		if err != nil {
			t.Fatal(err)
		}
		rahtmRow := cmp.Rows[1]
		if rahtmRow.RelComm > 1+1e-9 {
			t.Fatalf("%s: RAHTM relComm %v", name, rahtmRow.RelComm)
		}
		// Amdahl: exec improvement is bounded by the comm fraction.
		if rahtmRow.RelExec < 1-w.CommFraction-1e-9 {
			t.Fatalf("%s: exec improvement %v exceeds the communication share %v",
				name, 1-rahtmRow.RelExec, w.CommFraction)
		}
	}
}

func TestEndToEndOtherTopologies(t *testing.T) {
	// The §VI topology extensions end to end: the same workload, three
	// interconnects, all improved by their RAHTM variant.
	w := Halo2D(8, 8, 10)

	ft, err := NewFatTree(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	fm, err := ft.Map(w.Graph, w.Grid)
	if err != nil {
		t.Fatal(err)
	}
	fOpt, _ := ft.SwitchMCL(w.Graph, fm, FatTreeECMP)
	fID, _ := ft.SwitchMCL(w.Graph, Identity(64), FatTreeECMP)
	if fOpt > fID {
		t.Fatalf("fat tree: mapped %v worse than identity %v", fOpt, fID)
	}

	df, err := NewDragonfly(4, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := df.Map(w.Graph, w.Grid)
	if err != nil {
		t.Fatal(err)
	}
	dOpt, _ := df.MCL(w.Graph, dm, DragonflyMinimal)
	dID, _ := df.MCL(w.Graph, Identity(64), DragonflyMinimal)
	if dOpt > dID {
		t.Fatalf("dragonfly: mapped %v worse than identity %v", dOpt, dID)
	}

	tp := NewTorus(4, 4, 4)
	tm, err := Mapper{}.MapProcs(w, tp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if MCL(tp, w.Graph, tm) > MCL(tp, w.Graph, Identity(64)) {
		t.Fatal("torus: mapped worse than identity")
	}
}

func ExampleMapper_MapProcs() {
	t := NewTorus(2, 2)
	w := Halo2D(2, 2, 10)
	m, err := Mapper{}.MapProcs(w, t, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(m) == t.N())
	// Output: true
}
