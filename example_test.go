package rahtm_test

// Testable examples documenting the public API end to end.

import (
	"fmt"
	"strings"

	"rahtm"
)

// ExampleMCL reproduces the paper's Figure 1 numerically: under minimal
// adaptive routing, the diagonal placement of a heavy pair halves the
// hottest link relative to the adjacent placement that hop-bytes prefers.
func ExampleMCL() {
	g := rahtm.NewGraph(4)
	g.AddTraffic(0, 1, 10)

	t := rahtm.NewMesh(2, 2)
	adjacent := rahtm.Mapping{0, 1, 2, 3}
	diagonal := rahtm.Mapping{0, 3, 1, 2}

	fmt.Printf("adjacent MCL %v, diagonal MCL %v\n",
		rahtm.MCL(t, g, adjacent), rahtm.MCL(t, g, diagonal))
	// Output: adjacent MCL 10, diagonal MCL 5
}

// ExampleCompare runs the Figure 10 engine on one benchmark.
func ExampleCompare() {
	t := rahtm.NewTorus(4, 4)
	w, _ := rahtm.CG(64)
	ms := []rahtm.ProcMapper{rahtm.DefaultMapper(t), rahtm.Mapper{}}
	cmp, err := rahtm.Compare(w, t, 4, ms, rahtm.Model{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("baseline %s, challenger %s: improves=%v\n",
		cmp.Rows[0].Mapper, cmp.Rows[1].Mapper, cmp.Rows[1].RelComm <= 1)
	// Output: baseline ABT, challenger RAHTM: improves=true
}

// ExampleAddCollective expands a collective implementation into mappable
// point-to-point traffic (the paper's §VI extension).
func ExampleAddCollective() {
	g := rahtm.NewGraph(8)
	if err := rahtm.AddCollective(g, rahtm.AllReduceRecursiveDoubling, nil, 100); err != nil {
		panic(err)
	}
	// log2(8) = 3 stages of 100 bytes per process.
	fmt.Println(g.OutVolume(0))
	// Output: 300
}

// ExampleParseProfile ingests an IPM-style communication profile and maps
// it.
func ExampleParseProfile() {
	profile := "procs 4\np2p 0 1 500\ncoll allreduce-ring 100 all\n"
	p, err := rahtm.ParseProfile(strings.NewReader(profile))
	if err != nil {
		panic(err)
	}
	g, err := p.Graph()
	if err != nil {
		panic(err)
	}
	fmt.Println(g.N(), g.Traffic(0, 1) > 500)
	// Output: 4 true
}

// ExampleWorkload_WithCollective composes application and collective
// traffic into one mapping problem.
func ExampleWorkload_WithCollective() {
	w, _ := rahtm.CG(16)
	w2, err := w.WithCollective(rahtm.AllReduceRing, 50)
	if err != nil {
		panic(err)
	}
	fmt.Println(w2.Graph.TotalVolume() > w.Graph.TotalVolume())
	// Output: true
}
