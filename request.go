package rahtm

// The unified Request/Result API: a serializable description of one mapping
// problem, a serializable answer, and a single Solve entry point that both
// library callers and the rahtm-serve daemon (internal/serve) go through.
// The legacy Mapper.MapProcs / Pipeline method pairs are thin wrappers over
// the same path; see DESIGN.md §10.

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"rahtm/internal/core"
	"rahtm/internal/graph"
	"rahtm/internal/mappers"
	"rahtm/internal/metrics"
	"rahtm/internal/routing"
	"rahtm/internal/telemetry"
	"rahtm/internal/topology"
)

// Request describes one mapping problem. The JSON form is the wire format
// of the rahtm-serve daemon; the non-serialized fields are escape hatches
// for library callers that already hold the objects the serialized fields
// describe.
//
// The communication graph comes from exactly one of Workload (a named
// generator: BT, SP, CG, halo2d, halo3d, random), Graph (an inline graph in
// the plain "comm N / src dst vol" text format of ReadGraph), or the
// non-serialized Work field.
type Request struct {
	// Workload names a built-in benchmark generator: BT, SP, CG, halo2d,
	// halo3d, or random. halo2d/halo3d derive their shape from Grid.
	Workload string `json:"workload,omitempty"`
	// Graph is an inline communication graph in the ReadGraph text format,
	// used instead of Workload for application-specific traffic.
	Graph string `json:"graph,omitempty"`
	// Procs is the process count for named workloads (0 = nodes x conc).
	Procs int `json:"procs,omitempty"`
	// Grid is the logical process grid (row-major) for the tiling
	// clusterer and the halo generators.
	Grid []int `json:"grid,omitempty"`

	// Topo is the torus dimension list, e.g. [4,4,4].
	Topo []int `json:"topo,omitempty"`
	// Mesh selects an unwrapped mesh instead of a torus.
	Mesh bool `json:"mesh,omitempty"`
	// Conc is the number of processes per node (0 = 1).
	Conc int `json:"conc,omitempty"`

	// Mapper selects the mapping algorithm by registry name (see
	// MapperByName); empty means "rahtm".
	Mapper string `json:"mapper,omitempty"`
	// DeadlineMS is the solve time budget in milliseconds (0 = none). On
	// expiry RAHTM degrades to its best-so-far valid mapping and the
	// Result is flagged Degraded rather than failing.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Parallelism bounds the scheduler worker goroutines (0 = all CPUs).
	// Results are identical for every setting.
	Parallelism int `json:"parallelism,omitempty"`
	// BeamWidth overrides the Phase 3 beam width (0 = paper default 64).
	// Only meaningful for the rahtm mapper.
	BeamWidth int `json:"beam_width,omitempty"`

	// Work supplies the workload directly, overriding Workload/Graph/
	// Procs/Grid. Library-side only; not serialized.
	Work *Workload `json:"-"`
	// Torus supplies the exact topology (including mixed per-dimension
	// wrap flags), overriding Topo/Mesh. Library-side only; not
	// serialized.
	Torus *Torus `json:"-"`
	// Config supplies a fully configured RAHTM pipeline, overriding
	// Mapper/Parallelism/BeamWidth. Library-side only; not serialized.
	Config *Mapper `json:"-"`
	// Observer receives pipeline trace events. Library-side only; not
	// serialized.
	Observer Observer `json:"-"`

	// Materialization memo (see Materialize).
	work  *Workload
	torus *Torus
}

// Result is the answer to a Request. The JSON form is what the rahtm-serve
// daemon returns; Detail additionally carries the full pipeline output for
// library callers.
type Result struct {
	// Mapping assigns each process rank to a topology node rank.
	Mapping Mapping `json:"mapping"`
	// Mapper is the name of the mapper that produced the mapping.
	Mapper string `json:"mapper"`
	// Workload echoes the workload name.
	Workload string `json:"workload,omitempty"`
	// Topology renders the topology, e.g. "torus(4x4x4)".
	Topology string `json:"topology,omitempty"`
	// MCL is the maximum channel load of the mapping under the
	// minimal-adaptive routing approximation.
	MCL float64 `json:"mcl"`
	// HopBytes is the routing-oblivious hop-bytes metric.
	HopBytes float64 `json:"hop_bytes"`
	// Degraded is set when the deadline expired mid-solve and the mapping
	// is the best found so far rather than the full search result.
	Degraded bool `json:"degraded"`
	// Stats is the RAHTM pipeline phase breakdown (nil for baselines).
	Stats *PhaseStats `json:"stats,omitempty"`
	// WallMS is the solve wall time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// CacheKey is the content-addressed key of the request; set by the
	// serving layer.
	CacheKey string `json:"cache_key,omitempty"`
	// Cached is set by the serving layer when the result came from the
	// content-addressed cache rather than a fresh solve.
	Cached bool `json:"cached,omitempty"`
	// TraceID identifies the solve that produced this result. Filled when
	// the context carried a telemetry scope (the rahtm-serve daemon attaches
	// one per request; library callers can via WithScope).
	TraceID string `json:"trace_id,omitempty"`
	// Metrics holds this request's own counter deltas (stencil cache hits,
	// simplex pivots, MILP nodes, beam candidates, ...) — the per-request
	// slice of what the process-wide Metrics() registry accumulates. Only
	// filled when the context carried a telemetry scope.
	Metrics map[string]int64 `json:"metrics,omitempty"`

	// Detail is the full RAHTM pipeline output (node graph, node-level
	// mapping, ProcTask); nil for baseline mappers. Not serialized.
	Detail *PipelineResult `json:"-"`
}

// ErrUnknownMapper is wrapped by MapperByName for names the registry does
// not know (and that are not permutation specs).
var ErrUnknownMapper = errors.New("unknown mapper")

// MapperFactory builds a ProcMapper for a concrete topology. Factories take
// the topology because some mappers (the machine default, permutation
// baselines) depend on its dimensionality.
type MapperFactory func(t *Torus) ProcMapper

var mapperRegistry = struct {
	sync.RWMutex
	m map[string]MapperFactory
}{m: map[string]MapperFactory{
	"rahtm":     func(*Torus) ProcMapper { return Mapper{} },
	"default":   func(t *Torus) ProcMapper { return mappers.Default(t) },
	"hilbert":   func(*Torus) ProcMapper { return mappers.Hilbert{} },
	"rht":       func(*Torus) ProcMapper { return mappers.RHT{} },
	"greedy":    func(*Torus) ProcMapper { return mappers.GreedyHopBytes{} },
	"random":    func(*Torus) ProcMapper { return mappers.Random{Seed: 1} },
	"bisection": func(*Torus) ProcMapper { return mappers.RecursiveBisection{} },
}}

// permSpecRe matches BG/Q-style dimension-permutation specs such as
// "ABCDET": only letters, at least two of them.
var permSpecRe = regexp.MustCompile(`^[A-Z]{2,}$`)

// RegisterMapper adds (or replaces) a mapper factory under a
// case-insensitive name, making it selectable by Request.Mapper and the
// CLI -mapper flags.
func RegisterMapper(name string, f MapperFactory) {
	if name == "" || f == nil {
		panic("rahtm: RegisterMapper needs a name and a factory")
	}
	mapperRegistry.Lock()
	defer mapperRegistry.Unlock()
	mapperRegistry.m[strings.ToLower(name)] = f
}

// MapperByName resolves a mapper name — a registry entry (rahtm, default,
// hilbert, rht, greedy, random, bisection, plus anything added through
// RegisterMapper) or a dimension-permutation spec such as "ABCDET" — to a
// factory. Unknown names return an error wrapping ErrUnknownMapper.
func MapperByName(name string) (MapperFactory, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	mapperRegistry.RLock()
	f := mapperRegistry.m[key]
	mapperRegistry.RUnlock()
	if f != nil {
		return f, nil
	}
	if spec := strings.ToUpper(key); permSpecRe.MatchString(spec) {
		return func(*Torus) ProcMapper { return mappers.Permutation{Spec: spec} }, nil
	}
	return nil, fmt.Errorf("rahtm: %w %q (have %s, or a permutation spec like ABCDET)",
		ErrUnknownMapper, name, strings.Join(MapperNames(), ", "))
}

// MapperNames returns the sorted registry names (permutation specs are not
// enumerable and therefore not listed).
func MapperNames() []string {
	mapperRegistry.RLock()
	defer mapperRegistry.RUnlock()
	names := make([]string, 0, len(mapperRegistry.m))
	for name := range mapperRegistry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// concOf returns the effective concentration factor.
func (r *Request) concOf() int {
	if r.Conc <= 0 {
		return 1
	}
	return r.Conc
}

// Materialize resolves the request into its workload and topology, building
// them from the serialized fields when the direct Work/Torus fields are
// unset. The result is memoized, so the serving layer can validate and key
// a request without paying for a second parse inside Solve.
func (r *Request) Materialize() (*Workload, *Torus, error) {
	if r.work != nil && r.torus != nil {
		return r.work, r.torus, nil
	}
	t := r.Torus
	if t == nil {
		if len(r.Topo) == 0 {
			return nil, nil, fmt.Errorf("rahtm: request needs a topology (topo)")
		}
		for i, k := range r.Topo {
			if k < 1 {
				return nil, nil, fmt.Errorf("rahtm: topo dimension %d is %d", i, k)
			}
		}
		if r.Mesh {
			t = topology.NewMesh(r.Topo...)
		} else {
			t = topology.NewTorus(r.Topo...)
		}
	}
	w := r.Work
	if w == nil {
		var err error
		w, err = r.buildWorkload(t)
		if err != nil {
			return nil, nil, err
		}
	}
	if w.Procs() != t.N()*r.concOf() {
		return nil, nil, fmt.Errorf("rahtm: %d processes != %d nodes x %d concentration",
			w.Procs(), t.N(), r.concOf())
	}
	r.work, r.torus = w, t
	return w, t, nil
}

// buildWorkload constructs the workload from the serialized fields.
func (r *Request) buildWorkload(t *Torus) (*Workload, error) {
	if r.Graph != "" {
		if r.Workload != "" {
			return nil, fmt.Errorf("rahtm: request has both workload %q and an inline graph", r.Workload)
		}
		g, err := graph.Read(strings.NewReader(r.Graph))
		if err != nil {
			return nil, fmt.Errorf("rahtm: inline graph: %w", err)
		}
		return &Workload{Name: "inline", Grid: r.Grid, Graph: g, CommFraction: 0.5}, nil
	}
	procs := r.Procs
	if procs == 0 {
		procs = t.N() * r.concOf()
	}
	switch strings.ToLower(r.Workload) {
	case "bt", "sp", "cg":
		return WorkloadByName(r.Workload, procs)
	case "halo2d":
		if len(r.Grid) != 2 {
			return nil, fmt.Errorf("rahtm: halo2d needs a 2-D grid")
		}
		return Halo2D(r.Grid[0], r.Grid[1], 10), nil
	case "halo3d":
		if len(r.Grid) != 3 {
			return nil, fmt.Errorf("rahtm: halo3d needs a 3-D grid")
		}
		return Halo3D(r.Grid[0], r.Grid[1], r.Grid[2], 10), nil
	case "random":
		return RandomNeighbors(procs, 4, 10, 1), nil
	case "":
		return nil, fmt.Errorf("rahtm: request needs a workload name or an inline graph")
	}
	return nil, fmt.Errorf("rahtm: unknown workload %q (want BT, SP, CG, halo2d, halo3d or random)", r.Workload)
}

// Key returns the content-addressed cache key of the request: a hash over
// everything that determines the resulting mapping — the graph's structural
// hash (the same fingerprint the pipeline's sibling-reuse cache keys on),
// the topology, the concentration, the mapper choice and its search knobs.
// The deadline and the parallelism are deliberately excluded: results are
// byte-identical across worker counts, and deadline-degraded results are
// never cached (see internal/serve), so equal keys mean equal mappings.
func (r *Request) Key() (string, error) {
	w, t, err := r.Materialize()
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	put := func(vs ...uint64) {
		var buf [8]byte
		for _, v := range vs {
			for i := 0; i < 8; i++ {
				buf[i] = byte(v >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	put(w.Graph.StructuralHash())
	for _, g := range w.Grid {
		put(uint64(g) + 3)
	}
	put(uint64(t.NumDims()))
	for d := 0; d < t.NumDims(); d++ {
		wrap := uint64(0)
		if t.Wrap(d) {
			wrap = 1
		}
		put(uint64(t.Dim(d)), wrap)
	}
	put(uint64(r.concOf()), uint64(r.BeamWidth))
	name := strings.ToLower(strings.TrimSpace(r.Mapper))
	if name == "" {
		name = "rahtm"
	}
	h.Write([]byte(name))
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// Solve is the single mapping entry point: it materializes the request,
// resolves the mapper, applies the deadline, runs the solve, and returns a
// Result with quality metrics filled in. Canceling ctx outright aborts with
// ctx.Err(); an expired deadline (from ctx or Request.DeadlineMS) instead
// degrades to the best valid mapping found so far, flagged Result.Degraded.
func Solve(ctx context.Context, req Request) (*Result, error) {
	return solve(ctx, req, true)
}

// solve implements Solve. The legacy wrappers pass measure=false to skip
// the proc-level MCL/hop-bytes evaluation their contracts never included.
func solve(ctx context.Context, req Request, measure bool) (res *Result, err error) {
	w, t, err := (&req).Materialize()
	if err != nil {
		return nil, err
	}
	conc := (&req).concOf()
	mapper, err := (&req).resolveMapper(t)
	if err != nil {
		return nil, err
	}
	// When the context carries a telemetry scope, the solver layers write
	// their counters into the scope's registry instead of the process-wide
	// one. Fold the delta accrued during this solve back into the global
	// registry on the way out (so process totals stay whole) and stamp the
	// per-request slice onto the result.
	scope := telemetry.ScopeFrom(ctx)
	if scope != nil {
		prev := scope.Reg.Snapshot()
		defer func() {
			delta := scope.Reg.Snapshot().Sub(prev)
			telemetry.Default.Merge(delta)
			if res != nil {
				res.TraceID = scope.TraceID
				res.Metrics = delta.Counters
			}
		}()
	}
	if req.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	// The graph is fully built by now: compile it to the frozen CSR form so
	// every traversal below — clustering, leaf solves, merge cross-edge
	// precomputation, metrics — is an allocation-free scan. Derived graphs
	// (coarsened, induced, node-aggregated) inherit frozen-ness.
	w.Graph.Freeze()

	start := time.Now()
	res = &Result{Mapper: mapper.Name(), Workload: w.Name, Topology: t.String()}
	switch m := mapper.(type) {
	case Mapper:
		pres, err := core.MapPartitionedCtx(ctx, w.Graph, t, PipelineConfig{
			Concentration:       conc,
			GridDims:            w.Grid,
			Leaf:                m.Leaf,
			Merge:               m.Merge,
			DisableSiblingReuse: m.DisableSiblingReuse,
			Parallelism:         m.Parallelism,
			Observer:            m.Observer,
		})
		if err != nil {
			return nil, err
		}
		res.Mapping = pres.ProcToNode
		res.Detail = pres
		stats := pres.Stats
		res.Stats = &stats
		res.Degraded = stats.Degraded
	case CtxProcMapper:
		res.Mapping, err = m.MapProcsCtx(ctx, w, t, conc)
		if err != nil {
			return nil, err
		}
	default:
		res.Mapping, err = m.MapProcs(w, t, conc)
		if err != nil {
			return nil, err
		}
	}
	res.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	if measure {
		res.MCL = routing.MaxChannelLoad(t, w.Graph, res.Mapping, routing.MinimalAdaptive{}.WithScope(scope))
		res.HopBytes = metrics.HopBytes(t, w.Graph, res.Mapping)
	}
	return res, nil
}

// resolveMapper picks the mapper for the request: the Config escape hatch
// when set, the named registry entry otherwise, with the serialized
// Parallelism/BeamWidth/Observer knobs applied to RAHTM mappers.
func (r *Request) resolveMapper(t *Torus) (ProcMapper, error) {
	if r.Config != nil {
		m := *r.Config
		if r.Observer != nil && m.Observer == nil {
			m.Observer = r.Observer
		}
		return m, nil
	}
	name := r.Mapper
	if name == "" {
		name = "rahtm"
	}
	f, err := MapperByName(name)
	if err != nil {
		return nil, err
	}
	m := f(t)
	if rm, ok := m.(Mapper); ok {
		rm.Parallelism = r.Parallelism
		if r.BeamWidth > 0 {
			rm.Merge.BeamWidth = r.BeamWidth
		}
		if r.Observer != nil {
			rm.Observer = r.Observer
		}
		m = rm
	}
	return m, nil
}
