package rahtm

// Routing diagnostics surface: per-channel load vectors and their summary
// statistics, plus the routing algorithms the evaluator models. These were
// previously reachable only through internal/routing; re-exported so users
// can inspect *where* a mapping's hotspots are, not just the scalar MCL.

import (
	"rahtm/internal/routing"
)

// RoutingAlgorithm models how a flow's volume spreads over channels.
type RoutingAlgorithm = routing.Algorithm

// MinimalAdaptive splits each flow uniformly over all minimal paths — the
// paper's approximation of BG/Q's minimal adaptive routing, and the model
// every MCL in this package uses unless stated otherwise.
type MinimalAdaptive = routing.MinimalAdaptive

// DimOrder routes each flow dimension by dimension in a fixed order
// (e.g. XYZ), the classic deterministic baseline.
type DimOrder = routing.DimOrder

// LoadStats summarizes a per-channel load vector.
type LoadStats = routing.LoadStats

// ChannelLoads returns the per-channel load vector of g mapped by m onto t
// under alg, indexed by channel id (see Torus.ChannelID/DecodeChannel).
func ChannelLoads(t *Torus, g *Comm, m Mapping, alg RoutingAlgorithm) []float64 {
	return routing.ChannelLoads(t, g, m, alg)
}

// LoadStatsOf summarizes a load vector produced by ChannelLoads.
func LoadStatsOf(t *Torus, loads []float64) LoadStats {
	return routing.Stats(t, loads)
}
