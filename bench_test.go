package rahtm

// One benchmark per table/figure of the paper's evaluation (see DESIGN.md's
// per-experiment index), plus ablation benches for the design choices of
// §III. Benchmarks print their paper-style tables once and report the key
// quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the full evaluation. Scales are laptop-sized by default; the
// cmd/rahtm-bench tool exposes the paper-scale configuration.

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"rahtm/internal/hiermap"
	"rahtm/internal/lp"
	"rahtm/internal/mcflow"
	"rahtm/internal/routing"
	"rahtm/internal/topology"
)

// benchTopo is the default benchmark platform: a 64-node 3-D torus with
// concentration 4 (256 processes), the laptop-scale stand-in for the
// paper's 512-node 4x4x4x4x2 Mira partition with concentration 32.
func benchTopo() (*Torus, int, int) { return NewTorus(4, 4, 4), 256, 4 }

var printOnce sync.Map

func printTable(key string, f func()) {
	once, _ := printOnce.LoadOrStore(key, new(sync.Once))
	once.(*sync.Once).Do(f)
}

// BenchmarkFigure1RoutingAwareExample reproduces Figure 1: the MCL-optimal
// diagonal mapping beats the hop-bytes-optimal adjacent mapping under
// minimal adaptive routing.
func BenchmarkFigure1RoutingAwareExample(b *testing.B) {
	g := NewGraph(4)
	g.AddTraffic(0, 1, 10)
	g.AddTraffic(1, 2, 1)
	g.AddTraffic(2, 3, 1)
	g.AddTraffic(3, 0, 1)
	t := NewMesh(2, 2)
	adjacent := Mapping{0, 1, 3, 2}
	diagonal := Mapping{0, 3, 1, 2}
	var mclAdj, mclDiag float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mclAdj = MCL(t, g, adjacent)
		mclDiag = MCL(t, g, diagonal)
	}
	b.ReportMetric(mclAdj, "MCL-adjacent")
	b.ReportMetric(mclDiag, "MCL-diagonal")
	printTable("fig1", func() {
		fmt.Printf("\n[Figure 1] adjacent (hop-bytes optimal) MCL=%.3g; diagonal (MCL optimal) MCL=%.3g — paper: diagonal wins under MAR\n",
			mclAdj, mclDiag)
	})
}

// suiteComparison runs the Figure 8/10 engine once per benchmark iteration.
func suiteComparison(b *testing.B) []*Comparison {
	b.Helper()
	t, procs, conc := benchTopo()
	ws, err := Suite(procs)
	if err != nil {
		b.Fatal(err)
	}
	cs, err := CompareSuite(ws, t, conc, StandardMappers(t), Model{})
	if err != nil {
		b.Fatal(err)
	}
	return cs
}

// BenchmarkFigure8OverallTime regenerates Figure 8: overall execution time
// of BT/SP/CG under every mapper, relative to the default mapping.
func BenchmarkFigure8OverallTime(b *testing.B) {
	var cs []*Comparison
	for i := 0; i < b.N; i++ {
		cs = suiteComparison(b)
	}
	gm := cs[len(cs)-1]
	rahtmRow := gm.Rows[len(gm.Rows)-1]
	b.ReportMetric(100*(rahtmRow.RelExec-1), "exec-%-vs-default")
	printTable("fig8", func() {
		fmt.Println()
		_ = WriteTable(os.Stdout, cs, "exec")
		fmt.Printf("[Figure 8] RAHTM geomean execution change: %+.1f%% (paper: -9%%)\n", 100*(rahtmRow.RelExec-1))
	})
}

// BenchmarkFigure9CommFraction regenerates Figure 9: the communication /
// computation split per benchmark under the default mapping.
func BenchmarkFigure9CommFraction(b *testing.B) {
	t, procs, conc := benchTopo()
	ws, err := Suite(procs)
	if err != nil {
		b.Fatal(err)
	}
	base := DefaultMapper(t)
	var frac float64
	for i := 0; i < b.N; i++ {
		for _, w := range ws {
			m, err := base.MapProcs(w, t, conc)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := CommTime(t, w.Graph, m, Model{})
			if err != nil {
				b.Fatal(err)
			}
			_ = rep
			frac = w.CommFraction
		}
	}
	b.ReportMetric(frac, "CG-comm-fraction")
	printTable("fig9", func() {
		fmt.Println()
		_ = CommFractionTable(os.Stdout, ws, t, conc, base, Model{})
		fmt.Println("[Figure 9] paper: CG > 70% communication, BT/SP ~ 35%")
	})
}

// BenchmarkFigure10CommTime regenerates Figure 10: communication time per
// mapper relative to the default mapping.
func BenchmarkFigure10CommTime(b *testing.B) {
	var cs []*Comparison
	for i := 0; i < b.N; i++ {
		cs = suiteComparison(b)
	}
	gm := cs[len(cs)-1]
	rahtmRow := gm.Rows[len(gm.Rows)-1]
	b.ReportMetric(100*(rahtmRow.RelComm-1), "comm-%-vs-default")
	printTable("fig10", func() {
		fmt.Println()
		_ = WriteTable(os.Stdout, cs, "comm")
		fmt.Printf("[Figure 10] RAHTM geomean communication change: %+.1f%% (paper: -20%%)\n", 100*(rahtmRow.RelComm-1))
	})
}

// BenchmarkTable2MILPSolve solves the Table II MILP formulation on a 2x2
// leaf subproblem — the optimal-mapping building block of Phase 2.
func BenchmarkTable2MILPSolve(b *testing.B) {
	g := NewGraph(4)
	g.AddTraffic(0, 1, 10)
	g.AddTraffic(1, 2, 1)
	g.AddTraffic(2, 3, 1)
	g.AddTraffic(3, 0, 1)
	var mcl float64
	for i := 0; i < b.N; i++ {
		res, err := hiermap.Map(g, []int{2, 2}, hiermap.Config{Method: hiermap.MILP})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Proved {
			b.Fatal("MILP failed to prove optimality")
		}
		mcl = res.MCL
	}
	b.ReportMetric(mcl, "optimal-MCL")
}

// BenchmarkSectionVBOptimizationTime measures RAHTM's offline mapping cost
// (the paper's §V-B: 33 minutes for BT up to 35 hours for CG at 16K scale;
// seconds at this scale).
func BenchmarkSectionVBOptimizationTime(b *testing.B) {
	t, procs, conc := benchTopo()
	w, err := CG(procs)
	if err != nil {
		b.Fatal(err)
	}
	var res *PipelineResult
	for i := 0; i < b.N; i++ {
		res, err = (Mapper{}).Pipeline(w, t, conc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Stats.MapTime.Milliseconds()), "phase2-ms")
	b.ReportMetric(float64(res.Stats.MergeTime.Milliseconds()), "phase3-ms")
	printTable("vb", func() {
		s := res.Stats
		fmt.Printf("\n[Section V-B] CG mapping time at %d procs: cluster %v, map %v (%d subproblems, %d reused), merge %v (%d merges, %d reused)\n",
			procs, s.ClusterTime, s.MapTime, s.Subproblems, s.SubproblemsHit, s.MergeTime, s.Merges, s.MergesHit)
	})
}

// BenchmarkAblationBeamWidth compares Phase 3 beam widths (N of §III-D;
// N=1 is the pure-greedy strawman the paper argues against).
func BenchmarkAblationBeamWidth(b *testing.B) {
	t := NewTorus(4, 4)
	w, err := CG(16)
	if err != nil {
		b.Fatal(err)
	}
	for _, width := range []int{1, 4, 64} {
		b.Run(fmt.Sprintf("N=%d", width), func(b *testing.B) {
			var mcl float64
			for i := 0; i < b.N; i++ {
				m := Mapper{}
				m.Merge.BeamWidth = width
				mp, err := m.MapProcs(w, t, 1)
				if err != nil {
					b.Fatal(err)
				}
				mcl = MCL(t, w.Graph, mp)
			}
			b.ReportMetric(mcl, "MCL")
		})
	}
}

// BenchmarkAblationHopBytesVsMCL compares RAHTM against the greedy
// hop-bytes mapper — routing awareness versus the classic metric.
func BenchmarkAblationHopBytesVsMCL(b *testing.B) {
	t := NewTorus(4, 4)
	w, err := CG(16)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []ProcMapper{NewGreedyHopBytes(), Mapper{}} {
		b.Run(m.Name(), func(b *testing.B) {
			var mcl float64
			for i := 0; i < b.N; i++ {
				mp, err := m.MapProcs(w, t, 1)
				if err != nil {
					b.Fatal(err)
				}
				mcl = MCL(t, w.Graph, mp)
			}
			b.ReportMetric(mcl, "MCL")
		})
	}
}

// BenchmarkAblationLeafSolver compares the Phase 2 solver choices on one
// 8-node cube subproblem.
func BenchmarkAblationLeafSolver(b *testing.B) {
	g := NewGraph(8)
	for i := 0; i < 8; i++ {
		g.AddTraffic(i, (i+1)%8, 10)
		g.AddTraffic(i, (i+3)%8, 3)
	}
	for _, method := range []hiermap.Method{hiermap.Exhaustive, hiermap.Anneal, hiermap.MILP} {
		b.Run(method.String(), func(b *testing.B) {
			if method == hiermap.MILP && testing.Short() {
				b.Skip("MILP leaf solve is slow in -short mode")
			}
			var mcl float64
			for i := 0; i < b.N; i++ {
				res, err := hiermap.Map(g, []int{2, 2, 2}, hiermap.Config{Method: method, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				mcl = res.MCL
			}
			b.ReportMetric(mcl, "MCL")
		})
	}
}

// BenchmarkAblationEvaluator compares the closed-form uniform-split DP
// evaluator against the LP optimal-split evaluator on the same mapping.
func BenchmarkAblationEvaluator(b *testing.B) {
	t := topology.NewTorus(4, 4)
	w, err := CG(16)
	if err != nil {
		b.Fatal(err)
	}
	m := topology.Identity(16)
	b.Run("uniform-DP", func(b *testing.B) {
		var mcl float64
		for i := 0; i < b.N; i++ {
			mcl = routing.MaxChannelLoad(t, w.Graph, m, routing.MinimalAdaptive{})
		}
		b.ReportMetric(mcl, "MCL")
	})
	b.Run("LP-optimal-split", func(b *testing.B) {
		var mcl float64
		for i := 0; i < b.N; i++ {
			res, err := mcflow.Evaluate(t, w.Graph, m, lp.Options{})
			if err != nil {
				b.Fatal(err)
			}
			mcl = res.MCL
		}
		b.ReportMetric(mcl, "MCL")
	})
}

// BenchmarkRoutingEvaluation measures the core inner-loop cost: one full
// channel-load evaluation of a 256-process CG pattern.
func BenchmarkRoutingEvaluation(b *testing.B) {
	t, procs, conc := benchTopo()
	w, err := CG(procs)
	if err != nil {
		b.Fatal(err)
	}
	m, err := DefaultMapper(t).MapProcs(w, t, conc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MCL(t, w.Graph, m)
	}
}

// BenchmarkSimplexLP measures the LP substrate on a mid-size problem.
func BenchmarkSimplexLP(b *testing.B) {
	build := func() *lp.Problem {
		p := lp.NewProblem(0)
		n := 30
		vars := make([]int, n)
		for i := 0; i < n; i++ {
			vars[i] = p.AddVariable(float64(1+i%7), "")
		}
		for r := 0; r < 20; r++ {
			var terms []lp.Term
			for i := 0; i < n; i += 2 {
				terms = append(terms, lp.Term{Var: vars[(i+r)%n], Coef: float64(1 + (i*r)%5)})
			}
			p.AddConstraint(terms, lp.GE, float64(10+r))
		}
		return p
	}
	for i := 0; i < b.N; i++ {
		sol, err := build().Solve()
		if err != nil || sol.Status != lp.Optimal {
			b.Fatalf("LP solve failed: %v %v", err, sol.Status)
		}
	}
}

// BenchmarkParallelPipeline measures the level-wise scheduler on a
// 512-process 3-D halo: the same workload mapped fully sequentially
// (Parallelism=1) and with one worker per CPU (Parallelism=0). Results are
// byte-identical by construction — the benchmark fails if they diverge —
// so the only difference is Phase 2 + Phase 3 wall time, reported as
// phase23-ms. On a multi-core host the parallel variant is expected to be
// >=2x faster; on a single-CPU host the two variants coincide.
func BenchmarkParallelPipeline(b *testing.B) {
	w := Halo3D(8, 8, 8, 10) // 512 processes
	t := NewTorus(4, 4, 8)   // 128 nodes, concentration 4
	var mu sync.Mutex
	mcls := map[string]float64{}
	for _, bc := range []struct {
		name string
		par  int
	}{
		{"parallelism=1", 1},
		{"parallelism=NumCPU", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			m := Mapper{Parallelism: bc.par}
			var phase23, mcl float64
			for i := 0; i < b.N; i++ {
				res, err := m.Pipeline(w, t, 4)
				if err != nil {
					b.Fatal(err)
				}
				phase23 = float64((res.Stats.MapTime + res.Stats.MergeTime).Milliseconds())
				mcl = res.MCL
			}
			b.ReportMetric(phase23, "phase23-ms")
			b.ReportMetric(mcl, "MCL")
			mu.Lock()
			mcls[bc.name] = mcl
			mu.Unlock()
		})
	}
	if seq, ok := mcls["parallelism=1"]; ok {
		if par, ok := mcls["parallelism=NumCPU"]; ok && par != seq {
			b.Fatalf("parallel MCL %v != sequential MCL %v", par, seq)
		}
	}
}

// BenchmarkPipelineTelemetry compares the pipeline with no observer (the
// always-on counters alone — the ≤2% overhead budget of DESIGN.md §8)
// against a full telemetry stack (span recorder + progress tracker + tee).
// Compare phase23-ms between the variants.
func BenchmarkPipelineTelemetry(b *testing.B) {
	w := Halo3D(8, 8, 8, 10) // 512 processes
	t := NewTorus(4, 4, 8)   // 128 nodes, concentration 4
	for _, bc := range []struct {
		name string
		obs  func() Observer
	}{
		{"observer=nop", func() Observer { return nil }},
		{"observer=full", func() Observer {
			return TeeObservers(NewSpanRecorder(), NewProgressTracker())
		}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var phase23 float64
			for i := 0; i < b.N; i++ {
				m := Mapper{Observer: bc.obs()}
				res, err := m.Pipeline(w, t, 4)
				if err != nil {
					b.Fatal(err)
				}
				phase23 = float64((res.Stats.MapTime + res.Stats.MergeTime).Milliseconds())
			}
			b.ReportMetric(phase23, "phase23-ms")
		})
	}
}

// BenchmarkRequestScopedTelemetry measures the cost of per-request metric
// attribution: the same solve with and without a telemetry scope on the
// context. The contract (DESIGN.md §8 and §13) is that attribution stays
// within the 2% telemetry budget — the batched flush sites make a scope
// one pointer comparison per flush, never per-iteration work, and the
// scope's registry is touched once per batch rather than once per route.
// BENCH_9.txt holds a committed comparison of the two variants.
func BenchmarkRequestScopedTelemetry(b *testing.B) {
	req := Request{
		Work:        Halo3D(8, 8, 8, 10), // 512 processes
		Torus:       NewTorus(4, 4, 8),   // 128 nodes, concentration 4
		Conc:        4,
		Parallelism: 4,
	}
	b.Run("scope=off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Solve(context.Background(), req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scope=on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx := WithScope(context.Background(), NewScope(""))
			res, err := Solve(ctx, req)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Metrics) == 0 {
				b.Fatal("scoped solve attributed no metrics")
			}
		}
	})
}
