package rahtm

// Facade surface for the paper's §VI extensions implemented in this
// repository: collective-communication patterns, profile (trace) ingestion,
// per-flow routing co-optimization, and packet-level validation.

import (
	"context"
	"io"

	"rahtm/internal/collective"
	"rahtm/internal/dragonfly"
	"rahtm/internal/fattree"
	"rahtm/internal/lp"
	"rahtm/internal/mapfile"
	"rahtm/internal/mcflow"
	"rahtm/internal/packetsim"
	"rahtm/internal/trace"
	"rahtm/internal/workload"
)

// FatTree is an m-ary l-level full-bisection fat tree — the §VI
// "applicability to other topologies" extension. Its Map method runs the
// fat-tree variant of RAHTM (recursive min-cut clustering; the cube-mapping
// and rotation phases degenerate because the tree is symmetric above the
// leaves).
type FatTree = fattree.FatTree

// NewFatTree builds a fat tree with the given switch arity and level count.
var NewFatTree = fattree.New

// Fat-tree routing models.
const (
	FatTreeECMP  = fattree.ECMP
	FatTreeDModK = fattree.DModK
)

// Dragonfly is a one-level dragonfly topology (groups of fully connected
// routers, fully connected globally) — the other §VI topology target. Its
// Map method clusters tasks into routers and groups to confine traffic.
type Dragonfly = dragonfly.Dragonfly

// NewDragonfly builds a dragonfly with g groups, a routers per group,
// p hosts per router and h global links per router.
var NewDragonfly = dragonfly.New

// Dragonfly routing models.
const (
	DragonflyMinimal = dragonfly.Minimal
	DragonflyValiant = dragonfly.Valiant
)

// CollectiveOp names a collective implementation (the communication pattern
// depends on the implementation, which is why RAHTM needs to know it).
type CollectiveOp = collective.Op

// Supported collective implementations.
const (
	AllGatherRecursiveDoubling = collective.OpAllGatherRD
	AllGatherDissemination     = collective.OpAllGatherDiss
	AllReduceRecursiveDoubling = collective.OpAllReduceRD
	AllReduceRing              = collective.OpAllReduceRing
	BroadcastBinomial          = collective.OpBroadcast
	ReduceBinomial             = collective.OpReduce
	AllToAllPairwise           = collective.OpAllToAll
	ReduceScatterRing          = collective.OpReduceScatter
)

// CollectiveOps lists every supported collective implementation.
var CollectiveOps = collective.Ops

// AddCollective adds the traffic of the named collective over ranks (nil =
// all ranks of g) with msg bytes per process into g.
func AddCollective(g *Comm, op CollectiveOp, ranks []int, msg float64) error {
	comm := collective.Communicator(ranks)
	if comm == nil {
		comm = collective.World(g.N())
	}
	return collective.Add(g, op, comm, msg)
}

// AllReduceJob builds a data-parallel (training-style) workload dominated
// by global all-reduces of msg bytes implemented by op.
func AllReduceJob(procs int, msg float64, op CollectiveOp) (*Workload, error) {
	return workload.AllReduceJob(procs, msg, op)
}

// Profile is a parsed communication profile (the IPM-profile stand-in).
type Profile = trace.Profile

// ParseProfile reads a plain-text communication profile: "procs <n>",
// "p2p <src> <dst> <bytes> [count]", and "coll <impl> <bytes> all|ranks..."
// records.
func ParseProfile(r io.Reader) (*Profile, error) { return trace.Parse(r) }

// ProfileFromGraph converts a communication graph into a writable profile.
var ProfileFromGraph = trace.FromGraph

// RoutingTable is the per-flow optimal split computed by the LP evaluator —
// usable as application-specific routing on hardware that supports it
// (the §VI mapping/routing co-optimization).
type RoutingTable = mcflow.RoutingTable

// OptimalSplitMCL evaluates a fixed mapping with the LP routing model and
// returns the optimal MCL together with the per-flow routing table that
// achieves it.
func OptimalSplitMCL(t *Torus, g *Comm, m Mapping) (float64, *RoutingTable, error) {
	return OptimalSplitMCLCtx(context.Background(), t, g, m)
}

// OptimalSplitMCLCtx is OptimalSplitMCL under a context: the LP aborts at
// its next pivot poll and returns ctx.Err() when ctx is canceled or its
// deadline expires.
func OptimalSplitMCLCtx(ctx context.Context, t *Torus, g *Comm, m Mapping) (float64, *RoutingTable, error) {
	res, rt, err := mcflow.EvaluateWithRoutesCtx(ctx, t, g, m, lp.Options{})
	if err != nil {
		return 0, nil, err
	}
	return res.MCL, rt, nil
}

// ReadMapFile parses a task-mapping file in either BG/Q format (node ranks
// or coordinate tuples), validated against t.
func ReadMapFile(r io.Reader, t *Torus) (Mapping, error) {
	return mapfile.Detect(r, t)
}

// WriteMapFileRanks writes the rank map-file format.
func WriteMapFileRanks(w io.Writer, m Mapping, header string) error {
	return mapfile.WriteRanks(w, m, header)
}

// WriteMapFileCoords writes the BG/Q coordinate map-file format.
func WriteMapFileCoords(w io.Writer, t *Torus, m Mapping, header string) error {
	return mapfile.WriteCoords(w, t, m, header)
}

// PacketSimConfig tunes the packet-level simulator.
type PacketSimConfig = packetsim.Config

// PacketSimResult reports packet-level simulation statistics.
type PacketSimResult = packetsim.Result

// PacketSimulate runs the cycle-based packet-level simulator: traffic g
// mapped by m onto t, forwarded hop by hop under per-hop adaptive minimal
// routing. It validates (rather than assumes) that low MCL means fast
// communication.
func PacketSimulate(t *Torus, g *Comm, m Mapping, cfg PacketSimConfig) (*PacketSimResult, error) {
	return packetsim.Simulate(t, g, m, cfg)
}

// PacketSimulateCtx is PacketSimulate under a context, polled every 512
// simulated cycles; any cancellation (including deadline expiry) aborts
// with ctx.Err(), since a half-finished simulation has no valid statistics.
func PacketSimulateCtx(ctx context.Context, t *Torus, g *Comm, m Mapping, cfg PacketSimConfig) (*PacketSimResult, error) {
	return packetsim.SimulateCtx(ctx, t, g, m, cfg)
}
