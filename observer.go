package rahtm

// Observer tracing surface: the pipeline emits phase boundaries, subproblem
// solves, annealing samples, beam rounds, and LP iteration counts to an
// Observer supplied via PipelineConfig.Observer or Mapper.Observer. The
// implementation lives in internal/obs so every pipeline layer can import
// it; these aliases are the supported public surface.

import (
	"io"

	"rahtm/internal/obs"
)

// Observer receives pipeline trace events. All methods must be safe for
// concurrent use: the level-wise scheduler solves Phase 2 subproblems and
// Phase 3 merges on worker goroutines (and Phase 3 additionally scores beam
// candidates from a worker pool), so callbacks fire concurrently whenever
// the pipeline runs with Parallelism != 1. A nil Observer anywhere in the
// configuration is treated as a no-op.
type Observer = obs.Observer

// WorkerObserver is an optional Observer extension: implementations also
// receive per-phase worker-pool reports (worker count, jobs dispatched,
// cumulative busy time) from the level-wise scheduler. LogObserver and
// NopObserver implement it.
type WorkerObserver = obs.WorkerObserver

// SpanObserver is an optional Observer extension: implementations receive
// one timed span per scheduler job (representative solves, merges, level
// preparation, sibling fan-outs). Spans fire from worker goroutines in
// completion order — timing-domain, not deterministic. SpanRecorder
// implements it.
type SpanObserver = obs.SpanObserver

// ProgressObserver is an optional Observer extension: implementations learn
// how many scheduler jobs each phase is about to dispatch, enabling live
// done/total progress views. ProgressTracker implements it.
type ProgressObserver = obs.ProgressObserver

// NopObserver ignores every event. Useful for embedding in partial
// implementations that only care about some events.
type NopObserver = obs.Nop

// LogObserver writes one line per event to an io.Writer, serialized by an
// internal mutex. It is what `rahtm-map -verbose` and `rahtm-bench -verbose`
// attach to stderr.
type LogObserver = obs.Log

// NewLogObserver returns a LogObserver writing to w with the default
// "rahtm: " line prefix.
func NewLogObserver(w io.Writer) *LogObserver { return obs.NewLog(w) }

// NewLogObserverPrefix returns a LogObserver with a custom line prefix, for
// labeling runs in multi-run output. An empty prefix emits bare lines.
func NewLogObserverPrefix(w io.Writer, prefix string) *LogObserver {
	return obs.NewLogPrefix(w, prefix)
}

// TeeObservers fans every pipeline event out to all non-nil observers, so
// logging, span recording, and live progress compose. Optional extension
// events (WorkerObserver, SpanObserver, ProgressObserver) reach only the
// members that implement them.
func TeeObservers(members ...Observer) Observer { return obs.Tee(members...) }

// Phase names passed to Observer.PhaseStart/PhaseEnd.
const (
	PhaseCluster = obs.PhaseCluster
	PhaseMap     = obs.PhaseMap
	PhaseMerge   = obs.PhaseMerge
)
