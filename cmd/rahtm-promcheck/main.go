// Command rahtm-promcheck validates a Prometheus text-exposition document
// (version 0.0.4, the format rahtm-serve's /metrics speaks under
// Accept: text/plain) read from a file or stdin:
//
//	curl -s -H 'Accept: text/plain' localhost:8080/metrics | rahtm-promcheck
//	rahtm-promcheck metrics.prom
//
// It checks metric-name and label syntax, TYPE/HELP comment placement,
// duplicate family declarations, and histogram shape (ascending bucket
// bounds, non-decreasing cumulative counts, the +Inf bucket present and
// equal to _count). Exit status 0 means valid; 1 means malformed, with the
// reason on stderr. CI uses it to fail the e2e serve job on a bad scrape.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rahtm/internal/telemetry"
)

func main() {
	quiet := flag.Bool("q", false, "suppress the summary line on success")
	flag.Parse()

	var in io.Reader = os.Stdin
	name := "<stdin>"
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "rahtm-promcheck: at most one input file")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "rahtm-promcheck:", err)
			os.Exit(2)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}

	families, err := telemetry.ParsePrometheus(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rahtm-promcheck: %s: %v\n", name, err)
		os.Exit(1)
	}
	if len(families) == 0 {
		fmt.Fprintf(os.Stderr, "rahtm-promcheck: %s: no metric families\n", name)
		os.Exit(1)
	}
	if !*quiet {
		samples := 0
		for _, f := range families {
			samples += len(f.Samples)
		}
		fmt.Printf("%s: valid Prometheus exposition (%d families, %d samples)\n",
			name, len(families), samples)
	}
}
