package main

import (
	"testing"

	"rahtm"
)

func TestParseDims(t *testing.T) {
	d, err := parseDims("16x16")
	if err != nil || len(d) != 2 || d[0] != 16 {
		t.Fatalf("parseDims: %v %v", d, err)
	}
	if _, err := parseDims("x"); err == nil {
		t.Fatal("bad spec should fail")
	}
}

func TestSelectMapper(t *testing.T) {
	topo := rahtm.NewTorus(4, 4, 4, 4, 4, 2)
	for _, name := range []string{"rahtm", "hilbert", "rht", "greedy", "random", "ABCDET"} {
		f, err := rahtm.MapperByName(name)
		if err != nil {
			t.Fatalf("MapperByName(%q): %v", name, err)
		}
		if f(topo) == nil {
			t.Fatalf("MapperByName(%q) factory returned nil", name)
		}
	}
}

func TestBuildWorkload(t *testing.T) {
	w, err := buildWorkload("CG", "", "", 64)
	if err != nil || w.Procs() != 64 {
		t.Fatalf("CG: %v %v", w, err)
	}
	w, err = buildWorkload("halo2d", "", "4x8", 32)
	if err != nil || w.Procs() != 32 {
		t.Fatalf("halo2d: %v %v", w, err)
	}
	if _, err := buildWorkload("halo2d", "", "", 32); err == nil {
		t.Fatal("halo2d without grid should fail")
	}
	if _, err := buildWorkload("", "", "", 32); err == nil {
		t.Fatal("empty workload should fail")
	}
	if _, err := buildWorkload("nope", "", "", 32); err == nil {
		t.Fatal("unknown workload should fail")
	}
	w, err = buildWorkload("random", "", "", 32)
	if err != nil || w.Procs() != 32 {
		t.Fatalf("random: %v", err)
	}
}
