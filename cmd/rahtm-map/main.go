// Command rahtm-map computes a task mapping offline and writes it as a
// BG/Q-style map file (one node rank per line, indexed by process rank):
//
//	rahtm-map -workload CG -procs 256 -topo 4x4x4 -conc 4 -o cg.map
//	rahtm-map -workload halo2d -grid 16x16 -topo 4x4x4 -conc 4
//	rahtm-map -graph comm.txt -grid 16x16 -topo 4x4x4 -conc 4
//
// The mapper defaults to RAHTM; -mapper selects a baseline instead
// (ABCDET-style specs, hilbert, rht, greedy, random).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"rahtm"
)

func main() {
	var (
		topoSpec = flag.String("topo", "4x4x4", "torus dimensions, e.g. 4x4x4x4x2")
		wl       = flag.String("workload", "", "benchmark: BT, SP, CG, halo2d, halo3d, random")
		procs    = flag.Int("procs", 0, "number of processes (defaults to nodes x conc)")
		conc     = flag.Int("conc", 1, "processes per node")
		gridSpec = flag.String("grid", "", "logical process grid, e.g. 16x16 (halo/graph workloads)")
		graphIn  = flag.String("graph", "", "read the communication graph from this file instead")
		mapper   = flag.String("mapper", "rahtm", "mapper: "+strings.Join(rahtm.MapperNames(), ", ")+", or a permutation spec like ABCDET")
		out      = flag.String("o", "", "output map file (default stdout)")
		format   = flag.String("format", "ranks", "map file format: ranks (one node per line) or coords (BG/Q tuples)")
		quiet    = flag.Bool("q", false, "suppress the quality report")
		timeout  = flag.Duration("timeout", 0, "mapping time budget; on expiry RAHTM returns its best mapping so far")
		workers  = flag.Int("parallelism", 0, "RAHTM scheduler worker goroutines (0 = all CPUs, 1 = sequential); results are identical for every setting")
		verbose  = flag.Bool("verbose", false, "trace pipeline phases and solver progress to stderr")
		pprofOut = flag.String("pprof", "", "write a CPU profile of the mapping computation to this file")
		metrics  = flag.String("metrics-addr", "", "serve live telemetry (expvar /debug/vars + /metrics progress snapshot) on this address while mapping")
		traceOut = flag.String("trace-out", "", "write the scheduler span timeline here (Chrome trace-event JSON; a .jsonl suffix selects one-span-per-line JSONL)")
		report   = flag.Bool("report", false, "print the end-of-run telemetry report to stderr")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	t, err := parseDims(*topoSpec)
	if err != nil {
		fatal(err)
	}
	topo := rahtm.NewTorus(t...)
	if *procs == 0 {
		*procs = topo.N() * *conc
	}

	w, err := buildWorkload(*wl, *graphIn, *gridSpec, *procs)
	if err != nil {
		fatal(err)
	}

	factory, err := rahtm.MapperByName(*mapper)
	if err != nil {
		fatal(err)
	}
	m := factory(topo)

	// Assemble the observer stack: logging, span recording and live
	// progress compose through a tee. Only the RAHTM pipeline emits
	// observer events; for baseline mappers the process-wide counters
	// (and hence -report and the /metrics endpoint) still work.
	var observers []rahtm.Observer
	var recorder *rahtm.SpanRecorder
	var tracker *rahtm.ProgressTracker
	if *verbose {
		observers = append(observers, rahtm.NewLogObserver(os.Stderr))
	}
	if *traceOut != "" {
		recorder = rahtm.NewSpanRecorder()
		observers = append(observers, recorder)
	}
	if *metrics != "" {
		tracker = rahtm.NewProgressTracker()
		observers = append(observers, tracker)
	}

	if rm, ok := m.(rahtm.Mapper); ok {
		rm.Parallelism = *workers
		if len(observers) > 0 {
			rm.Observer = rahtm.TeeObservers(observers...)
		}
		m = rm
	} else if *traceOut != "" {
		fmt.Fprintf(os.Stderr, "rahtm-map: note: -trace-out records the RAHTM scheduler; mapper %q emits no spans\n", m.Name())
	}

	if *metrics != "" {
		srv, err := rahtm.ServeMetrics(*metrics, tracker.Snapshot)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "rahtm-map: telemetry endpoint at %s/metrics\n", srv.URL())
	}

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	start := time.Now()
	var mapping rahtm.Mapping
	var stats *rahtm.PhaseStats
	if rm, ok := m.(rahtm.Mapper); ok {
		res, err := rm.PipelineCtx(ctx, w, topo, *conc)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fatal(fmt.Errorf("interrupted before a mapping was available"))
			}
			fatal(err)
		}
		if res.Stats.Degraded {
			fmt.Fprintln(os.Stderr, "rahtm-map: time budget expired; returning the best mapping found so far")
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "rahtm-map: scheduler parallelism %d (map work %v, merge work %v)\n",
				res.Stats.Parallelism, res.Stats.MapWorkTime.Round(time.Millisecond),
				res.Stats.MergeWorkTime.Round(time.Millisecond))
		}
		mapping = res.ProcToNode
		stats = &res.Stats
	} else {
		mapping, err = m.MapProcs(w, topo, *conc)
		if err != nil {
			fatal(err)
		}
	}
	elapsed := time.Since(start)

	var sink *os.File = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sink = f
	}
	header := fmt.Sprintf("rahtm-map: workload=%s mapper=%s topo=%s conc=%d", w.Name, m.Name(), topo, *conc)
	switch *format {
	case "ranks":
		err = rahtm.WriteMapFileRanks(sink, mapping, header)
	case "coords":
		err = rahtm.WriteMapFileCoords(sink, topo, mapping, header)
	default:
		err = fmt.Errorf("unknown -format %q (want ranks or coords)", *format)
	}
	if err != nil {
		fatal(err)
	}

	if !*quiet {
		rep := rahtm.Measure(topo, w.Graph, mapping)
		fmt.Fprintf(os.Stderr, "mapped %d processes with %s in %v\n%s\n",
			w.Procs(), m.Name(), elapsed.Round(time.Millisecond), rep)
	}

	if *traceOut != "" && recorder != nil {
		if err := writeTrace(*traceOut, recorder); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rahtm-map: wrote %d spans to %s\n", recorder.Len(), *traceOut)
	}
	if *report {
		if err := rahtm.WriteTelemetryReport(os.Stderr, stats); err != nil {
			fatal(err)
		}
	}
}

// writeTrace exports the recorded span timeline: Chrome trace-event JSON
// (open in Perfetto / chrome://tracing) by default, JSONL when the path
// ends in .jsonl.
func writeTrace(path string, rec *rahtm.SpanRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = rec.WriteJSONL(f)
	} else {
		err = rec.WriteChromeTrace(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func buildWorkload(name, graphIn, gridSpec string, procs int) (*rahtm.Workload, error) {
	var grid []int
	if gridSpec != "" {
		g, err := parseDims(gridSpec)
		if err != nil {
			return nil, err
		}
		grid = g
	}
	if graphIn != "" {
		f, err := os.Open(graphIn)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, err := rahtm.ReadGraph(f)
		if err != nil {
			return nil, err
		}
		return &rahtm.Workload{Name: graphIn, Grid: grid, Graph: g, CommFraction: 0.5}, nil
	}
	switch strings.ToLower(name) {
	case "bt", "sp", "cg":
		return rahtm.WorkloadByName(name, procs)
	case "halo2d":
		if len(grid) != 2 {
			return nil, fmt.Errorf("halo2d needs -grid RxC")
		}
		return rahtm.Halo2D(grid[0], grid[1], 10), nil
	case "halo3d":
		if len(grid) != 3 {
			return nil, fmt.Errorf("halo3d needs -grid XxYxZ")
		}
		return rahtm.Halo3D(grid[0], grid[1], grid[2], 10), nil
	case "random":
		return rahtm.RandomNeighbors(procs, 4, 10, 1), nil
	case "":
		return nil, fmt.Errorf("need -workload or -graph")
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

func parseDims(spec string) ([]int, error) {
	parts := strings.Split(strings.ToLower(strings.TrimSpace(spec)), "x")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad dimension spec %q", spec)
		}
		dims = append(dims, v)
	}
	return dims, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rahtm-map:", err)
	os.Exit(1)
}
