package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rahtm"
	"rahtm/internal/serve"
	"rahtm/internal/telemetry"
)

// TestEndToEnd drives the daemon's full handler stack the way a client
// would: two identical requests where the second is served from the
// content-addressed cache (verified through the telemetry counters), and a
// short-deadline request that comes back as a valid mapping flagged
// degraded rather than an error.
func TestEndToEnd(t *testing.T) {
	srv := serve.New(context.Background(), serve.Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	post := func(body string) (*http.Response, *rahtm.Result) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var res rahtm.Result
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		return resp, &res
	}

	const req = `{"workload":"CG","topo":[4,4,4],"conc":4,"mapper":"rahtm"}`
	before := telemetry.Default.Snapshot()

	_, first := post(req)
	if first.Cached {
		t.Fatal("first request claimed to be cached")
	}
	if len(first.Mapping) != 256 {
		t.Fatalf("mapping covers %d processes, want 256", len(first.Mapping))
	}

	_, second := post(req)
	if !second.Cached {
		t.Fatal("identical second request was not served from the cache")
	}
	if first.MCL != second.MCL {
		t.Fatalf("cached MCL %v differs from fresh %v", second.MCL, first.MCL)
	}

	d := telemetry.Default.Snapshot().Sub(before)
	if hits := d.Counter(telemetry.CtrServeCacheHits); hits != 1 {
		t.Errorf("cache-hit counter delta %d, want 1", hits)
	}
	if misses := d.Counter(telemetry.CtrServeCacheMisses); misses != 1 {
		t.Errorf("cache-miss counter delta %d, want 1", misses)
	}

	// Short deadline: valid mapping, degraded flag, 200 — not an error. A
	// different workload, because the CG problem above is now cached and
	// deadlines are excluded from the cache key: a rushed request for a
	// cached problem would (rightly) get the full-quality cached answer.
	_, rushed := post(`{"workload":"BT","topo":[4,4,4],"conc":4,"deadline_ms":1}`)
	if !rushed.Degraded {
		t.Fatal("1ms-deadline request did not report degraded")
	}
	if len(rushed.Mapping) != 256 {
		t.Fatalf("degraded mapping covers %d processes, want 256", len(rushed.Mapping))
	}
	perNode := make(map[int]int)
	for _, n := range rushed.Mapping {
		perNode[n]++
	}
	for n, c := range perNode {
		if c != 4 {
			t.Fatalf("degraded mapping put %d processes on node %d, want 4", c, n)
		}
	}
	if dg := telemetry.Default.Snapshot().Sub(before).Counter(telemetry.CtrServeDegraded); dg < 1 {
		t.Errorf("degraded counter delta %d, want >= 1", dg)
	}
}
