// Command rahtm-serve runs the mapping-as-a-service daemon: an HTTP/JSON
// server accepting rahtm.Request bodies on POST /solve and answering with
// rahtm.Result, backed by a bounded solve queue, per-request deadlines with
// degrade-on-expiry semantics, and a content-addressed result cache.
//
//	rahtm-serve -addr :8080 -workers 2 -queue 64 -cache 1024
//
//	curl -s localhost:8080/solve -d '{"workload":"CG","topo":[4,4,4],"conc":4}'
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metrics                       # JSON
//	curl -s -H 'Accept: text/plain' localhost:8080/metrics  # Prometheus text
//	curl -s localhost:8080/debug/requests
//
// Every /solve response carries an X-Rahtm-Trace-Id header (honoring one
// sent by the client); /debug/requests shows in-flight requests and the
// slowest completed traces with their span timelines. Lifecycle events are
// structured JSON logs on stderr (-log-level tunes verbosity).
//
// SIGINT/SIGTERM drains gracefully: admission stops, queued and in-flight
// solves finish (up to -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rahtm/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 2, "concurrent solves")
		queue    = flag.Int("queue", 64, "admission queue depth beyond in-flight solves (overflow gets 429)")
		cacheN   = flag.Int("cache", 1024, "content-addressed result cache entries (negative disables)")
		maxDL    = flag.Duration("max-deadline", 2*time.Minute, "cap on per-request solve budgets (0 = uncapped)")
		maxPar   = flag.Int("max-parallelism", 0, "cap on per-solve pipeline workers (0 = as requested)")
		maxBody  = flag.Int64("max-body", 16<<20, "request body size limit, bytes")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown grace for queued and in-flight solves")
		slowN    = flag.Int("slow-traces", 32, "slowest completed traces retained for /debug/requests (negative disables)")
		logLevel = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	)
	flag.Parse()

	logger, err := newLogger(*logLevel)
	if err != nil {
		fatal(err)
	}

	srv := serve.New(context.Background(), serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheN,
		MaxDeadline:    *maxDL,
		MaxParallelism: *maxPar,
		MaxBodyBytes:   *maxBody,
		SlowTraces:     *slowN,
		Logger:         logger,
	})
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	logger.Info("listening", "addr", ln.Addr().String(),
		"endpoints", "POST /solve, GET /healthz, GET /metrics, GET /debug/requests",
		"workers", *workers, "queue", *queue)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	logger.Info("draining", "grace", drain.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Warn("drain grace expired; in-flight solves canceled")
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("http shutdown", "err", err.Error())
	}
	logger.Info("stopped")
}

// newLogger builds the daemon's JSON logger on stderr at the named level.
func newLogger(level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info", "":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	return slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rahtm-serve:", err)
	os.Exit(1)
}
