// Command rahtm-serve runs the mapping-as-a-service daemon: an HTTP/JSON
// server accepting rahtm.Request bodies on POST /solve and answering with
// rahtm.Result, backed by a bounded solve queue, per-request deadlines with
// degrade-on-expiry semantics, and a content-addressed result cache.
//
//	rahtm-serve -addr :8080 -workers 2 -queue 64 -cache 1024
//
//	curl -s localhost:8080/solve -d '{"workload":"CG","topo":[4,4,4],"conc":4}'
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM drains gracefully: admission stops, queued and in-flight
// solves finish (up to -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rahtm/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 2, "concurrent solves")
		queue   = flag.Int("queue", 64, "admission queue depth beyond in-flight solves (overflow gets 429)")
		cacheN  = flag.Int("cache", 1024, "content-addressed result cache entries (negative disables)")
		maxDL   = flag.Duration("max-deadline", 2*time.Minute, "cap on per-request solve budgets (0 = uncapped)")
		maxPar  = flag.Int("max-parallelism", 0, "cap on per-solve pipeline workers (0 = as requested)")
		maxBody = flag.Int64("max-body", 16<<20, "request body size limit, bytes")
		drain   = flag.Duration("drain", 30*time.Second, "graceful-shutdown grace for queued and in-flight solves")
	)
	flag.Parse()

	srv := serve.New(context.Background(), serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheN,
		MaxDeadline:    *maxDL,
		MaxParallelism: *maxPar,
		MaxBodyBytes:   *maxBody,
	})
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "rahtm-serve: listening on http://%s (POST /solve, GET /healthz, GET /metrics)\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	fmt.Fprintf(os.Stderr, "rahtm-serve: draining (grace %v)\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "rahtm-serve: drain grace expired; in-flight solves canceled\n")
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "rahtm-serve: http shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "rahtm-serve: stopped")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rahtm-serve:", err)
	os.Exit(1)
}
