package main

import (
	"os/exec"
	"strings"
	"testing"

	"rahtm/internal/analysis"
)

// TestRepoVetClean is the enforcement gate in test form: the whole module
// must pass its own static-analysis suite, so `go test ./...` fails the
// moment a determinism, cancellation, or telemetry-budget invariant
// regresses — even before CI runs rahtm-vet explicitly.
func TestRepoVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go command not available:", err)
	}
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("only %d packages loaded; pattern resolution looks broken", len(pkgs))
	}
	diags, err := analysis.RunPackages(pkgs, analysis.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) > 0 {
		var b strings.Builder
		for _, d := range diags {
			b.WriteString("\n  ")
			b.WriteString(d.String())
		}
		t.Errorf("rahtm-vet found %d violation(s):%s", len(diags), b.String())
	}
}
