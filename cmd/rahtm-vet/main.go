// Command rahtm-vet runs the rahtm-specific static-analysis suite
// (internal/analysis) over the given package patterns — by default the
// whole module — and exits non-zero if any invariant is violated.
//
//	go run ./cmd/rahtm-vet ./...
//
// The suite enforces what stock vet cannot: deterministic map iteration
// in bit-identical packages (detrange), no global math/rand in library
// code (globalrand), cancellation polling in solver loops and no
// context.Background in internal code (ctxpoll), no exact float
// comparisons outside tolerance helpers (floateq), and batched telemetry
// counters in hot loops (telemetrybatch). Individual findings are
// suppressed, with a mandatory justification, by
//
//	//rahtm:allow(<analyzer>): <reason>
//
// on the offending line or the line above; unused or misnamed allows are
// themselves errors. See DESIGN.md §9.
package main

import (
	"flag"
	"fmt"
	"os"

	"rahtm/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	dir := flag.String("C", ".", "directory to resolve package patterns in")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rahtm-vet [-C dir] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, az := range analysis.Analyzers() {
			fmt.Printf("%-15s %s\n", az.Name, az.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rahtm-vet:", err)
		os.Exit(2)
	}
	diags, err := analysis.RunPackages(pkgs, analysis.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "rahtm-vet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rahtm-vet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
